// E5 -- Theorem 9: loose compaction without wide-block/tall-cache
// assumptions in O((N/B) log*(N/B)) I/Os.  Reports phase counts (the
// tower-of-twos shape: essentially constant), I/O per block, and success
// rate, all at a deliberately tiny cache (M = 2B..8B) where Theorem 8's
// assumptions do not hold.
#include "bench_common.h"
#include "core/logstar_compact.h"
#include "util/math.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t B = static_cast<std::size_t>(flags.get_u64("B", 4));
  bench::set_backend_from_flags(flags);  // consumes --backend, --shards, --prefetch
  flags.validate_or_die();

  bench::banner("E5a", "Theorem 9 -- log* compaction with only M >= 2B");
  bench::note("claim: O(n log* n) I/Os; phases column is the tower-of-twos count "
              "(log* growth: flat 1..3 over any feasible n)");
  Table t({"n (blocks)", "R (blocks)", "phases", "log*(n)", "total I/O", "I/O per n",
           "ok"});
  for (std::uint64_t n : {256ull, 1024ull, 4096ull, 16384ull}) {
    Client client(bench::params(B, 8 * B));  // tiny cache: m = 8
    ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
    std::vector<Record> flat(n * B);
    rng::Xoshiro g(5);
    for (std::uint64_t b = 0; b < n; ++b)
      if (g.bernoulli(0.15))
        for (std::size_t x = 0; x < B; ++x) flat[b * B + x] = {b, x};
    client.poke(a, flat);
    client.reset_stats();
    auto res = core::logstar_compact_blocks(client, a, n / 5,
                                            core::block_nonempty_pred(), 17);
    t.add_row({std::to_string(n), std::to_string(n / 5),
               std::to_string(res.phases),
               std::to_string(log_star(static_cast<double>(n))),
               std::to_string(client.stats().total()),
               Table::fmt(static_cast<double>(client.stats().total()) /
                              static_cast<double>(n), 1),
               res.status.ok() ? "yes" : "NO"});
  }
  t.print(std::cout);

  bench::banner("E5b", "Theorem 9 -- success rate across seeds (output 4.25R)");
  Table t2({"n (blocks)", "trials", "failures", "output blocks", "4.25R"});
  {
    const std::uint64_t n = 2048, r = 400;
    int failures = 0;
    std::uint64_t out_blocks = 0;
    const int trials = 15;
    for (int trial = 0; trial < trials; ++trial) {
      Client client(bench::params(B, 8 * B));
      ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
      std::vector<Record> flat(n * B);
      rng::Xoshiro g(trial + 31);
      std::uint64_t real = 0;
      for (std::uint64_t b = 0; b < n && real < r; ++b)
        if (g.bernoulli(0.15)) {
          ++real;
          for (std::size_t x = 0; x < B; ++x) flat[b * B + x] = {b, x};
        }
      client.poke(a, flat);
      auto res = core::logstar_compact_blocks(client, a, r,
                                              core::block_nonempty_pred(), 600 + trial);
      if (!res.status.ok()) ++failures;
      out_blocks = res.out.num_blocks();
    }
    t2.add_row({std::to_string(n), std::to_string(trials), std::to_string(failures),
                std::to_string(out_blocks),
                std::to_string(4 * r + ceil_div(r, 4))});
  }
  t2.print(std::cout);

  bench::banner("E5c", "Theorem 9 -- tower-of-twos phases (forced demonstration)");
  bench::note("with t_1 = 4 the paper's n/log^2 n threshold is met after one phase at any "
              "feasible n (log* shape); dividing the threshold forces the tower to turn");
  Table t3({"threshold divisor", "phases", "total I/O", "ok"});
  for (std::uint64_t divisor : {1ull, 64ull, 4096ull}) {
    Client client(bench::params(B, 8 * B));
    const std::uint64_t n = 4096;
    ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
    std::vector<Record> flat(n * B);
    rng::Xoshiro g(5);
    for (std::uint64_t b = 0; b < n; ++b)
      if (g.bernoulli(0.15))
        for (std::size_t x = 0; x < B; ++x) flat[b * B + x] = {b, x};
    client.poke(a, flat);
    client.reset_stats();
    core::LogstarCompactOptions opts;
    opts.threshold_divisor = divisor;
    auto res = core::logstar_compact_blocks(client, a, n / 5,
                                            core::block_nonempty_pred(), 17, opts);
    t3.add_row({std::to_string(divisor), std::to_string(res.phases),
                std::to_string(client.stats().total()),
                res.status.ok() ? "yes" : "NO"});
  }
  t3.print(std::cout);
  return 0;
}
