// E14: multi-session oblivious-KV load against the real oem-server binary.
//
// Spawns oem-server as a SUBPROCESS (a real exec boundary -- nothing shares
// an address space with the clients), then hammers it with --clients
// concurrent Sessions, each running an ORAM-backed oblivious-KV request mix
// over its own TCP connection and private store namespace.  Two server
// configurations are measured with the identical client workload:
//
//   serial    --threads=1  (the old single-dispatch accept loop)
//   threaded  --threads=N  (the worker pool; default N = --clients)
//
// Each data frame charges --service-delay-us of simulated service time on
// its worker (sleep-based, so the comparison is core-count independent: a
// pool's workers overlap service time even on one hardware thread, a serial
// loop pays it frame by frame).  The harness reports aggregate throughput
// and client-observed p50/p99 access latency, writes the grid as a JSON
// artifact with --json=PATH (CI uploads BENCH_server_load.json), and EXIT-
// CODE-ENFORCES the PR claim: threaded throughput >= 2x serial at 8 clients,
// with both servers exiting 0 on SIGTERM.
//
//   bench_server_load [--clients=8] [--items=64] [--ops=48] [--threads=0]
//                     [--service-delay-us=200] [--server-bin=PATH]
//                     [--json=PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "bench_common.h"
#include "server/subprocess.h"
#include "util/flags.h"
#include "rng/random.h"
#include "util/table.h"

namespace oem {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

struct LoadResult {
  bool ok = false;
  int server_exit = -1;
  std::uint64_t total_ops = 0;
  double wall_ms = 0;         // barrier release -> last client done
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p * (sorted_us.size() - 1));
  return sorted_us[idx];
}

/// One full measurement: spawn the binary with `server_threads` workers, run
/// `clients` concurrent ORAM sessions of `ops` accesses each, SIGTERM the
/// server, and fold the per-op latencies.
LoadResult run_mode(const std::string& server_bin, std::size_t server_threads,
                    std::size_t clients, std::uint64_t items, std::uint64_t ops,
                    std::uint64_t service_delay_us) {
  LoadResult r;
  server::SpawnedServer srv(
      server_bin,
      {"--backend=mem", "--threads=" + std::to_string(server_threads),
       "--service-delay-ns=" + std::to_string(service_delay_us * 1000)});
  if (!srv.health().ok()) {
    std::fprintf(stderr, "spawn (%zu threads): %s\n", server_threads,
                 srv.health().ToString().c_str());
    return r;
  }

  // Phase 1 (untimed): every client connects and builds its ORAM.  The
  // barrier then releases all request loops at once, so the timed region
  // is pure steady-state load -- no setup skew between fast/slow starters.
  std::mutex mu;
  std::condition_variable cv;
  std::size_t ready = 0;
  bool go = false;
  Clock::time_point t0;
  std::atomic<int> failures{0};
  std::vector<std::vector<double>> lat_us(clients);
  std::vector<Clock::time_point> done(clients);

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      auto fail = [&](const Status& st, const char* what) {
        std::fprintf(stderr, "client %zu: %s: %s\n", c, what,
                     st.ToString().c_str());
        failures.fetch_add(1);
      };
      auto built = Session::Builder()
                       .block_records(4)
                       .cache_records(64)
                       .seed(100 + c)
                       .remote(srv.host(), srv.port())
                       .build();
      if (!built.ok()) {
        fail(built.status(), "build");
        {
          std::lock_guard<std::mutex> lk(mu);
          ++ready;
        }
        cv.notify_all();
        return;
      }
      Session session = std::move(built).value();
      auto oram = session.open_oram(items, oram::ShuffleKind::kRandomized,
                                    /*seed=*/23 + c);
      if (!oram.ok()) {
        fail(oram.status(), "open_oram");
        {
          std::lock_guard<std::mutex> lk(mu);
          ++ready;
        }
        cv.notify_all();
        return;
      }
      {
        std::unique_lock<std::mutex> lk(mu);
        ++ready;
        cv.notify_all();
        cv.wait(lk, [&] { return go; });
      }
      rng::Xoshiro g(500 + c);
      lat_us[c].reserve(ops);
      for (std::uint64_t i = 0; i < ops; ++i) {
        const std::uint64_t idx = g.next() % items;
        const auto a = Clock::now();
        auto v = oram->access(idx);
        lat_us[c].push_back(ms_between(a, Clock::now()) * 1000.0);
        if (!v.ok()) {
          fail(v.status(), "access");
          break;
        }
        if (*v != oram->expected_value(idx)) {
          std::fprintf(stderr, "client %zu: wrong value at %llu\n", c,
                       static_cast<unsigned long long>(idx));
          failures.fetch_add(1);
          break;
        }
      }
      done[c] = Clock::now();
    });

  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return ready == clients; });
    go = true;
    t0 = Clock::now();
  }
  cv.notify_all();
  for (auto& t : threads) t.join();

  Clock::time_point last = t0;
  std::vector<double> merged;
  for (std::size_t c = 0; c < clients; ++c) {
    if (done[c] > last) last = done[c];
    merged.insert(merged.end(), lat_us[c].begin(), lat_us[c].end());
  }
  r.server_exit = srv.terminate();
  r.ok = failures.load() == 0 && r.server_exit == 0;
  r.total_ops = merged.size();
  r.wall_ms = ms_between(t0, last);
  r.ops_per_sec = r.wall_ms > 0 ? r.total_ops / (r.wall_ms / 1000.0) : 0;
  std::sort(merged.begin(), merged.end());
  r.p50_us = percentile(merged, 0.50);
  r.p99_us = percentile(merged, 0.99);
  r.max_us = merged.empty() ? 0 : merged.back();
  return r;
}

std::string json_row(const char* mode, std::size_t server_threads,
                     const LoadResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"mode\":\"%s\",\"server_threads\":%zu,\"ops\":%llu,"
                "\"wall_ms\":%.3f,\"ops_per_sec\":%.1f,\"p50_us\":%.1f,"
                "\"p99_us\":%.1f,\"max_us\":%.1f,\"server_exit\":%d}",
                mode, server_threads,
                static_cast<unsigned long long>(r.total_ops), r.wall_ms,
                r.ops_per_sec, r.p50_us, r.p99_us, r.max_us, r.server_exit);
  return buf;
}

}  // namespace
}  // namespace oem

int main(int argc, char** argv) {
  using namespace oem;
  Flags flags(argc, argv);
  const std::size_t clients = flags.get_u64("clients", 8);
  const std::uint64_t items = flags.get_u64("items", 64);
  const std::uint64_t ops = flags.get_u64("ops", 48);
  std::size_t threads = flags.get_u64("threads", 0);  // 0 = one per client
  const std::uint64_t service_delay_us = flags.get_u64("service-delay-us", 200);
  const std::string server_bin =
      flags.get("server-bin", server::default_server_binary());
  const std::string json_path = flags.get("json", "");
  flags.validate_or_die();
  if (clients < 1 || items < 4 || ops < 1) {
    std::fprintf(stderr, "--clients >= 1, --items >= 4, --ops >= 1 required\n");
    return 2;
  }
  if (threads == 0) threads = clients;

  bench::banner("E14", "oem-server under multi-session oblivious-KV load");
  bench::note(std::to_string(clients) + " concurrent ORAM sessions x " +
              std::to_string(ops) + " accesses over " + std::to_string(items) +
              " items; " + std::to_string(service_delay_us) +
              "us simulated service time per data frame; server = " + server_bin);

  const LoadResult serial =
      run_mode(server_bin, 1, clients, items, ops, service_delay_us);
  const LoadResult pooled =
      run_mode(server_bin, threads, clients, items, ops, service_delay_us);

  Table t({"mode", "server threads", "ops", "wall ms", "ops/s", "p50 us",
           "p99 us", "server exit"});
  t.add_row({"serial", "1", std::to_string(serial.total_ops),
             Table::fmt(serial.wall_ms, 1), Table::fmt(serial.ops_per_sec, 1),
             Table::fmt(serial.p50_us, 1), Table::fmt(serial.p99_us, 1),
             std::to_string(serial.server_exit)});
  t.add_row({"threaded", std::to_string(threads), std::to_string(pooled.total_ops),
             Table::fmt(pooled.wall_ms, 1), Table::fmt(pooled.ops_per_sec, 1),
             Table::fmt(pooled.p50_us, 1), Table::fmt(pooled.p99_us, 1),
             std::to_string(pooled.server_exit)});
  t.print(std::cout);

  const double speedup =
      serial.ops_per_sec > 0 ? pooled.ops_per_sec / serial.ops_per_sec : 0;
  const bool met = serial.ok && pooled.ok && speedup >= 2.0;
  bench::note("threaded vs serial throughput: " + Table::fmt(speedup, 2) + "x");
  bench::note(met ? "E14 claim (worker pool >= 2x serial accept loop at " +
                        std::to_string(clients) + " clients, clean exits): MET"
                  : "E14 claim: NOT MET");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"bench\":\"server_load\",\"clients\":" << clients
        << ",\"items\":" << items << ",\"ops_per_client\":" << ops
        << ",\"service_delay_us\":" << service_delay_us
        << ",\"speedup\":" << Table::fmt(speedup, 3)
        << ",\"claim_met\":" << (met ? "true" : "false") << ",\"rows\":["
        << json_row("serial", 1, serial) << ","
        << json_row("threaded", threads, pooled) << "]}\n";
    bench::note("wrote " + json_path);
  }
  return met ? 0 : 1;
}
