// E9 -- §1's ORAM claim: swapping the deterministic oblivious sort for the
// randomized one in the ORAM "inner loop" improves amortized overhead by a
// logarithmic factor.
//
// Two views:
//   E9a: concrete sqrt-ORAM, measured amortized I/O per access with each
//        reshuffle sort (the access protocol is identical; only the inner
//        loop changes).
//   E9b: hierarchical-ORAM overhead model (Goldreich-Ostrovsky style, one
//        oblivious sort per level rebuild): amortized overhead =
//        sum over levels of sort(2^i)/2^i ~ log N * sort-factor, with
//        sort-factor log^2_{M/B} vs log_{M/B} -- the paper's
//        O(log^2_{M/B}(N/B) log N) vs O(log_{M/B}(N/B) log N).
#include <cmath>

#include "bench_common.h"
#include "oram/sqrt_oram.h"
#include "sortnet/external_sort.h"
#include "util/math.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::set_backend_from_flags(flags);  // consumes --backend, --shards, --prefetch
  flags.validate_or_die();

  bench::banner("E9a", "sqrt-ORAM amortized I/O per access by reshuffle sort");
  bench::note("block I/Os and backend ops are recorded at SUBMIT time in program "
              "order (the device's async contract), so the per-access numbers are "
              "directly comparable with and without --prefetch");
  Table t({"N items", "shuffle", "accesses", "access I/O/op", "reshuffle I/O/op",
           "total I/O/op", "backend ops/op"});
  for (std::uint64_t N : {1024ull, 4096ull}) {
    for (auto kind : {oram::ShuffleKind::kDeterministic, oram::ShuffleKind::kRandomized}) {
      Client client(bench::params(8, 8 * 256));
      oram::SqrtOram o(client, N, kind, 3);
      rng::Xoshiro g(7);
      const std::uint64_t accesses = 3 * o.epoch_length();
      for (std::uint64_t i = 0; i < accesses; ++i) o.access(g.below(N));
      const auto& s = o.stats();
      // Submit-time device stats: with --prefetch the reshuffle's transfers
      // may still be in flight on the I/O thread, but reads/writes/ops were
      // all counted at submission, so the totals already match what a drain
      // would show.  total_ops shows the batching the pipeline achieves.
      const IoStats& dev = client.stats();
      t.add_row({std::to_string(N),
                 kind == oram::ShuffleKind::kDeterministic ? "Lemma 2" : "Theorem 21",
                 std::to_string(s.accesses),
                 Table::fmt(static_cast<double>(s.access_ios) / s.accesses, 1),
                 Table::fmt(static_cast<double>(s.reshuffle_ios) / s.accesses, 1),
                 Table::fmt(static_cast<double>(s.access_ios + s.reshuffle_ios) /
                                s.accesses, 1),
                 Table::fmt(static_cast<double>(dev.total_ops()) / s.accesses, 2)});
      bench::engine_stats_note(
          client, "N=" + std::to_string(N) + " " +
                      (kind == oram::ShuffleKind::kDeterministic ? "Lemma 2"
                                                                 : "Theorem 21"));
    }
  }
  t.print(std::cout);
  bench::note("(at lab scale the deterministic inner loop is cheaper in absolute terms; "
              "the asymptotic gap is the log factor modeled in E9b)");

  bench::banner("E9b", "hierarchical-ORAM amortized overhead model (paper's log-factor claim)");
  bench::note("overhead(N) = sum_{i<=log N} sort_cost(2^i blocks)/2^i; with the Lemma-2 "
              "sort this is O(log^2_{M/B}(N/B) log N), with Theorem 21 it is "
              "O(log_{M/B}(N/B) log N) -- their ratio is the paper's saved log factor");
  Table t2({"N/B (blocks)", "M/B", "det overhead", "rand overhead", "ratio",
            "log_{M/B}(N/B)"});
  for (double log2n : {20.0, 30.0, 40.0}) {
    const double n = std::pow(2.0, log2n);
    const double m = 1024.0;
    double det = 0.0, rnd = 0.0;
    for (double i = 10.0; i <= log2n; i += 1.0) {
      const double level_n = std::pow(2.0, i);
      // Per-block sort factors at level size level_n.
      const double det_factor = std::pow(std::log2(level_n / m) / std::log2(m), 2.0) + 1.0;
      const double rnd_factor = std::log2(level_n / m) / std::log2(m) + 1.0;
      det += det_factor;  // each level rebuilt once per 2^i accesses: cost/2^i * 2^i/N...
      rnd += rnd_factor;  // amortized: one sort factor per level per access epoch
    }
    t2.add_row({Table::fmt(n, 0), Table::fmt(m, 0), Table::fmt(det, 1),
                Table::fmt(rnd, 1), Table::fmt(det / rnd, 2),
                Table::fmt(std::log2(n) / std::log2(m), 2)});
  }
  t2.print(std::cout);
  return 0;
}
