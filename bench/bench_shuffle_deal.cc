// A2 -- ablation: the "shuffle" half of shuffle-and-deal (paper §5,
// Valiant-Brebner-style).  Measures per-batch color-quota overflow (hot
// spots) on clustered inputs with and without the Fisher-Yates block
// shuffle, across quota margins -- Lemma 18 / Corollary 19 in action.
#include <cmath>

#include "bench_common.h"
#include "core/shuffle_deal.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::set_backend_from_flags(flags);  // consumes --backend, --shards, --prefetch
  flags.validate_or_die();
  const std::size_t B = 8;
  const std::uint64_t n = 2048;
  const unsigned colors = 4;

  bench::banner("A2", "ablation -- shuffle-and-deal vs deal-only (hot spots, Lemma 18)");
  bench::note("input: colors fully clustered (sorted by color), the adversarial case the "
              "shuffle defends against; quota = mean * margin");

  Table t({"quota margin", "quota (blocks)", "drops w/o shuffle", "drops with shuffle",
           "drop rate w/o", "drop rate with"});
  const std::uint64_t batch = 64;
  for (double margin : {1.25, 1.5, 2.0, 3.0}) {
    const std::uint64_t quota = static_cast<std::uint64_t>(
        std::ceil(margin * static_cast<double>(batch) / colors));
    std::uint64_t drops[2] = {0, 0};
    for (int with_shuffle = 0; with_shuffle < 2; ++with_shuffle) {
      for (int trial = 0; trial < 5; ++trial) {
        Client client(bench::params(B, B * 256, trial + 1));
        ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
        std::vector<Record> flat(n * B);
        for (std::uint64_t b = 0; b < n; ++b) {
          const std::uint64_t color = b / (n / colors);  // clustered!
          for (std::size_t r = 0; r < B; ++r) flat[b * B + r] = {color, b};
        }
        client.poke(a, flat);
        if (with_shuffle) {
          rng::Xoshiro coins(trial + 77);
          core::shuffle_blocks(client, a, coins);
        }
        core::DealOptions opts;
        opts.batch_blocks = batch;
        opts.quota = quota;
        auto res = core::deal_blocks(
            client, a, colors,
            [&](const Record& r) { return static_cast<unsigned>(r.key % colors); }, opts);
        drops[with_shuffle] += res.overflow_drops;
      }
    }
    const double denom = 5.0 * n;
    t.add_row({Table::fmt(margin, 2), std::to_string(quota),
               std::to_string(drops[0]), std::to_string(drops[1]),
               Table::fmt(drops[0] / denom, 4), Table::fmt(drops[1] / denom, 4)});
  }
  t.print(std::cout);

  bench::banner("A2b", "shuffle uniformity (chi-square over landing positions)");
  {
    // Where does block 0 land after the shuffle?  Should be uniform.
    std::vector<std::uint64_t> counts(16, 0);
    const int trials = 4000;
    const std::uint64_t nb = 16;
    for (int trial = 0; trial < trials; ++trial) {
      Client client(bench::params(2, 2 * 8, trial));
      ExtArray a = client.alloc_blocks(nb, Client::Init::kUninit);
      std::vector<Record> flat(nb * 2);
      for (std::uint64_t b = 0; b < nb; ++b) flat[b * 2] = {b, b};
      client.poke(a, flat);
      rng::Xoshiro coins(trial * 31 + 7);
      core::shuffle_blocks(client, a, coins);
      auto out = client.peek(a);
      for (std::uint64_t b = 0; b < nb; ++b)
        if (out[b * 2].key == 0) ++counts[b];
    }
    Table t2({"positions", "trials", "chi-square (15 dof)", "99th pct threshold"});
    t2.add_row({"16", std::to_string(trials),
                Table::fmt(chi_square_uniform(counts), 2), "30.6"});
    t2.print(std::cout);
  }
  return 0;
}
