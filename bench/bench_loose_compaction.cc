// E4 -- Theorem 8: loose compaction uses O(N/B) I/Os and succeeds w.h.p.
// Reports the linearity of I/O per block as n grows, the success rate across
// seeds, and the geometric-halving profile of the survivor array.
#include "bench_common.h"
#include "core/loose_compact.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t B = static_cast<std::size_t>(flags.get_u64("B", 8));
  const std::uint64_t M = flags.get_u64("M", 8 * 128);
  bench::set_backend_from_flags(flags);  // consumes --backend, --shards, --prefetch
  flags.validate_or_die();

  bench::banner("E4a", "Theorem 8 -- loose compaction I/O linearity");
  bench::note("claim: O(N/B) I/Os total (flat I/O-per-block column), output 5R");
  Table t({"n (blocks)", "R (blocks)", "total I/O", "I/O per n", "ok"});
  for (std::uint64_t n : {512ull, 2048ull, 8192ull, 32768ull}) {
    Client client(bench::params(B, M));
    const std::uint64_t r_cap = n / 5;
    ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
    std::vector<Record> flat(n * B);
    rng::Xoshiro g(9);
    for (std::uint64_t b = 0; b < n; ++b)
      if (g.bernoulli(0.15))
        for (std::size_t x = 0; x < B; ++x) flat[b * B + x] = {b, x};
    client.poke(a, flat);
    client.reset_stats();
    auto res = core::loose_compact_blocks(client, a, r_cap,
                                          core::block_nonempty_pred(), 17);
    t.add_row({std::to_string(n), std::to_string(r_cap),
               std::to_string(client.stats().total()),
               Table::fmt(static_cast<double>(client.stats().total()) /
                              static_cast<double>(n), 1),
               res.status.ok() ? "yes" : "NO"});
  }
  t.print(std::cout);

  bench::banner("E4b", "Theorem 8 -- success rate across seeds");
  bench::note("claim: success w.p. >= 1 - (N/B)^{-d}; failures reported, never silent");
  Table t2({"n (blocks)", "density", "trials", "failures"});
  for (double density : {0.1, 0.18}) {
    const std::uint64_t n = 2048;
    int failures = 0;
    const int trials = 40;
    for (int trial = 0; trial < trials; ++trial) {
      Client client(bench::params(B, M));
      ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
      std::vector<Record> flat(n * B);
      rng::Xoshiro g(trial * 7 + 1);
      std::uint64_t real = 0;
      for (std::uint64_t b = 0; b < n; ++b)
        if (g.bernoulli(density)) {
          ++real;
          for (std::size_t x = 0; x < B; ++x) flat[b * B + x] = {b, x};
        }
      client.poke(a, flat);
      const std::uint64_t r_cap = std::min(n / 4 - 1, real + real / 4 + 8);
      auto res = core::loose_compact_blocks(client, a, r_cap,
                                            core::block_nonempty_pred(), 900 + trial);
      if (!res.status.ok()) ++failures;
    }
    t2.add_row({std::to_string(n), Table::fmt(density, 2), std::to_string(trials),
                std::to_string(failures)});
  }
  t2.print(std::cout);
  return 0;
}
