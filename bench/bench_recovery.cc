// E18: crash-recovery conformance -- seeded SIGKILL-style server crashes +
// durable-freshness warm restart.
//
// Part 1 (gated): seeded kill trials.  Each trial spawns a real oem-server
// armed with --crash-at=frames:N (the process _exits abruptly at the N-th
// received frame, before dispatch -- a simulated kernel panic mid-request)
// and runs a full sort round-trip against it, cycling the decorator stacks
// {plain, sharded4, cached, encrypted_auth}.  Allowed outcomes per trial:
//   * the run outran the crash frame and completed with output identical to
//     the in-memory reference, or
//   * a clean retryable/integrity error (kIo / kTimeout / kIntegrity) --
// and after every failed trial, a rerun against a FRESH crash-free server
// must complete identically.  The exit code enforces: zero silent
// corruptions, zero unexpected error codes, zero rerun divergences, and at
// least one trial actually tripping its armed crash (else the harness is
// vacuous).  Per-frame wire deadlines keep a crashed server from ever
// becoming a hang.
//
// Part 2 (gated): warm restart.  A file-backed session with a state_path
// outsources once (cold), then a second process-incarnation reopens the same
// store + state file and retrieves WITHOUT re-outsourcing.  Gates: the warm
// read returns the identical records, the store file's bytes are untouched
// by the warm pass (zero re-sealed blocks -- re-init was skipped), and
// deleting the state file makes the same warm read fail closed as
// kIntegrity (proof the durable state, not luck, is what authenticates).
//
//   bench_recovery [--trials=50] [--records=512] [--json=PATH]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "bench_common.h"
#include "rng/random.h"
#include "server/server.h"
#include "server/subprocess.h"
#include "util/flags.h"
#include "util/table.h"

namespace oem {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

[[noreturn]] void die(const std::string& why) {
  std::fprintf(stderr, "bench_recovery: %s\n", why.c_str());
  std::exit(2);
}

struct StackConfig {
  const char* name;
  std::size_t shards;
  std::size_t cache_blocks;
  bool auth_seam;
};

constexpr StackConfig kStacks[] = {
    {"plain", 1, 0, false},
    {"sharded4", 4, 0, false},
    {"cached", 1, 16, false},
    {"encrypted_auth", 1, 0, true},
};

Result<Session> build_remote(const StackConfig& cfg, const std::string& host,
                             std::uint16_t port) {
  Session::Builder b;
  b.block_records(4)
      .cache_records(64)
      .seed(11)
      .remote(host, port)
      .io_deadline_ms(5000)  // a crashed server must fail, never hang
      .io_retries(2);
  if (cfg.shards > 1) b.sharded(cfg.shards);
  if (cfg.cache_blocks > 0) b.cache(cfg.cache_blocks);
  if (cfg.auth_seam) b.encrypted(0x5eedULL, /*authenticated=*/true);
  return b.build();
}

Status run_sort(Session& s, std::uint64_t records, std::vector<Record>* out) {
  auto data = s.outsource(bench::random_records(records, 7));
  if (!data.ok()) return data.status();
  auto rep = s.sort(*data, /*seed=*/5);
  if (!rep.ok()) return rep.status();
  auto result = s.retrieve(*data);
  if (!result.ok()) return result.status();
  *out = std::move(*result);
  return Status::Ok();
}

struct KillTally {
  std::uint64_t completed = 0;       // outran the crash, identical output
  std::uint64_t clean_failed = 0;    // kIo / kTimeout / kIntegrity
  std::uint64_t silent = 0;          // completed with WRONG output -- fatal
  std::uint64_t other_errors = 0;    // unexpected status code -- fatal
  std::uint64_t rerun_divergent = 0; // fresh-server rerun wrong/failed -- fatal
  std::uint64_t crashes_tripped = 0; // child exited with kCrashExitCode
};

/// SHA-free file fingerprint: mix64-fold of the bytes (collision quality is
/// irrelevant -- the claim is "UNCHANGED", compared against itself).
std::uint64_t file_fingerprint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) die("fingerprint: cannot open " + path);
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  char buf[4096];
  while (f.read(buf, sizeof buf) || f.gcount() > 0) {
    for (std::streamsize i = 0; i < f.gcount(); ++i)
      h = rng::mix64(h ^ static_cast<std::uint8_t>(buf[i]));
    if (!f) break;
  }
  return h;
}

std::string temp_path(const std::string& name) {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") +
         "/bench_recovery_" + name + "." + std::to_string(::getpid());
}

}  // namespace
}  // namespace oem

int main(int argc, char** argv) {
  using namespace oem;
  Flags flags(argc, argv);
  const int trials = static_cast<int>(flags.get_u64("trials", 50));
  const std::uint64_t records = flags.get_u64("records", 512);
  const std::string json_path = flags.get("json", "");
  flags.validate_or_die();
  if (trials < 1) die("--trials must be >= 1");

  bench::banner("E18", "crash recovery: seeded server kills + warm restart");
  bench::note(std::to_string(trials) + " seeded kill trials (sort, " +
              std::to_string(records) + " records) cycling 4 stacks; every "
              "trial must complete identically or fail clean, and every "
              "failure must rerun identically on a fresh server");

  // In-memory reference: the sort's OUTPUT is deterministic in the input and
  // per-call seed, independent of storage stack or where the crash landed.
  std::vector<Record> expected;
  {
    auto ref =
        Session::Builder().block_records(4).cache_records(64).seed(11).build();
    if (!ref.ok()) die("reference build failed: " + ref.status().ToString());
    if (!run_sort(*ref, records, &expected).ok())
      die("reference run failed");
  }

  // --- Part 1: the kill matrix ---
  KillTally tally;
  double trial_ms_total = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const StackConfig& cfg = kStacks[trial % std::size(kStacks)];
    // Seeded crash point: spread from the handshake through deep mid-sort
    // and beyond the run's total frame count (a 512-record sort takes
    // ~4.6k frames), so BOTH arms -- completed-identical and clean-failed
    // -- are exercised.  Deterministic per trial.
    const std::uint64_t crash_frame = 2 + (trial * 1103) % 6500;
    server::SpawnedServer srv(
        server::default_server_binary(),
        {"--threads=2", "--crash-at=frames:" + std::to_string(crash_frame)});
    if (!srv.health().ok()) die("spawn: " + srv.health().ToString());
    const std::string label = std::string(cfg.name) + " crash@" +
                              std::to_string(crash_frame);

    const auto t0 = Clock::now();
    bool failed = true;
    auto built = build_remote(cfg, srv.host(), srv.port());
    if (built.ok()) {
      std::vector<Record> got;
      const Status st = run_sort(*built, records, &got);
      if (st.ok()) {
        failed = false;
        if (got == expected) {
          ++tally.completed;
        } else {
          ++tally.silent;
          bench::note("SILENT CORRUPTION: " + label +
                      " completed with wrong output");
        }
      } else if (st.code() == StatusCode::kIo ||
                 st.code() == StatusCode::kTimeout ||
                 st.code() == StatusCode::kIntegrity) {
        ++tally.clean_failed;
      } else {
        ++tally.other_errors;
        bench::note("UNEXPECTED ERROR: " + label + ": " + st.ToString());
      }
    } else if (IsRetryable(built.status().code())) {
      ++tally.clean_failed;  // crash landed inside the handshake
    } else {
      ++tally.other_errors;
      bench::note("UNEXPECTED BUILD ERROR: " + label + ": " +
                  built.status().ToString());
    }
    trial_ms_total += ms_between(t0, Clock::now());
    if (srv.wait_exit(/*timeout_ms=*/1).code == kCrashExitCode)
      ++tally.crashes_tripped;

    if (failed) {
      // Recovery: a fresh crash-free server + fresh session must complete
      // identically -- the failure left nothing poisoned behind.
      server::SpawnedServer fresh(server::default_server_binary(),
                                  {"--threads=2"});
      if (!fresh.health().ok()) die("rerun spawn: " + fresh.health().ToString());
      auto again = build_remote(cfg, fresh.host(), fresh.port());
      std::vector<Record> got;
      if (!again.ok() || !run_sort(*again, records, &got).ok() ||
          got != expected) {
        ++tally.rerun_divergent;
        bench::note("RERUN DIVERGED: " + label);
      }
      (void)fresh.terminate();
    }
  }

  bool claim_met = true;
  Table t({"trials", "completed", "clean_failed", "silent", "other",
           "rerun_divergent", "crashes_tripped", "avg ms/trial"});
  t.add_row({std::to_string(trials), std::to_string(tally.completed),
             std::to_string(tally.clean_failed), std::to_string(tally.silent),
             std::to_string(tally.other_errors),
             std::to_string(tally.rerun_divergent),
             std::to_string(tally.crashes_tripped),
             Table::fmt(trial_ms_total / trials, 1)});
  t.print(std::cout);
  if (tally.silent != 0 || tally.other_errors != 0 ||
      tally.rerun_divergent != 0) {
    bench::note("CLAIM VIOLATED: crashes must fail clean and rerun "
                "identically");
    claim_met = false;
  }
  if (tally.crashes_tripped == 0) {
    bench::note("CLAIM VIOLATED: no trial tripped its armed crash -- the "
                "harness is vacuous");
    claim_met = false;
  }

  // --- Part 2: warm restart over durable freshness ---
  const std::string store_path = temp_path("store");
  const std::string state_path = temp_path("state");
  FileBackendOptions fo;
  fo.path = store_path;
  fo.keep_file = true;
  const auto builder = [&] {
    Session::Builder b;
    b.block_records(4).cache_records(64).seed(0x5eed).file_backed(fo)
        .state_path(state_path);
    return b;
  };
  const auto input = bench::random_records(records, 9);
  double cold_ms = 0, warm_ms = 0;
  {
    const auto t0 = Clock::now();
    auto cold = builder().build();
    if (!cold.ok()) die("cold build: " + cold.status().ToString());
    auto data = cold->outsource(input);
    if (!data.ok()) die("cold outsource: " + data.status().ToString());
    if (!cold->flush_storage().ok()) die("cold flush failed");
    if (!cold->persist_freshness().ok()) die("cold persist failed");
    cold_ms = ms_between(t0, Clock::now());
  }
  const std::uint64_t fp_cold = file_fingerprint(store_path);

  bool warm_identical = false, warm_skipped_reinit = false,
       stateless_fails_closed = false;
  {
    const auto t0 = Clock::now();
    auto warm = builder().build();
    if (!warm.ok()) die("warm build: " + warm.status().ToString());
    ExtArray a = warm->client().alloc(records, Client::Init::kUninit);
    auto got = warm->retrieve(a);
    warm_ms = ms_between(t0, Clock::now());
    warm_identical = got.ok() && *got == input;
    if (!warm_identical)
      bench::note("CLAIM VIOLATED: warm restart did not read its own data (" +
                  got.status().ToString() + ")");
  }
  // Zero re-sealed blocks: the warm pass must not have touched the store.
  warm_skipped_reinit = file_fingerprint(store_path) == fp_cold;
  if (!warm_skipped_reinit)
    bench::note("CLAIM VIOLATED: warm restart re-sealed blocks (store file "
                "changed) -- re-init was NOT skipped");
  // Ablation: without the state file the same read must fail closed -- the
  // durable state, not luck, is what authenticates the reopen.
  fs::remove(state_path);
  {
    auto blind = builder().build();
    if (!blind.ok()) die("stateless build: " + blind.status().ToString());
    ExtArray a = blind->client().alloc(records, Client::Init::kUninit);
    auto got = blind->retrieve(a);
    stateless_fails_closed =
        !got.ok() && got.status().code() == StatusCode::kIntegrity;
    if (!stateless_fails_closed)
      bench::note("CLAIM VIOLATED: reopen WITHOUT freshness state did not "
                  "fail closed as kIntegrity");
  }
  fs::remove(store_path);
  fs::remove(state_path);
  claim_met = claim_met && warm_identical && warm_skipped_reinit &&
              stateless_fails_closed;

  Table w({"phase", "wall ms", "identical", "skipped re-init",
           "stateless fails closed"});
  w.add_row({"cold init", Table::fmt(cold_ms, 1), "-", "-", "-"});
  w.add_row({"warm restart", Table::fmt(warm_ms, 1),
             warm_identical ? "yes" : "NO",
             warm_skipped_reinit ? "yes" : "NO",
             stateless_fails_closed ? "yes" : "NO"});
  w.print(std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"bench\":\"recovery\",\"claim_met\":"
        << (claim_met ? "true" : "false") << ",\"trials\":" << trials
        << ",\"completed\":" << tally.completed
        << ",\"clean_failed\":" << tally.clean_failed
        << ",\"silent\":" << tally.silent
        << ",\"other_errors\":" << tally.other_errors
        << ",\"rerun_divergent\":" << tally.rerun_divergent
        << ",\"crashes_tripped\":" << tally.crashes_tripped
        << ",\"cold_ms\":" << cold_ms << ",\"warm_ms\":" << warm_ms
        << ",\"warm_identical\":" << (warm_identical ? "true" : "false")
        << ",\"warm_skipped_reinit\":"
        << (warm_skipped_reinit ? "true" : "false")
        << ",\"stateless_fails_closed\":"
        << (stateless_fails_closed ? "true" : "false") << "}\n";
    bench::note("wrote " + json_path);
  }
  return claim_met ? 0 : 1;
}
