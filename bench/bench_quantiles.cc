// E7 -- Theorem 17: q-quantile selection in O(N/B) I/Os.
// Reports dense-regime cost (== one Lemma-2 sort + scans, the paper's own
// rule), forced-sparse pipeline cost and its scaling, rank accuracy, and
// success rates.
#include "bench_common.h"
#include "core/quantiles.h"
#include "sortnet/external_sort.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t B = static_cast<std::size_t>(flags.get_u64("B", 8));
  bench::set_backend_from_flags(flags);  // consumes --backend, --shards, --prefetch
  flags.validate_or_die();

  bench::banner("E7a", "Theorem 17 -- quantile cost: dense rule vs forced sparse pipeline");
  bench::note("dense ((M/B)^4 > N/B, all lab scales): cost == Lemma-2 sort + scans;"
              " sparse pipeline: scans + Theorem-4 compactions (butterfly at these sizes)");
  Table t({"N", "q", "path", "I/O", "per record", "sort-only I/O", "ok"});
  for (std::uint64_t N : {65536ull, 262144ull}) {
    for (bool sparse : {false, true}) {
      Client client(bench::params(B, 8 * 1024));
      ExtArray a = client.alloc(N, Client::Init::kUninit);
      client.poke(a, bench::random_records(N, 3));
      client.reset_stats();
      core::QuantilesOptions opts;
      opts.paper_intervals = false;
      opts.force_sparse = sparse;
      auto res = core::oblivious_quantiles(client, a, 4, 21, opts);
      const std::uint64_t sort_io =
          sortnet::ext_sort_predicted_ios(ceil_div(N, B), 1024);
      t.add_row({std::to_string(N), "4", sparse ? "sparse" : "dense",
                 std::to_string(client.stats().total()),
                 Table::fmt(static_cast<double>(client.stats().total()) /
                                static_cast<double>(N), 3),
                 std::to_string(sort_io), res.status.ok() ? "yes" : "NO"});
    }
  }
  t.print(std::cout);

  bench::banner("E7b", "quantile rank accuracy (exact on success)");
  Table t2({"N", "q", "trials", "whp failures", "max rank error on success"});
  {
    const std::uint64_t N = 65536;
    Client client(bench::params(B, 8 * 1024));
    auto v = bench::random_records(N, 7);
    ExtArray a = client.alloc(N, Client::Init::kUninit);
    client.poke(a, v);
    std::vector<Record> sorted = v;
    std::sort(sorted.begin(), sorted.end(), RecordLess{});
    for (std::uint64_t q : {2ull, 4ull}) {
      core::QuantilesOptions opts;
      opts.paper_intervals = false;
      opts.force_sparse = true;
      int failures = 0;
      std::uint64_t max_err = 0;
      const int trials = 10;
      for (int trial = 0; trial < trials; ++trial) {
        auto res = core::oblivious_quantiles(client, a, q, 400 + trial, opts);
        if (!res.status.ok()) {
          ++failures;
          continue;
        }
        auto targets = core::quantile_ranks(N, q);
        for (std::uint64_t j = 0; j < q; ++j) {
          // Rank error: distance between the returned key's rank range and
          // the target rank (0 when the key matches the target rank's key).
          const std::uint64_t key = res.quantiles[j].key;
          if (sorted[targets[j] - 1].key != key) ++max_err;
        }
      }
      t2.add_row({std::to_string(N), std::to_string(q), std::to_string(trials),
                  std::to_string(failures), std::to_string(max_err)});
    }
  }
  t2.print(std::cout);
  return 0;
}
