// E16: fail-closed under a malicious server -- detection proofs + MAC cost.
//
// Part 1 (gated): seeded tamper trials.  Each trial runs a full workload
// (oblivious sort round-trip, or an ORAM epoch) over a Session whose base
// store lies -- corrupted / bit-flipped / swapped reads served with
// Status::Ok, acknowledged-but-dropped writes.  Exactly two outcomes are
// allowed: output identical to the tamper-free reference, or a clean
// StatusCode::kIntegrity.  The exit code enforces:
//   1. zero silent corruptions (a completed trial's output matches the
//      reference, bit for bit, and its trace hash is unchanged)
//   2. zero retries burned on integrity failures (RetryPolicy is for kIo;
//      a failed MAC is proof of tampering and must pass straight through)
//
// Part 2 (informational): MAC + freshness overhead.  The same ORAM-epoch
// workload over EncryptedBackend in plain (confidentiality-only) vs
// authenticated ([nonce][mac], version table) mode; wall clock and the
// per-word storage overhead are reported, not gated -- wall-clock ratios on
// shared CI hosts are weather, detection counts are physics.
//
//   bench_integrity [--trials=100] [--rate=0.02] [--records=2048]
//                   [--oram-items=1024] [--json=PATH]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "bench_common.h"
#include "extmem/client.h"
#include "extmem/io_engine.h"
#include "oram/sqrt_oram.h"
#include "util/flags.h"
#include "util/table.h"

namespace oem {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

[[noreturn]] void die(const std::string& why) {
  std::fprintf(stderr, "bench_integrity: %s\n", why.c_str());
  std::exit(2);
}

struct TrialTally {
  std::uint64_t completed = 0;
  std::uint64_t detected = 0;         // clean kIntegrity
  std::uint64_t silent = 0;           // completed with WRONG output -- fatal
  std::uint64_t other_errors = 0;     // non-kIntegrity failure -- fatal
  std::uint64_t retries_burned = 0;   // device retries in failed trials -- fatal
};

Result<Session> build_session(std::uint64_t tamper_seed, double rate) {
  Session::Builder b;
  b.block_records(4).cache_records(64).seed(11).io_retries(4);
  if (rate > 0.0) b.tampering(tamper_seed, rate);
  return b.build();
}

/// One workload = one deterministic algorithm run whose full output lands in
/// *out.  Identical inputs across trials, so the reference comparison is
/// exact.
template <typename AlgoFn>
TrialTally run_trials(const char* what, int trials, double rate, AlgoFn&& algo) {
  auto clean = build_session(0, 0.0);
  if (!clean.ok()) die(std::string(what) + ": clean build failed");
  std::vector<Record> expected;
  if (!algo(*clean, &expected).ok())
    die(std::string(what) + ": tamper-free reference run failed");
  const std::uint64_t expected_trace = clean->trace().hash();

  TrialTally tally;
  for (int trial = 0; trial < trials; ++trial) {
    auto tampered = build_session(9000 + trial, rate);
    if (!tampered.ok()) die(std::string(what) + ": tampered build failed");
    std::vector<Record> got;
    Status st = algo(*tampered, &got);
    if (st.ok()) {
      const bool identical =
          got == expected && tampered->trace().hash() == expected_trace;
      if (identical) {
        ++tally.completed;
      } else {
        ++tally.silent;
      }
    } else if (st.code() == StatusCode::kIntegrity) {
      ++tally.detected;
    } else {
      ++tally.other_errors;
    }
    tally.retries_burned += tampered->client().device().retries();
  }
  return tally;
}

TrialTally sort_trials(int trials, double rate, std::uint64_t records) {
  return run_trials("sort", trials, rate,
                    [records](Session& s, std::vector<Record>* out) -> Status {
                      auto data = s.outsource(bench::random_records(records, 7));
                      if (!data.ok()) return data.status();
                      auto rep = s.sort(*data, /*seed=*/5);
                      if (!rep.ok()) return rep.status();
                      auto result = s.retrieve(*data);
                      if (!result.ok()) return result.status();
                      *out = std::move(*result);
                      return Status::Ok();
                    });
}

TrialTally oram_trials(int trials, double rate, std::uint64_t items) {
  return run_trials("oram", trials, rate,
                    [items](Session& s, std::vector<Record>* out) -> Status {
                      auto oram = s.open_oram(items, oram::ShuffleKind::kDeterministic,
                                              /*seed=*/17);
                      if (!oram.ok()) return oram.status();
                      for (std::uint64_t i = 0; i <= oram->epoch_length(); ++i) {
                        const std::uint64_t idx = (i * 5) % items;
                        auto v = oram->access(idx);
                        if (!v.ok()) return v.status();
                        // A wrong value with Ok status is silent corruption:
                        // poison the output so the reference compare fails.
                        out->push_back({i, *v == oram->expected_value(idx)
                                               ? *v
                                               : ~*v});
                      }
                      return Status::Ok();
                    });
}

/// Part 2: one ORAM epoch over EncryptedBackend, plain vs authenticated.
struct CostRow {
  double wall_ms = 0;
  double crypto_ms = 0;
  std::size_t stored_words = 0;  // per logical block, headers included
};

CostRow run_epoch_cost(std::size_t B, std::uint64_t M, std::uint64_t items,
                       bool authenticated) {
  ClientParams p;
  p.block_records = B;
  p.cache_records = M;
  p.seed = 42;
  p.backend = encrypted_backend(mem_backend(), 0x5eedULL, authenticated);
  Client client(p);
  const auto t0 = Clock::now();
  oram::SqrtOram o(client, items, oram::ShuffleKind::kDeterministic, /*seed=*/5);
  for (std::uint64_t i = 0; i < o.epoch_length(); ++i) {
    const std::uint64_t idx = (i * 13) % items;
    if (o.access(idx) != o.expected_value(idx))
      die("epoch cost run produced a wrong value");
  }
  CostRow r;
  r.wall_ms = ms_between(t0, Clock::now());
  r.crypto_ms = client.stats().crypto_ns / 1e6;
  r.stored_words = client.device().block_words() + (authenticated ? 2 : 1);
  return r;
}

}  // namespace
}  // namespace oem

int main(int argc, char** argv) {
  using namespace oem;
  Flags flags(argc, argv);
  const int trials = static_cast<int>(flags.get_u64("trials", 100));
  const double rate = std::stod(flags.get("rate", "0.02"));
  const std::uint64_t records = flags.get_u64("records", 2048);
  const std::uint64_t oram_items = flags.get_u64("oram-items", 1024);
  const std::string json_path = flags.get("json", "");
  flags.validate_or_die();

  bench::banner("E16", "fail-closed integrity: detection proofs + MAC cost");
  bench::note("tamper rate " + Table::fmt(rate, 4) + ", " +
              std::to_string(trials) + " seeded trials per workload; every "
              "trial must finish identical-to-reference or as clean kIntegrity");

  bool claim_met = true;
  std::string json_rows;
  Table t({"workload", "trials", "completed", "detected", "silent", "other",
           "retries"});
  auto tally_row = [&](const char* what, const TrialTally& tally) {
    t.add_row({what, std::to_string(trials), std::to_string(tally.completed),
               std::to_string(tally.detected), std::to_string(tally.silent),
               std::to_string(tally.other_errors),
               std::to_string(tally.retries_burned)});
    if (!json_rows.empty()) json_rows += ",";
    json_rows += std::string("{\"workload\":\"") + what +
                 "\",\"trials\":" + std::to_string(trials) +
                 ",\"completed\":" + std::to_string(tally.completed) +
                 ",\"detected\":" + std::to_string(tally.detected) +
                 ",\"silent\":" + std::to_string(tally.silent) +
                 ",\"other_errors\":" + std::to_string(tally.other_errors) +
                 ",\"retries_burned\":" + std::to_string(tally.retries_burned) + "}";
    if (tally.silent != 0) {
      bench::note(std::string("CLAIM VIOLATED: ") + what + " had " +
                  std::to_string(tally.silent) + " SILENT corruption(s)");
      claim_met = false;
    }
    if (tally.other_errors != 0) {
      bench::note(std::string("CLAIM VIOLATED: ") + what +
                  " surfaced a non-kIntegrity failure under tampering");
      claim_met = false;
    }
    if (tally.retries_burned != 0) {
      bench::note(std::string("CLAIM VIOLATED: ") + what +
                  " burned RetryPolicy attempts on integrity failures");
      claim_met = false;
    }
    if (tally.detected == 0) {
      bench::note(std::string("CLAIM VIOLATED: ") + what +
                  " detected nothing -- the tamper harness is not firing");
      claim_met = false;
    }
  };

  tally_row("sort", sort_trials(trials, rate, records));
  tally_row("oram_epoch", oram_trials(trials, rate, oram_items));
  t.print(std::cout);

  // --- MAC overhead, informational ---
  const CostRow plain = run_epoch_cost(4, 64, oram_items, /*authenticated=*/false);
  const CostRow auth = run_epoch_cost(4, 64, oram_items, /*authenticated=*/true);
  Table c({"mode", "wall ms", "crypto ms", "stored words/block"});
  c.add_row({"encrypted", Table::fmt(plain.wall_ms, 1),
             Table::fmt(plain.crypto_ms, 1), std::to_string(plain.stored_words)});
  c.add_row({"encrypted+auth", Table::fmt(auth.wall_ms, 1),
             Table::fmt(auth.crypto_ms, 1), std::to_string(auth.stored_words)});
  c.print(std::cout);
  const double overhead = plain.wall_ms > 0 ? auth.wall_ms / plain.wall_ms : 0;
  bench::note("MAC + freshness wall overhead on an ORAM epoch: " +
              Table::fmt(overhead, 2) + "x (informational; storage overhead is "
              "one extra header word per block)");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"bench\":\"integrity\",\"claim_met\":"
        << (claim_met ? "true" : "false") << ",\"rate\":" << rate
        << ",\"mac_wall_overhead\":" << overhead
        << ",\"plain_wall_ms\":" << plain.wall_ms
        << ",\"auth_wall_ms\":" << auth.wall_ms << ",\"rows\":[" << json_rows
        << "]}\n";
    bench::note("wrote " + json_path);
  }
  return claim_met ? 0 : 1;
}
