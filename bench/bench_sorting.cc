// E8 -- Theorem 21: randomized oblivious sort at O((N/B) log_{M/B}(N/B)).
//
// Three views:
//   E8a: measured I/O per block vs n for the randomized sort (forced
//        recursive regime) and the deterministic Lemma-2 sort -- the
//        reproducible lab-scale claim is the GROWTH RATE gap (log_m vs
//        log^2), reported as per-doubling growth factors.
//   E8b: cost-model extrapolation to the paper's asymptotic regime, showing
//        where the randomized sort's absolute win appears.
//   E8c: correctness/success summary + non-oblivious external merge sort
//        floor (the price of obliviousness).
//   E8d: storage-backend reality check -- the batched read_many/write_many
//        path vs per-block I/O on the file and latency backends, wall-clock.
//   E8e: the I/O engine -- sharded striping x async prefetch on a 2us-RTT
//        latency backend, wall-clock; optionally emitted as JSON for CI.
//
// Flags: --records=N scales every view (default 524288); --backend selects
// the storage for E8a-E8c (E8d/E8e always compare configurations
// explicitly); --json=PATH writes E8e's grid as a JSON artifact.
#include <chrono>
#include <cmath>
#include <fstream>

#include "bench_common.h"
#include "core/oblivious_sort.h"
#include "extmem/io_engine.h"
#include "sortnet/external_sort.h"
#include "util/math.h"

using namespace oem;

namespace {

core::ObliviousSortOptions shape_opts() {
  core::ObliviousSortOptions opts;
  opts.paper_dense_rule = false;  // lab scale is always "dense"; force the pipeline
  opts.sparse_quantiles = true;
  opts.quantiles.paper_intervals = false;
  opts.min_recursive_blocks = 2048;
  return opts;
}

struct E8aResult {
  double rand_pb_per_level = 0.0;  // measured rand I/O per block per level
  double det_c2 = 0.0;             // det I/O per block / log^2(n/(m/2)-runs)
};

E8aResult g_e8a;

void e8a(std::uint64_t n_max) {
  bench::banner("E8a", "randomized (Theorem 21) vs deterministic (Lemma 2): growth rates");
  bench::note("claim shape: rand per-block I/O ~ c1 * log_m(n) (one level per q-fold "
              "growth), det ~ c2 * log^2(n/m); growth columns show the gap");
  const std::size_t B = 8;
  const std::uint64_t m = 256;  // q = 4
  Table t({"n (blocks)", "rand I/O/blk", "rand growth", "det I/O/blk", "det growth",
           "levels", "ok"});
  double prev_rand = 0, prev_det = 0;
  for (std::uint64_t n : {n_max / 16, n_max / 4, n_max}) {
    if (n == 0) continue;
    Client c(bench::params(B, m * B));
    ExtArray a = c.alloc(n * B, Client::Init::kUninit);
    c.poke(a, bench::random_records(n * B, 2));
    c.reset_stats();
    ExtArray out;
    auto res = core::oblivious_sort_padded(c, a, &out, 5, shape_opts());
    const double rand_pb =
        static_cast<double>(c.stats().total()) / static_cast<double>(n);
    const double det_pb =
        static_cast<double>(sortnet::ext_sort_predicted_ios(n, m)) /
        static_cast<double>(n);
    t.add_row({std::to_string(n), Table::fmt(rand_pb, 0),
               prev_rand ? Table::fmt(rand_pb / prev_rand, 2) : "-",
               Table::fmt(det_pb, 0),
               prev_det ? Table::fmt(det_pb / prev_det, 2) : "-",
               std::to_string(res.stats.levels), res.status.ok() ? "yes" : "NO"});
    bench::engine_stats_note(c, "n=" + std::to_string(n));
    prev_rand = rand_pb;
    prev_det = det_pb;
    g_e8a.rand_pb_per_level =
        rand_pb / std::max(1.0, static_cast<double>(res.stats.levels));
    const double lg = std::log2(static_cast<double>(n) / (m / 2.0));
    g_e8a.det_c2 = det_pb / (lg * lg);
  }
  t.print(std::cout);
}

void e8b() {
  bench::banner("E8b", "cost-model extrapolation (calibrated from E8a's measurements)");
  bench::note("rand(n)/n = c1 * log_{q+1}(n), det(n)/n = c2 * log^2(n/m): the ratio "
              "det/rand grows like log(n) -- the paper's saved factor.  With THIS "
              "implementation's constants (c1/c2 printed below) the absolute crossover "
              "sits far beyond practical sizes; the reproduced claim is the growth gap.");
  const double m = 256.0, q1 = 5.0;
  const double c1 = g_e8a.rand_pb_per_level > 0 ? g_e8a.rand_pb_per_level : 900.0;
  const double c2 = g_e8a.det_c2 > 0 ? g_e8a.det_c2 : 1.5;
  Table t({"n (blocks)", "levels", "rand I/O/blk", "det I/O/blk", "det/rand"});
  for (double lg2 = 20; lg2 <= 100; lg2 += 20) {
    const double n = std::pow(2.0, lg2);
    const double levels = std::max(1.0, (lg2 - 11.0) * std::log(2.0) / std::log(q1));
    const double rand_pb = c1 * levels;
    const double lgnm = lg2 - std::log2(m / 2.0);
    const double det_pb = c2 * lgnm * lgnm;
    t.add_row({"2^" + Table::fmt(lg2, 0), Table::fmt(levels, 1),
               Table::fmt(rand_pb, 0), Table::fmt(det_pb, 0),
               Table::fmt(det_pb / rand_pb, 2)});
  }
  t.print(std::cout);
  // Crossover: c1 * (ln2/ln q1) * (lg n - 11) = c2 * (lg n - 7)^2.
  const double a = std::log(2.0) / std::log(q1);
  double lo = 12, hi = 400;
  for (int it = 0; it < 60; ++it) {
    const double mid = (lo + hi) / 2;
    if (c2 * (mid - 7) * (mid - 7) < c1 * a * (mid - 11)) lo = mid;
    else hi = mid;
  }
  std::cout << "estimated absolute crossover: n ~ 2^" << Table::fmt(hi, 0)
            << " blocks (c1=" << Table::fmt(c1, 1) << ", c2=" << Table::fmt(c2, 2)
            << ")\n";
}

void e8c(std::uint64_t n_max) {
  bench::banner("E8c", "the price of obliviousness: non-oblivious merge-sort floor");
  bench::note("a non-oblivious external merge sort uses ~2n*ceil(log_m(n/m)+1) I/Os; both "
              "oblivious sorts pay a polylog factor over it (the paper's Theorem 21 "
              "closes the gap to a single log)");
  const std::size_t B = 8;
  Table t({"n (blocks)", "m", "merge-sort floor", "det oblivious", "rand oblivious",
           "det/floor", "rand/floor"});
  const std::uint64_t m = 256;
  for (std::uint64_t n : {n_max / 4, n_max}) {
    if (n == 0) continue;
    const double floor_io =
        2.0 * static_cast<double>(n) *
        (std::ceil(log_base(static_cast<double>(n) / static_cast<double>(m),
                            static_cast<double>(m))) +
         1.0);
    const double det = static_cast<double>(sortnet::ext_sort_predicted_ios(n, m));
    Client c(bench::params(B, m * B));
    ExtArray a = c.alloc(n * B, Client::Init::kUninit);
    c.poke(a, bench::random_records(n * B, 2));
    c.reset_stats();
    ExtArray out;
    (void)core::oblivious_sort_padded(c, a, &out, 5, shape_opts());
    const double rnd = static_cast<double>(c.stats().total());
    t.add_row({std::to_string(n), std::to_string(m), Table::fmt(floor_io, 0),
               Table::fmt(det, 0), Table::fmt(rnd, 0),
               Table::fmt(det / floor_io, 1), Table::fmt(rnd / floor_io, 1)});
  }
  t.print(std::cout);
}

// E8d: the storage seam made measurable.  The identical deterministic
// oblivious sort (same block I/Os, same trace) runs against a real backend
// twice: once with the batch window forced to 1 block (per-block I/O, the
// seed's behavior) and once with the default coalescing window (m/4 blocks).
// On the file backend the win is syscall coalescing; on the latency backend
// it is round-trip amortization.
void e8d(std::uint64_t records) {
  bench::banner("E8d", "batched read_many/write_many vs per-block I/O (real backends)");
  bench::note("same sort, same trace, same block I/Os -- only the transfer granularity "
              "changes; 'backend ops' counts coalesced backend calls");
  const std::size_t B = 8;
  const std::uint64_t m = 256;

  struct Config {
    std::string backend_name;
    BackendFactory factory;
    std::uint64_t n_blocks;
  };
  // The latency rows model a 2us-RTT store and sleep for real, so they run
  // at a smaller n; the file rows exercise real syscalls at full size.
  const std::uint64_t file_blocks = std::min<std::uint64_t>(records / B, 8192);
  const std::uint64_t lat_blocks = std::min<std::uint64_t>(records / B, 1024);
  LatencyProfile lan;
  lan.per_op_ns = 2000;
  lan.per_word_ns = 2;
  std::vector<Config> configs = {
      {"file", file_backend(), file_blocks},
      {"latency(2us)", latency_backend({}, lan), lat_blocks},
  };

  Table t({"backend", "n (blocks)", "batch (blocks)", "block I/Os", "backend ops",
           "wall ms", "speedup"});
  for (const auto& cfg : configs) {
    double per_block_ms = 0;
    for (std::uint64_t batch : {std::uint64_t{1}, std::uint64_t{0}}) {  // 0 = auto
      ClientParams p = bench::params(B, m * B);
      p.backend = cfg.factory;
      p.io_batch_blocks = batch;
      Client c(p);
      ExtArray a = c.alloc_blocks(cfg.n_blocks, Client::Init::kUninit);
      c.poke(a, bench::random_records(cfg.n_blocks * B, 2));
      c.reset_stats();
      const auto t0 = std::chrono::steady_clock::now();
      sortnet::ext_oblivious_sort(c, a);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0)
              .count();
      if (batch == 1) per_block_ms = ms;
      t.add_row({cfg.backend_name, std::to_string(cfg.n_blocks),
                 batch == 1 ? "1 (per-block)" : std::to_string(c.io_batch_blocks()),
                 std::to_string(c.stats().total()),
                 std::to_string(c.stats().total_ops()), Table::fmt(ms, 1),
                 batch == 1 ? "1.00x" : Table::fmt(per_block_ms / ms, 2) + "x"});
    }
  }
  t.print(std::cout);
}

// E8e: the I/O engine end to end.  The identical deterministic oblivious
// sort (same block I/Os, same trace -- the trace-equivalence suite proves
// it) runs against a 2us-RTT latency-modeled store in four configurations:
// {1, 4} shards x {off, on} prefetch.  Sharding makes the four simulated
// stores stream -- and sleep -- in parallel; prefetch overlaps each pass's
// compute with the next window's I/O through the AsyncBackend.
void e8e(const std::string& json_path) {
  bench::banner("E8e", "I/O engine: sharded striping x async prefetch (latency backend)");
  bench::note("same sort, same per-block trace; each store models a 2us-RTT, "
              "~640 Mbps link (100ns/word), slept for real -- wall-clock is the "
              "whole point: striping streams 4 links at once, prefetch hides "
              "the client's compute inside the transfer time");
  // Fixed lab size (like E8d's caps): enough network passes that per-pass
  // engine overheads amortize, small enough that four real-slept runs stay
  // under ~100ms total.
  const std::size_t B = 8;
  const std::uint64_t m = 256;
  const std::uint64_t n_blocks = 1024;
  LatencyProfile lan;
  lan.per_op_ns = 2000;
  lan.per_word_ns = 100;
  lan.real_sleep = true;

  struct Cfg {
    std::size_t shards;
    bool prefetch;
  };
  const Cfg cfgs[] = {{1, false}, {4, false}, {1, true}, {4, true}};

  Table t({"shards", "prefetch", "block I/Os", "wall ms", "records/s", "speedup"});
  double base_ms = 0;
  std::string json_rows;
  for (const Cfg& cfg : cfgs) {
    LatencyProfile profile = lan;
    profile.lanes = cfg.shards;  // parallel-disk model over the striped store
    BackendFactory f;
    if (cfg.shards > 1) f = sharded_backend(BackendFactory{}, cfg.shards);
    f = latency_backend(std::move(f), profile);
    if (cfg.prefetch) f = async_backend(std::move(f));
    ClientParams p = bench::params(B, m * B);
    p.backend = std::move(f);
    // One backend op per merge-split pass (2 runs = m blocks): the engine
    // view measures striping + overlap, not window-size effects (E8d does).
    p.io_batch_blocks = m;
    Client c(p);
    ExtArray a = c.alloc_blocks(n_blocks, Client::Init::kUninit);
    c.poke(a, bench::random_records(n_blocks * B, 2));
    c.reset_stats();
    const auto t0 = std::chrono::steady_clock::now();
    sortnet::ext_oblivious_sort(c, a);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0)
            .count();
    if (cfg.shards == 1 && !cfg.prefetch) base_ms = ms;
    const double rps = static_cast<double>(n_blocks * B) / (ms / 1000.0);
    const double speedup = base_ms / ms;
    t.add_row({std::to_string(cfg.shards), cfg.prefetch ? "on" : "off",
               std::to_string(c.stats().total()), Table::fmt(ms, 1),
               Table::fmt(rps, 0), Table::fmt(speedup, 2) + "x"});
    if (!json_rows.empty()) json_rows += ",";
    json_rows += "{\"shards\":" + std::to_string(cfg.shards) +
                 ",\"prefetch\":" + (cfg.prefetch ? "true" : "false") +
                 ",\"wall_ms\":" + Table::fmt(ms, 3) +
                 ",\"records_per_s\":" + Table::fmt(rps, 0) +
                 ",\"speedup\":" + Table::fmt(speedup, 3) + "}";
  }
  t.print(std::cout);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"bench\":\"io_engine\",\"records\":" << n_blocks * B
        << ",\"per_op_ns\":2000,\"per_word_ns\":100,\"rows\":[" << json_rows << "]}\n";
    bench::note("wrote " + json_path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t records = flags.get_u64("records", 524288);
  const std::string json_path = flags.get("json", "");
  bench::set_backend_from_flags(flags);  // consumes --backend, --shards, --prefetch
  flags.validate_or_die();
  const std::uint64_t n_max = std::max<std::uint64_t>(records / 8, 16);  // B = 8
  e8a(n_max);
  e8b();
  e8c(n_max);
  e8d(records);
  e8e(json_path);
  return 0;
}
