// E8 -- Theorem 21: randomized oblivious sort at O((N/B) log_{M/B}(N/B)).
//
// Three views:
//   E8a: measured I/O per block vs n for the randomized sort (forced
//        recursive regime) and the deterministic Lemma-2 sort -- the
//        reproducible lab-scale claim is the GROWTH RATE gap (log_m vs
//        log^2), reported as per-doubling growth factors.
//   E8b: cost-model extrapolation to the paper's asymptotic regime, showing
//        where the randomized sort's absolute win appears.
//   E8c: correctness/success summary + non-oblivious external merge sort
//        floor (the price of obliviousness).
#include <cmath>

#include "bench_common.h"
#include "core/oblivious_sort.h"
#include "sortnet/external_sort.h"
#include "util/math.h"

using namespace oem;

namespace {

core::ObliviousSortOptions shape_opts() {
  core::ObliviousSortOptions opts;
  opts.paper_dense_rule = false;  // lab scale is always "dense"; force the pipeline
  opts.sparse_quantiles = true;
  opts.quantiles.paper_intervals = false;
  opts.min_recursive_blocks = 2048;
  return opts;
}

struct E8aResult {
  double rand_pb_per_level = 0.0;  // measured rand I/O per block per level
  double det_c2 = 0.0;             // det I/O per block / log^2(n/(m/2)-runs)
};

E8aResult g_e8a;

void e8a() {
  bench::banner("E8a", "randomized (Theorem 21) vs deterministic (Lemma 2): growth rates");
  bench::note("claim shape: rand per-block I/O ~ c1 * log_m(n) (one level per q-fold "
              "growth), det ~ c2 * log^2(n/m); growth columns show the gap");
  const std::size_t B = 8;
  const std::uint64_t m = 256;  // q = 4
  Table t({"n (blocks)", "rand I/O/blk", "rand growth", "det I/O/blk", "det growth",
           "levels", "ok"});
  double prev_rand = 0, prev_det = 0;
  for (std::uint64_t n : {4096ull, 16384ull, 65536ull}) {
    Client c(bench::params(B, m * B));
    ExtArray a = c.alloc(n * B, Client::Init::kUninit);
    c.poke(a, bench::random_records(n * B, 2));
    c.reset_stats();
    ExtArray out;
    auto res = core::oblivious_sort_padded(c, a, &out, 5, shape_opts());
    const double rand_pb =
        static_cast<double>(c.stats().total()) / static_cast<double>(n);
    const double det_pb =
        static_cast<double>(sortnet::ext_sort_predicted_ios(n, m)) /
        static_cast<double>(n);
    t.add_row({std::to_string(n), Table::fmt(rand_pb, 0),
               prev_rand ? Table::fmt(rand_pb / prev_rand, 2) : "-",
               Table::fmt(det_pb, 0),
               prev_det ? Table::fmt(det_pb / prev_det, 2) : "-",
               std::to_string(res.stats.levels), res.status.ok() ? "yes" : "NO"});
    prev_rand = rand_pb;
    prev_det = det_pb;
    g_e8a.rand_pb_per_level =
        rand_pb / std::max(1.0, static_cast<double>(res.stats.levels));
    const double lg = std::log2(static_cast<double>(n) / (m / 2.0));
    g_e8a.det_c2 = det_pb / (lg * lg);
  }
  t.print(std::cout);
}

void e8b() {
  bench::banner("E8b", "cost-model extrapolation (calibrated from E8a's measurements)");
  bench::note("rand(n)/n = c1 * log_{q+1}(n), det(n)/n = c2 * log^2(n/m): the ratio "
              "det/rand grows like log(n) -- the paper's saved factor.  With THIS "
              "implementation's constants (c1/c2 printed below) the absolute crossover "
              "sits far beyond practical sizes; the reproduced claim is the growth gap.");
  const double m = 256.0, q1 = 5.0;
  const double c1 = g_e8a.rand_pb_per_level > 0 ? g_e8a.rand_pb_per_level : 900.0;
  const double c2 = g_e8a.det_c2 > 0 ? g_e8a.det_c2 : 1.5;
  Table t({"n (blocks)", "levels", "rand I/O/blk", "det I/O/blk", "det/rand"});
  for (double lg2 = 20; lg2 <= 100; lg2 += 20) {
    const double n = std::pow(2.0, lg2);
    const double levels = std::max(1.0, (lg2 - 11.0) * std::log(2.0) / std::log(q1));
    const double rand_pb = c1 * levels;
    const double lgnm = lg2 - std::log2(m / 2.0);
    const double det_pb = c2 * lgnm * lgnm;
    t.add_row({"2^" + Table::fmt(lg2, 0), Table::fmt(levels, 1),
               Table::fmt(rand_pb, 0), Table::fmt(det_pb, 0),
               Table::fmt(det_pb / rand_pb, 2)});
  }
  t.print(std::cout);
  // Crossover: c1 * (ln2/ln q1) * (lg n - 11) = c2 * (lg n - 7)^2.
  const double a = std::log(2.0) / std::log(q1);
  double lo = 12, hi = 400;
  for (int it = 0; it < 60; ++it) {
    const double mid = (lo + hi) / 2;
    if (c2 * (mid - 7) * (mid - 7) < c1 * a * (mid - 11)) lo = mid;
    else hi = mid;
  }
  std::cout << "estimated absolute crossover: n ~ 2^" << Table::fmt(hi, 0)
            << " blocks (c1=" << Table::fmt(c1, 1) << ", c2=" << Table::fmt(c2, 2)
            << ")\n";
}

void e8c() {
  bench::banner("E8c", "the price of obliviousness: non-oblivious merge-sort floor");
  bench::note("a non-oblivious external merge sort uses ~2n*ceil(log_m(n/m)+1) I/Os; both "
              "oblivious sorts pay a polylog factor over it (the paper's Theorem 21 "
              "closes the gap to a single log)");
  const std::size_t B = 8;
  Table t({"n (blocks)", "m", "merge-sort floor", "det oblivious", "rand oblivious",
           "det/floor", "rand/floor"});
  const std::uint64_t m = 256;
  for (std::uint64_t n : {16384ull, 65536ull}) {
    const double floor_io =
        2.0 * static_cast<double>(n) *
        (std::ceil(log_base(static_cast<double>(n) / static_cast<double>(m),
                            static_cast<double>(m))) +
         1.0);
    const double det = static_cast<double>(sortnet::ext_sort_predicted_ios(n, m));
    Client c(bench::params(B, m * B));
    ExtArray a = c.alloc(n * B, Client::Init::kUninit);
    c.poke(a, bench::random_records(n * B, 2));
    c.reset_stats();
    ExtArray out;
    (void)core::oblivious_sort_padded(c, a, &out, 5, shape_opts());
    const double rnd = static_cast<double>(c.stats().total());
    t.add_row({std::to_string(n), std::to_string(m), Table::fmt(floor_io, 0),
               Table::fmt(det, 0), Table::fmt(rnd, 0),
               Table::fmt(det / floor_io, 1), Table::fmt(rnd / floor_io, 1)});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  (void)flags;
  e8a();
  e8b();
  e8c();
  return 0;
}
