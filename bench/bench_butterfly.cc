// F1 + E3 -- Theorem 6: butterfly-like compaction network.
//   F1: regenerate Figure 1 (the 7-occupied-cell example, level by level).
//   E3: I/O count vs n and m; fit to c * n * log(n)/log(m); comparison with
//       the Lemma-2 sort-based compactor.
#include <cmath>

#include "bench_common.h"
#include "core/butterfly.h"
#include "util/math.h"

using namespace oem;

namespace {

/// Reproduce Figure 1's label table: positions/labels for the paper's
/// example, then simulate the level-by-level label evolution exactly as the
/// routing rule prescribes (d <- d - (d mod 2^{i+1})).
void figure1() {
  bench::banner("F1", "Figure 1 -- butterfly compaction network (paper's example)");
  // The figure shows occupied cells with labels 2 3 3 6 8 8 9 on L0.
  std::vector<std::uint64_t> pos = {2, 4, 5, 9, 12, 13, 15};
  std::vector<std::uint64_t> lab = {2, 3, 3, 6, 8, 8, 9};

  Table t({"level", "occupied cells (position:remaining-distance)"});
  std::vector<std::uint64_t> p = pos, d = lab;
  for (unsigned level = 0; level <= 4; ++level) {
    std::string row;
    for (std::size_t i = 0; i < p.size(); ++i) {
      row += std::to_string(p[i]) + ":" + std::to_string(d[i]);
      if (i + 1 < p.size()) row += "  ";
    }
    t.add_row({"L" + std::to_string(level), row});
    if (level == 4) break;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const std::uint64_t delta = d[i] % (std::uint64_t{1} << (level + 1));
      p[i] -= delta;
      d[i] -= delta;
    }
    // No-collision check (Lemma 5).
    for (std::size_t i = 1; i < p.size(); ++i) {
      if (p[i] == p[i - 1]) {
        bench::note("COLLISION -- Lemma 5 violated!");
        return;
      }
    }
  }
  t.print(std::cout);
  bench::note("final positions 0..6: tight order-preserving compaction, no collisions (Lemma 5)");
}

void e3(std::size_t B) {
  bench::banner("E3", "Theorem 6 -- tight compaction I/O vs n and m");
  bench::note("claim: I/O ~ c * n * ceil(log n / log m); sort-based compaction pays log^2");

  Table t({"n (blocks)", "m (blocks)", "butterfly I/O", "I/O per n",
           "n*ceil(log n/ g)", "sort-based I/O", "speedup"});
  for (std::uint64_t m : {16ull, 64ull, 1024ull}) {
    for (std::uint64_t n : {256ull, 1024ull, 4096ull, 16384ull}) {
      Client c1(bench::params(B, m * B));
      ExtArray a1 = c1.alloc_blocks(n, Client::Init::kUninit);
      std::vector<Record> flat(n * B);
      rng::Xoshiro g(5);
      for (std::uint64_t b = 0; b < n; ++b)
        if (g.bernoulli(0.5))
          for (std::size_t r = 0; r < B; ++r) flat[b * B + r] = {b, r};
      c1.poke(a1, flat);
      c1.reset_stats();
      core::tight_compact_blocks(c1, a1, core::block_nonempty_pred());
      const std::uint64_t bio = c1.stats().total();

      Client c2(bench::params(B, m * B));
      ExtArray a2 = c2.alloc_blocks(n, Client::Init::kUninit);
      c2.poke(a2, flat);
      c2.reset_stats();
      core::tight_compact_by_sort(c2, a2, core::block_nonempty_pred());
      const std::uint64_t sio = c2.stats().total();

      const unsigned g_levels =
          std::max<unsigned>(1, floor_log2(std::max<std::uint64_t>(2, m / 8)));
      const std::uint64_t model =
          n * ceil_div(ceil_log2(next_pow2(n)), g_levels);
      t.add_row({std::to_string(n), std::to_string(m), std::to_string(bio),
                 Table::fmt(static_cast<double>(bio) / static_cast<double>(n), 1),
                 std::to_string(model), std::to_string(sio),
                 Table::fmt(static_cast<double>(sio) / static_cast<double>(bio), 2)});
    }
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t B = static_cast<std::size_t>(flags.get_u64("B", 8));
  bench::set_backend_from_flags(flags);  // consumes --backend, --shards, --prefetch
  flags.validate_or_die();
  figure1();
  e3(B);
  return 0;
}
