// E6 -- Theorems 12/13: data-oblivious selection in O(N/B) I/Os.
// Reports: (a) I/O per record vs N (flatness = linearity) against the
// sort-then-scan baseline (Lemma 2), with the crossover; (b) success rate
// across seeds; (c) the beats-the-lower-bound observation (selection cost
// far below any sorting network's n log n compare-exchanges).
#include "bench_common.h"
#include "core/select.h"
#include "sortnet/external_sort.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t B = static_cast<std::size_t>(flags.get_u64("B", 8));
  const std::uint64_t M = flags.get_u64("M", 8 * 512);
  bench::set_backend_from_flags(flags);  // consumes --backend, --shards, --prefetch
  flags.validate_or_die();

  bench::banner("E6a", "Theorem 13 -- selection I/O linearity vs sort-then-scan baseline");
  bench::note("claim: O(N/B) selection vs O((N/B) log^2) sort-then-scan: the "
              "baseline/select ratio must GROW with N (crossover where it passes 1)");
  Table t({"N", "select I/O", "per record", "sort+scan I/O", "per record",
           "baseline/select", "ok"});
  for (std::uint64_t N : {65536ull, 262144ull, 1048576ull}) {
    Client c1(bench::params(B, M));
    ExtArray a1 = c1.alloc(N, Client::Init::kUninit);
    c1.poke(a1, bench::random_records(N, 5));
    c1.reset_stats();
    auto res = core::oblivious_select(c1, a1, N / 2, 17,
                                      core::practical_select_options());
    const std::uint64_t sel = c1.stats().total();

    const std::uint64_t base =
        sortnet::ext_sort_predicted_ios(ceil_div(N, B), M / B) + ceil_div(N, B);
    t.add_row({std::to_string(N), std::to_string(sel),
               Table::fmt(static_cast<double>(sel) / static_cast<double>(N), 3),
               std::to_string(base),
               Table::fmt(static_cast<double>(base) / static_cast<double>(N), 3),
               Table::fmt(static_cast<double>(base) / static_cast<double>(sel), 2),
               res.status.ok() ? "yes" : "NO"});
  }
  t.print(std::cout);

  bench::banner("E6b", "selection success rate and silent-error check");
  Table t2({"N", "k", "trials", "whp failures", "silent wrong answers"});
  {
    const std::uint64_t N = 65536;
    Client client(bench::params(B, M));
    auto v = bench::random_records(N, 9);
    ExtArray a = client.alloc(N, Client::Init::kUninit);
    client.poke(a, v);
    std::vector<Record> sorted = v;
    std::sort(sorted.begin(), sorted.end(), RecordLess{});
    for (std::uint64_t k : {N / 10, N / 2, N - 5}) {
      int failures = 0, wrong = 0;
      const int trials = 15;
      for (int trial = 0; trial < trials; ++trial) {
        auto res = core::oblivious_select(client, a, k, 100 + trial,
                                          core::practical_select_options());
        if (!res.status.ok()) ++failures;
        else if (!(res.value == sorted[k - 1])) ++wrong;
      }
      t2.add_row({std::to_string(N), std::to_string(k), std::to_string(trials),
                  std::to_string(failures), std::to_string(wrong)});
    }
  }
  t2.print(std::cout);

  bench::banner("E6c", "beating the compare-exchange lower bound (paper §4 discussion)");
  bench::note("Leighton et al.'s Omega(n log log n) bound applies to compare-exchange-only "
              "networks; Theorem 12 sidesteps it with copy/sum/hash primitives.");
  Table t3({"N", "select I/O (measured)", "n*log2(log2(n))/B (CE bound shape)", "ratio"});
  for (std::uint64_t N : {65536ull, 262144ull}) {
    Client client(bench::params(B, M));
    ExtArray a = client.alloc(N, Client::Init::kUninit);
    client.poke(a, bench::random_records(N, 5));
    client.reset_stats();
    (void)core::oblivious_select(client, a, N / 2, 3, core::practical_select_options());
    const double sel = static_cast<double>(client.stats().total());
    const double bound = static_cast<double>(N) *
                         std::log2(std::log2(static_cast<double>(N))) /
                         static_cast<double>(B);
    t3.add_row({std::to_string(N), Table::fmt(sel, 0), Table::fmt(bound, 0),
                Table::fmt(sel / bound, 3)});
  }
  t3.print(std::cout);
  return 0;
}
