// A1 -- ablation on the thinning-pass count c0 (Lemma 7 / Lemma 24).
// Measures the residual density of the survivor array after c0 A-to-C
// passes against the paper's 4^{-c0} per-pass collision model, and the
// downstream effect on loose-compaction success.
#include <cmath>

#include "bench_common.h"
#include "core/loose_compact.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::set_backend_from_flags(flags);  // consumes --backend, --shards, --prefetch
  flags.validate_or_die();
  const std::size_t B = 8;
  const std::uint64_t M = 8 * 128;
  const std::uint64_t n = 4096;

  bench::banner("A1", "ablation -- thinning rounds c0 vs residual density (Lemma 7 model)");
  bench::note("model: per-pass failure <= occupancy(C) ~ 1/4, so residual ~ 4^{-c0}");

  Table t({"c0", "measured residual", "4^{-c0} model", "loose-compact failures/20",
           "total I/O (one run)"});
  for (unsigned c0 : {1u, 2u, 3u, 4u, 6u}) {
    // Residual measurement: run ONLY the thinning part by using a loose
    // compaction with a huge tail threshold (no halving interference), then
    // count what stayed behind.  We emulate it directly here.
    double residual = 0.0;
    {
      Client client(bench::params(B, M));
      const std::uint64_t r_cap = n / 5;
      ExtArray cur = client.alloc_blocks(n, Client::Init::kUninit);
      std::vector<Record> flat(n * B);
      rng::Xoshiro g(3);
      std::uint64_t real = 0;
      for (std::uint64_t b = 0; b < n; ++b)
        if (g.bernoulli(0.15)) {
          ++real;
          for (std::size_t x = 0; x < B; ++x) flat[b * B + x] = {b, x};
        }
      client.poke(cur, flat);
      ExtArray c_arr = client.alloc_blocks(4 * r_cap, Client::Init::kEmpty);
      rng::Xoshiro coins(41);
      BlockBuf blk, slot;
      const BlockBuf empty = make_empty_block(B);
      for (unsigned pass = 0; pass < c0; ++pass) {
        for (std::uint64_t i = 0; i < n; ++i) {
          client.read_block(cur, i, blk);
          const std::uint64_t j = coins.below(4 * r_cap);
          client.read_block(c_arr, j, slot);
          const bool move = !blk[0].is_empty() && slot[0].is_empty();
          client.write_block(c_arr, j, move ? blk : slot);
          client.write_block(cur, i, move ? empty : blk);
        }
      }
      std::uint64_t left = 0;
      auto all = client.peek(cur);
      for (std::uint64_t b = 0; b < n; ++b)
        if (!all[b * B].is_empty()) ++left;
      residual = real ? static_cast<double>(left) / static_cast<double>(real) : 0.0;
    }

    // Downstream: loose compaction success with this c0.
    int failures = 0;
    std::uint64_t one_run_io = 0;
    for (int trial = 0; trial < 20; ++trial) {
      Client client(bench::params(B, M));
      ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
      std::vector<Record> flat(n * B);
      rng::Xoshiro g(trial + 100);
      for (std::uint64_t b = 0; b < n; ++b)
        if (g.bernoulli(0.15))
          for (std::size_t x = 0; x < B; ++x) flat[b * B + x] = {b, x};
      client.poke(a, flat);
      client.reset_stats();
      core::LooseCompactOptions opts;
      opts.thinning_rounds = c0;
      auto res = core::loose_compact_blocks(client, a, n / 5,
                                            core::block_nonempty_pred(),
                                            700 + trial, opts);
      if (!res.status.ok()) ++failures;
      one_run_io = client.stats().total();
    }
    t.add_row({std::to_string(c0), Table::fmt(residual, 4),
               Table::fmt(std::pow(0.25, c0), 4), std::to_string(failures),
               std::to_string(one_run_io)});
  }
  t.print(std::cout);
  return 0;
}
