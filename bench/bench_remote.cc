// E12 -- the remote block store, measured over localhost TCP.  An in-process
// RemoteServer holds the blocks behind the wire protocol with a configurable
// simulated propagation delay (--rtt-us, default 100us -- a fast datacenter
// round trip; the real loopback stack adds its own microseconds on top), and
// the same workloads run against it in a ladder of engine configurations:
//
//   per_block        io_batch=1, depth 1: one synchronous frame round trip
//                    per block -- the naive client pays RTT per block.
//   batched_depth1   windowed read_many/write_many frames, still one
//                    synchronous round trip at a time: RTT per window edge.
//   depth{2,4,8}     + async prefetch: K windows in flight, the AsyncBackend
//                    streams begin/complete frames on the wire, so the round
//                    trips overlap and the RTT amortizes across the ring.
//
// Block I/O counts must be IDENTICAL across configurations -- depth and
// batching change when bytes move, never what Bob sees or how many blocks
// move.  The headline claim (ISSUE 4 acceptance): depth 4 is >= 2x faster
// than depth 1 on a >= 100us-RTT connection.  --json=PATH writes the grid as
// a CI artifact (BENCH_remote.json).
#include <chrono>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/oblivious_sort.h"
#include "extmem/pipeline.h"
#include "extmem/remote.h"

using namespace oem;

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(b - a)
      .count();
}

struct WorkCase {
  std::string name;
  /// Sets up input (uncounted), resets stats, runs, returns algorithm-only ms.
  std::function<double(Client&, std::uint64_t n_blocks)> run;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t n_blocks = flags.get_u64("blocks", 256);
  const std::uint64_t rtt_us = flags.get_u64("rtt-us", 100);
  const std::string json_path = flags.get("json", "");
  flags.validate_or_die();

  bench::banner("E12", "remote block store over localhost TCP (" +
                           std::to_string(rtt_us) + "us simulated RTT)");
  bench::note("per-block vs batched vs depth-K wire pipelining; identical block "
              "I/Os by construction, only when the bytes cross the wire changes");

  RemoteServerOptions sopts;
  sopts.response_delay_ns = rtt_us * 1000;
  RemoteServer server(sopts);
  if (!server.health().ok()) {
    std::fprintf(stderr, "remote server: %s\n", server.health().ToString().c_str());
    return 1;
  }

  std::vector<WorkCase> works;
  works.push_back({"stream_copy", [](Client& c, std::uint64_t n) {
                     ExtArray src = c.alloc_blocks(n, Client::Init::kUninit);
                     ExtArray dst = c.alloc_blocks(n, Client::Init::kUninit);
                     c.poke(src, bench::random_records(n * c.B(), 7));
                     c.reset_stats();
                     const auto t0 = std::chrono::steady_clock::now();
                     pipelined_copy_pad(c, src, 0, dst, 0, n);
                     return ms_between(t0, std::chrono::steady_clock::now());
                   }});
  works.push_back({"oblivious_sort", [](Client& c, std::uint64_t n) {
                     ExtArray a = c.alloc_blocks(n, Client::Init::kUninit);
                     c.poke(a, bench::random_records(n * c.B(), 2));
                     c.reset_stats();
                     const auto t0 = std::chrono::steady_clock::now();
                     core::oblivious_sort(c, a, 7);
                     return ms_between(t0, std::chrono::steady_clock::now());
                   }});

  struct Cfg {
    const char* name;
    std::uint64_t io_batch;  // 0 = default window
    std::size_t depth;
    bool prefetch;
  };
  const std::vector<Cfg> cfgs = {{"per_block", 1, 1, false},
                                 {"batched_depth1", 0, 1, false},
                                 {"depth2_prefetch", 0, 2, true},
                                 {"depth4_prefetch", 0, 4, true},
                                 {"depth8_prefetch", 0, 8, true}};

  Table t({"work", "config", "block I/Os", "frames", "wall ms", "vs depth1"});
  std::string json_rows;
  bool claim_met = true;
  std::uint64_t next_store = 0;
  for (const WorkCase& work : works) {
    double depth1_ms = 0;
    std::uint64_t base_ios = 0;
    for (const Cfg& cfg : cfgs) {
      ClientParams p;
      p.block_records = 4;
      p.cache_records = 4 * 64;
      p.seed = 1;
      p.io_batch_blocks = cfg.io_batch;
      p.pipeline_depth = cfg.depth;
      RemoteBackendOptions ropts;
      ropts.host = server.host();
      ropts.port = server.port();
      ropts.store_id = next_store++;  // fresh namespace per run
      BackendFactory f = remote_backend(ropts);
      if (cfg.prefetch) f = async_backend(std::move(f));
      p.backend = std::move(f);
      Client c(p);
      const std::uint64_t frames_before = server.frames_served();
      const double ms = work.run(c, n_blocks);
      const std::uint64_t ios = c.stats().total();
      const std::uint64_t frames = server.frames_served() - frames_before;
      if (cfg.depth == 1 && cfg.io_batch == 0) {
        depth1_ms = ms;
        base_ios = ios;
      } else if (cfg.io_batch == 1) {
        base_ios = ios;
      } else if (ios != base_ios) {
        bench::note("WARNING: " + work.name + "/" + cfg.name +
                    " changed the block I/O count (" + std::to_string(ios) +
                    " vs " + std::to_string(base_ios) + ")");
      }
      const double speedup = depth1_ms > 0 ? depth1_ms / ms : 0.0;
      if (std::string(cfg.name) == "depth4_prefetch" && speedup < 2.0)
        claim_met = false;
      t.add_row({work.name, cfg.name, std::to_string(ios), std::to_string(frames),
                 Table::fmt(ms, 1),
                 depth1_ms > 0 ? Table::fmt(speedup, 2) + "x" : "--"});
      if (!json_rows.empty()) json_rows += ",";
      json_rows += "{\"work\":\"" + work.name + "\",\"config\":\"" + cfg.name +
                   "\",\"block_ios\":" + std::to_string(ios) +
                   ",\"frames\":" + std::to_string(frames) +
                   ",\"wall_ms\":" + Table::fmt(ms, 3) +
                   ",\"speedup_vs_depth1\":" + Table::fmt(speedup, 3) + "}";
    }
  }
  t.print(std::cout);
  bench::note(claim_met
                  ? "depth-4 pipelining >= 2x over depth-1 at this RTT: MET"
                  : "depth-4 pipelining >= 2x over depth-1 at this RTT: NOT MET");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"bench\":\"remote\",\"rtt_us\":" << rtt_us
        << ",\"blocks\":" << n_blocks << ",\"claim_depth4_ge_2x\":"
        << (claim_met ? "true" : "false") << ",\"rows\":[" << json_rows << "]}\n";
    bench::note("wrote " + json_path);
  }
  return claim_met ? 0 : 1;
}
