// E12 -- the remote block store, measured over localhost TCP.  An in-process
// RemoteServer holds the blocks behind the wire protocol with a configurable
// simulated propagation delay (--rtt-us, default 100us -- a fast datacenter
// round trip; the real loopback stack adds its own microseconds on top), and
// the same workloads run against it in a ladder of engine configurations:
//
//   per_block        io_batch=1, depth 1: one synchronous frame round trip
//                    per block -- the naive client pays RTT per block.
//   batched_depth1   windowed read_many/write_many frames, still one
//                    synchronous round trip at a time: RTT per window edge.
//   depth{2,4,8}     + async prefetch: K windows in flight, the AsyncBackend
//                    streams begin/complete frames on the wire, so the round
//                    trips overlap and the RTT amortizes across the ring.
//
// Block I/O counts must be IDENTICAL across configurations -- depth and
// batching change when bytes move, never what Bob sees or how many blocks
// move.  The headline claim (ISSUE 4 acceptance): depth 4 is >= 2x faster
// than depth 1 on a >= 100us-RTT connection.  --json=PATH writes the grid as
// a CI artifact (BENCH_remote.json).
// E13 (below) is the striping x depth grid: ShardedBackend forwards the
// split-phase seam, so sharded(4) at depth 4 keeps 4 x 4 frames on the wire
// -- the exit code enforces that depth 4 is >= 2x over depth 1 WITH striping
// already on (they multiply instead of composing serially), and that a
// write-back cache (--cache-blocks) cuts >= 30% of the wire ops on a
// re-touching ORAM-epoch workload at identical outputs.
#include <chrono>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/oblivious_sort.h"
#include "extmem/pipeline.h"
#include "extmem/remote.h"
#include "server/server.h"
#include "oram/sqrt_oram.h"

using namespace oem;

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(b - a)
      .count();
}

struct WorkCase {
  std::string name;
  /// Sets up input (uncounted), resets stats, runs, returns algorithm-only ms.
  std::function<double(Client&, std::uint64_t n_blocks)> run;
};

}  // namespace

namespace {

/// E13: the striping x depth grid plus the write-back-cache sweep.  Returns
/// true when both acceptance claims hold: sharded(4)+depth4 >= 2x over
/// sharded(4)+depth1 at identical block-I/O counts, and the cached
/// ORAM-epoch row spends >= 30% fewer wire ops than uncached with identical
/// outputs.
bool run_sharded_grid(RemoteServer& server, std::uint64_t n_blocks,
                      std::size_t cache_blocks, std::uint64_t* store_counter,
                      std::string* json_rows) {
  bench::banner("E13", "striping x depth: split-phase ShardedBackend over the wire");
  bench::note("sharded(K) forwards begin/complete per shard, so K connections "
              "each carry their own in-flight window: K x depth frames on the "
              "wire; block I/Os identical across the grid by construction");

  auto make_params = [&](std::size_t shards, std::size_t depth, std::size_t cache,
                         bool prefetch) {
    ClientParams p;
    p.block_records = 4;
    p.cache_records = 4 * 64;
    p.seed = 1;
    p.pipeline_depth = depth;
    const std::uint64_t ns = (*store_counter += 16);
    ShardFactory per_shard = [&server, ns](std::size_t block_words,
                                           std::size_t shard) {
      RemoteBackendOptions ropts;
      ropts.host = server.host();
      ropts.port = server.port();
      ropts.store_id = ns | shard;
      return remote_backend(ropts)(block_words);
    };
    BackendFactory f = sharded_backend(std::move(per_shard), shards,
                                       /*parallel_dispatch=*/-1);
    if (cache > 0) f = caching_backend(std::move(f), cache);
    if (prefetch) f = async_backend(std::move(f));
    p.backend = std::move(f);
    return p;
  };

  bool ok = true;
  Table t({"shards", "depth", "block I/Os", "frames", "wall ms", "vs depth1"});
  std::uint64_t base_ios = 0;
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    double depth1_ms = 0;
    for (std::size_t depth : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
      ClientParams p = make_params(shards, depth, 0, /*prefetch=*/depth > 1);
      Client c(p);
      ExtArray a = c.alloc_blocks(n_blocks, Client::Init::kUninit);
      c.poke(a, bench::random_records(n_blocks * c.B(), 2));
      c.reset_stats();
      const std::uint64_t frames_before = server.frames_served();
      const auto t0 = std::chrono::steady_clock::now();
      core::oblivious_sort(c, a, 7);
      const double ms = ms_between(t0, std::chrono::steady_clock::now());
      const std::uint64_t ios = c.stats().total();
      const std::uint64_t frames = server.frames_served() - frames_before;
      if (base_ios == 0) base_ios = ios;
      if (ios != base_ios) {
        bench::note("CLAIM VIOLATED: sharded" + std::to_string(shards) + "/depth" +
                    std::to_string(depth) + " changed the block I/O count (" +
                    std::to_string(ios) + " vs " + std::to_string(base_ios) + ")");
        ok = false;
      }
      if (depth == 1) depth1_ms = ms;
      const double speedup = depth1_ms > 0 ? depth1_ms / ms : 0.0;
      if (shards == 4 && depth == 4 && speedup < 2.0) {
        bench::note("CLAIM VIOLATED: sharded(4)+depth4 is only " +
                    Table::fmt(speedup, 2) + "x over sharded(4)+depth1");
        ok = false;
      }
      t.add_row({std::to_string(shards), std::to_string(depth), std::to_string(ios),
                 std::to_string(frames), Table::fmt(ms, 1),
                 depth == 1 ? "--" : Table::fmt(speedup, 2) + "x"});
      if (!json_rows->empty()) *json_rows += ",";
      *json_rows += "{\"work\":\"oblivious_sort\",\"shards\":" +
                    std::to_string(shards) + ",\"depth\":" + std::to_string(depth) +
                    ",\"cache_blocks\":0,\"block_ios\":" + std::to_string(ios) +
                    ",\"frames\":" + std::to_string(frames) +
                    ",\"wall_ms\":" + Table::fmt(ms, 3) +
                    ",\"speedup_vs_depth1\":" + Table::fmt(speedup, 3) + "}";
    }
  }
  t.print(std::cout);

  // The cache sweep: an ORAM epoch re-touches its stash on every access, so
  // a client-side write-back cache absorbs most of the wire traffic.
  bench::note("");
  bench::note("ORAM epoch on sharded(4)+depth4 (re-touching workload), cache off "
              "vs --cache-blocks=" + std::to_string(cache_blocks));
  Table ct({"cache (blocks)", "wire frames", "hit rate", "wall ms", "vs uncached"});
  std::uint64_t uncached_frames = 0;
  std::vector<std::uint64_t> uncached_values;
  for (std::size_t cache : {std::size_t{0}, cache_blocks}) {
    ClientParams p = make_params(4, 4, cache, /*prefetch=*/true);
    Client c(p);
    // Construction (the initial shuffle) is setup, like poke() in the other
    // works: the measured region is the epoch's ACCESS PHASE -- the
    // re-touching part, where every access re-scans the whole stash and
    // appends to it, so the cache serves the scan and absorbs the appends.
    // The access at used_ == sqrt(N) would trigger the epoch reshuffle (a
    // streaming sort, no reuse for any cache); stop one short of it.
    oram::SqrtOram o(c, 256, oram::ShuffleKind::kRandomized, /*seed=*/23);
    c.device().drain();
    const std::uint64_t frames_before = server.frames_served();
    CacheStats cs_before;
    if (const CachingBackend* cb = c.device().cache_backend()) cs_before = cb->stats();
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> values;
    for (std::uint64_t i = 0; i + 1 < o.epoch_length(); ++i)
      values.push_back(o.access((i * 7) % 256));
    c.device().drain();
    // Charge the cached row its deferred write-backs inside the measured
    // region, so the frame comparison against the uncached row (which paid
    // every write during the epoch) is apples-to-apples.
    if (CachingBackend* cb = c.device().cache_backend()) {
      Status fst = cb->flush();
      if (!fst.ok()) {
        bench::note("cache flush failed: " + fst.ToString());
        ok = false;
      }
    }
    const double ms = ms_between(t0, std::chrono::steady_clock::now());
    const std::uint64_t frames = server.frames_served() - frames_before;
    double hit_rate = 0.0;
    if (const CachingBackend* cb = c.device().cache_backend()) {
      const CacheStats cs = cb->stats();  // delta over the measured region
      const std::uint64_t h = cs.hits - cs_before.hits;
      const std::uint64_t m = cs.misses - cs_before.misses;
      hit_rate = h + m == 0 ? 0.0 : static_cast<double>(h) / static_cast<double>(h + m);
    }
    if (cache == 0) {
      uncached_frames = frames;
      uncached_values = values;
    } else {
      if (values != uncached_values) {
        bench::note("CLAIM VIOLATED: cached ORAM outputs diverged from uncached");
        ok = false;
      }
      if (frames * 10 > uncached_frames * 7) {
        bench::note("CLAIM VIOLATED: cached row spends " + std::to_string(frames) +
                    " wire frames vs " + std::to_string(uncached_frames) +
                    " uncached (< 30% saved)");
        ok = false;
      }
    }
    const double saved =
        uncached_frames > 0 && cache != 0
            ? 100.0 * (1.0 - static_cast<double>(frames) /
                                 static_cast<double>(uncached_frames))
            : 0.0;
    ct.add_row({std::to_string(cache), std::to_string(frames),
                cache == 0 ? "--" : Table::fmt(100.0 * hit_rate, 1) + "%",
                Table::fmt(ms, 1),
                cache == 0 ? "--" : Table::fmt(saved, 1) + "% fewer frames"});
    if (!json_rows->empty()) *json_rows += ",";
    *json_rows += "{\"work\":\"oram_epoch\",\"shards\":4,\"depth\":4,"
                  "\"cache_blocks\":" + std::to_string(cache) +
                  ",\"frames\":" + std::to_string(frames) +
                  ",\"hit_rate\":" + Table::fmt(hit_rate, 3) +
                  ",\"wall_ms\":" + Table::fmt(ms, 3) + "}";
  }
  ct.print(std::cout);
  bench::note(ok ? "E13 claims (sharded4 x depth4 >= 2x, cache >= 30% fewer "
                   "wire ops): MET"
                 : "E13 claims: NOT MET");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t n_blocks = flags.get_u64("blocks", 256);
  const std::uint64_t rtt_us = flags.get_u64("rtt-us", 100);
  const std::string json_path = flags.get("json", "");
  const std::string sharded_json_path = flags.get("sharded-json", "");
  const std::size_t cache_blocks =
      static_cast<std::size_t>(flags.get_u64("cache-blocks", 64));
  flags.validate_or_die();
  if (cache_blocks < 1) {
    std::fprintf(stderr, "--cache-blocks must be >= 1 for the E13 sweep\n");
    return 2;
  }

  bench::banner("E12", "remote block store over localhost TCP (" +
                           std::to_string(rtt_us) + "us simulated RTT)");
  bench::note("per-block vs batched vs depth-K wire pipelining; identical block "
              "I/Os by construction, only when the bytes cross the wire changes");

  RemoteServerOptions sopts;
  sopts.response_delay_ns = rtt_us * 1000;
  RemoteServer server(sopts);
  if (!server.health().ok()) {
    std::fprintf(stderr, "remote server: %s\n", server.health().ToString().c_str());
    return 1;
  }

  std::vector<WorkCase> works;
  works.push_back({"stream_copy", [](Client& c, std::uint64_t n) {
                     ExtArray src = c.alloc_blocks(n, Client::Init::kUninit);
                     ExtArray dst = c.alloc_blocks(n, Client::Init::kUninit);
                     c.poke(src, bench::random_records(n * c.B(), 7));
                     c.reset_stats();
                     const auto t0 = std::chrono::steady_clock::now();
                     pipelined_copy_pad(c, src, 0, dst, 0, n);
                     return ms_between(t0, std::chrono::steady_clock::now());
                   }});
  works.push_back({"oblivious_sort", [](Client& c, std::uint64_t n) {
                     ExtArray a = c.alloc_blocks(n, Client::Init::kUninit);
                     c.poke(a, bench::random_records(n * c.B(), 2));
                     c.reset_stats();
                     const auto t0 = std::chrono::steady_clock::now();
                     core::oblivious_sort(c, a, 7);
                     return ms_between(t0, std::chrono::steady_clock::now());
                   }});

  struct Cfg {
    const char* name;
    std::uint64_t io_batch;  // 0 = default window
    std::size_t depth;
    bool prefetch;
  };
  const std::vector<Cfg> cfgs = {{"per_block", 1, 1, false},
                                 {"batched_depth1", 0, 1, false},
                                 {"depth2_prefetch", 0, 2, true},
                                 {"depth4_prefetch", 0, 4, true},
                                 {"depth8_prefetch", 0, 8, true}};

  Table t({"work", "config", "block I/Os", "frames", "wall ms", "vs depth1"});
  std::string json_rows;
  bool claim_met = true;
  std::uint64_t next_store = 0;
  for (const WorkCase& work : works) {
    double depth1_ms = 0;
    std::uint64_t base_ios = 0;
    for (const Cfg& cfg : cfgs) {
      ClientParams p;
      p.block_records = 4;
      p.cache_records = 4 * 64;
      p.seed = 1;
      p.io_batch_blocks = cfg.io_batch;
      p.pipeline_depth = cfg.depth;
      RemoteBackendOptions ropts;
      ropts.host = server.host();
      ropts.port = server.port();
      ropts.store_id = next_store++;  // fresh namespace per run
      BackendFactory f = remote_backend(ropts);
      if (cfg.prefetch) f = async_backend(std::move(f));
      p.backend = std::move(f);
      Client c(p);
      const std::uint64_t frames_before = server.frames_served();
      const double ms = work.run(c, n_blocks);
      const std::uint64_t ios = c.stats().total();
      const std::uint64_t frames = server.frames_served() - frames_before;
      if (cfg.depth == 1 && cfg.io_batch == 0) {
        depth1_ms = ms;
        base_ios = ios;
      } else if (cfg.io_batch == 1) {
        base_ios = ios;
      } else if (ios != base_ios) {
        bench::note("WARNING: " + work.name + "/" + cfg.name +
                    " changed the block I/O count (" + std::to_string(ios) +
                    " vs " + std::to_string(base_ios) + ")");
      }
      const double speedup = depth1_ms > 0 ? depth1_ms / ms : 0.0;
      if (std::string(cfg.name) == "depth4_prefetch" && speedup < 2.0)
        claim_met = false;
      t.add_row({work.name, cfg.name, std::to_string(ios), std::to_string(frames),
                 Table::fmt(ms, 1),
                 depth1_ms > 0 ? Table::fmt(speedup, 2) + "x" : "--"});
      if (!json_rows.empty()) json_rows += ",";
      json_rows += "{\"work\":\"" + work.name + "\",\"config\":\"" + cfg.name +
                   "\",\"block_ios\":" + std::to_string(ios) +
                   ",\"frames\":" + std::to_string(frames) +
                   ",\"wall_ms\":" + Table::fmt(ms, 3) +
                   ",\"speedup_vs_depth1\":" + Table::fmt(speedup, 3) + "}";
    }
  }
  t.print(std::cout);
  bench::note(claim_met
                  ? "depth-4 pipelining >= 2x over depth-1 at this RTT: MET"
                  : "depth-4 pipelining >= 2x over depth-1 at this RTT: NOT MET");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"bench\":\"remote\",\"rtt_us\":" << rtt_us
        << ",\"blocks\":" << n_blocks << ",\"claim_depth4_ge_2x\":"
        << (claim_met ? "true" : "false") << ",\"rows\":[" << json_rows << "]}\n";
    bench::note("wrote " + json_path);
  }

  // E13: the striping x depth grid (store ids far above E12's).
  std::uint64_t store_counter = 1ull << 20;
  std::string sharded_rows;
  const bool grid_met =
      run_sharded_grid(server, n_blocks, cache_blocks, &store_counter, &sharded_rows);
  if (!sharded_json_path.empty()) {
    std::ofstream out(sharded_json_path);
    out << "{\"bench\":\"sharded_pipeline\",\"rtt_us\":" << rtt_us
        << ",\"blocks\":" << n_blocks
        << ",\"claim_sharded4_depth4_ge_2x_and_cache_ge_30pct\":"
        << (grid_met ? "true" : "false") << ",\"rows\":[" << sharded_rows << "]}\n";
    bench::note("wrote " + sharded_json_path);
  }
  return claim_met && grid_met ? 0 : 1;
}
