// E2 + A3 -- Lemma 1 / Theorem 4: IBLT decode success vs sizing, and sparse
// compaction cost scaling.
//   E2a: RAM IBLT listEntries success rate vs cells-per-item (Lemma 1's
//        m = delta*k*n sizing) and k.
//   E2b: oblivious sparse compaction (Theorem 4) I/O vs n at fixed sparse r:
//        the linear n-term dominates; also reports the strategy the public
//        cost model picks (IBLT vs butterfly) and both predictions.
#include "bench_common.h"
#include "core/sparse_compact.h"
#include "iblt/iblt.h"

using namespace oem;

namespace {

void e2a() {
  bench::banner("E2a/A3", "Lemma 1 -- IBLT decode success rate vs table sizing");
  bench::note("claim: listEntries succeeds w.p. >= 1 - 1/n^c once cells/item and k are "
              "constants ~2+; failure rate collapses as the table grows");
  Table t({"items", "k", "cells/item", "trials", "decode failures", "failure rate"});
  const int trials = 300;
  for (unsigned k : {3u, 4u, 5u}) {
    for (double cpi : {1.2, 1.5, 2.0, 3.0, 4.0}) {
      const std::uint64_t items = 200;
      int failures = 0;
      for (int trial = 0; trial < trials; ++trial) {
        iblt::IbltParams params;
        params.k = k;
        params.cells_per_item = cpi;
        iblt::Iblt table(items, params, 7000 + trial);
        for (std::uint64_t x = 0; x < items; ++x)
          table.insert(x * 2654435761u + trial, x);
        std::vector<iblt::Entry> out;
        if (!table.list_entries(out) || out.size() != items) ++failures;
      }
      t.add_row({std::to_string(items), std::to_string(k), Table::fmt(cpi, 1),
                 std::to_string(trials), std::to_string(failures),
                 Table::fmt(static_cast<double>(failures) / trials, 4)});
    }
  }
  t.print(std::cout);
}

void e2b() {
  bench::banner("E2b", "Theorem 4 -- sparse compaction I/O scaling (r fixed, n grows)");
  bench::note("claim: O(n + r polylog r) -- for fixed sparse r the cost is linear in n");
  const std::size_t B = 8;
  const std::uint64_t M = 8 * 256;
  Table t({"n (blocks)", "r (blocks)", "strategy", "total I/O", "I/O per n",
           "iblt model", "butterfly model", "ok"});
  const std::uint64_t r = 24;
  for (std::uint64_t n : {512ull, 2048ull, 8192ull, 32768ull}) {
    Client client(bench::params(B, M));
    ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
    std::vector<Record> flat(n * B);
    for (std::uint64_t i = 0; i < r; ++i) {
      const std::uint64_t b = i * (n / r);
      for (std::size_t x = 0; x < B; ++x) flat[b * B + x] = {b, x};
    }
    client.poke(a, flat);
    client.reset_stats();
    core::SparseCompactOptions opts;
    auto res = core::sparse_compact_blocks(client, a, r, core::block_nonempty_pred(),
                                           11, opts);
    const std::uint64_t iblt_model =
        core::sparse_compact_iblt_cost(n, r, B, M, opts);
    const std::uint64_t bfly_model = core::sparse_compact_butterfly_cost(n, M / B);
    t.add_row({std::to_string(n), std::to_string(r),
               iblt_model < bfly_model ? "iblt" : "butterfly",
               std::to_string(client.stats().total()),
               Table::fmt(static_cast<double>(client.stats().total()) /
                              static_cast<double>(n), 1),
               std::to_string(iblt_model), std::to_string(bfly_model),
               res.status.ok() ? "yes" : "NO"});
  }
  t.print(std::cout);
}

void e2c() {
  bench::banner("E2c", "Theorem 4 -- oblivious sparse compaction success rate");
  bench::note("claim: succeeds w.p. 1 - 1/r^c; failures reported, trace unchanged");
  const std::size_t B = 8;
  Table t({"n (blocks)", "r (blocks)", "decode", "trials", "failures"});
  for (bool external : {false, true}) {
    const std::uint64_t n = 256, r = 20;
    const std::uint64_t M = external ? 8 * 32 : 8 * 4096;
    int failures = 0;
    const int trials = 25;
    for (int trial = 0; trial < trials; ++trial) {
      Client client(bench::params(B, M));
      ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
      std::vector<Record> flat(n * B);
      rng::Xoshiro g(trial);
      std::uint64_t placed = 0;
      for (std::uint64_t b = 0; b < n && placed < r; ++b) {
        if (g.bernoulli(0.07)) {
          ++placed;
          for (std::size_t x = 0; x < B; ++x) flat[b * B + x] = {b, x};
        }
      }
      client.poke(a, flat);
      core::SparseCompactOptions opts;
      opts.cost_aware = false;  // force the Theorem-4 IBLT path
      opts.iblt.force_external_decode = external;
      auto res = core::sparse_compact_blocks(client, a, r, core::block_nonempty_pred(),
                                             500 + trial, opts);
      if (!res.status.ok()) ++failures;
    }
    t.add_row({std::to_string(n), std::to_string(r), external ? "external" : "in-cache",
               std::to_string(trials), std::to_string(failures)});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::set_backend_from_flags(flags);  // consumes --backend, --shards, --prefetch
  flags.validate_or_die();
  e2a();
  e2b();
  e2c();
  return 0;
}
