// E1 -- Lemma 3: data consolidation is one scan, exactly n reads and n+1
// writes, order-preserving, for any marking density.
#include "bench_common.h"
#include "core/consolidate.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t B = static_cast<std::size_t>(flags.get_u64("B", 16));
  const std::uint64_t M = flags.get_u64("M", 4096);
  bench::set_backend_from_flags(flags);  // consumes --backend, --shards, --prefetch
  flags.validate_or_die();

  bench::banner("E1", "Lemma 3 -- consolidation scan cost");
  bench::note("claim: exactly n block reads + (n+1) block writes, independent of density");

  Table t({"N (records)", "n (blocks)", "density", "reads", "writes",
           "reads==n", "writes==n+1", "order preserved"});
  for (std::uint64_t n_blocks : {1024ull, 4096ull, 16384ull, 65536ull}) {
    for (double density : {0.01, 0.25, 0.9}) {
      Client client(bench::params(B, M));
      const std::uint64_t N = n_blocks * B;
      ExtArray a = client.alloc(N, Client::Init::kUninit);
      client.poke(a, bench::random_records(N, 7));
      client.reset_stats();
      rng::Xoshiro coin(3);
      std::vector<std::uint64_t> marked;
      core::ConsolidateResult res = core::consolidate(
          client, a, [&](std::uint64_t i, const Record&) {
            const bool d = coin.bernoulli(density);
            if (d) marked.push_back(i);
            return d;
          });
      // Verify order preservation.
      auto out = client.peek(res.out);
      bool ordered = true;
      std::size_t j = 0;
      for (const Record& r : out) {
        if (r.is_empty()) continue;
        if (j >= marked.size() || r.value != marked[j]) ordered = false;
        ++j;
      }
      ordered = ordered && j == marked.size();
      t.add_row({std::to_string(N), std::to_string(n_blocks), Table::fmt(density, 2),
                 std::to_string(client.stats().reads),
                 std::to_string(client.stats().writes),
                 client.stats().reads == n_blocks ? "yes" : "NO",
                 client.stats().writes == n_blocks + 1 ? "yes" : "NO",
                 ordered ? "yes" : "NO"});
    }
  }
  t.print(std::cout);
  return 0;
}
