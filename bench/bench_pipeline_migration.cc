// E11 -- the pipeline migration, measured.  The four per-block hot loops
// migrated onto run_block_pipeline (the recursive oblivious sort's copy/level
// scans, loose compaction, log* compaction, the sqrt-ORAM reshuffle) run
// against a 2us-RTT latency-modeled store in three engine configurations:
// per-block I/O (io_batch_blocks = 1, the pre-migration shape), pipelined
// windows (the default), and pipelined + async prefetch.  Block I/O counts
// must be IDENTICAL across configurations -- the migration batches round
// trips and overlaps compute, it never changes what Bob sees or how many
// blocks move.  --json=PATH writes the grid as a CI artifact
// (BENCH_pipeline_migration.json).
#include <chrono>
#include <fstream>
#include <functional>

#include "bench_common.h"
#include "core/logstar_compact.h"
#include "core/loose_compact.h"
#include "core/oblivious_sort.h"
#include "oram/sqrt_oram.h"

using namespace oem;

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(b - a)
      .count();
}

struct LoopCase {
  std::string name;
  std::size_t B;
  std::uint64_t M;
  /// Sets up its input (uncounted), resets stats, runs the loop, and returns
  /// the algorithm-only wall time (setup I/O is excluded so the per-block
  /// config is not additionally penalized for its slower upload).
  std::function<double(Client&)> run;
};

/// Every 7th block distinguished; the rest explicitly empty.
std::vector<Record> sparse_input(std::uint64_t n_blocks, std::size_t B) {
  std::vector<Record> v(n_blocks * B);
  for (std::uint64_t b = 0; b < n_blocks; b += 7)
    for (std::size_t r = 0; r < B; ++r) v[b * B + r] = {b * 1000 + r, b};
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string json_path = flags.get("json", "");
  flags.validate_or_die();

  bench::banner("E11", "pipeline migration: per-block vs pipelined I/O (2us-RTT store)");
  bench::note("same loops, same block I/Os by construction; the pipeline coalesces "
              "round trips into windowed backend ops and (with prefetch) overlaps "
              "the next window's transfer with the current window's compute");

  std::vector<LoopCase> loops;
  loops.push_back({"oblivious_sort", 4, 4 * 64, [](Client& c) {
                     const std::uint64_t n_blocks = 256;
                     ExtArray a = c.alloc_blocks(n_blocks, Client::Init::kUninit);
                     c.poke(a, bench::random_records(n_blocks * c.B(), 2));
                     c.reset_stats();
                     core::ObliviousSortOptions opts;
                     opts.min_recursive_blocks = 64;  // engage recursion: the
                     opts.paper_dense_rule = false;   // migrated copy/level scans run
                     const auto t0 = std::chrono::steady_clock::now();
                     core::oblivious_sort(c, a, 7, opts);
                     return ms_between(t0, std::chrono::steady_clock::now());
                   }});
  loops.push_back({"loose_compact", 4, 4 * 64, [](Client& c) {
                     const std::uint64_t n_blocks = 512;
                     ExtArray a = c.alloc_blocks(n_blocks, Client::Init::kUninit);
                     c.poke(a, sparse_input(n_blocks, c.B()));
                     c.reset_stats();
                     const auto t0 = std::chrono::steady_clock::now();
                     core::loose_compact_blocks(c, a, n_blocks / 5,
                                                core::block_nonempty_pred(), 3);
                     return ms_between(t0, std::chrono::steady_clock::now());
                   }});
  loops.push_back({"logstar_compact", 4, 4 * 64, [](Client& c) {
                     const std::uint64_t n_blocks = 512;
                     ExtArray a = c.alloc_blocks(n_blocks, Client::Init::kUninit);
                     c.poke(a, sparse_input(n_blocks, c.B()));
                     c.reset_stats();
                     const auto t0 = std::chrono::steady_clock::now();
                     core::logstar_compact_blocks(c, a, n_blocks / 5,
                                                  core::block_nonempty_pred(), 3);
                     return ms_between(t0, std::chrono::steady_clock::now());
                   }});
  loops.push_back({"oram_reshuffle", 4, 4 * 64, [](Client& c) {
                     oram::SqrtOram o(c, 1024, oram::ShuffleKind::kDeterministic, 3);
                     c.reset_stats();
                     // One full epoch + its reshuffle (retag, sort, rewrite,
                     // stash clear -- the migrated scans).
                     const auto t0 = std::chrono::steady_clock::now();
                     for (std::uint64_t i = 0; i < o.epoch_length(); ++i)
                       o.access(i % 1024);
                     return ms_between(t0, std::chrono::steady_clock::now());
                   }});

  struct Cfg {
    const char* name;
    std::uint64_t io_batch;
    bool prefetch;
  };
  const Cfg cfgs[] = {{"per_block", 1, false},
                      {"pipelined", 0, false},
                      {"pipelined_prefetch", 0, true}};

  Table t({"loop", "config", "block I/Os", "backend ops", "wall ms", "speedup"});
  std::string json_rows;
  for (const LoopCase& loop : loops) {
    double base_ms = 0;
    std::uint64_t base_ios = 0;
    for (const Cfg& cfg : cfgs) {
      ClientParams p;
      p.block_records = loop.B;
      p.cache_records = loop.M;
      p.seed = 1;
      p.io_batch_blocks = cfg.io_batch;
      LatencyProfile lan;
      lan.per_op_ns = 2000;    // 2us round trip per backend op
      lan.per_word_ns = 100;   // ~640 Mbps link
      lan.real_sleep = true;   // wall-clock is the point
      BackendFactory f = latency_backend(nullptr, lan);
      if (cfg.prefetch) f = async_backend(std::move(f));
      p.backend = std::move(f);
      Client c(p);
      const double ms = loop.run(c);
      const std::uint64_t ios = c.stats().total();
      const std::uint64_t ops = c.stats().total_ops();
      if (cfg.io_batch == 1) {
        base_ms = ms;
        base_ios = ios;
      } else if (ios != base_ios) {
        bench::note("WARNING: " + loop.name + "/" + cfg.name +
                    " changed the block I/O count (" + std::to_string(ios) +
                    " vs " + std::to_string(base_ios) + ")");
      }
      const double speedup = base_ms / ms;
      t.add_row({loop.name, cfg.name, std::to_string(ios), std::to_string(ops),
                 Table::fmt(ms, 1), Table::fmt(speedup, 2) + "x"});
      if (!json_rows.empty()) json_rows += ",";
      json_rows += "{\"loop\":\"" + loop.name + "\",\"config\":\"" + cfg.name +
                   "\",\"block_ios\":" + std::to_string(ios) +
                   ",\"backend_ops\":" + std::to_string(ops) +
                   ",\"wall_ms\":" + Table::fmt(ms, 3) +
                   ",\"speedup\":" + Table::fmt(speedup, 3) + "}";
    }
  }
  t.print(std::cout);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"bench\":\"pipeline_migration\",\"per_op_ns\":2000,\"per_word_ns\":100,"
        << "\"rows\":[" << json_rows << "]}\n";
    bench::note("wrote " + json_path);
  }
  return 0;
}
