// Shared helpers for the experiment harness.  Every bench binary prints
// markdown tables whose rows are quoted in EXPERIMENTS.md.
//
// All benches accept --backend=mem|file|latency (where it matters the rows
// say which one ran) and hard-fail on unknown/malformed flags via
// Flags::validate_or_die.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "extmem/backend.h"
#include "extmem/client.h"
#include "extmem/io_engine.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace oem::bench {

/// Process-wide backend factory for this bench run, set from --backend by
/// set_backend_from_flags below; null means MemBackend.
inline BackendFactory& global_backend() {
  static BackendFactory factory;
  return factory;
}

inline ClientParams params(std::size_t B, std::uint64_t M, std::uint64_t seed = 1) {
  ClientParams p;
  p.block_records = B;
  p.cache_records = M;
  p.seed = seed;
  p.backend = global_backend();
  return p;
}

/// Backend factory selected by --backend=mem|file|latency (default mem),
/// composed with the I/O-engine flags: --shards=K stripes blocks over K
/// independent stores and --prefetch wraps the stack in an AsyncBackend so
/// the algorithms' pipelined hot loops overlap compute with storage I/O.
/// For latency the composition is latency(sharded(mem x K)) with
/// profile.lanes = K -- the parallel-disk model, where a striped batch
/// streams over K links at once (per-word time divides by K on the calling
/// thread) while the round trip stays whole.  The profile models a fast
/// LAN-attached store: 20us round trip + 10ns/word streaming.
inline BackendFactory backend_from_flags(const Flags& flags) {
  const std::string which = flags.get("backend", "mem");
  const std::size_t shards = static_cast<std::size_t>(flags.get_u64("shards", 1));
  const bool prefetch = flags.get_bool("prefetch", false);
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    std::exit(2);
  }
  BackendFactory f;
  if (which == "mem" || which == "file") {
    if (which == "file") f = file_backend();
    if (shards > 1) f = sharded_backend(std::move(f), shards);
  } else if (which == "latency") {
    // Latency wraps the striped store with `lanes = shards` (the parallel-
    // disk model): a batch striped over K stores streams over K links at
    // once, while the round trip stays whole.
    LatencyProfile profile;
    profile.per_op_ns = 20000;
    profile.per_word_ns = 10;
    profile.lanes = shards;
    if (shards > 1) f = sharded_backend(std::move(f), shards);
    f = latency_backend(std::move(f), profile);
  } else {
    std::fprintf(stderr, "unknown --backend=%s (mem|file|latency)\n", which.c_str());
    std::exit(2);
  }
  if (prefetch) f = async_backend(std::move(f));
  return f;
}

/// Call once at the top of main: every bench::params() Client in the binary
/// then runs on the selected backend.
inline void set_backend_from_flags(const Flags& flags) {
  global_backend() = backend_from_flags(flags);
}

inline std::vector<Record> random_records(std::uint64_t n, std::uint64_t seed) {
  rng::Xoshiro g(seed);
  std::vector<Record> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = {g.next() >> 1, i};
  return v;
}

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n## " << id << ": " << title << "\n\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

}  // namespace oem::bench
