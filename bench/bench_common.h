// Shared helpers for the experiment harness.  Every bench binary prints
// markdown tables whose rows are quoted in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "extmem/client.h"
#include "rng/random.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace oem::bench {

inline ClientParams params(std::size_t B, std::uint64_t M, std::uint64_t seed = 1) {
  ClientParams p;
  p.block_records = B;
  p.cache_records = M;
  p.seed = seed;
  return p;
}

inline std::vector<Record> random_records(std::uint64_t n, std::uint64_t seed) {
  rng::Xoshiro g(seed);
  std::vector<Record> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = {g.next() >> 1, i};
  return v;
}

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n## " << id << ": " << title << "\n\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

}  // namespace oem::bench
