// Shared helpers for the experiment harness.  Every bench binary prints
// markdown tables whose rows are quoted in EXPERIMENTS.md.
//
// All benches accept --backend=mem|file|latency (where it matters the rows
// say which one ran) and hard-fail on unknown/malformed flags via
// Flags::validate_or_die.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "extmem/backend.h"
#include "extmem/cache_meter.h"
#include "extmem/client.h"
#include "extmem/io_engine.h"
#include "extmem/remote.h"
#include "server/server.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace oem::bench {

/// Process-wide backend factory for this bench run, set from --backend by
/// set_backend_from_flags below; null means MemBackend.
inline BackendFactory& global_backend() {
  static BackendFactory factory;
  return factory;
}

/// Retry attempts paired with the backend (4 when --faults is on, else 1).
inline unsigned& global_retry_attempts() {
  static unsigned attempts = 1;
  return attempts;
}

/// Pipeline depth from --depth (2 = the double-buffer default).
inline std::size_t& global_pipeline_depth() {
  static std::size_t depth = 2;
  return depth;
}

/// Compute-plane lanes from --compute-threads (1 = serial, the default).
inline std::size_t& global_compute_threads() {
  static std::size_t threads = 1;
  return threads;
}

/// Durable freshness state file from --state-path ("" = off); params() wires
/// it into ClientParams::state_path (and hydrates a pre-existing file).
inline std::string& global_state_path() {
  static std::string path;
  return path;
}

/// Per-frame wire deadline from --io-deadline-ms (0 = off; needs --remote).
inline std::uint64_t& global_io_deadline_ms() {
  static std::uint64_t ms = 0;
  return ms;
}

/// Armed crash injection from --crash-at=frames:N (0 = off).  Only a
/// SPAWNED oem-server (bench_recovery's SpawnedServer trials) can honor it;
/// --remote's in-process server would take the bench down with it, so the
/// combination exits 2 at parse time.
inline std::uint64_t& global_crash_at_frames() {
  static std::uint64_t frames = 0;
  return frames;
}

/// The process-wide loopback RemoteServer behind --remote; started on first
/// use, lives for the whole bench run (its stores persist across Clients).
inline RemoteServer* global_remote_server(BackendFactory store_factory = nullptr,
                                          std::uint64_t response_delay_ns = 0) {
  static std::unique_ptr<RemoteServer> server;
  if (!server) {
    RemoteServerOptions opts;
    opts.store_factory = std::move(store_factory);
    opts.response_delay_ns = response_delay_ns;
    server = std::make_unique<RemoteServer>(std::move(opts));
    if (!server->health().ok()) {
      std::fprintf(stderr, "--remote: %s\n", server->health().ToString().c_str());
      std::exit(2);
    }
  }
  return server.get();
}

/// The process-wide shared CacheCore behind --shared-cache: every Client
/// built by this bench attaches a view of ONE slab (capacity fixed by the
/// first call), modeling N sessions behind one memory budget.
inline SharedCacheHandle global_shared_cache(std::size_t capacity_blocks) {
  static SharedCacheHandle core = make_shared_cache(capacity_blocks);
  return core;
}

inline ClientParams params(std::size_t B, std::uint64_t M, std::uint64_t seed = 1) {
  ClientParams p;
  p.block_records = B;
  p.cache_records = M;
  p.seed = seed;
  p.backend = global_backend();
  p.io_retry_attempts = global_retry_attempts();
  p.pipeline_depth = global_pipeline_depth();
  p.compute_threads = global_compute_threads();
  p.state_path = global_state_path();
  if (!p.state_path.empty()) {
    // Reload a persisted freshness state (restart semantics); a corrupt
    // file is evidence of tampering and must stop the bench, not be
    // bootstrapped over.
    const Status st = hydrate_state(&p);
    if (!st.ok()) {
      std::fprintf(stderr, "--state-path: %s\n", st.ToString().c_str());
      std::exit(2);
    }
  }
  return p;
}

/// Strict --faults=seed:rate parsing (like --shards: malformed input is a
/// hard error).  Returns true iff faults were requested; fills `profile`.
inline bool fault_profile_from_flags(const Flags& flags, FaultProfile* profile) {
  const std::string spec = flags.get("faults", "");
  if (spec.empty()) return false;
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    std::fprintf(stderr, "--faults must be seed:rate (e.g. --faults=7:0.02)\n");
    std::exit(2);
  }
  char* end = nullptr;
  const std::string seed_str = spec.substr(0, colon);
  const std::string rate_str = spec.substr(colon + 1);
  const unsigned long long seed = std::strtoull(seed_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "--faults seed '%s' is not an integer\n", seed_str.c_str());
    std::exit(2);
  }
  const double rate = std::strtod(rate_str.c_str(), &end);
  if (end == nullptr || *end != '\0' || rate < 0.0 || rate > 1.0) {
    std::fprintf(stderr, "--faults rate '%s' must be a number in [0, 1]\n",
                 rate_str.c_str());
    std::exit(2);
  }
  profile->seed = seed;
  profile->fail_rate = rate;
  return rate > 0.0;
}

/// Backend factory selected by --backend=mem|file|latency (default mem),
/// composed with the I/O-engine flags: --shards=K stripes blocks over K
/// independent stores and --prefetch wraps the stack in an AsyncBackend so
/// the algorithms' pipelined hot loops overlap compute with storage I/O.
/// For latency the composition is latency(sharded(mem x K)) with
/// profile.lanes = K -- the parallel-disk model, where a striped batch
/// streams over K links at once (per-word time divides by K on the calling
/// thread) while the round trip stays whole.  The profile models a fast
/// LAN-attached store: 20us round trip + 10ns/word streaming.
/// Backend composition from flags.  `retry_attempts`, when non-null,
/// receives the retry budget paired with the composed stack (4 when faults
/// are injected, else 1) -- one parse decides both, so injection and
/// recovery cannot drift apart.
inline BackendFactory backend_from_flags(const Flags& flags,
                                         unsigned* retry_attempts = nullptr) {
  const std::string which = flags.get("backend", "mem");
  const std::size_t shards = static_cast<std::size_t>(flags.get_u64("shards", 1));
  const bool prefetch = flags.get_bool("prefetch", false);
  // --cache-blocks=N wraps the stack in an N-block LRU write-back cache
  // (CachingBackend), composed above latency/sharding/remote and under
  // --prefetch, exactly like Session::Builder::cache.
  const std::size_t cache_blocks =
      static_cast<std::size_t>(flags.get_u64("cache-blocks", 0));
  // --remote serves the chosen base store from an in-process loopback
  // RemoteServer (one per bench run; per-shard store namespaces) and talks
  // to it through RemoteBackend connections, so every bench can put its
  // workload behind a real TCP round trip.  --remote-rtt-us adds simulated
  // propagation delay per response (the pipelined wire still streams).
  const bool remote = flags.get_bool("remote", false);
  const std::uint64_t remote_rtt_us = flags.get_u64("remote-rtt-us", 0);
  // Robustness flags (PR 10): durable freshness state, per-frame wire
  // deadlines, armed crash injection -- with the usual strict validation.
  global_state_path() = flags.get("state-path", "");
  global_io_deadline_ms() = flags.get_u64("io-deadline-ms", 0);
  if (global_io_deadline_ms() > 0 && !remote) {
    std::fprintf(stderr,
                 "--io-deadline-ms needs --remote: only the wire has "
                 "deadlines\n");
    std::exit(2);
  }
  const std::string crash_at = flags.get("crash-at", "");
  global_crash_at_frames() = 0;
  if (!crash_at.empty()) {
    const std::string prefix = "frames:";
    char* end = nullptr;
    std::uint64_t n = 0;
    if (crash_at.compare(0, prefix.size(), prefix) == 0)
      n = std::strtoull(crash_at.c_str() + prefix.size(), &end, 10);
    if (end == nullptr || *end != '\0' || n < 1) {
      std::fprintf(stderr, "--crash-at must be frames:N with N >= 1, got '%s'\n",
                   crash_at.c_str());
      std::exit(2);
    }
    if (remote) {
      std::fprintf(stderr,
                   "--crash-at contradicts --remote: the in-process loopback "
                   "server would take the bench down with it; crash trials "
                   "spawn the oem-server binary\n");
      std::exit(2);
    }
    global_crash_at_frames() = n;
  }
  global_pipeline_depth() =
      static_cast<std::size_t>(flags.get_u64("depth", 2));
  if (global_pipeline_depth() < 1) {
    std::fprintf(stderr, "--depth must be >= 1\n");
    std::exit(2);
  }
  // --compute-threads=N splits each pipeline window's compute (and all block
  // crypto) across N lanes -- the compute-plane twin of --depth.
  global_compute_threads() =
      static_cast<std::size_t>(flags.get_u64("compute-threads", 1));
  if (global_compute_threads() > 256) {
    std::fprintf(stderr, "--compute-threads must be <= 256\n");
    std::exit(2);
  }
  FaultProfile fault_profile;
  const bool inject = fault_profile_from_flags(flags, &fault_profile);
  if (retry_attempts != nullptr) *retry_attempts = inject ? 4 : 1;
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    std::exit(2);
  }
  // --engine=threads|uring picks the file store's disk engine: "threads" is
  // the blocking pread/pwrite FileBackend (AsyncBackend supplies the overlap
  // under --prefetch), "uring" is the kernel-async O_DIRECT DirectFileBackend
  // (which itself falls back to threads, with notice via engine(), on kernels
  // without io_uring).  --direct is shorthand for --engine=uring.
  const std::string engine = flags.get("engine", "");
  const bool direct = flags.get_bool("direct", false);
  if (!engine.empty() && engine != "threads" && engine != "uring") {
    std::fprintf(stderr, "unknown --engine=%s (threads|uring)\n", engine.c_str());
    std::exit(2);
  }
  if (direct && engine == "threads") {
    std::fprintf(stderr,
                 "--direct contradicts --engine=threads (--direct means the "
                 "O_DIRECT io_uring engine)\n");
    std::exit(2);
  }
  const bool uring = direct || engine == "uring";
  if ((uring || !engine.empty()) && which != "file") {
    std::fprintf(stderr,
                 "--engine/--direct need --backend=file: only the file store "
                 "has a disk engine to choose\n");
    std::exit(2);
  }
  // --shared-cache attaches every Client in this process to ONE CacheCore of
  // --cache-blocks capacity (the multi-session shared-memory-budget shape)
  // instead of a private cache per Client.
  const bool shared_cache = flags.get_bool("shared-cache", false);
  if (shared_cache && cache_blocks == 0) {
    std::fprintf(stderr, "--shared-cache needs --cache-blocks=N (N >= 1)\n");
    std::exit(2);
  }
  // Per-shard base store, optionally wrapped in a FaultyBackend with a
  // distinct sub-seed per shard (per-shard failures, like Session::Builder).
  auto faulted = [inject, fault_profile](BackendFactory base, std::size_t shard) {
    if (!inject) return base;
    FaultProfile p = fault_profile;
    p.seed = rng::mix64(fault_profile.seed ^ (0x9e3779b97f4a7c15ULL * (shard + 1)));
    return faulty_backend(std::move(base), p);
  };
  BackendFactory f;
  const bool known = which == "mem" || which == "file" || which == "latency";
  if (!known) {
    std::fprintf(stderr, "unknown --backend=%s (mem|file|latency)\n", which.c_str());
    std::exit(2);
  }
  BackendFactory base;
  if (which == "file") base = uring ? direct_file_backend() : file_backend();
  if (remote) {
    // The server keeps the (mem or file) store; the client stack sees a
    // RemoteBackend per shard.  Store ids namespace by geometry too, so one
    // server survives a bench that runs several block sizes.
    RemoteServer* server =
        global_remote_server(std::move(base), remote_rtt_us * 1000);
    const std::string host = server->host();
    const std::uint16_t port = server->port();
    base = nullptr;
    const std::uint64_t io_deadline = global_io_deadline_ms();
    ShardFactory per_shard = [host, port, faulted,
                              io_deadline](std::size_t block_words,
                                           std::size_t shard)
        -> std::unique_ptr<StorageBackend> {
      RemoteBackendOptions opts;
      opts.host = host;
      opts.port = port;
      opts.store_id = (static_cast<std::uint64_t>(block_words) << 16) | shard;
      opts.io_deadline_ms = io_deadline;
      BackendFactory fb = faulted(remote_backend(opts), shard);
      return fb(block_words);
    };
    f = sharded_backend(std::move(per_shard), shards);
  } else if (shards > 1) {
    ShardFactory per_shard = [base, faulted](std::size_t block_words,
                                             std::size_t shard)
        -> std::unique_ptr<StorageBackend> {
      BackendFactory fb = faulted(base, shard);
      return fb ? fb(block_words) : std::make_unique<MemBackend>(block_words);
    };
    f = sharded_backend(std::move(per_shard), shards);
  } else {
    f = faulted(std::move(base), 0);
  }
  if (which == "latency") {
    // Latency wraps the striped store with `lanes = shards` (the parallel-
    // disk model): a batch striped over K stores streams over K links at
    // once, while the round trip stays whole.
    LatencyProfile profile;
    profile.per_op_ns = 20000;
    profile.per_word_ns = 10;
    profile.lanes = shards;
    f = latency_backend(std::move(f), profile);
  }
  if (cache_blocks > 0) {
    if (shared_cache)
      f = caching_backend(std::move(f), global_shared_cache(cache_blocks));
    else
      f = caching_backend(std::move(f), cache_blocks);
  }
  if (prefetch) f = async_backend(std::move(f));
  return f;
}

/// One-line engine accounting for a finished run: drained-at backend ops
/// (comparable across sync / --prefetch / sharded rows -- see IoStats) and,
/// when a cache is configured, its hit rate and write-back absorption.
/// Prints nothing when there is nothing noteworthy to report.  `label` names
/// the configuration/row the numbers belong to (the notes print as they are
/// gathered, which may be before the table they annotate).
inline void engine_stats_note(const Client& c, const std::string& label = "") {
  const std::string tag = label.empty() ? "" : "[" + label + "] ";
  const IoStats& s = c.stats();
  if (s.drained_total_ops() != s.total_ops())
    std::cout << "  " << tag << "(drained backend ops: " << s.drained_total_ops()
              << " of " << s.total_ops() << " submitted)\n";
  if (s.compute_ns > 0 || s.crypto_ns > 0) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %scompute plane: %.1f ms pass compute, %.1f ms crypto",
                  tag.c_str(), s.compute_ns / 1e6, s.crypto_ns / 1e6);
    std::cout << line << "\n";
  }
  if (const CachingBackend* cache = c.device().cache_backend()) {
    // Per-session counters even on a --shared-cache slab: each Client's view
    // tallies its own hits/misses/admission rejections (cache_meter.h).
    std::cout << "  " << tag << "(" << cache->capacity_blocks() << " blocks, "
              << (cache->core().policy() == CachePolicy::kLru ? "lru"
                                                              : "scan-resistant")
              << ") " << describe_cache_stats(cache->stats()) << "\n";
  }
}

/// Call once at the top of main: every bench::params() Client in the binary
/// then runs on the selected backend, with bounded retries when --faults is
/// on (so seeded fail-once faults are absorbed below the measured counters).
inline void set_backend_from_flags(const Flags& flags) {
  unsigned attempts = 1;
  global_backend() = backend_from_flags(flags, &attempts);
  global_retry_attempts() = attempts;
}

inline std::vector<Record> random_records(std::uint64_t n, std::uint64_t seed) {
  rng::Xoshiro g(seed);
  std::vector<Record> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = {g.next() >> 1, i};
  return v;
}

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n## " << id << ": " << title << "\n\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

}  // namespace oem::bench
