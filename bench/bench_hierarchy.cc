// E17 -- the memory hierarchy v2, measured at the backend seam.
//
// Part (a): the shared scan-resistant cache.  Two CachingBackend views of ONE
// CacheCore model two sessions of the oem-server: view A re-references an
// ORAM epoch's hot set (position map / stash) while view B streams a
// sequential reshuffle sweep through the same slab.  Under the v1 single-list
// LRU the sweep evicts the hot set on every pass; under the v2 segmented LRU
// the one-touch sweep dies in probation and the re-referenced hot set stays
// protected.  The exit code enforces >= 30% fewer inner-backend ops for
// scan-resistant vs lru on the identical touch sequence, at identical
// client-visible block touches and identical data.
//
// Part (b): the io_uring/O_DIRECT disk path.  The same durable
// write-then-scattered-read workload at pipeline depth 4 through (1) the
// threaded engine -- AsyncBackend's single io thread doing synchronous
// pread/pwrite on a FileBackend, page cache dropped before the read phase --
// and (2) DirectFileBackend, whose frames fan out into io_uring SQEs the
// kernel services concurrently.  Both rows pay durability (flush) and read
// cold data, so the comparison is serial-syscall-per-run vs
// kernel-queued-parallel on the same dataset (>= 4x any cache in this bench;
// no CachingBackend is stacked and the page cache is dropped).  The exit
// code enforces >= 1.5x wall-clock for uring -- informational-only when the
// kernel has no io_uring (the row then reports engine=threads).  Block I/O
// counts are identical across all rows by construction and verified.
// --json=PATH writes the grid as a CI artifact (BENCH_hierarchy.json).
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace oem;

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(b - a)
      .count();
}

LatencyProfile counting_profile() {
  LatencyProfile p;
  p.per_op_ns = 1;
  p.per_word_ns = 0;
  p.real_sleep = false;  // pure op counter, no delay
  return p;
}

// ---------------------------------------------------------------------------
// Part (a): scan-resistant shared cache vs plain LRU.

struct CacheRun {
  std::uint64_t inner_ops = 0;     // inner reads the cache could not absorb
  std::uint64_t client_touches = 0;
  std::uint64_t admission_rejects = 0;
  std::uint64_t checksum = 0;
  double wall_ms = 0;
};

/// The mixed workload: per epoch, view A scans its hot set twice for every
/// 64-block chunk view B sweeps (an ORAM access re-scans the stash far more
/// often than the reshuffle touches any one block).
CacheRun run_cache_policy(CachePolicy policy) {
  constexpr std::size_t kBw = 16;
  constexpr std::uint64_t kHot = 44, kSweep = 256, kEpochs = 20;
  SharedCacheHandle core = make_shared_cache(64, policy);
  CachingBackend a(latency_backend(mem_backend(), counting_profile())(kBw), core);
  CachingBackend b(latency_backend(mem_backend(), counting_profile())(kBw), core);
  auto* a_ops = dynamic_cast<LatencyBackend*>(&a.inner());
  auto* b_ops = dynamic_cast<LatencyBackend*>(&b.inner());
  CacheRun r;
  if (!a.resize(kHot).ok() || !b.resize(kSweep).ok()) return r;
  // Give the stores recognizable contents (through the cache, then flushed)
  // so the checksum proves both policies returned the same bytes.
  std::vector<Word> w(kBw);
  for (std::uint64_t blk = 0; blk < kHot; ++blk) {
    for (std::size_t i = 0; i < kBw; ++i) w[i] = blk * 100 + i;
    if (!a.write(blk, w).ok()) return r;
  }
  for (std::uint64_t blk = 0; blk < kSweep; ++blk) {
    for (std::size_t i = 0; i < kBw; ++i) w[i] = blk * 7 + i;
    if (!b.write(blk, w).ok()) return r;
  }
  if (!a.flush().ok() || !b.flush().ok()) return r;
  const std::uint64_t ops0 = a_ops->ops() + b_ops->ops();

  std::vector<Word> out(kBw);
  auto touch = [&](CachingBackend& view, std::uint64_t blk) {
    if (view.read(blk, out).ok()) {
      ++r.client_touches;
      for (Word x : out) r.checksum ^= x + 0x9e3779b97f4a7c15ULL * blk;
    }
  };
  const auto t0 = std::chrono::steady_clock::now();
  // Warm pass: the second touch is what admits A's hot set to protected.
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t blk = 0; blk < kHot; ++blk) touch(a, blk);
  for (std::uint64_t e = 0; e < kEpochs; ++e)
    for (std::uint64_t chunk = 0; chunk < kSweep / 64; ++chunk) {
      for (int scan = 0; scan < 2; ++scan)
        for (std::uint64_t blk = 0; blk < kHot; ++blk) touch(a, blk);
      for (std::uint64_t blk = chunk * 64; blk < (chunk + 1) * 64; ++blk)
        touch(b, blk);
    }
  r.wall_ms = ms_between(t0, std::chrono::steady_clock::now());
  r.inner_ops = a_ops->ops() + b_ops->ops() - ops0;
  r.admission_rejects = a.stats().admission_rejects + b.stats().admission_rejects;
  return r;
}

bool run_cache_grid(std::string* json_rows) {
  bench::banner("E17a", "shared cache: scan-resistant (v2) vs single-list LRU (v1)");
  bench::note("two sessions, one CacheCore (64 blocks): A re-references a "
              "44-block ORAM hot set, B sweeps 256 blocks sequentially; "
              "identical touch sequences, only the admission policy differs");
  bool ok = true;
  Table t({"policy", "client touches", "inner ops", "admission rejects",
           "wall ms", "vs lru"});
  CacheRun lru = run_cache_policy(CachePolicy::kLru);
  CacheRun slru = run_cache_policy(CachePolicy::kScanResistant);
  if (slru.client_touches != lru.client_touches || slru.client_touches == 0) {
    bench::note("CLAIM VIOLATED: the two policies saw different client "
                "touch counts -- driver bug");
    ok = false;
  }
  if (slru.checksum != lru.checksum) {
    bench::note("CLAIM VIOLATED: scan-resistant returned different data");
    ok = false;
  }
  const double saved =
      lru.inner_ops == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(slru.inner_ops) /
                               static_cast<double>(lru.inner_ops));
  // The headline: >= 30% fewer inner ops (integer-exact check).
  if (slru.inner_ops * 10 > lru.inner_ops * 7) {
    bench::note("CLAIM VIOLATED: scan-resistant spends " +
                std::to_string(slru.inner_ops) + " inner ops vs " +
                std::to_string(lru.inner_ops) + " for lru (< 30% saved)");
    ok = false;
  }
  for (const auto* row : {&lru, &slru}) {
    const bool is_lru = row == &lru;
    t.add_row({is_lru ? "lru" : "scan-resistant",
               std::to_string(row->client_touches),
               std::to_string(row->inner_ops),
               std::to_string(row->admission_rejects), Table::fmt(row->wall_ms, 1),
               is_lru ? "--" : Table::fmt(saved, 1) + "% fewer inner ops"});
    if (!json_rows->empty()) *json_rows += ",";
    *json_rows += std::string("{\"part\":\"cache\",\"policy\":\"") +
                  (is_lru ? "lru" : "scan_resistant") +
                  "\",\"client_touches\":" + std::to_string(row->client_touches) +
                  ",\"inner_ops\":" + std::to_string(row->inner_ops) +
                  ",\"admission_rejects\":" + std::to_string(row->admission_rejects) +
                  ",\"wall_ms\":" + Table::fmt(row->wall_ms, 3) + "}";
  }
  t.print(std::cout);
  bench::note(ok ? "E17a claim (scan-resistant >= 30% fewer inner ops): MET"
                 : "E17a claim: NOT MET");
  return ok;
}

// ---------------------------------------------------------------------------
// Part (b): io_uring/O_DIRECT vs the threaded engine at depth 4.

struct DiskRun {
  std::string engine;
  double write_ms = 0, read_ms = 0;
  std::uint64_t blocks_written = 0, blocks_read = 0;
  std::uint64_t checksum = 0;
  bool ok = true;
};

/// Durable sequential write + scattered cold read, driven through the
/// split-phase face with `depth` frames in flight.  `drop_cache_path`
/// non-empty = drop that file's page cache before the read phase (the
/// buffered engine; O_DIRECT never populates it).
DiskRun run_disk(StorageBackend& be, const char* engine, std::uint64_t n_blocks,
                 std::size_t window, std::size_t depth,
                 const std::string& drop_cache_path) {
  constexpr std::size_t kBw = 512;  // 4 KiB payload per block
  DiskRun r;
  r.engine = engine;
  depth = std::min(depth, be.max_inflight());
  if (!be.resize(n_blocks).ok()) {
    r.ok = false;
    return r;
  }

  // Write phase: sequential windows, `depth` frames on the wire, then a
  // durability flush -- both engines pay it (fsync for the buffered row).
  std::vector<std::uint64_t> ids(window);
  std::vector<Word> wbuf(window * kBw);
  std::size_t inflight = 0;
  const auto w0 = std::chrono::steady_clock::now();
  for (std::uint64_t base = 0; base < n_blocks; base += window) {
    const std::size_t k = std::min<std::uint64_t>(window, n_blocks - base);
    for (std::size_t i = 0; i < k; ++i) {
      ids[i] = base + i;
      for (std::size_t j = 0; j < kBw; ++j)
        wbuf[i * kBw + j] = (base + i) * 131 + j;
    }
    if (inflight == depth) {
      r.ok = r.ok && be.complete_oldest().ok();
      --inflight;
    }
    // Backends copy payloads into their own staging at begin time, so the
    // window buffer is immediately reusable.
    r.ok = r.ok && be.begin_write_many(std::span<const std::uint64_t>(ids.data(), k),
                                       std::span<const Word>(wbuf.data(), k * kBw))
                       .ok();
    ++inflight;
    r.blocks_written += k;
  }
  while (inflight > 0) {
    r.ok = r.ok && be.complete_oldest().ok();
    --inflight;
  }
  r.ok = r.ok && be.flush().ok();
  r.write_ms = ms_between(w0, std::chrono::steady_clock::now());

  // Cold the buffered row's page cache (untimed): O_DIRECT rows never warmed
  // it, so after this both engines read from the device.
  if (!drop_cache_path.empty()) {
    const int fd = ::open(drop_cache_path.c_str(), O_RDONLY);
    if (fd >= 0) {
      ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
      ::close(fd);
    }
  }

  // Read phase: a fixed pseudorandom permutation of all blocks, `window` per
  // frame -- scattered single-block runs, the pattern where one serial io
  // thread hurts most and a kernel queue shines.
  std::vector<std::vector<Word>> rbufs(depth, std::vector<Word>(window * kBw));
  std::vector<std::size_t> frame_k(depth);
  std::size_t slot = 0, oldest = 0;
  inflight = 0;
  const auto r0 = std::chrono::steady_clock::now();
  for (std::uint64_t base = 0; base < n_blocks; base += window) {
    const std::size_t k = std::min<std::uint64_t>(window, n_blocks - base);
    for (std::size_t i = 0; i < k; ++i)
      ids[i] = ((base + i) * 0x9e3779b1ULL + 0x85ebca6bULL) % n_blocks;
    if (inflight == depth) {
      r.ok = r.ok && be.complete_oldest().ok();
      for (std::size_t i = 0; i < frame_k[oldest] * kBw; ++i)
        r.checksum ^= rbufs[oldest][i] + i;
      oldest = (oldest + 1) % depth;
      --inflight;
    }
    frame_k[slot] = k;
    r.ok = r.ok &&
           be.begin_read_many(std::span<const std::uint64_t>(ids.data(), k),
                              std::span<Word>(rbufs[slot].data(), k * kBw))
               .ok();
    slot = (slot + 1) % depth;
    ++inflight;
    r.blocks_read += k;
  }
  while (inflight > 0) {
    r.ok = r.ok && be.complete_oldest().ok();
    for (std::size_t i = 0; i < frame_k[oldest] * kBw; ++i)
      r.checksum ^= rbufs[oldest][i] + i;
    oldest = (oldest + 1) % depth;
    --inflight;
  }
  r.read_ms = ms_between(r0, std::chrono::steady_clock::now());
  return r;
}

bool run_disk_grid(std::uint64_t n_blocks, std::string* json_rows,
                   bool* uring_available) {
  constexpr std::size_t kBw = 512;
  bench::banner("E17b", "disk engines at depth 4: io_uring/O_DIRECT vs threaded "
                        "pread/pwrite (" +
                            std::to_string(n_blocks * kBw * sizeof(Word) >> 20) +
                            " MiB dataset, durable writes, cold scattered reads)");
  std::vector<DiskRun> runs;
  {
    auto fb = std::make_unique<FileBackend>(kBw);
    const std::string path = fb->path();
    AsyncBackend threads(std::move(fb));
    if (!threads.health().ok()) {
      bench::note("threaded engine unavailable: " + threads.health().ToString());
      return false;
    }
    runs.push_back(run_disk(threads, "threads", n_blocks, 64, 4, path));
  }
  {
    DirectFileBackend direct(kBw);
    if (!direct.health().ok()) {
      bench::note("direct engine unavailable: " + direct.health().ToString());
      return false;
    }
    *uring_available = std::string(direct.engine()) == "uring";
    runs.push_back(
        run_disk(direct, *uring_available ? "uring" : "threads(fallback)",
                 n_blocks, 64, 4, *uring_available ? "" : direct.path()));
  }
  bool ok = true;
  for (const DiskRun& r : runs)
    if (!r.ok) {
      bench::note("CLAIM VIOLATED: engine '" + r.engine + "' reported I/O errors");
      ok = false;
    }
  if (runs[0].blocks_written != runs[1].blocks_written ||
      runs[0].blocks_read != runs[1].blocks_read) {
    bench::note("CLAIM VIOLATED: engines moved different block counts");
    ok = false;
  }
  if (runs[0].checksum != runs[1].checksum) {
    bench::note("CLAIM VIOLATED: engines read back different data");
    ok = false;
  }
  const double t_total = runs[0].write_ms + runs[0].read_ms;
  const double u_total = runs[1].write_ms + runs[1].read_ms;
  const double speedup = u_total > 0 ? t_total / u_total : 0.0;
  Table t({"engine", "blocks", "write ms", "read ms", "total ms", "vs threads"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const DiskRun& r = runs[i];
    t.add_row({r.engine, std::to_string(r.blocks_written + r.blocks_read),
               Table::fmt(r.write_ms, 1), Table::fmt(r.read_ms, 1),
               Table::fmt(r.write_ms + r.read_ms, 1),
               i == 0 ? "--" : Table::fmt(speedup, 2) + "x"});
    if (!json_rows->empty()) *json_rows += ",";
    *json_rows += "{\"part\":\"disk\",\"engine\":\"" + r.engine +
                  "\",\"blocks_written\":" + std::to_string(r.blocks_written) +
                  ",\"blocks_read\":" + std::to_string(r.blocks_read) +
                  ",\"write_ms\":" + Table::fmt(r.write_ms, 3) +
                  ",\"read_ms\":" + Table::fmt(r.read_ms, 3) + "}";
  }
  t.print(std::cout);
  if (!*uring_available) {
    bench::note("E17b claim (uring >= 1.5x threads at depth 4): SKIPPED -- no "
                "io_uring on this kernel, row ran on the threaded fallback "
                "(informational only)");
    return ok;
  }
  if (speedup < 1.5) {
    bench::note("CLAIM VIOLATED: uring is only " + Table::fmt(speedup, 2) +
                "x over the threaded engine (need >= 1.5x)");
    ok = false;
  }
  bench::note(ok ? "E17b claim (uring >= 1.5x threads at depth 4): MET"
                 : "E17b claim: NOT MET");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t n_blocks = flags.get_u64("blocks", 8192);
  const std::string json_path = flags.get("json", "");
  flags.validate_or_die();
  if (n_blocks < 256) {
    std::fprintf(stderr, "--blocks must be >= 256\n");
    return 2;
  }

  std::string json_rows;
  const bool cache_ok = run_cache_grid(&json_rows);
  bench::note("");
  bool uring_available = false;
  const bool disk_ok = run_disk_grid(n_blocks, &json_rows, &uring_available);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"bench\":\"hierarchy\",\"blocks\":" << n_blocks
        << ",\"uring_available\":" << (uring_available ? "true" : "false")
        << ",\"claim_cache_ge_30pct\":" << (cache_ok ? "true" : "false")
        << ",\"claim_uring_ge_1_5x\":" << (disk_ok ? "true" : "false")
        << ",\"rows\":[" << json_rows << "]}\n";
    bench::note("wrote " + json_path);
  }
  return cache_ok && disk_ok ? 0 : 1;
}
