// M1 -- google-benchmark micro-benchmarks of the primitives: block I/O with
// encryption, sorting-network compare-exchange throughput, IBLT operations,
// Feistel PRP evaluation, and the consolidation scan.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/consolidate.h"
#include "iblt/iblt.h"
#include "rng/permutation.h"
#include "sortnet/networks.h"

using namespace oem;

namespace {

void BM_BlockWriteRead(benchmark::State& state) {
  const std::size_t B = static_cast<std::size_t>(state.range(0));
  Client client(bench::params(B, 4 * B));
  ExtArray a = client.alloc_blocks(64, Client::Init::kEmpty);
  BlockBuf buf(B);
  for (std::size_t i = 0; i < B; ++i) buf[i] = {i, i};
  std::uint64_t blk = 0;
  for (auto _ : state) {
    client.write_block(a, blk % 64, buf);
    client.read_block(a, blk % 64, buf);
    ++blk;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(B * sizeof(Record)));
}
BENCHMARK(BM_BlockWriteRead)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_BitonicSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto base = bench::random_records(n, 3);
  for (auto _ : state) {
    auto v = base;
    sortnet::bitonic_sort_any(v, RecordLess{}, Record{});
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BitonicSort)->Arg(256)->Arg(1024)->Arg(4096);

void BM_OddEvenSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto base = bench::random_records(n, 3);
  for (auto _ : state) {
    auto v = base;
    sortnet::odd_even_sort_any(v, RecordLess{}, Record{});
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OddEvenSort)->Arg(256)->Arg(1024)->Arg(4096);

void BM_IbltInsert(benchmark::State& state) {
  iblt::Iblt table(100000, {}, 5);
  std::uint64_t k = 0;
  for (auto _ : state) {
    table.insert(k, k);
    ++k;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IbltInsert);

void BM_IbltListEntries(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    iblt::Iblt table(n, {}, 7);
    for (std::uint64_t k = 0; k < n; ++k) table.insert(k * 7 + 1, k);
    std::vector<iblt::Entry> out;
    state.ResumeTiming();
    benchmark::DoNotOptimize(table.list_entries(out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IbltListEntries)->Arg(1000)->Arg(10000);

void BM_FeistelApply(benchmark::State& state) {
  rng::FeistelPermutation prp(1 << 20, 0xabc, 4);
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prp.apply(x % (1 << 20)));
    ++x;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FeistelApply);

void BM_ConsolidationScan(benchmark::State& state) {
  const std::uint64_t n_blocks = static_cast<std::uint64_t>(state.range(0));
  const std::size_t B = 16;
  for (auto _ : state) {
    state.PauseTiming();
    Client client(bench::params(B, 4 * B));
    ExtArray a = client.alloc_blocks(n_blocks, Client::Init::kUninit);
    client.poke(a, bench::random_records(n_blocks * B, 3));
    state.ResumeTiming();
    core::consolidate(client, a, core::nonempty_pred());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_blocks * B));
}
BENCHMARK(BM_ConsolidationScan)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
