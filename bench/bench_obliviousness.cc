// E10 -- the paper's obliviousness definition, §1: the distribution of the
// access sequence depends only on (P, N, M, B), never on data.  For every
// algorithm in the library, run the canonical adversarial input family with
// a fixed seed and print the trace hash per input: one identical hash per
// row = data-oblivious.  A deliberately leaky algorithm is included as the
// negative control.
#include <set>

#include "bench_common.h"
#include "core/butterfly.h"
#include "core/consolidate.h"
#include "core/loose_compact.h"
#include "core/logstar_compact.h"
#include "core/oblivious_sort.h"
#include "core/quantiles.h"
#include "core/select.h"
#include "core/sparse_compact.h"
#include "obliv/trace_check.h"
#include "sortnet/external_sort.h"

using namespace oem;

namespace {

struct AlgoCase {
  std::string name;
  ClientParams params;
  std::uint64_t records;
  std::function<void(Client&, const ExtArray&)> run;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::set_backend_from_flags(flags);  // consumes --backend, --shards, --prefetch
  flags.validate_or_die();

  bench::banner("E10", "obliviousness audit -- trace hashes across adversarial inputs");
  bench::note("inputs: all-equal, sorted, reverse, random, one-low, half-half; same seed "
              "=> the trace must be bit-identical (the strict form of the paper's "
              "definition for coin-fixed runs)");

  std::vector<AlgoCase> cases;
  cases.push_back({"consolidate (L3)", bench::params(4, 64), 1024,
                   [](Client& c, const ExtArray& a) {
                     core::consolidate(c, a, [](std::uint64_t, const Record& r) {
                       return !r.is_empty() && r.key % 2 == 0;
                     });
                   }});
  cases.push_back({"ext sort (L2)", bench::params(4, 64), 1024,
                   [](Client& c, const ExtArray& a) { sortnet::ext_oblivious_sort(c, a); }});
  cases.push_back({"butterfly (T6)", bench::params(4, 64), 1024,
                   [](Client& c, const ExtArray& a) {
                     core::tight_compact_blocks(c, a, [](std::uint64_t, const BlockBuf& b) {
                       return !b[0].is_empty() && b[0].key % 3 == 0;
                     });
                   }});
  cases.push_back({"sparse compact (T4)", bench::params(4, 4096), 512,
                   [](Client& c, const ExtArray& a) {
                     core::SparseCompactOptions o;
                     o.cost_aware = false;
                     core::sparse_compact_blocks(
                         c, a, 12,
                         [](std::uint64_t, const BlockBuf& b) {
                           return !b[0].is_empty() && b[0].key % 11 == 0;
                         },
                         7, o);
                   }});
  cases.push_back({"loose compact (T8)", bench::params(4, 512), 2048,
                   [](Client& c, const ExtArray& a) {
                     core::loose_compact_blocks(c, a, a.num_blocks() / 5,
                                                [](std::uint64_t, const BlockBuf& b) {
                                                  return !b[0].is_empty() &&
                                                         b[0].key % 5 == 0;
                                                },
                                                9);
                   }});
  cases.push_back({"log* compact (T9)", bench::params(4, 32), 1024,
                   [](Client& c, const ExtArray& a) {
                     core::logstar_compact_blocks(c, a, a.num_blocks() / 5,
                                                  [](std::uint64_t, const BlockBuf& b) {
                                                    return !b[0].is_empty() &&
                                                           b[0].key % 3 == 0;
                                                  },
                                                  3);
                   }});
  cases.push_back({"selection (T13)", bench::params(4, 256), 4096,
                   [](Client& c, const ExtArray& a) {
                     (void)core::oblivious_select(c, a, a.num_records() / 3, 5);
                   }});
  cases.push_back({"quantiles (T17)", bench::params(4, 64), 4096,
                   [](Client& c, const ExtArray& a) {
                     (void)core::oblivious_quantiles(c, a, 3, 21);
                   }});
  cases.push_back({"oblivious sort (T21)", bench::params(4, 64), 16384,
                   [](Client& c, const ExtArray& a) {
                     core::ObliviousSortOptions o;
                     o.min_recursive_blocks = 512;
                     (void)core::oblivious_sort(c, a, 5, o);
                   }});
  cases.push_back({"LEAKY control (hash-probe)", bench::params(4, 64), 256,
                   [](Client& c, const ExtArray& a) {
                     BlockBuf blk;
                     c.read_block(a, 0, blk);
                     c.read_block(a, blk[0].key % a.num_blocks(), blk);
                   }});

  // Trace events and the read/write totals below are recorded at SUBMIT time
  // in program order, so rows are identical with --prefetch on or off (the
  // trace-invariance suite pins this; here it keeps the table comparable
  // across engine configurations).
  Table t({"algorithm", "distinct trace hashes", "trace length", "block I/Os",
           "oblivious"});
  for (const auto& cs : cases) {
    auto result = obliv::check_oblivious(cs.params, cs.records,
                                         obliv::canonical_inputs(1), cs.run);
    std::set<std::uint64_t> hashes;
    for (const auto& run : result.runs) hashes.insert(run.trace_hash);
    t.add_row({cs.name, std::to_string(hashes.size()),
               std::to_string(result.runs[0].trace_len),
               std::to_string(result.runs[0].reads + result.runs[0].writes),
               result.oblivious ? "yes" : "NO (expected for the control)"});
  }
  t.print(std::cout);
  return 0;
}
