// E15: multicore compute -- the worker pool inside run_block_pipeline plus
// parallel block crypto, measured end to end.
//
// Two workloads run over a fast sharded(4)+prefetch mem store at pipeline
// depth 4, at 1/2/4/8 compute lanes each:
//
//   sort   ext_oblivious_sort (run formation + merge-split network); the
//          merge levels are chunk-parallel, so lanes split every window
//   oram   SqrtOram construction + one full epoch of accesses (the epoch
//          reshuffle: retag/sort/rewrite scans, all chunk-parallel)
//
// The gated rows charge --model-ns of simulated compute per block, slept on
// whichever lane computes the chunk (the bench_server_load precedent), so
// the scaling claim is core-count independent: lanes overlap modeled compute
// even on a single hardware thread.  Rows with --model-ns=0 (the `real`
// grid) are informational -- on a 1-core CI host real compute cannot scale.
//
// EXIT-CODE-ENFORCED claims, checked on the modeled sort grid:
//   1. wall(1 lane) / wall(4 lanes) >= 2.0
//   2. block I/O counts {reads, writes, read_ops, write_ops} and the device
//      trace hash are byte-identical across ALL lane counts (both
//      workloads): the compute plane never touches Bob's view.
//
// The defaults keep the modeled compute well above the real (unscalable on a
// 1-core host, sanitizer-inflated in CI) floor of the run, so the gated
// ratio measures lane overlap, not the floor.
//
//   bench_compute_parallel [--records=16384] [--block=16] [--cache=2048]
//                          [--model-ns=40000] [--oram-items=4096]
//                          [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "extmem/client.h"
#include "extmem/io_engine.h"
#include "oram/sqrt_oram.h"
#include "sortnet/external_sort.h"
#include "util/flags.h"
#include "util/table.h"

namespace oem {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

struct RunResult {
  double wall_ms = 0;
  double compute_ms = 0;
  double crypto_ms = 0;
  IoStats stats;
  std::uint64_t trace_hash = 0;
};

bool same_io(const IoStats& a, const IoStats& b) {
  return a.reads == b.reads && a.writes == b.writes && a.read_ops == b.read_ops &&
         a.write_ops == b.write_ops;
}

/// The fast I/O-plane stack every row runs on: async(sharded(mem x 4)),
/// depth 4 -- deep enough that the compute phase, not the store, is the
/// bottleneck under the modeled per-block cost.
ClientParams grid_params(std::size_t B, std::uint64_t M, std::size_t threads,
                         std::uint64_t model_ns) {
  ClientParams p;
  p.block_records = B;
  p.cache_records = M;
  p.seed = 42;
  p.backend = async_backend(sharded_backend(mem_backend(), 4));
  p.pipeline_depth = 4;
  p.compute_threads = threads;
  p.compute_model_ns_per_block = model_ns;
  return p;
}

RunResult run_sort(std::size_t B, std::uint64_t M, std::uint64_t records,
                   std::size_t threads, std::uint64_t model_ns) {
  Client client(grid_params(B, M, threads, model_ns));
  ExtArray a = client.alloc(records, Client::Init::kUninit);
  client.poke(a, bench::random_records(records, 7));
  client.device().trace().reset();
  client.reset_stats();
  const auto t0 = Clock::now();
  sortnet::ext_oblivious_sort(client, a);
  RunResult r;
  r.wall_ms = ms_between(t0, Clock::now());
  r.stats = client.stats();
  r.compute_ms = r.stats.compute_ns / 1e6;
  r.crypto_ms = r.stats.crypto_ns / 1e6;
  r.trace_hash = client.device().trace().hash();
  const auto out = client.peek(a);
  if (!std::is_sorted(out.begin(), out.end(), RecordLess{})) {
    std::fprintf(stderr, "sort grid: output NOT sorted at threads=%zu\n", threads);
    std::exit(2);
  }
  return r;
}

RunResult run_oram(std::size_t B, std::uint64_t M, std::uint64_t items,
                   std::size_t threads, std::uint64_t model_ns) {
  Client client(grid_params(B, M, threads, model_ns));
  client.device().trace().reset();
  const auto t0 = Clock::now();
  oram::SqrtOram o(client, items, oram::ShuffleKind::kDeterministic, /*seed=*/5);
  // One full epoch: the last access triggers the epoch reshuffle.
  for (std::uint64_t i = 0; i < o.epoch_length(); ++i) {
    const std::uint64_t idx = (i * 13) % items;
    if (o.access(idx) != o.expected_value(idx)) {
      std::fprintf(stderr, "oram grid: wrong value at threads=%zu\n", threads);
      std::exit(2);
    }
  }
  RunResult r;
  r.wall_ms = ms_between(t0, Clock::now());
  r.stats = client.stats();
  r.compute_ms = r.stats.compute_ns / 1e6;
  r.crypto_ms = r.stats.crypto_ns / 1e6;
  r.trace_hash = client.device().trace().hash();
  return r;
}

}  // namespace
}  // namespace oem

int main(int argc, char** argv) {
  using namespace oem;
  Flags flags(argc, argv);
  const std::uint64_t records = flags.get_u64("records", 16384);
  const std::size_t B = static_cast<std::size_t>(flags.get_u64("block", 16));
  const std::uint64_t M = flags.get_u64("cache", 2048);
  const std::uint64_t model_ns = flags.get_u64("model-ns", 40000);
  const std::uint64_t oram_items = flags.get_u64("oram-items", 4096);
  const std::string json_path = flags.get("json", "");
  flags.validate_or_die();

  bench::banner("E15", "multicore compute: worker pool + parallel crypto");
  bench::note("stack: async(sharded(mem x 4)), depth 4; modeled compute " +
              std::to_string(model_ns) + " ns/block (sleep-based, so lane " +
              "scaling is core-count independent); real rows model 0");

  const std::vector<std::size_t> lanes = {1, 2, 4, 8};
  bool claim_met = true;
  std::string json_rows;
  auto add_json = [&](const std::string& workload, const std::string& mode,
                      std::size_t threads, const RunResult& r) {
    if (!json_rows.empty()) json_rows += ",";
    json_rows += "{\"workload\":\"" + workload + "\",\"mode\":\"" + mode +
                 "\",\"threads\":" + std::to_string(threads) +
                 ",\"wall_ms\":" + std::to_string(r.wall_ms) +
                 ",\"compute_ms\":" + std::to_string(r.compute_ms) +
                 ",\"crypto_ms\":" + std::to_string(r.crypto_ms) +
                 ",\"reads\":" + std::to_string(r.stats.reads) +
                 ",\"writes\":" + std::to_string(r.stats.writes) +
                 ",\"trace_hash\":" + std::to_string(r.trace_hash) + "}";
  };

  // --- gated grid: modeled sort ---
  Table t({"workload", "threads", "wall ms", "compute ms", "crypto ms",
           "speedup", "blk reads", "blk writes"});
  std::vector<RunResult> modeled;
  for (std::size_t n : lanes) {
    modeled.push_back(run_sort(B, M, records, n, model_ns));
    const RunResult& r = modeled.back();
    t.add_row({"sort(model)", std::to_string(n), Table::fmt(r.wall_ms, 1),
               Table::fmt(r.compute_ms, 1), Table::fmt(r.crypto_ms, 1),
               Table::fmt(modeled.front().wall_ms / r.wall_ms, 2),
               std::to_string(r.stats.reads), std::to_string(r.stats.writes)});
    add_json("sort", "model", n, r);
  }
  const double speedup4 = modeled[0].wall_ms / modeled[2].wall_ms;
  if (speedup4 < 2.0) {
    bench::note("CLAIM VIOLATED: modeled sort speedup at 4 lanes is " +
                Table::fmt(speedup4, 2) + "x, need >= 2.0x");
    claim_met = false;
  }
  for (std::size_t i = 1; i < modeled.size(); ++i) {
    if (!same_io(modeled[i].stats, modeled[0].stats) ||
        modeled[i].trace_hash != modeled[0].trace_hash) {
      bench::note("CLAIM VIOLATED: sort block I/O or trace diverged at " +
                  std::to_string(lanes[i]) + " lanes -- the compute plane " +
                  "leaked into Bob's view");
      claim_met = false;
    }
  }

  // --- informational: real compute (no model) ---
  for (std::size_t n : {std::size_t{1}, std::size_t{4}}) {
    const RunResult r = run_sort(B, M, records, n, 0);
    t.add_row({"sort(real)", std::to_string(n), Table::fmt(r.wall_ms, 1),
               Table::fmt(r.compute_ms, 1), Table::fmt(r.crypto_ms, 1), "-",
               std::to_string(r.stats.reads), std::to_string(r.stats.writes)});
    add_json("sort", "real", n, r);
  }

  // --- ORAM epoch grid: modeled, trace pinned, speedup informational ---
  std::vector<RunResult> oram_runs;
  for (std::size_t n : lanes) {
    oram_runs.push_back(run_oram(B, M, oram_items, n, model_ns));
    const RunResult& r = oram_runs.back();
    t.add_row({"oram(model)", std::to_string(n), Table::fmt(r.wall_ms, 1),
               Table::fmt(r.compute_ms, 1), Table::fmt(r.crypto_ms, 1),
               Table::fmt(oram_runs.front().wall_ms / r.wall_ms, 2),
               std::to_string(r.stats.reads), std::to_string(r.stats.writes)});
    add_json("oram", "model", n, r);
  }
  for (std::size_t i = 1; i < oram_runs.size(); ++i) {
    if (!same_io(oram_runs[i].stats, oram_runs[0].stats) ||
        oram_runs[i].trace_hash != oram_runs[0].trace_hash) {
      bench::note("CLAIM VIOLATED: oram block I/O or trace diverged at " +
                  std::to_string(lanes[i]) + " lanes");
      claim_met = false;
    }
  }

  t.print(std::cout);
  bench::note("modeled sort speedup at 4 lanes: " + Table::fmt(speedup4, 2) +
              "x (gate: >= 2.0x); block I/O and trace hash pinned identical "
              "across 1/2/4/8 lanes for both workloads");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"bench\":\"compute_parallel\",\"claim_met\":"
        << (claim_met ? "true" : "false")
        << ",\"speedup_4_lanes\":" << speedup4 << ",\"rows\":[" << json_rows
        << "]}\n";
    bench::note("wrote " + json_path);
  }
  return claim_met ? 0 : 1;
}
