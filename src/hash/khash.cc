#include "hash/khash.h"

#include <cassert>

#include "hash/hashing.h"
#include "rng/random.h"

namespace oem::hash {

KHashFamily::KHashFamily(unsigned k, std::uint64_t cells, std::uint64_t seed) : k_(k) {
  assert(k >= 1);
  seg_len_ = cells / k;
  if (seg_len_ == 0) seg_len_ = 1;
  std::uint64_t sm = seed ^ 0x6a09e667f3bcc909ULL;
  seeds_.resize(k);
  for (auto& s : seeds_) s = rng::splitmix64(sm);
  check_seed_ = rng::splitmix64(sm);
}

std::uint64_t KHashFamily::cell(std::uint64_t x, unsigned i) const {
  assert(i < k_);
  return static_cast<std::uint64_t>(i) * seg_len_ + to_range(x, seeds_[i], seg_len_);
}

std::vector<std::uint64_t> KHashFamily::cells_for(std::uint64_t x) const {
  std::vector<std::uint64_t> out(k_);
  for (unsigned i = 0; i < k_; ++i) out[i] = cell(x, i);
  return out;
}

std::uint64_t KHashFamily::checksum(std::uint64_t x) const {
  return mix(x, check_seed_) | 1;  // never zero, so an empty cell can't look pure
}

}  // namespace oem::hash
