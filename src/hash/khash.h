// Partitioned k-hash family for the invertible Bloom lookup table.
//
// The paper (§2) requires that for any key x the k cell indices h_1(x), ...,
// h_k(x) are distinct, "which can be achieved by a number of methods,
// including partitioning".  We partition the table of m cells into k
// contiguous segments of floor(m/k) cells; h_i maps into segment i.
#pragma once

#include <cstdint>
#include <vector>

namespace oem::hash {

class KHashFamily {
 public:
  /// `cells` is the total table size m; it is rounded down to a multiple of k
  /// (>= k).  All k hashes of a key land in distinct segments, hence are
  /// distinct cells.
  KHashFamily(unsigned k, std::uint64_t cells, std::uint64_t seed);

  unsigned k() const { return k_; }
  std::uint64_t cells() const { return seg_len_ * k_; }
  std::uint64_t segment_length() const { return seg_len_; }

  /// Cell index of hash i (0-based) for key x.
  std::uint64_t cell(std::uint64_t x, unsigned i) const;

  /// All k cells for a key.
  std::vector<std::uint64_t> cells_for(std::uint64_t x) const;

  /// A checksum hash, independent of the k cell hashes, used to validate
  /// "pure" cells during peeling (guards against false positives).
  std::uint64_t checksum(std::uint64_t x) const;

 private:
  unsigned k_;
  std::uint64_t seg_len_;
  std::vector<std::uint64_t> seeds_;
  std::uint64_t check_seed_;
};

}  // namespace oem::hash
