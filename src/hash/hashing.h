// Hash functions.
//
// The paper's IBLT needs k random hash functions h_1..h_k with distinct
// values per key (achieved by partitioning, see khash.h), modeled as random
// oracles.  We provide seeded mixing hashes plus simple tabulation hashing
// (3-independent, good enough for the peeling analyses at our scales).
#pragma once

#include <array>
#include <cstdint>

namespace oem::hash {

/// Seeded 64->64 mixer (xxhash-style avalanche over splitmix constants).
std::uint64_t mix(std::uint64_t x, std::uint64_t seed);

/// Seeded hash onto [0, range).
std::uint64_t to_range(std::uint64_t x, std::uint64_t seed, std::uint64_t range);

/// Simple tabulation hashing over 8 byte-indexed tables; 3-independent.
class Tabulation {
 public:
  explicit Tabulation(std::uint64_t seed);
  std::uint64_t operator()(std::uint64_t x) const;

 private:
  std::array<std::array<std::uint64_t, 256>, 8> tables_;
};

}  // namespace oem::hash
