#include "hash/hashing.h"

#include "rng/random.h"

namespace oem::hash {

std::uint64_t mix(std::uint64_t x, std::uint64_t seed) {
  std::uint64_t s = x ^ (seed * 0x9e3779b97f4a7c15ULL) ^ 0x2545f4914f6cdd1dULL;
  return rng::splitmix64(s);
}

std::uint64_t to_range(std::uint64_t x, std::uint64_t seed, std::uint64_t range) {
  if (range == 0) return 0;
  // Multiply-high maps a uniform 64-bit hash onto [0, range) without modulo
  // bias (Lemire's method).
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(mix(x, seed)) * static_cast<unsigned __int128>(range);
  return static_cast<std::uint64_t>(wide >> 64);
}

Tabulation::Tabulation(std::uint64_t seed) {
  std::uint64_t sm = seed ^ 0xe7037ed1a0b428dbULL;
  for (auto& table : tables_)
    for (auto& cell : table) cell = rng::splitmix64(sm);
}

std::uint64_t Tabulation::operator()(std::uint64_t x) const {
  std::uint64_t h = 0;
  for (std::size_t b = 0; b < 8; ++b) {
    h ^= tables_[b][(x >> (8 * b)) & 0xff];
  }
  return h;
}

}  // namespace oem::hash
