#include "obliv/trace_check.h"

#include <algorithm>
#include <sstream>

#include "rng/random.h"

namespace oem::obliv {

std::vector<NamedInput> canonical_inputs(std::uint64_t value_seed) {
  std::vector<NamedInput> inputs;
  inputs.push_back({"all-equal", [](std::uint64_t n) {
                      std::vector<Record> v(n);
                      for (std::uint64_t i = 0; i < n; ++i) v[i] = {42, i};
                      return v;
                    }});
  inputs.push_back({"sorted", [](std::uint64_t n) {
                      std::vector<Record> v(n);
                      for (std::uint64_t i = 0; i < n; ++i) v[i] = {i, i};
                      return v;
                    }});
  inputs.push_back({"reverse", [](std::uint64_t n) {
                      std::vector<Record> v(n);
                      for (std::uint64_t i = 0; i < n; ++i) v[i] = {n - 1 - i, i};
                      return v;
                    }});
  inputs.push_back({"random", [value_seed](std::uint64_t n) {
                      std::vector<Record> v(n);
                      rng::Xoshiro g(value_seed ^ 0xabcdef12345ULL);
                      for (std::uint64_t i = 0; i < n; ++i)
                        v[i] = {g.next() >> 1, i};  // >>1 keeps keys below the sentinel
                      return v;
                    }});
  inputs.push_back({"one-low", [](std::uint64_t n) {
                      std::vector<Record> v(n);
                      for (std::uint64_t i = 0; i < n; ++i) v[i] = {1000000 + i, i};
                      if (n > 0) v[n / 2] = {0, n / 2};
                      return v;
                    }});
  inputs.push_back({"half-half", [](std::uint64_t n) {
                      std::vector<Record> v(n);
                      for (std::uint64_t i = 0; i < n; ++i)
                        v[i] = {i < n / 2 ? Word{7} : Word{1} << 40, i};
                      return v;
                    }});
  return inputs;
}

CheckResult check_oblivious(
    const ClientParams& params, std::uint64_t num_records,
    const std::vector<NamedInput>& inputs,
    const std::function<void(Client&, const ExtArray&)>& algo,
    bool record_events) {
  CheckResult result;
  std::vector<std::vector<TraceEvent>> event_logs;

  for (const auto& input : inputs) {
    Client client(params);
    client.device().trace().set_record_events(record_events);
    ExtArray a = client.alloc(num_records, Client::Init::kUninit);
    const std::vector<Record> data = input.gen(num_records);
    client.poke(a, data);
    client.reset_stats();
    client.device().trace().reset();

    algo(client, a);

    TraceRun run;
    run.input_name = input.name;
    run.trace_hash = client.device().trace().hash();
    run.trace_len = client.device().trace().size();
    run.reads = client.stats().reads;
    run.writes = client.stats().writes;
    result.runs.push_back(run);
    if (record_events) event_logs.push_back(client.device().trace().events());
  }

  result.oblivious = true;
  for (std::size_t i = 1; i < result.runs.size(); ++i) {
    if (result.runs[i].trace_hash != result.runs[0].trace_hash ||
        result.runs[i].trace_len != result.runs[0].trace_len) {
      result.oblivious = false;
      if (record_events && i < event_logs.size()) {
        const auto& a = event_logs[0];
        const auto& b = event_logs[i];
        const std::size_t lim = std::min(a.size(), b.size());
        std::size_t d = 0;
        while (d < lim && a[d] == b[d]) ++d;
        std::ostringstream os;
        os << "trace divergence between '" << result.runs[0].input_name
           << "' and '" << result.runs[i].input_name << "' at event " << d;
        if (d < lim) {
          os << ": (" << (a[d].op == IoOp::kRead ? "R" : "W") << " " << a[d].block
             << ") vs (" << (b[d].op == IoOp::kRead ? "R" : "W") << " " << b[d].block
             << ")";
        } else {
          os << " (length mismatch: " << a.size() << " vs " << b.size() << ")";
        }
        result.diagnosis = os.str();
      } else {
        result.diagnosis = "trace hash mismatch for input '" +
                           result.runs[i].input_name +
                           "' (re-run with record_events for the diff)";
      }
      break;
    }
  }
  return result;
}

}  // namespace oem::obliv
