// Obliviousness harness.
//
// The paper's definition: the distribution of the access sequence S may
// depend only on the problem, N, M, B, and |S| -- never on data values.
// Every algorithm here draws its coins from an explicit seeded PRG,
// independent of the data, so a *strict* consequence holds: for a fixed seed,
// the trace must be bit-identical across any two inputs of the same size.
// TraceChecker runs an algorithm on a set of adversarial inputs with the same
// seed and asserts exactly that.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "extmem/client.h"

namespace oem::obliv {

struct TraceRun {
  std::string input_name;
  std::uint64_t trace_hash = 0;
  std::uint64_t trace_len = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

struct CheckResult {
  bool oblivious = false;
  std::vector<TraceRun> runs;
  std::string diagnosis;  // first divergence, when event recording is on
};

/// An input generator produces the record contents for a named adversarial
/// input of exactly `num_records` records.
using InputGen = std::function<std::vector<Record>(std::uint64_t num_records)>;

struct NamedInput {
  std::string name;
  InputGen gen;
};

/// The canonical adversarial input family used throughout the tests and the
/// obliviousness bench: all-equal, sorted, reverse-sorted, random,
/// one-distinguished-element, half-and-half.
std::vector<NamedInput> canonical_inputs(std::uint64_t value_seed);

/// Runs `algo` once per input on a fresh Client (same params + seed each
/// time) and compares the traces.  `algo` receives the client and the input
/// array; it must draw randomness only from client.rng().
CheckResult check_oblivious(
    const ClientParams& params, std::uint64_t num_records,
    const std::vector<NamedInput>& inputs,
    const std::function<void(Client&, const ExtArray&)>& algo,
    bool record_events = false);

}  // namespace oem::obliv
