#include "core/consolidate.h"

#include <algorithm>
#include <vector>

#include "extmem/pipeline.h"
#include "util/math.h"

namespace oem::core {

RecordPred nonempty_pred() {
  return [](std::uint64_t, const Record& r) { return !r.is_empty(); };
}

bool consolidated_block_distinguished(const BlockBuf& blk) {
  return !blk.empty() && !blk[0].is_empty();
}

ConsolidateResult consolidate(Client& client, const ExtArray& a, const RecordPred& pred) {
  const std::size_t B = client.B();
  const std::uint64_t n = a.num_blocks();
  ConsolidateResult res;
  res.out = client.alloc_blocks(n + 1, Client::Init::kUninit);

  // Alice's in-memory pending buffer x: fewer than B distinguished records,
  // in input order.  The scan runs as a double-buffered pipeline in windows
  // of W blocks (bounded by the client's io_batch_blocks): pass t reads
  // window t of A and writes window t of A'; the final pass flushes the
  // pending partial block.  Window size and pass layout are public
  // parameters, so the trace is still data-independent: exactly n reads +
  // (n+1) writes.  Reading from A while writing to A' means the next window
  // always prefetches during the current window's predicate scan.
  const std::uint64_t W =
      std::max<std::uint64_t>(1, std::min(client.io_batch_blocks(),
                                          std::max<std::uint64_t>(n, 1)));
  const std::uint64_t chunks = n == 0 ? 0 : ceil_div(n, W);
  std::vector<Record> x;
  x.reserve(2 * B);
  std::uint64_t rec_index = 0;

  run_block_pipeline(
      client, chunks + 1,
      [&](std::uint64_t t, PipelinePass& io) {
        io.read_from = &a;
        io.write_to = &res.out;
        if (t == chunks) {  // final flush of the pending partial block
          io.writes.push_back(n);
          return;
        }
        const std::uint64_t first = t * W;
        const std::uint64_t k = std::min(W, n - first);
        for (std::uint64_t j = 0; j < k; ++j) {
          io.reads.push_back(first + j);
          io.writes.push_back(first + j);
        }
      },
      [&](std::uint64_t t, std::span<Record> buf) {
        if (t == chunks) {
          for (std::size_t r = 0; r < B; ++r) buf[r] = r < x.size() ? x[r] : Record{};
          return;
        }
        const std::uint64_t k = buf.size() / B;
        for (std::uint64_t j = 0; j < k; ++j) {
          for (std::size_t r = 0; r < B; ++r, ++rec_index) {
            const Record& rec = buf[j * B + r];
            if (pred(rec_index, rec)) {
              x.push_back(rec);
              ++res.distinguished;
            }
          }
          // One output block per input block: full if we can fill it, else
          // empty (overwriting the input block's slot, already consumed).
          if (x.size() >= B) {
            for (std::size_t r = 0; r < B; ++r) buf[j * B + r] = x[r];
            x.erase(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(B));
            ++res.full_blocks;
          } else {
            for (std::size_t r = 0; r < B; ++r) buf[j * B + r] = Record{};
          }
        }
      });
  return res;
}

}  // namespace oem::core
