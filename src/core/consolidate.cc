#include "core/consolidate.h"

namespace oem::core {

RecordPred nonempty_pred() {
  return [](std::uint64_t, const Record& r) { return !r.is_empty(); };
}

bool consolidated_block_distinguished(const BlockBuf& blk) {
  return !blk.empty() && !blk[0].is_empty();
}

ConsolidateResult consolidate(Client& client, const ExtArray& a, const RecordPred& pred) {
  const std::size_t B = client.B();
  const std::uint64_t n = a.num_blocks();
  ConsolidateResult res;
  res.out = client.alloc_blocks(n + 1, Client::Init::kUninit);

  // Alice's in-memory pending buffer x: fewer than B distinguished records,
  // in input order.
  CacheLease lease(client.cache(), 3 * B);
  std::vector<Record> x;
  x.reserve(2 * B);
  BlockBuf in, outblk(B);
  const BlockBuf empty = make_empty_block(B);

  std::uint64_t rec_index = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    client.read_block(a, i, in);
    for (std::size_t r = 0; r < B; ++r, ++rec_index) {
      if (pred(rec_index, in[r])) {
        x.push_back(in[r]);
        ++res.distinguished;
      }
    }
    // One output block per input block: full if we can fill it, else empty.
    if (x.size() >= B) {
      for (std::size_t r = 0; r < B; ++r) outblk[r] = x[r];
      x.erase(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(B));
      client.write_block(res.out, i, outblk);
      ++res.full_blocks;
    } else {
      client.write_block(res.out, i, empty);
    }
  }
  // Final flush of the pending partial block (position n).
  outblk = empty;
  for (std::size_t r = 0; r < x.size(); ++r) outblk[r] = x[r];
  client.write_block(res.out, n, outblk);
  return res;
}

}  // namespace oem::core
