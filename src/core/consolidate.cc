#include "core/consolidate.h"

#include <algorithm>
#include <vector>

namespace oem::core {

RecordPred nonempty_pred() {
  return [](std::uint64_t, const Record& r) { return !r.is_empty(); };
}

bool consolidated_block_distinguished(const BlockBuf& blk) {
  return !blk.empty() && !blk[0].is_empty();
}

ConsolidateResult consolidate(Client& client, const ExtArray& a, const RecordPred& pred) {
  const std::size_t B = client.B();
  const std::uint64_t n = a.num_blocks();
  ConsolidateResult res;
  res.out = client.alloc_blocks(n + 1, Client::Init::kUninit);

  // Alice's in-memory pending buffer x: fewer than B distinguished records,
  // in input order.  The scan runs in batch windows of W blocks (bounded by
  // the client's io_batch_blocks, i.e. at most m/4 blocks of staging) so the
  // backend can coalesce the I/O; the window size is a public parameter, so
  // the trace is still data-independent: exactly n reads + (n+1) writes.
  const std::uint64_t W = std::max<std::uint64_t>(1, std::min(client.io_batch_blocks(), n));
  CacheLease lease(client.cache(), 2 * W * B + 2 * B);
  std::vector<Record> x;
  x.reserve(2 * B);
  std::vector<Record> in(static_cast<std::size_t>(W) * B);
  std::vector<Record> outbuf(static_cast<std::size_t>(W) * B);
  BlockBuf outblk(B);
  const BlockBuf empty = make_empty_block(B);

  std::uint64_t rec_index = 0;
  for (std::uint64_t chunk = 0; chunk < n; chunk += W) {
    const std::uint64_t k = std::min(W, n - chunk);
    in.resize(static_cast<std::size_t>(k) * B);
    client.read_blocks(a, chunk, k, in);
    outbuf.assign(static_cast<std::size_t>(k) * B, Record{});
    for (std::uint64_t j = 0; j < k; ++j) {
      for (std::size_t r = 0; r < B; ++r, ++rec_index) {
        const Record& rec = in[j * B + r];
        if (pred(rec_index, rec)) {
          x.push_back(rec);
          ++res.distinguished;
        }
      }
      // One output block per input block: full if we can fill it, else empty.
      if (x.size() >= B) {
        for (std::size_t r = 0; r < B; ++r) outbuf[j * B + r] = x[r];
        x.erase(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(B));
        ++res.full_blocks;
      }
    }
    client.write_blocks(res.out, chunk, k, outbuf);
  }
  // Final flush of the pending partial block (position n).
  outblk = empty;
  for (std::size_t r = 0; r < x.size(); ++r) outblk[r] = x[r];
  client.write_block(res.out, n, outblk);
  return res;
}

}  // namespace oem::core
