#include "core/butterfly.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

#include "extmem/pipeline.h"
#include "sortnet/external_sort.h"
#include "util/math.h"

namespace oem::core {

namespace {

// Working representation: each network cell occupies two consecutive blocks
// of the scratch array W -- payload (block 2c) and metadata (block 2c+1,
// record 0 = {occupied, remaining distance in cells}).  In a pipeline pass a
// window of cells is gathered as [payload(c0), meta(c0), payload(c1), ...];
// cell q's payload therefore sits at records [2q*B, (2q+1)*B) of the pass
// buffer and its metadata record at buf[(2q+1)*B].

/// Encode one cell's metadata block in the pass buffer.
void put_meta(std::span<Record> buf, std::size_t q, std::size_t B, bool occupied,
              std::uint64_t dist) {
  std::span<Record> meta = buf.subspan((2 * q + 1) * B, B);
  std::fill(meta.begin(), meta.end(), Record{0, 0});
  meta[0] = {occupied ? std::uint64_t{1} : std::uint64_t{0}, dist};
}

/// A window position of the sliding-window sweep: one pipeline pass.
struct RouteWindow {
  std::uint64_t s = 1;     // stride in cells
  unsigned g_t = 0;        // levels routed inside this super-level
  std::uint64_t rho = 0;   // residue class
  std::uint64_t a0 = 0;    // window start in the virtual subarray
  std::uint64_t win = 0;   // window length in cells
};

/// Enumerate the windows of the full butterfly in execution order.
/// direction=+1: leftward compaction (levels LSB->MSB).
/// direction=-1: rightward expansion (levels MSB->LSB).
std::vector<RouteWindow> route_windows(std::uint64_t n_p2, std::uint64_t m,
                                       int direction) {
  std::vector<RouteWindow> out;
  if (n_p2 <= 1) return out;
  const unsigned L = floor_log2(n_p2);
  const unsigned g = std::max<unsigned>(1, floor_log2(std::max<std::uint64_t>(2, m / 8)));
  const unsigned num_super = (L + g - 1) / g;
  for (unsigned st = 0; st < num_super; ++st) {
    // Super-level index in execution order depends on direction.
    const unsigned t = direction > 0 ? st : num_super - 1 - st;
    const unsigned g_t = std::min<unsigned>(g, L - t * g);
    const std::uint64_t s = std::uint64_t{1} << (t * g);  // stride in cells
    const std::uint64_t span = std::uint64_t{1} << g_t;   // max movement, in stride units
    const std::uint64_t len = n_p2 / s;                   // virtual subarray length

    std::uint64_t win = std::min<std::uint64_t>(len, 2 * span);
    if (win <= span && win < len) win = span + 1;  // ensure forward progress

    for (std::uint64_t rho = 0; rho < s; ++rho) {
      // Sliding-window sweep over the virtual array V[q] = cell rho + q*s.
      // Compaction sweeps left-to-right (receivers are to the left of
      // senders); expansion sweeps right-to-left.
      std::uint64_t a0 = direction > 0 ? 0 : len - win;
      for (;;) {
        out.push_back({s, g_t, rho, a0, win});
        if (win >= len) break;
        if (direction > 0) {
          if (a0 + win >= len) break;
          a0 = std::min(a0 + (win - span), len - win);
        } else {
          if (a0 == 0) break;
          a0 = a0 > (win - span) ? a0 - (win - span) : 0;
        }
      }
    }
  }
  return out;
}

/// Route one window's cells through its g_t levels, in place in the pass
/// buffer.  Payload movement is tracked as an index permutation and
/// materialized once at the end.
void route_window(const RouteWindow& wd, std::span<Record> buf, std::size_t B,
                  int direction, const BlockBuf& empty) {
  struct Slot {
    bool occupied = false;
    std::uint64_t dist = 0;
    std::uint32_t src = 0;  // window cell whose payload this slot holds
  };
  const std::uint64_t win = wd.win;
  std::vector<Slot> cur(win), nxt(win);
  for (std::uint64_t q = 0; q < win; ++q) {
    const Record meta = buf[(2 * q + 1) * B];
    cur[q] = {meta.key != 0, meta.value, static_cast<std::uint32_t>(q)};
  }

  for (unsigned l = 0; l < wd.g_t; ++l) {
    const std::uint64_t step_cells = wd.s << l;
    for (auto& slot : nxt) {
      slot.occupied = false;
      slot.dist = 0;
    }
    for (std::uint64_t q = 0; q < win; ++q) {
      if (!cur[q].occupied) continue;
      std::uint64_t delta;
      if (direction > 0) {
        delta = cur[q].dist % (step_cells << 1);  // 0 or 2^i (Lemma 5 invariant)
      } else {
        delta = cur[q].dist & step_cells;  // bit i of the total displacement
      }
      assert(delta == 0 || delta == step_cells);
      const std::uint64_t move = delta / wd.s;
      const std::uint64_t q_new =
          direction > 0 ? q - move : q + move;  // underflow caught below
      if (q_new >= win) {
        // Lemma 5 + window invariants make this unreachable; if it trips,
        // it is an implementation bug, not bad luck.
        throw std::logic_error("butterfly: cell routed outside window");
      }
      if (nxt[q_new].occupied)
        throw std::logic_error("butterfly: collision (violates Lemma 5)");
      nxt[q_new].occupied = true;
      nxt[q_new].dist = cur[q].dist - delta;
      nxt[q_new].src = cur[q].src;
    }
    std::swap(cur, nxt);
  }

  // Materialize: snapshot the original payloads, then place each slot's
  // payload (or an empty block -- unoccupied slots may have had their
  // payload moved out during routing; either way one payload write + one
  // metadata write happen, so the trace is the same for both cases).
  std::vector<Record> payloads(win * B);
  for (std::uint64_t q = 0; q < win; ++q)
    std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(2 * q * B), B,
                payloads.begin() + static_cast<std::ptrdiff_t>(q * B));
  for (std::uint64_t q = 0; q < win; ++q) {
    if (cur[q].occupied) {
      std::copy_n(payloads.begin() + static_cast<std::ptrdiff_t>(cur[q].src * B), B,
                  buf.begin() + static_cast<std::ptrdiff_t>(2 * q * B));
    } else {
      std::copy_n(empty.begin(), B, buf.begin() + static_cast<std::ptrdiff_t>(2 * q * B));
    }
    put_meta(buf, q, B, cur[q].occupied, cur[q].dist);
  }
}

/// Routes the scratch array W of n_p2 cells through the full butterfly as a
/// pipeline over window positions.  Successive windows overlap, so the next
/// read is never prefetched early; the write still retires asynchronously
/// (FIFO execution makes the overlap-hazard impossible), and the whole
/// window moves as two batched transfers instead of 4*win single-block ops.
void route(Client& client, const ExtArray& w, std::uint64_t n_p2, int direction) {
  if (n_p2 <= 1) return;
  const std::size_t B = client.B();
  const BlockBuf empty = make_empty_block(B);
  const std::vector<RouteWindow> wins = route_windows(n_p2, client.m(), direction);
  run_block_pipeline(
      client, wins.size(),
      [&](std::uint64_t t, PipelinePass& io) {
        const RouteWindow& wd = wins[t];
        io.read_from = &w;
        io.write_to = &w;
        for (std::uint64_t q = 0; q < wd.win; ++q) {
          const std::uint64_t cell = wd.rho + (wd.a0 + q) * wd.s;
          io.reads.push_back(2 * cell);
          io.reads.push_back(2 * cell + 1);
        }
        io.writes = io.reads;
      },
      [&](std::uint64_t t, std::span<Record> buf) {
        // route_window's payload snapshot + slot bookkeeping hold another
        // ~win*B records of private memory beyond the pipeline's lease;
        // meter them so the M-budget accounting stays honest.
        CacheLease extra(client.cache(), wins[t].win * (B + 2));
        route_window(wins[t], buf, B, direction, empty);
      });
}

/// Chunk width (in cells) for the copy-in/copy-out scans: half the batch
/// window, since every cell is two blocks.
std::uint64_t scan_chunk_cells(const Client& c) {
  return std::max<std::uint64_t>(1, c.io_batch_blocks() / 2);
}

/// Copy-in expansion, shared by both routing directions: turn a pass buffer
/// whose prefix holds `real` gathered input blocks into k payload+metadata
/// cell pairs described by `cells` (occupied, dist).  Materializes backward
/// so no payload is overwritten before it moves to its cell slot; occupied
/// cells keep their payload, everything else stores an empty block.
void expand_cells_backward(std::span<Record> buf, std::uint64_t k, std::uint64_t real,
                           std::size_t B, const BlockBuf& empty,
                           std::span<const std::pair<bool, std::uint64_t>> cells) {
  for (std::uint64_t c = k; c-- > 0;) {
    if (c < real && cells[c].first) {
      if (c > 0)  // cell 0's payload is already in place
        std::copy_backward(buf.begin() + static_cast<std::ptrdiff_t>(c * B),
                           buf.begin() + static_cast<std::ptrdiff_t>((c + 1) * B),
                           buf.begin() + static_cast<std::ptrdiff_t>((2 * c + 1) * B));
    } else {
      std::copy_n(empty.begin(), B, buf.begin() + static_cast<std::ptrdiff_t>(2 * c * B));
    }
    put_meta(buf, c, B, cells[c].first, cells[c].second);
  }
}

/// Copy-out contraction, shared by both routing directions: collapse routed
/// payload+metadata cell pairs into one output block each (occupied cells
/// keep their payload, the rest read empty).  Each output block is a pure
/// function of its own cell pair, so the scan chunks across the compute
/// pool; the copy-in scans stay serial (they carry running state across
/// cells: the empties counter / the prev_target monotonicity check).
ParallelCompute chunked_contract_cells(std::size_t B, BlockBuf empty) {
  return {[B, empty = std::move(empty)](std::uint64_t, std::span<const Record> in,
                                        std::uint64_t first_block,
                                        std::span<Record> out) {
            const std::size_t k = out.size() / B;
            for (std::size_t b = 0; b < k; ++b) {
              const std::size_t cell = static_cast<std::size_t>(first_block) + b;
              const Record meta = in[(2 * cell + 1) * B];
              const bool occupied = meta.key != 0;
              assert(!occupied || meta.value == 0);
              const Record* src = occupied ? in.data() + 2 * cell * B : empty.data();
              std::copy_n(src, B, out.begin() + static_cast<std::ptrdiff_t>(b * B));
            }
          },
          0};
}

}  // namespace

BlockPredFn block_nonempty_pred() {
  return [](std::uint64_t, const BlockBuf& blk) {
    return !blk.empty() && !blk[0].is_empty();
  };
}

TightCompactResult tight_compact_blocks(Client& client, const ExtArray& a,
                                        const BlockPredFn& pred) {
  const std::uint64_t n = a.num_blocks();
  const std::size_t B = client.B();
  TightCompactResult res;
  res.out = client.alloc_blocks(n, Client::Init::kUninit);
  if (n == 0) return res;
  const std::uint64_t n_p2 = next_pow2(n);

  ExtArray w = client.alloc_blocks(2 * n_p2, Client::Init::kUninit);
  const BlockBuf empty = make_empty_block(B);

  // Copy-in scan: label occupied cells with "number of empty cells to my
  // left" (their leftward routing distance); final position = rank.  Each
  // pass expands a chunk of input blocks into payload+metadata cell pairs.
  {
    const std::uint64_t C = scan_chunk_cells(client);
    const std::uint64_t chunks = ceil_div(n_p2, C);
    std::uint64_t empties = 0;
    BlockBuf blk(B);
    run_block_pipeline(
        client, chunks,
        [&](std::uint64_t t, PipelinePass& io) {
          io.read_from = &a;
          io.write_to = &w;
          const std::uint64_t first = t * C;
          const std::uint64_t k = std::min(C, n_p2 - first);
          for (std::uint64_t c = 0; c < k; ++c) {
            if (first + c < n) io.reads.push_back(first + c);
            io.writes.push_back(2 * (first + c));
            io.writes.push_back(2 * (first + c) + 1);
          }
        },
        [&](std::uint64_t t, std::span<Record> buf) {
          const std::uint64_t first = t * C;
          const std::uint64_t k = buf.size() / (2 * B);
          const std::uint64_t real = first < n ? std::min<std::uint64_t>(k, n - first) : 0;
          // Evaluate the predicate forward (the gathered payloads sit in the
          // buffer prefix), recording each cell's occupancy and distance.
          std::vector<std::pair<bool, std::uint64_t>> cells(k);
          for (std::uint64_t c = 0; c < k; ++c) {
            bool occ = false;
            if (c < real) {
              blk.assign(buf.begin() + static_cast<std::ptrdiff_t>(c * B),
                         buf.begin() + static_cast<std::ptrdiff_t>((c + 1) * B));
              occ = pred(first + c, blk);
            }
            cells[c] = {occ, occ ? empties : 0};
            if (!occ) ++empties;
            if (occ) ++res.occupied;
          }
          expand_cells_backward(buf, k, real, B, empty, cells);
        });
  }

  route(client, w, n_p2, /*direction=*/+1);

  // Copy-out scan: occupied cells now form the prefix, in original order.
  {
    const std::uint64_t C = scan_chunk_cells(client);
    const std::uint64_t chunks = ceil_div(n, C);
    run_block_pipeline(
        client, chunks,
        [&](std::uint64_t t, PipelinePass& io) {
          io.read_from = &w;
          io.write_to = &res.out;
          const std::uint64_t first = t * C;
          const std::uint64_t k = std::min(C, n - first);
          for (std::uint64_t c = 0; c < k; ++c) {
            io.reads.push_back(2 * (first + c));
            io.reads.push_back(2 * (first + c) + 1);
          }
          for (std::uint64_t c = 0; c < k; ++c) io.writes.push_back(first + c);
        },
        chunked_contract_cells(B, empty));
  }
  client.release(w);
  return res;
}

ExtArray expand_blocks(Client& client, const ExtArray& a, std::uint64_t count,
                       std::uint64_t out_blocks,
                       const std::function<std::uint64_t(std::uint64_t)>& target) {
  const std::size_t B = client.B();
  ExtArray out = client.alloc_blocks(out_blocks, Client::Init::kUninit);
  if (out_blocks == 0) return out;
  const std::uint64_t n_p2 = next_pow2(out_blocks);
  ExtArray w = client.alloc_blocks(2 * n_p2, Client::Init::kUninit);
  const BlockBuf empty = make_empty_block(B);

  // Copy-in: block i gets rightward distance target(i) - i.
  {
    const std::uint64_t C = scan_chunk_cells(client);
    const std::uint64_t chunks = ceil_div(n_p2, C);
    std::uint64_t prev_target = 0;
    run_block_pipeline(
        client, chunks,
        [&](std::uint64_t t, PipelinePass& io) {
          io.read_from = &a;
          io.write_to = &w;
          const std::uint64_t first = t * C;
          const std::uint64_t k = std::min(C, n_p2 - first);
          for (std::uint64_t c = 0; c < k; ++c) {
            if (first + c < count) io.reads.push_back(first + c);
            io.writes.push_back(2 * (first + c));
            io.writes.push_back(2 * (first + c) + 1);
          }
        },
        [&](std::uint64_t t, std::span<Record> buf) {
          const std::uint64_t first = t * C;
          const std::uint64_t k = buf.size() / (2 * B);
          const std::uint64_t real =
              first < count ? std::min<std::uint64_t>(k, count - first) : 0;
          // Every real cell is occupied; its rightward distance is target-i.
          std::vector<std::pair<bool, std::uint64_t>> cells(k, {false, 0});
          for (std::uint64_t c = 0; c < real; ++c) {
            const std::uint64_t i = first + c;
            const std::uint64_t tgt = target(i);
            assert(tgt >= i && tgt < out_blocks);
            assert(i == 0 || tgt > prev_target);
            prev_target = tgt;
            cells[c] = {true, tgt - i};
          }
          expand_cells_backward(buf, k, real, B, empty, cells);
        });
  }

  route(client, w, n_p2, /*direction=*/-1);

  {
    const std::uint64_t C = scan_chunk_cells(client);
    const std::uint64_t chunks = ceil_div(out_blocks, C);
    run_block_pipeline(
        client, chunks,
        [&](std::uint64_t t, PipelinePass& io) {
          io.read_from = &w;
          io.write_to = &out;
          const std::uint64_t first = t * C;
          const std::uint64_t k = std::min(C, out_blocks - first);
          for (std::uint64_t c = 0; c < k; ++c) {
            io.reads.push_back(2 * (first + c));
            io.reads.push_back(2 * (first + c) + 1);
          }
          for (std::uint64_t c = 0; c < k; ++c) io.writes.push_back(first + c);
        },
        chunked_contract_cells(B, empty));
  }
  client.release(w);
  return out;
}

TightCompactResult tight_compact_by_sort(Client& client, const ExtArray& a,
                                         const BlockPredFn& pred) {
  const std::uint64_t n = a.num_blocks();
  const std::size_t B = client.B();
  TightCompactResult res;
  // Represent each block as a 1-block unit keyed by (distinguished ? index :
  // sentinel); unit-sorting brings distinguished blocks to the front in
  // order.  The key rides in a prepended header block, so units are 2 blocks.
  const std::uint64_t ub = 2;
  ExtArray units = client.alloc_blocks(n * ub, Client::Init::kUninit);
  {
    CacheLease lease(client.cache(), 2 * B);
    BlockBuf blk, hdr(B);
    for (std::uint64_t i = 0; i < n; ++i) {
      client.read_block(a, i, blk);
      const bool dist = pred(i, blk);
      if (dist) ++res.occupied;
      hdr.assign(B, Record{0, 0});
      hdr[0] = {dist ? i : kEmptyKey, 0};
      client.write_block(units, ub * i, hdr);
      client.write_block(units, ub * i + 1, blk);
    }
  }
  sortnet::ext_oblivious_unit_sort(client, units, ub);
  res.out = client.alloc_blocks(n, Client::Init::kUninit);
  {
    CacheLease lease(client.cache(), 2 * B);
    BlockBuf blk, hdr;
    const BlockBuf empty = make_empty_block(B);
    for (std::uint64_t i = 0; i < n; ++i) {
      client.read_block(units, ub * i, hdr);
      client.read_block(units, ub * i + 1, blk);
      client.write_block(res.out, i, hdr[0].key != kEmptyKey ? blk : empty);
    }
  }
  // `units` cannot be released LIFO (res.out was allocated after it); the
  // device records it as discarded and trim() reclaims it later.
  client.release(units);
  return res;
}

std::uint64_t butterfly_predicted_ios(std::uint64_t n_blocks, std::uint64_t m_blocks) {
  if (n_blocks == 0) return 0;
  const std::uint64_t n_p2 = next_pow2(n_blocks);
  const unsigned L = floor_log2(n_p2);
  const unsigned g =
      std::max<unsigned>(1, floor_log2(std::max<std::uint64_t>(2, m_blocks / 8)));
  const unsigned num_super = L == 0 ? 0 : (L + g - 1) / g;
  // copy-in (n reads + 2 n' writes) + per super-level ~2 passes over 2n'
  // blocks read+write + copy-out (2n reads + n writes).
  return n_blocks + 2 * n_p2 + num_super * 8 * n_p2 + 3 * n_blocks;
}

}  // namespace oem::core
