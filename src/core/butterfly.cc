#include "core/butterfly.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

#include "sortnet/external_sort.h"
#include "util/math.h"

namespace oem::core {

namespace {

// Working representation: each network cell occupies two consecutive blocks
// of the scratch array W -- payload (block 2c) and metadata (block 2c+1,
// record 0 = {occupied, remaining distance in cells}).

struct CellSlot {
  bool occupied = false;
  std::uint64_t dist = 0;
  BlockBuf payload;
};

class CellIo {
 public:
  CellIo(Client& c, const ExtArray& w)
      : c_(c), w_(w), empty_(make_empty_block(c.B())) {}

  void read(std::uint64_t cell, CellSlot& slot) {
    c_.read_block(w_, 2 * cell, slot.payload);
    c_.read_block(w_, 2 * cell + 1, meta_);
    slot.occupied = meta_[0].key != 0;
    slot.dist = meta_[0].value;
  }

  void write(std::uint64_t cell, const CellSlot& slot) {
    // Unoccupied slots may have had their payload moved out during routing;
    // either way one payload write + one metadata write happen (trace is the
    // same for both cases).
    c_.write_block(w_, 2 * cell, slot.occupied ? slot.payload : empty_);
    meta_.assign(c_.B(), Record{0, 0});
    meta_[0] = {slot.occupied ? std::uint64_t{1} : std::uint64_t{0}, slot.dist};
    c_.write_block(w_, 2 * cell + 1, meta_);
  }

 private:
  Client& c_;
  const ExtArray& w_;
  BlockBuf meta_;
  const BlockBuf empty_;
};

/// Routes the scratch array W of n_p2 cells through the full butterfly.
/// direction=+1: leftward compaction (levels LSB->MSB).
/// direction=-1: rightward expansion (levels MSB->LSB).
/// Distances are in cells; at (global) level i an occupied cell moves by
/// 0 or 2^i, with Lemma 5 ruling out collisions.
void route(Client& client, const ExtArray& w, std::uint64_t n_p2, int direction) {
  if (n_p2 <= 1) return;
  const unsigned L = floor_log2(n_p2);
  const std::uint64_t m = client.m();
  const unsigned g = std::max<unsigned>(1, floor_log2(std::max<std::uint64_t>(2, m / 8)));
  CellIo io(client, w);

  const unsigned num_super = (L + g - 1) / g;
  for (unsigned st = 0; st < num_super; ++st) {
    // Super-level index in execution order depends on direction.
    const unsigned t = direction > 0 ? st : num_super - 1 - st;
    const unsigned g_t = std::min<unsigned>(g, L - t * g);
    const std::uint64_t s = std::uint64_t{1} << (t * g);  // stride in cells
    const std::uint64_t span = std::uint64_t{1} << g_t;   // max movement, in stride units
    const std::uint64_t len = n_p2 / s;                   // virtual subarray length

    std::uint64_t win = std::min<std::uint64_t>(len, 2 * span);
    if (win <= span && win < len) win = span + 1;  // ensure forward progress

    for (std::uint64_t rho = 0; rho < s; ++rho) {
      // Sliding-window sweep over the virtual array V[q] = cell rho + q*s.
      // Compaction sweeps left-to-right (receivers are to the left of
      // senders); expansion sweeps right-to-left.
      std::vector<CellSlot> cur(win), nxt(win);
      CacheLease lease(client.cache(), 2 * win * (client.B() + 1));

      std::uint64_t a0 = direction > 0 ? 0 : len - win;
      for (;;) {
        for (std::uint64_t q = 0; q < win; ++q) io.read(rho + (a0 + q) * s, cur[q]);

        for (unsigned l = 0; l < g_t; ++l) {
          const std::uint64_t step_cells = s << l;
          for (auto& slot : nxt) {
            slot.occupied = false;
            slot.dist = 0;
          }
          for (std::uint64_t q = 0; q < win; ++q) {
            if (!cur[q].occupied) continue;
            std::uint64_t delta;
            if (direction > 0) {
              delta = cur[q].dist % (step_cells << 1);  // 0 or 2^i (Lemma 5 invariant)
            } else {
              delta = cur[q].dist & step_cells;  // bit i of the total displacement
            }
            assert(delta == 0 || delta == step_cells);
            const std::uint64_t move = delta / s;
            const std::uint64_t q_new =
                direction > 0 ? q - move : q + move;  // underflow caught below
            if (q_new >= win) {
              // Lemma 5 + window invariants make this unreachable; if it
              // trips, it is an implementation bug, not bad luck.
              throw std::logic_error("butterfly: cell routed outside window");
            }
            if (nxt[q_new].occupied)
              throw std::logic_error("butterfly: collision (violates Lemma 5)");
            nxt[q_new].occupied = true;
            nxt[q_new].dist = cur[q].dist - delta;
            nxt[q_new].payload = std::move(cur[q].payload);
          }
          std::swap(cur, nxt);
        }

        for (std::uint64_t q = 0; q < win; ++q) io.write(rho + (a0 + q) * s, cur[q]);

        if (win >= len) break;
        if (direction > 0) {
          if (a0 + win >= len) break;
          a0 = std::min(a0 + (win - span), len - win);
        } else {
          if (a0 == 0) break;
          a0 = a0 > (win - span) ? a0 - (win - span) : 0;
        }
      }
    }
  }
}

}  // namespace

BlockPredFn block_nonempty_pred() {
  return [](std::uint64_t, const BlockBuf& blk) {
    return !blk.empty() && !blk[0].is_empty();
  };
}

TightCompactResult tight_compact_blocks(Client& client, const ExtArray& a,
                                        const BlockPredFn& pred) {
  const std::uint64_t n = a.num_blocks();
  TightCompactResult res;
  res.out = client.alloc_blocks(n, Client::Init::kUninit);
  if (n == 0) return res;
  const std::uint64_t n_p2 = next_pow2(n);

  ExtArray w = client.alloc_blocks(2 * n_p2, Client::Init::kUninit);
  CellIo io(client, w);

  // Copy-in scan: label occupied cells with "number of empty cells to my
  // left" (their leftward routing distance); final position = rank.
  {
    CacheLease lease(client.cache(), 2 * client.B() + 2);
    CellSlot slot;
    std::uint64_t empties = 0;
    for (std::uint64_t i = 0; i < n_p2; ++i) {
      if (i < n) {
        client.read_block(a, i, slot.payload);
        slot.occupied = pred(i, slot.payload);
      } else {
        slot.payload = make_empty_block(client.B());
        slot.occupied = false;
      }
      slot.dist = slot.occupied ? empties : 0;
      if (!slot.occupied) ++empties;
      if (slot.occupied) ++res.occupied;
      io.write(i, slot);
    }
  }

  route(client, w, n_p2, /*direction=*/+1);

  // Copy-out scan: occupied cells now form the prefix, in original order.
  {
    CacheLease lease(client.cache(), 2 * client.B() + 2);
    CellSlot slot;
    const BlockBuf empty = make_empty_block(client.B());
    for (std::uint64_t i = 0; i < n; ++i) {
      io.read(i, slot);
      assert(!slot.occupied || slot.dist == 0);
      client.write_block(res.out, i, slot.occupied ? slot.payload : empty);
    }
  }
  client.release(w);
  return res;
}

ExtArray expand_blocks(Client& client, const ExtArray& a, std::uint64_t count,
                       std::uint64_t out_blocks,
                       const std::function<std::uint64_t(std::uint64_t)>& target) {
  ExtArray out = client.alloc_blocks(out_blocks, Client::Init::kUninit);
  if (out_blocks == 0) return out;
  const std::uint64_t n_p2 = next_pow2(out_blocks);
  ExtArray w = client.alloc_blocks(2 * n_p2, Client::Init::kUninit);
  CellIo io(client, w);

  // Copy-in: block i gets rightward distance target(i) - i.
  {
    CacheLease lease(client.cache(), 2 * client.B() + 2);
    CellSlot slot;
    std::uint64_t prev_target = 0;
    for (std::uint64_t i = 0; i < n_p2; ++i) {
      if (i < count) {
        client.read_block(a, i, slot.payload);
        const std::uint64_t t = target(i);
        assert(t >= i && t < out_blocks);
        assert(i == 0 || t > prev_target);
        prev_target = t;
        slot.occupied = true;
        slot.dist = t - i;
      } else {
        slot.payload = make_empty_block(client.B());
        slot.occupied = false;
        slot.dist = 0;
      }
      io.write(i, slot);
    }
  }

  route(client, w, n_p2, /*direction=*/-1);

  {
    CacheLease lease(client.cache(), 2 * client.B() + 2);
    CellSlot slot;
    const BlockBuf empty = make_empty_block(client.B());
    for (std::uint64_t i = 0; i < out_blocks; ++i) {
      io.read(i, slot);
      assert(!slot.occupied || slot.dist == 0);
      client.write_block(out, i, slot.occupied ? slot.payload : empty);
    }
  }
  client.release(w);
  return out;
}

TightCompactResult tight_compact_by_sort(Client& client, const ExtArray& a,
                                         const BlockPredFn& pred) {
  const std::uint64_t n = a.num_blocks();
  const std::size_t B = client.B();
  TightCompactResult res;
  // Represent each block as a 1-block unit keyed by (distinguished ? index :
  // sentinel); unit-sorting brings distinguished blocks to the front in
  // order.  The key rides in a prepended header block, so units are 2 blocks.
  const std::uint64_t ub = 2;
  ExtArray units = client.alloc_blocks(n * ub, Client::Init::kUninit);
  {
    CacheLease lease(client.cache(), 2 * B);
    BlockBuf blk, hdr(B);
    for (std::uint64_t i = 0; i < n; ++i) {
      client.read_block(a, i, blk);
      const bool dist = pred(i, blk);
      if (dist) ++res.occupied;
      hdr.assign(B, Record{0, 0});
      hdr[0] = {dist ? i : kEmptyKey, 0};
      client.write_block(units, ub * i, hdr);
      client.write_block(units, ub * i + 1, blk);
    }
  }
  sortnet::ext_oblivious_unit_sort(client, units, ub);
  res.out = client.alloc_blocks(n, Client::Init::kUninit);
  {
    CacheLease lease(client.cache(), 2 * B);
    BlockBuf blk, hdr;
    const BlockBuf empty = make_empty_block(B);
    for (std::uint64_t i = 0; i < n; ++i) {
      client.read_block(units, ub * i, hdr);
      client.read_block(units, ub * i + 1, blk);
      client.write_block(res.out, i, hdr[0].key != kEmptyKey ? blk : empty);
    }
  }
  // `units` cannot be released LIFO (res.out was allocated after it); the
  // arena reclaims it with the client.
  return res;
}

std::uint64_t butterfly_predicted_ios(std::uint64_t n_blocks, std::uint64_t m_blocks) {
  if (n_blocks == 0) return 0;
  const std::uint64_t n_p2 = next_pow2(n_blocks);
  const unsigned L = floor_log2(n_p2);
  const unsigned g =
      std::max<unsigned>(1, floor_log2(std::max<std::uint64_t>(2, m_blocks / 8)));
  const unsigned num_super = L == 0 ? 0 : (L + g - 1) / g;
  // copy-in (n reads + 2 n' writes) + per super-level ~2 passes over 2n'
  // blocks read+write + copy-out (2n reads + n writes).
  return n_blocks + 2 * n_p2 + num_super * 8 * n_p2 + 3 * n_blocks;
}

}  // namespace oem::core
