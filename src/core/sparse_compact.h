// Tight order-preserving compaction for sparse arrays -- Theorem 4.
//
// Given an array of n blocks with at most r distinguished blocks, produce an
// array of exactly r blocks holding the distinguished blocks in their
// original relative order.  The heavy lifting is the oblivious IBLT: a
// single pass inserts (i, A[i]) for distinguished blocks and merely
// re-encrypts the same cells for the others, then the table (size O(r)) is
// decoded obliviously and the entries are emitted sorted by original index.
//
// Cost: O(n) I/Os for the insertion pass plus polylog(r)-factor work on
// O(r)-size arrays for the decode -- the paper's O(n + r log^2 r).  For tiny
// capacities, where an IBLT is statistically meaningless, we fall back to
// the deterministic butterfly compaction (Theorem 6), chosen by public
// parameters only so the trace stays data-independent.
//
// Randomized: succeeds with probability 1 - 1/r^c (Lemma 1); failure is
// reported, never silent, and the trace is the same either way.
#pragma once

#include <cstdint>

#include "core/butterfly.h"
#include "extmem/client.h"
#include "iblt/oblivious_iblt.h"
#include "util/status.h"

namespace oem::core {

struct SparseCompactOptions {
  iblt::ObliviousIbltOptions iblt;
  /// Capacities at or below this use the deterministic butterfly fallback.
  std::uint64_t min_iblt_capacity = 8;
  /// Pick IBLT vs butterfly by the public cost model below (recommended).
  /// When false, the IBLT path is used whenever the capacity allows it
  /// (the paper's asymptotic regime, useful for the E2 bench).
  bool cost_aware = true;
};

/// Public-parameter cost estimates (block I/Os) for the two compaction
/// strategies; sparse_compact_blocks picks the cheaper one when cost_aware.
/// Exposed so tests can pin the model and the benches can report it.
std::uint64_t sparse_compact_iblt_cost(std::uint64_t n_blocks, std::uint64_t r_capacity,
                                       std::size_t B, std::uint64_t M,
                                       const SparseCompactOptions& opts);
std::uint64_t sparse_compact_butterfly_cost(std::uint64_t n_blocks,
                                            std::uint64_t m_blocks);

struct SparseCompactResult {
  ExtArray out;                   // exactly r_capacity blocks
  std::uint64_t distinguished = 0;  // private count observed during the pass
  Status status;
};

/// Theorem 4 at block granularity.  `r_capacity` must upper-bound the number
/// of distinguished blocks (a public parameter); exceeding it is a reported
/// failure.  `seed` drives the IBLT hash family (data-independent).
SparseCompactResult sparse_compact_blocks(Client& client, const ExtArray& a,
                                          std::uint64_t r_capacity,
                                          const BlockPredFn& pred, std::uint64_t seed,
                                          const SparseCompactOptions& opts = {});

}  // namespace oem::core
