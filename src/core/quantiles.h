// Data-oblivious quantile selection -- Theorem 17.
//
// Select the q quantiles of an N-record array (records at ranks
// round(j*N/(q+1)), j = 1..q) in O(N/B) I/Os for q <= (M/B)^{1/4},
// succeeding w.h.p.  This is the splitter-finding step of the Theorem 21
// sort.
//
// Dense case ((M/B)^4 > N/B): one deterministic oblivious sort of a scratch
// copy + a rank-capturing scan.
//
// Sparse case (the paper's main path):
//   1. Bernoulli(N^{-1/4}) sample -> consolidate -> Theorem-4 compact into C
//      of N^{3/4} + slack records -> oblivious sort (Lemma 14 bounds |C|);
//   2. from C pick interval endpoints [x_j, y_j] around each target sample
//      rank (x_1 = -inf, y_q = +inf); each interval w.h.p. contains the j-th
//      quantile (Lemma 16) and covers <= 8 N^{3/4} records of A (Lemma 15);
//   3. one scan of A tags each record with its (first matching) interval and
//      privately counts, per interval, the records below x_j and inside
//      [x_j, y_j]; tagged shadow records (key = interval, value = sort key)
//      are consolidated and Theorem-4 compacted into D;
//   4. D is obliviously sorted by (interval, key); since all per-interval
//      counts are private, the j-th quantile sits at a privately computable
//      global rank of D, and one final scan captures all q of them.
// Step 4 replaces the paper's per-interval padded subarray + per-subarray
// selection with a single sorted-D scan -- same O(|D| polylog) budget,
// identical information flow (all branching on private counters), simpler.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sparse_compact.h"
#include "extmem/client.h"
#include "util/status.h"

namespace oem::core {

struct QuantilesOptions {
  double interval_factor = 8.0;  // per-interval capacity: factor * N^{3/4}
  double sample_slack = 2.0;     // C capacity: N^{3/4} + slack * N^{1/2}
  /// Paper mode uses the N^{1/2} rank slack and 8 N^{3/4} intervals of
  /// Lemmas 14-16, whose constants exceed N at laboratory sizes (the
  /// intervals then cover the whole array).  paper_intervals = false uses
  /// the Chernoff-tight c*sqrt(N p) slack and (2*slack+4)/p interval
  /// capacity instead -- same algorithm and trace structure, sized so the
  /// paper's linear-I/O shape is visible at benchmarkable N.
  bool paper_intervals = true;
  double chernoff_c = 4.0;
  /// Skip the dense-regime shortcut ((M/B)^4 > N/B => Lemma 2 sort) and run
  /// the sampling pipeline regardless.  The shortcut is the paper's own
  /// rule and stays on by default; benches force the sparse path to measure
  /// its shape inside the dense regime.
  bool force_sparse = false;
  SparseCompactOptions sparse;
  std::uint64_t base_case_records = 0;  // 0 = auto (M / 2)
  /// Number of non-empty records in `a` (for padded arrays).  0 means "all
  /// num_records() records are real".  This only steers Alice's *private*
  /// rank arithmetic -- the access trace is identical for any value -- so a
  /// privately known count is safe to pass.
  std::uint64_t real_records = 0;
};

struct QuantilesResult {
  std::vector<Record> quantiles;  // size q on success
  Status status;
};

/// Theorem 17.  Requires 1 <= q and q+1 <= N; the paper's regime is
/// q <= (M/B)^{1/4} (larger q still works here but loses the O(N/B) bound
/// because D grows).  All N records of `a` must be non-empty.
QuantilesResult oblivious_quantiles(Client& client, const ExtArray& a, std::uint64_t q,
                                    std::uint64_t seed,
                                    const QuantilesOptions& opts = {});

/// The target global ranks round(j*N/(q+1)), j = 1..q (shared with tests).
std::vector<std::uint64_t> quantile_ranks(std::uint64_t N, std::uint64_t q);

}  // namespace oem::core
