#include "core/sparse_compact.h"

#include <algorithm>

#include "sortnet/external_sort.h"
#include "util/math.h"

namespace oem::core {

namespace {

std::uint64_t iblt_cells(std::uint64_t r_capacity, const SparseCompactOptions& opts) {
  return static_cast<std::uint64_t>(opts.iblt.iblt.cells_per_item *
                                    static_cast<double>(std::max<std::uint64_t>(1, r_capacity))) +
         opts.iblt.iblt.k;
}

}  // namespace

std::uint64_t sparse_compact_iblt_cost(std::uint64_t n_blocks, std::uint64_t r_capacity,
                                       std::size_t B, std::uint64_t M,
                                       const SparseCompactOptions& opts) {
  const std::uint64_t cells = iblt_cells(r_capacity, opts);
  const unsigned k = opts.iblt.iblt.k;
  // Build pass: per input block, 1 read + k * (meta RMW (~3) + payload 2).
  std::uint64_t cost = n_blocks * (1 + 5ull * k);
  cost += 2 * (cells + ceil_div(2 * cells, B));  // table zero-init

  const std::uint64_t table_records = cells * (2 + B);
  if (!opts.iblt.force_external_decode && table_records + 2 * B <= M) {
    cost += cells + ceil_div(2 * cells, B) + r_capacity;  // scan in + out
    return cost;
  }
  // External oblivious peeling: per round, several scans + two unit sorts of
  // (1+k)*cells units, plus the final staged extraction.
  const std::uint64_t ub = ceil_div(B + 2, B);
  const std::uint64_t rounds =
      opts.iblt.decode_rounds != 0
          ? opts.iblt.decode_rounds
          : static_cast<std::uint64_t>(ceil_log2(r_capacity + 2)) + 4;
  const std::uint64_t comb_blocks = (1 + k) * cells * ub;
  const std::uint64_t m_blocks = std::max<std::uint64_t>(2, M / B);
  const std::uint64_t sort_cost = sortnet::ext_sort_predicted_ios(comb_blocks, m_blocks);
  const std::uint64_t cand_sort = sortnet::ext_sort_predicted_ios(cells * ub, m_blocks);
  const std::uint64_t per_round = 2 * sort_cost + 2 * cand_sort + 12 * cells * ub;
  const std::uint64_t stage_sort =
      sortnet::ext_sort_predicted_ios(rounds * cells * ub, m_blocks);
  cost += rounds * per_round + 2 * stage_sort + rounds * cells * ub + r_capacity;
  return cost;
}

std::uint64_t sparse_compact_butterfly_cost(std::uint64_t n_blocks,
                                            std::uint64_t m_blocks) {
  return butterfly_predicted_ios(n_blocks, m_blocks) + n_blocks;
}

SparseCompactResult sparse_compact_blocks(Client& client, const ExtArray& a,
                                          std::uint64_t r_capacity,
                                          const BlockPredFn& pred, std::uint64_t seed,
                                          const SparseCompactOptions& opts) {
  SparseCompactResult res;
  const std::uint64_t n = a.num_blocks();
  r_capacity = std::max<std::uint64_t>(1, r_capacity);

  // Strategy choice on public parameters only: tiny capacities and
  // not-actually-sparse inputs always go deterministic; otherwise the cost
  // model picks (the IBLT path wins asymptotically -- Theorem 4's regime --
  // while the Theorem 6 butterfly often wins at laboratory sizes).
  const std::uint64_t cells = iblt_cells(r_capacity, opts);
  bool use_butterfly = r_capacity <= opts.min_iblt_capacity || cells >= n;
  if (!use_butterfly && opts.cost_aware) {
    use_butterfly =
        sparse_compact_butterfly_cost(n, client.m()) <
        sparse_compact_iblt_cost(n, r_capacity, client.B(), client.M(), opts);
  }

  if (use_butterfly) {
    TightCompactResult tight = tight_compact_blocks(client, a, pred);
    res.distinguished = tight.occupied;
    res.out = client.alloc_blocks(r_capacity, Client::Init::kUninit);
    BlockBuf buf;
    CacheLease lease(client.cache(), client.B());
    const BlockBuf empty = make_empty_block(client.B());
    for (std::uint64_t i = 0; i < r_capacity; ++i) {
      if (i < tight.out.num_blocks()) {
        client.read_block(tight.out, i, buf);
        client.write_block(res.out, i, buf);
      } else {
        client.write_block(res.out, i, empty);
      }
    }
    res.status = tight.occupied <= r_capacity
                     ? Status::Ok()
                     : Status::WhpFailure("distinguished blocks exceed capacity");
    return res;
  }

  iblt::ObliviousBlockIblt table(client, r_capacity, opts.iblt, seed);
  std::uint64_t seen = 0;
  table.build(a, [&](std::uint64_t i, const BlockBuf& blk) {
    const bool d = pred(i, blk);
    if (d) ++seen;
    return d;
  });
  res.distinguished = seen;
  res.out = client.alloc(r_capacity * client.B(), Client::Init::kUninit);
  res.status = table.extract(res.out);
  if (res.status.ok() && seen > r_capacity) {
    res.status = Status::WhpFailure("distinguished blocks exceed capacity");
  }
  return res;
}

}  // namespace oem::core
