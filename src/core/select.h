// Data-oblivious selection -- Theorems 12 and 13.
//
// Find the k-th smallest record of an N-record array in O(N/B) I/Os,
// succeeding w.h.p.  The algorithm demonstrates the paper's headline point
// that copying/summation/random-hash primitives beat the Omega(n log log n)
// lower bound for compare-exchange-only selection networks (Leighton et al.):
//
//   1. mark each record distinguished with probability N^{-1/2} (coins,
//      data-independent); consolidate (Lemma 3) + Theorem-4-compact the
//      sample into C of sqrt(N)+N^{3/8} records and sort it (Lemma 2 on a
//      tiny array);
//   2. read the sample ranks k/sqrt(N) -+ N^{3/8} to get a bracketing range
//      [x, y] that w.h.p. contains the k-th element and covers at most
//      8 N^{7/8} records of A (Lemmas 10-11);
//   3. one scan counts |{a < x}| and marks the in-band records, which are
//      compacted (Theorem 4 again) into D of 8 N^{7/8} records, sorted, and
//      scanned to emit the record of rank k - |{a < x}|.
//
// Every phase is a scan, a Theorem-4 compaction, or a small oblivious sort;
// the trace depends only on (N, M, B, seed).  Total order for ranks is
// (key, value) -- RecordLess -- so duplicate keys are handled exactly.
#pragma once

#include <cstdint>

#include "core/sparse_compact.h"
#include "extmem/client.h"
#include "util/status.h"

namespace oem::core {

struct SelectOptions {
  /// Band capacity factor: D holds band_factor * N^{7/8} records (paper: 8).
  double band_factor = 8.0;
  /// Sample slack: capacity = N^{1-e} + slack * rank_slack (paper: 1).
  double sample_slack = 2.0;
  /// Sampling probability p = N^{-sample_exponent} (paper: 1/2).
  double sample_exponent = 0.5;
  /// Paper mode uses the N^{3/8} rank slack and 8 N^{7/8} band of Lemmas
  /// 10-11 -- asymptotically linear, but at laboratory N those constants
  /// exceed N itself and the band degenerates to the whole array.  With
  /// paper_band = false the slack is the Chernoff-tight c*sqrt(N p) and the
  /// band is (2*slack+4)/p records, which realizes the paper's *shape*
  /// (linear I/O) at benchmarkable sizes.  Same algorithm, same trace
  /// structure, same failure reporting.
  bool paper_band = true;
  double chernoff_c = 4.0;
  SparseCompactOptions sparse;
  /// Inputs of at most this many records are selected with one private scan.
  std::uint64_t base_case_records = 0;  // 0 = auto (M / 2)
};

/// Practical parameterization used by the shape benchmarks (see paper_band).
inline SelectOptions practical_select_options() {
  SelectOptions o;
  o.paper_band = false;
  o.sample_exponent = 0.25;
  return o;
}

struct SelectResult {
  Record value;
  Status status;
};

/// Theorem 13: k is a 1-based rank in [1, N]; all N records of `a` must be
/// non-empty.  Trace depends only on public parameters and the seed.
SelectResult oblivious_select(Client& client, const ExtArray& a, std::uint64_t k,
                              std::uint64_t seed, const SelectOptions& opts = {});

}  // namespace oem::core
