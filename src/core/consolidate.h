// Data consolidation -- Lemma 3 of the paper.
//
// Input: an array A of n blocks whose records may be "distinguished"
// (decided by a private predicate).  Output: an array A' of n+1 blocks such
// that every block is either completely full of distinguished records,
// completely empty, or the single final partial block -- with the relative
// order of distinguished records preserved.
//
// The access pattern is a single scan of A and A' (read A[i], write A'[i],
// final flush), so the trace depends only on n: deterministic and oblivious.
// Cost: exactly n reads + (n+1) writes.
//
// This is the preprocessing step of every compaction algorithm in the paper;
// it lets the randomized compaction machinery work at block granularity.
#pragma once

#include <cstdint>
#include <functional>

#include "extmem/client.h"

namespace oem::core {

/// Predicate over records, evaluated privately.  May be stateful (e.g., a
/// Bernoulli sampler for Theorem 12's random marking); it is invoked exactly
/// once per record in scan order, for every record, so a randomized
/// predicate consumes coins in a data-independent pattern.
using RecordPred = std::function<bool(std::uint64_t record_index, const Record& r)>;

/// Marks a record distinguished iff it is non-empty.
RecordPred nonempty_pred();

struct ConsolidateResult {
  ExtArray out;                      // n+1 blocks
  std::uint64_t distinguished = 0;   // total marked records (Alice's private count)
  std::uint64_t full_blocks = 0;     // completely full output blocks
};

/// Lemma 3.  The result's `distinguished` / `full_blocks` counts live in
/// Alice's private memory; Bob sees only the scan.
ConsolidateResult consolidate(Client& client, const ExtArray& a, const RecordPred& pred);

/// Block-level predicate for consolidated arrays: a block is distinguished
/// iff it holds at least one (equivalently: its first) non-empty record.
bool consolidated_block_distinguished(const BlockBuf& blk);

}  // namespace oem::core
