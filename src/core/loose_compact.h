// Loose compaction -- Theorem 8.
//
// Given an array of n blocks of which at most r < n/4 are distinguished,
// map the distinguished blocks into an array of 5r blocks using O(n) I/Os,
// succeeding w.h.p.  Not order-preserving (the paper's loose compaction is
// unordered); it is the workhorse of the Theorem 21 sort, which re-tightens
// each color array after the shuffle-and-deal distribution.
//
// Pipeline (paper §3 "Loose Compaction"):
//   1. normalize: copy input so distinguished <=> non-empty block;
//   2. c0 rounds of A-to-C thinning passes into C of 4r cells: per cell a
//      uniformly random C slot is probed and the block moves there iff the
//      slot is free -- 4 I/Os per cell regardless of outcome;
//   3. region halving: survivors are, w.h.p., sparse (Lemma 7), so each
//      region of c1*log(n) blocks is sorted privately (it fits in cache by
//      the wide-block + tall-cache assumptions) and compacted to its first
//      half; the array halves and step 2 repeats;
//   4. once at most n/log^2(n) blocks remain, a final deterministic
//      oblivious sort compacts the survivors to r blocks, which are
//      concatenated after C.
//
// The trace depends only on (n, r, m, coins): data-oblivious.  An
// overcrowded region (probability <= (N/B)^{-c1}, Lemma 7) or survivor
// overflow is reported via Status; the trace is identical either way.
#pragma once

#include <cstdint>

#include "core/butterfly.h"
#include "extmem/client.h"
#include "util/status.h"

namespace oem::core {

struct LooseCompactOptions {
  unsigned thinning_rounds = 3;   // c0: passes per halving iteration
  double region_log_factor = 4.0; // c1: region length = c1 * log2(n) blocks
  /// Stop halving when at most this many blocks remain (on top of the
  /// n/log^2(n) rule); the tail is finished with the deterministic sort.
  std::uint64_t min_tail_blocks = 16;
};

struct LooseCompactResult {
  ExtArray out;                    // exactly 5*r_capacity blocks
  std::uint64_t distinguished = 0; // private count
  Status status;
};

/// Theorem 8 at block granularity.  Requires r_capacity <= n/4 (checked);
/// blocks must be "front-packed" (a non-empty block has a non-empty first
/// record), which all producers in this library maintain.
LooseCompactResult loose_compact_blocks(Client& client, const ExtArray& a,
                                        std::uint64_t r_capacity,
                                        const BlockPredFn& pred, std::uint64_t seed,
                                        const LooseCompactOptions& opts = {});

}  // namespace oem::core
