// Multi-way data consolidation + "shuffle-and-deal" distribution -- the
// distribution machinery of the Theorem 21 sort (paper §5).
//
// * multiway_consolidate: scan groups of (q+1) blocks, bucketing records by
//   color privately; each group emits exactly q+1 output blocks (full
//   monochromatic blocks, padded with empties) so the emission pattern is
//   data-independent; a fixed-size tail flushes the leftovers.  Alice's
//   buffer stays below ~3(q+1) blocks (pigeonhole on the emission quota).
//
// * shuffle_blocks: Knuth/Fisher-Yates shuffle of the blocks.  Bob watches
//   every swap, but the swap indices are coins -- the "shuffle" half of the
//   paper's Valiant-Brebner-style trick, which breaks up color hot spots.
//
// * deal: read the shuffled array in batches of ~(M/B)^{3/4} blocks; per
//   batch write exactly `quota` block slots to every color array (real
//   blocks first, empty padding after).  Lemma 18 / Corollary 19: w.h.p. no
//   batch holds more than the quota of any one color, so nothing is dropped.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "extmem/client.h"
#include "rng/random.h"
#include "util/status.h"

namespace oem::core {

/// Color classifier over records, evaluated privately; must return a value
/// in [0, num_colors) for non-empty records.  May be randomized (the sort
/// uses coin tie-breaking between equal-key records).
using ColorFn = std::function<unsigned(const Record&)>;

struct MultiwayResult {
  ExtArray out;  // groups*(q+1) + 4*(q+1) blocks, monochromatic full/empty
  std::vector<std::uint64_t> color_records;  // per-color record counts (private)
  Status status;
};

/// (q+1)-way consolidation of `a`.  Every non-empty output block is full of
/// same-colored records except the fixed tail region, which holds one
/// partial block per color.
MultiwayResult multiway_consolidate(Client& client, const ExtArray& a,
                                    unsigned num_colors, const ColorFn& color_of);

/// In-place Fisher-Yates shuffle of all blocks of `a` (4 I/Os per step; swap
/// indices are data-independent coins).
void shuffle_blocks(Client& client, const ExtArray& a, rng::Xoshiro& coins);

struct DealOptions {
  /// Batch size in blocks; 0 = auto: clamp((M/B)^{3/4}, colors, M/B / 2).
  std::uint64_t batch_blocks = 0;
  /// Per-batch per-color slot quota; 0 = auto: mean + 4*sqrt(mean) + 4,
  /// the practical form of Lemma 18's c*(M/B)^{1/2}.
  std::uint64_t quota = 0;
};

struct DealResult {
  std::vector<ExtArray> colors;  // one array per color, batches*quota blocks
  std::uint64_t batch_blocks = 0;
  std::uint64_t quota = 0;
  std::uint64_t overflow_drops = 0;  // blocks dropped by quota overflow (whp 0)
  Status status;
};

/// The "deal": distribute the (shuffled, monochromatic) blocks of `a` to
/// per-color arrays with padded per-batch writes.
DealResult deal_blocks(Client& client, const ExtArray& a, unsigned num_colors,
                       const ColorFn& color_of, const DealOptions& opts = {});

}  // namespace oem::core
