#include "core/loose_compact.h"

#include <algorithm>
#include <cmath>

#include "extmem/pipeline.h"
#include "sortnet/external_sort.h"
#include "util/math.h"

namespace oem::core {

LooseCompactResult loose_compact_blocks(Client& client, const ExtArray& a,
                                        std::uint64_t r_capacity,
                                        const BlockPredFn& pred, std::uint64_t seed,
                                        const LooseCompactOptions& opts) {
  LooseCompactResult res;
  const std::uint64_t n0 = a.num_blocks();
  const std::size_t B = client.B();
  const std::uint64_t W = std::max<std::uint64_t>(1, client.io_batch_blocks());
  r_capacity = std::max<std::uint64_t>(1, r_capacity);
  if (r_capacity * 4 > n0) {
    res.status = Status::InvalidArgument("loose compaction requires R < N/4");
    res.out = client.alloc_blocks(5 * r_capacity);
    return res;
  }
  rng::Xoshiro coins(seed ^ 0x10053c0a3ac7ULL);

  // One thinning pass from `src` (its first `src_len` blocks) into the first
  // `dst_cells` cells of `dst`, as a pipeline of mixed-array steps: step i
  // gathers (src[i], dst[j]) and scatters (dst[j], src[i]); j is a
  // data-independent coin drawn in the describe stage, so the coin sequence
  // (hence the trace) is exactly the per-block loop's.  Per-step cost stays
  // 2 reads + 2 writes.
  auto thinning_pass = [&](const ExtArray& src, std::uint64_t src_len,
                           const ExtArray& dst, std::uint64_t dst_cells) {
    run_block_pipeline(
        client, src_len,
        [&](std::uint64_t i, PipelinePass& io) {
          const std::uint64_t j = coins.below(dst_cells);
          io.read(src, i);
          io.read(dst, j);
          io.write(dst, j);
          io.write(src, i);
        },
        [&](std::uint64_t, std::span<Record> buf) {
          // Entry: buf = [blk, slot]; scatter order is [dst, src], so the
          // first block becomes the collector cell and the second the source.
          auto blk = buf.subspan(0, B);
          auto slot = buf.subspan(B, B);
          const bool move = !blk[0].is_empty() && slot[0].is_empty();
          if (move) {
            std::fill(slot.begin(), slot.end(), Record{});  // source cell empties
          } else {
            std::swap_ranges(blk.begin(), blk.end(), slot.begin());  // both keep
          }
        });
  };

  // 1. Normalize: distinguished blocks keep their content, everything else
  // becomes an explicitly empty block.  One pipelined scan.
  ExtArray cur = client.alloc_blocks(n0, Client::Init::kUninit);
  {
    BlockBuf scratch(B);
    run_block_pipeline(
        client, n0 == 0 ? 0 : ceil_div(n0, W),
        [&](std::uint64_t t, PipelinePass& io) {
          io.read_from = &a;
          io.write_to = &cur;
          const std::uint64_t first = t * W;
          const std::uint64_t k = std::min(W, n0 - first);
          for (std::uint64_t j = 0; j < k; ++j) {
            io.reads.push_back(first + j);
            io.writes.push_back(first + j);
          }
        },
        [&](std::uint64_t t, std::span<Record> buf) {
          const std::uint64_t first = t * W;
          const std::uint64_t k = buf.size() / B;
          for (std::uint64_t j = 0; j < k; ++j) {
            const auto blk = buf.subspan(j * B, B);
            scratch.assign(blk.begin(), blk.end());
            if (pred(first + j, scratch)) {
              ++res.distinguished;
            } else {
              std::fill(blk.begin(), blk.end(), Record{});
            }
          }
        });
  }
  res.status = res.distinguished <= r_capacity
                   ? Status::Ok()
                   : Status::WhpFailure("more distinguished blocks than capacity");

  // 2. The collector C of 4r cells (paying the counted initialization).
  const std::uint64_t c_cells = 4 * r_capacity;
  ExtArray c_arr = client.alloc_blocks(c_cells, Client::Init::kEmpty);

  const std::uint64_t m = client.m();
  const std::uint64_t log_n = std::max<std::uint64_t>(1, ceil_log2(n0 + 2));
  const std::uint64_t tail_threshold =
      std::max<std::uint64_t>(opts.min_tail_blocks,
                              n0 / std::max<std::uint64_t>(1, log_n * log_n));

  std::uint64_t n_cur = n0;

  while (n_cur > tail_threshold) {
    // 2a. c0 thinning passes: trace is (R cur[i], R C[j], W C[j], W cur[i])
    // for every i; j is a data-independent coin.
    for (unsigned pass = 0; pass < opts.thinning_rounds; ++pass)
      thinning_pass(cur, n_cur, c_arr, c_cells);

    // 2b. Region halving: survivors are sparse w.h.p. (Lemma 7).
    // Region must fit in cache alongside the scan buffers (hence m - 2).
    const std::uint64_t region_cache = m > 4 ? m - 2 : m;
    const std::uint64_t region_len = std::min<std::uint64_t>(
        {n_cur, region_cache,
         std::max<std::uint64_t>(
             2, static_cast<std::uint64_t>(opts.region_log_factor *
                                           static_cast<double>(log_n)))});
    const std::uint64_t half = (region_len + 1) / 2;
    const std::uint64_t regions = ceil_div(n_cur, region_len);
    ExtArray next = client.alloc_blocks(regions * half, Client::Init::kUninit);
    // One pass per region: gather the region, privately compact the survivor
    // blocks to the front, scatter the halved region.
    run_block_pipeline(
        client, regions,
        [&](std::uint64_t g, PipelinePass& io) {
          io.read_from = &cur;
          io.write_to = &next;
          const std::uint64_t base = g * region_len;
          const std::uint64_t len = std::min(region_len, n_cur - base);
          for (std::uint64_t b = 0; b < len; ++b) io.reads.push_back(base + b);
          for (std::uint64_t b = 0; b < half; ++b) io.writes.push_back(g * half + b);
        },
        [&](std::uint64_t g, std::span<Record> buf) {
          const std::uint64_t base = g * region_len;
          const std::uint64_t len = std::min(region_len, n_cur - base);
          std::uint64_t kept = 0;
          for (std::uint64_t b = 0; b < len; ++b) {
            if (buf[b * B].is_empty()) continue;
            if (kept == half) {
              // Overcrowded region (Lemma 7 tail event): blocks beyond `half`
              // are lost; flag it, keep the trace unchanged.
              res.status.Update(
                  Status::WhpFailure("overcrowded region in halving step"));
              break;
            }
            if (kept != b)
              std::copy(buf.begin() + static_cast<std::ptrdiff_t>(b * B),
                        buf.begin() + static_cast<std::ptrdiff_t>((b + 1) * B),
                        buf.begin() + static_cast<std::ptrdiff_t>(kept * B));
            ++kept;
          }
          std::fill(buf.begin() + static_cast<std::ptrdiff_t>(kept * B),
                    buf.begin() + static_cast<std::ptrdiff_t>(half * B), Record{});
        });
    // `cur`'s old extent is abandoned to the arena (reclaimed with the
    // client); the halved array becomes the new working array.
    cur = next;
    n_cur = regions * half;
  }

  // 3. Tail cleanup: deterministic oblivious block sort (non-empty blocks,
  // keyed by their first record, move to the front).
  sortnet::ext_oblivious_unit_sort(client, cur, /*unit_blocks=*/1);
  std::uint64_t tail_real = 0;
  run_block_pipeline(  // unconditional overflow scan
      client, n_cur == 0 ? 0 : ceil_div(n_cur, W),
      [&](std::uint64_t t, PipelinePass& io) {
        io.read_from = &cur;
        const std::uint64_t first = t * W;
        const std::uint64_t k = std::min(W, n_cur - first);
        for (std::uint64_t j = 0; j < k; ++j) io.reads.push_back(first + j);
      },
      [&](std::uint64_t, std::span<Record> buf) {
        for (std::uint64_t j = 0; j < buf.size() / B; ++j)
          if (!buf[j * B].is_empty()) ++tail_real;
      });
  if (tail_real > r_capacity)
    res.status.Update(Status::WhpFailure("thinning survivors exceed capacity r"));

  // 4. Assemble out = C (4r cells) ++ first r survivor blocks.
  res.out = client.alloc_blocks(5 * r_capacity, Client::Init::kUninit);
  pipelined_copy_pad(client, c_arr, 0, res.out, 0, c_cells);
  pipelined_copy_pad(client, cur, 0, res.out, c_cells, r_capacity);  // pads past n_cur
  return res;
}

}  // namespace oem::core
