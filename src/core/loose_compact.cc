#include "core/loose_compact.h"

#include <algorithm>
#include <cmath>

#include "sortnet/external_sort.h"
#include "util/math.h"

namespace oem::core {

LooseCompactResult loose_compact_blocks(Client& client, const ExtArray& a,
                                        std::uint64_t r_capacity,
                                        const BlockPredFn& pred, std::uint64_t seed,
                                        const LooseCompactOptions& opts) {
  LooseCompactResult res;
  const std::uint64_t n0 = a.num_blocks();
  const std::size_t B = client.B();
  r_capacity = std::max<std::uint64_t>(1, r_capacity);
  if (r_capacity * 4 > n0) {
    res.status = Status::InvalidArgument("loose compaction requires R < N/4");
    res.out = client.alloc_blocks(5 * r_capacity);
    return res;
  }
  rng::Xoshiro coins(seed ^ 0x10053c0a3ac7ULL);

  // 1. Normalize: distinguished blocks keep their content, everything else
  // becomes an explicitly empty block.  One scan.
  ExtArray cur = client.alloc_blocks(n0, Client::Init::kUninit);
  {
    CacheLease lease(client.cache(), B);
    BlockBuf blk;
    const BlockBuf empty = make_empty_block(B);
    for (std::uint64_t i = 0; i < n0; ++i) {
      client.read_block(a, i, blk);
      const bool d = pred(i, blk);
      if (d) ++res.distinguished;
      client.write_block(cur, i, d ? blk : empty);
    }
  }
  res.status = res.distinguished <= r_capacity
                   ? Status::Ok()
                   : Status::WhpFailure("more distinguished blocks than capacity");

  // 2. The collector C of 4r cells (paying the counted initialization).
  const std::uint64_t c_cells = 4 * r_capacity;
  ExtArray c_arr = client.alloc_blocks(c_cells, Client::Init::kEmpty);

  const std::uint64_t m = client.m();
  const std::uint64_t log_n = std::max<std::uint64_t>(1, ceil_log2(n0 + 2));
  const std::uint64_t tail_threshold =
      std::max<std::uint64_t>(opts.min_tail_blocks,
                              n0 / std::max<std::uint64_t>(1, log_n * log_n));

  std::uint64_t n_cur = n0;
  CacheLease lease(client.cache(), 2 * B);
  BlockBuf blk, slot;
  const BlockBuf empty = make_empty_block(B);

  while (n_cur > tail_threshold) {
    // 2a. c0 thinning passes: trace is (R cur[i], R C[j], W C[j], W cur[i])
    // for every i; j is a data-independent coin.
    for (unsigned pass = 0; pass < opts.thinning_rounds; ++pass) {
      for (std::uint64_t i = 0; i < n_cur; ++i) {
        client.read_block(cur, i, blk);
        const std::uint64_t j = coins.below(c_cells);
        client.read_block(c_arr, j, slot);
        const bool move = !blk[0].is_empty() && slot[0].is_empty();
        client.write_block(c_arr, j, move ? blk : slot);
        client.write_block(cur, i, move ? empty : blk);
      }
    }

    // 2b. Region halving: survivors are sparse w.h.p. (Lemma 7).
    // Region must fit in cache alongside the scan buffers (hence m - 2).
    const std::uint64_t region_cache = m > 4 ? m - 2 : m;
    const std::uint64_t region_len = std::min<std::uint64_t>(
        {n_cur, region_cache,
         std::max<std::uint64_t>(
             2, static_cast<std::uint64_t>(opts.region_log_factor *
                                           static_cast<double>(log_n)))});
    const std::uint64_t half = (region_len + 1) / 2;
    const std::uint64_t regions = ceil_div(n_cur, region_len);
    ExtArray next = client.alloc_blocks(regions * half, Client::Init::kUninit);
    {
      CacheLease region_lease(client.cache(), region_len * B);
      std::vector<BlockBuf> region;
      for (std::uint64_t g = 0; g < regions; ++g) {
        const std::uint64_t base = g * region_len;
        const std::uint64_t len = std::min(region_len, n_cur - base);
        region.clear();
        std::vector<BlockBuf> survivors;
        for (std::uint64_t b = 0; b < len; ++b) {
          client.read_block(cur, base + b, blk);
          if (!blk[0].is_empty()) survivors.push_back(blk);
        }
        if (survivors.size() > half) {
          // Overcrowded region (Lemma 7 tail event): blocks beyond `half`
          // are lost; flag it, keep the trace unchanged.
          res.status.Update(Status::WhpFailure("overcrowded region in halving step"));
          survivors.resize(half);
        }
        for (std::uint64_t b = 0; b < half; ++b) {
          client.write_block(next, g * half + b,
                             b < survivors.size() ? survivors[b] : empty);
        }
      }
    }
    // `cur`'s old extent is abandoned to the arena (reclaimed with the
    // client); the halved array becomes the new working array.
    cur = next;
    n_cur = regions * half;
  }

  // 3. Tail cleanup: deterministic oblivious block sort (non-empty blocks,
  // keyed by their first record, move to the front).
  sortnet::ext_oblivious_unit_sort(client, cur, /*unit_blocks=*/1);
  std::uint64_t tail_real = 0;
  for (std::uint64_t i = 0; i < n_cur; ++i) {  // unconditional overflow scan
    client.read_block(cur, i, blk);
    if (!blk[0].is_empty()) ++tail_real;
  }
  if (tail_real > r_capacity)
    res.status.Update(Status::WhpFailure("thinning survivors exceed capacity r"));

  // 4. Assemble out = C (4r cells) ++ first r survivor blocks.
  res.out = client.alloc_blocks(5 * r_capacity, Client::Init::kUninit);
  for (std::uint64_t i = 0; i < c_cells; ++i) {
    client.read_block(c_arr, i, blk);
    client.write_block(res.out, i, blk);
  }
  for (std::uint64_t i = 0; i < r_capacity; ++i) {
    if (i < n_cur) {
      client.read_block(cur, i, blk);
      client.write_block(res.out, c_cells + i, blk);
    } else {
      client.write_block(res.out, c_cells + i, empty);
    }
  }
  return res;
}

}  // namespace oem::core
