// Loose compaction without the wide-block / tall-cache assumptions --
// Theorem 9 (Appendix B), after Matias & Vishkin's parallel linear
// approximate compaction.
//
// Compacts at most r < n/4 distinguished blocks into 4.25r blocks using
// O(n log* n) I/Os, assuming only B >= 1 and M >= 2B.  Phases follow the
// tower-of-twos t_1 = 4, t_{i+1} = 2^{t_i}:
//   * initial c0 A-to-D thinning passes (Lemma 24);
//   * per phase: a thinning-out step through an auxiliary array C_i of
//     r/t_i cells (2 A-to-C passes, t_i C-to-D passes, then A := A ++ C_i),
//     and a region-compaction step over regions of 2^{4 t_i} cells
//     (overcrowding test, Theorem-4 compaction of each region to
//     2^{4 t_i}/t_i^2 cells, then t_i^2 thinning passes from the compacted
//     regions into D);
//   * once the survivor bound r/t_i^4 drops below n/log^2 n, a final
//     Theorem-4 compaction into D's reserve of 0.25r cells finishes.
//
// The paper's constants (c0 >= 23, regions of 2^16+ cells) target the
// asymptotic high-probability claims; the defaults here are practical
// equivalents (and the caps are configurable), with measured failure rates
// reported by bench E5.  Trace: scans, coin-indexed probes, and Theorem-4
// calls -- data-oblivious throughout.
#pragma once

#include <cstdint>

#include "core/butterfly.h"
#include "core/sparse_compact.h"
#include "extmem/client.h"
#include "util/status.h"

namespace oem::core {

struct LogstarCompactOptions {
  unsigned initial_thinning = 8;      // c0 (paper: >= 23 for the formal bound)
  unsigned max_tower_exponent = 16;   // cap t_i at 2^16
  std::uint64_t max_region_blocks = 4096;  // cap the 2^{4 t_i} region size
  std::uint64_t base_case_blocks = 64;     // n0: below this, sort directly
  /// Divisor on the paper's n/log^2(n) termination threshold.  With t_1 = 4
  /// the very first phase already satisfies the threshold at any feasible n
  /// (the tower grows that fast); benches raise the divisor to force extra
  /// phases and demonstrate the tower machinery.
  std::uint64_t threshold_divisor = 1;
  SparseCompactOptions sparse;
};

struct LogstarCompactResult {
  ExtArray out;                    // exactly ceil(4.25 * r_capacity) blocks
  std::uint64_t distinguished = 0;
  unsigned phases = 0;             // tower phases executed (log* n shape)
  Status status;
};

/// Theorem 9 at block granularity; requires r_capacity <= n/4.
LogstarCompactResult logstar_compact_blocks(Client& client, const ExtArray& a,
                                            std::uint64_t r_capacity,
                                            const BlockPredFn& pred,
                                            std::uint64_t seed,
                                            const LogstarCompactOptions& opts = {});

}  // namespace oem::core
