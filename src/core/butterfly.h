// Butterfly-like compaction network -- Theorem 6 of the paper (Figure 1).
//
// Tight, order-preserving, *deterministic* compaction of the distinguished
// blocks of an n-block array using O((N/B) log_{M/B}(N/B)) I/Os, plus the
// reverse operation (order-preserving expansion), which the paper uses for
// failure sweeping and which we also use to build padded quantile buckets.
//
// Mechanics (paper §3): the network has ceil(log n) levels; an occupied cell
// at position j labeled with leftward distance d moves by (d mod 2^{i+1})
// in {0, 2^i} at level i.  Lemma 5 guarantees no two blocks ever collide.
// Distances for compaction are "number of empty cells to my left", computed
// by one scan.
//
// I/O efficiency: levels are processed in super-levels of g = Theta(log m)
// levels.  After t*g levels every remaining distance is a multiple of
// s = 2^{t*g}, so cells split into s independent strided subarrays; a
// sliding window of 2*2^{g_t} cells (cache-sized) routes g_t levels in one
// linear pass per subarray.  Total: O(n * ceil(log n / log m)) block I/Os --
// the paper's O((N/B) log_{M/B}(N/B)).
//
// The trace depends only on (n, m): fully data-oblivious, no failure
// probability.
#pragma once

#include <cstdint>
#include <functional>

#include "extmem/client.h"

namespace oem::core {

/// Block-level distinguishing predicate, evaluated privately.
using BlockPredFn = std::function<bool(std::uint64_t block_index, const BlockBuf& content)>;

/// Block is distinguished iff its first record is non-empty (the convention
/// for consolidated arrays, where blocks are full-or-empty).
BlockPredFn block_nonempty_pred();

struct TightCompactResult {
  ExtArray out;               // n blocks: occupied prefix, then empty blocks
  std::uint64_t occupied = 0;  // number of distinguished blocks (private)
};

/// Theorem 6: tight order-preserving compaction of the distinguished blocks
/// of `a` into the prefix of a fresh n-block array.
TightCompactResult tight_compact_blocks(Client& client, const ExtArray& a,
                                        const BlockPredFn& pred);

/// Theorem 6 "in reverse": expansion.  Routes block i of `a` (for
/// i < count) to position target(i) of a fresh array of out_blocks blocks;
/// targets must be strictly increasing with target(i) >= i and
/// target(count-1) < out_blocks.  Other output blocks are empty.
ExtArray expand_blocks(Client& client, const ExtArray& a, std::uint64_t count,
                       std::uint64_t out_blocks,
                       const std::function<std::uint64_t(std::uint64_t)>& target);

/// Reference implementation for differential testing: compaction via the
/// deterministic oblivious sort of Lemma 2 (sort blocks by (empty, index)).
/// Costs a log^2 factor; used only by tests and the E3 baseline bench.
TightCompactResult tight_compact_by_sort(Client& client, const ExtArray& a,
                                         const BlockPredFn& pred);

/// Cost-model predictor for the butterfly router (block I/Os), used by tests
/// to pin the O(n log n / log m) shape.
std::uint64_t butterfly_predicted_ios(std::uint64_t n_blocks, std::uint64_t m_blocks);

}  // namespace oem::core
