#include "core/logstar_compact.h"

#include <algorithm>
#include <cmath>

#include "extmem/pipeline.h"
#include "sortnet/external_sort.h"
#include "util/math.h"

namespace oem::core {

namespace {

/// One thinning pass from `src` (its first `src_len` blocks) into the cell
/// range [dst_first, dst_first + dst_cells) of `dst`, as a pipeline of
/// mixed-array steps: step i gathers (src[i], dst[j]) and scatters
/// (dst[j], src[i]).  Every step costs exactly 4 I/Os; the probe index is a
/// data-independent coin drawn in the describe stage, preserving the
/// per-block loop's coin sequence and trace.
void thinning_pass(Client& client, const ExtArray& src, std::uint64_t src_len,
                   const ExtArray& dst, std::uint64_t dst_first,
                   std::uint64_t dst_cells, rng::Xoshiro& coins) {
  const std::size_t B = client.B();
  run_block_pipeline(
      client, src_len,
      [&](std::uint64_t i, PipelinePass& io) {
        const std::uint64_t j = dst_first + coins.below(dst_cells);
        io.read(src, i);
        io.read(dst, j);
        io.write(dst, j);
        io.write(src, i);
      },
      [&](std::uint64_t, std::span<Record> buf) {
        // Entry: buf = [blk, slot]; scatter order is [dst, src].
        auto blk = buf.subspan(0, B);
        auto slot = buf.subspan(B, B);
        const bool move = !blk[0].is_empty() && slot[0].is_empty();
        if (move) {
          std::fill(slot.begin(), slot.end(), Record{});  // source cell empties
        } else {
          std::swap_ranges(blk.begin(), blk.end(), slot.begin());  // both keep
        }
      });
}

}  // namespace

LogstarCompactResult logstar_compact_blocks(Client& client, const ExtArray& a,
                                            std::uint64_t r_capacity,
                                            const BlockPredFn& pred,
                                            std::uint64_t seed,
                                            const LogstarCompactOptions& opts) {
  LogstarCompactResult res;
  const std::uint64_t n0 = a.num_blocks();
  const std::size_t B = client.B();
  const std::uint64_t W = std::max<std::uint64_t>(1, client.io_batch_blocks());
  r_capacity = std::max<std::uint64_t>(1, r_capacity);
  const std::uint64_t out_blocks = 4 * r_capacity + ceil_div(r_capacity, 4);
  const std::uint64_t main_cells = 4 * r_capacity;
  const std::uint64_t reserve_cells = out_blocks - main_cells;
  rng::Xoshiro coins(seed ^ 0x70c577a5d31fULL);

  if (r_capacity * 4 > n0) {
    res.status = Status::InvalidArgument("log* compaction requires R < N/4");
    res.out = client.alloc_blocks(out_blocks);
    return res;
  }

  const std::uint64_t log_n = std::max<std::uint64_t>(1, ceil_log2(n0 + 2));
  const std::uint64_t sparse_threshold = std::max<std::uint64_t>(
      1, n0 / (log_n * log_n * std::max<std::uint64_t>(1, opts.threshold_divisor)));

  // Base cases (public-parameter branch).
  if (n0 <= opts.base_case_blocks || r_capacity <= sparse_threshold) {
    // Tiny input: deterministic oblivious block sort; sparse input:
    // Theorem 4.  Either way the distinguished blocks land in the front of
    // an exact-r array which we then place into `out`.
    SparseCompactResult sc =
        sparse_compact_blocks(client, a, r_capacity, pred, seed, opts.sparse);
    res.distinguished = sc.distinguished;
    res.status = sc.status;
    res.out = client.alloc_blocks(out_blocks, Client::Init::kUninit);
    pipelined_copy_pad(client, sc.out, 0, res.out, 0, out_blocks);
    return res;
  }

  // General case.  D = main 4r cells ++ reserve 0.25r cells.
  ExtArray d_arr = client.alloc_blocks(out_blocks, Client::Init::kEmpty);

  // Working array with headroom for the appended C_i arrays
  // (sum r/t_i < r/2).
  const std::uint64_t a_cap = n0 + ceil_div(r_capacity, 2) + 4;
  ExtArray work = client.alloc_blocks(a_cap, Client::Init::kUninit);
  std::uint64_t work_len = n0;
  std::uint64_t work_cap = a_cap;
  {
    // Normalize scan (pipelined): distinguished blocks keep their content,
    // everything else -- including the headroom -- becomes explicitly empty.
    BlockBuf scratch(B);
    run_block_pipeline(
        client, ceil_div(a_cap, W),
        [&](std::uint64_t t, PipelinePass& io) {
          io.read_from = &a;
          io.write_to = &work;
          const std::uint64_t first = t * W;
          const std::uint64_t k = std::min(W, a_cap - first);
          for (std::uint64_t j = 0; j < k; ++j) {
            if (first + j < n0) io.reads.push_back(first + j);
            io.writes.push_back(first + j);
          }
        },
        [&](std::uint64_t t, std::span<Record> buf) {
          const std::uint64_t first = t * W;
          const std::uint64_t k = buf.size() / B;
          for (std::uint64_t j = 0; j < k; ++j) {
            const auto blk = buf.subspan(j * B, B);
            if (first + j < n0) {
              scratch.assign(blk.begin(), blk.end());
              if (pred(first + j, scratch)) {
                ++res.distinguished;
                continue;
              }
            }
            std::fill(blk.begin(), blk.end(), Record{});
          }
        });
  }
  res.status = res.distinguished <= r_capacity
                   ? Status::Ok()
                   : Status::WhpFailure("more distinguished blocks than capacity");

  // Initial c0 thinning passes (Lemma 24).
  for (unsigned p = 0; p < opts.initial_thinning; ++p)
    thinning_pass(client, work, work_len, d_arr, 0, main_cells, coins);

  // Tower phases.
  std::uint64_t t = 4;  // t_1 = 2^2
  const std::uint64_t t_cap = std::uint64_t{1} << opts.max_tower_exponent;
  for (unsigned phase = 1;; ++phase) {
    // Survivor bound r / t^4 (saturating).
    const long double t4 = static_cast<long double>(t) * t * t * t;
    const std::uint64_t survivors_bound = static_cast<std::uint64_t>(
        std::ceil(static_cast<long double>(r_capacity) / t4));

    if (survivors_bound <= sparse_threshold || work_len <= opts.base_case_blocks) {
      // Final step: Theorem 4 into the reserve.  The initial thinning plus
      // this terminal compaction constitute the last phase.
      res.phases = phase;
      SparseCompactResult sc = sparse_compact_blocks(
          client, work.slice_blocks(0, work_len), reserve_cells, block_nonempty_pred(),
          seed ^ (0x9e37ULL + phase), opts.sparse);
      res.status.Update(sc.status);
      pipelined_copy_pad(client, sc.out, 0, d_arr, main_cells, reserve_cells);
      break;
    }
    res.phases = phase;

    // --- Thinning-out step: C_i of r/t_i cells.
    const std::uint64_t c_cells =
        std::max<std::uint64_t>(1, ceil_div(r_capacity, t));
    ExtArray c_arr = client.alloc_blocks(c_cells, Client::Init::kEmpty);
    thinning_pass(client, work, work_len, c_arr, 0, c_cells, coins);
    thinning_pass(client, work, work_len, c_arr, 0, c_cells, coins);
    const std::uint64_t c_to_d = std::min<std::uint64_t>(t, 64);
    for (std::uint64_t p = 0; p < c_to_d; ++p)
      thinning_pass(client, c_arr, c_cells, d_arr, 0, main_cells, coins);
    // Grow A by concatenating C_i (some items may be stuck there).
    {
      const std::uint64_t append =
          std::min<std::uint64_t>(c_cells, work_cap - work_len);
      pipelined_copy_pad(client, c_arr, 0, work, work_len, append);
      work_len += append;
    }
    client.release(c_arr);  // not trailing; reclaimed with the client

    // --- Region-compaction step: regions of 2^{4 t_i} cells (capped), each
    // compacted to region_len / t_i^2 cells via Theorem 4.
    const std::uint64_t region_len = std::min<std::uint64_t>(
        {work_len, opts.max_region_blocks,
         t >= 16 ? opts.max_region_blocks : (std::uint64_t{1} << (4 * t))});
    const std::uint64_t t2 = t * t;
    const std::uint64_t r_i =
        std::max<std::uint64_t>(1, region_len / std::max<std::uint64_t>(2, t2));
    const std::uint64_t regions = ceil_div(work_len, region_len);

    // Headroom so later phases can append their C_i arrays.
    const std::uint64_t next_cap = regions * r_i + ceil_div(r_capacity, 2) + 4;
    ExtArray next = client.alloc_blocks(next_cap, Client::Init::kUninit);
    for (std::uint64_t g = 0; g < regions; ++g) {
      const std::uint64_t base = g * region_len;
      const std::uint64_t len = std::min(region_len, work_len - base);
      SparseCompactResult sc = sparse_compact_blocks(
          client, work.slice_blocks(base, len), r_i, block_nonempty_pred(),
          seed ^ (0xabcdULL * (phase * 131 + g + 1)), opts.sparse);
      res.status.Update(sc.status);
      // t_i^2 thinning passes from the compacted region into D.
      const std::uint64_t passes = std::min<std::uint64_t>(t2, 64);
      for (std::uint64_t p = 0; p < passes; ++p)
        thinning_pass(client, sc.out, r_i, d_arr, 0, main_cells, coins);
      // Whatever remains joins the next round's array.
      pipelined_copy_pad(client, sc.out, 0, next, g * r_i, r_i);
    }
    {
      // Blank the headroom so later appends land on explicit empty blocks.
      run_block_pipeline(
          client, ceil_div(next_cap - regions * r_i, W),
          [&](std::uint64_t tw, PipelinePass& io) {
            io.write_to = &next;
            const std::uint64_t first = regions * r_i + tw * W;
            const std::uint64_t k = std::min(W, next_cap - first);
            for (std::uint64_t j = 0; j < k; ++j) io.writes.push_back(first + j);
          },
          [](std::uint64_t, std::span<Record> buf) {
            std::fill(buf.begin(), buf.end(), Record{});
          });
    }
    work = next;
    work_len = regions * r_i;
    work_cap = next_cap;

    // Advance the tower: t_{i+1} = 2^{t_i}, capped.
    if (t >= 64 || (std::uint64_t{1} << t) >= t_cap) {
      t = t_cap;
    } else {
      t = std::uint64_t{1} << t;
    }
  }

  res.out = d_arr;
  return res;
}

}  // namespace oem::core
