#include "core/logstar_compact.h"

#include <algorithm>
#include <cmath>

#include "sortnet/external_sort.h"
#include "util/math.h"

namespace oem::core {

namespace {

/// One thinning pass from `src` (its first `src_len` blocks) into the cell
/// range [dst_first, dst_first + dst_cells) of `dst`.  Every step costs
/// exactly 4 I/Os; the probe index is a data-independent coin.
void thinning_pass(Client& client, const ExtArray& src, std::uint64_t src_len,
                   const ExtArray& dst, std::uint64_t dst_first,
                   std::uint64_t dst_cells, rng::Xoshiro& coins) {
  CacheLease lease(client.cache(), 2 * client.B());
  BlockBuf blk, slot;
  const BlockBuf empty = make_empty_block(client.B());
  for (std::uint64_t i = 0; i < src_len; ++i) {
    client.read_block(src, i, blk);
    const std::uint64_t j = dst_first + coins.below(dst_cells);
    client.read_block(dst, j, slot);
    const bool move = !blk[0].is_empty() && slot[0].is_empty();
    client.write_block(dst, j, move ? blk : slot);
    client.write_block(src, i, move ? empty : blk);
  }
}

}  // namespace

LogstarCompactResult logstar_compact_blocks(Client& client, const ExtArray& a,
                                            std::uint64_t r_capacity,
                                            const BlockPredFn& pred,
                                            std::uint64_t seed,
                                            const LogstarCompactOptions& opts) {
  LogstarCompactResult res;
  const std::uint64_t n0 = a.num_blocks();
  const std::size_t B = client.B();
  r_capacity = std::max<std::uint64_t>(1, r_capacity);
  const std::uint64_t out_blocks = 4 * r_capacity + ceil_div(r_capacity, 4);
  const std::uint64_t main_cells = 4 * r_capacity;
  const std::uint64_t reserve_cells = out_blocks - main_cells;
  rng::Xoshiro coins(seed ^ 0x70c577a5d31fULL);

  if (r_capacity * 4 > n0) {
    res.status = Status::InvalidArgument("log* compaction requires R < N/4");
    res.out = client.alloc_blocks(out_blocks);
    return res;
  }

  const std::uint64_t log_n = std::max<std::uint64_t>(1, ceil_log2(n0 + 2));
  const std::uint64_t sparse_threshold = std::max<std::uint64_t>(
      1, n0 / (log_n * log_n * std::max<std::uint64_t>(1, opts.threshold_divisor)));

  // Base cases (public-parameter branch).
  if (n0 <= opts.base_case_blocks || r_capacity <= sparse_threshold) {
    // Tiny input: deterministic oblivious block sort; sparse input:
    // Theorem 4.  Either way the distinguished blocks land in the front of
    // an exact-r array which we then place into `out`.
    SparseCompactResult sc =
        sparse_compact_blocks(client, a, r_capacity, pred, seed, opts.sparse);
    res.distinguished = sc.distinguished;
    res.status = sc.status;
    res.out = client.alloc_blocks(out_blocks, Client::Init::kUninit);
    CacheLease lease(client.cache(), B);
    BlockBuf blk;
    const BlockBuf empty = make_empty_block(B);
    for (std::uint64_t i = 0; i < out_blocks; ++i) {
      if (i < sc.out.num_blocks()) {
        client.read_block(sc.out, i, blk);
        client.write_block(res.out, i, blk);
      } else {
        client.write_block(res.out, i, empty);
      }
    }
    return res;
  }

  // General case.  D = main 4r cells ++ reserve 0.25r cells.
  ExtArray d_arr = client.alloc_blocks(out_blocks, Client::Init::kEmpty);

  // Working array with headroom for the appended C_i arrays
  // (sum r/t_i < r/2).
  const std::uint64_t a_cap = n0 + ceil_div(r_capacity, 2) + 4;
  ExtArray work = client.alloc_blocks(a_cap, Client::Init::kUninit);
  std::uint64_t work_len = n0;
  std::uint64_t work_cap = a_cap;
  {
    CacheLease lease(client.cache(), B);
    BlockBuf blk;
    const BlockBuf empty = make_empty_block(B);
    for (std::uint64_t i = 0; i < n0; ++i) {
      client.read_block(a, i, blk);
      const bool dist = pred(i, blk);
      if (dist) ++res.distinguished;
      client.write_block(work, i, dist ? blk : empty);
    }
    for (std::uint64_t i = n0; i < a_cap; ++i) client.write_block(work, i, empty);
  }
  res.status = res.distinguished <= r_capacity
                   ? Status::Ok()
                   : Status::WhpFailure("more distinguished blocks than capacity");

  // Initial c0 thinning passes (Lemma 24).
  for (unsigned p = 0; p < opts.initial_thinning; ++p)
    thinning_pass(client, work, work_len, d_arr, 0, main_cells, coins);

  // Tower phases.
  std::uint64_t t = 4;  // t_1 = 2^2
  const std::uint64_t t_cap = std::uint64_t{1} << opts.max_tower_exponent;
  for (unsigned phase = 1;; ++phase) {
    // Survivor bound r / t^4 (saturating).
    const long double t4 = static_cast<long double>(t) * t * t * t;
    const std::uint64_t survivors_bound = static_cast<std::uint64_t>(
        std::ceil(static_cast<long double>(r_capacity) / t4));

    if (survivors_bound <= sparse_threshold || work_len <= opts.base_case_blocks) {
      // Final step: Theorem 4 into the reserve.  The initial thinning plus
      // this terminal compaction constitute the last phase.
      res.phases = phase;
      SparseCompactResult sc = sparse_compact_blocks(
          client, work.slice_blocks(0, work_len), reserve_cells, block_nonempty_pred(),
          seed ^ (0x9e37ULL + phase), opts.sparse);
      res.status.Update(sc.status);
      CacheLease lease(client.cache(), B);
      BlockBuf blk;
      for (std::uint64_t i = 0; i < reserve_cells; ++i) {
        client.read_block(sc.out, i, blk);
        client.write_block(d_arr, main_cells + i, blk);
      }
      break;
    }
    res.phases = phase;

    // --- Thinning-out step: C_i of r/t_i cells.
    const std::uint64_t c_cells =
        std::max<std::uint64_t>(1, ceil_div(r_capacity, t));
    ExtArray c_arr = client.alloc_blocks(c_cells, Client::Init::kEmpty);
    thinning_pass(client, work, work_len, c_arr, 0, c_cells, coins);
    thinning_pass(client, work, work_len, c_arr, 0, c_cells, coins);
    const std::uint64_t c_to_d = std::min<std::uint64_t>(t, 64);
    for (std::uint64_t p = 0; p < c_to_d; ++p)
      thinning_pass(client, c_arr, c_cells, d_arr, 0, main_cells, coins);
    // Grow A by concatenating C_i (some items may be stuck there).
    {
      CacheLease lease(client.cache(), B);
      BlockBuf blk;
      for (std::uint64_t i = 0; i < c_cells && work_len < work_cap; ++i) {
        client.read_block(c_arr, i, blk);
        client.write_block(work, work_len++, blk);
      }
    }
    client.release(c_arr);  // not trailing; reclaimed with the client

    // --- Region-compaction step: regions of 2^{4 t_i} cells (capped), each
    // compacted to region_len / t_i^2 cells via Theorem 4.
    const std::uint64_t region_len = std::min<std::uint64_t>(
        {work_len, opts.max_region_blocks,
         t >= 16 ? opts.max_region_blocks : (std::uint64_t{1} << (4 * t))});
    const std::uint64_t t2 = t * t;
    const std::uint64_t r_i =
        std::max<std::uint64_t>(1, region_len / std::max<std::uint64_t>(2, t2));
    const std::uint64_t regions = ceil_div(work_len, region_len);

    // Headroom so later phases can append their C_i arrays.
    const std::uint64_t next_cap = regions * r_i + ceil_div(r_capacity, 2) + 4;
    ExtArray next = client.alloc_blocks(next_cap, Client::Init::kUninit);
    for (std::uint64_t g = 0; g < regions; ++g) {
      const std::uint64_t base = g * region_len;
      const std::uint64_t len = std::min(region_len, work_len - base);
      SparseCompactResult sc = sparse_compact_blocks(
          client, work.slice_blocks(base, len), r_i, block_nonempty_pred(),
          seed ^ (0xabcdULL * (phase * 131 + g + 1)), opts.sparse);
      res.status.Update(sc.status);
      // t_i^2 thinning passes from the compacted region into D.
      const std::uint64_t passes = std::min<std::uint64_t>(t2, 64);
      for (std::uint64_t p = 0; p < passes; ++p)
        thinning_pass(client, sc.out, r_i, d_arr, 0, main_cells, coins);
      // Whatever remains joins the next round's array.
      CacheLease lease(client.cache(), B);
      BlockBuf blk;
      for (std::uint64_t i = 0; i < r_i; ++i) {
        client.read_block(sc.out, i, blk);
        client.write_block(next, g * r_i + i, blk);
      }
    }
    {
      // Blank the headroom so later appends land on explicit empty blocks.
      CacheLease lease(client.cache(), B);
      const BlockBuf empty = make_empty_block(B);
      for (std::uint64_t i = regions * r_i; i < next_cap; ++i)
        client.write_block(next, i, empty);
    }
    work = next;
    work_len = regions * r_i;
    work_cap = next_cap;

    // Advance the tower: t_{i+1} = 2^{t_i}, capped.
    if (t >= 64 || (std::uint64_t{1} << t) >= t_cap) {
      t = t_cap;
    } else {
      t = std::uint64_t{1} << t;
    }
  }

  res.out = d_arr;
  return res;
}

}  // namespace oem::core
