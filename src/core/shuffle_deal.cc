#include "core/shuffle_deal.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

#include "rng/permutation.h"
#include "util/math.h"

namespace oem::core {

MultiwayResult multiway_consolidate(Client& client, const ExtArray& a,
                                    unsigned num_colors, const ColorFn& color_of) {
  MultiwayResult res;
  const std::size_t B = client.B();
  const std::uint64_t n = a.num_blocks();
  const unsigned C = std::max(1u, num_colors);
  res.color_records.assign(C, 0);

  const std::uint64_t groups = ceil_div(std::max<std::uint64_t>(n, 1), C);
  const std::uint64_t tail_blocks = 4ull * C;
  res.out = client.alloc_blocks(groups * C + tail_blocks, Client::Init::kUninit);

  CacheLease lease(client.cache(), (4ull * C + 2) * B);
  std::vector<std::deque<Record>> buckets(C);
  BlockBuf blk, outblk(B);
  const BlockBuf empty = make_empty_block(B);
  std::uint64_t out_pos = 0;

  auto emit_full_or_empty = [&]() {
    // Emit one output block: a full monochromatic block if any bucket can
    // fill one, else an empty block.  Which case occurred is invisible: both
    // are one write of fresh ciphertext.
    for (unsigned c = 0; c < C; ++c) {
      if (buckets[c].size() >= B) {
        for (std::size_t r = 0; r < B; ++r) {
          outblk[r] = buckets[c].front();
          buckets[c].pop_front();
        }
        client.write_block(res.out, out_pos++, outblk);
        return;
      }
    }
    client.write_block(res.out, out_pos++, empty);
  };

  std::uint64_t in_pos = 0;
  for (std::uint64_t g = 0; g < groups; ++g) {
    for (unsigned gi = 0; gi < C; ++gi) {
      if (in_pos < n) {
        client.read_block(a, in_pos++, blk);
        for (const Record& r : blk) {
          if (r.is_empty()) continue;
          const unsigned c = color_of(r);
          assert(c < C);
          buckets[c].push_back(r);
          ++res.color_records[c];
        }
      }
      // One emission per input slot keeps output position data-independent.
      emit_full_or_empty();
    }
  }

  // Fixed-size tail flush: enough slots for every bucket's leftovers
  // (bounded by the pigeonhole argument in the header).
  for (std::uint64_t t = 0; t < tail_blocks; ++t) {
    // Prefer full blocks, then partials, then empties.
    unsigned pick = C;
    for (unsigned c = 0; c < C; ++c)
      if (buckets[c].size() >= B) { pick = c; break; }
    if (pick == C) {
      for (unsigned c = 0; c < C; ++c)
        if (!buckets[c].empty()) { pick = c; break; }
    }
    if (pick < C) {
      outblk = empty;
      for (std::size_t r = 0; r < B && !buckets[pick].empty(); ++r) {
        outblk[r] = buckets[pick].front();
        buckets[pick].pop_front();
      }
      client.write_block(res.out, out_pos++, outblk);
    } else {
      client.write_block(res.out, out_pos++, empty);
    }
  }
  for (unsigned c = 0; c < C; ++c) {
    if (!buckets[c].empty()) {
      res.status.Update(Status::CapacityExceeded(
          "multiway consolidation tail overflow (buffer bound violated)"));
    }
  }
  return res;
}

void shuffle_blocks(Client& client, const ExtArray& a, rng::Xoshiro& coins) {
  const std::uint64_t n = a.num_blocks();
  CacheLease lease(client.cache(), 2 * client.B());
  BlockBuf x, y;
  rng::fisher_yates(n, coins, [&](std::uint64_t i, std::uint64_t j) {
    // Bob sees 2 reads + 2 writes at coin-chosen positions, whatever i == j.
    client.read_block(a, i, x);
    client.read_block(a, j, y);
    client.write_block(a, i, y);
    client.write_block(a, j, x);
  });
}

DealResult deal_blocks(Client& client, const ExtArray& a, unsigned num_colors,
                       const ColorFn& color_of, const DealOptions& opts) {
  DealResult res;
  const std::size_t B = client.B();
  const std::uint64_t n = a.num_blocks();
  const unsigned C = std::max(1u, num_colors);
  const std::uint64_t m = client.m();

  std::uint64_t batch = opts.batch_blocks;
  if (batch == 0) {
    batch = std::clamp<std::uint64_t>(ipow_frac(m, 3, 4), C, std::max<std::uint64_t>(C, m / 2));
  }
  const std::uint64_t batches = ceil_div(std::max<std::uint64_t>(n, 1), batch);
  std::uint64_t quota = opts.quota;
  if (quota == 0) {
    const double mean = static_cast<double>(batch) / static_cast<double>(C);
    quota = static_cast<std::uint64_t>(std::ceil(mean + 4.0 * std::sqrt(mean))) + 4;
  }
  res.batch_blocks = batch;
  res.quota = quota;

  res.colors.reserve(C);
  for (unsigned c = 0; c < C; ++c)
    res.colors.push_back(client.alloc_blocks(batches * quota, Client::Init::kUninit));

  CacheLease lease(client.cache(), (batch + 2) * B);
  BlockBuf blk;
  const BlockBuf empty = make_empty_block(B);
  std::vector<std::vector<BlockBuf>> pend(C);

  std::uint64_t in_pos = 0;
  for (std::uint64_t bt = 0; bt < batches; ++bt) {
    for (unsigned c = 0; c < C; ++c) pend[c].clear();
    for (std::uint64_t i = 0; i < batch && in_pos < n; ++i) {
      client.read_block(a, in_pos++, blk);
      if (blk[0].is_empty()) continue;  // consolidation padding carries nothing
      const unsigned c = color_of(blk[0]);
      assert(c < C);
      if (pend[c].size() < quota) {
        pend[c].push_back(blk);
      } else {
        ++res.overflow_drops;  // Lemma 18 tail event
      }
    }
    for (unsigned c = 0; c < C; ++c) {
      for (std::uint64_t s = 0; s < quota; ++s) {
        client.write_block(res.colors[c], bt * quota + s,
                           s < pend[c].size() ? pend[c][s] : empty);
      }
    }
  }
  if (res.overflow_drops > 0)
    res.status = Status::WhpFailure("deal quota overflow (Lemma 18 tail)");
  return res;
}

}  // namespace oem::core
