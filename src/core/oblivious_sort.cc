#include "core/oblivious_sort.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/butterfly.h"
#include "core/consolidate.h"
#include "extmem/pipeline.h"
#include "hash/hashing.h"
#include "sortnet/external_sort.h"
#include "util/math.h"

namespace oem::core {

namespace {

struct Ctx {
  Client& client;
  const ObliviousSortOptions& opts;
  SortStats stats;
  /// Failure sweeping engages only at the recursion level whose children are
  /// at most this many blocks -- the paper sweeps the O(sqrt(n))-sized
  /// subproblems once, not every level (a per-level sweep would add a
  /// deterministic-sort cost per level and destroy the I/O bound).
  std::uint64_t sweep_max_blocks = 0;
};

/// Copy `count` blocks from src[0..] to dst[dst_first..], padding with empty
/// blocks when src runs out.  One chunked pipeline scan; per-block I/O counts
/// are identical to the per-block loop this replaced.
void copy_blocks(Client& c, const ExtArray& src, const ExtArray& dst,
                 std::uint64_t dst_first, std::uint64_t count) {
  pipelined_copy_pad(c, src, 0, dst, dst_first, count);
}

/// Deterministic base case: copy + private sort or Lemma 2 sort.  Output has
/// the same block count as the input (>= 1).
Status sort_node_deterministic(Ctx& ctx, const ExtArray& in, ExtArray* out) {
  Client& client = ctx.client;
  ++ctx.stats.det_sort_nodes;
  const std::uint64_t n = std::max<std::uint64_t>(in.num_blocks(), 1);
  *out = client.alloc_blocks(n, Client::Init::kUninit);
  copy_blocks(client, in, *out, 0, n);
  if (n <= client.m()) {
    sortnet::sort_region_in_cache(client, *out, 0, n);
  } else {
    sortnet::ext_oblivious_sort(client, *out);
  }
  return Status::Ok();
}

/// The recursive padded sort.
///
/// `real_bound` is a PUBLIC upper bound on the number of non-empty records
/// in `in`, derived from the top-level N by dividing by (q+1) per level --
/// this is what keeps all array sizes (hence the trace) data-independent
/// while the actual occupancy is private.
Status sort_node(Ctx& ctx, const ExtArray& in, ExtArray* out,
                 std::uint64_t real_bound, std::uint64_t seed, unsigned depth) {
  Client& client = ctx.client;
  const std::size_t B = client.B();
  const std::uint64_t n = in.num_blocks();
  const std::uint64_t m = client.m();
  ++ctx.stats.nodes;
  ctx.stats.levels = std::max(ctx.stats.levels, depth);

  const std::uint64_t q64 = iroot(m, 4);
  const std::uint64_t min_rec = ctx.opts.min_recursive_blocks != 0
                                    ? ctx.opts.min_recursive_blocks
                                    : 4 * m;
  // Base cases: all conditions are public parameters.
  const bool dense_regime = ctx.opts.paper_dense_rule && m * m * m * m >= n;
  if (n <= min_rec || dense_regime || q64 < 2 ||
      depth >= ctx.opts.max_depth || real_bound <= B * m) {
    return sort_node_deterministic(ctx, in, out);
  }
  const unsigned q = static_cast<unsigned>(std::min<std::uint64_t>(q64, 255));
  const unsigned colors = q + 1;

  // Independent coin streams so that the (data-dependent) number of private
  // tie-breaking decisions can never shift the coins that drive the trace.
  rng::Xoshiro coins(seed ^ (0x517ab1e5ULL + depth));
  const std::uint64_t quantile_seed = coins.next();
  const std::uint64_t tie_seed = coins.next();
  rng::Xoshiro shuffle_coins = coins.split();
  std::vector<std::uint64_t> loose_seeds(colors), child_seeds(colors);
  for (unsigned c = 0; c < colors; ++c) loose_seeds[c] = coins.next();
  for (unsigned c = 0; c < colors; ++c) child_seeds[c] = coins.next();

  Status st;  // accumulates this node's *unsweepable* failures

  // --- 1. Splitters.  The private real-record count steers only rank
  // arithmetic inside the quantile algorithm (see QuantilesOptions).
  std::uint64_t real_records = 0;
  {
    // Read-only pipelined scan: the occupancy count is private state in the
    // compute stage; the read schedule is n blocks regardless of data.
    const std::uint64_t W = std::max<std::uint64_t>(1, client.io_batch_blocks());
    run_block_pipeline(
        client, n == 0 ? 0 : ceil_div(n, W),
        [&](std::uint64_t t, PipelinePass& io) {
          io.read_from = &in;
          const std::uint64_t first = t * W;
          const std::uint64_t k = std::min(W, n - first);
          for (std::uint64_t j = 0; j < k; ++j) io.reads.push_back(first + j);
        },
        [&](std::uint64_t, std::span<Record> buf) {
          for (const Record& r : buf)
            if (!r.is_empty()) ++real_records;
        });
  }
  QuantilesOptions qopts = ctx.opts.quantiles;
  qopts.real_records = std::max<std::uint64_t>(real_records, colors + 1);
  if (ctx.opts.sparse_quantiles) qopts.force_sparse = true;
  QuantilesResult quant = oblivious_quantiles(client, in, q, quantile_seed, qopts);
  // A quantile tail event yields degraded splitters, never a wrong sort:
  // colors stay internally sorted and ordered; the only risk is a capacity
  // overflow downstream, which the loose/deal stages flag themselves.
  if (!quant.status.ok()) ++ctx.stats.quantile_tails;
  std::vector<std::uint64_t> splitters(q, 0);
  for (unsigned j = 0; j < q && j < quant.quantiles.size(); ++j)
    splitters[j] = quant.quantiles[j].key;
  std::sort(splitters.begin(), splitters.end());

  // --- 2. Coloring.  Records strictly between splitters get the unique
  // eligible color; records equal to splitter keys are spread over the
  // eligible range by a deterministic keyed hash, so the consolidation and
  // the deal below agree on every block's color while duplicate-heavy
  // inputs still balance.
  auto color_of = [&](const Record& r) -> unsigned {
    unsigned lo = 0, hi = 0;
    for (unsigned j = 0; j < q; ++j) {
      if (splitters[j] < r.key) ++lo;
      if (splitters[j] <= r.key) ++hi;
    }
    if (lo == hi) return lo;
    const std::uint64_t h = hash::mix(r.key * 0x9e3779b97f4a7c15ULL ^ r.value, tie_seed);
    return lo + static_cast<unsigned>(h % (hi - lo + 1));
  };

  // --- 3. Multi-way consolidation into monochromatic blocks.
  MultiwayResult mw = multiway_consolidate(client, in, colors, color_of);
  st.Update(mw.status);

  // --- 4. Shuffle and deal.
  shuffle_blocks(client, mw.out, shuffle_coins);
  DealResult deal = deal_blocks(client, mw.out, colors, color_of, ctx.opts.deal);
  st.Update(deal.status);

  // --- 5. Loose compaction of each color.  The public per-color bound is
  // real_bound/(q+1) plus a sqrt-scale additive slack (quantile rank error
  // and tie-spreading variance are both O(sqrt) deviations).  The slack must
  // be additive: a multiplicative slack would compound through the recursion
  // and blow the level capacity up exponentially.
  const double mean_child = static_cast<double>(real_bound) / static_cast<double>(colors);
  const std::uint64_t child_real_bound = std::max<std::uint64_t>(
      B, static_cast<std::uint64_t>(
             std::ceil(mean_child + 4.0 * ctx.opts.color_slack * std::sqrt(mean_child))) +
             2 * B);
  const std::uint64_t r_cap = ceil_div(child_real_bound, B) + 2;
  std::vector<ExtArray> child_inputs(colors);
  for (unsigned c = 0; c < colors; ++c) {
    if (4 * r_cap >= deal.colors[c].num_blocks()) {
      // Too tight for Theorem 8; use the deterministic Theorem 6 compactor
      // (same public branch for every color -- sizes are uniform).
      TightCompactResult tight =
          tight_compact_blocks(client, deal.colors[c], block_nonempty_pred());
      child_inputs[c] = client.alloc_blocks(5 * r_cap, Client::Init::kUninit);
      copy_blocks(client, tight.out, child_inputs[c], 0, 5 * r_cap);
      if (tight.occupied > 5 * r_cap)
        st.Update(Status::WhpFailure("color overflow after tight compaction"));
    } else {
      LooseCompactResult lc =
          loose_compact_blocks(client, deal.colors[c], r_cap,
                               block_nonempty_pred(), loose_seeds[c], ctx.opts.loose);
      st.Update(lc.status);  // loose losses are unsweepable: data is gone
      child_inputs[c] = lc.out;  // exactly 5 * r_cap blocks
    }
  }

  // --- 6. Recursion.  Only the *sort* statuses are sweepable.
  std::vector<ExtArray> child_out(colors);
  std::vector<Status> child_sort_status(colors);
  for (unsigned c = 0; c < colors; ++c) {
    child_sort_status[c] =
        sort_node(ctx, child_inputs[c], &child_out[c], child_real_bound,
                  child_seeds[c], depth + 1);
    if (!child_sort_status[c].ok()) ++ctx.stats.child_failures;
  }

  // --- 7. Level assembly + failure sweeping (fixed trace regardless of the
  // number of actual failures).
  std::uint64_t slice = 1;
  for (unsigned c = 0; c < colors; ++c) {
    slice = std::max(slice, child_out[c].num_blocks());
    slice = std::max(slice, child_inputs[c].num_blocks());
  }
  ExtArray level = client.alloc_blocks(slice * colors, Client::Init::kUninit);
  for (unsigned c = 0; c < colors; ++c)
    copy_blocks(client, child_out[c], level, c * slice, slice);

  // Sweep only at the bottom level (public size test); elsewhere child
  // failures propagate upward unchanged.
  const bool sweep_active =
      ctx.opts.sweep_slots > 0 && 5 * r_cap <= ctx.sweep_max_blocks;
  const unsigned slots = std::max(1u, ctx.opts.sweep_slots);
  std::vector<int> slot_of(colors, -1);
  unsigned failures = 0;
  for (unsigned c = 0; c < colors; ++c) {
    const bool injected =
        sweep_active && ((ctx.opts.debug_fail_children_mask >> c) & 1u) != 0;
    if (injected) {
      // Failure injection: scramble the child's output so the test can only
      // pass if the sweep actually restores it from the input.
      CacheLease lease(client.cache(), B);
      BlockBuf junk(B);
      for (std::size_t rix = 0; rix < B; ++rix) junk[rix] = {rix + 1, 0xbad};
      for (std::uint64_t i = 0; i < std::min<std::uint64_t>(slice, 8); ++i)
        client.write_block(level, c * slice + i, junk);
      child_sort_status[c].Update(Status::WhpFailure("injected"));
    }
    if (!child_sort_status[c].ok()) {
      if (sweep_active && failures < slots) slot_of[c] = static_cast<int>(failures);
      ++failures;
    }
  }
  if (failures > 0 && (!sweep_active || failures > slots))
    st.Update(Status::WhpFailure(sweep_active
                                     ? "more failed children than sweep slots"
                                     : "child failure above the sweep level"));
  if (!sweep_active) {
    if (!st.ok() && std::getenv("OBLIVEM_DEBUG") != nullptr) {
      std::fprintf(stderr, "[oblivem] sort node depth=%u n=%llu failed: %s\n", depth,
                   static_cast<unsigned long long>(n), st.message().c_str());
    }
    *out = level;
    return st;
  }

  // Sweep slots start explicitly empty (counted writes, fixed pattern).
  ExtArray sweep = client.alloc_blocks(slice * slots, Client::Init::kEmpty);
  {
    // Conditional copy-in of failed children's INPUTS (still intact), as a
    // pipeline of mixed-array steps: each step gathers the source block (when
    // the child has one -- a public size test) and the sweep slot, and
    // scatters the slot.  `mine` steers only the plaintext, never the I/O.
    run_block_pipeline(
        client, static_cast<std::uint64_t>(colors) * slots * slice,
        [&](std::uint64_t step, PipelinePass& io) {
          const unsigned c = static_cast<unsigned>(step / (slots * slice));
          const std::uint64_t rem = step % (slots * slice);
          const unsigned t = static_cast<unsigned>(rem / slice);
          const std::uint64_t i = rem % slice;
          if (i < child_inputs[c].num_blocks()) io.read(child_inputs[c], i);
          io.read(sweep, t * slice + i);
          io.write(sweep, t * slice + i);
        },
        [&](std::uint64_t step, std::span<Record> buf) {
          const unsigned c = static_cast<unsigned>(step / (slots * slice));
          const std::uint64_t rem = step % (slots * slice);
          const unsigned t = static_cast<unsigned>(rem / slice);
          const std::uint64_t i = rem % slice;
          const bool mine = slot_of[c] == static_cast<int>(t);
          const bool have_src = i < child_inputs[c].num_blocks();
          std::span<Record> out = buf.first(B);
          if (have_src) {
            // buf = [src, slot]; keep src if mine, else restore the slot.
            if (!mine)
              std::copy(buf.begin() + static_cast<std::ptrdiff_t>(B),
                        buf.begin() + static_cast<std::ptrdiff_t>(2 * B), out.begin());
          } else if (mine) {
            std::fill(out.begin(), out.end(), Record{});  // pad block
          }  // else: buf = [slot] already in place
        });
  }
  // Deterministic sort of every slot; an unused slot is all-empty and sorts
  // with an identical trace.
  for (unsigned t = 0; t < slots; ++t)
    sortnet::ext_oblivious_sort(client, sweep.slice_blocks(t * slice, slice));
  for (unsigned c = 0; c < colors; ++c)
    for (unsigned t = 0; t < slots; ++t)
      if (slot_of[c] == static_cast<int>(t)) ++ctx.stats.sweep_repairs;
  {
    // Conditional copy-back into the failed children's level slices (same
    // mixed-array pipeline shape as the copy-in).
    run_block_pipeline(
        client, static_cast<std::uint64_t>(colors) * slots * slice,
        [&](std::uint64_t step, PipelinePass& io) {
          const unsigned c = static_cast<unsigned>(step / (slots * slice));
          const std::uint64_t rem = step % (slots * slice);
          const unsigned t = static_cast<unsigned>(rem / slice);
          const std::uint64_t i = rem % slice;
          io.read(sweep, t * slice + i);
          io.read(level, c * slice + i);
          io.write(level, c * slice + i);
        },
        [&](std::uint64_t step, std::span<Record> buf) {
          const unsigned c = static_cast<unsigned>(step / (slots * slice));
          const unsigned t = static_cast<unsigned>((step % (slots * slice)) / slice);
          const bool mine = slot_of[c] == static_cast<int>(t);
          // buf = [sweep, level]; the scatter takes the first block.
          if (!mine)
            std::copy(buf.begin() + static_cast<std::ptrdiff_t>(B),
                      buf.begin() + static_cast<std::ptrdiff_t>(2 * B), buf.begin());
        });
  }

  if (!st.ok() && std::getenv("OBLIVEM_DEBUG") != nullptr) {
    std::fprintf(stderr, "[oblivem] sort node depth=%u n=%llu failed: %s\n", depth,
                 static_cast<unsigned long long>(n), st.message().c_str());
  }
  *out = level;
  return st;  // swept child failures are repaired and not propagated
}

}  // namespace

ObliviousSortResult oblivious_sort_padded(Client& client, const ExtArray& a,
                                          ExtArray* out, std::uint64_t seed,
                                          const ObliviousSortOptions& opts) {
  Ctx ctx{client, opts, {}};
  ctx.sweep_max_blocks = 4 * iroot(std::max<std::uint64_t>(a.num_blocks(), 1), 2) + 64;
  ObliviousSortResult res;
  res.status = sort_node(ctx, a, out, a.num_records(), seed, 0);
  res.stats = ctx.stats;
  return res;
}

ObliviousSortResult oblivious_sort(Client& client, const ExtArray& a,
                                   std::uint64_t seed,
                                   const ObliviousSortOptions& opts) {
  ObliviousSortResult res;
  ExtArray padded;
  res = oblivious_sort_padded(client, a, &padded, seed, opts);

  // Finish: Lemma 3 consolidation (order-preserving over the already-sorted
  // non-empty records) + Theorem 6 tight compaction, then copy back.
  ConsolidateResult cons = consolidate(client, padded, nonempty_pred());
  TightCompactResult tight =
      tight_compact_blocks(client, cons.out, block_nonempty_pred());
  if (tight.occupied > a.num_blocks())
    res.status.Update(Status::WhpFailure("records were lost or duplicated"));
  copy_blocks(client, tight.out, a, 0, a.num_blocks());
  return res;
}

}  // namespace oem::core
