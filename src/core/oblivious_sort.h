// Randomized data-oblivious external-memory sorting -- Theorem 21, the
// paper's main result: O((N/B) log_{M/B}(N/B)) I/Os, success w.h.p.
//
// Pipeline per recursion node (paper §5):
//   1. splitters: q = (M/B)^{1/4} quantiles (Theorem 17);
//   2. coloring: each record gets a color in [0, q]; records equal to a
//      splitter key are spread uniformly among the eligible colors (coin
//      tie-breaking) so duplicate-heavy inputs still balance -- the output
//      order is therefore nondecreasing by KEY (ties in arbitrary value
//      order);
//   3. multi-way consolidation into monochromatic blocks;
//   4. shuffle-and-deal: Fisher-Yates on blocks, then batched padded
//      distribution to q+1 color arrays (Lemmas 18/19);
//   5. loose compaction of each color array (Theorem 8) back to
//      5x its real content;
//   6. recursion on each color;
//   7. failure sweeping: the level always runs a fixed-trace sweep sized for
//      up to two failed children -- conditional copies of the failed
//      children's *inputs* into fixed sweep slots, a deterministic oblivious
//      sort (Lemma 2) of each slot, and conditional copy-back.  Zero
//      failures sweep empty slots with an identical trace.
//
// Recursion returns a *padded sorting* (the paper's inductive contract: an
// O(N)-size array whose non-empty cells are in nondecreasing key order);
// the public entry point finishes with Lemma 3 consolidation + Theorem 6
// tight compaction to hand back a dense sorted array.
#pragma once

#include <cstdint>

#include "core/loose_compact.h"
#include "core/quantiles.h"
#include "core/shuffle_deal.h"
#include "extmem/client.h"
#include "util/status.h"

namespace oem::core {

struct ObliviousSortOptions {
  QuantilesOptions quantiles;
  LooseCompactOptions loose;
  DealOptions deal;
  /// Multiplier on the sqrt-scale additive slack of the per-color bound
  /// (covers quantile rank error + duplicate-key spreading variance).
  double color_slack = 1.6;
  /// Children a level can repair via failure sweeping (paper: O(n^{1/4});
  /// two is plenty at our whp rates and keeps the sweep linear).
  unsigned sweep_slots = 2;
  /// Depth guard; beyond it the deterministic sort finishes the job.
  unsigned max_depth = 24;
  /// Fall back to the deterministic Lemma 2 sort when n <= base_factor * m
  /// or (M/B)^4 >= N/B (the paper's dense regime).
  std::uint64_t min_recursive_blocks = 0;  // 0 = auto: 4 * m
  /// The paper's dense-regime rule: recursion only engages when
  /// (M/B)^4 < N/B.  At laboratory scale that regime is unreachable, so the
  /// shape benches disable the rule (recursion then engages whenever
  /// n > min_recursive_blocks and q >= 2).
  bool paper_dense_rule = true;
  /// Force the sparse quantile pipeline inside recursion (see
  /// QuantilesOptions::force_sparse).
  bool sparse_quantiles = false;
  /// Failure injection for tests: at sweep-active levels, children whose
  /// index bit is set here are treated as failed sorts even when they
  /// succeeded, forcing the failure-sweeping machinery to repair them.
  unsigned debug_fail_children_mask = 0;
};

struct SortStats {
  unsigned levels = 0;            // deepest recursion level reached
  std::uint64_t nodes = 0;        // recursion nodes executed
  std::uint64_t det_sort_nodes = 0;  // nodes resolved by Lemma 2 / in-cache sort
  std::uint64_t sweep_repairs = 0;   // children repaired by failure sweeping
  std::uint64_t child_failures = 0;  // child statuses that arrived non-ok
  std::uint64_t quantile_tails = 0;  // quantile whp-tail events (harmless unless
                                     // they cause a capacity overflow downstream)
};

struct ObliviousSortResult {
  Status status;
  SortStats stats;
};

/// Theorem 21.  Sorts `a` in place: afterwards the non-empty records of `a`
/// are in nondecreasing key order, followed by the empty cells.  The trace
/// depends only on (n, M, B, seed).  On WhpFailure the array contents are
/// unspecified; retry with a different seed.
ObliviousSortResult oblivious_sort(Client& client, const ExtArray& a,
                                   std::uint64_t seed,
                                   const ObliviousSortOptions& opts = {});

/// The recursive core: produces a *padded sorting* of `a` into a freshly
/// allocated array (size is a deterministic function of a.num_blocks()).
/// Exposed for tests and the ORAM reshuffle.
ObliviousSortResult oblivious_sort_padded(Client& client, const ExtArray& a,
                                          ExtArray* out, std::uint64_t seed,
                                          const ObliviousSortOptions& opts = {});

}  // namespace oem::core
