#include "core/quantiles.h"

#include <algorithm>
#include <cmath>

#include "core/consolidate.h"
#include "sortnet/external_sort.h"
#include "util/math.h"

namespace oem::core {

namespace {
constexpr Record kMinusInf{0, 0};
constexpr Record kPlusInf{kEmptyKey - 1, kEmptyKey};
}  // namespace

std::vector<std::uint64_t> quantile_ranks(std::uint64_t N, std::uint64_t q) {
  std::vector<std::uint64_t> ranks(q);
  for (std::uint64_t j = 1; j <= q; ++j) {
    std::uint64_t r = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(j) * static_cast<double>(N) /
                     static_cast<double>(q + 1)));
    ranks[j - 1] = std::clamp<std::uint64_t>(r, 1, N);
  }
  return ranks;
}

QuantilesResult oblivious_quantiles(Client& client, const ExtArray& a, std::uint64_t q,
                                    std::uint64_t seed, const QuantilesOptions& opts) {
  QuantilesResult res;
  const std::uint64_t N =
      opts.real_records != 0 ? opts.real_records : a.num_records();
  const std::size_t B = client.B();
  if (q == 0 || q + 1 > N) {
    res.status = Status::InvalidArgument("need 1 <= q and q+1 <= N");
    return res;
  }
  rng::Xoshiro coins(seed ^ 0x9ca17e5ULL);
  const std::vector<std::uint64_t> targets = quantile_ranks(N, q);

  // --- Dense case: (M/B)^4 > N/B, or simply small N -- sort and scan.
  const std::uint64_t n_blocks = a.num_blocks();
  const std::uint64_t m = client.m();
  const std::uint64_t base_cap =
      opts.base_case_records != 0 ? opts.base_case_records : client.M() / 2;
  // Branch on public parameters only (capacity, never the private count).
  if (!opts.force_sparse &&
      (m * m * m * m > n_blocks || a.num_records() <= base_cap)) {
    // Scratch copy so the caller's array is untouched.
    ExtArray scratch = client.alloc_blocks(n_blocks, Client::Init::kUninit);
    {
      CacheLease lease(client.cache(), B);
      BlockBuf blk;
      for (std::uint64_t i = 0; i < n_blocks; ++i) {
        client.read_block(a, i, blk);
        client.write_block(scratch, i, blk);
      }
    }
    sortnet::ext_oblivious_sort(client, scratch);
    res.quantiles.assign(q, Record{});
    CacheLease lease(client.cache(), B + q);
    BlockBuf blk;
    std::uint64_t seen = 0;
    for (std::uint64_t b = 0; b < scratch.num_blocks(); ++b) {
      client.read_block(scratch, b, blk);
      for (const Record& r : blk) {
        if (r.is_empty()) continue;
        ++seen;
        for (std::uint64_t j = 0; j < q; ++j)
          if (targets[j] == seen) res.quantiles[j] = r;
      }
    }
    res.status = Status::Ok();
    return res;
  }

  const double dN = static_cast<double>(N);
  const double p = std::pow(dN, -0.25);
  const double n34 = std::pow(dN, 0.75);
  const double n12 = std::sqrt(dN);
  // Sample-rank slack: the paper's sqrt(N) or the Chernoff c*sqrt(Np).
  const double rank_slack =
      opts.paper_intervals ? n12
                           : std::ceil(opts.chernoff_c * std::sqrt(dN * p)) + 2.0;

  // --- Step 1: sample -> consolidate -> Theorem 4 -> sort.
  const std::uint64_t c_cap = static_cast<std::uint64_t>(
      std::ceil(n34 + opts.sample_slack * rank_slack));
  std::uint64_t sample_count = 0;
  ConsolidateResult cons = consolidate(
      client, a, [&](std::uint64_t, const Record& r) {
        const bool coin = coins.bernoulli(p);
        const bool d = coin && !r.is_empty();
        if (d) ++sample_count;
        return d;
      });
  const std::uint64_t c_blocks = ceil_div(c_cap, B) + 1;
  SparseCompactResult csc =
      sparse_compact_blocks(client, cons.out, c_blocks, block_nonempty_pred(),
                            seed ^ 0x9a11ULL, opts.sparse);
  res.status.Update(csc.status);
  if (sample_count > c_cap)
    res.status.Update(Status::WhpFailure("sample overflow (Lemma 14 tail)"));
  sortnet::ext_oblivious_sort(client, csc.out);

  // --- Step 2: interval endpoints from sample ranks.
  // x_j at sample rank nhat*j/(q+1) - sqrt(N); y_j at
  // |C| - (nhat - nhat*j/(q+1) - 2 sqrt(N)), with nhat = N^{3/4} (paper).
  std::vector<std::int64_t> lo_rank(q), hi_rank(q);
  for (std::uint64_t j = 1; j <= q; ++j) {
    const double frac = n34 * static_cast<double>(j) / static_cast<double>(q + 1);
    if (opts.paper_intervals) {
      lo_rank[j - 1] = static_cast<std::int64_t>(std::floor(frac - n12));
      hi_rank[j - 1] = static_cast<std::int64_t>(sample_count) -
                       static_cast<std::int64_t>(std::floor(n34 - frac - 2.0 * n12));
    } else {
      lo_rank[j - 1] = static_cast<std::int64_t>(std::floor(frac - rank_slack));
      hi_rank[j - 1] = static_cast<std::int64_t>(std::ceil(frac + rank_slack));
    }
  }
  // Capture all endpoint records in one scan of C (2q ranks, private).
  std::vector<Record> xs(q, kMinusInf), ys(q, kPlusInf);
  {
    CacheLease lease(client.cache(), B + 4 * q);
    BlockBuf blk;
    std::uint64_t seen = 0;
    for (std::uint64_t b = 0; b < csc.out.num_blocks(); ++b) {
      client.read_block(csc.out, b, blk);
      for (const Record& r : blk) {
        if (r.is_empty()) continue;
        ++seen;
        for (std::uint64_t j = 0; j < q; ++j) {
          if (lo_rank[j] >= 1 && static_cast<std::uint64_t>(lo_rank[j]) == seen)
            xs[j] = r;
          if (hi_rank[j] >= 1 && static_cast<std::uint64_t>(hi_rank[j]) == seen)
            ys[j] = r;
        }
      }
    }
  }
  // Endpoints whose formula rank falls off the sample default to +-inf,
  // which subsumes the paper's "x_1 = smallest / y_q = largest" convention
  // (reading the exceptions literally would make the first interval cover
  // everything below quantile 1, contradicting Lemma 15's width bound).
  for (std::uint64_t j = 0; j < q; ++j) {
    if (lo_rank[j] < 1) xs[j] = kMinusInf;
    if (hi_rank[j] < 1 || static_cast<std::uint64_t>(hi_rank[j]) > sample_count)
      ys[j] = kPlusInf;
  }

  // --- Step 3: merge the (possibly overlapping -- at small N the slack is
  // a sizable fraction of the sample) intervals into disjoint SEGMENTS, all
  // privately.  seg_of[j] records which segment absorbed interval j.
  const std::uint64_t interval_cap = std::min<std::uint64_t>(
      N, static_cast<std::uint64_t>(std::ceil(
             opts.paper_intervals
                 ? opts.interval_factor * n34
                 // Interval spans ~2*rank_slack sample gaps of expected
                 // width 1/p; 3*slack + 8 leaves room for gap-width
                 // deviation (Lemma 15's margin, Chernoff-sized).
                 : (3.0 * rank_slack + 8.0) / p)));
  struct Segment {
    Record lo, hi;
    std::uint64_t merged = 0;  // how many intervals it absorbed
  };
  std::vector<Segment> segs;
  std::vector<std::size_t> seg_of(q);
  {
    std::vector<std::size_t> order(q);
    for (std::size_t j = 0; j < q; ++j) order[j] = j;
    std::sort(order.begin(), order.end(), [&](std::size_t a1, std::size_t b1) {
      return RecordLess{}(xs[a1], xs[b1]);
    });
    for (std::size_t j : order) {
      if (!segs.empty() && !RecordLess{}(segs.back().hi, xs[j])) {
        // Overlaps or touches the previous segment: merge.
        if (RecordLess{}(segs.back().hi, ys[j])) segs.back().hi = ys[j];
        segs.back().merged++;
      } else {
        segs.push_back({xs[j], ys[j], 1});
      }
      seg_of[j] = segs.size() - 1;
    }
  }
  const std::size_t S = segs.size();

  // Tag scan: shadow record = {key: original key, 0} for records inside any
  // segment (the union D), empty otherwise.  Privately count, per segment,
  // the records inside it and the records *outside every segment* below its
  // start (below_outside): the j-th quantile's rank within sorted D is then
  // exactly targets[j] - below_outside[seg_of[j]].
  std::vector<std::uint64_t> seg_in(S, 0), below_outside(S, 0);
  ExtArray shadow = client.alloc_blocks(n_blocks, Client::Init::kUninit);
  {
    CacheLease lease(client.cache(), 2 * B + 2 * q);
    BlockBuf blk, out(B);
    for (std::uint64_t i = 0; i < n_blocks; ++i) {
      client.read_block(a, i, blk);
      for (std::size_t rix = 0; rix < B; ++rix) {
        const Record& r = blk[rix];
        Record sh{};  // empty unless tagged
        if (!r.is_empty()) {
          bool inside = false;
          for (std::size_t s = 0; s < S; ++s) {
            if (!RecordLess{}(r, segs[s].lo) && !RecordLess{}(segs[s].hi, r)) {
              inside = true;
              ++seg_in[s];
              sh = Record{r.key, 0};
              break;  // segments are disjoint
            }
          }
          if (!inside) {
            for (std::size_t s = 0; s < S; ++s)
              if (RecordLess{}(r, segs[s].lo)) ++below_outside[s];
          }
        }
        out[rix] = sh;
      }
      client.write_block(shadow, i, out);
    }
  }
  for (std::size_t s = 0; s < S; ++s)
    if (seg_in[s] > segs[s].merged * interval_cap)
      res.status.Update(Status::WhpFailure("interval overflow (Lemma 15 tail)"));

  ConsolidateResult scons = consolidate(client, shadow, nonempty_pred());
  const std::uint64_t d_cap = std::min<std::uint64_t>(N, q * interval_cap);
  const std::uint64_t d_blocks = ceil_div(d_cap, B) + 1;
  SparseCompactResult dsc =
      sparse_compact_blocks(client, scons.out, d_blocks, block_nonempty_pred(),
                            seed ^ 0xd15cULL, opts.sparse);
  res.status.Update(dsc.status);
  if (dsc.distinguished * B > d_cap + B)
    res.status.Update(Status::WhpFailure("union overflow (Lemma 15 tail)"));
  sortnet::ext_oblivious_sort(client, dsc.out);  // by key

  // --- Step 4: private rank arithmetic + one capture scan over sorted D.
  // Every record below the j-th quantile is either in D below it or counted
  // in below_outside[seg_of[j]] (it cannot sit between the segment start and
  // the quantile -- that region is inside the segment, hence in D).
  std::vector<std::uint64_t> seg_prefix(S + 1, 0);
  for (std::size_t s = 0; s < S; ++s) seg_prefix[s + 1] = seg_prefix[s] + seg_in[s];
  std::vector<std::uint64_t> want(q, 0);
  for (std::uint64_t j = 0; j < q; ++j) {
    const std::uint64_t t = targets[j];
    const std::size_t s = seg_of[j];
    const std::uint64_t below = below_outside[s];
    // The rank formula is valid only if the quantile actually fell inside
    // its own segment: its D-rank must land within the segment's D-range.
    if (t <= below || t - below <= seg_prefix[s] || t - below > seg_prefix[s + 1]) {
      res.status.Update(
          Status::WhpFailure("quantile escaped its interval (Lemma 16 tail)"));
    } else {
      want[j] = t - below;
    }
  }
  res.quantiles.assign(q, Record{});
  {
    CacheLease lease(client.cache(), B + 2 * q);
    BlockBuf blk;
    std::uint64_t seen = 0;
    for (std::uint64_t b = 0; b < dsc.out.num_blocks(); ++b) {
      client.read_block(dsc.out, b, blk);
      for (const Record& r : blk) {
        if (r.is_empty()) continue;
        ++seen;
        for (std::uint64_t j = 0; j < q; ++j)
          if (want[j] == seen) res.quantiles[j] = Record{r.key, 0};
      }
    }
  }
  return res;
}

}  // namespace oem::core
