#include "core/select.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/consolidate.h"
#include "sortnet/external_sort.h"
#include "util/math.h"

namespace oem::core {

namespace {

constexpr Record kMinusInf{0, 0};
constexpr Record kPlusInf{kEmptyKey - 1, kEmptyKey};

/// Scan an array of records (empties ignored) and capture the records at the
/// given 1-based ranks (which must be sorted ascending).  Rank 0 entries are
/// skipped.  One pass; the trace depends only on the array size.
void capture_ranks(Client& client, const ExtArray& a,
                   const std::vector<std::uint64_t>& ranks, std::vector<Record>& out) {
  out.assign(ranks.size(), Record{});
  CacheLease lease(client.cache(), client.B());
  BlockBuf blk;
  std::uint64_t seen = 0;
  for (std::uint64_t b = 0; b < a.num_blocks(); ++b) {
    client.read_block(a, b, blk);
    for (const Record& r : blk) {
      if (r.is_empty()) continue;
      ++seen;
      for (std::size_t i = 0; i < ranks.size(); ++i)
        if (ranks[i] == seen) out[i] = r;
    }
  }
}

}  // namespace

SelectResult oblivious_select(Client& client, const ExtArray& a, std::uint64_t k,
                              std::uint64_t seed, const SelectOptions& opts) {
  SelectResult res;
  const std::uint64_t N = a.num_records();
  const std::size_t B = client.B();
  if (N == 0 || k == 0 || k > N) {
    res.status = Status::InvalidArgument("rank k out of range");
    return res;
  }
  rng::Xoshiro coins(seed ^ 0x5e1ec7ULL);

  // Base case: the array fits in private memory; one scan.
  const std::uint64_t base_cap =
      opts.base_case_records != 0 ? opts.base_case_records : client.M() / 2;
  if (N <= base_cap) {
    CacheLease lease(client.cache(), N + B);
    std::vector<Record> all;
    all.reserve(N);
    BlockBuf blk;
    for (std::uint64_t b = 0; b < a.num_blocks(); ++b) {
      client.read_block(a, b, blk);
      for (const Record& r : blk)
        if (!r.is_empty() && all.size() < N) all.push_back(r);
    }
    std::nth_element(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     all.end(), RecordLess{});
    res.value = all[k - 1];
    res.status = Status::Ok();
    return res;
  }

  const double dN = static_cast<double>(N);
  const double p = std::pow(dN, -opts.sample_exponent);
  const double expected_sample = dN * p;
  const double n38 = std::pow(dN, 3.0 / 8.0);
  // Sample-rank slack: the paper's N^{3/8} in paper_band mode, a Chernoff
  // c*sqrt(Np) otherwise.
  const double rank_slack = opts.paper_band
                                ? n38
                                : std::ceil(opts.chernoff_c * std::sqrt(expected_sample)) + 2.0;

  // --- Phase 1: Bernoulli(N^{-e}) sample -> consolidate -> Theorem 4 -> sort.
  const std::uint64_t sample_cap = static_cast<std::uint64_t>(
      std::ceil(expected_sample + opts.sample_slack * rank_slack));
  ConsolidateResult cons = consolidate(
      client, a, [&](std::uint64_t, const Record& r) {
        const bool coin = coins.bernoulli(p);  // drawn for every record
        return coin && !r.is_empty();
      });
  const std::uint64_t sample_count = cons.distinguished;
  const std::uint64_t c_blocks = ceil_div(sample_cap, B) + 1;
  SparseCompactResult csc =
      sparse_compact_blocks(client, cons.out, c_blocks, block_nonempty_pred(),
                            seed ^ 0xc0ffee1ULL, opts.sparse);
  res.status.Update(csc.status);
  if (sample_count > sample_cap)
    res.status.Update(Status::WhpFailure("sample overflow (Lemma 10 tail)"));
  sortnet::ext_oblivious_sort(client, csc.out);

  // --- Phase 2: bracketing range [x, y] from sample ranks (Lemma 11).
  // When the back-rank formula goes negative, the paper's y' "does not
  // exist" and y falls back to the global maximum -- do NOT clamp, or y'
  // becomes the sample maximum, which can sit below the k-th element.
  const double dk = static_cast<double>(k);
  const std::int64_t lo_rank_s =
      static_cast<std::int64_t>(std::ceil(dk * p - rank_slack));
  const std::int64_t hi_back = static_cast<std::int64_t>(
      std::ceil((dN - dk) * p - 2.0 * rank_slack));
  const std::int64_t hi_rank_s = static_cast<std::int64_t>(sample_count) - hi_back;

  std::vector<std::uint64_t> want = {
      lo_rank_s >= 1 && lo_rank_s <= static_cast<std::int64_t>(sample_count)
          ? static_cast<std::uint64_t>(lo_rank_s)
          : 0,
      hi_rank_s >= 1 && hi_rank_s <= static_cast<std::int64_t>(sample_count)
          ? static_cast<std::uint64_t>(hi_rank_s)
          : 0};
  std::vector<Record> got;
  capture_ranks(client, csc.out, want, got);
  Record x = want[0] != 0 ? got[0] : kMinusInf;
  Record y = want[1] != 0 ? got[1] : kPlusInf;

  // Global min/max scan (the paper's x'' / y'') so the bracket always covers
  // the extremes when the sample ranks fall off either end.
  {
    CacheLease lease(client.cache(), B);
    BlockBuf blk;
    Record mn = kPlusInf, mx = kMinusInf;
    for (std::uint64_t b = 0; b < a.num_blocks(); ++b) {
      client.read_block(a, b, blk);
      for (const Record& r : blk) {
        if (r.is_empty()) continue;
        if (RecordLess{}(r, mn)) mn = r;
        if (RecordLess{}(mx, r)) mx = r;
      }
    }
    if (RecordLess{}(x, mn)) x = mn;  // x = max(x', x'')
    if (RecordLess{}(mx, y)) y = mx;  // y = min(y', y'')
  }

  // --- Phase 3: band scan, compaction, final select.
  // Band capacity: the paper's 8 N^{7/8} (Lemma 11), or the Chernoff form
  // (2*rank_slack + 4) sample gaps of expected width 1/p.
  const std::uint64_t band_cap = std::min<std::uint64_t>(
      N, static_cast<std::uint64_t>(std::ceil(
             opts.paper_band
                 ? opts.band_factor * std::pow(dN, 7.0 / 8.0)
                 // The band spans ~3*rank_slack sample gaps (slack below x,
                 // 2*slack above y, as in the paper's rank formulas) of
                 // expected width 1/p each; 4*slack + 8 leaves gap-width
                 // deviation room.
                 : (4.0 * rank_slack + 8.0) / p)));
  std::uint64_t count_lt = 0, count_band = 0;
  ConsolidateResult band = consolidate(
      client, a, [&](std::uint64_t, const Record& r) {
        if (r.is_empty()) return false;
        if (RecordLess{}(r, x)) {
          ++count_lt;
          return false;
        }
        const bool in_band = !RecordLess{}(y, r);  // x <= r <= y
        if (in_band) ++count_band;
        return in_band;
      });
  if (count_band > band_cap)
    res.status.Update(Status::WhpFailure("band overflow (Lemma 11 tail)"));

  const std::uint64_t d_blocks = ceil_div(band_cap, B) + 1;
  SparseCompactResult dsc =
      sparse_compact_blocks(client, band.out, d_blocks, block_nonempty_pred(),
                            seed ^ 0xdecade2ULL, opts.sparse);
  res.status.Update(dsc.status);
  sortnet::ext_oblivious_sort(client, dsc.out);

  // 1-based rank within the band; 0 signals "escaped below x" (failure).
  const std::uint64_t target = count_lt < k ? k - count_lt : 0;
  if (target == 0 || target > count_band) {
    res.status.Update(Status::WhpFailure("k-th element escaped the band"));
  }
  std::vector<Record> answer;
  capture_ranks(client, dsc.out, {target == 0 ? std::uint64_t{0} : target}, answer);
  res.value = answer[0];
  return res;
}

}  // namespace oem::core
