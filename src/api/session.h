// oem::Session -- the public facade of the library.
//
// A Session is Alice's end-to-end view of the protocol: it owns the client
// (private cache, encryption, PRG) and the outsourced storage behind it, and
// exposes the paper's algorithms as typed entry points returning Result<T>.
// Callers never touch Client/BlockDevice internals:
//
//   auto built = oem::Session::Builder()
//                    .block_records(8)        // B
//                    .cache_records(512)      // M
//                    .file_backed()           // or .in_memory() / .latency(...)
//                    .build();
//   if (!built.ok()) { ... built.status() ... }
//   oem::Session session = std::move(built).value();
//   auto data = session.outsource(records);
//   auto report = session.sort(*data);
//   auto sorted = session.retrieve(*data);
//
// Layering: api (this file) -> core (the paper's algorithms) -> extmem
// (client/device/trace) -> StorageBackend (mem / file / latency).  The trace
// Bob observes is a function of (algorithm, N, M, B, seed) only -- never of
// the data and never of the storage backend.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/oblivious_sort.h"
#include "core/quantiles.h"
#include "core/select.h"
#include "extmem/client.h"
#include "extmem/io_engine.h"
#include "oram/sqrt_oram.h"
#include "util/status.h"

namespace oem {

struct SortReport {
  core::SortStats stats;
  std::uint64_t ios = 0;  // block I/Os spent by this call
};

struct CompactReport {
  /// The kept records sit densely, in order, in the prefix of `out`; the
  /// extent spans the full n+1-block allocation so Session::discard(out)
  /// reclaims the storage.
  ExtArray out;
  std::uint64_t kept = 0;    // non-empty records compacted
  std::uint64_t ios = 0;
};

/// Handle to a square-root ORAM opened through a Session.
class Oram {
 public:
  Result<std::uint64_t> access(std::uint64_t index);
  std::uint64_t expected_value(std::uint64_t index) const;
  const oram::SqrtOramStats& stats() const { return impl_->stats(); }
  std::uint64_t epoch_length() const { return impl_->epoch_length(); }

 private:
  friend class Session;
  explicit Oram(std::unique_ptr<oram::SqrtOram> impl) : impl_(std::move(impl)) {}
  std::unique_ptr<oram::SqrtOram> impl_;
};

class Session {
 public:
  class Builder {
   public:
    Builder& block_records(std::size_t b);     // B
    Builder& cache_records(std::uint64_t m);   // M
    Builder& seed(std::uint64_t s);
    Builder& strict_cache(bool on);
    /// Batch window for coalesced I/O (blocks); 0 = auto, 1 = per-block.
    Builder& io_batch_blocks(std::uint64_t blocks);
    /// Storage selection; the last call wins.  Default is in_memory().
    Builder& in_memory();
    Builder& file_backed(FileBackendOptions opts = {});
    Builder& backend(BackendFactory factory);
    /// With file_backed() storage, use the kernel-async O_DIRECT engine
    /// (DirectFileBackend on io_uring) instead of blocking pread/pwrite --
    /// with graceful per-instance fallback to the threaded path when the
    /// kernel or filesystem refuses (see DirectFileBackend).  Sharded
    /// sessions get one ring per shard (per-shard ".shard<i>" paths, like
    /// plain file_backed()).  Rejected at build() with any other storage:
    /// mem/remote/custom stores have no file to open directly.
    Builder& direct_io(bool on = true);
    /// Outsource the blocks to a RemoteServer (extmem/remote.h) over
    /// loopback/LAN TCP -- the paper's Bob as a real process boundary.
    /// Every build() draws a fresh private namespace of server store ids
    /// (store id = namespace | shard, one store and one connection per
    /// shard), so concurrent Sessions against one server never alias each
    /// other's blocks.  Combining remote() with any other storage selection
    /// (in_memory()/file_backed()/backend()) is rejected at build(): where
    /// the server keeps the bytes is the server's choice
    /// (RemoteServerOptions::store_factory), not the client's.  A dropped
    /// connection surfaces as StatusCode::kIo and is retried by reconnect
    /// under io_retries().
    Builder& remote(const std::string& host, std::uint16_t port);
    /// In-flight window ring size for the hot-loop pipeline (1 = strictly
    /// sequential windows, 2 = double buffer, default).  With remote() +
    /// async_prefetch(), depth K amortizes the wire round trip across K
    /// windows (the AsyncBackend streams frames on the split-phase remote
    /// connection) -- and sharded(k), fault_injection() and cache() forward
    /// the split-phase seam, so striping MULTIPLIES with depth: sharded(S)
    /// at depth K keeps S x K frames on the wire (one connection per
    /// shard, each carrying its own in-flight window).  Depth is a public
    /// scheduling parameter: the recorded trace is a function of
    /// (algorithm, N, M, B, seed, depth), never of data.
    Builder& pipeline_depth(std::size_t k);
    /// Compute-plane lanes (master + n-1 workers) for block crypto and the
    /// chunk-parallel pipeline passes; 0 and 1 both mean serial (the
    /// default), larger n fans pure per-chunk work out across a persistent
    /// worker pool.  Legal range 1..256 (0 is accepted as 1).  Orthogonal to
    /// pipeline_depth(): depth overlaps COMPUTE WITH I/O across windows,
    /// compute_threads splits ONE window's compute across cores -- combine
    /// them freely (e.g. depth 4 x 4 threads keeps the wire and every core
    /// busy at once).  Like depth, a public scheduling parameter: nonces are
    /// drawn and trace/stat events recorded on the master thread in program
    /// order, so the device trace and every ciphertext byte are identical at
    /// any thread count -- only wall time changes.
    Builder& compute_threads(std::size_t n);
    /// Re-encrypt blocks at the backend seam (EncryptedBackend, fresh nonce
    /// per write) so the store below -- in particular a remote server --
    /// only ever holds ciphertext of this session's making, even for raw
    /// uploads.  Defense in depth under the Client's own encryption.
    /// `authenticated` adds a per-block MAC + client-side version table at
    /// this seam too (block format [nonce][mac][cipher]): mutations and
    /// rollbacks below surface as StatusCode::kIntegrity, which RetryPolicy
    /// never retries -- the session fails closed.
    Builder& encrypted(Word key, bool authenticated = false);
    /// LRU write-back block cache of `blocks` blocks (CachingBackend):
    /// re-touched reads are served client-side, writes are absorbed and
    /// reach the store below only on eviction (dirty neighbors coalesced
    /// into one batched write-back).  Needs blocks >= 1 -- cache(0) is
    /// rejected at build() (drop the call to disable).  The recorded trace
    /// is untouched (the device records above the cache); only the traffic
    /// that still reaches the wire shrinks, a function of the
    /// data-independent block-id sequence alone.
    ///
    /// The legal decorator stack, outermost first -- build() composes
    /// exactly this order and rejects combinations that would break it:
    ///
    ///   async_prefetch          (outermost: the device drives submission)
    ///     cache                 (above latency/sharding/encryption: a hit
    ///                            costs no round trip, and the cache holds
    ///                            each PLAINTEXT block exactly once -- an
    ///                            encryption layer above the cache is
    ///                            rejected at build()/health())
    ///       latency             (the simulated wire)
    ///         sharded           (striping; forwards split-phase, so depth
    ///                            and striping multiply on a remote store)
    ///           fault_injection (per-shard failures)
    ///             encrypted     (per-shard ciphertext seam)
    ///               tampering   (the malicious server, mutating what the
    ///                            base store serves -- innermost, so the
    ///                            crypto above it is what must catch it)
    ///                 mem | file | backend(...) | remote  (the base store)
    Builder& cache(std::size_t blocks);
    /// Attach this session's cache layer to a cache SHARED with other
    /// sessions (make_shared_cache in extmem/io_engine.h): one scan-resistant
    /// slab of capacity_blocks behind N sessions, internally synchronized,
    /// with per-session hit/miss/admission stats (Session::cache_stats()).
    /// The multi-session oem-server workload uses this so K concurrent
    /// clients share one memory budget instead of K private ones.  Each
    /// session's blocks live in a private key namespace -- sharing the slab
    /// never shares (or leaks) data between sessions.  Mutually exclusive
    /// with cache(); all sharing sessions must use the same block geometry
    /// (B and encryption mode), checked at build().
    Builder& shared_cache(SharedCacheHandle core);
    /// Wrap the (possibly striped) store in a LatencyBackend.  With
    /// sharding, the profile's `lanes` is set to the shard count: the
    /// parallel-disk model, where striping divides streaming time but not
    /// the round trip, so simulated delays to different shards overlap.
    Builder& latency(LatencyProfile profile);
    /// Stripe blocks round-robin over k independent stores with parallel
    /// batch dispatch (k = 1 disables).  File-backed sessions with an
    /// explicit path get per-shard ".shard<i>" files; custom factories are
    /// invoked once per shard and must yield independent stores.
    Builder& sharded(std::size_t k);
    /// Overlap storage I/O with computation: algorithms prefetch the next
    /// I/O window through an AsyncBackend while the current one computes.
    /// Never changes the recorded trace -- only when the bytes move.
    Builder& async_prefetch(bool on = true);
    /// Inject deterministic, seed-reproducible storage faults: each shard's
    /// base store is wrapped in a FaultyBackend (distinct per-shard sub-seed
    /// derived from `seed`) failing ops with probability `rate`, and the
    /// device gets a bounded retry policy (io_retries below).  Fault firing
    /// and recovery are invisible in the recorded trace; an unrecovered
    /// failure surfaces as StatusCode::kIo through Result<T>.  rate = 0
    /// disables.  Fine-grained control (fail-N, slow shards): pass a profile.
    Builder& fault_injection(std::uint64_t seed, double rate);
    Builder& fault_injection(FaultProfile profile);
    /// Simulate a MALICIOUS server (TamperingBackend): each shard's base
    /// store is wrapped innermost -- under the encryption/authentication
    /// seam -- with a distinct per-shard sub-seed, mutating served blocks
    /// and silently dropping writes with probability `rate`.  Every mounted
    /// attack is either harmless (the run completes with identical output)
    /// or surfaces as StatusCode::kIntegrity through Result<T>; never a
    /// silent wrong answer, and never a retry.  rate = 0 disables.
    /// Fine-grained control (which attacks to mount): pass a profile.
    Builder& tampering(std::uint64_t seed, double rate);
    Builder& tampering(TamperProfile profile);
    /// Total attempts per backend call before kIo surfaces (default 4 when
    /// fault injection is on, else 1 = no retry).  With fault_injection()
    /// UNDER sharded(k), one batch touches up to k independently-faulted
    /// shards and each attempt re-rolls the shards that already recovered,
    /// so budget the worst case at roughly k + a few -- e.g. io_retries(8)
    /// for sharded(4) -- where the single-shard default of 4 suffices.
    Builder& io_retries(unsigned attempts);
    /// Durable freshness: persist the anti-rollback version table (plus the
    /// nonce counter, the remote store namespace and a Merkle root over the
    /// table) to `p`, sealed with a MAC under the session key and a
    /// monotonic generation counter -- written temp+fsync+rename, so the
    /// visible file is always a complete snapshot.  build() reloads it: a
    /// missing file bootstraps fresh (first run), an existing-but-corrupt
    /// or wrong-key file FAILS CLOSED with kIntegrity, and a restarted
    /// session keeps detecting rollback staged while it was down.  Persist
    /// explicitly with Session::persist_freshness(); the session destructor
    /// also saves best-effort.  See docs/THREAT_MODEL.md.
    Builder& state_path(const std::string& p);
    /// Per-frame wire deadline (ms) for remote() storage: a dead or
    /// byzantine-slow server surfaces as retryable StatusCode::kTimeout
    /// (connection torn down, next attempt reconnects under io_retries())
    /// instead of hanging the session.  0 = no deadline (the default).
    /// Rejected at build() without remote().
    Builder& io_deadline_ms(std::uint64_t ms);
    /// Pre-shared key authenticating the HELLO/PING control frames with
    /// remote() storage (both ends default to key 0, which still fails
    /// closed on mismatch -- see RemoteBackendOptions::auth_key).  Rejected
    /// at build() without remote().
    Builder& wire_auth(Word key);

    /// Validates parameters (kInvalidArgument) and opens the backend (kIo).
    Result<Session> build() const;

   private:
    enum class Storage { kMem, kFile, kCustom, kRemote };

    ClientParams params_;
    Storage storage_ = Storage::kMem;
    FileBackendOptions file_opts_;
    BackendFactory custom_;
    bool local_storage_seen_ = false;  // explicit in_memory/file_backed/backend
    bool remote_seen_ = false;
    std::string remote_host_;
    std::uint16_t remote_port_ = 0;
    bool wrap_latency_ = false;
    LatencyProfile profile_;
    std::size_t shards_ = 1;
    bool prefetch_ = false;
    bool inject_faults_ = false;
    FaultProfile fault_profile_;
    bool tamper_ = false;
    TamperProfile tamper_profile_;
    bool encrypted_ = false;
    bool encrypted_auth_ = false;
    Word encryption_key_ = 0;
    bool cache_seen_ = false;
    std::size_t cache_blocks_ = 0;
    SharedCacheHandle shared_cache_;
    bool direct_io_ = false;
    unsigned io_retries_ = 0;  // 0 = auto (4 with faults, else 1)
    std::uint64_t io_deadline_ms_ = 0;  // 0 = no wire deadline
    bool wire_auth_seen_ = false;
    Word wire_auth_key_ = 0;
  };

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  // --- data management ---

  /// Upload records into a fresh outsourced array (uncounted setup path:
  /// Alice encrypts and ships her input once).
  Result<ExtArray> outsource(std::span<const Record> records);
  /// Download and decrypt an array (uncounted; the analyst's own copy).
  Result<std::vector<Record>> retrieve(const ExtArray& a) const;
  /// Release a scratch/result array (stack discipline).
  Status discard(const ExtArray& a);
  /// Bob's view of one block: the raw ciphertext words.
  Result<std::vector<Word>> raw_block(const ExtArray& a, std::uint64_t i) const;

  // --- the paper's algorithms, typed ---
  // seed = 0 draws a fresh deterministic per-call seed from the session seed.

  /// Theorem 21: in-place randomized oblivious sort by key.  The core sort
  /// allocates scratch append-only in the device arena; when the call
  /// returns, that scratch is recorded as discarded, and compact_arena()
  /// releases it back to the backend -- a service sorting indefinitely
  /// should call compact_arena() between batches of work.
  Result<SortReport> sort(const ExtArray& a, std::uint64_t seed = 0,
                          const core::ObliviousSortOptions& opts = {});
  /// Theorem 13: k-th smallest record (1-based rank, all records non-empty).
  Result<Record> select(const ExtArray& a, std::uint64_t k, std::uint64_t seed = 0,
                        const core::SelectOptions& opts = {});
  /// Theorem 17: the q quantiles (all records non-empty).
  Result<std::vector<Record>> quantiles(const ExtArray& a, std::uint64_t q,
                                        std::uint64_t seed = 0,
                                        const core::QuantilesOptions& opts = {});
  /// Lemma 3 + Theorem 6: dense order-preserving compaction of the non-empty
  /// records of `a` into a fresh array.
  Result<CompactReport> compact(const ExtArray& a);
  /// §1 application: square-root ORAM over n_items, reshuffled by either
  /// sort.  The Oram borrows this Session's client: keep the Session alive
  /// and do not run other algorithms between accesses of a strict trace.
  Result<Oram> open_oram(std::uint64_t n_items, oram::ShuffleKind kind,
                         std::uint64_t seed = 0);

  // --- introspection (what Bob saw) ---

  const IoStats& stats() const { return client_->stats(); }
  void reset_stats() { client_->reset_stats(); }
  TraceRecorder& trace() { return client_->device().trace(); }
  const TraceRecorder& trace() const { return client_->device().trace(); }
  const char* backend_name() const { return client_->device().backend().name(); }

  std::size_t block_records() const { return client_->B(); }
  std::uint64_t cache_records() const { return client_->M(); }
  const ClientParams& params() const { return params_; }

  // --- storage arena management ---

  /// Blocks currently held by the backend: live arrays plus scratch that
  /// completed algorithm calls have discarded but not yet compacted.
  std::uint64_t arena_blocks() const { return client_->device().num_blocks(); }
  /// Release trailing discarded extents back to the backend; returns the
  /// number of blocks freed.  With compact_arena() between calls, a sort
  /// loop's storage footprint stays bounded instead of growing per call.
  std::uint64_t compact_arena() { return client_->device().trim(); }

  /// Flush the storage stack (write-back cache write-backs included) and
  /// return the outcome.  Call before relying on the store below holding
  /// every write: the destructor's flush is best-effort and can only report
  /// failure through storage_health()/CacheStats::flush_failures after the
  /// fact.
  Status flush_storage() { return client_->device().backend().flush(); }
  /// Health of the storage stack, including a CachingBackend's latched
  /// flush failures: non-ok means dirty data may not have reached the store.
  Status storage_health() const { return client_->device().backend().health(); }
  /// Seal the current freshness state to the Builder's state_path (bumped
  /// generation, atomic replace).  kInvalidArgument without a state_path.
  /// The destructor also persists best-effort; call this when the error
  /// matters (e.g. before a planned handover).
  Status persist_freshness() { return client_->persist_state(); }
  /// This session's block-cache counters (hits/misses/write-backs/admission
  /// rejections) -- per-SESSION even on a shared cache, where each session's
  /// view keeps its own tallies.  All-zero when the session has no cache
  /// layer.  Format for humans with describe_cache_stats (cache_meter.h).
  CacheStats cache_stats() const;

  /// Escape hatch for benches/tests that need the raw protocol objects.
  Client& client() { return *client_; }
  const Client& client() const { return *client_; }

 private:
  explicit Session(const ClientParams& params);
  std::uint64_t next_seed(std::uint64_t requested);

  ClientParams params_;
  std::unique_ptr<Client> client_;
  std::uint64_t op_counter_ = 0;
};

}  // namespace oem
