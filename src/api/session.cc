#include "api/session.h"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/butterfly.h"
#include "core/consolidate.h"
#include "extmem/io_engine.h"
#include "extmem/remote.h"

namespace oem {

namespace {

/// Everything a sort/select/quantiles call allocates above the entry
/// watermark is scratch the moment the call returns (results are in-place or
/// plain values); record it as discarded so compact_arena() can reclaim it.
class ArenaScratchGuard {
 public:
  explicit ArenaScratchGuard(BlockDevice& dev)
      : dev_(dev), watermark_(dev.num_blocks()) {}
  ~ArenaScratchGuard() {
    if (dev_.num_blocks() > watermark_)
      dev_.mark_discarded({watermark_, dev_.num_blocks() - watermark_});
  }

 private:
  BlockDevice& dev_;
  std::uint64_t watermark_;
};

}  // namespace

// Backend failures surface as exceptions below the algorithm layer (see
// device.cc); the facade converts them back into Status so callers get a
// Result instead of a crash.  The IntegrityError/TimeoutError catches must
// come FIRST at every site: both are-a runtime_error, and mapping either to
// kIo would lose its meaning -- kIntegrity must fail closed, unretried, at
// the API boundary, and kTimeout must stay distinguishable from a failed
// disk so callers can tell a dead peer from a bad sector.

// ---------------------------------------------------------------------------
// Oram handle.

Result<std::uint64_t> Oram::access(std::uint64_t index) {
  std::uint64_t value = 0;
  try {
    value = impl_->access(index);
  } catch (const IntegrityError& e) {
    return Status::Integrity(e.what());
  } catch (const TimeoutError& e) {
    return Status::Timeout(e.what());
  } catch (const std::runtime_error& e) {
    return Status::Io(e.what());
  }
  if (!impl_->status().ok()) return impl_->status();
  return value;
}

std::uint64_t Oram::expected_value(std::uint64_t index) const {
  return impl_->expected_value(index);
}

// ---------------------------------------------------------------------------
// Builder.

Session::Builder& Session::Builder::block_records(std::size_t b) {
  params_.block_records = b;
  return *this;
}

Session::Builder& Session::Builder::cache_records(std::uint64_t m) {
  params_.cache_records = m;
  return *this;
}

Session::Builder& Session::Builder::seed(std::uint64_t s) {
  params_.seed = s;
  return *this;
}

Session::Builder& Session::Builder::strict_cache(bool on) {
  params_.strict_cache = on;
  return *this;
}

Session::Builder& Session::Builder::io_batch_blocks(std::uint64_t blocks) {
  params_.io_batch_blocks = blocks;
  return *this;
}

Session::Builder& Session::Builder::in_memory() {
  storage_ = Storage::kMem;
  local_storage_seen_ = true;
  return *this;
}

Session::Builder& Session::Builder::file_backed(FileBackendOptions opts) {
  storage_ = Storage::kFile;
  file_opts_ = std::move(opts);
  local_storage_seen_ = true;
  return *this;
}

Session::Builder& Session::Builder::backend(BackendFactory factory) {
  storage_ = Storage::kCustom;
  custom_ = std::move(factory);
  local_storage_seen_ = true;
  return *this;
}

Session::Builder& Session::Builder::direct_io(bool on) {
  direct_io_ = on;
  return *this;
}

Session::Builder& Session::Builder::remote(const std::string& host, std::uint16_t port) {
  storage_ = Storage::kRemote;
  remote_seen_ = true;
  remote_host_ = host;
  remote_port_ = port;
  return *this;
}

Session::Builder& Session::Builder::pipeline_depth(std::size_t k) {
  params_.pipeline_depth = k;
  return *this;
}

Session::Builder& Session::Builder::compute_threads(std::size_t n) {
  params_.compute_threads = n;
  return *this;
}

Session::Builder& Session::Builder::encrypted(Word key, bool authenticated) {
  encrypted_ = true;
  encrypted_auth_ = authenticated;
  encryption_key_ = key;
  return *this;
}

Session::Builder& Session::Builder::cache(std::size_t blocks) {
  cache_seen_ = true;
  cache_blocks_ = blocks;
  return *this;
}

Session::Builder& Session::Builder::shared_cache(SharedCacheHandle core) {
  shared_cache_ = std::move(core);
  return *this;
}

Session::Builder& Session::Builder::latency(LatencyProfile profile) {
  wrap_latency_ = true;
  profile_ = profile;
  return *this;
}

Session::Builder& Session::Builder::sharded(std::size_t k) {
  shards_ = k;
  return *this;
}

Session::Builder& Session::Builder::async_prefetch(bool on) {
  prefetch_ = on;
  return *this;
}

Session::Builder& Session::Builder::fault_injection(std::uint64_t seed, double rate) {
  FaultProfile profile;
  profile.seed = seed;
  profile.fail_rate = rate;
  return fault_injection(profile);
}

Session::Builder& Session::Builder::fault_injection(FaultProfile profile) {
  inject_faults_ = profile.fail_rate > 0.0 || profile.slow_ns > 0;
  fault_profile_ = profile;
  return *this;
}

Session::Builder& Session::Builder::tampering(std::uint64_t seed, double rate) {
  TamperProfile profile;
  profile.seed = seed;
  profile.tamper_rate = rate;
  return tampering(profile);
}

Session::Builder& Session::Builder::tampering(TamperProfile profile) {
  tamper_ = profile.tamper_rate > 0.0;
  tamper_profile_ = profile;
  return *this;
}

Session::Builder& Session::Builder::io_retries(unsigned attempts) {
  io_retries_ = attempts;
  return *this;
}

Session::Builder& Session::Builder::state_path(const std::string& p) {
  params_.state_path = p;
  return *this;
}

Session::Builder& Session::Builder::io_deadline_ms(std::uint64_t ms) {
  io_deadline_ms_ = ms;
  return *this;
}

Session::Builder& Session::Builder::wire_auth(Word key) {
  wire_auth_seen_ = true;
  wire_auth_key_ = key;
  return *this;
}

Result<Session> Session::Builder::build() const {
  ClientParams params = params_;
  if (params.block_records < 1)
    return Status::InvalidArgument("block_records (B) must be >= 1");
  if (params.cache_records < 2 * params.block_records)
    return Status::InvalidArgument(
        "cache_records (M) must be >= 2 * block_records (B): the paper assumes "
        "M >= 2B everywhere");
  if (shards_ < 1 || shards_ > 1024)
    return Status::InvalidArgument("sharded(k) needs 1 <= k <= 1024");
  if (fault_profile_.fail_rate < 0.0 || fault_profile_.fail_rate > 1.0)
    return Status::InvalidArgument("fault_injection rate must be in [0, 1]");
  if (tamper_profile_.tamper_rate < 0.0 || tamper_profile_.tamper_rate > 1.0)
    return Status::InvalidArgument("tampering rate must be in [0, 1]");
  if (params.pipeline_depth < 1 || params.pipeline_depth > 64)
    return Status::InvalidArgument(
        "pipeline_depth(k) needs 1 <= k <= 64 (1 = sequential windows, "
        "2 = double buffer)");
  if (params.compute_threads > 256)
    return Status::InvalidArgument(
        "compute_threads(n) needs n <= 256 (0 and 1 both mean serial)");
  if (cache_seen_ && (cache_blocks_ < 1 || cache_blocks_ > (1u << 20)))
    return Status::InvalidArgument(
        "cache(blocks) needs 1 <= blocks <= 1048576; to disable the cache, "
        "drop the cache() call instead of passing 0");
  if (cache_seen_ && shared_cache_ != nullptr)
    return Status::InvalidArgument(
        "cache(blocks) and shared_cache(core) are mutually exclusive: a "
        "session attaches either its own cache or the shared one");
  if (direct_io_ && storage_ != Storage::kFile)
    return Status::InvalidArgument(
        "direct_io() needs file_backed() storage: mem/remote/custom stores "
        "have no file to open with O_DIRECT");
  if (remote_seen_ && local_storage_seen_)
    return Status::InvalidArgument(
        "remote() cannot be combined with in_memory()/file_backed()/"
        "backend(...): the server's store_factory decides where the bytes "
        "live");
  if (remote_seen_ && (remote_host_.empty() || remote_port_ == 0))
    return Status::InvalidArgument(
        "remote() needs a non-empty host and a non-zero port");
  if (io_deadline_ms_ != 0 && !remote_seen_)
    return Status::InvalidArgument(
        "io_deadline_ms() needs remote() storage: only the wire has "
        "deadlines");
  if (wire_auth_seen_ && !remote_seen_)
    return Status::InvalidArgument(
        "wire_auth() needs remote() storage: only the wire's control frames "
        "are authenticated");
  params.io_retry_attempts =
      io_retries_ != 0 ? io_retries_ : (inject_faults_ ? 4u : 1u);

  // Durable freshness: reload a persisted state file before composing the
  // stack.  Missing = first boot, bootstrap fresh; existing-but-corrupt =
  // kIntegrity, fail closed here rather than run blind over evidence of
  // tampering.
  OEM_RETURN_IF_ERROR(hydrate_state(&params));

  // Each built session claims a fresh random namespace of server store ids
  // (low bits carry the shard index; sharded(k) caps at 1024 = 10 bits), so
  // two Sessions pointed at one RemoteServer can never alias -- and
  // therefore never silently overwrite -- each other's stores.  A RESTARTED
  // session (nonzero namespace reloaded from the state file) reuses its
  // predecessor's namespace instead: it must reach the same server stores
  // to find the blocks whose versions it remembers.
  std::uint64_t store_namespace = params.store_namespace;
  if (storage_ == Storage::kRemote && store_namespace == 0) {
    std::random_device rd;
    store_namespace =
        ((static_cast<std::uint64_t>(rd()) << 32) ^ rd()) & ~std::uint64_t{0x3ff};
    params.store_namespace = store_namespace;
  }

  // Compose the storage stack inside-out (the legal order documented on
  // Builder::cache): per-shard base stores (remote shards get their own
  // store namespace + connection; each optionally wrapped INNERMOST in a
  // TamperingBackend -- the malicious server mutates what the base store
  // serves, so the encryption/authentication seam above it is what must
  // catch the lie -- then optionally re-encrypted at the seam, then
  // optionally wrapped in a FaultyBackend with its own sub-seed, so
  // failures hit individual shards), striping, one latency model over the
  // striped store (lanes = k, the parallel-disk model: simulated round
  // trips to different shards overlap by construction), the write-back
  // cache above everything that costs a round trip, async submission --
  // async(cache(latency(sharded(faulty(encrypted(tamper(base))) x k)))).
  ShardFactory per_shard =
      [storage = storage_, file_opts = file_opts_, custom = custom_,
       host = remote_host_, port = remote_port_, store_namespace,
       shards = shards_, inject = inject_faults_, fault = fault_profile_,
       tamper = tamper_, tamper_profile = tamper_profile_,
       encrypted = encrypted_, encrypted_auth = encrypted_auth_,
       direct = direct_io_, io_deadline = io_deadline_ms_,
       auth_key = wire_auth_key_,
       key = encryption_key_](std::size_t block_words,
                              std::size_t shard) -> std::unique_ptr<StorageBackend> {
    BackendFactory base;
    switch (storage) {
      case Storage::kFile: {
        if (direct) {
          DirectFileOptions opts;
          opts.path = file_opts.path;
          opts.keep_file = file_opts.keep_file;
          if (!opts.path.empty() && shards > 1)
            opts.path += ".shard" + std::to_string(shard);
          base = direct_file_backend(std::move(opts));
          break;
        }
        FileBackendOptions opts = file_opts;
        if (!opts.path.empty() && shards > 1)
          opts.path += ".shard" + std::to_string(shard);
        base = file_backend(std::move(opts));
        break;
      }
      case Storage::kCustom:
        base = custom;
        break;
      case Storage::kRemote: {
        RemoteBackendOptions opts;
        opts.host = host;
        opts.port = port;
        opts.store_id = store_namespace | shard;
        opts.io_deadline_ms = io_deadline;
        opts.auth_key = auth_key;
        base = remote_backend(opts);
        break;
      }
      case Storage::kMem:
        base = mem_backend();
        break;
    }
    if (!base) base = mem_backend();  // backend(nullptr) means in-memory
    if (tamper) {
      TamperProfile p = tamper_profile;
      p.seed =
          rng::mix64(tamper_profile.seed ^ (0x9e3779b97f4a7c15ULL * (shard + 1)));
      base = tampering_backend(std::move(base), p);
    }
    if (encrypted) base = encrypted_backend(std::move(base), key, encrypted_auth);
    if (inject) {
      FaultProfile p = fault;
      p.seed = rng::mix64(fault.seed ^ (0x9e3779b97f4a7c15ULL * (shard + 1)));
      return std::make_unique<FaultyBackend>(base(block_words), p);
    }
    return base(block_words);
  };
  BackendFactory factory = sharded_backend(std::move(per_shard), shards_);
  if (wrap_latency_) {
    LatencyProfile profile = profile_;
    if (shards_ > 1) profile.lanes = shards_;
    factory = latency_backend(std::move(factory), profile);
  }
  if (cache_seen_) factory = caching_backend(std::move(factory), cache_blocks_);
  if (shared_cache_ != nullptr)
    factory = caching_backend(std::move(factory), shared_cache_);
  if (prefetch_) factory = async_backend(std::move(factory));
  params.backend = std::move(factory);

  Session session(params);
  // Backend construction cannot throw usefully; probe its health so a bad
  // file path comes back as a Status instead of failing the first I/O.
  Status health = session.client_->device().backend().health();
  if (!health.ok()) return health;
  return session;
}

// ---------------------------------------------------------------------------
// Session.

Session::Session(const ClientParams& params)
    : params_(params), client_(std::make_unique<Client>(params)) {}

CacheStats Session::cache_stats() const {
  const CachingBackend* cb = client_->device().cache_backend();
  return cb != nullptr ? cb->stats() : CacheStats{};
}

std::uint64_t Session::next_seed(std::uint64_t requested) {
  if (requested != 0) return requested;
  return rng::mix64(params_.seed ^ (0x9e3779b97f4a7c15ULL + ++op_counter_));
}

Result<ExtArray> Session::outsource(std::span<const Record> records) {
  try {
    ExtArray a = client_->alloc(records.size(), Client::Init::kUninit);
    client_->poke(a, records);
    return a;
  } catch (const IntegrityError& e) {
    return Status::Integrity(e.what());
  } catch (const TimeoutError& e) {
    return Status::Timeout(e.what());
  } catch (const std::runtime_error& e) {
    return Status::Io(e.what());
  }
}

Result<std::vector<Record>> Session::retrieve(const ExtArray& a) const {
  if (!a.valid() && a.num_records() > 0)
    return Status::InvalidArgument("retrieve: invalid array handle");
  try {
    return client_->peek(a);
  } catch (const IntegrityError& e) {
    return Status::Integrity(e.what());
  } catch (const TimeoutError& e) {
    return Status::Timeout(e.what());
  } catch (const std::runtime_error& e) {
    return Status::Io(e.what());
  }
}

Status Session::discard(const ExtArray& a) {
  if (!a.valid()) return Status::InvalidArgument("discard: invalid array handle");
  client_->release(a);
  return Status::Ok();
}

Result<std::vector<Word>> Session::raw_block(const ExtArray& a, std::uint64_t i) const {
  if (!a.valid() || i >= a.num_blocks())
    return Status::InvalidArgument("raw_block: block index out of range");
  try {
    return client_->device().raw(a.device_block(i));
  } catch (const IntegrityError& e) {
    return Status::Integrity(e.what());
  } catch (const TimeoutError& e) {
    return Status::Timeout(e.what());
  } catch (const std::runtime_error& e) {
    return Status::Io(e.what());
  }
}

Result<SortReport> Session::sort(const ExtArray& a, std::uint64_t seed,
                                 const core::ObliviousSortOptions& opts) {
  if (!a.valid()) return Status::InvalidArgument("sort: invalid array handle");
  const std::uint64_t before = client_->stats().total();
  ArenaScratchGuard scratch(client_->device());
  core::ObliviousSortResult res;
  try {
    res = core::oblivious_sort(*client_, a, next_seed(seed), opts);
  } catch (const IntegrityError& e) {
    return Status::Integrity(e.what());
  } catch (const TimeoutError& e) {
    return Status::Timeout(e.what());
  } catch (const std::runtime_error& e) {
    return Status::Io(e.what());
  }
  if (!res.status.ok()) return res.status;
  SortReport report;
  report.stats = res.stats;
  report.ios = client_->stats().total() - before;
  return report;
}

Result<Record> Session::select(const ExtArray& a, std::uint64_t k, std::uint64_t seed,
                               const core::SelectOptions& opts) {
  if (!a.valid()) return Status::InvalidArgument("select: invalid array handle");
  if (k < 1 || k > a.num_records())
    return Status::InvalidArgument("select: rank k must be in [1, N]");
  ArenaScratchGuard scratch(client_->device());
  core::SelectResult res;
  try {
    res = core::oblivious_select(*client_, a, k, next_seed(seed), opts);
  } catch (const IntegrityError& e) {
    return Status::Integrity(e.what());
  } catch (const TimeoutError& e) {
    return Status::Timeout(e.what());
  } catch (const std::runtime_error& e) {
    return Status::Io(e.what());
  }
  if (!res.status.ok()) return res.status;
  return res.value;
}

Result<std::vector<Record>> Session::quantiles(const ExtArray& a, std::uint64_t q,
                                               std::uint64_t seed,
                                               const core::QuantilesOptions& opts) {
  if (!a.valid()) return Status::InvalidArgument("quantiles: invalid array handle");
  if (q < 1 || q >= a.num_records())  // q+1 <= N, written overflow-safe
    return Status::InvalidArgument("quantiles: need 1 <= q and q+1 <= N");
  ArenaScratchGuard scratch(client_->device());
  core::QuantilesResult res;
  try {
    res = core::oblivious_quantiles(*client_, a, q, next_seed(seed), opts);
  } catch (const IntegrityError& e) {
    return Status::Integrity(e.what());
  } catch (const TimeoutError& e) {
    return Status::Timeout(e.what());
  } catch (const std::runtime_error& e) {
    return Status::Io(e.what());
  }
  if (!res.status.ok()) return res.status;
  return std::move(res.quantiles);
}

Result<CompactReport> Session::compact(const ExtArray& a) {
  if (!a.valid()) return Status::InvalidArgument("compact: invalid array handle");
  const std::uint64_t before = client_->stats().total();
  try {
    const std::size_t B = client_->B();
    const std::uint64_t n1 = a.num_blocks() + 1;
    // The result array is allocated before the scratch so that the scratch
    // can be released LIFO afterwards -- a long-lived Session must not grow
    // the backing storage on every compact call.
    ExtArray result = client_->alloc_blocks(n1, Client::Init::kUninit);
    // Lemma 3: full-or-empty blocks, order preserved.
    core::ConsolidateResult cons =
        core::consolidate(*client_, a, core::nonempty_pred());
    // Theorem 6: route the full blocks (plus the final partial one) to a
    // dense prefix, deterministically and obliviously.
    core::TightCompactResult tight =
        core::tight_compact_blocks(*client_, cons.out, core::block_nonempty_pred());
    // Copy ALL n+1 blocks into the result (the copy size is public, so the
    // trace stays independent of the private distinguished count), then
    // reclaim the scratch.
    {
      const std::uint64_t W = std::max<std::uint64_t>(1, client_->io_batch_blocks());
      CacheLease lease(client_->cache(), W * B);
      std::vector<Record> buf;
      for (std::uint64_t i = 0; i < n1; i += W) {
        const std::uint64_t k = std::min(W, n1 - i);
        buf.resize(static_cast<std::size_t>(k) * B);
        client_->read_blocks(tight.out, i, k, buf);
        client_->write_blocks(result, i, k, buf);
      }
    }
    client_->release(tight.out);
    client_->release(cons.out);
    CompactReport report;
    report.kept = cons.distinguished;
    // The handle spans the whole n+1-block allocation (so discard() can
    // reclaim it) but exposes only the `kept` records of the dense prefix.
    report.out = ExtArray(result.extent(), cons.distinguished, B);
    report.ios = client_->stats().total() - before;
    return report;
  } catch (const IntegrityError& e) {
    return Status::Integrity(e.what());
  } catch (const TimeoutError& e) {
    return Status::Timeout(e.what());
  } catch (const std::runtime_error& e) {
    return Status::Io(e.what());
  }
}

Result<Oram> Session::open_oram(std::uint64_t n_items, oram::ShuffleKind kind,
                                std::uint64_t seed) {
  if (n_items < 1) return Status::InvalidArgument("open_oram: need n_items >= 1");
  try {
    auto impl = std::make_unique<oram::SqrtOram>(*client_, n_items, kind,
                                                 next_seed(seed));
    if (!impl->status().ok()) return impl->status();
    return Oram(std::move(impl));
  } catch (const IntegrityError& e) {
    return Status::Integrity(e.what());
  } catch (const TimeoutError& e) {
    return Status::Timeout(e.what());
  } catch (const std::runtime_error& e) {
    return Status::Io(e.what());
  }
}

}  // namespace oem
