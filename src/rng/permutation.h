// Random permutations.
//
// Two tools:
//  * fisher_yates: the classic in-place shuffle (Knuth, TAOCP vol. 2), used by
//    the paper's "shuffle-and-deal" step on *blocks*.  The swap index choices
//    are data-independent, so performing the shuffle in external memory is
//    data-oblivious even though Bob watches every swap (paper §5).
//  * FeistelPermutation: a stateless pseudo-random permutation over [0, n)
//    via a 4-round Feistel network with cycle-walking.  Used by workload
//    generators and by the square-root ORAM's position map simulation; O(1)
//    memory regardless of n.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/random.h"

namespace oem::rng {

/// In-place Fisher-Yates shuffle of indices [0, n): for i = 0..n-1 swap(i, j)
/// with j uniform in [i, n).  `swap` is a callback so callers can swap
/// external-memory blocks (4 I/Os per step) rather than in-RAM values.
template <typename SwapFn>
void fisher_yates(std::uint64_t n, Xoshiro& rng, SwapFn&& swap) {
  for (std::uint64_t i = 0; i + 1 < n; ++i) {
    const std::uint64_t j = rng.range(i, n - 1);
    swap(i, j);  // callers may skip physical work when i == j, but the draw
                 // itself must happen unconditionally to keep coins aligned
  }
}

/// Convenience: shuffle a vector in place.
template <typename T>
void shuffle(std::vector<T>& v, Xoshiro& rng) {
  fisher_yates(v.size(), rng, [&](std::uint64_t i, std::uint64_t j) {
    if (i != j) std::swap(v[i], v[j]);
  });
}

/// Pseudo-random permutation over [0, n) built from a balanced Feistel
/// network over 2w-bit values with cycle-walking back into the domain.
class FeistelPermutation {
 public:
  FeistelPermutation(std::uint64_t n, std::uint64_t key, int rounds = 4);

  std::uint64_t domain() const { return n_; }
  std::uint64_t apply(std::uint64_t x) const;    // pi(x)
  std::uint64_t inverse(std::uint64_t y) const;  // pi^{-1}(y)

 private:
  std::uint64_t permute_once(std::uint64_t x, bool forward) const;

  std::uint64_t n_;
  unsigned half_bits_;
  std::uint64_t half_mask_;
  int rounds_;
  std::vector<std::uint64_t> round_keys_;
};

}  // namespace oem::rng
