#include "rng/permutation.h"

#include <cassert>

#include "util/math.h"

namespace oem::rng {

FeistelPermutation::FeistelPermutation(std::uint64_t n, std::uint64_t key, int rounds)
    : n_(n), rounds_(rounds) {
  assert(n >= 1);
  assert(rounds >= 2);
  // Smallest even-bit domain 2^{2w} >= n.
  unsigned bits = ceil_log2(n < 2 ? 2 : n);
  if (bits % 2) ++bits;
  if (bits < 2) bits = 2;
  half_bits_ = bits / 2;
  half_mask_ = (std::uint64_t{1} << half_bits_) - 1;
  std::uint64_t sm = key ^ 0xa0761d6478bd642fULL;
  round_keys_.resize(static_cast<std::size_t>(rounds));
  for (auto& rk : round_keys_) rk = splitmix64(sm);
}

std::uint64_t FeistelPermutation::permute_once(std::uint64_t x, bool forward) const {
  std::uint64_t l = (x >> half_bits_) & half_mask_;
  std::uint64_t r = x & half_mask_;
  if (forward) {
    for (int i = 0; i < rounds_; ++i) {
      const std::uint64_t f = mix64(r ^ round_keys_[static_cast<std::size_t>(i)]) & half_mask_;
      const std::uint64_t nl = r;
      r = l ^ f;
      l = nl;
    }
  } else {
    for (int i = rounds_ - 1; i >= 0; --i) {
      const std::uint64_t f = mix64(l ^ round_keys_[static_cast<std::size_t>(i)]) & half_mask_;
      const std::uint64_t nr = l;
      l = r ^ f;
      r = nr;
    }
  }
  return (l << half_bits_) | r;
}

std::uint64_t FeistelPermutation::apply(std::uint64_t x) const {
  assert(x < n_);
  std::uint64_t y = x;
  do {
    y = permute_once(y, /*forward=*/true);
  } while (y >= n_);  // cycle-walk: expected <= 4 iterations since 2^{2w} < 4n
  return y;
}

std::uint64_t FeistelPermutation::inverse(std::uint64_t y) const {
  assert(y < n_);
  std::uint64_t x = y;
  do {
    x = permute_once(x, /*forward=*/false);
  } while (x >= n_);
  return x;
}

}  // namespace oem::rng
