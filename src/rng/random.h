// Deterministic, seedable randomness.
//
// Every randomized algorithm in the paper tosses coins *independently of the
// data*.  We exploit that to make obliviousness machine-checkable: with the
// same seed, the block-access trace must be bit-identical across inputs.
// Hence all algorithms take an explicit Rng (never a global source).
#pragma once

#include <cstdint>
#include <cassert>

namespace oem::rng {

/// SplitMix64: tiny, fast, full-period 2^64 generator.  Used both directly
/// and to seed xoshiro and to derive keystreams in the encryption simulation.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a 64-bit input; used for keystreams and trace hashing.
inline std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** by Blackman & Vigna: the main generator.
class Xoshiro {
 public:
  explicit Xoshiro(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound >= 1.  Uses rejection sampling to
  /// avoid modulo bias (important: the shuffle correctness tests check
  /// uniformity with a chi-square statistic).
  std::uint64_t below(std::uint64_t bound) {
    assert(bound >= 1);
    if (bound == 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli(p) coin.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    // 53-bit uniform double in [0, 1).
    const double u = static_cast<double>(next() >> 11) * 0x1.0p-53;
    return u < p;
  }

  /// Split off an independent child generator (for subroutines, so that the
  /// consumption pattern of one phase cannot perturb another's coins).
  Xoshiro split() { return Xoshiro(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace oem::rng
