#include "rng/random.h"

// Header-only; this translation unit exists so the target has a home for the
// module and future non-inline additions.
namespace oem::rng {}
