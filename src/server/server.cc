#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <exception>
#include <utility>

namespace oem {

using wire::get_u64;
using wire::put_u64;

namespace {

void set_nonblocking(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

timespec until(std::chrono::steady_clock::time_point deadline,
               std::chrono::steady_clock::time_point now) {
  timespec ts{0, 0};
  if (deadline > now) {
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(deadline - now).count();
    ts.tv_sec = static_cast<time_t>(ns / 1'000'000'000);
    ts.tv_nsec = static_cast<long>(ns % 1'000'000'000);
  }
  return ts;
}

}  // namespace

// ---------------------------------------------------------------------------
// Setup / teardown.

RemoteServer::RemoteServer(RemoteServerOptions opts) : opts_(std::move(opts)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    init_status_ = Status::Io(std::string("remote server socket: ") + std::strerror(errno));
    return;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    init_status_ = Status::InvalidArgument("remote server host '" + opts_.host +
                                           "' is not an IPv4 address");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    init_status_ = Status::Io("remote server bind/listen on " + opts_.host + ":" +
                              std::to_string(opts_.port) + ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  std::size_t n = opts_.worker_threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  if (n > 64) n = 64;
  for (std::size_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    int p[2];
    if (::pipe2(p, O_NONBLOCK | O_CLOEXEC) != 0) {
      init_status_ = Status::Io(std::string("remote server wake pipe: ") +
                                std::strerror(errno));
      for (auto& prev : workers_) {
        ::close(prev->wake_rd);
        ::close(prev->wake_wr);
      }
      workers_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    w->wake_rd = p[0];
    w->wake_wr = p[1];
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_)
    w->th = std::thread([this, raw = w.get()] { worker_loop(*raw); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

RemoteServer::~RemoteServer() { shutdown(); }

Status RemoteServer::shutdown() {
  if (shut_.exchange(true, std::memory_order_acq_rel))
    return Status::Ok();  // already shut down (idempotent)
  stop_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& w : workers_) wake(*w);
  for (auto& w : workers_) {
    if (w->th.joinable()) w->th.join();
    ::close(w->wake_rd);
    ::close(w->wake_wr);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  return flush_stores();
}

Status RemoteServer::flush_stores() {
  Status first;
  std::lock_guard<std::mutex> lk(stores_mu_);
  for (auto& [id, store] : stores_) {
    std::lock_guard<std::mutex> slk(store->mu);
    first.Update(store->backend->flush());
  }
  return first;
}

// ---------------------------------------------------------------------------
// Accept thread.

void RemoteServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_relaxed)) return;  // shut down
      // Transient accept failures (an aborted handshake, a brief fd or
      // buffer shortage during a reconnect storm) must not retire the
      // listener for good -- back off briefly and keep serving.
      const bool transient = errno == EINTR || errno == ECONNABORTED ||
                             errno == EMFILE || errno == ENFILE ||
                             errno == ENOBUFS || errno == ENOMEM ||
                             errno == EAGAIN || errno == EWOULDBLOCK;
      if (transient) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      return;  // listening socket is genuinely gone
    }
    if (stop_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    set_nonblocking(fd);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    Worker& w = *workers_[next_worker_++ % workers_.size()];
    {
      std::lock_guard<std::mutex> lk(w.mu);
      w.incoming.push_back(fd);
    }
    wake(w);
  }
}

void RemoteServer::wake(Worker& w) {
  const char b = 1;
  // A full pipe means a wake-up is already pending; EAGAIN is success here.
  [[maybe_unused]] const ssize_t r = ::write(w.wake_wr, &b, 1);
}

void RemoteServer::drop_connections() {
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lk(w->mu);
    // Only shutdown() here, never close(): the owning worker closes under
    // this same mutex when it retires the connection, so an fd number the
    // kernel recycled can never be hit.  Not-yet-adopted fds are dropped
    // the same way.
    for (auto& c : w->conns) ::shutdown(c->fd, SHUT_RDWR);
    for (int fd : w->incoming) ::shutdown(fd, SHUT_RDWR);
    wake(*w);
  }
}

// ---------------------------------------------------------------------------
// Stores.

Status RemoteServer::peek_store(std::uint64_t store_id, std::uint64_t block,
                                std::vector<Word>* out) {
  Store* store = nullptr;
  {
    std::lock_guard<std::mutex> lk(stores_mu_);
    auto it = stores_.find(store_id);
    if (it == stores_.end())
      return Status::InvalidArgument("peek_store: unknown store " +
                                     std::to_string(store_id));
    store = it->second.get();
  }
  std::lock_guard<std::mutex> lk(store->mu);
  out->assign(store->backend->block_words(), 0);
  return store->backend->read(block, *out);
}

Status RemoteServer::poke_store(std::uint64_t store_id, std::uint64_t block,
                                std::span<const Word> in) {
  Store* store = nullptr;
  {
    std::lock_guard<std::mutex> lk(stores_mu_);
    auto it = stores_.find(store_id);
    if (it == stores_.end())
      return Status::InvalidArgument("poke_store: unknown store " +
                                     std::to_string(store_id));
    store = it->second.get();
  }
  std::lock_guard<std::mutex> lk(store->mu);
  if (in.size() != store->backend->block_words())
    return Status::InvalidArgument("poke_store: wrong block size");
  return store->backend->write(block, in);
}

Result<RemoteServer::Store*> RemoteServer::bind_store(std::uint64_t store_id,
                                                      std::uint64_t block_words) {
  // A block must fit many times over into one frame, or no batched op could
  // ever be served; the bound also keeps a hostile HELLO from sizing
  // staging/stores by 2^60-word blocks.
  if (block_words < 1 || block_words > wire::kMaxFrameBytes / sizeof(Word) / 64)
    return Status::InvalidArgument("HELLO: block_words " +
                                   std::to_string(block_words) + " out of range");
  std::lock_guard<std::mutex> lk(stores_mu_);
  auto it = stores_.find(store_id);
  if (it != stores_.end()) {
    if (it->second->backend->block_words() != block_words)
      return Status::InvalidArgument(
          "HELLO: store " + std::to_string(store_id) + " already serves block_words=" +
          std::to_string(it->second->backend->block_words()) + ", client asked for " +
          std::to_string(block_words));
    return it->second.get();
  }
  auto store = std::make_unique<Store>();
  const auto bw = static_cast<std::size_t>(block_words);
  store->backend = opts_.store_factory_by_id ? opts_.store_factory_by_id(store_id, bw)
                   : opts_.store_factory     ? opts_.store_factory(bw)
                                             : std::make_unique<MemBackend>(bw);
  Status health = store->backend->health();
  if (!health.ok()) return health;
  Store* raw = store.get();
  stores_.emplace(store_id, std::move(store));
  return raw;
}

// ---------------------------------------------------------------------------
// Worker loop.

void RemoteServer::worker_loop(Worker& w) {
#ifdef __linux__
  // Default timer slack rounds short ppoll timeouts up by ~50us; that skew
  // would land on every simulated response delay.  1us keeps them honest.
  ::prctl(PR_SET_TIMERSLACK, 1000, 0, 0, 0);
#endif
  std::vector<pollfd> pfds;
  std::vector<Conn*> polled;
  bool draining = false;
  Clock::time_point drain_deadline{};

  for (;;) {
    // Adopt newly accepted connections.
    {
      std::lock_guard<std::mutex> lk(w.mu);
      for (int fd : w.incoming) {
        auto c = std::make_unique<Conn>();
        c->fd = fd;
        c->last_activity = Clock::now();
        w.conns.push_back(std::move(c));
      }
      w.incoming.clear();
    }

    if (!draining && stop_.load(std::memory_order_acquire)) {
      // Graceful drain: every fully-received frame was already dispatched
      // (dispatch happens as frames arrive), so all that remains is pushing
      // queued responses out.  Remaining simulated propagation delay is
      // waived -- shutdown must not hang clients for response_delay_ns per
      // queued frame -- and a bounded deadline keeps a wedged peer from
      // holding the process open.
      draining = true;
      drain_deadline = Clock::now() + std::chrono::seconds(2);
      for (auto& c : w.conns)
        for (OutFrame& f : c->out) f.due = Clock::time_point{};
    }

    auto now = Clock::now();

    // Push due responses; a send error retires the connection.
    for (auto& c : w.conns)
      if (!c->dead && !flush_out(*c, now)) c->dead = true;

    // Idle eviction (PINGs and any other frame reset last_activity).
    if (opts_.idle_timeout_ms > 0 && !draining) {
      const auto idle = std::chrono::milliseconds(opts_.idle_timeout_ms);
      for (auto& c : w.conns)
        if (!c->dead && now - c->last_activity > idle) {
          c->dead = true;
          evicted_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    // Retire dead connections.  close() under the worker mutex: once close
    // returns the kernel may recycle the fd number, and drop_connections
    // (which walks this list under the same mutex) must never shutdown() a
    // descriptor this server no longer owns.
    {
      std::lock_guard<std::mutex> lk(w.mu);
      std::erase_if(w.conns, [](const std::unique_ptr<Conn>& c) {
        if (!c->dead) return false;
        ::close(c->fd);
        return true;
      });
    }

    if (draining) {
      bool flushed = true;
      for (auto& c : w.conns)
        if (!c->out.empty()) {
          flushed = false;
          break;
        }
      if (flushed || Clock::now() > drain_deadline) {
        std::lock_guard<std::mutex> lk(w.mu);
        for (auto& c : w.conns) ::close(c->fd);
        w.conns.clear();
        for (int fd : w.incoming) ::close(fd);
        w.incoming.clear();
        return;
      }
    }

    // Build the poll set: the wake pipe, every live socket for input (unless
    // draining), and for output while a due response is still queued.  The
    // timeout lands on the nearest deadline: a response coming due, an idle
    // eviction, or a coarse housekeeping tick.
    now = Clock::now();
    auto wake_at = now + (draining ? std::chrono::milliseconds(2)
                                   : std::chrono::milliseconds(100));
    pfds.clear();
    polled.clear();
    pfds.push_back({w.wake_rd, POLLIN, 0});
    polled.push_back(nullptr);
    for (auto& c : w.conns) {
      short ev = draining ? 0 : POLLIN;
      if (!c->out.empty()) {
        if (c->out.front().due <= now)
          ev |= POLLOUT;
        else if (c->out.front().due < wake_at)
          wake_at = c->out.front().due;
      }
      if (opts_.idle_timeout_ms > 0 && !draining) {
        const auto deadline =
            c->last_activity + std::chrono::milliseconds(opts_.idle_timeout_ms);
        if (deadline < wake_at) wake_at = deadline;
      }
      pfds.push_back({c->fd, ev, 0});
      polled.push_back(c.get());
    }
    const timespec ts = until(wake_at, now);
    ::ppoll(pfds.data(), pfds.size(), &ts, nullptr);

    if (pfds[0].revents & POLLIN) {
      char sink[64];
      while (::read(w.wake_rd, sink, sizeof(sink)) > 0) {
      }
    }
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      Conn* c = polled[i];
      if (c->dead) continue;
      if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Let a final pump observe whatever the peer left behind; EOF or a
        // hard error then retires the connection.
        if (draining || !pump_in(*c)) c->dead = true;
        continue;
      }
      if (!draining && (pfds[i].revents & POLLIN) && !pump_in(*c)) c->dead = true;
    }
  }
}

bool RemoteServer::pump_in(Conn& c) {
  for (;;) {
    std::uint8_t chunk[64 * 1024];
    const ssize_t got = ::recv(c.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    if (got == 0) return false;  // peer closed
    c.last_activity = Clock::now();
    c.in.insert(c.in.end(), chunk, chunk + got);
    if (!drain_frames(c)) return false;
    // A short read usually means the socket is drained; yield to the next
    // connection and let ppoll re-arm rather than spinning on one peer.
    if (static_cast<std::size_t>(got) < sizeof(chunk)) return true;
  }
}

bool RemoteServer::drain_frames(Conn& c) {
  std::size_t off = 0;
  for (;;) {
    if (c.in.size() - off < sizeof(std::uint64_t)) break;
    const std::uint64_t len = get_u64(c.in.data() + off);
    if (len < sizeof(std::uint64_t) || len > wire::kMaxFrameBytes) return false;
    if (c.in.size() - off < sizeof(std::uint64_t) + len) break;  // partial: keep buffering
    if (!handle_frame(c, c.in.data() + off + sizeof(std::uint64_t),
                      static_cast<std::size_t>(len)))
      return false;
    off += sizeof(std::uint64_t) + static_cast<std::size_t>(len);
  }
  if (off > 0) c.in.erase(c.in.begin(), c.in.begin() + static_cast<std::ptrdiff_t>(off));
  return true;
}

void RemoteServer::enqueue_response(Conn& c, std::vector<std::uint8_t> body) {
  OutFrame f;
  if (opts_.response_delay_ns > 0)
    f.due = Clock::now() + std::chrono::nanoseconds(opts_.response_delay_ns);
  f.bytes.reserve(sizeof(std::uint64_t) + body.size());
  put_u64(f.bytes, body.size());
  f.bytes.insert(f.bytes.end(), body.begin(), body.end());
  c.out.push_back(std::move(f));
}

bool RemoteServer::flush_out(Conn& c, Clock::time_point now) {
  while (!c.out.empty() && c.out.front().due <= now) {
    OutFrame& f = c.out.front();
    while (f.sent < f.bytes.size()) {
      const ssize_t put = ::send(c.fd, f.bytes.data() + f.sent, f.bytes.size() - f.sent,
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
      if (put < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // resume on POLLOUT
        return false;
      }
      f.sent += static_cast<std::size_t>(put);
    }
    c.out.pop_front();
  }
  return true;
}

// ---------------------------------------------------------------------------
// Frame dispatch (one connection's frames arrive here strictly in order).

bool RemoteServer::handle_frame(Conn& c, const std::uint8_t* p, std::size_t n) {
  const std::uint64_t frame_no = frames_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Crash injection: die ABRUPTLY at the top of dispatch -- the frame is
  // never applied, nothing is flushed, no destructor runs.  _exit, not
  // abort: the harness asserts the distinct exit code, and no cleanup may
  // soften the crash into a graceful shutdown.
  if (opts_.crash_at_frames > 0 && frame_no >= opts_.crash_at_frames)
    ::_exit(kCrashExitCode);
  const auto op = static_cast<wire::Op>(get_u64(p));
  std::vector<std::uint8_t> resp;
  auto fields = [&](std::size_t k) { return n >= (k + 1) * sizeof(std::uint64_t); };

  if (op == wire::Op::kHello) {
    // Version is policed before the v3 frame shape: an older client's HELLO
    // is legitimately shorter, and it deserves a version diagnosis, not a
    // dropped connection.
    if (!fields(2)) return false;  // malformed: drop the connection
    const std::uint64_t version = get_u64(p + 8);
    if (version != wire::kProtocolVersion) {
      resp = wire::make_response(Status::InvalidArgument(
          "HELLO: protocol version " + std::to_string(version) + " unsupported, server speaks " +
          std::to_string(wire::kProtocolVersion)));
      enqueue_response(c, std::move(resp));
      return true;
    }
    if (!fields(5)) return false;  // malformed: drop the connection
    const std::uint64_t store_id = get_u64(p + 16);
    const std::uint64_t block_words = get_u64(p + 24);
    const std::uint64_t token = get_u64(p + 32);
    const std::uint64_t tag = get_u64(p + 40);
    if (tag != wire::control_mac(opts_.auth_key, wire::kMacHelloReq,
                                 {version, store_id, block_words, token})) {
      resp = wire::make_response(Status::Integrity(
          "HELLO authentication failed: wrong wire auth key, or a spoofed "
          "handshake"));
    } else {
      auto bound = bind_store(store_id, block_words);
      if (bound.ok()) {
        c.store = *bound;
        resp = wire::make_response(Status::Ok());
        put_u64(resp, wire::kProtocolVersion);
        std::uint64_t num_blocks = 0;
        {
          std::lock_guard<std::mutex> lk(c.store->mu);
          num_blocks = c.store->backend->num_blocks();
        }
        put_u64(resp, num_blocks);
        put_u64(resp, wire::control_mac(opts_.auth_key, wire::kMacHelloResp,
                                        {token, wire::kProtocolVersion, num_blocks}));
      } else {
        resp = wire::make_response(bound.status());
      }
    }
  } else if (op == wire::Op::kPing) {
    // Connection-level keep-alive: legal before HELLO, echoes the token.
    // Authenticated both ways since v3, so an attacker can neither forge
    // keep-alives (holding an idle eviction open) nor spoof our answer.
    if (!fields(2)) return false;
    const std::uint64_t token = get_u64(p + 8);
    if (get_u64(p + 16) !=
        wire::control_mac(opts_.auth_key, wire::kMacPingReq, {token})) {
      resp = wire::make_response(
          Status::Integrity("PING authentication failed"));
    } else {
      pings_.fetch_add(1, std::memory_order_relaxed);
      resp = wire::make_response(Status::Ok());
      put_u64(resp, token);
      put_u64(resp, wire::control_mac(opts_.auth_key, wire::kMacPingResp, {token}));
    }
  } else if (c.store == nullptr) {
    resp = wire::make_response(Status::InvalidArgument("data op before HELLO"));
  } else if (op == wire::Op::kReadMany || op == wire::Op::kWriteMany) {
    if (!fields(1)) return false;
    const std::uint64_t count = get_u64(p + 8);
    const std::size_t bw = c.store->backend->block_words();
    // Both the write REQUEST (op, count, ids, payload) and the read
    // RESPONSE (status, payload) must fit under the frame cap, so the
    // batch bound covers ids + payload per block: a wire-supplied count
    // can never size an allocation past kMaxFrameBytes, and a batch that
    // passes this check always yields a sendable response.
    if (count > (wire::kMaxFrameBytes - 2 * sizeof(std::uint64_t)) /
                    (sizeof(std::uint64_t) + bw * sizeof(Word)))
      return false;
    const std::size_t head = 2 * sizeof(std::uint64_t) + count * sizeof(std::uint64_t);
    const std::size_t data_words =
        op == wire::Op::kWriteMany ? static_cast<std::size_t>(count) * bw : 0;
    if (n != head + data_words * sizeof(Word)) return false;
    // Simulated service time: the worker is OCCUPIED for the duration, so
    // capacity scales with the worker pool, not with the connection count.
    if (opts_.service_delay_ns > 0)
      std::this_thread::sleep_for(std::chrono::nanoseconds(opts_.service_delay_ns));
    std::vector<std::uint64_t> ids(count);
    std::memcpy(ids.data(), p + 16, count * sizeof(std::uint64_t));
    std::lock_guard<std::mutex> lk(c.store->mu);
    if (op == wire::Op::kReadMany) {
      std::vector<Word> words(static_cast<std::size_t>(count) * bw);
      Status st = c.store->backend->read_many(ids, words);
      resp = wire::make_response(st);
      if (st.ok()) {
        const std::size_t at = resp.size();
        resp.resize(at + words.size() * sizeof(Word));
        std::memcpy(resp.data() + at, words.data(), words.size() * sizeof(Word));
      }
    } else {
      std::vector<Word> words(data_words);
      std::memcpy(words.data(), p + head, data_words * sizeof(Word));
      resp = wire::make_response(c.store->backend->write_many(ids, words));
    }
  } else if (op == wire::Op::kResize) {
    if (!fields(1)) return false;
    std::lock_guard<std::mutex> lk(c.store->mu);
    // A hostile nblocks must come back as an error frame, not a
    // bad_alloc/length_error escaping the worker thread (terminate).
    try {
      resp = wire::make_response(c.store->backend->resize(get_u64(p + 8)));
    } catch (const std::exception& e) {
      resp = wire::make_response(Status::Io(std::string("RESIZE failed: ") + e.what()));
    }
  } else if (op == wire::Op::kStat) {
    resp = wire::make_response(Status::Ok());
    std::lock_guard<std::mutex> lk(c.store->mu);
    put_u64(resp, c.store->backend->num_blocks());
    put_u64(resp, c.store->backend->block_words());
  } else {
    resp = wire::make_response(
        Status::InvalidArgument("unknown op " + std::to_string(get_u64(p))));
  }
  enqueue_response(c, std::move(resp));
  return true;
}

}  // namespace oem
