// SpawnedServer: run the real oem-server binary as a child process.
//
// Tests and benches that must prove the OUT-OF-PROCESS story (a separate
// address space, a real exec boundary, signal-driven shutdown) spawn the
// binary with --port=0, parse the bound port from its "listening on" line,
// and SIGTERM it when done, checking the exit status.  Everything in-process
// keeps using RemoteServer directly.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace oem::server {

/// Path to the oem-server binary built next to the calling executable
/// (CMake puts every target in the same build directory); falls back to
/// "./oem-server" when /proc/self/exe is unavailable.
std::string default_server_binary();

/// How a child died, with signal death reported DISTINCTLY from exit codes
/// (the old int convention folded both into one number; the recovery
/// harness must tell SIGKILL from --crash-at's _exit(42) from a clean 0).
struct ExitResult {
  int code = -1;        // exit code when !signaled; -1 = no child/unknown
  int signal = 0;       // terminating signal when signaled
  bool signaled = false;
};

class SpawnedServer {
 public:
  /// fork+execs `binary` with --port=0 plus `extra_args`, then blocks until
  /// the child prints its listening line (or dies / times out).  health()
  /// reports the outcome; host()/port() are valid when it is ok.
  explicit SpawnedServer(std::string binary = default_server_binary(),
                         std::vector<std::string> extra_args = {});
  ~SpawnedServer();
  SpawnedServer(const SpawnedServer&) = delete;
  SpawnedServer& operator=(const SpawnedServer&) = delete;

  Status health() const { return status_; }
  const std::string& host() const { return host_; }
  std::uint16_t port() const { return port_; }
  pid_t pid() const { return pid_; }

  /// SIGTERM the child and wait for it (SIGKILL after a bounded grace
  /// period).  Returns the child's exit code, 128+signal when it died on a
  /// signal, -1 when there is no child.  Idempotent; the destructor calls it.
  int terminate();

  /// SIGKILL the child NOW and reap it -- the abrupt death path of the chaos
  /// harness (no grace period, no chance to flush).  Idempotent like
  /// terminate(); returns {signaled=true, signal=SIGKILL} normally.
  ExitResult kill_now();
  /// Wait (bounded) for the child to exit ON ITS OWN -- e.g. an armed
  /// --crash-at tripping -- without sending it any signal first.  Falls back
  /// to SIGKILL when the deadline passes so a test can never hang on a
  /// server that refused to die.
  ExitResult wait_exit(std::uint64_t timeout_ms = 30'000);

 private:
  /// Poll-reap the child for up to `grace_ms`, then SIGKILL + blocking wait.
  ExitResult reap(std::uint64_t grace_ms);

  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  std::string host_;
  std::uint16_t port_ = 0;
  Status status_;
};

}  // namespace oem::server
