#include "server/subprocess.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace oem::server {

std::string default_server_binary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "./oem-server";
  buf[n] = '\0';
  std::string self(buf);
  const auto slash = self.rfind('/');
  return (slash == std::string::npos ? std::string(".") : self.substr(0, slash)) +
         "/oem-server";
}

SpawnedServer::SpawnedServer(std::string binary, std::vector<std::string> extra_args) {
  int out[2];
  if (::pipe(out) != 0) {
    status_ = Status::Io(std::string("spawn oem-server: pipe: ") + std::strerror(errno));
    return;
  }
  std::vector<std::string> args;
  args.push_back(binary);
  args.push_back("--port=0");
  for (auto& a : extra_args) args.push_back(std::move(a));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  pid_ = ::fork();
  if (pid_ < 0) {
    status_ = Status::Io(std::string("spawn oem-server: fork: ") + std::strerror(errno));
    ::close(out[0]);
    ::close(out[1]);
    pid_ = -1;
    return;
  }
  if (pid_ == 0) {
    ::dup2(out[1], STDOUT_FILENO);
    ::close(out[0]);
    ::close(out[1]);
    ::execv(binary.c_str(), argv.data());
    // exec failed; the parent sees EOF before a listening line.
    _exit(127);
  }
  ::close(out[1]);
  stdout_fd_ = out[0];

  // Wait for "oem-server listening on HOST:PORT" (bounded: a sanitizer-built
  // child can take a while to start, a missing binary fails fast via EOF).
  std::string seen;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    const auto left = deadline - std::chrono::steady_clock::now();
    if (left <= std::chrono::steady_clock::duration::zero()) {
      status_ = Status::Io("spawn oem-server: timed out waiting for listening line");
      terminate();
      return;
    }
    pollfd pfd{stdout_fd_, POLLIN, 0};
    const int ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(left).count());
    const int pr = ::poll(&pfd, 1, ms < 1 ? 1 : ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      status_ = Status::Io(std::string("spawn oem-server: poll: ") + std::strerror(errno));
      terminate();
      return;
    }
    if (pr == 0) continue;
    char buf[512];
    const ssize_t got = ::read(stdout_fd_, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      status_ = Status::Io(std::string("spawn oem-server: read: ") + std::strerror(errno));
      terminate();
      return;
    }
    if (got == 0) {
      status_ = Status::Io("spawn oem-server: child exited before listening (bad "
                           "binary path or flags?)");
      terminate();
      return;
    }
    seen.append(buf, static_cast<std::size_t>(got));
    const auto at = seen.find("listening on ");
    if (at == std::string::npos) continue;
    const auto eol = seen.find('\n', at);
    if (eol == std::string::npos) continue;  // line still partial
    // "listening on HOST:PORT (….)\n"
    std::string rest = seen.substr(at + 13, eol - (at + 13));
    const auto sp = rest.find(' ');
    if (sp != std::string::npos) rest.resize(sp);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos) {
      status_ = Status::Io("spawn oem-server: unparsable listening line: " + rest);
      terminate();
      return;
    }
    host_ = rest.substr(0, colon);
    port_ = static_cast<std::uint16_t>(std::stoul(rest.substr(colon + 1)));
    status_ = Status::Ok();
    return;
  }
}

SpawnedServer::~SpawnedServer() {
  terminate();
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
}

ExitResult SpawnedServer::reap(std::uint64_t grace_ms) {
  int st = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(grace_ms);
  for (;;) {
    const pid_t r = ::waitpid(pid_, &st, WNOHANG);
    if (r == pid_) break;
    if (r < 0 && errno != EINTR) break;  // reaped elsewhere; nothing to report
    if (std::chrono::steady_clock::now() > deadline) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, &st, 0);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pid_ = -1;
  ExitResult res;
  if (WIFEXITED(st)) {
    res.code = WEXITSTATUS(st);
  } else if (WIFSIGNALED(st)) {
    res.signaled = true;
    res.signal = WTERMSIG(st);
  }
  return res;
}

int SpawnedServer::terminate() {
  if (pid_ <= 0) return -1;
  ::kill(pid_, SIGTERM);
  const ExitResult res = reap(10'000);
  if (res.signaled) return 128 + res.signal;
  return res.code;
}

ExitResult SpawnedServer::kill_now() {
  if (pid_ <= 0) return ExitResult{};
  ::kill(pid_, SIGKILL);
  // SIGKILL cannot be caught or delayed; the grace window only covers the
  // kernel actually tearing the process down.
  return reap(10'000);
}

ExitResult SpawnedServer::wait_exit(std::uint64_t timeout_ms) {
  if (pid_ <= 0) return ExitResult{};
  return reap(timeout_ms);
}

}  // namespace oem::server
