// oem-server: the paper's untrusted server (Bob) as a stand-alone process.
//
//   oem-server [--host=127.0.0.1] [--port=0] [--backend=mem|file]
//              [--file-path=PATH] [--shards=1] [--threads=0]
//              [--engine=threads|uring] [--direct] [--shared-cache=BLOCKS]
//              [--response-delay-ns=0] [--service-delay-ns=0]
//              [--idle-timeout-ms=0] [--crash-at=frames:N] [--auth-key=U64]
//
// Prints "oem-server listening on HOST:PORT ..." on stdout once the socket
// is bound (port 0 picks an ephemeral port; harnesses parse this line), then
// serves until SIGINT/SIGTERM, which triggers a graceful shutdown: every
// fully-received frame is dispatched, queued responses are flushed, and all
// stores are flushed (a FileBackend fsyncs).  Exits 0 on a clean shutdown,
// 1 when a store flush failed.
//
// --backend=file persists each store in its own file derived from
// --file-path (PATH.store<id>, plus .shard<s> with --shards > 1); with no
// --file-path the stores live in temp files.  --shards=K stripes every
// store over K inner stores server-side (a ShardedBackend per store), so a
// single-connection client still gets K-way file parallelism on the server.
// --threads picks the worker-pool size (0 = hardware concurrency, 1 =
// serial -- the load bench's baseline).  The delay knobs mirror
// RemoteServerOptions: response-delay is propagation (never blocks later
// frames), service-delay occupies a worker per data frame.
//
// --crash-at=frames:N arms crash injection: the process _exits abruptly
// (exit code 42, no flush, no cleanup) at the top of dispatching the N-th
// received frame -- the chaos harness's simulated kernel panic.
// --auth-key=U64 sets the pre-shared wire-auth key checked on HELLO/PING
// (both ends default to 0; a mismatch fails closed as INTEGRITY).
//
// --engine=uring (or its shorthand --direct) serves file stores through
// DirectFileBackend -- io_uring + O_DIRECT, falling back to the threaded
// FileBackend path when the kernel or filesystem refuses (the banner's
// engine= reports what was REQUESTED; per-store fallback is silent and
// safe).  --shared-cache=BLOCKS puts ONE scan-resistant cache core behind
// every store of every session in this process; stats stay per-store.
// Both require --backend=file; --direct contradicts --engine=threads.
#include <csignal>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "extmem/io_engine.h"
#include "server/server.h"
#include "util/flags.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char b = 1;
  // Self-pipe: the only async-signal-safe way to hand the event to main.
  [[maybe_unused]] const ssize_t r = ::write(g_signal_pipe[1], &b, 1);
}

}  // namespace

int main(int argc, char** argv) {
  oem::Flags flags(argc, argv);
  const std::string host = flags.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(flags.get_u64("port", 0));
  const std::string backend = flags.get("backend", "mem");
  const std::string file_path = flags.get("file-path", "");
  const std::size_t shards = flags.get_u64("shards", 1);
  const std::size_t threads = flags.get_u64("threads", 0);
  const std::string engine = flags.get("engine", "");
  const bool direct = flags.get_bool("direct", false);
  const std::size_t shared_cache_blocks = flags.get_u64("shared-cache", 0);
  const std::uint64_t response_delay_ns = flags.get_u64("response-delay-ns", 0);
  const std::uint64_t service_delay_ns = flags.get_u64("service-delay-ns", 0);
  const std::uint64_t idle_timeout_ms = flags.get_u64("idle-timeout-ms", 0);
  const std::string crash_at = flags.get("crash-at", "");
  const std::uint64_t auth_key = flags.get_u64("auth-key", 0);
  flags.validate_or_die();
  std::uint64_t crash_at_frames = 0;
  if (!crash_at.empty()) {
    // Strict "frames:N" with N >= 1: a typo must not silently disarm the
    // crash the harness thinks it injected.
    const std::string prefix = "frames:";
    char* end = nullptr;
    if (crash_at.compare(0, prefix.size(), prefix) == 0)
      crash_at_frames =
          std::strtoull(crash_at.c_str() + prefix.size(), &end, 10);
    if (end == nullptr || *end != '\0' || crash_at_frames < 1) {
      std::fprintf(stderr,
                   "oem-server: --crash-at must be frames:N with N >= 1, got "
                   "'%s'\n",
                   crash_at.c_str());
      return 2;
    }
  }
  if (backend != "mem" && backend != "file") {
    std::fprintf(stderr, "oem-server: --backend must be mem or file, got '%s'\n",
                 backend.c_str());
    return 2;
  }
  if (!file_path.empty() && backend != "file") {
    std::fprintf(stderr, "oem-server: --file-path requires --backend=file\n");
    return 2;
  }
  if (shards < 1) {
    std::fprintf(stderr, "oem-server: --shards must be >= 1\n");
    return 2;
  }
  if (!engine.empty() && engine != "threads" && engine != "uring") {
    std::fprintf(stderr,
                 "oem-server: --engine must be threads or uring, got '%s'\n",
                 engine.c_str());
    return 2;
  }
  if (direct && engine == "threads") {
    std::fprintf(stderr,
                 "oem-server: --direct contradicts --engine=threads\n");
    return 2;
  }
  if ((direct || !engine.empty()) && backend != "file") {
    std::fprintf(stderr,
                 "oem-server: --engine/--direct require --backend=file\n");
    return 2;
  }
  const bool uring = direct || engine == "uring";

  oem::RemoteServerOptions opts;
  opts.host = host;
  opts.port = port;
  opts.response_delay_ns = response_delay_ns;
  opts.service_delay_ns = service_delay_ns;
  opts.worker_threads = threads;
  opts.idle_timeout_ms = idle_timeout_ms;
  opts.crash_at_frames = crash_at_frames;
  opts.auth_key = auth_key;
  // One process-wide cache core: every store (across every session) attaches
  // a view, so the slab is shared the way one machine's page cache would be.
  // Geometry is adopted from the first store and enforced on the rest.
  oem::SharedCacheHandle shared_cache;
  if (shared_cache_blocks > 0)
    shared_cache = oem::make_shared_cache(shared_cache_blocks);
  opts.store_factory_by_id = [backend, file_path, shards, uring, shared_cache](
                                 std::uint64_t store_id, std::size_t block_words)
      -> std::unique_ptr<oem::StorageBackend> {
    auto base_for = [backend, file_path, store_id, shards,
                     uring](std::size_t bw, std::size_t shard) {
      if (backend == "file") {
        std::string path;
        if (!file_path.empty()) {
          path = file_path + ".store" + std::to_string(store_id);
          if (shards > 1) path += ".shard" + std::to_string(shard);
        }
        if (uring) {
          oem::DirectFileOptions dopts;
          dopts.path = path;
          return oem::direct_file_backend(dopts)(bw);
        }
        oem::FileBackendOptions fo;
        fo.path = path;
        return oem::file_backend(fo)(bw);
      }
      return oem::mem_backend()(bw);
    };
    std::unique_ptr<oem::StorageBackend> store;
    if (shards <= 1) {
      store = base_for(block_words, 0);
    } else {
      store =
          oem::sharded_backend(oem::ShardFactory(base_for), shards)(block_words);
    }
    if (shared_cache != nullptr) {
      store = std::make_unique<oem::CachingBackend>(std::move(store),
                                                    shared_cache);
    }
    return store;
  };

  oem::RemoteServer server(opts);
  if (!server.health().ok()) {
    std::fprintf(stderr, "oem-server: %s\n", server.health().ToString().c_str());
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "oem-server: signal pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::printf(
      "oem-server listening on %s:%u (backend=%s, engine=%s, shards=%zu, "
      "threads=%zu, shared-cache=%zu)\n",
      server.host().c_str(), server.port(), backend.c_str(),
      backend == "file" ? (uring ? "uring" : "threads") : "n/a", shards,
      server.worker_threads(), shared_cache_blocks);
  std::fflush(stdout);

  char b;
  while (::read(g_signal_pipe[0], &b, 1) < 0 && errno == EINTR) {
  }

  const oem::Status flushed = server.shutdown();
  std::printf(
      "oem-server: shut down (%llu frames over %llu connections, %llu evicted, "
      "flush %s)\n",
      static_cast<unsigned long long>(server.frames_served()),
      static_cast<unsigned long long>(server.connections_accepted()),
      static_cast<unsigned long long>(server.connections_evicted()),
      flushed.ToString().c_str());
  std::fflush(stdout);
  return flushed.ok() ? 0 : 1;
}
