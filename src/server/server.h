// RemoteServer: the paper's untrusted server (Bob) as a service.
//
// Serves any inner StorageBackend over TCP via the length-prefixed wire
// protocol in extmem/wire.h (HELLO/READ_MANY/WRITE_MANY/RESIZE/STAT/PING,
// batched ops per frame).  One server multiplexes independent *stores*
// (per-shard namespaces keyed by the HELLO store id), each created on demand
// from a factory, so a ShardedBackend of K RemoteBackends talks to one
// server over K connections without aliasing.  The same class backs both the
// in-process test/bench servers and the stand-alone `oem-server` binary
// (server_main.cc); spawning the binary from a test or bench goes through
// server/subprocess.h.
//
// Concurrency model: an accept thread hands each connection to one of N
// worker threads round-robin; every worker multiplexes its connections with
// ppoll -- non-blocking sockets, an incremental receive buffer that only
// dispatches COMPLETE frames (a partial frame stays buffered, it never
// leaks into dispatch), and a per-connection FIFO queue of outgoing
// responses.  N client sessions x K shard connections are therefore served
// in parallel (worker_threads = 1 degenerates to the old serial loop and is
// the baseline the load bench beats).  Within one connection, frames are
// still processed strictly in arrival order -- the ordering contract the
// client's split-phase pipelining builds on -- and connections sharing a
// store serialize on that store's mutex only for the duration of the
// backend call.
//
// Time model (both knobs compose):
//   * response_delay_ns -- propagation delay: a finished response is held
//     this long before hitting the wire WITHOUT blocking later frames, so a
//     pipelined client still streams.
//   * service_delay_ns  -- service time: each data frame (READ_MANY /
//     WRITE_MANY) occupies its worker this long at dispatch.  Workers model
//     server capacity: with one worker, service times serialize across all
//     clients; with N workers they overlap.
//
// Lifecycle: PING keep-alives reset a connection's idle clock; with
// idle_timeout_ms > 0, a connection silent for longer is evicted (the
// client's next op fails kIo and its reconnect builds a fresh session).
// shutdown() -- also run by the destructor and by oem-server on
// SIGINT/SIGTERM -- stops accepting, lets workers finish dispatching every
// fully-received frame, flushes queued responses (waiving any remaining
// simulated delay), closes connections, then flushes every store.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "extmem/backend.h"
#include "extmem/wire.h"

namespace oem {

struct RemoteServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Builds the backend behind each store id on its first HELLO (null = mem).
  BackendFactory store_factory;
  /// Like store_factory but keyed by the store id too, for stores that need
  /// distinct resources (oem-server --backend=file derives per-store file
  /// paths).  Wins over store_factory when set.
  std::function<std::unique_ptr<StorageBackend>(std::uint64_t store_id,
                                                std::size_t block_words)>
      store_factory_by_id;
  /// Simulated one-way wire latency: every response frame is held this long
  /// before it is written back, WITHOUT blocking the processing of later
  /// frames on the connection -- propagation delay, not service time.  A
  /// pipelined client therefore still streams requests; only a client that
  /// waits out each round trip pays it per frame.  0 = respond immediately.
  std::uint64_t response_delay_ns = 0;
  /// Simulated service time: each READ_MANY/WRITE_MANY dispatch occupies its
  /// worker thread this long.  Unlike response_delay_ns this DOES serialize
  /// behind a busy worker -- it is the knob that makes worker-pool scaling
  /// measurable on any core count.  0 = dispatch at full speed.
  std::uint64_t service_delay_ns = 0;
  /// Worker threads multiplexing connections.  0 = hardware concurrency;
  /// 1 = serial (every connection served by one loop).
  std::size_t worker_threads = 0;
  /// Evict a connection idle (no frame received) for longer than this.
  /// PINGs count as activity.  0 = never evict.
  std::uint64_t idle_timeout_ms = 0;
  /// Crash injection (the chaos harness): after this many frames have been
  /// RECEIVED server-wide, the process calls _exit(kCrashExitCode) at the
  /// top of dispatch -- before the frame is applied or flushed, like a
  /// kernel panic mid-request.  Only meaningful in the stand-alone
  /// oem-server (--crash-at=frames:N); an in-process server taking the
  /// whole test down would prove nothing.  0 = off.
  std::uint64_t crash_at_frames = 0;
  /// Pre-shared key authenticating HELLO/PING control frames (see
  /// wire::control_mac).  0 -- the default on both ends -- still computes
  /// and checks tags, so mismatched deployments fail closed as kIntegrity.
  std::uint64_t auth_key = 0;
};

/// Exit code of a --crash-at injected crash: distinct from a clean exit (0)
/// and from signal death (128+sig as SpawnedServer reports it), so the
/// recovery harness can assert WHICH way the server died.
inline constexpr int kCrashExitCode = 42;

class RemoteServer {
 public:
  explicit RemoteServer(RemoteServerOptions opts = {});
  ~RemoteServer();
  RemoteServer(const RemoteServer&) = delete;
  RemoteServer& operator=(const RemoteServer&) = delete;

  /// Non-ok when the listening socket or worker pool could not be set up.
  Status health() const { return init_status_; }
  const std::string& host() const { return opts_.host; }
  /// The bound port (the ephemeral one when opts.port was 0).
  std::uint16_t port() const { return port_; }
  std::size_t worker_threads() const { return workers_.size(); }

  std::uint64_t frames_served() const {
    return frames_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }
  std::uint64_t pings_served() const {
    return pings_.load(std::memory_order_relaxed);
  }

  /// Graceful stop (idempotent; the destructor runs it too): stop accepting,
  /// dispatch every fully-received frame, flush queued responses (remaining
  /// simulated delay waived), close connections, join all threads, flush
  /// every store.  Returns the first store-flush error, so a service exits
  /// non-zero when durable state could not be written back.
  Status shutdown();

  /// Test hook: hard-close every live connection (a network partition).
  /// Stores survive; clients see kIo and reconnect on their next attempt.
  /// In-flight state fails cleanly: queued responses are discarded with the
  /// connection, and a partially-received frame dies in its connection's
  /// receive buffer -- it never reaches dispatch.
  void drop_connections();

  /// Test hook: Bob's raw view of one stored block (what the server holds).
  Status peek_store(std::uint64_t store_id, std::uint64_t block,
                    std::vector<Word>* out);
  /// Test hook: overwrite one stored block -- the MALICIOUS server swapping
  /// in a stale or fabricated ciphertext behind the client's back (e.g. to
  /// stage a rollback while the client is down).  The client's block MACs,
  /// not the server, are what must catch it.
  Status poke_store(std::uint64_t store_id, std::uint64_t block,
                    std::span<const Word> in);

 private:
  using Clock = std::chrono::steady_clock;

  struct Store {
    std::unique_ptr<StorageBackend> backend;
    std::mutex mu;  // serializes ops from this store's connections
  };

  /// One response waiting to go out: wire bytes (length prefix included),
  /// the time it becomes due (response_delay_ns), and how much was already
  /// sent (a full socket buffer leaves a partial send to resume).
  struct OutFrame {
    Clock::time_point due{};
    std::vector<std::uint8_t> bytes;
    std::size_t sent = 0;
  };

  /// One live connection, owned by exactly one worker.
  struct Conn {
    int fd = -1;
    Store* store = nullptr;            // bound by HELLO
    std::vector<std::uint8_t> in;      // incremental receive buffer
    std::deque<OutFrame> out;          // responses, FIFO = dispatch order
    Clock::time_point last_activity{};
    bool dead = false;  // marked by the worker; retired (closed) under mu
  };

  /// One worker: its thread, a self-pipe the accept thread (and shutdown)
  /// wakes it with, and the connections it owns.  `mu` guards `incoming`
  /// and every fd close/shutdown on this worker's connections, so
  /// drop_connections never touches a recycled descriptor.
  struct Worker {
    std::thread th;
    int wake_rd = -1;
    int wake_wr = -1;
    std::mutex mu;
    std::vector<int> incoming;               // accepted fds awaiting adoption
    std::vector<std::unique_ptr<Conn>> conns;  // mutated only by the worker
  };

  void accept_loop();
  void worker_loop(Worker& w);
  static void wake(Worker& w);
  /// Drains the socket into c.in and dispatches every complete frame.
  /// False: peer gone or protocol violation -- the connection must die.
  bool pump_in(Conn& c);
  bool drain_frames(Conn& c);
  bool handle_frame(Conn& c, const std::uint8_t* p, std::size_t n);
  void enqueue_response(Conn& c, std::vector<std::uint8_t> body);
  /// Sends every due response until the socket would block; false = error.
  bool flush_out(Conn& c, Clock::time_point now);
  Result<Store*> bind_store(std::uint64_t store_id, std::uint64_t block_words);
  Status flush_stores();

  RemoteServerOptions opts_;
  Status init_status_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> shut_{false};  // shutdown() already ran (or is running)
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> pings_{0};

  std::mutex stores_mu_;
  std::map<std::uint64_t, std::unique_ptr<Store>> stores_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t next_worker_ = 0;  // accept thread only
  std::thread accept_thread_;
};

}  // namespace oem
