// ExtArray: a typed handle to an array of Records stored on the BlockDevice.
//
// An ExtArray is a contiguous extent of device blocks holding `num_records`
// records at `records_per_block` per block.  It is a value handle -- all I/O
// goes through the owning Client so that encryption, I/O accounting and
// cache metering are applied uniformly.
#pragma once

#include <cstdint>

#include "extmem/device.h"
#include "util/math.h"

namespace oem {

class ExtArray {
 public:
  ExtArray() = default;
  ExtArray(Extent extent, std::uint64_t num_records, std::size_t records_per_block)
      : extent_(extent), num_records_(num_records), records_per_block_(records_per_block) {}

  bool valid() const { return records_per_block_ != 0; }
  std::uint64_t num_records() const { return num_records_; }
  std::uint64_t num_blocks() const { return extent_.num_blocks; }
  std::size_t records_per_block() const { return records_per_block_; }
  const Extent& extent() const { return extent_; }

  /// Device block index backing array block i.
  std::uint64_t device_block(std::uint64_t i) const {
    return extent_.first_block + i;
  }

  /// A sub-array view: blocks [first, first + count) of this array.
  ExtArray slice_blocks(std::uint64_t first, std::uint64_t count) const {
    Extent e{extent_.first_block + first, count};
    return ExtArray(e, count * records_per_block_, records_per_block_);
  }

 private:
  Extent extent_;
  std::uint64_t num_records_ = 0;
  std::size_t records_per_block_ = 0;
};

}  // namespace oem
