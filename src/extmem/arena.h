// Pooled, recycling staging buffers for the I/O hot paths.
//
// Every layer of the engine stages block payloads somewhere: the pipeline's
// window wires, ShardedBackend's strided sub-frames, AsyncBackend's queued
// writes, DirectFileBackend's O_DIRECT bounce buffers.  Before this file
// each of those was a per-frame std::vector<Word> -- a heap allocation (and
// a page-fault storm on first touch) per window in steady state.
//
// BufferArena recycles page-aligned buffers through a free list so the
// steady state performs zero heap allocations: the first few windows
// populate the pool, every later window reuses it.  Buffers are aligned to
// 4096 bytes -- which also satisfies O_DIRECT's alignment contract, so the
// same arena feeds the io_uring path for free -- and allocations of 2 MiB
// or more first try an anonymous MAP_HUGETLB mapping (fewer TLB misses on
// big windows), quietly falling back to aligned heap memory when the
// kernel has no huge pages to give.
//
// ArenaStats is the allocation-counting test hook: tests run a pipeline to
// steady state, snapshot `allocations`, run N more windows, and pin that
// the counter did not move (tests/hierarchy_test.cc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "extmem/record.h"

namespace oem {

/// Counters for one arena.  `allocations` counts fresh memory grabbed from
/// the OS/heap; `reuses` counts acquisitions served from the free list.  A
/// zero-allocation steady state shows `allocations` flat while `reuses`
/// climbs.
struct ArenaStats {
  std::uint64_t allocations = 0;
  std::uint64_t reuses = 0;
  std::uint64_t bytes_allocated = 0;
  std::uint64_t hugepage_buffers = 0;
  std::uint64_t outstanding = 0;  ///< buffers currently lent out
  std::uint64_t pooled = 0;       ///< buffers parked on the free list
};

/// A pool of page-aligned buffers.  Thread-safe; one global instance
/// (global_staging_arena) feeds all engine layers, so a buffer retired by
/// one layer is immediately reusable by another.
class BufferArena {
 public:
  explicit BufferArena(std::size_t alignment = 4096);
  ~BufferArena();
  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  ArenaStats stats() const;
  /// Frees every pooled buffer (lent-out buffers are unaffected).
  void trim();

 private:
  friend class ArenaBuffer;
  struct Buf {
    void* p = nullptr;
    std::size_t cap = 0;  ///< bytes
    bool huge = false;
  };
  /// Returns a buffer with capacity >= `bytes` (smallest pooled fit, else a
  /// fresh allocation).  Contents are unspecified.
  Buf acquire(std::size_t bytes);
  void release(Buf b);
  static void destroy(Buf& b);

  const std::size_t alignment_;
  mutable std::mutex mu_;
  std::vector<Buf> free_;
  ArenaStats stats_;
};

/// The process-wide staging pool.
BufferArena& global_staging_arena();

/// RAII view of one arena buffer with a minimal vector-of-Word face
/// (data/size/resize/operator[]).  Unlike std::vector, resize() never
/// value-initializes and MAY DISCARD CONTENTS when it grows -- callers are
/// staging code that fully overwrites the buffer after sizing it.  The
/// backing memory returns to the arena on destruction (or reset()).
class ArenaBuffer {
 public:
  ArenaBuffer() = default;                     ///< uses global_staging_arena()
  explicit ArenaBuffer(BufferArena* arena) : arena_(arena) {}
  ~ArenaBuffer() { reset(); }
  ArenaBuffer(ArenaBuffer&& o) noexcept
      : arena_(o.arena_), buf_(o.buf_), size_(o.size_) {
    o.buf_ = BufferArena::Buf{};
    o.size_ = 0;
  }
  ArenaBuffer& operator=(ArenaBuffer&& o) noexcept {
    if (this != &o) {
      reset();
      arena_ = o.arena_;
      buf_ = o.buf_;
      size_ = o.size_;
      o.buf_ = BufferArena::Buf{};
      o.size_ = 0;
    }
    return *this;
  }
  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;

  Word* data() { return static_cast<Word*>(buf_.p); }
  const Word* data() const { return static_cast<const Word*>(buf_.p); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Word& operator[](std::size_t i) { return data()[i]; }
  const Word& operator[](std::size_t i) const { return data()[i]; }
  Word* begin() { return data(); }
  Word* end() { return data() + size_; }
  const Word* begin() const { return data(); }
  const Word* end() const { return data() + size_; }

  /// Sizes the buffer to `words`.  Growth beyond capacity swaps the backing
  /// buffer (contents discarded); shrinking and within-capacity growth keep
  /// the buffer, so a steady-state loop that sizes to the same window never
  /// touches the arena.
  void resize(std::size_t words);
  void clear() { size_ = 0; }
  /// Returns the backing memory to the arena.
  void reset();

 private:
  BufferArena& arena() {
    return arena_ != nullptr ? *arena_ : global_staging_arena();
  }
  BufferArena* arena_ = nullptr;
  BufferArena::Buf buf_{};
  std::size_t size_ = 0;  ///< words
};

}  // namespace oem
