#include "extmem/device.h"

#include <cassert>
#include <cstring>

namespace oem {

BlockDevice::BlockDevice(std::size_t block_words) : block_words_(block_words) {
  assert(block_words >= 1);
}

Extent BlockDevice::allocate(std::uint64_t nblocks) {
  Extent e{num_blocks_, nblocks};
  num_blocks_ += nblocks;
  storage_.resize(static_cast<std::size_t>(num_blocks_) * block_words_);
  return e;
}

void BlockDevice::release(const Extent& e) {
  if (e.num_blocks == 0) return;
  if (e.first_block + e.num_blocks == num_blocks_) {
    num_blocks_ = e.first_block;
    storage_.resize(static_cast<std::size_t>(num_blocks_) * block_words_);
  }
  // Non-LIFO releases are ignored: the arena is reclaimed wholesale when the
  // Client is destroyed.  Algorithms allocate scratch LIFO, so in practice
  // everything is reclaimed.
}

void BlockDevice::read(std::uint64_t block, std::span<Word> out) {
  assert(block < num_blocks_);
  assert(out.size() == block_words_);
  stats_.reads++;
  trace_.on_access(IoOp::kRead, block);
  std::memcpy(out.data(), storage_.data() + block * block_words_,
              block_words_ * sizeof(Word));
}

void BlockDevice::write(std::uint64_t block, std::span<const Word> in) {
  assert(block < num_blocks_);
  assert(in.size() == block_words_);
  stats_.writes++;
  trace_.on_access(IoOp::kWrite, block);
  std::memcpy(storage_.data() + block * block_words_, in.data(),
              block_words_ * sizeof(Word));
}

std::span<const Word> BlockDevice::raw(std::uint64_t block) const {
  assert(block < num_blocks_);
  return {storage_.data() + block * block_words_, block_words_};
}

}  // namespace oem
