#include "extmem/device.h"

#include <cassert>
#include <stdexcept>

namespace oem {

namespace {

/// Backend failures are storage-layer exceptions from the algorithms' point
/// of view (the algorithms' own Status channel is reserved for whp events);
/// the Session facade catches and converts them back into Status::Io.
[[noreturn]] void backend_fail(const char* op, const Status& st) {
  throw std::runtime_error(std::string("storage backend ") + op + " failed: " +
                           st.ToString());
}

}  // namespace

BlockDevice::BlockDevice(std::size_t block_words, BackendFactory factory)
    : backend_(factory ? factory(block_words)
                       : std::make_unique<MemBackend>(block_words)) {
  assert(block_words >= 1);
  assert(backend_ && backend_->block_words() == block_words);
}

Extent BlockDevice::allocate(std::uint64_t nblocks) {
  Extent e{num_blocks_, nblocks};
  num_blocks_ += nblocks;
  Status st = backend_->resize(num_blocks_);
  if (!st.ok()) backend_fail("allocate", st);
  return e;
}

void BlockDevice::release(const Extent& e) {
  if (e.num_blocks == 0) return;
  if (e.first_block + e.num_blocks == num_blocks_) {
    num_blocks_ = e.first_block;
    Status st = backend_->resize(num_blocks_);
    if (!st.ok()) backend_fail("release", st);
  }
  // Non-LIFO releases are ignored: the arena is reclaimed wholesale when the
  // Client is destroyed.  Algorithms allocate scratch LIFO, so in practice
  // everything is reclaimed.
}

void BlockDevice::read(std::uint64_t block, std::span<Word> out) {
  assert(block < num_blocks_);
  assert(out.size() == block_words());
  stats_.reads++;
  stats_.read_ops++;
  trace_.on_access(IoOp::kRead, block);
  Status st = backend_->read(block, out);
  if (!st.ok()) backend_fail("read", st);
}

void BlockDevice::write(std::uint64_t block, std::span<const Word> in) {
  assert(block < num_blocks_);
  assert(in.size() == block_words());
  stats_.writes++;
  stats_.write_ops++;
  trace_.on_access(IoOp::kWrite, block);
  Status st = backend_->write(block, in);
  if (!st.ok()) backend_fail("write", st);
}

void BlockDevice::read_many(std::span<const std::uint64_t> blocks,
                            std::span<Word> out) {
  if (blocks.empty()) return;
  assert(out.size() == blocks.size() * block_words());
  stats_.reads += blocks.size();
  stats_.read_ops++;
  for (std::uint64_t b : blocks) {
    assert(b < num_blocks_);
    trace_.on_access(IoOp::kRead, b);
  }
  Status st = backend_->read_many(blocks, out);
  if (!st.ok()) backend_fail("read_many", st);
}

void BlockDevice::write_many(std::span<const std::uint64_t> blocks,
                             std::span<const Word> in) {
  if (blocks.empty()) return;
  assert(in.size() == blocks.size() * block_words());
  stats_.writes += blocks.size();
  stats_.write_ops++;
  for (std::uint64_t b : blocks) {
    assert(b < num_blocks_);
    trace_.on_access(IoOp::kWrite, b);
  }
  Status st = backend_->write_many(blocks, in);
  if (!st.ok()) backend_fail("write_many", st);
}

std::vector<Word> BlockDevice::raw(std::uint64_t block) const {
  assert(block < num_blocks_);
  std::vector<Word> out(block_words());
  Status st = backend_->read(block, out);
  if (!st.ok()) backend_fail("raw read", st);
  return out;
}

void BlockDevice::write_raw(std::uint64_t block, std::span<const Word> in) {
  assert(block < num_blocks_);
  assert(in.size() == block_words());
  Status st = backend_->write(block, in);
  if (!st.ok()) backend_fail("raw write", st);
}

void BlockDevice::read_raw_range(std::uint64_t first_block, std::uint64_t count,
                                 std::span<Word> out) const {
  assert(first_block + count <= num_blocks_);
  assert(out.size() == count * block_words());
  std::vector<std::uint64_t> ids(count);
  for (std::uint64_t i = 0; i < count; ++i) ids[i] = first_block + i;
  Status st = backend_->read_many(ids, out);
  if (!st.ok()) backend_fail("raw range read", st);
}

void BlockDevice::write_raw_range(std::uint64_t first_block, std::uint64_t count,
                                  std::span<const Word> in) {
  assert(first_block + count <= num_blocks_);
  assert(in.size() == count * block_words());
  std::vector<std::uint64_t> ids(count);
  for (std::uint64_t i = 0; i < count; ++i) ids[i] = first_block + i;
  Status st = backend_->write_many(ids, in);
  if (!st.ok()) backend_fail("raw range write", st);
}

}  // namespace oem
