#include "extmem/device.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "extmem/io_engine.h"

namespace oem {

namespace {

/// Backend failures are storage-layer exceptions from the algorithms' point
/// of view (the algorithms' own Status channel is reserved for whp events);
/// the Session facade catches and converts them back into Status::Io --
/// except integrity violations, which keep their own exception type so they
/// surface as kIntegrity and are never mistaken for a retryable I/O fault.
[[noreturn]] void backend_fail(const char* op, const Status& st) {
  const std::string what =
      std::string("storage backend ") + op + " failed: " + st.ToString();
  if (st.code() == StatusCode::kIntegrity) throw IntegrityError(what);
  if (st.code() == StatusCode::kTimeout) throw TimeoutError(what);
  throw std::runtime_error(what);
}

}  // namespace

BlockDevice::BlockDevice(std::size_t block_words, BackendFactory factory,
                         RetryPolicy retry, std::size_t pipeline_depth)
    : backend_(factory ? factory(block_words)
                       : std::make_unique<MemBackend>(block_words)),
      retry_(retry),
      pipeline_depth_(pipeline_depth < 1 ? 1 : pipeline_depth) {
  assert(block_words >= 1);
  assert(backend_ && backend_->block_words() == block_words);
  if (retry_.max_attempts < 1) retry_.max_attempts = 1;
  async_ = dynamic_cast<AsyncBackend*>(backend_.get());
  // Submitted ops execute on the I/O thread; it applies the same bounded
  // retry there so prefetch and fault recovery compose.
  if (async_) async_->set_retry_attempts(retry_.max_attempts);
  // The cache (when configured) sits at the top of the stack or directly
  // under the AsyncBackend -- Session::Builder and bench_common compose it
  // there; benches read its counters through cache_backend().
  cache_ = dynamic_cast<CachingBackend*>(async_ ? &async_->inner() : backend_.get());
}

void BlockDevice::mark_drained(IoTicket t, bool all) {
  std::size_t done = 0;
  for (const PendingDrain& p : pending_drain_) {
    if (!all && p.ticket > t) break;
    if (p.is_write) {
      stats_.drained_writes += p.nblocks;
      stats_.drained_write_ops++;
    } else {
      stats_.drained_reads += p.nblocks;
      stats_.drained_read_ops++;
    }
    ++done;
  }
  pending_drain_.erase(pending_drain_.begin(),
                       pending_drain_.begin() + static_cast<std::ptrdiff_t>(done));
}

Status BlockDevice::consume_parked_async_error() const {
  if (async_ == nullptr) return Status::Ok();
  // drain() also reports-and-clears the first error of any op that already
  // retired; with an empty queue this is the uncontended fast path.
  return async_->drain();
}

Extent BlockDevice::allocate(std::uint64_t nblocks) {
  Extent e{num_blocks_, nblocks};
  num_blocks_ += nblocks;
  versions_.resize(num_blocks_, 0);
  Status st = with_retry([&] { return backend_->resize(num_blocks_); });
  if (!st.ok()) backend_fail("allocate", st);
  return e;
}

void BlockDevice::release(const Extent& e) {
  if (e.num_blocks == 0) return;
  if (e.first_block + e.num_blocks == num_blocks_) {
    num_blocks_ = e.first_block;
    // Drop the released blocks' version history: the backend re-zeroes a
    // shrunk-then-regrown block, so the client-side table must reset too.
    versions_.resize(num_blocks_);
    Status st = with_retry([&] { return backend_->resize(num_blocks_); });
    if (!st.ok()) backend_fail("release", st);
    return;
  }
  // Non-LIFO release: the extent is dead but interior; remember it so trim()
  // can reclaim it once everything above is released too.
  mark_discarded(e);
}

void BlockDevice::mark_discarded(const Extent& e) {
  if (e.num_blocks == 0) return;
  assert(e.first_block + e.num_blocks <= num_blocks_);
  // Sorted insert + local coalescing: the list stays sorted by first_block
  // and free of adjacent/overlapping extents, so each call is O(k) moves at
  // worst, without rebuilding the whole list.
  auto it = std::upper_bound(
      discarded_.begin(), discarded_.end(), e,
      [](const Extent& a, const Extent& b) { return a.first_block < b.first_block; });
  it = discarded_.insert(it, e);
  // Merge backward into the predecessor, then forward over any successors
  // the (possibly grown) extent now touches.
  if (it != discarded_.begin()) {
    auto prev = it - 1;
    if (it->first_block <= prev->first_block + prev->num_blocks) {
      const std::uint64_t end = std::max(prev->first_block + prev->num_blocks,
                                         it->first_block + it->num_blocks);
      prev->num_blocks = end - prev->first_block;
      it = discarded_.erase(it);
      --it;
    }
  }
  auto next = it + 1;
  while (next != discarded_.end() &&
         next->first_block <= it->first_block + it->num_blocks) {
    const std::uint64_t end = std::max(it->first_block + it->num_blocks,
                                       next->first_block + next->num_blocks);
    it->num_blocks = end - it->first_block;
    next = discarded_.erase(next);
  }
}

std::uint64_t BlockDevice::trim() {
  const std::uint64_t before = num_blocks_;
  while (!discarded_.empty()) {
    const Extent& tail = discarded_.back();
    if (tail.first_block + tail.num_blocks < num_blocks_) break;  // live tail above
    num_blocks_ = std::min(num_blocks_, tail.first_block);
    discarded_.pop_back();
  }
  if (num_blocks_ != before) {
    versions_.resize(num_blocks_);
    Status st = with_retry([&] { return backend_->resize(num_blocks_); });
    if (!st.ok()) backend_fail("trim", st);
  }
  return before - num_blocks_;
}

void BlockDevice::read(std::uint64_t block, std::span<Word> out) {
  assert(block < num_blocks_);
  assert(out.size() == block_words());
  stats_.reads++;
  stats_.read_ops++;
  trace_.on_access(IoOp::kRead, block);
  Status st = with_retry([&] { return backend_->read(block, out); });
  if (!st.ok()) backend_fail("read", st);
  // The synchronous call drained any submitted split-phase frames first.
  mark_drained(0, /*all=*/true);
  stats_.drained_reads++;
  stats_.drained_read_ops++;
}

void BlockDevice::write(std::uint64_t block, std::span<const Word> in) {
  assert(block < num_blocks_);
  assert(in.size() == block_words());
  stats_.writes++;
  stats_.write_ops++;
  trace_.on_access(IoOp::kWrite, block);
  Status st = with_retry([&] { return backend_->write(block, in); });
  if (!st.ok()) backend_fail("write", st);
  mark_drained(0, /*all=*/true);
  stats_.drained_writes++;
  stats_.drained_write_ops++;
}

void BlockDevice::record(IoOp op, std::span<const std::uint64_t> blocks) {
  for (std::uint64_t b : blocks) {
    assert(b < num_blocks_);
    (void)b;
    trace_.on_access(op, b);
  }
}

void BlockDevice::read_many(std::span<const std::uint64_t> blocks,
                            std::span<Word> out) {
  if (blocks.empty()) return;
  assert(out.size() == blocks.size() * block_words());
  stats_.reads += blocks.size();
  stats_.read_ops++;
  record(IoOp::kRead, blocks);
  Status st = with_retry([&] { return backend_->read_many(blocks, out); });
  if (!st.ok()) backend_fail("read_many", st);
  mark_drained(0, /*all=*/true);
  stats_.drained_reads += blocks.size();
  stats_.drained_read_ops++;
}

void BlockDevice::write_many(std::span<const std::uint64_t> blocks,
                             std::span<const Word> in) {
  if (blocks.empty()) return;
  assert(in.size() == blocks.size() * block_words());
  stats_.writes += blocks.size();
  stats_.write_ops++;
  record(IoOp::kWrite, blocks);
  Status st = with_retry([&] { return backend_->write_many(blocks, in); });
  if (!st.ok()) backend_fail("write_many", st);
  mark_drained(0, /*all=*/true);
  stats_.drained_writes += blocks.size();
  stats_.drained_write_ops++;
}

BlockDevice::IoTicket BlockDevice::submit_read_many(
    std::span<const std::uint64_t> blocks, std::span<Word> out) {
  if (blocks.empty()) return 0;
  assert(out.size() == blocks.size() * block_words());
  stats_.reads += blocks.size();
  stats_.read_ops++;
  record(IoOp::kRead, blocks);
  if (async_) {
    const IoTicket t = async_->submit_read_many(blocks, out);
    pending_drain_.push_back({t, /*is_write=*/false, blocks.size()});
    return t;
  }
  Status st = with_retry([&] { return backend_->read_many(blocks, out); });
  if (!st.ok()) backend_fail("read_many", st);
  stats_.drained_reads += blocks.size();
  stats_.drained_read_ops++;
  return 0;
}

BlockDevice::IoTicket BlockDevice::submit_write_many(
    std::span<const std::uint64_t> blocks, std::vector<Word>&& in) {
  if (blocks.empty()) return 0;
  assert(in.size() == blocks.size() * block_words());
  stats_.writes += blocks.size();
  stats_.write_ops++;
  record(IoOp::kWrite, blocks);
  if (async_) {
    const IoTicket t = async_->submit_write_many(
        std::vector<std::uint64_t>(blocks.begin(), blocks.end()), std::move(in));
    pending_drain_.push_back({t, /*is_write=*/true, blocks.size()});
    return t;
  }
  Status st = with_retry([&] { return backend_->write_many(blocks, in); });
  if (!st.ok()) backend_fail("write_many", st);
  stats_.drained_writes += blocks.size();
  stats_.drained_write_ops++;
  return 0;
}

BlockDevice::IoTicket BlockDevice::submit_write_many_borrowed(
    std::span<const std::uint64_t> blocks, std::span<const Word> in) {
  if (blocks.empty()) return 0;
  assert(in.size() == blocks.size() * block_words());
  stats_.writes += blocks.size();
  stats_.write_ops++;
  record(IoOp::kWrite, blocks);
  if (async_) {
    const IoTicket t = async_->submit_write_many_borrowed(blocks, in);
    pending_drain_.push_back({t, /*is_write=*/true, blocks.size()});
    return t;
  }
  Status st = with_retry([&] { return backend_->write_many(blocks, in); });
  if (!st.ok()) backend_fail("write_many", st);
  stats_.drained_writes += blocks.size();
  stats_.drained_write_ops++;
  return 0;
}

void BlockDevice::wait(IoTicket t) {
  if (t == 0 || !async_) return;
  Status st = async_->wait(t);
  if (!st.ok()) backend_fail("async wait", st);
  mark_drained(t, /*all=*/false);
}

void BlockDevice::drain() {
  if (!async_) return;
  Status st = async_->drain();
  if (!st.ok()) backend_fail("async drain", st);
  mark_drained(0, /*all=*/true);
}

std::vector<Word> BlockDevice::raw(std::uint64_t block) const {
  assert(block < num_blocks_);
  std::vector<Word> out(block_words());
  Status st = with_retry([&] { return backend_->read(block, out); });
  if (!st.ok()) backend_fail("raw read", st);
  return out;
}

void BlockDevice::write_raw(std::uint64_t block, std::span<const Word> in) {
  assert(block < num_blocks_);
  assert(in.size() == block_words());
  Status st = with_retry([&] { return backend_->write(block, in); });
  if (!st.ok()) backend_fail("raw write", st);
}

void BlockDevice::read_raw_range(std::uint64_t first_block, std::uint64_t count,
                                 std::span<Word> out) const {
  assert(first_block + count <= num_blocks_);
  assert(out.size() == count * block_words());
  std::vector<std::uint64_t> ids(count);
  for (std::uint64_t i = 0; i < count; ++i) ids[i] = first_block + i;
  Status st = with_retry([&] { return backend_->read_many(ids, out); });
  if (!st.ok()) backend_fail("raw range read", st);
}

void BlockDevice::write_raw_range(std::uint64_t first_block, std::uint64_t count,
                                  std::span<const Word> in) {
  assert(first_block + count <= num_blocks_);
  assert(in.size() == count * block_words());
  std::vector<std::uint64_t> ids(count);
  for (std::uint64_t i = 0; i < count; ++i) ids[i] = first_block + i;
  Status st = with_retry([&] { return backend_->write_many(ids, in); });
  if (!st.ok()) backend_fail("raw range write", st);
}

}  // namespace oem
