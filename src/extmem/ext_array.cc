#include "extmem/ext_array.h"

namespace oem {}
