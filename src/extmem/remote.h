// Remote block store, client side: the paper's trusted client (Alice)
// talking to the untrusted server (Bob) across a real process boundary.
//
// The paper's model is a trusted client running oblivious algorithms against
// outsourced storage; every obliviousness argument is about the request
// sequence Bob observes, so the storage may as well be on the other end of a
// socket.  RemoteBackend is a StorageBackend whose ops are request/response
// frames over the wire protocol in extmem/wire.h (see docs/WIRE_PROTOCOL.md).
// The server side -- the in-process RemoteServer and the stand-alone
// oem-server binary -- lives in server/server.h.
//
// RemoteBackend composes under the existing ShardedBackend/AsyncBackend/
// FaultyBackend/EncryptedBackend stack unchanged: per-shard connections,
// prefetch, fault injection and the BlockDevice RetryPolicy all apply.  A
// dropped connection surfaces as StatusCode::kIo and the next attempt
// reconnects, so the device's bounded retries recover transparently.  When
// consecutive CONNECT attempts keep failing (the server is down or flapping),
// reconnects back off exponentially with jitter up to backoff_max_us, so the
// retry budget is spent waiting for the server to come back instead of being
// burned in a microseconds-long spin of doomed connect() calls.
//
// Wire pipelining: RemoteBackend implements the split-phase
// begin_*/complete_oldest API (see backend.h), keeping up to
// RemoteBackendOptions::max_inflight request frames outstanding on the
// connection.  The server processes a connection's frames strictly in
// arrival order, so sequential read/write semantics (and all hazard
// arguments) are preserved with any number of frames in flight -- this is
// what lets a depth-K block pipeline hide the round trip instead of paying
// it once per window.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <span>
#include <string>

#include "extmem/backend.h"
#include "extmem/wire.h"

namespace oem {

struct RemoteBackendOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Server-side namespace; Session::Builder gives each shard its own.
  std::uint64_t store_id = 0;
  /// Request frames kept in flight on the connection by the split-phase API
  /// (1 = classic synchronous round trips).
  std::size_t max_inflight = 16;
  /// Reconnect backoff: after the k-th consecutive FAILED connect attempt the
  /// next attempt waits ~ min(backoff_max_us, backoff_initial_us << (k-1))
  /// microseconds (uniformly jittered to half that on average, so a fleet of
  /// shard connections does not stampede a recovering server in lockstep).
  /// A successful connect resets the streak, and losing an ESTABLISHED
  /// connection never waits -- the first reconnect attempt is immediate, only
  /// a server that keeps refusing pays the ramp.  backoff_initial_us = 0
  /// disables the backoff entirely.
  std::uint64_t backoff_initial_us = 500;
  std::uint64_t backoff_max_us = 200'000;
  /// Per-frame send/receive deadline in milliseconds (0 = none: blocking
  /// I/O, the pre-PR 10 behavior).  One deadline bounds each WHOLE frame, so
  /// a dead, hung, or byzantine-slow (slow-loris) server surfaces as
  /// StatusCode::kTimeout -- retryable: the connection is torn down and the
  /// next attempt reconnects -- instead of hanging the session forever.
  std::uint64_t io_deadline_ms = 0;
  /// Pre-shared key authenticating the HELLO/PING control frames (see
  /// wire::control_mac).  0 -- the default on both ends -- still computes and
  /// checks the tags, so a key mismatch between deployments fails closed as
  /// kIntegrity; a nonzero shared secret is what buys active-attacker
  /// resistance.
  std::uint64_t auth_key = 0;
};

class RemoteBackend : public StorageBackend {
 public:
  RemoteBackend(std::size_t block_words, RemoteBackendOptions opts);
  ~RemoteBackend() override;
  const char* name() const override { return "remote"; }
  /// Probes the connection (connect + HELLO on first use) so a bad address
  /// surfaces at Session build time instead of on the first I/O.
  Status health() const override;

  const RemoteBackendOptions& options() const { return opts_; }
  /// Request frames completed (one per round trip) and reconnects performed.
  std::uint64_t round_trips() const { return round_trips_.load(std::memory_order_relaxed); }
  std::uint64_t reconnects() const { return reconnects_.load(std::memory_order_relaxed); }
  /// Backoff sleeps taken before reconnect attempts, and their total length;
  /// tests assert the ramp without timing the sleeps themselves.
  std::uint64_t backoff_waits() const { return backoff_waits_.load(std::memory_order_relaxed); }
  std::uint64_t backoff_waited_us() const {
    return backoff_waited_us_.load(std::memory_order_relaxed);
  }
  /// STAT round trip: the server's view of this store's geometry.
  Status stat(std::uint64_t* num_blocks, std::uint64_t* block_words_out);
  /// Keep-alive heartbeat: a PING round trip carrying a token the server must
  /// echo.  Resets the server's idle clock for this connection, so a client
  /// that pings inside the server's idle timeout is never evicted.  Must not
  /// be called with split-phase frames in flight (it is a synchronous RPC).
  Status ping();

 protected:
  Status do_resize(std::uint64_t nblocks) override;
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;
  std::size_t do_max_inflight() const override { return opts_.max_inflight; }
  Status do_begin_read_many(std::span<const std::uint64_t> blocks,
                            std::span<Word> out) override;
  Status do_begin_write_many(std::span<const std::uint64_t> blocks,
                             std::span<const Word> in) override;
  Status do_complete_oldest() override;

 private:
  /// One outstanding request frame awaiting its response.
  struct Pending {
    bool is_write = false;
    bool dead = false;  // connection died before the response arrived
    Word* dest = nullptr;
    std::size_t dest_words = 0;
  };

  /// Connect + HELLO when there is no live connection.  Refuses (kIo) while
  /// responses are still owed on a dead connection -- those must be failed
  /// out via complete_oldest first, so no response can be mis-matched.
  /// Honors (and on failure advances) the reconnect backoff schedule.
  Status ensure_connected() const;
  /// One connect + HELLO attempt, no backoff bookkeeping.
  Status try_connect() const;
  /// Records a failed connect attempt: grows the capped, jittered delay the
  /// next attempt must wait out.
  void note_connect_failure() const;
  /// Close the socket and mark every outstanding request dead.
  void kill_connection(const char* why) const;
  Status send_frame(wire::Op op, std::span<const std::uint64_t> head,
                    std::span<const Word> payload) const;
  /// Receives one response frame; an ok response must carry exactly
  /// `payload_dest.size()` words, copied out.
  Status recv_response(std::span<Word> payload_dest) const;
  /// Synchronous round trip with no outstanding pipeline traffic.
  Status rpc(wire::Op op, std::span<const std::uint64_t> head,
             std::span<const Word> payload, std::span<Word> response);
  /// Fails out any dead leftovers so a fresh synchronous op can reconnect.
  void drain_dead();

  RemoteBackendOptions opts_;
  mutable int fd_ = -1;
  mutable bool was_connected_ = false;
  mutable std::string last_error_;
  mutable std::deque<Pending> pending_;
  // Reconnect backoff state (mutable: health() const probes the connection).
  mutable unsigned connect_failures_ = 0;
  mutable std::chrono::steady_clock::time_point next_connect_at_{};
  std::uint64_t ping_token_ = 0;
  mutable std::uint64_t hello_token_ = 0;  // fresh per handshake (anti-replay)
  mutable std::atomic<std::uint64_t> round_trips_{0};
  mutable std::atomic<std::uint64_t> reconnects_{0};
  mutable std::atomic<std::uint64_t> backoff_waits_{0};
  mutable std::atomic<std::uint64_t> backoff_waited_us_{0};
};

/// Backend factory for a remote store.  With sharding, use the ShardFactory
/// form so each shard gets its own store id (and hence its own connection):
/// Session::Builder::remote does exactly that.
BackendFactory remote_backend(RemoteBackendOptions opts);

}  // namespace oem
