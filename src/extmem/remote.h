// Remote block store: the paper's untrusted server (Bob) as a real process
// boundary instead of a sleep model.
//
// The paper's model is a trusted client (Alice) running oblivious algorithms
// against outsourced storage; every obliviousness argument is about the
// request sequence Bob observes, so the storage may as well be on the other
// end of a socket.  This file provides both ends of that split:
//
//   * RemoteServer  -- serves any inner StorageBackend over a loopback TCP
//     socket via a length-prefixed binary wire protocol
//     (HELLO/READ_MANY/WRITE_MANY/RESIZE/STAT, batched ops per frame).  One
//     server multiplexes independent *stores* (per-shard namespaces keyed by
//     the HELLO store id), each created on demand from a BackendFactory, so
//     a ShardedBackend of K RemoteBackends talks to one server over K
//     connections without aliasing.
//
//   * RemoteBackend -- the client side: a StorageBackend whose ops are
//     request/response frames.  It composes under the existing
//     ShardedBackend/AsyncBackend/FaultyBackend/EncryptedBackend stack
//     unchanged: per-shard connections, prefetch, fault injection and the
//     BlockDevice RetryPolicy all apply.  A dropped connection surfaces as
//     StatusCode::kIo and the next attempt reconnects, so the device's
//     bounded retries recover transparently.
//
// Wire pipelining: RemoteBackend implements the split-phase
// begin_*/complete_oldest API (see backend.h), keeping up to
// RemoteBackendOptions::max_inflight request frames outstanding on the
// connection.  The server processes a connection's frames strictly in
// arrival order, so sequential read/write semantics (and all hazard
// arguments) are preserved with any number of frames in flight -- this is
// what lets a depth-K block pipeline hide the round trip instead of paying
// it once per window.  See docs/WIRE_PROTOCOL.md for the frame layout and
// failure semantics.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "extmem/backend.h"

namespace oem {

// ---------------------------------------------------------------------------
// Wire protocol constants (docs/WIRE_PROTOCOL.md).

namespace wire {

inline constexpr std::uint64_t kProtocolVersion = 1;

enum class Op : std::uint64_t {
  kHello = 1,      // version, store id, block words -> num_blocks
  kReadMany = 2,   // count, ids[count] -> words[count * block_words]
  kWriteMany = 3,  // count, ids[count], words[count * block_words] -> ()
  kResize = 4,     // nblocks -> ()
  kStat = 5,       // () -> num_blocks, block_words
};

/// Hard cap on a frame's payload; a corrupt length prefix must not turn into
/// a giant allocation.  256 MiB comfortably exceeds any real batch window.
inline constexpr std::uint64_t kMaxFrameBytes = 256ull << 20;

}  // namespace wire

// ---------------------------------------------------------------------------
// RemoteServer.

struct RemoteServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Builds the backend behind each store id on its first HELLO (null = mem).
  BackendFactory store_factory;
  /// Simulated one-way wire latency: every response frame is held this long
  /// before it is written back, WITHOUT blocking the processing of later
  /// frames on the connection -- propagation delay, not service time.  A
  /// pipelined client therefore still streams requests; only a client that
  /// waits out each round trip pays it per frame.  0 = respond immediately.
  std::uint64_t response_delay_ns = 0;
};

class RemoteServer {
 public:
  explicit RemoteServer(RemoteServerOptions opts = {});
  ~RemoteServer();
  RemoteServer(const RemoteServer&) = delete;
  RemoteServer& operator=(const RemoteServer&) = delete;

  /// Non-ok when the listening socket could not be set up.
  Status health() const { return init_status_; }
  const std::string& host() const { return opts_.host; }
  /// The bound port (the ephemeral one when opts.port was 0).
  std::uint16_t port() const { return port_; }

  std::uint64_t frames_served() const {
    return frames_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

  /// Test hook: hard-close every live connection (a network partition).
  /// Stores survive; clients see kIo and reconnect on their next attempt.
  void drop_connections();

  /// Test hook: Bob's raw view of one stored block (what the server holds).
  Status peek_store(std::uint64_t store_id, std::uint64_t block,
                    std::vector<Word>* out);

 private:
  struct Store {
    std::unique_ptr<StorageBackend> backend;
    std::mutex mu;  // serializes ops from this store's connections
  };
  /// One live connection: its socket, serving thread, and a done flag the
  /// thread raises just before closing the socket, so (a) drop_connections
  /// never shutdown()s a recycled fd and (b) the accept loop can reap
  /// finished threads instead of hoarding them until destruction.
  struct Conn {
    int fd = -1;
    std::atomic<bool> done{false};
    std::thread th;
  };
  /// One connection's delayed-response writer (response_delay_ns > 0): the
  /// reader thread queues finished responses with a due time; this sender
  /// writes them back in FIFO order once due, so later frames keep being
  /// processed while earlier responses are still "on the wire".
  struct DelayQueue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<std::chrono::steady_clock::time_point, std::vector<std::uint8_t>>>
        q;
    bool closed = false;
  };

  void accept_loop();
  void serve(Conn* conn);
  Result<Store*> bind_store(std::uint64_t store_id, std::uint64_t block_words);

  RemoteServerOptions opts_;
  Status init_status_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> accepted_{0};

  std::mutex mu_;  // guards stores_ and conns_
  std::map<std::uint64_t, std::unique_ptr<Store>> stores_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::thread accept_thread_;
};

// ---------------------------------------------------------------------------
// RemoteBackend.

struct RemoteBackendOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Server-side namespace; Session::Builder gives each shard its own.
  std::uint64_t store_id = 0;
  /// Request frames kept in flight on the connection by the split-phase API
  /// (1 = classic synchronous round trips).
  std::size_t max_inflight = 16;
};

class RemoteBackend : public StorageBackend {
 public:
  RemoteBackend(std::size_t block_words, RemoteBackendOptions opts);
  ~RemoteBackend() override;
  const char* name() const override { return "remote"; }
  /// Probes the connection (connect + HELLO on first use) so a bad address
  /// surfaces at Session build time instead of on the first I/O.
  Status health() const override;

  const RemoteBackendOptions& options() const { return opts_; }
  /// Request frames completed (one per round trip) and reconnects performed.
  std::uint64_t round_trips() const { return round_trips_.load(std::memory_order_relaxed); }
  std::uint64_t reconnects() const { return reconnects_.load(std::memory_order_relaxed); }
  /// STAT round trip: the server's view of this store's geometry.
  Status stat(std::uint64_t* num_blocks, std::uint64_t* block_words_out);

 protected:
  Status do_resize(std::uint64_t nblocks) override;
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;
  std::size_t do_max_inflight() const override { return opts_.max_inflight; }
  Status do_begin_read_many(std::span<const std::uint64_t> blocks,
                            std::span<Word> out) override;
  Status do_begin_write_many(std::span<const std::uint64_t> blocks,
                             std::span<const Word> in) override;
  Status do_complete_oldest() override;

 private:
  /// One outstanding request frame awaiting its response.
  struct Pending {
    bool is_write = false;
    bool dead = false;  // connection died before the response arrived
    Word* dest = nullptr;
    std::size_t dest_words = 0;
  };

  /// Connect + HELLO when there is no live connection.  Refuses (kIo) while
  /// responses are still owed on a dead connection -- those must be failed
  /// out via complete_oldest first, so no response can be mis-matched.
  Status ensure_connected() const;
  /// Close the socket and mark every outstanding request dead.
  void kill_connection(const char* why) const;
  Status send_frame(wire::Op op, std::span<const std::uint64_t> head,
                    std::span<const Word> payload) const;
  /// Receives one response frame; an ok response must carry exactly
  /// `payload_dest.size()` words, copied out.
  Status recv_response(std::span<Word> payload_dest) const;
  /// Synchronous round trip with no outstanding pipeline traffic.
  Status rpc(wire::Op op, std::span<const std::uint64_t> head,
             std::span<const Word> payload, std::span<Word> response);
  /// Fails out any dead leftovers so a fresh synchronous op can reconnect.
  void drain_dead();

  RemoteBackendOptions opts_;
  mutable int fd_ = -1;
  mutable bool was_connected_ = false;
  mutable std::string last_error_;
  mutable std::deque<Pending> pending_;
  mutable std::atomic<std::uint64_t> round_trips_{0};
  mutable std::atomic<std::uint64_t> reconnects_{0};
};

/// Backend factory for a remote store.  With sharding, use the ShardFactory
/// form so each shard gets its own store id (and hence its own connection):
/// Session::Builder::remote does exactly that.
BackendFactory remote_backend(RemoteBackendOptions opts);

}  // namespace oem
