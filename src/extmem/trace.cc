#include "extmem/trace.h"

namespace oem {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv_step(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

void TraceRecorder::on_access(IoOp op, std::uint64_t block) {
  hash_ = fnv_step(hash_, (block << 1) | static_cast<std::uint64_t>(op));
  ++count_;
  if (record_events_) events_.push_back({op, block});
}

void TraceRecorder::reset() {
  hash_ = 0xcbf29ce484222325ULL;
  count_ = 0;
  events_.clear();
}

}  // namespace oem
