// BlockDevice: Bob's outsourced storage.
//
// A flat array of fixed-size blocks of Words.  Every read/write increments
// I/O counters and is reported to the TraceRecorder -- this is precisely the
// view the honest-but-curious server gets (sequence + location of accesses,
// ciphertext contents).  Allocation is arena style: arrays of blocks are
// carved off the end; a stack-discipline `release` supports scratch arrays.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "extmem/record.h"
#include "extmem/trace.h"

namespace oem {

/// A contiguous run of blocks on the device.
struct Extent {
  std::uint64_t first_block = 0;
  std::uint64_t num_blocks = 0;
};

class BlockDevice {
 public:
  /// block_words: words of ciphertext per block (payload + nonce header).
  explicit BlockDevice(std::size_t block_words);

  std::size_t block_words() const { return block_words_; }
  std::uint64_t num_blocks() const { return num_blocks_; }

  Extent allocate(std::uint64_t nblocks);
  /// Stack-discipline release: frees the extent iff it is at the end of the
  /// arena (scratch arrays are allocated/released LIFO by the algorithms).
  void release(const Extent& e);

  void read(std::uint64_t block, std::span<Word> out);
  void write(std::uint64_t block, std::span<const Word> in);

  const IoStats& stats() const { return stats_; }
  void reset_stats() { stats_ = IoStats{}; }

  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  /// Raw ciphertext view, for tests that check Bob cannot see plaintext.
  std::span<const Word> raw(std::uint64_t block) const;

 private:
  std::size_t block_words_;
  std::uint64_t num_blocks_ = 0;
  std::vector<Word> storage_;
  IoStats stats_;
  TraceRecorder trace_;
};

}  // namespace oem
