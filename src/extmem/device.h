// BlockDevice: Bob's outsourced storage, as the adversary sees it.
//
// A flat arena of fixed-size blocks of Words whose bytes physically live in a
// pluggable StorageBackend (RAM, a file, a latency-modeled remote -- see
// extmem/backend.h).  Every counted read/write increments I/O counters and is
// reported to the TraceRecorder -- this is precisely the view the
// honest-but-curious server gets (sequence + location of accesses, ciphertext
// contents), and it is byte-identical regardless of which backend holds the
// blocks.  Allocation is arena style: arrays of blocks are carved off the
// end; a stack-discipline `release` supports scratch arrays.
//
// Batched read_many/write_many issue one backend call for a whole set of
// blocks (backends coalesce syscalls / round trips) while recording the same
// per-block trace events, in the same order, as the sequential loop would.
//
// The submit_* / wait / drain API is the async face of the same contract:
// counters and trace events are recorded at SUBMIT time, in program order,
// and the physical transfer may complete later on an AsyncBackend's I/O
// thread.  The adversary's view is therefore a function of the submission
// sequence only -- identical whether the backend is synchronous, sharded,
// or asynchronous.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "extmem/backend.h"
#include "extmem/record.h"
#include "extmem/trace.h"

namespace oem {

class AsyncBackend;    // extmem/io_engine.h; device.cc probes for it
class CachingBackend;  // extmem/io_engine.h; device.cc probes for it

/// A contiguous run of blocks on the device.
struct Extent {
  std::uint64_t first_block = 0;
  std::uint64_t num_blocks = 0;
};

/// Bounded recovery from transient storage failures (a FaultyBackend shard, a
/// flaky file store): every backend call that returns StatusCode::kIo is
/// re-issued up to max_attempts times in total before the failure surfaces.
/// Retries live BELOW the counters and the trace -- both are recorded once,
/// before the first attempt, so fault recovery is invisible to Bob and never
/// perturbs the block-I/O accounting the paper's bounds are pinned against.
/// Only kIo is retryable; kInvalidArgument is a caller bug and fails fast.
struct RetryPolicy {
  unsigned max_attempts = 1;  // 1 = no retry
};

class BlockDevice {
 public:
  /// block_words: words of ciphertext per block (payload + nonce header).
  /// A null factory means MemBackend (the seed's in-RAM behavior).
  /// pipeline_depth: the in-flight window ring size the block pipeline runs
  /// with by default (see extmem/pipeline.h); 2 = the classic double buffer.
  explicit BlockDevice(std::size_t block_words, BackendFactory factory = nullptr,
                       RetryPolicy retry = {}, std::size_t pipeline_depth = 2);

  std::size_t block_words() const { return backend_->block_words(); }
  std::uint64_t num_blocks() const { return num_blocks_; }

  /// Default ring size for run_block_pipeline (>= 1; a public scheduling
  /// parameter like B: the trace is a function of it, never of the data).
  std::size_t pipeline_depth() const { return pipeline_depth_; }

  StorageBackend& backend() { return *backend_; }
  const StorageBackend& backend() const { return *backend_; }

  /// Per-block write-version counters, held CLIENT-side (never stored on the
  /// backend): the freshness half of the authenticated-block scheme.  A block
  /// whose version is v was sealed exactly v times; the MAC binds v, so a
  /// server replaying an older (valid-at-the-time) ciphertext fails
  /// verification.  0 = never written, matching the backend's all-zero
  /// fresh-block contract.  The table follows the arena lifecycle: it grows
  /// zeroed with allocate() and shrinks with release()/trim(), so a
  /// shrunk-then-regrown block is "never written" again on both sides.
  std::uint64_t version(std::uint64_t block) const {
    return block < versions_.size() ? versions_[block] : 0;
  }
  /// Returns the NEW version (to bind into the MAC being written).
  std::uint64_t bump_version(std::uint64_t block) {
    if (block >= versions_.size()) versions_.resize(block + 1, 0);
    return ++versions_[block];
  }
  /// Whole-table access for the durable freshness state (extmem/freshness.h):
  /// a session with a state_path persists the table on shutdown and restores
  /// it here on restart, so rollback detection survives the process.
  const std::vector<std::uint64_t>& versions() const { return versions_; }
  void set_versions(std::vector<std::uint64_t> v) { versions_ = std::move(v); }

  Extent allocate(std::uint64_t nblocks);
  /// Stack-discipline release: frees the extent iff it is at the end of the
  /// arena (scratch arrays are allocated/released LIFO by the algorithms).
  /// Non-LIFO releases are recorded as discarded so trim() can reclaim them
  /// once everything above is released too.
  void release(const Extent& e);

  /// Record an extent as dead without freeing it (e.g. scratch a completed
  /// algorithm call abandoned mid-arena).  Adjacent/overlapping discarded
  /// extents are coalesced.
  void mark_discarded(const Extent& e);
  /// Shrink the arena while its tail is covered by discarded extents;
  /// returns the number of blocks released back to the backend.
  std::uint64_t trim();

  // --- counted, traced I/O (the adversary sees these) ---

  void read(std::uint64_t block, std::span<Word> out);
  void write(std::uint64_t block, std::span<const Word> in);

  /// Batched I/O: semantically identical to the per-block loop (same trace
  /// events in the same order, `blocks.size()` added to the block counters)
  /// but issued as a single backend call, counted once in read_ops/write_ops.
  void read_many(std::span<const std::uint64_t> blocks, std::span<Word> out);
  void write_many(std::span<const std::uint64_t> blocks, std::span<const Word> in);

  // --- async batched I/O (the I/O-engine pipeline) ---

  /// 0 means the op already completed synchronously (non-async backend).
  using IoTicket = std::uint64_t;

  /// True when the backend supports overlapped submission (an AsyncBackend
  /// is in the decorator chain).
  bool async_io() const { return async_ != nullptr; }

  /// Counters and trace are recorded now, in program order; the transfer may
  /// complete later.  `out` must stay valid until wait(ticket).
  IoTicket submit_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out);
  /// Takes ownership of the ciphertext so the caller's staging buffer is
  /// immediately reusable.
  IoTicket submit_write_many(std::span<const std::uint64_t> blocks,
                             std::vector<Word>&& in);
  /// Zero-copy write: `in` is BORROWED and must stay valid (and unmodified)
  /// until a wait()/drain() covering the returned ticket -- the block
  /// pipeline's per-window staging satisfies this by construction (FIFO:
  /// a window's read ticket covers the window K-back's writes).  Named
  /// distinctly from the owning overload so the opposite lifetime contract
  /// can never be picked up by an implicit vector-to-span conversion.
  IoTicket submit_write_many_borrowed(std::span<const std::uint64_t> blocks,
                                      std::span<const Word> in);
  /// Block until the ticketed op (and all ops submitted before it) executed.
  void wait(IoTicket t);
  /// Block until every submitted op executed (writes are durable in the
  /// backend).  Call before reading through a non-submit path.
  void drain();

  const IoStats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = IoStats{};
    pending_drain_.clear();
  }

  /// Credit compute-plane wall time to the stats (master thread only; see
  /// IoStats::compute_ns/crypto_ns).
  void add_compute_ns(std::uint64_t ns) { stats_.compute_ns += ns; }
  void add_crypto_ns(std::uint64_t ns) { stats_.crypto_ns += ns; }

  /// The CachingBackend in the decorator chain (directly, or under the
  /// AsyncBackend), or null -- benches read hit/miss/write-back counters
  /// through this without holding their own pointer into the stack.  The
  /// non-const form lets a caller flush() explicitly (drain() first when
  /// prefetching: flush is a synchronous entry point).
  const CachingBackend* cache_backend() const { return cache_; }
  CachingBackend* cache_backend() { return cache_; }

  const RetryPolicy& retry_policy() const { return retry_; }
  /// Synchronous backend calls re-issued after a kIo failure.  Retries of
  /// submitted async ops happen on the AsyncBackend's I/O thread and are
  /// counted there (AsyncBackend::retries()).
  std::uint64_t retries() const { return retries_; }

  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  // --- uncounted raw ciphertext access (tests and the omniscient harness) ---

  /// Raw ciphertext copy, for tests that check Bob cannot see plaintext.
  std::vector<Word> raw(std::uint64_t block) const;
  /// Uncounted, untraced write into Bob's storage (test/workload setup only).
  void write_raw(std::uint64_t block, std::span<const Word> in);
  /// Batched raw access over a contiguous block range (uncounted; the bulk
  /// upload/download path of peek/poke) -- backends coalesce the transfer.
  void read_raw_range(std::uint64_t first_block, std::uint64_t count,
                      std::span<Word> out) const;
  void write_raw_range(std::uint64_t first_block, std::uint64_t count,
                       std::span<const Word> in);

 private:
  void record(IoOp op, std::span<const std::uint64_t> blocks);

  /// One submitted-but-not-yet-drained split-phase op, for the drained-at
  /// counters (see IoStats).
  struct PendingDrain {
    IoTicket ticket = 0;
    bool is_write = false;
    std::uint64_t nblocks = 0;
  };
  /// Credit the drained-at counters for every pending op covered by `t`
  /// (all of them when everything is known complete).
  void mark_drained(IoTicket t, bool all);

  /// A parked AsyncBackend error describes a PRIOR submitted op (e.g. a
  /// write the I/O thread could not land); non-ok means that loss must fail
  /// the current call.  Ok when the backend is not async.
  Status consume_parked_async_error() const;

  /// Run a backend call under the retry policy (kIo only).  const because
  /// the uncounted raw paths (peek/poke) retry too; the counter is metering.
  template <typename Fn>
  Status with_retry(Fn&& fn) const {
    // Surface a parked async error UNRETRIED: it belongs to an earlier op,
    // so re-running the current call would drain a now-clean backend and
    // swallow the loss (the op would return Ok over corrupted storage).
    Status prior = consume_parked_async_error();
    if (!prior.ok()) return prior;
    Status st = fn();
    for (unsigned a = 1; a < retry_.max_attempts && IsRetryable(st.code()); ++a) {
      ++retries_;
      st = fn();
    }
    return st;
  }

  std::unique_ptr<StorageBackend> backend_;
  AsyncBackend* async_ = nullptr;    // borrowed view into backend_ when async
  CachingBackend* cache_ = nullptr;  // borrowed view when a cache is configured
  std::vector<PendingDrain> pending_drain_;
  RetryPolicy retry_;
  std::size_t pipeline_depth_ = 2;
  mutable std::uint64_t retries_ = 0;
  std::uint64_t num_blocks_ = 0;
  std::vector<std::uint64_t> versions_;  // client-side anti-rollback table
  std::vector<Extent> discarded_;  // sorted by first_block, coalesced
  IoStats stats_;
  TraceRecorder trace_;
};

}  // namespace oem
