// StorageBackend: the pluggable seam between the client and Bob's storage.
//
// The paper's model is a client with a small private cache operating on
// *outsourced* storage; where the blocks physically live is orthogonal to
// every obliviousness argument (Bob sees the access sequence either way).
// This interface abstracts that choice:
//
//   * MemBackend     -- blocks in a flat in-RAM array (the seed's behavior);
//   * FileBackend    -- blocks in a file, so data sets larger than RAM work
//                       and I/O really hits the OS (pread/pwrite);
//   * LatencyBackend -- a decorator injecting configurable per-op and
//                       per-word delay, modeling a remote honest-but-curious
//                       server across a network.
//
// Besides single-block read/write, backends implement *batched*
// read_many/write_many so that implementations can coalesce work: FileBackend
// merges runs of consecutive block ids into single syscalls, LatencyBackend
// charges one round-trip for a whole batch.  Batching never changes the
// adversary's view -- the BlockDevice layer above records the identical
// per-block trace events in the identical order either way.
//
// Error handling: backends return Status (kInvalidArgument for out-of-range
// accesses, kIo for storage failures) instead of asserting, so remote/file
// failures are reportable through the oem::Session facade.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "extmem/record.h"
#include "util/status.h"

namespace oem {

class StorageBackend {
 public:
  explicit StorageBackend(std::size_t block_words) : block_words_(block_words) {}
  virtual ~StorageBackend() = default;
  StorageBackend(const StorageBackend&) = delete;
  StorageBackend& operator=(const StorageBackend&) = delete;

  /// Words of ciphertext per block (payload + nonce header).
  std::size_t block_words() const { return block_words_; }
  /// Current capacity in blocks (set by resize).
  std::uint64_t num_blocks() const { return num_blocks_; }
  virtual const char* name() const = 0;

  /// Backend construction cannot report errors; a backend that failed to set
  /// itself up (e.g. FileBackend could not open its file) says so here, and
  /// fails every operation with the same Status.
  virtual Status health() const { return Status::Ok(); }

  /// Push every buffered or dirty block down to durable state: a write-back
  /// cache writes its dirty blocks, a file store fsyncs, decorators forward.
  /// Base stores with nothing buffered return Ok.  Services call this on
  /// graceful shutdown (RemoteServer::shutdown flushes every store) so an
  /// orderly exit never loses acknowledged writes.
  virtual Status flush() { return Status::Ok(); }

  /// The backend this decorator wraps, or null for a base store.  Lets
  /// stack-order validation (and introspection generally) walk an arbitrary
  /// decorator chain without a closed list of types; every decorator MUST
  /// override this.  ShardedBackend wraps many -- walkers special-case it
  /// via its shard() accessors.
  virtual const StorageBackend* inner_backend() const { return nullptr; }

  /// Grow or shrink the storage to exactly `nblocks` blocks.  Surviving
  /// blocks keep their contents; fresh blocks read as all-zero words.
  Status resize(std::uint64_t nblocks);

  Status read(std::uint64_t block, std::span<Word> out);
  Status write(std::uint64_t block, std::span<const Word> in);

  /// Batched I/O: `blocks[i]` maps to the word range
  /// [i*block_words, (i+1)*block_words) of the flat buffer.  Block ids need
  /// not be distinct or sorted; semantics are exactly the sequential
  /// single-block ops in order.
  Status read_many(std::span<const std::uint64_t> blocks, std::span<Word> out);
  Status write_many(std::span<const std::uint64_t> blocks, std::span<const Word> in);

  // --- split-phase batched I/O (protocol pipelining) ---
  //
  // A backend whose op is a request/response round trip (RemoteBackend) can
  // keep several requests in flight on the wire: begin_* issues the request
  // without waiting and complete_oldest() blocks for the OLDEST outstanding
  // response.  Completion order is strictly begin order, and the transport
  // applies ops in begin order, so the sequential read/write semantics --
  // including read-after-write on the same block -- are preserved for any
  // number of outstanding ops.  Backends with nothing to overlap keep the
  // defaults: max_inflight() == 1 and begin_* that executes synchronously
  // (complete_oldest is then a no-op), so callers can use the split API
  // uniformly.  AsyncBackend drives this when its inner backend reports
  // max_inflight() > 1; that is what makes pipeline depth > 2 pay on a
  // high-RTT store.

  /// Requests the backend can usefully keep in flight (1 = synchronous).
  std::size_t max_inflight() const { return do_max_inflight(); }
  /// `out` must stay valid until the matching complete_oldest() returns.
  Status begin_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out);
  /// `in` is consumed before begin_write_many returns (staged or sent).
  Status begin_write_many(std::span<const std::uint64_t> blocks,
                          std::span<const Word> in);
  /// Completes the oldest outstanding begun op; Ok when none is outstanding.
  Status complete_oldest() { return do_complete_oldest(); }

 protected:
  virtual Status do_resize(std::uint64_t nblocks) = 0;
  virtual Status do_read(std::uint64_t block, std::span<Word> out) = 0;
  virtual Status do_write(std::uint64_t block, std::span<const Word> in) = 0;
  /// Default batched implementations loop over the single-block ops;
  /// backends override to coalesce.
  virtual Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out);
  virtual Status do_write_many(std::span<const std::uint64_t> blocks,
                               std::span<const Word> in);
  /// Split-phase defaults: execute at begin time, complete immediately.
  virtual std::size_t do_max_inflight() const { return 1; }
  virtual Status do_begin_read_many(std::span<const std::uint64_t> blocks,
                                    std::span<Word> out) {
    return do_read_many(blocks, out);
  }
  virtual Status do_begin_write_many(std::span<const std::uint64_t> blocks,
                                     std::span<const Word> in) {
    return do_write_many(blocks, in);
  }
  virtual Status do_complete_oldest() { return Status::Ok(); }

 private:
  Status check_blocks(std::span<const std::uint64_t> blocks, std::size_t words,
                      const char* what) const;

  std::size_t block_words_;
  std::uint64_t num_blocks_ = 0;
};

/// Builds a backend for a given block size; how a Client (or Session) is told
/// which storage to use.  A null factory means MemBackend.
using BackendFactory = std::function<std::unique_ptr<StorageBackend>(std::size_t block_words)>;

// ---------------------------------------------------------------------------
// MemBackend: the seed's flat in-RAM array.

class MemBackend : public StorageBackend {
 public:
  explicit MemBackend(std::size_t block_words) : StorageBackend(block_words) {}
  const char* name() const override { return "mem"; }

 protected:
  Status do_resize(std::uint64_t nblocks) override;
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;

 private:
  std::vector<Word> storage_;
};

// ---------------------------------------------------------------------------
// FileBackend: blocks live in a file; data sets larger than RAM.

struct FileBackendOptions {
  /// Backing file path; empty means a fresh temp file (deleted on destroy).
  std::string path;
  /// Keep the backing file on destruction -- and, symmetrically, REUSE its
  /// existing contents on open instead of truncating (only honored for
  /// explicit paths).  This is the durable-restart store: a session with a
  /// state_path reopens its blocks across process restarts.
  bool keep_file = false;
};

class FileBackend : public StorageBackend {
 public:
  FileBackend(std::size_t block_words, FileBackendOptions opts = {});
  ~FileBackend() override;
  const char* name() const override { return "file"; }
  Status health() const override { return init_status_; }

  const std::string& path() const { return path_; }
  /// fsync: acknowledged writes survive the process.
  Status flush() override;
  /// pread/pwrite calls issued -- shows read_many/write_many coalescing.
  /// Atomic: shard workers and the async I/O thread bump it concurrently
  /// with a main-thread reader.
  std::uint64_t syscalls() const { return syscalls_.load(std::memory_order_relaxed); }

 protected:
  Status do_resize(std::uint64_t nblocks) override;
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  /// Coalesce maximal runs of consecutive block ids into single syscalls.
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;

 private:
  Status pread_words(std::span<Word> out, std::uint64_t first_block);
  Status pwrite_words(std::span<const Word> in, std::uint64_t first_block);

  std::string path_;
  bool unlink_on_close_ = false;
  int fd_ = -1;
  Status init_status_;
  std::atomic<std::uint64_t> syscalls_{0};
};

// ---------------------------------------------------------------------------
// DirectFileBackend: kernel-async O_DIRECT file storage on io_uring.

struct DirectFileOptions {
  /// Backing file path; empty means a fresh temp file (deleted on destroy).
  std::string path;
  /// Keep the backing file on destruction (only honored for explicit paths).
  bool keep_file = false;
  /// Split-phase frames the ring usefully keeps in flight (max_inflight()).
  std::size_t queue_depth = 8;
};

/// Blocks live in a file opened with O_DIRECT and every transfer is submitted
/// to an io_uring instance via raw syscalls (no liburing), so reads and
/// writes go disk -> user buffer with no page-cache copy and no I/O worker
/// threads: begin_read_many/begin_write_many stuff the submission queue and
/// return, complete_oldest reaps the completion queue.  That makes this the
/// one base store whose split-phase face is truly kernel-asynchronous --
/// AsyncBackend's thread is unnecessary on top of it (though harmless).
///
/// O_DIRECT's alignment contract (buffer address, file offset, and transfer
/// length all aligned to the device's logical block size) is satisfied by
/// construction: payloads live in fixed-size *slots* of
/// round_up(block_words * 8, dio_offset_align) bytes -- alignment discovered
/// via statx(STATX_DIOALIGN) where the kernel offers it, 4096 otherwise --
/// and all staging goes through 4096-aligned arena bounce buffers
/// (extmem/arena.h).  Consecutive block ids coalesce into one SQE per run,
/// mirroring FileBackend's pread/pwrite coalescing.
///
/// Construction probes the whole path end to end (ring setup, O_DIRECT open,
/// one write+read round trip); any failure -- io_uring compiled out or
/// disabled, a filesystem that refuses O_DIRECT -- quietly falls back to the
/// threaded engine (AsyncBackend over FileBackend on the same path), so
/// composed stacks and callers never see the difference except through
/// engine().  Trace/adversary view is unaffected either way: this sits below
/// the BlockDevice seam like any other base store.
class DirectFileBackend : public StorageBackend {
 public:
  DirectFileBackend(std::size_t block_words, DirectFileOptions opts = {});
  ~DirectFileBackend() override;
  const char* name() const override { return "direct_file"; }
  Status health() const override;

  /// True when this kernel can set up an io_uring at all (the global
  /// prerequisite for the "uring" engine; per-filesystem O_DIRECT support is
  /// probed per instance).
  static bool kernel_supports_uring();

  /// "uring" when the kernel-async O_DIRECT path is live, "threads" when
  /// construction fell back to AsyncBackend over blocking pread/pwrite.
  const char* engine() const { return ring_live_ ? "uring" : "threads"; }
  const std::string& path() const { return path_; }
  /// Bytes per on-disk slot (block payload padded to the direct-I/O
  /// alignment); exposed for tests and the layout note in docs.
  std::size_t slot_bytes() const { return slot_bytes_; }
  /// SQEs submitted so far -- the uring path's analogue of
  /// FileBackend::syscalls(), showing run coalescing.
  std::uint64_t sqes_submitted() const {
    return sqes_.load(std::memory_order_relaxed);
  }
  Status flush() override;

 protected:
  Status do_resize(std::uint64_t nblocks) override;
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;
  std::size_t do_max_inflight() const override;
  Status do_begin_read_many(std::span<const std::uint64_t> blocks,
                            std::span<Word> out) override;
  Status do_begin_write_many(std::span<const std::uint64_t> blocks,
                             std::span<const Word> in) override;
  Status do_complete_oldest() override;

 private:
  struct Ring;   // raw io_uring state (mmapped SQ/CQ views); direct_file.cc
  struct Frame;  // one begun batch: bounce buffer + outstanding-CQE count

  Status setup_direct_path(std::size_t queue_depth, bool preserve);
  void teardown_ring();
  /// Builds one frame's SQEs (one per consecutive-id run), submitting as the
  /// queue fills; reaps any ready CQEs opportunistically along the way.
  Status submit_frame(Frame& f, std::span<const std::uint64_t> blocks);
  /// Blocks until every CQE of `f` has arrived; folds errors into a Status.
  Status await_frame(Frame& f);
  /// Drains ALL in-flight frames into completed_early_ (ShardedBackend's
  /// pattern) so a synchronous op never reorders against begun frames.
  Status drain_inflight();
  /// Pops one CQE (optionally blocking for it) and credits it to its frame;
  /// `extra` covers a frame being awaited after leaving inflight_.
  Status reap_one(bool wait, Frame* extra);
  /// Credits an already-popped CQE (user_data + res) to its frame.
  Status credit_cqe(std::uint64_t user_data, std::int32_t res, Frame* extra);
  void scatter_read(Frame& f);

  std::string path_;
  bool unlink_on_close_ = false;
  int fd_ = -1;
  bool ring_live_ = false;
  std::size_t slot_bytes_ = 0;
  std::unique_ptr<Ring> ring_;
  std::unique_ptr<StorageBackend> fallback_;  // threads engine when !ring_live_
  std::deque<std::unique_ptr<Frame>> inflight_;
  std::deque<Status> completed_early_;
  std::uint64_t next_frame_serial_ = 1;
  Status init_status_;
  std::atomic<std::uint64_t> sqes_{0};
};

// ---------------------------------------------------------------------------
// LatencyBackend: decorator modeling a remote server.

struct LatencyProfile {
  std::uint64_t per_op_ns = 0;    // fixed round-trip cost per backend call
  std::uint64_t per_word_ns = 0;  // streaming cost per word transferred
  /// Parallel transfer lanes (the Vitter-Shriver parallel-disk model): a
  /// batch striped over `lanes` independent links streams in words/lanes
  /// time while the round trip stays whole.  Wrap a ShardedBackend of K
  /// stores in a LatencyBackend with lanes = K and the simulated sleeps of
  /// the shards overlap by construction instead of serializing -- on any
  /// host, single-core included.
  std::size_t lanes = 1;
  /// Actually sleep (wall-clock realism) vs. only account simulated time
  /// (fast deterministic tests).
  bool real_sleep = true;
};

class LatencyBackend : public StorageBackend {
 public:
  LatencyBackend(std::unique_ptr<StorageBackend> inner, LatencyProfile profile);
  const char* name() const override { return "latency"; }
  Status health() const override { return inner_->health(); }

  StorageBackend& inner() { return *inner_; }
  const StorageBackend& inner() const { return *inner_; }
  const StorageBackend* inner_backend() const override { return inner_.get(); }
  Status flush() override { return inner_->flush(); }
  /// Backend calls observed and total simulated delay charged so far.
  /// Atomic: a LatencyBackend inside a ShardedBackend/AsyncBackend is driven
  /// from worker threads while the main thread reads the counters; sleeps on
  /// different shards overlap instead of serializing.
  std::uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }
  std::uint64_t simulated_ns() const {
    return simulated_ns_.load(std::memory_order_relaxed);
  }

 protected:
  Status do_resize(std::uint64_t nblocks) override;
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;

 private:
  void pay(std::uint64_t words, std::uint64_t nblocks);

  std::unique_ptr<StorageBackend> inner_;
  LatencyProfile profile_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> simulated_ns_{0};
};

// ---------------------------------------------------------------------------
// EncryptedBackend: decorator keeping the store below it ciphertext-only.

class Encryptor;  // extmem/encryption.h

/// Re-encrypts every block at the StorageBackend seam with its own key and a
/// fresh nonce per write, so whatever store sits below -- in particular a
/// RemoteBackend's server -- only ever holds ciphertext, and rewriting the
/// same plaintext yields unrelated bytes.  The Client already encrypts at the
/// protocol layer; this is defense in depth for the backend stack itself
/// (raw-path writes, benches driving backends directly, a remote server that
/// must hold nothing decryptable).  Each stored block grows by one word (the
/// nonce header), so the inner backend is created with block_words + 1.
///
/// In *authenticated* mode (the malicious-server threat model) each stored
/// block additionally carries a MAC word binding (ciphertext, block index,
/// nonce, per-block version counter); the version table lives in this
/// decorator, client-side, never below it.  A bit-flip, block swap, or
/// rollback to a stale ciphertext then fails the read with
/// StatusCode::kIntegrity -- which BlockDevice::with_retry never retries and
/// BlockDevice::backend_fail surfaces as IntegrityError (fail closed).  The
/// inner backend is then created with block_words + 2.
class EncryptedBackend : public StorageBackend {
 public:
  /// `inner` must have block_words() == block_words + header_words()
  /// (1 unauthenticated, 2 authenticated).
  EncryptedBackend(std::size_t block_words, std::unique_ptr<StorageBackend> inner,
                   Word key, bool authenticated = false);
  ~EncryptedBackend() override;
  const char* name() const override { return "encrypted"; }
  /// Non-ok when the decorator stack is mis-ordered: a CachingBackend BELOW
  /// this layer would cache ciphertext (and re-encrypt on every eviction
  /// pass), defeating the hold-plaintext-exactly-once contract -- the cache
  /// must sit above encryption.  Surfaced here so Session::Builder::build
  /// (which probes health) rejects the stack instead of running it.
  Status health() const override {
    return init_status_.ok() ? inner_->health() : init_status_;
  }

  StorageBackend& inner() { return *inner_; }
  const StorageBackend& inner() const { return *inner_; }
  const StorageBackend* inner_backend() const override { return inner_.get(); }
  Status flush() override { return inner_->flush(); }

  bool authenticated() const { return authenticated_; }
  /// Header words prepended to every inner block: [nonce] or [nonce][mac].
  std::size_t header_words() const { return authenticated_ ? 2 : 1; }

 protected:
  Status do_resize(std::uint64_t nblocks) override;
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;
  /// Split-phase forwarding: encryption happens at begin (writes) /
  /// completion (reads) in this decorator's staging buffers, so an inner
  /// RemoteBackend keeps its wire pipelining through the encryption layer.
  std::size_t do_max_inflight() const override { return inner_->max_inflight(); }
  Status do_begin_read_many(std::span<const std::uint64_t> blocks,
                            std::span<Word> out) override;
  Status do_begin_write_many(std::span<const std::uint64_t> blocks,
                             std::span<const Word> in) override;
  Status do_complete_oldest() override;

 private:
  /// Draws a nonzero nonce (0 marks a never-written inner block, which must
  /// keep reading back as all-zero plaintext).
  Word fresh_nonce();
  void seal(std::uint64_t block, std::span<const Word> plain, std::span<Word> sealed);
  /// Verifies (authenticated mode) then decrypts in place; the plaintext ends
  /// up left-aligned in `sealed_to_plain`.  kIntegrity on a failed check.
  Status open(std::uint64_t block, std::span<Word> sealed_to_plain) const;

  /// One outstanding split-phase op's staging (inner-sized blocks).
  struct Pending {
    bool is_write = false;
    std::vector<std::uint64_t> blocks;
    std::vector<Word> staging;
    Word* dest = nullptr;  // reads: caller's plaintext destination
  };

  std::unique_ptr<StorageBackend> inner_;
  std::unique_ptr<Encryptor> enc_;
  bool authenticated_ = false;
  Status init_status_;         // non-ok: mis-ordered stack (cache below)
  std::vector<Word> staging_;  // reused synchronous transfer buffer
  std::deque<Pending> pending_;
  /// Client-side anti-rollback table (authenticated mode): versions_[b] is
  /// how many times block b was sealed; follows resize like the inner store
  /// (a shrunk-then-regrown block is never-written again on both sides).
  std::vector<std::uint64_t> versions_;
};

// ---------------------------------------------------------------------------
// Factory helpers.

BackendFactory mem_backend();
BackendFactory file_backend(FileBackendOptions opts = {});
/// DirectFileBackend (io_uring + O_DIRECT, threaded fallback).  For sharded
/// stacks pass a distinct path per shard or leave `opts.path` empty.
BackendFactory direct_file_backend(DirectFileOptions opts = {});
/// Wrap the backend produced by `inner` (null = mem) in a LatencyBackend.
BackendFactory latency_backend(BackendFactory inner, LatencyProfile profile);
/// Wrap the backend produced by `inner` (null = mem) in an EncryptedBackend;
/// `inner` is built one word wider to hold the nonce header.  With
/// `authenticated` set, two words wider ([nonce][mac]) and every read is
/// verified against a client-side version table (kIntegrity on tampering or
/// rollback -- the malicious-server threat model; see docs/THREAT_MODEL.md).
BackendFactory encrypted_backend(BackendFactory inner, Word key,
                                 bool authenticated = false);

}  // namespace oem
