// StorageBackend: the pluggable seam between the client and Bob's storage.
//
// The paper's model is a client with a small private cache operating on
// *outsourced* storage; where the blocks physically live is orthogonal to
// every obliviousness argument (Bob sees the access sequence either way).
// This interface abstracts that choice:
//
//   * MemBackend     -- blocks in a flat in-RAM array (the seed's behavior);
//   * FileBackend    -- blocks in a file, so data sets larger than RAM work
//                       and I/O really hits the OS (pread/pwrite);
//   * LatencyBackend -- a decorator injecting configurable per-op and
//                       per-word delay, modeling a remote honest-but-curious
//                       server across a network.
//
// Besides single-block read/write, backends implement *batched*
// read_many/write_many so that implementations can coalesce work: FileBackend
// merges runs of consecutive block ids into single syscalls, LatencyBackend
// charges one round-trip for a whole batch.  Batching never changes the
// adversary's view -- the BlockDevice layer above records the identical
// per-block trace events in the identical order either way.
//
// Error handling: backends return Status (kInvalidArgument for out-of-range
// accesses, kIo for storage failures) instead of asserting, so remote/file
// failures are reportable through the oem::Session facade.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "extmem/record.h"
#include "util/status.h"

namespace oem {

class StorageBackend {
 public:
  explicit StorageBackend(std::size_t block_words) : block_words_(block_words) {}
  virtual ~StorageBackend() = default;
  StorageBackend(const StorageBackend&) = delete;
  StorageBackend& operator=(const StorageBackend&) = delete;

  /// Words of ciphertext per block (payload + nonce header).
  std::size_t block_words() const { return block_words_; }
  /// Current capacity in blocks (set by resize).
  std::uint64_t num_blocks() const { return num_blocks_; }
  virtual const char* name() const = 0;

  /// Backend construction cannot report errors; a backend that failed to set
  /// itself up (e.g. FileBackend could not open its file) says so here, and
  /// fails every operation with the same Status.
  virtual Status health() const { return Status::Ok(); }

  /// Grow or shrink the storage to exactly `nblocks` blocks.  Surviving
  /// blocks keep their contents; fresh blocks read as all-zero words.
  Status resize(std::uint64_t nblocks);

  Status read(std::uint64_t block, std::span<Word> out);
  Status write(std::uint64_t block, std::span<const Word> in);

  /// Batched I/O: `blocks[i]` maps to the word range
  /// [i*block_words, (i+1)*block_words) of the flat buffer.  Block ids need
  /// not be distinct or sorted; semantics are exactly the sequential
  /// single-block ops in order.
  Status read_many(std::span<const std::uint64_t> blocks, std::span<Word> out);
  Status write_many(std::span<const std::uint64_t> blocks, std::span<const Word> in);

 protected:
  virtual Status do_resize(std::uint64_t nblocks) = 0;
  virtual Status do_read(std::uint64_t block, std::span<Word> out) = 0;
  virtual Status do_write(std::uint64_t block, std::span<const Word> in) = 0;
  /// Default batched implementations loop over the single-block ops;
  /// backends override to coalesce.
  virtual Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out);
  virtual Status do_write_many(std::span<const std::uint64_t> blocks,
                               std::span<const Word> in);

 private:
  Status check_blocks(std::span<const std::uint64_t> blocks, std::size_t words,
                      const char* what) const;

  std::size_t block_words_;
  std::uint64_t num_blocks_ = 0;
};

/// Builds a backend for a given block size; how a Client (or Session) is told
/// which storage to use.  A null factory means MemBackend.
using BackendFactory = std::function<std::unique_ptr<StorageBackend>(std::size_t block_words)>;

// ---------------------------------------------------------------------------
// MemBackend: the seed's flat in-RAM array.

class MemBackend : public StorageBackend {
 public:
  explicit MemBackend(std::size_t block_words) : StorageBackend(block_words) {}
  const char* name() const override { return "mem"; }

 protected:
  Status do_resize(std::uint64_t nblocks) override;
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;

 private:
  std::vector<Word> storage_;
};

// ---------------------------------------------------------------------------
// FileBackend: blocks live in a file; data sets larger than RAM.

struct FileBackendOptions {
  /// Backing file path; empty means a fresh temp file (deleted on destroy).
  std::string path;
  /// Keep the backing file on destruction (only honored for explicit paths).
  bool keep_file = false;
};

class FileBackend : public StorageBackend {
 public:
  FileBackend(std::size_t block_words, FileBackendOptions opts = {});
  ~FileBackend() override;
  const char* name() const override { return "file"; }
  Status health() const override { return init_status_; }

  const std::string& path() const { return path_; }
  /// pread/pwrite calls issued -- shows read_many/write_many coalescing.
  /// Atomic: shard workers and the async I/O thread bump it concurrently
  /// with a main-thread reader.
  std::uint64_t syscalls() const { return syscalls_.load(std::memory_order_relaxed); }

 protected:
  Status do_resize(std::uint64_t nblocks) override;
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  /// Coalesce maximal runs of consecutive block ids into single syscalls.
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;

 private:
  Status pread_words(std::span<Word> out, std::uint64_t first_block);
  Status pwrite_words(std::span<const Word> in, std::uint64_t first_block);

  std::string path_;
  bool unlink_on_close_ = false;
  int fd_ = -1;
  Status init_status_;
  std::atomic<std::uint64_t> syscalls_{0};
};

// ---------------------------------------------------------------------------
// LatencyBackend: decorator modeling a remote server.

struct LatencyProfile {
  std::uint64_t per_op_ns = 0;    // fixed round-trip cost per backend call
  std::uint64_t per_word_ns = 0;  // streaming cost per word transferred
  /// Parallel transfer lanes (the Vitter-Shriver parallel-disk model): a
  /// batch striped over `lanes` independent links streams in words/lanes
  /// time while the round trip stays whole.  Wrap a ShardedBackend of K
  /// stores in a LatencyBackend with lanes = K and the simulated sleeps of
  /// the shards overlap by construction instead of serializing -- on any
  /// host, single-core included.
  std::size_t lanes = 1;
  /// Actually sleep (wall-clock realism) vs. only account simulated time
  /// (fast deterministic tests).
  bool real_sleep = true;
};

class LatencyBackend : public StorageBackend {
 public:
  LatencyBackend(std::unique_ptr<StorageBackend> inner, LatencyProfile profile);
  const char* name() const override { return "latency"; }
  Status health() const override { return inner_->health(); }

  StorageBackend& inner() { return *inner_; }
  /// Backend calls observed and total simulated delay charged so far.
  /// Atomic: a LatencyBackend inside a ShardedBackend/AsyncBackend is driven
  /// from worker threads while the main thread reads the counters; sleeps on
  /// different shards overlap instead of serializing.
  std::uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }
  std::uint64_t simulated_ns() const {
    return simulated_ns_.load(std::memory_order_relaxed);
  }

 protected:
  Status do_resize(std::uint64_t nblocks) override;
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;

 private:
  void pay(std::uint64_t words, std::uint64_t nblocks);

  std::unique_ptr<StorageBackend> inner_;
  LatencyProfile profile_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> simulated_ns_{0};
};

// ---------------------------------------------------------------------------
// Factory helpers.

BackendFactory mem_backend();
BackendFactory file_backend(FileBackendOptions opts = {});
/// Wrap the backend produced by `inner` (null = mem) in a LatencyBackend.
BackendFactory latency_backend(BackendFactory inner, LatencyProfile profile);

}  // namespace oem
