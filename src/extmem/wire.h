// Wire-protocol primitives shared by both ends of the remote block store:
// the RemoteBackend client (extmem/remote.h) and the RemoteServer / oem-server
// service (server/server.h).  See docs/WIRE_PROTOCOL.md for the full spec.
//
// Frames are length-prefixed: a u64 byte count followed by that many body
// bytes.  Fields are u64s and Word payloads in host byte order: both ends of
// the loopback socket live on one host (the paper's Bob is an abstraction,
// not a portability boundary).  A cross-machine deployment would pin
// little-endian here.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "util/status.h"

namespace oem::wire {

/// Protocol version carried (and checked) in the HELLO handshake, in BOTH
/// directions: the client declares its version in the HELLO request and the
/// server declares its own in the ok response, so either side can reject a
/// peer it does not speak with a clean error instead of misparsing frames.
/// v2 added the server version to the HELLO response and the PING op.
/// v3 authenticates the control frames: HELLO and PING carry a token + a MAC
/// under the (pre-shared) wire auth key in both directions, so an active
/// attacker can no longer spoof version negotiation or keep-alives.
inline constexpr std::uint64_t kProtocolVersion = 3;

enum class Op : std::uint64_t {
  kHello = 1,      // version, store id, block words, token, mac
                   //   -> server version, num_blocks, mac
  kReadMany = 2,   // count, ids[count] -> words[count * block_words]
  kWriteMany = 3,  // count, ids[count], words[count * block_words] -> ()
  kResize = 4,     // nblocks -> ()
  kStat = 5,       // () -> num_blocks, block_words
  kPing = 6,       // token, mac -> token, mac (keep-alive; resets idle clock)
};

/// Domain-separation constants for control_mac: request and response tags of
/// the two control ops must never be confusable with each other.
inline constexpr std::uint64_t kMacHelloReq = 0x68656c6c6f2d7271ULL;   // "hello-rq"
inline constexpr std::uint64_t kMacHelloResp = 0x68656c6c6f2d7273ULL;  // "hello-rs"
inline constexpr std::uint64_t kMacPingReq = 0x70696e672d726571ULL;    // "ping-req"
inline constexpr std::uint64_t kMacPingResp = 0x70696e672d727370ULL;   // "ping-rsp"

/// Keyed tag over a control frame's fields (keyed mix64 absorption chain,
/// the Encryptor::mac idiom -- simulation-grade on purpose; the point is
/// that both ends bind the SAME fields under a key the wire never carries).
/// key = 0 is the default on both ends: the tag is still computed and
/// checked, so mismatched deployments fail closed, but a real deployment
/// wanting active-attacker resistance must share a secret key.
std::uint64_t control_mac(std::uint64_t key, std::uint64_t domain,
                          std::initializer_list<std::uint64_t> fields);

/// Hard cap on a frame's payload; a corrupt length prefix must not turn into
/// a giant allocation.  256 MiB comfortably exceeds any real batch window.
inline constexpr std::uint64_t kMaxFrameBytes = 256ull << 20;

/// Appends a u64 to a frame under construction.
void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v);
/// Reads a u64 from a frame at an arbitrary (possibly unaligned) offset.
std::uint64_t get_u64(const std::uint8_t* p);

/// Full-buffer I/O with EINTR handling; false on EOF/error.  Sends use
/// MSG_NOSIGNAL so a peer that vanished yields an error, not SIGPIPE.
/// Blocking-socket helpers: the worker-pool server uses its own non-blocking
/// incremental decode, these serve the client and raw-socket tests.
bool read_full(int fd, void* dst, std::size_t len);
bool write_full(int fd, const void* src, std::size_t len);

/// One whole frame over a blocking socket.  read_frame rejects bodies outside
/// [8, kMaxFrameBytes] (every valid body starts with a u64 op or status).
bool read_frame(int fd, std::vector<std::uint8_t>* body);
bool write_frame(int fd, const std::vector<std::uint8_t>& body);

/// Deadline-aware frame I/O: tri-state, so a dead peer (EOF/reset) and a
/// merely SILENT one (nothing moved before the deadline) stay distinct --
/// the caller maps them to kIo and kTimeout respectively.  Implemented as
/// poll-then-nonblocking-I/O rounds against one absolute deadline covering
/// the WHOLE frame (a slow-loris peer trickling a byte per poll still
/// times out).  deadline_ms == 0 means no deadline: plain blocking I/O.
enum class IoVerdict { kOk, kClosed, kTimeout };
IoVerdict read_frame_deadline(int fd, std::vector<std::uint8_t>* body,
                              std::uint64_t deadline_ms);
IoVerdict write_frame_deadline(int fd, const std::vector<std::uint8_t>& body,
                               std::uint64_t deadline_ms);

/// Response body: status code word, then the error message (non-ok) or the
/// op-specific payload (ok).
std::vector<std::uint8_t> make_response(const Status& st);
Status parse_status(const std::vector<std::uint8_t>& body);

}  // namespace oem::wire
