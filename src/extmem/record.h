// Core data types for the external-memory model.
//
// The unit of data is a Record: a (key, value) pair of 64-bit words, matching
// the paper's key-value items ("we assume that keys and values can be stored
// in memory words...").  A block holds B records; Alice's cache holds M
// records; Bob's device stores blocks as encrypted words.
//
// The all-ones key is reserved as the "empty cell" sentinel.  The paper's
// arrays explicitly allow empty cells (loose compaction, padded sorting), and
// an empty cell compares greater than every real key so that sorting pushes
// padding to the end.
#pragma once

#include <cstdint>
#include <vector>

namespace oem {

using Word = std::uint64_t;

inline constexpr Word kEmptyKey = ~Word{0};

struct Record {
  Word key = kEmptyKey;
  Word value = 0;

  bool is_empty() const { return key == kEmptyKey; }

  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.value == b.value;
  }
};

/// Records per... words per record: a Record serializes to exactly 2 words.
inline constexpr std::size_t kWordsPerRecord = 2;

/// Header words on every stored client block: [nonce][mac].  The nonce makes
/// re-encryption fresh; the MAC binds (ciphertext, device block index, nonce,
/// client-side version), so a tampering or replaying server is detected as
/// StatusCode::kIntegrity instead of silently corrupting results.
inline constexpr std::size_t kBlockHeaderWords = 2;

/// Key order with empty cells last; ties broken by value so that sorting is
/// deterministic (useful for differential tests).
struct RecordLess {
  bool operator()(const Record& a, const Record& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.value < b.value;
  }
};

/// A block buffer in Alice's memory: B records.
using BlockBuf = std::vector<Record>;

inline BlockBuf make_empty_block(std::size_t records_per_block) {
  return BlockBuf(records_per_block);  // Record default-constructs to empty
}

inline bool block_all_empty(const BlockBuf& b) {
  for (const Record& r : b)
    if (!r.is_empty()) return false;
  return true;
}

}  // namespace oem
