#include "extmem/pipeline.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "extmem/arena.h"

namespace oem {

namespace {

/// True when two SORTED id lists share no element (linear merge, no copies:
/// the hazard loop re-checks blocked windows every advance() call, so the
/// per-check cost must not include a sort).
bool disjoint_sorted(const std::vector<std::uint64_t>& a,
                     const std::vector<std::uint64_t>& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) ++i;
    else if (b[j] < a[i]) ++j;
    else return false;
  }
  return true;
}

struct Slot {
  PipelinePass io;
  std::vector<std::uint64_t> dev_reads;   // device-absolute gather ids
  std::vector<std::uint64_t> dev_writes;  // device-absolute scatter ids
  // Sorted copies, built once per describe() for the hazard checks.
  std::vector<std::uint64_t> sorted_reads;
  std::vector<std::uint64_t> sorted_writes;
  // Ciphertext staging comes from the pooled arena (extmem/arena.h): the
  // first K windows populate the pool, every later window recycles -- the
  // steady state allocates nothing (pinned by tests/hierarchy_test.cc).
  // ArenaBuffer::resize may discard contents on growth, which is fine here:
  // both buffers are fully overwritten each window.
  ArenaBuffer wire;                       // read ciphertext staging
  // Write ciphertext staging, BORROWED by the device (zero-copy: no
  // per-window allocation or buffer hand-off).  Reusing it K windows later
  // is safe by FIFO: window u's read ticket is submitted after window
  // u-K's writes, so dev.wait(read ticket of u) proves those writes
  // executed before this buffer is touched again.
  ArenaBuffer wwire;
  BlockDevice::IoTicket ticket = 0;
  // Last write chunk submitted from this slot: waiting on it before the
  // slot's next window encrypts makes the wwire reuse safe even for
  // windows with NO reads (whose read ticket is 0 and covers nothing).
  BlockDevice::IoTicket wticket = 0;
};

/// Exception safety: an in-flight async read holds a raw pointer into a
/// Slot's wire buffer.  If compute() (a user predicate, a whp guard) throws
/// mid-pass, the device must be flushed BEFORE the slots unwind, or the I/O
/// thread would complete into freed memory.  Best-effort on the unwind path:
/// a drain failure must not turn the in-flight exception into terminate().
struct DrainOnUnwind {
  BlockDevice& dev;
  bool active = true;
  ~DrainOnUnwind() {
    if (!active) return;
    try {
      dev.drain();
    } catch (...) {
    }
  }
};

/// Serial-or-chunked compute selector (exactly one pointer is set).
struct ComputeDispatch {
  const PassComputeFn* serial = nullptr;
  const ParallelCompute* chunked = nullptr;
};

std::uint64_t ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Modeled per-block compute cost (ClientParams::compute_model_ns_per_block):
/// slept on whichever lane computes the blocks, so bench scaling claims are
/// core-count independent (the bench_server_load precedent).
void model_compute(std::uint64_t model_ns, std::uint64_t blocks) {
  if (model_ns == 0 || blocks == 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(model_ns * blocks));
}

void run_block_pipeline_impl(Client& client, std::uint64_t passes,
                             const PassDescribeFn& describe,
                             const ComputeDispatch& compute,
                             PipelineOptions options) {
  if (passes == 0) return;
  BlockDevice& dev = client.device();
  const std::size_t bw = dev.block_words();
  const std::size_t B = client.B();
  // Ring size K: window t computes while the reads of up to K-1 later
  // windows are in flight.  Slot u % K is reusable from window u-K's end, so
  // the prefetch horizon t+K-1 never clobbers live staging.
  const std::size_t K = std::max<std::size_t>(
      1, options.depth != 0 ? options.depth : dev.pipeline_depth());

  std::vector<Slot> slots(K);
  auto prepare = [&](std::uint64_t t, Slot& s) {
    s.io.read_from = s.io.write_to = nullptr;
    s.io.reads.clear();
    s.io.writes.clear();
    s.io.read_refs.clear();
    s.io.write_refs.clear();
    describe(t, s.io);
    s.dev_reads.resize(s.io.reads.size() + s.io.read_refs.size());
    for (std::size_t i = 0; i < s.io.reads.size(); ++i) {
      assert(s.io.read_from != nullptr);
      s.dev_reads[i] = s.io.read_from->device_block(s.io.reads[i]);
    }
    for (std::size_t i = 0; i < s.io.read_refs.size(); ++i) {
      const PipelinePass::Ref& r = s.io.read_refs[i];
      assert(r.array != nullptr);
      s.dev_reads[s.io.reads.size() + i] = r.array->device_block(r.block);
    }
    s.dev_writes.resize(s.io.writes.size() + s.io.write_refs.size());
    for (std::size_t i = 0; i < s.io.writes.size(); ++i) {
      assert(s.io.write_to != nullptr);
      s.dev_writes[i] = s.io.write_to->device_block(s.io.writes[i]);
    }
    for (std::size_t i = 0; i < s.io.write_refs.size(); ++i) {
      const PipelinePass::Ref& r = s.io.write_refs[i];
      assert(r.array != nullptr);
      s.dev_writes[s.io.writes.size() + i] = r.array->device_block(r.block);
    }
    s.sorted_reads = s.dev_reads;
    std::sort(s.sorted_reads.begin(), s.sorted_reads.end());
    s.sorted_writes = s.dev_writes;
    std::sort(s.sorted_writes.begin(), s.sorted_writes.end());
  };
  // Transfers honor the client's coalescing window (io_batch_blocks): a pass
  // is submitted as ceil(blocks/W) backend ops.  W = 1 degenerates to
  // per-block ops (the baseline benchmarks measure against); the default
  // window keeps staging bounded by m/4 blocks per op.
  const std::size_t W = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, client.io_batch_blocks()));
  auto submit_read = [&](Slot& s) {
    // Hoisted resize: uniform windows (the common case) hit the same size
    // every pass, so the staging buffer is touched only when shapes change.
    const std::size_t need = s.dev_reads.size() * bw;
    if (s.wire.size() != need) s.wire.resize(need);
    s.ticket = 0;
    for (std::size_t i = 0; i < s.dev_reads.size(); i += W) {
      const std::size_t k = std::min(W, s.dev_reads.size() - i);
      // FIFO execution means waiting on the last window's ticket covers all.
      s.ticket = dev.submit_read_many(
          std::span<const std::uint64_t>(s.dev_reads).subspan(i, k),
          std::span<Word>(s.wire.data(), s.wire.size()).subspan(i * bw, k * bw));
    }
  };

  CacheLease lease(client.cache(), 0);
  std::vector<Record> buf;
  // Chunked passes stage their output separately from the gathered input
  // (in/out separation is what lets chunks run concurrently).  Like the
  // ciphertext wire buffers, this staging is not metered against the cache:
  // the lease covers the same max(reads, writes) blocks as the serial path,
  // so strict-cache accounting is identical at any lane count.
  std::vector<Record> obuf;
  const std::uint64_t model_ns = client.compute_model_ns_per_block();
  DrainOnUnwind unwind_guard{dev};

  std::uint64_t described = 0;  // windows [0, described) have run describe()
  std::uint64_t submitted = 0;  // windows [0, submitted) have their read submitted

  // Describe + submit window reads strictly in order, up to `horizon`
  // (inclusive), stopping at the first read that could observe a write not
  // yet handed to the device.  `first_unwritten` is the oldest window whose
  // write set is still unsubmitted; a window never hazards against itself
  // (its read precedes its write in program order).  The decision is a
  // public function of the pass descriptions and the depth, so the
  // submission order -- and with it the trace -- is identical with and
  // without an async backend; only the overlap changes.
  auto advance = [&](std::uint64_t horizon, std::uint64_t first_unwritten) {
    while (submitted < passes && submitted <= horizon) {
      if (described == submitted) {
        prepare(described, slots[described % K]);
        ++described;
      }
      Slot& s = slots[submitted % K];
      bool hazard = false;
      for (std::uint64_t v = first_unwritten; v < submitted && !hazard; ++v)
        hazard = !disjoint_sorted(s.sorted_reads, slots[v % K].sorted_writes);
      if (hazard) break;
      submit_read(s);
      ++submitted;
    }
  };

  for (std::uint64_t t = 0; t < passes; ++t) {
    advance(t + K - 1, t);  // r(t) at the latest; prefetch across the ring
    Slot& cur = slots[t % K];
    dev.wait(cur.ticket);
    dev.wait(cur.wticket);  // window t-K's writes: cur.wwire is reusable after
    const std::size_t nblocks = std::max(cur.dev_reads.size(), cur.dev_writes.size());
    lease.resize(nblocks * B);
    buf.resize(nblocks * B);
    client.decrypt_blocks(cur.dev_reads,
                          std::span<const Word>(cur.wire.data(), cur.wire.size()),
                          std::span<Record>(buf).first(cur.dev_reads.size() * B));

    // Compute phase.  Serial passes run in place on the master (stateful
    // scans depend on strict pass order); chunked passes fan the output
    // window across the compute pool, each chunk a pure function of the
    // shared gathered input.  Wall time (including the pool barrier) is
    // credited to the stats on the master.
    const std::size_t out_blocks = cur.dev_writes.size();
    const auto c0 = std::chrono::steady_clock::now();
    std::span<const Record> wsrc;
    if (compute.serial != nullptr) {
      (*compute.serial)(t, std::span<Record>(buf).first(nblocks * B));
      model_compute(model_ns, nblocks);
      wsrc = std::span<const Record>(buf).first(out_blocks * B);
    } else {
      obuf.resize(out_blocks * B);
      const std::span<const Record> in(buf.data(), cur.dev_reads.size() * B);
      client.compute_pool().parallel_for(
          out_blocks, compute.chunked->grain_blocks,
          [&](std::size_t first, std::size_t last) {
            compute.chunked->chunk(
                t, in, first,
                std::span<Record>(obuf).subspan(first * B, (last - first) * B));
            model_compute(model_ns, last - first);
          });
      wsrc = std::span<const Record>(obuf);
    }
    dev.add_compute_ns(ns_since(c0));

    // Encrypt the whole window into the slot's write staging once and hand
    // the device borrowed subspans: the sync path executes immediately, the
    // async path holds the pointer until the FIFO executes the write --
    // safely before this slot's buffer is reused (see Slot::wwire).
    // Write-less windows (read-only passes) skip the whole path.
    cur.wticket = 0;
    if (!cur.dev_writes.empty()) {
      const std::size_t wneed = out_blocks * bw;
      if (cur.wwire.size() != wneed) cur.wwire.resize(wneed);
      client.encrypt_blocks(cur.dev_writes, wsrc,
                            std::span<Word>(cur.wwire.data(), cur.wwire.size()));
      for (std::size_t i = 0; i < cur.dev_writes.size(); i += W) {
        const std::size_t k = std::min(W, cur.dev_writes.size() - i);
        cur.wticket = dev.submit_write_many_borrowed(
            std::span<const std::uint64_t>(cur.dev_writes).subspan(i, k),
            std::span<const Word>(cur.wwire.data(), cur.wwire.size())
                .subspan(i * bw, k * bw));
      }
    }
    // Writes of window t are on the device: reads they were blocking (the
    // classic "late" prefetch at depth 2) can go now.
    advance(t + K - 1, t + 1);
  }
  unwind_guard.active = false;
  dev.drain();  // writes are durable before the caller touches other paths
}

}  // namespace

void run_block_pipeline(Client& client, std::uint64_t passes,
                        const PassDescribeFn& describe, const PassComputeFn& compute,
                        PipelineOptions options) {
  ComputeDispatch dispatch;
  dispatch.serial = &compute;
  run_block_pipeline_impl(client, passes, describe, dispatch, options);
}

void run_block_pipeline(Client& client, std::uint64_t passes,
                        const PassDescribeFn& describe, const ParallelCompute& compute,
                        PipelineOptions options) {
  ComputeDispatch dispatch;
  dispatch.chunked = &compute;
  run_block_pipeline_impl(client, passes, describe, dispatch, options);
}

void pipelined_copy_pad(Client& client, const ExtArray& src, std::uint64_t src_first,
                        const ExtArray& dst, std::uint64_t dst_first,
                        std::uint64_t count) {
  const std::size_t B = client.B();
  const std::uint64_t W = std::max<std::uint64_t>(1, client.io_batch_blocks());
  const std::uint64_t avail =
      src.num_blocks() > src_first ? src.num_blocks() - src_first : 0;
  const std::uint64_t chunks = count == 0 ? 0 : (count + W - 1) / W;
  // Chunk-parallel: output block j of a window is the gathered input block j
  // when the source covered it, an explicit empty block otherwise -- a pure
  // per-chunk function of the shared input.
  ParallelCompute copy_pad{
      [B](std::uint64_t, std::span<const Record> in, std::uint64_t first_block,
          std::span<Record> out) {
        const std::size_t k = out.size() / B;
        for (std::size_t b = 0; b < k; ++b) {
          const std::size_t src_off = (first_block + b) * B;
          if (src_off + B <= in.size())
            std::copy_n(in.begin() + static_cast<std::ptrdiff_t>(src_off), B,
                        out.begin() + static_cast<std::ptrdiff_t>(b * B));
          else  // past-the-source blocks pad as explicit empties
            std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(b * B), B, Record{});
        }
      },
      0};
  run_block_pipeline(
      client, chunks,
      [&](std::uint64_t t, PipelinePass& io) {
        io.read_from = &src;
        io.write_to = &dst;
        const std::uint64_t first = t * W;
        const std::uint64_t k = std::min(W, count - first);
        for (std::uint64_t j = 0; j < k; ++j) {
          if (first + j < avail) io.reads.push_back(src_first + first + j);
          io.writes.push_back(dst_first + first + j);
        }
      },
      copy_pad);
}

}  // namespace oem
