#include "extmem/pipeline.h"

#include <algorithm>
#include <cassert>

namespace oem {

namespace {

/// True when the two sorted-copy id sets share no element.
bool disjoint_ids(std::vector<std::uint64_t> a, std::vector<std::uint64_t> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) ++i;
    else if (b[j] < a[i]) ++j;
    else return false;
  }
  return true;
}

struct Slot {
  PipelinePass io;
  std::vector<std::uint64_t> dev_reads;   // device-absolute gather ids
  std::vector<std::uint64_t> dev_writes;  // device-absolute scatter ids
  std::vector<Word> wire;                 // read ciphertext staging
  BlockDevice::IoTicket ticket = 0;
};

/// Exception safety: an in-flight async read holds a raw pointer into a
/// Slot's wire buffer.  If compute() (a user predicate, a whp guard) throws
/// mid-pass, the device must be flushed BEFORE the slots unwind, or the I/O
/// thread would complete into freed memory.  Best-effort on the unwind path:
/// a drain failure must not turn the in-flight exception into terminate().
struct DrainOnUnwind {
  BlockDevice& dev;
  bool active = true;
  ~DrainOnUnwind() {
    if (!active) return;
    try {
      dev.drain();
    } catch (...) {
    }
  }
};

}  // namespace

void run_block_pipeline(Client& client, std::uint64_t passes,
                        const PassDescribeFn& describe, const PassComputeFn& compute) {
  if (passes == 0) return;
  BlockDevice& dev = client.device();
  const std::size_t bw = dev.block_words();
  const std::size_t B = client.B();

  Slot slots[2];
  auto prepare = [&](std::uint64_t t, Slot& s) {
    s.io.read_from = s.io.write_to = nullptr;
    s.io.reads.clear();
    s.io.writes.clear();
    s.io.read_refs.clear();
    s.io.write_refs.clear();
    describe(t, s.io);
    s.dev_reads.resize(s.io.reads.size() + s.io.read_refs.size());
    for (std::size_t i = 0; i < s.io.reads.size(); ++i) {
      assert(s.io.read_from != nullptr);
      s.dev_reads[i] = s.io.read_from->device_block(s.io.reads[i]);
    }
    for (std::size_t i = 0; i < s.io.read_refs.size(); ++i) {
      const PipelinePass::Ref& r = s.io.read_refs[i];
      assert(r.array != nullptr);
      s.dev_reads[s.io.reads.size() + i] = r.array->device_block(r.block);
    }
    s.dev_writes.resize(s.io.writes.size() + s.io.write_refs.size());
    for (std::size_t i = 0; i < s.io.writes.size(); ++i) {
      assert(s.io.write_to != nullptr);
      s.dev_writes[i] = s.io.write_to->device_block(s.io.writes[i]);
    }
    for (std::size_t i = 0; i < s.io.write_refs.size(); ++i) {
      const PipelinePass::Ref& r = s.io.write_refs[i];
      assert(r.array != nullptr);
      s.dev_writes[s.io.writes.size() + i] = r.array->device_block(r.block);
    }
  };
  // Transfers honor the client's coalescing window (io_batch_blocks): a pass
  // is submitted as ceil(blocks/W) backend ops.  W = 1 degenerates to
  // per-block ops (the baseline benchmarks measure against); the default
  // window keeps staging bounded by m/4 blocks per op.
  const std::size_t W = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, client.io_batch_blocks()));
  auto submit_read = [&](Slot& s) {
    s.wire.resize(s.dev_reads.size() * bw);
    s.ticket = 0;
    for (std::size_t i = 0; i < s.dev_reads.size(); i += W) {
      const std::size_t k = std::min(W, s.dev_reads.size() - i);
      // FIFO execution means waiting on the last window's ticket covers all.
      s.ticket = dev.submit_read_many(
          std::span<const std::uint64_t>(s.dev_reads).subspan(i, k),
          std::span<Word>(s.wire).subspan(i * bw, k * bw));
    }
  };

  CacheLease lease(client.cache(), 0);
  std::vector<Record> buf;
  std::vector<Word> sync_wire;  // reused write staging for sync backends
  DrainOnUnwind unwind_guard{dev};

  prepare(0, slots[0]);
  submit_read(slots[0]);
  for (std::uint64_t t = 0; t < passes; ++t) {
    Slot& cur = slots[t & 1];
    Slot& nxt = slots[(t + 1) & 1];
    if (t + 1 < passes) prepare(t + 1, nxt);

    dev.wait(cur.ticket);
    const std::size_t nblocks = std::max(cur.dev_reads.size(), cur.dev_writes.size());
    lease.resize(nblocks * B);
    buf.resize(nblocks * B);
    client.decrypt_blocks(cur.dev_reads, cur.wire,
                          std::span<Record>(buf).first(cur.dev_reads.size() * B));

    // Prefetch the next pass's read while this pass computes whenever the
    // read set cannot observe this pass's pending write.  The decision is a
    // public function of the pass descriptions, so the submission order --
    // and with it the trace -- is identical with and without an async
    // backend; only the overlap changes.
    const bool early =
        t + 1 < passes && disjoint_ids(nxt.dev_reads, cur.dev_writes);
    if (early) submit_read(nxt);

    compute(t, std::span<Record>(buf).first(nblocks * B));

    for (std::size_t i = 0; i < cur.dev_writes.size(); i += W) {
      const std::size_t k = std::min(W, cur.dev_writes.size() - i);
      std::span<const std::uint64_t> ids(cur.dev_writes);
      const std::span<const Record> recs(buf);
      if (dev.async_io()) {
        // The async path takes ownership of the ciphertext (it outlives
        // this pass); the sync path executes immediately, so a reused
        // staging buffer avoids a heap allocation per window.
        std::vector<Word> out_wire(k * bw);
        client.encrypt_blocks(ids.subspan(i, k), recs.subspan(i * B, k * B), out_wire);
        dev.submit_write_many(ids.subspan(i, k), std::move(out_wire));
      } else {
        sync_wire.resize(k * bw);
        client.encrypt_blocks(ids.subspan(i, k), recs.subspan(i * B, k * B), sync_wire);
        dev.write_many(ids.subspan(i, k), sync_wire);
      }
    }
    if (t + 1 < passes && !early) submit_read(nxt);
  }
  unwind_guard.active = false;
  dev.drain();  // writes are durable before the caller touches other paths
}

void pipelined_copy_pad(Client& client, const ExtArray& src, std::uint64_t src_first,
                        const ExtArray& dst, std::uint64_t dst_first,
                        std::uint64_t count) {
  const std::size_t B = client.B();
  const std::uint64_t W = std::max<std::uint64_t>(1, client.io_batch_blocks());
  const std::uint64_t avail =
      src.num_blocks() > src_first ? src.num_blocks() - src_first : 0;
  const std::uint64_t chunks = count == 0 ? 0 : (count + W - 1) / W;
  run_block_pipeline(
      client, chunks,
      [&](std::uint64_t t, PipelinePass& io) {
        io.read_from = &src;
        io.write_to = &dst;
        const std::uint64_t first = t * W;
        const std::uint64_t k = std::min(W, count - first);
        for (std::uint64_t j = 0; j < k; ++j) {
          if (first + j < avail) io.reads.push_back(src_first + first + j);
          io.writes.push_back(dst_first + first + j);
        }
      },
      [&](std::uint64_t t, std::span<Record> buf) {
        const std::uint64_t first = t * W;
        const std::uint64_t copied =
            first < avail ? std::min<std::uint64_t>(buf.size() / B, avail - first)
                          : 0;
        std::fill(buf.begin() + static_cast<std::ptrdiff_t>(copied * B), buf.end(),
                  Record{});  // past-the-source blocks pad as explicit empties
      });
}

}  // namespace oem
