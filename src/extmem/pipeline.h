// The I/O-engine hot-loop driver: a ring of K in-flight windows over a
// sequence of read->compute->write passes.
//
// Every batched hot loop in the library (external-sort run formation and
// merge-split network, butterfly routing sweeps, consolidation scans) has the
// same shape: pass t gathers a list of blocks, computes privately on the
// decrypted records, and scatters a list of blocks.  run_block_pipeline
// factors that shape out once and layers prefetch on top: while pass t
// computes, the reads of up to depth-1 later passes are already submitted --
// each one only once it cannot observe any still-unsubmitted earlier write
// (the hazard check spans ALL outstanding windows, and reads are submitted
// strictly in pass order, so the AsyncBackend's FIFO execution keeps
// read-after-write impossible by construction).  depth = 2 (the default) is
// the classic double buffer this generalizes; depth = 1 runs windows
// strictly one at a time.  On a remote store the depth is what the wire
// pipelining (see io_engine.h / remote.h) feeds on: K windows in flight
// amortize the round trip K ways instead of paying it per window.
//
// Obliviousness: the submission order (hence the device trace) is a
// deterministic function of the pass descriptions and the depth alone --
// the SAME whether the backend is synchronous or asynchronous, mem, sharded
// or remote.  Depth is a public scheduling parameter like the block size:
// prefetch changes when bytes move, never what Bob can infer about the data.
//
// Private-memory accounting: the pipeline leases the current pass's record
// buffer (max(reads, writes) blocks) against the cache meter, like the loops
// it replaced.  Ciphertext staging in flight is not metered, consistent with
// the Client's existing wire buffers.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "extmem/client.h"

namespace oem {

/// One pass's I/O description.  `reads`/`writes` are array-relative block
/// ids; gather/scatter order is the trace order.  Either list may be empty.
///
/// Passes that touch more than one array per direction (the thinning loops
/// read a working array and a collector in the same step) use the ref lists
/// instead: each entry names its array explicitly.  Within a direction the
/// read_from/write_to ids are gathered first, then the refs, in order --
/// call sites use one style per pass.
struct PipelinePass {
  const ExtArray* read_from = nullptr;
  const ExtArray* write_to = nullptr;
  std::vector<std::uint64_t> reads;
  std::vector<std::uint64_t> writes;

  /// An (array, array-relative block) pair for mixed-array passes.
  struct Ref {
    const ExtArray* array = nullptr;
    std::uint64_t block = 0;
  };
  std::vector<Ref> read_refs;
  std::vector<Ref> write_refs;
  void read(const ExtArray& a, std::uint64_t block) { read_refs.push_back({&a, block}); }
  void write(const ExtArray& a, std::uint64_t block) { write_refs.push_back({&a, block}); }
};

/// Fills `io` for pass t (the vectors arrive empty).  Called once per pass,
/// one pass ahead of compute; must depend only on public parameters.
using PassDescribeFn = std::function<void(std::uint64_t t, PipelinePass& io)>;

/// Computes pass t in place on `buf` (max(reads, writes) blocks of records).
/// On entry the first reads*B records hold the gathered plaintext; on return
/// the first writes*B records must hold the scatter plaintext.  Records
/// beyond the gathered prefix are unspecified on entry.  Called strictly in
/// pass order, so stateful scans (running counters, pending buffers) work.
using PassComputeFn = std::function<void(std::uint64_t t, std::span<Record> buf)>;

/// Chunk-parallel compute for passes whose output blocks are a PURE function
/// of the gathered input: `in` is pass t's full gathered plaintext
/// (reads * B records, read-only, shared by every chunk), `first_block` the
/// chunk's offset in the pass's OUTPUT window (block units), and `out` the
/// chunk's slice of the output (scattered in write order after all chunks
/// retire).  Chunks of one pass run concurrently on the compute pool in any
/// order, so the function must not touch shared mutable state -- stateful
/// scans keep the serial PassComputeFn path.  In/out separation (the output
/// stages in its own buffer, like the ciphertext wire: unmetered staging) is
/// what makes the split safe: no chunk can read what another chunk writes.
using PassComputeChunkFn =
    std::function<void(std::uint64_t t, std::span<const Record> in,
                       std::uint64_t first_block, std::span<Record> out)>;

/// A chunked pass: the per-chunk function plus the call site's grain.
/// grain_blocks = 0 lets the pipeline split each pass's output evenly across
/// the pool's lanes; call sites with alignment constraints (unit sorts) pass
/// an explicit multiple.  At 1 compute lane the whole window runs inline on
/// the master -- identical bytes, no queue round trip.
struct ParallelCompute {
  PassComputeChunkFn chunk;
  std::size_t grain_blocks = 0;
};

struct PipelineOptions {
  /// In-flight window ring size K: pass t computes while the reads of up to
  /// K-1 later passes are prefetched (hazards permitting).  0 = the device's
  /// configured depth (ClientParams::pipeline_depth /
  /// Session::Builder::pipeline_depth); 1 = no overlap; 2 = the classic
  /// double buffer.  describe() is called up to K-1 passes ahead of
  /// compute(), so it must depend only on public parameters (it already
  /// must, for obliviousness).
  std::size_t depth = 0;
};

void run_block_pipeline(Client& client, std::uint64_t passes,
                        const PassDescribeFn& describe, const PassComputeFn& compute,
                        PipelineOptions options = {});

/// Chunk-parallel overload: pass compute fans out across the client's
/// ComputePool (ClientParams::compute_threads lanes).  Everything Bob can
/// observe is untouched by construction -- describe(), submission order,
/// trace and stat recording stay on the master thread in program order, so
/// the device trace is byte-identical at any lane count.
void run_block_pipeline(Client& client, std::uint64_t passes,
                        const PassDescribeFn& describe, const ParallelCompute& compute,
                        PipelineOptions options = {});

/// The algorithm layer's common copy/assembly scan, pipelined: copy `count`
/// blocks src[src_first..] -> dst[dst_first..] in io_batch windows, writing
/// explicit empty blocks where src runs out.  Exactly
/// min(count, available-src) block reads + count block writes -- identical
/// to the per-block loop it factors out.
void pipelined_copy_pad(Client& client, const ExtArray& src, std::uint64_t src_first,
                        const ExtArray& dst, std::uint64_t dst_first,
                        std::uint64_t count);

}  // namespace oem
