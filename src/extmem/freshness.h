// Durable freshness state: persistence of the client-side anti-rollback
// version table across process restarts.
//
// PR 8's fail-closed guarantee (block MACs bound to a client-side version
// counter) only held while the client process lived: the version table was
// in-memory, so a restart forgot all freshness state and a malicious server
// could replay arbitrarily stale blocks to the reborn client.  This module
// closes that gap.  A session configured with Session::Builder::state_path(p)
// persists, under a key derived from the session seed:
//
//   * the per-block version table (and a Merkle root over it, so a resident
//     client could keep O(1) state and page table chunks on demand -- the
//     root is recomputed and checked on load),
//   * the Encryptor nonce counter (counter-derived nonces must never repeat
//     across restarts),
//   * the remote store namespace (a restarted session must reach the SAME
//     server stores its predecessor wrote),
//   * a monotonic generation counter, bumped on every save.
//
// The file is sealed with a MAC over all of the above and written
// temp + fsync + rename, so it is atomic against crashes and tamper-evident
// against a server (or anyone else) that can scribble on the client's disk:
// a modified, truncated, or wrong-key state file fails closed with
// kIntegrity.  Rolling the FILE back to an older-but-validly-sealed
// generation is not detected here (the client holds no other durable state
// to compare against) -- but it is detected at read time, because the stale
// versions it carries make every since-rewritten block's MAC check fail.
// See docs/THREAT_MODEL.md.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace oem {

struct FreshnessState {
  std::uint64_t generation = 0;     // bumped on every save; newest wins
  std::uint64_t nonce_counter = 0;  // Encryptor counter at save time
  std::uint64_t store_namespace = 0;  // remote store-id namespace (0 = none)
  std::vector<std::uint64_t> versions;  // per-block expected versions
};

/// Merkle root over the version table: a mix64 binary tree (leaf = mix64 of
/// the version, odd node promotes unchanged, empty table = 0).  O(1) resident
/// summary of the whole table; recomputed and checked against the stored root
/// on load.
std::uint64_t freshness_merkle_root(std::span<const std::uint64_t> versions);

/// Key sealing the state file, derived (domain-separated) from the session
/// seed: the same secret that keys the block MACs, so an attacker who can
/// forge the state file could already forge blocks.
std::uint64_t freshness_state_key(std::uint64_t session_seed);

/// Atomically persist `state` to `path`: serialize, MAC under `key`, write a
/// sibling temp file, fsync, rename over `path`.  A crash at any point leaves
/// either the old file or the new one, never a torn hybrid.
Status save_freshness(const std::string& path, const FreshnessState& state,
                      std::uint64_t key);

/// Load and verify a state file.  A file that does not exist returns kIo
/// ("not found") so a first-boot caller can distinguish bootstrap from
/// attack; anything else that is wrong -- bad magic, short file, trailing
/// garbage, Merkle-root mismatch, MAC mismatch (including wrong key) --
/// returns kIntegrity and the caller must fail closed.
Result<FreshnessState> load_freshness(const std::string& path, std::uint64_t key);

}  // namespace oem
