// CacheMeter: enforcement of Alice's private-memory budget M.
//
// The paper's algorithms are only interesting because M << N; an
// implementation that quietly buffers everything client-side would be
// vacuous.  Algorithms charge their in-cache working sets against the meter
// via RAII leases (units: records).  In strict mode exceeding M aborts the
// test; otherwise the high-water mark is recorded so tests can assert
// peak <= M after the fact.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace oem {

struct CacheStats;  // extmem/io_engine.h

/// One-line human summary of a session's block-cache counters -- hit rate,
/// write absorption, and the scan-resistance tallies (evictions/admission
/// rejections).  Used by the benches' engine_stats_note and service logs;
/// pairs with Session::cache_stats(), which is per-session even when the
/// CacheCore slab is shared across sessions.
std::string describe_cache_stats(const CacheStats& s);

class CacheMeter {
 public:
  CacheMeter(std::uint64_t capacity_records, bool strict)
      : capacity_(capacity_records), strict_(strict) {}

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t in_use() const { return in_use_; }
  std::uint64_t peak() const { return peak_; }
  void reset_peak() { peak_ = in_use_; }

  void charge(std::uint64_t records) {
    in_use_ += records;
    if (in_use_ > peak_) peak_ = in_use_;
    if (strict_ && in_use_ > capacity_) {
      throw std::runtime_error("private cache budget exceeded: " +
                               std::to_string(in_use_) + " > M=" +
                               std::to_string(capacity_));
    }
  }

  void release(std::uint64_t records) {
    in_use_ = records > in_use_ ? 0 : in_use_ - records;
  }

 private:
  std::uint64_t capacity_;
  bool strict_;
  std::uint64_t in_use_ = 0;
  std::uint64_t peak_ = 0;
};

/// RAII lease of private-memory records.
class CacheLease {
 public:
  CacheLease(CacheMeter& meter, std::uint64_t records)
      : meter_(&meter), records_(records) {
    meter_->charge(records_);
  }
  CacheLease(const CacheLease&) = delete;
  CacheLease& operator=(const CacheLease&) = delete;
  CacheLease(CacheLease&& other) noexcept
      : meter_(other.meter_), records_(other.records_) {
    other.meter_ = nullptr;
  }
  ~CacheLease() {
    if (meter_) meter_->release(records_);
  }

  /// Grow/shrink the lease (e.g., a buffer that expands during a phase).
  void resize(std::uint64_t records) {
    if (!meter_) return;
    if (records > records_) meter_->charge(records - records_);
    else meter_->release(records_ - records);
    records_ = records;
  }

 private:
  CacheMeter* meter_;
  std::uint64_t records_;
};

}  // namespace oem
