#include "extmem/freshness.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "rng/random.h"

namespace oem {

namespace {

// "OEMFRSH1" as a little-endian u64 literal: version the format alongside
// the wire protocol, not silently.
constexpr std::uint64_t kMagic = 0x314853524d454f45ULL;
constexpr std::uint64_t kStateKeyDomain = 0x73746174652d6b79ULL;  // "state-ky"
constexpr std::uint64_t kStateMacDomain = 0x73746174652d6d63ULL;  // "state-mc"

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  const std::size_t at = buf.size();
  buf.resize(at + sizeof(v));
  std::memcpy(buf.data() + at, &v, sizeof(v));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Keyed absorption chain over every u64 preceding the MAC slot -- the same
/// simulation-grade construction as Encryptor::mac and wire::control_mac.
std::uint64_t seal_mac(std::uint64_t key, const std::uint8_t* bytes, std::size_t len) {
  std::uint64_t h = rng::mix64(key ^ kStateMacDomain);
  for (std::size_t at = 0; at + sizeof(std::uint64_t) <= len; at += sizeof(std::uint64_t))
    h = rng::mix64(h ^ get_u64(bytes + at));
  return h;
}

bool write_all(int fd, const std::uint8_t* p, std::size_t len) {
  while (len > 0) {
    const ssize_t put = ::write(fd, p, len);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    len -= static_cast<std::size_t>(put);
  }
  return true;
}

}  // namespace

std::uint64_t freshness_merkle_root(std::span<const std::uint64_t> versions) {
  if (versions.empty()) return 0;
  std::vector<std::uint64_t> level(versions.size());
  for (std::size_t i = 0; i < versions.size(); ++i) level[i] = rng::mix64(versions[i]);
  while (level.size() > 1) {
    std::vector<std::uint64_t> next((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next[i / 2] = rng::mix64(level[i] ^ rng::mix64(level[i + 1]));
    if (level.size() % 2 != 0) next.back() = level.back();  // odd node promotes
    level = std::move(next);
  }
  return level[0];
}

std::uint64_t freshness_state_key(std::uint64_t session_seed) {
  return rng::mix64(session_seed ^ kStateKeyDomain);
}

Status save_freshness(const std::string& path, const FreshnessState& state,
                      std::uint64_t key) {
  if (path.empty())
    return Status::InvalidArgument("save_freshness: empty path");

  std::vector<std::uint8_t> buf;
  put_u64(buf, kMagic);
  put_u64(buf, state.generation);
  put_u64(buf, state.nonce_counter);
  put_u64(buf, state.store_namespace);
  put_u64(buf, state.versions.size());
  for (std::uint64_t v : state.versions) put_u64(buf, v);
  put_u64(buf, freshness_merkle_root(state.versions));
  put_u64(buf, seal_mac(key, buf.data(), buf.size()));

  // Temp + fsync + rename: the visible file is always a complete, sealed
  // snapshot -- a crash mid-save leaves the previous generation intact.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  if (fd < 0)
    return Status::Io("save_freshness: open " + tmp + ": " + std::strerror(errno));
  const bool wrote = write_all(fd, buf.data(), buf.size());
  const bool synced = wrote && ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote || !synced) {
    ::unlink(tmp.c_str());
    return Status::Io("save_freshness: write " + tmp + ": " + std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::Io("save_freshness: rename to " + path + ": " + std::strerror(err));
  }
  return Status::Ok();
}

Result<FreshnessState> load_freshness(const std::string& path, std::uint64_t key) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT)
      return Status::Io("load_freshness: " + path + " not found");
    return Status::Io("load_freshness: open " + path + ": " + std::strerror(errno));
  }
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Io("load_freshness: read " + path + ": " + std::strerror(errno));
    }
    if (got == 0) break;
    buf.insert(buf.end(), chunk, chunk + got);
  }
  ::close(fd);

  // Everything past this point is evidence tampering, not transient I/O: the
  // file exists but does not parse as a sealed snapshot.  Fail closed.
  constexpr std::size_t kW = sizeof(std::uint64_t);
  constexpr std::size_t kFixedWords = 7;  // magic..count, root, mac
  if (buf.size() < kFixedWords * kW || buf.size() % kW != 0)
    return Status::Integrity("load_freshness: " + path + ": truncated or misaligned");
  if (get_u64(buf.data()) != kMagic)
    return Status::Integrity("load_freshness: " + path + ": bad magic");

  FreshnessState st;
  st.generation = get_u64(buf.data() + 1 * kW);
  st.nonce_counter = get_u64(buf.data() + 2 * kW);
  st.store_namespace = get_u64(buf.data() + 3 * kW);
  const std::uint64_t count = get_u64(buf.data() + 4 * kW);
  if (buf.size() != (kFixedWords + count) * kW)
    return Status::Integrity("load_freshness: " + path + ": length mismatch");

  const std::size_t mac_at = buf.size() - kW;
  if (seal_mac(key, buf.data(), mac_at) != get_u64(buf.data() + mac_at))
    return Status::Integrity("load_freshness: " + path + ": MAC check failed");

  st.versions.resize(static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < st.versions.size(); ++i)
    st.versions[i] = get_u64(buf.data() + (5 + i) * kW);
  if (freshness_merkle_root(st.versions) != get_u64(buf.data() + mac_at - kW))
    return Status::Integrity("load_freshness: " + path + ": Merkle root mismatch");
  return st;
}

}  // namespace oem
