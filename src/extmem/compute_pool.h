// ComputePool: the compute plane's worker pool.
//
// The I/O plane (BlockDevice + AsyncBackend) already overlaps storage with
// computation; this pool parallelizes the computation itself.  N lanes total:
// the calling ("master") thread plus N-1 persistent workers chewing a shared
// task queue.  The division of labor is strict and load-bearing for
// obliviousness: ONLY the master describes passes, draws nonces, submits
// I/O and records trace/stat events -- workers touch nothing but the private
// record buffers handed to them.  The device trace is therefore byte-identical
// at any lane count (pinned by the io_engine trace matrix).
//
// wait() is a barrier: the master helps drain the queue (so a 1-core host
// still makes progress and an N-lane pool never deadlocks on itself), then
// blocks until in-flight tasks retire.  The first exception a task throws is
// captured and rethrown from wait(); remaining tasks still run, so buffers
// the tasks borrow stay unreferenced after the barrier either way.
//
// threads <= 1 is the inline fallback: submit() runs the task on the calling
// thread immediately (exceptions still surface at wait(), keeping one set of
// semantics), and parallel_for degenerates to the plain serial loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace oem {

class ComputePool {
 public:
  /// `threads` counts LANES, master included: 0 and 1 both mean "no workers,
  /// run inline"; N spawns N-1 worker threads.
  explicit ComputePool(std::size_t threads = 1);
  ~ComputePool();

  ComputePool(const ComputePool&) = delete;
  ComputePool& operator=(const ComputePool&) = delete;

  /// Total lanes (>= 1), master included.
  std::size_t threads() const { return threads_; }

  /// Enqueue one task (inline when the pool has no workers).  Tasks may run
  /// in any order on any lane; anything they touch must be theirs alone.
  void submit(std::function<void()> task);

  /// Barrier: run/await every submitted task, then rethrow the first
  /// exception any of them threw (the pool stays usable afterwards).
  void wait();

  /// Split [0, count) into chunks of `grain` (0 = auto: one chunk per lane)
  /// and run fn(first, last) on each, returning after all chunks retired --
  /// submit + wait in one call.  A single chunk runs inline on the master
  /// with no queue round trip, so serial call sites pay ~nothing.
  void parallel_for(std::size_t count, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();
  /// Pop and run one task.  Called with `lock` held; releases it around the
  /// task body.  Returns false when the queue was empty.
  bool run_one(std::unique_lock<std::mutex>& lock);

  const std::size_t threads_;  // lanes, master included (>= 1)
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "a task or stop_ appeared"
  std::condition_variable done_cv_;  // master: "pending_ hit zero"
  std::deque<std::function<void()>> queue_;
  std::size_t pending_ = 0;  // queued + currently running tasks
  std::exception_ptr error_;  // first failure since the last wait()
  bool stop_ = false;
};

}  // namespace oem
