#include "extmem/io_engine.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "rng/random.h"

namespace oem {

namespace {

/// Blocks held by shard `s` of `k` when the striped capacity is `nblocks`:
/// the count of ids in [0, nblocks) congruent to s mod k.
std::uint64_t shard_capacity(std::uint64_t nblocks, std::size_t s, std::size_t k) {
  if (nblocks <= s) return 0;
  return (nblocks - s + k - 1) / k;
}

/// Brief busy-wait before parking on a condition variable: batch latencies
/// are microseconds, so a futex sleep/wake per dispatch would dominate.
constexpr int kSpinIters = 2048;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardedBackend.

ShardedBackend::ShardedBackend(std::size_t block_words,
                               std::vector<std::unique_ptr<StorageBackend>> shards,
                               bool parallel_dispatch)
    : StorageBackend(block_words),
      shards_(std::move(shards)),
      sub_(shards_.size()),
      parallel_(parallel_dispatch && shards_.size() > 1) {
  assert(!shards_.empty());
  for ([[maybe_unused]] const auto& s : shards_)
    assert(s && s->block_words() == block_words);
  if (parallel_) {
    workers_.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s)
      workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ShardedBackend::~ShardedBackend() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
      gen_.fetch_add(1, std::memory_order_release);
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

Status ShardedBackend::health() const {
  for (const auto& s : shards_) OEM_RETURN_IF_ERROR(s->health());
  return Status::Ok();
}

Status ShardedBackend::do_resize(std::uint64_t nblocks) {
  for (std::size_t s = 0; s < shards_.size(); ++s)
    OEM_RETURN_IF_ERROR(shards_[s]->resize(shard_capacity(nblocks, s, shards_.size())));
  return Status::Ok();
}

Status ShardedBackend::do_read(std::uint64_t block, std::span<Word> out) {
  return shards_[block % shards_.size()]->read(block / shards_.size(), out);
}

Status ShardedBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  return shards_[block % shards_.size()]->write(block / shards_.size(), in);
}

void ShardedBackend::partition(std::span<const std::uint64_t> blocks) {
  const std::size_t k = shards_.size();
  for (auto& sb : sub_) {
    sb.inner_ids.clear();
    sb.flat.clear();
    sb.status = Status::Ok();
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    SubBatch& sb = sub_[blocks[i] % k];
    sb.inner_ids.push_back(blocks[i] / k);
    sb.flat.push_back(i);
  }
}

void ShardedBackend::run_shard(std::size_t s) {
  SubBatch& sb = sub_[s];
  const std::size_t bw = block_words();
  sb.staging.resize(sb.inner_ids.size() * bw);
  if (job_is_write_) {
    for (std::size_t j = 0; j < sb.flat.size(); ++j)
      std::memcpy(sb.staging.data() + j * bw, job_win_.data() + sb.flat[j] * bw,
                  bw * sizeof(Word));
    sb.status = shards_[s]->write_many(sb.inner_ids, sb.staging);
  } else {
    sb.status = shards_[s]->read_many(sb.inner_ids, sb.staging);
    if (sb.status.ok())
      for (std::size_t j = 0; j < sb.flat.size(); ++j)
        std::memcpy(job_rout_.data() + sb.flat[j] * bw, sb.staging.data() + j * bw,
                    bw * sizeof(Word));
  }
}

void ShardedBackend::worker_loop(std::size_t s) {
  std::uint64_t seen = 0;
  for (;;) {
    for (int i = 0; i < kSpinIters && gen_.load(std::memory_order_acquire) == seen; ++i)
      cpu_relax();
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return gen_.load(std::memory_order_relaxed) != seen || stop_;
      });
      if (stop_) return;
      seen = gen_.load(std::memory_order_relaxed);
    }
    if (s != inline_shard_ && !sub_[s].inner_ids.empty()) run_shard(s);
    // EVERY worker checks in on every generation -- also the ones with an
    // empty slice.  run_batch() cannot return (and the caller cannot start
    // repartitioning sub_ for the next batch) until all workers have caught
    // up to this generation, so no stale worker can ever observe a newer
    // batch's state or run a slice twice.
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
}

Status ShardedBackend::run_batch(bool is_write, std::span<Word> rout,
                                 std::span<const Word> win) {
  std::size_t involved = 0, last = 0;
  for (std::size_t s = 0; s < sub_.size(); ++s)
    if (!sub_[s].inner_ids.empty()) {
      ++involved;
      last = s;
    }
  if (involved == 0) return Status::Ok();

  job_is_write_ = is_write;
  job_rout_ = rout;
  job_win_ = win;
  inline_shard_ = last;

  if (!parallel_) {
    for (std::size_t s = 0; s < sub_.size(); ++s)
      if (!sub_[s].inner_ids.empty()) run_shard(s);
    Status st;
    for (const auto& sb : sub_) st.Update(sb.status);
    return st;
  }

  if (involved > 1) {
    dispatches_.fetch_add(1, std::memory_order_relaxed);
    pending_.store(workers_.size(), std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(mu_);
      gen_.fetch_add(1, std::memory_order_release);
    }
    work_cv_.notify_all();
  }
  // The main thread always contributes one slice instead of idling.
  run_shard(inline_shard_);
  if (involved > 1) {
    for (int i = 0; i < kSpinIters && pending_.load(std::memory_order_acquire) != 0; ++i)
      cpu_relax();
    if (pending_.load(std::memory_order_acquire) != 0) {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&] { return pending_.load(std::memory_order_relaxed) == 0; });
    }
  }
  Status st;
  for (const auto& sb : sub_) st.Update(sb.status);
  return st;
}

Status ShardedBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                    std::span<Word> out) {
  partition(blocks);
  return run_batch(/*is_write=*/false, out, {});
}

Status ShardedBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                     std::span<const Word> in) {
  partition(blocks);
  return run_batch(/*is_write=*/true, {}, in);
}

// ---------------------------------------------------------------------------
// AsyncBackend.

AsyncBackend::AsyncBackend(std::unique_ptr<StorageBackend> inner)
    : StorageBackend(inner->block_words()), inner_(std::move(inner)) {
  io_thread_ = std::thread([this] { io_loop(); });
}

AsyncBackend::~AsyncBackend() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  io_thread_.join();  // the loop flushes the queue before exiting
}

void AsyncBackend::io_loop() {
  // Wire-pipelining window: how many ops may be begun-but-incomplete on the
  // inner backend at once (1 = the classic blocking loop).
  const std::size_t cap = inner_->max_inflight();
  std::deque<Op> inflight;

  auto run_op = [&](Op& op) {
    return op.is_write
               ? inner_->write_many(op.blocks, op.wdata)
               : inner_->read_many(op.blocks, std::span<Word>(op.rdest, op.rlen));
  };
  // Bounded retry of transient storage failures (the BlockDevice's retry
  // policy, installed via set_retry_attempts): only kIo is retryable, and
  // retries never touch the trace -- it was recorded at submit time.
  auto run_with_retry = [&](Op& op, Status st) {
    const unsigned attempts = retry_attempts_.load(std::memory_order_relaxed);
    for (unsigned a = 1; a < attempts && st.code() == StatusCode::kIo; ++a) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      st = run_op(op);
    }
    return st;
  };
  auto finish = [&](const Status& st) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!st.ok()) error_ = true;
      sticky_.Update(st);
      completed_.fetch_add(1, std::memory_order_release);
    }
    done_cv_.notify_all();
  };
  // Completes the oldest in-flight op.  A kIo completion means the transport
  // likely died, losing every later in-flight response with it -- and even a
  // server-reported failure leaves later in-flight ops having observed state
  // from BEFORE this op's recovery.  Either way the whole window is drained
  // and every op replayed synchronously IN ORDER under the retry budget (the
  // inner backend reconnects on the replay).  Replay is idempotent: the
  // server's applied state is always a prefix of the sent frames, and
  // re-applying a prefix in order converges to the same final state.
  auto complete_front = [&] {
    auto drained_status = [&](Op& op) {
      if (op.noop) return Status::Ok();
      return op.begun.ok() ? inner_->complete_oldest() : op.begun;
    };
    Status front = drained_status(inflight.front());
    if (front.code() != StatusCode::kIo) {
      finish(front);
      inflight.pop_front();
      return;
    }
    std::vector<Status> drained;
    drained.push_back(std::move(front));
    for (std::size_t j = 1; j < inflight.size(); ++j)
      drained.push_back(drained_status(inflight[j]));
    for (std::size_t j = 0; j < inflight.size(); ++j) {
      Status st = drained[j].code() == StatusCode::kIo ? drained[j]
                                                       : run_op(inflight[j]);
      finish(run_with_retry(inflight[j], std::move(st)));
    }
    inflight.clear();
  };

  for (;;) {
    Op op;
    bool have_op = false;
    {
      if (inflight.empty())
        for (int i = 0;
             i < kSpinIters && queued_.load(std::memory_order_acquire) == 0; ++i)
          cpu_relax();
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [&] { return !queue_.empty() || stop_ || !inflight.empty(); });
      if (queue_.empty() && inflight.empty()) return;  // stopped and flushed
      if (!queue_.empty()) {
        op = std::move(queue_.front());
        queue_.pop_front();
        queued_.fetch_sub(1, std::memory_order_relaxed);
        have_op = true;
      }
    }
    if (!have_op) {
      complete_front();  // no new work: retire the oldest round trip
      continue;
    }
    if (cap <= 1) {
      finish(run_with_retry(op, run_op(op)));
      continue;
    }
    while (inflight.size() >= cap) complete_front();
    op.noop = op.blocks.empty();
    op.begun = op.noop ? Status::Ok()
               : op.is_write
                   ? inner_->begin_write_many(op.blocks, op.wdata)
                   : inner_->begin_read_many(op.blocks,
                                             std::span<Word>(op.rdest, op.rlen));
    inflight.push_back(std::move(op));
  }
}

AsyncBackend::Ticket AsyncBackend::submit_read_many(
    std::span<const std::uint64_t> blocks, std::span<Word> out) {
  Op op;
  op.is_write = false;
  op.blocks.assign(blocks.begin(), blocks.end());
  op.rdest = out.data();
  op.rlen = out.size();
  const Ticket t = submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(op));
    queued_.fetch_add(1, std::memory_order_release);
  }
  queue_cv_.notify_one();
  // Hand the core to the I/O thread so it can *start* the transfer (or its
  // simulated sleep) before the caller's compute claims the CPU -- without
  // this, a single-core host serializes prefetch behind compute.
  std::this_thread::yield();
  return t;
}

AsyncBackend::Ticket AsyncBackend::submit_write_many(std::vector<std::uint64_t> blocks,
                                                     std::vector<Word> in) {
  Op op;
  op.is_write = true;
  op.blocks = std::move(blocks);
  op.wdata = std::move(in);
  const Ticket t = submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(op));
    queued_.fetch_add(1, std::memory_order_release);
  }
  queue_cv_.notify_one();
  std::this_thread::yield();  // see submit_read_many
  return t;
}

Status AsyncBackend::wait(Ticket t) {
  // Reporting consumes the error (see the header): take it under mu_.
  auto take_error = [&]() -> Status {
    if (!error_) return Status::Ok();
    error_ = false;
    Status st = std::move(sticky_);
    sticky_ = Status::Ok();
    return st;
  };
  for (int i = 0; i < kSpinIters && completed_.load(std::memory_order_acquire) < t; ++i)
    cpu_relax();
  if (completed_.load(std::memory_order_acquire) >= t) {
    // Fast path: the op already retired; a brief uncontended lock fetches
    // the (rare) error without a futex sleep.
    std::lock_guard<std::mutex> lk(mu_);
    return take_error();
  }
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return completed_.load(std::memory_order_relaxed) >= t; });
  return take_error();
}

Status AsyncBackend::drain() {
  return wait(submitted_.load(std::memory_order_relaxed));
}

Status AsyncBackend::do_resize(std::uint64_t nblocks) {
  OEM_RETURN_IF_ERROR(drain());
  return inner_->resize(nblocks);
}

Status AsyncBackend::do_read(std::uint64_t block, std::span<Word> out) {
  OEM_RETURN_IF_ERROR(drain());
  return inner_->read(block, out);
}

Status AsyncBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(drain());
  return inner_->write(block, in);
}

Status AsyncBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                  std::span<Word> out) {
  OEM_RETURN_IF_ERROR(drain());
  return inner_->read_many(blocks, out);
}

Status AsyncBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                   std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(drain());
  return inner_->write_many(blocks, in);
}

// ---------------------------------------------------------------------------
// FaultyBackend.

FaultyBackend::FaultyBackend(std::unique_ptr<StorageBackend> inner,
                             FaultProfile profile)
    : StorageBackend(inner->block_words()),
      inner_(std::move(inner)),
      profile_(profile) {
  assert(profile_.fail_rate >= 0.0 && profile_.fail_rate <= 1.0);
  if (profile_.fail_times < 1) profile_.fail_times = 1;
}

Status FaultyBackend::gate(bool is_write) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  if (profile_.slow_ns > 0)
    std::this_thread::sleep_for(std::chrono::nanoseconds(profile_.slow_ns));
  const bool eligible = is_write ? profile_.fail_writes : profile_.fail_reads;
  if (!eligible || profile_.fail_rate <= 0.0) return Status::Ok();
  std::lock_guard<std::mutex> lk(mu_);
  // A spent fault guarantees the very next attempt goes through: fail-once
  // means the immediate retry succeeds, fail-N means a retry budget >= N+1
  // attempts always recovers -- deterministically, not just in expectation.
  if (recovering_) {
    recovering_ = false;
    return Status::Ok();
  }
  if (pending_fails_ > 0) {
    if (--pending_fails_ == 0) recovering_ = true;
    faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::Io("injected fault (consecutive)");
  }
  // One decision per fresh op: a 53-bit uniform draw from (seed, index).
  const std::uint64_t h =
      rng::mix64(profile_.seed ^ (0x9e3779b97f4a7c15ULL * ++decisions_));
  const double u =
      static_cast<double>(h >> 11) / static_cast<double>(std::uint64_t{1} << 53);
  if (u < profile_.fail_rate) {
    if (profile_.fail_times == 1) {
      recovering_ = true;
    } else {
      pending_fails_ = profile_.fail_times - 1;
    }
    faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::Io("injected fault");
  }
  return Status::Ok();
}

Status FaultyBackend::do_read(std::uint64_t block, std::span<Word> out) {
  OEM_RETURN_IF_ERROR(gate(/*is_write=*/false));
  return inner_->read(block, out);
}

Status FaultyBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(gate(/*is_write=*/true));
  return inner_->write(block, in);
}

Status FaultyBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                   std::span<Word> out) {
  OEM_RETURN_IF_ERROR(gate(/*is_write=*/false));
  return inner_->read_many(blocks, out);
}

Status FaultyBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                    std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(gate(/*is_write=*/true));
  return inner_->write_many(blocks, in);
}

// ---------------------------------------------------------------------------
// Factories.

BackendFactory sharded_backend(BackendFactory inner, std::size_t shards,
                               int parallel_dispatch) {
  ShardFactory per_shard = [inner = std::move(inner)](std::size_t block_words,
                                                      std::size_t) {
    return inner ? inner(block_words) : std::make_unique<MemBackend>(block_words);
  };
  return sharded_backend(std::move(per_shard), shards, parallel_dispatch);
}

BackendFactory sharded_backend(ShardFactory inner, std::size_t shards,
                               int parallel_dispatch) {
  assert(shards >= 1);
  return [inner = std::move(inner), shards,
          parallel_dispatch](std::size_t block_words) -> std::unique_ptr<StorageBackend> {
    if (shards == 1)
      return inner ? inner(block_words, 0) : std::make_unique<MemBackend>(block_words);
    std::vector<std::unique_ptr<StorageBackend>> v;
    v.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
      v.push_back(inner ? inner(block_words, s)
                        : std::make_unique<MemBackend>(block_words));
    const bool parallel = parallel_dispatch < 0
                              ? ShardedBackend::default_parallel_dispatch()
                              : parallel_dispatch != 0;
    return std::make_unique<ShardedBackend>(block_words, std::move(v), parallel);
  };
}

BackendFactory async_backend(BackendFactory inner) {
  return [inner = std::move(inner)](std::size_t block_words)
             -> std::unique_ptr<StorageBackend> {
    auto base = inner ? inner(block_words) : std::make_unique<MemBackend>(block_words);
    return std::make_unique<AsyncBackend>(std::move(base));
  };
}

BackendFactory faulty_backend(BackendFactory inner, FaultProfile profile) {
  return [inner = std::move(inner),
          profile](std::size_t block_words) -> std::unique_ptr<StorageBackend> {
    auto base = inner ? inner(block_words) : std::make_unique<MemBackend>(block_words);
    return std::make_unique<FaultyBackend>(std::move(base), profile);
  };
}

}  // namespace oem
