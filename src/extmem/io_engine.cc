#include "extmem/io_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "rng/random.h"

namespace oem {

namespace {

/// Blocks held by shard `s` of `k` when the striped capacity is `nblocks`:
/// the count of ids in [0, nblocks) congruent to s mod k.
std::uint64_t shard_capacity(std::uint64_t nblocks, std::size_t s, std::size_t k) {
  if (nblocks <= s) return 0;
  return (nblocks - s + k - 1) / k;
}

/// Brief busy-wait before parking on a condition variable: batch latencies
/// are microseconds, so a futex sleep/wake per dispatch would dominate.
constexpr int kSpinIters = 2048;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardedBackend.

ShardedBackend::ShardedBackend(std::size_t block_words,
                               std::vector<std::unique_ptr<StorageBackend>> shards,
                               bool parallel_dispatch)
    : StorageBackend(block_words),
      shards_(std::move(shards)),
      sub_(shards_.size()),
      parallel_(parallel_dispatch && shards_.size() > 1) {
  assert(!shards_.empty());
  for ([[maybe_unused]] const auto& s : shards_)
    assert(s && s->block_words() == block_words);
  if (parallel_) {
    workers_.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s)
      workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ShardedBackend::~ShardedBackend() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
      gen_.fetch_add(1, std::memory_order_release);
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

Status ShardedBackend::health() const {
  for (const auto& s : shards_) OEM_RETURN_IF_ERROR(s->health());
  return Status::Ok();
}

Status ShardedBackend::flush() {
  Status first;
  for (const auto& s : shards_) first.Update(s->flush());
  return first;
}

Status ShardedBackend::do_resize(std::uint64_t nblocks) {
  for (std::size_t s = 0; s < shards_.size(); ++s)
    OEM_RETURN_IF_ERROR(shards_[s]->resize(shard_capacity(nblocks, s, shards_.size())));
  return Status::Ok();
}

Status ShardedBackend::do_read(std::uint64_t block, std::span<Word> out) {
  return shards_[block % shards_.size()]->read(block / shards_.size(), out);
}

Status ShardedBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  return shards_[block % shards_.size()]->write(block / shards_.size(), in);
}

void ShardedBackend::partition(std::span<const std::uint64_t> blocks) {
  const std::size_t k = shards_.size();
  for (auto& sb : sub_) {
    sb.inner_ids.clear();
    sb.flat.clear();
    sb.status = Status::Ok();
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    SubBatch& sb = sub_[blocks[i] % k];
    sb.inner_ids.push_back(blocks[i] / k);
    sb.flat.push_back(i);
  }
}

namespace {

/// True when `flat` is the contiguous ascending run flat[0], flat[0]+1, ...
/// -- the shard's slice of the caller buffer is then one span and the
/// transfer can borrow it end-to-end instead of staging a copy.
bool contiguous_run(const std::vector<std::size_t>& flat) {
  for (std::size_t j = 1; j < flat.size(); ++j)
    if (flat[j] != flat[0] + j) return false;
  return true;
}

}  // namespace

void ShardedBackend::run_shard(std::size_t s) {
  SubBatch& sb = sub_[s];
  const std::size_t bw = block_words();
  // Zero-copy fast path: a single-shard (or otherwise contiguous) slice
  // borrows the caller's span directly -- no gather/scatter memcpy hop.
  if (contiguous_run(sb.flat)) {
    const std::size_t first = sb.flat.empty() ? 0 : sb.flat[0];
    const std::size_t words = sb.inner_ids.size() * bw;
    sb.status = job_is_write_
                    ? shards_[s]->write_many(sb.inner_ids,
                                             job_win_.subspan(first * bw, words))
                    : shards_[s]->read_many(sb.inner_ids,
                                            job_rout_.subspan(first * bw, words));
    return;
  }
  sb.staging.resize(sb.inner_ids.size() * bw);
  if (job_is_write_) {
    for (std::size_t j = 0; j < sb.flat.size(); ++j)
      std::memcpy(sb.staging.data() + j * bw, job_win_.data() + sb.flat[j] * bw,
                  bw * sizeof(Word));
    sb.status = shards_[s]->write_many(
        sb.inner_ids, std::span<const Word>(sb.staging.data(), sb.staging.size()));
  } else {
    sb.status = shards_[s]->read_many(
        sb.inner_ids, std::span<Word>(sb.staging.data(), sb.staging.size()));
    if (sb.status.ok())
      for (std::size_t j = 0; j < sb.flat.size(); ++j)
        std::memcpy(job_rout_.data() + sb.flat[j] * bw, sb.staging.data() + j * bw,
                    bw * sizeof(Word));
  }
}

void ShardedBackend::worker_loop(std::size_t s) {
  std::uint64_t seen = 0;
  for (;;) {
    for (int i = 0; i < kSpinIters && gen_.load(std::memory_order_acquire) == seen; ++i)
      cpu_relax();
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return gen_.load(std::memory_order_relaxed) != seen || stop_;
      });
      if (stop_) return;
      seen = gen_.load(std::memory_order_relaxed);
    }
    if (s != inline_shard_ && !sub_[s].inner_ids.empty()) run_shard(s);
    // EVERY worker checks in on every generation -- also the ones with an
    // empty slice.  run_batch() cannot return (and the caller cannot start
    // repartitioning sub_ for the next batch) until all workers have caught
    // up to this generation, so no stale worker can ever observe a newer
    // batch's state or run a slice twice.
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
}

Status ShardedBackend::run_batch(bool is_write, std::span<Word> rout,
                                 std::span<const Word> win) {
  std::size_t involved = 0, last = 0;
  for (std::size_t s = 0; s < sub_.size(); ++s)
    if (!sub_[s].inner_ids.empty()) {
      ++involved;
      last = s;
    }
  if (involved == 0) return Status::Ok();

  job_is_write_ = is_write;
  job_rout_ = rout;
  job_win_ = win;
  inline_shard_ = last;

  if (!parallel_) {
    for (std::size_t s = 0; s < sub_.size(); ++s)
      if (!sub_[s].inner_ids.empty()) run_shard(s);
    Status st;
    for (const auto& sb : sub_) st.Update(sb.status);
    return st;
  }

  if (involved > 1) {
    dispatches_.fetch_add(1, std::memory_order_relaxed);
    pending_.store(workers_.size(), std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(mu_);
      gen_.fetch_add(1, std::memory_order_release);
    }
    work_cv_.notify_all();
  }
  // The main thread always contributes one slice instead of idling.
  run_shard(inline_shard_);
  if (involved > 1) {
    for (int i = 0; i < kSpinIters && pending_.load(std::memory_order_acquire) != 0; ++i)
      cpu_relax();
    if (pending_.load(std::memory_order_acquire) != 0) {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&] { return pending_.load(std::memory_order_relaxed) == 0; });
    }
  }
  Status st;
  for (const auto& sb : sub_) st.Update(sb.status);
  return st;
}

Status ShardedBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                    std::span<Word> out) {
  partition(blocks);
  return run_batch(/*is_write=*/false, out, {});
}

Status ShardedBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                     std::span<const Word> in) {
  partition(blocks);
  return run_batch(/*is_write=*/true, {}, in);
}

// --- split-phase forwarding ---
//
// A begun batch turns into at most one sub-frame per shard, begun on every
// involved shard before any response is awaited; completion pops the oldest
// batch and completes its shards' oldest frames.  Per-shard frame order
// equals batch order by construction, so each shard's FIFO contract carries
// the whole stripe's FIFO contract.  All split-phase traffic comes from one
// thread (the AsyncBackend I/O thread) -- begin_* on a remote shard is a
// non-blocking frame send, so the worker pool has nothing to overlap and
// stays out of this path entirely.

std::size_t ShardedBackend::do_max_inflight() const {
  std::size_t depth = shards_[0]->max_inflight();
  for (std::size_t s = 1; s < shards_.size(); ++s)
    depth = std::min(depth, shards_[s]->max_inflight());
  return depth;
}

Status ShardedBackend::do_begin_read_many(std::span<const std::uint64_t> blocks,
                                          std::span<Word> out) {
  const std::size_t bw = block_words();
  partition(blocks);
  ShardFrame f;
  f.is_write = false;
  f.rout = out;
  Status st;
  for (std::size_t s = 0; s < sub_.size() && st.ok(); ++s) {
    SubBatch& sb = sub_[s];
    if (sb.inner_ids.empty()) continue;
    ShardFrame::Part p = acquire_part();
    p.shard = s;
    p.inner_ids.assign(sb.inner_ids.begin(), sb.inner_ids.end());
    if (contiguous_run(sb.flat)) {
      // Borrowed span: the shard reads straight into the caller's buffer at
      // its completion -- `out` stays valid until our complete_oldest.
      p.flat0 = sb.flat.empty() ? 0 : sb.flat[0];
      st = shards_[s]->begin_read_many(p.inner_ids,
                                       out.subspan(p.flat0 * bw, p.inner_ids.size() * bw));
    } else {
      p.flat.assign(sb.flat.begin(), sb.flat.end());
      p.staging.resize(p.inner_ids.size() * bw);
      st = shards_[s]->begin_read_many(p.inner_ids,
                                       std::span<Word>(p.staging.data(), p.staging.size()));
    }
    if (st.ok()) f.parts.push_back(std::move(p));
  }
  if (!st.ok()) {
    abort_partial_begin(f);
    return st;
  }
  frames_.push_back(std::move(f));
  return Status::Ok();
}

Status ShardedBackend::do_begin_write_many(std::span<const std::uint64_t> blocks,
                                           std::span<const Word> in) {
  const std::size_t bw = block_words();
  partition(blocks);
  ShardFrame f;
  f.is_write = true;
  Status st;
  for (std::size_t s = 0; s < sub_.size() && st.ok(); ++s) {
    SubBatch& sb = sub_[s];
    if (sb.inner_ids.empty()) continue;
    ShardFrame::Part p = acquire_part();
    p.shard = s;
    p.inner_ids.assign(sb.inner_ids.begin(), sb.inner_ids.end());
    if (contiguous_run(sb.flat)) {
      const std::size_t first = sb.flat.empty() ? 0 : sb.flat[0];
      st = shards_[s]->begin_write_many(p.inner_ids,
                                        in.subspan(first * bw, p.inner_ids.size() * bw));
    } else {
      // begin_write_many consumes its input before returning (staged or
      // sent), so one reused gather scratch serves every strided sub-frame.
      wstage_.resize(p.inner_ids.size() * bw);
      for (std::size_t j = 0; j < sb.flat.size(); ++j)
        std::memcpy(wstage_.data() + j * bw, in.data() + sb.flat[j] * bw,
                    bw * sizeof(Word));
      st = shards_[s]->begin_write_many(
          p.inner_ids, std::span<const Word>(wstage_.data(), wstage_.size()));
    }
    if (st.ok()) f.parts.push_back(std::move(p));
  }
  if (!st.ok()) {
    abort_partial_begin(f);
    return st;
  }
  frames_.push_back(std::move(f));
  return Status::Ok();
}

ShardedBackend::ShardFrame::Part ShardedBackend::acquire_part() {
  if (part_pool_.empty()) return {};
  ShardFrame::Part p = std::move(part_pool_.back());
  part_pool_.pop_back();
  p.inner_ids.clear();
  p.flat.clear();
  p.flat0 = 0;
  return p;
}

Status ShardedBackend::complete_frame(ShardFrame f) {
  const std::size_t bw = block_words();
  Status st;
  // Complete every part even after an error: each shard's frame must be
  // retired to keep its FIFO aligned with ours.
  for (ShardFrame::Part& p : f.parts) {
    Status ps = shards_[p.shard]->complete_oldest();
    if (ps.ok() && !f.is_write && !p.flat.empty())
      for (std::size_t j = 0; j < p.flat.size(); ++j)
        std::memcpy(f.rout.data() + p.flat[j] * bw, p.staging.data() + j * bw,
                    bw * sizeof(Word));
    st.Update(ps);
    part_pool_.push_back(std::move(p));  // id/staging capacity kept for reuse
  }
  return st;
}

void ShardedBackend::abort_partial_begin(ShardFrame& f) {
  // Older batches' frames sit AHEAD of the partial batch in each shard's
  // FIFO, so they must be retired (in order, into their still-valid
  // destinations) before the partial batch's frames can be popped.  Their
  // statuses feed the caller's later complete_oldest calls verbatim; only
  // the completion TIME moved, never the order or the data.
  while (!frames_.empty()) {
    completed_early_.push_back(complete_frame(std::move(frames_.front())));
    frames_.pop_front();
  }
  for (ShardFrame::Part& p : f.parts) {
    shards_[p.shard]->complete_oldest();
    part_pool_.push_back(std::move(p));
  }
  f.parts.clear();
}

Status ShardedBackend::do_complete_oldest() {
  if (!completed_early_.empty()) {
    Status st = std::move(completed_early_.front());
    completed_early_.pop_front();
    return st;
  }
  if (frames_.empty()) return Status::Ok();
  ShardFrame f = std::move(frames_.front());
  frames_.pop_front();
  return complete_frame(std::move(f));
}

// ---------------------------------------------------------------------------
// AsyncBackend.

AsyncBackend::AsyncBackend(std::unique_ptr<StorageBackend> inner)
    : StorageBackend(inner->block_words()), inner_(std::move(inner)) {
  io_thread_ = std::thread([this] { io_loop(); });
}

AsyncBackend::~AsyncBackend() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  io_thread_.join();  // the loop flushes the queue before exiting
}

void AsyncBackend::io_loop() {
  // Wire-pipelining window: how many ops may be begun-but-incomplete on the
  // inner backend at once (1 = the classic blocking loop).
  const std::size_t cap = inner_->max_inflight();
  std::deque<Op> inflight;

  auto wspan = [](const Op& op) {
    return op.wsrc != nullptr ? std::span<const Word>(op.wsrc, op.wlen)
                              : std::span<const Word>(op.wdata);
  };
  auto run_op = [&](Op& op) {
    return op.is_write
               ? inner_->write_many(op.blocks, wspan(op))
               : inner_->read_many(op.blocks, std::span<Word>(op.rdest, op.rlen));
  };
  // Bounded retry of transient storage failures (the BlockDevice's retry
  // policy, installed via set_retry_attempts): only IsRetryable codes
  // (kIo/kTimeout) are re-issued, and retries never touch the trace -- it
  // was recorded at submit time.
  auto run_with_retry = [&](Op& op, Status st) {
    const unsigned attempts = retry_attempts_.load(std::memory_order_relaxed);
    for (unsigned a = 1; a < attempts && IsRetryable(st.code()); ++a) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      st = run_op(op);
    }
    return st;
  };
  auto finish = [&](const Status& st) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!st.ok()) error_ = true;
      sticky_.Update(st);
      completed_.fetch_add(1, std::memory_order_release);
    }
    done_cv_.notify_all();
  };
  // Completes the oldest in-flight op.  A kIo completion means the transport
  // likely died, losing every later in-flight response with it -- and even a
  // server-reported failure leaves later in-flight ops having observed state
  // from BEFORE this op's recovery.  Either way the whole window is drained
  // and every op replayed synchronously IN ORDER under the retry budget (the
  // inner backend reconnects on the replay).  Replay is idempotent: the
  // server's applied state is always a prefix of the sent frames, and
  // re-applying a prefix in order converges to the same final state.
  auto complete_front = [&] {
    auto drained_status = [&](Op& op) {
      if (op.noop) return Status::Ok();
      return op.begun.ok() ? inner_->complete_oldest() : op.begun;
    };
    Status front = drained_status(inflight.front());
    if (!IsRetryable(front.code())) {
      finish(front);
      recycle_op(std::move(inflight.front()));
      inflight.pop_front();
      return;
    }
    std::vector<Status> drained;
    drained.push_back(std::move(front));
    for (std::size_t j = 1; j < inflight.size(); ++j)
      drained.push_back(drained_status(inflight[j]));
    for (std::size_t j = 0; j < inflight.size(); ++j) {
      Status st = IsRetryable(drained[j].code()) ? drained[j] : run_op(inflight[j]);
      finish(run_with_retry(inflight[j], std::move(st)));
    }
    for (Op& op : inflight) recycle_op(std::move(op));
    inflight.clear();
  };

  for (;;) {
    Op op;
    bool have_op = false;
    {
      if (inflight.empty())
        for (int i = 0;
             i < kSpinIters && queued_.load(std::memory_order_acquire) == 0; ++i)
          cpu_relax();
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [&] { return !queue_.empty() || stop_ || !inflight.empty(); });
      if (queue_.empty() && inflight.empty()) return;  // stopped and flushed
      if (!queue_.empty()) {
        op = std::move(queue_.front());
        queue_.pop_front();
        queued_.fetch_sub(1, std::memory_order_relaxed);
        have_op = true;
      }
    }
    if (!have_op) {
      complete_front();  // no new work: retire the oldest round trip
      continue;
    }
    if (cap <= 1) {
      finish(run_with_retry(op, run_op(op)));
      recycle_op(std::move(op));
      continue;
    }
    while (inflight.size() >= cap) complete_front();
    op.noop = op.blocks.empty();
    op.begun = op.noop ? Status::Ok()
               : op.is_write
                   ? inner_->begin_write_many(op.blocks, wspan(op))
                   : inner_->begin_read_many(op.blocks,
                                             std::span<Word>(op.rdest, op.rlen));
    inflight.push_back(std::move(op));
  }
}

AsyncBackend::Op AsyncBackend::acquire_op_locked() {
  if (op_pool_.empty()) return {};
  Op op = std::move(op_pool_.back());
  op_pool_.pop_back();
  return op;
}

void AsyncBackend::recycle_op(Op&& op) {
  // clear() keeps the vectors' capacity, so the next acquire re-fills the
  // same storage instead of allocating.
  op.blocks.clear();
  op.wdata.clear();
  op.wsrc = nullptr;
  op.wlen = 0;
  op.rdest = nullptr;
  op.rlen = 0;
  op.noop = false;
  op.begun = Status::Ok();
  std::lock_guard<std::mutex> lk(mu_);
  op_pool_.push_back(std::move(op));
}

AsyncBackend::Ticket AsyncBackend::submit_read_many(
    std::span<const std::uint64_t> blocks, std::span<Word> out) {
  const Ticket t = submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    Op op = acquire_op_locked();
    op.is_write = false;
    op.blocks.assign(blocks.begin(), blocks.end());
    op.rdest = out.data();
    op.rlen = out.size();
    queue_.push_back(std::move(op));
    queued_.fetch_add(1, std::memory_order_release);
  }
  queue_cv_.notify_one();
  // Hand the core to the I/O thread so it can *start* the transfer (or its
  // simulated sleep) before the caller's compute claims the CPU -- without
  // this, a single-core host serializes prefetch behind compute.
  std::this_thread::yield();
  return t;
}

AsyncBackend::Ticket AsyncBackend::submit_write_many(std::vector<std::uint64_t> blocks,
                                                     std::vector<Word> in) {
  const Ticket t = submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    Op op = acquire_op_locked();
    op.is_write = true;
    op.blocks = std::move(blocks);
    op.wdata = std::move(in);
    queue_.push_back(std::move(op));
    queued_.fetch_add(1, std::memory_order_release);
  }
  queue_cv_.notify_one();
  std::this_thread::yield();  // see submit_read_many
  return t;
}

AsyncBackend::Ticket AsyncBackend::submit_write_many_borrowed(
    std::span<const std::uint64_t> blocks, std::span<const Word> in) {
  const Ticket t = submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    Op op = acquire_op_locked();
    op.is_write = true;
    op.blocks.assign(blocks.begin(), blocks.end());
    op.wsrc = in.data();
    op.wlen = in.size();
    queue_.push_back(std::move(op));
    queued_.fetch_add(1, std::memory_order_release);
  }
  queue_cv_.notify_one();
  std::this_thread::yield();  // see submit_read_many
  return t;
}

Status AsyncBackend::wait(Ticket t) {
  // Reporting consumes the error (see the header): take it under mu_.
  auto take_error = [&]() -> Status {
    if (!error_) return Status::Ok();
    error_ = false;
    Status st = std::move(sticky_);
    sticky_ = Status::Ok();
    return st;
  };
  for (int i = 0; i < kSpinIters && completed_.load(std::memory_order_acquire) < t; ++i)
    cpu_relax();
  if (completed_.load(std::memory_order_acquire) >= t) {
    // Fast path: the op already retired; a brief uncontended lock fetches
    // the (rare) error without a futex sleep.
    std::lock_guard<std::mutex> lk(mu_);
    return take_error();
  }
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return completed_.load(std::memory_order_relaxed) >= t; });
  return take_error();
}

Status AsyncBackend::drain() {
  return wait(submitted_.load(std::memory_order_relaxed));
}

Status AsyncBackend::do_resize(std::uint64_t nblocks) {
  OEM_RETURN_IF_ERROR(drain());
  return inner_->resize(nblocks);
}

Status AsyncBackend::do_read(std::uint64_t block, std::span<Word> out) {
  OEM_RETURN_IF_ERROR(drain());
  return inner_->read(block, out);
}

Status AsyncBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(drain());
  return inner_->write(block, in);
}

Status AsyncBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                  std::span<Word> out) {
  OEM_RETURN_IF_ERROR(drain());
  return inner_->read_many(blocks, out);
}

Status AsyncBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                   std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(drain());
  return inner_->write_many(blocks, in);
}

// ---------------------------------------------------------------------------
// FaultyBackend.

FaultyBackend::FaultyBackend(std::unique_ptr<StorageBackend> inner,
                             FaultProfile profile)
    : StorageBackend(inner->block_words()),
      inner_(std::move(inner)),
      profile_(profile) {
  assert(profile_.fail_rate >= 0.0 && profile_.fail_rate <= 1.0);
  if (profile_.fail_times < 1) profile_.fail_times = 1;
}

Status FaultyBackend::gate(bool is_write) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  if (profile_.slow_ns > 0)
    std::this_thread::sleep_for(std::chrono::nanoseconds(profile_.slow_ns));
  const bool eligible = is_write ? profile_.fail_writes : profile_.fail_reads;
  if (!eligible || profile_.fail_rate <= 0.0) return Status::Ok();
  std::lock_guard<std::mutex> lk(mu_);
  // A spent fault guarantees the very next attempt goes through: fail-once
  // means the immediate retry succeeds, fail-N means a retry budget >= N+1
  // attempts always recovers -- deterministically, not just in expectation.
  if (recovering_) {
    recovering_ = false;
    return Status::Ok();
  }
  if (pending_fails_ > 0) {
    if (--pending_fails_ == 0) recovering_ = true;
    faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::Io("injected fault (consecutive)");
  }
  // One decision per fresh op: a 53-bit uniform draw from (seed, index).
  const std::uint64_t h =
      rng::mix64(profile_.seed ^ (0x9e3779b97f4a7c15ULL * ++decisions_));
  const double u =
      static_cast<double>(h >> 11) / static_cast<double>(std::uint64_t{1} << 53);
  if (u < profile_.fail_rate) {
    if (profile_.fail_times == 1) {
      recovering_ = true;
    } else {
      pending_fails_ = profile_.fail_times - 1;
    }
    faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::Io("injected fault");
  }
  return Status::Ok();
}

Status FaultyBackend::do_read(std::uint64_t block, std::span<Word> out) {
  OEM_RETURN_IF_ERROR(gate(/*is_write=*/false));
  return inner_->read(block, out);
}

Status FaultyBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(gate(/*is_write=*/true));
  return inner_->write(block, in);
}

Status FaultyBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                   std::span<Word> out) {
  OEM_RETURN_IF_ERROR(gate(/*is_write=*/false));
  return inner_->read_many(blocks, out);
}

Status FaultyBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                    std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(gate(/*is_write=*/true));
  return inner_->write_many(blocks, in);
}

Status FaultyBackend::do_begin_read_many(std::span<const std::uint64_t> blocks,
                                         std::span<Word> out) {
  OEM_RETURN_IF_ERROR(gate(/*is_write=*/false));
  return inner_->begin_read_many(blocks, out);
}

Status FaultyBackend::do_begin_write_many(std::span<const std::uint64_t> blocks,
                                          std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(gate(/*is_write=*/true));
  return inner_->begin_write_many(blocks, in);
}

// ---------------------------------------------------------------------------
// TamperingBackend.

TamperingBackend::TamperingBackend(std::unique_ptr<StorageBackend> inner,
                                   TamperProfile profile)
    : StorageBackend(inner->block_words()),
      inner_(std::move(inner)),
      profile_(profile) {
  assert(profile_.tamper_rate >= 0.0 && profile_.tamper_rate <= 1.0);
}

std::uint64_t TamperingBackend::draw() {
  return rng::mix64(profile_.seed ^ (0x9e3779b97f4a7c15ULL * ++decisions_));
}

bool TamperingBackend::fire() {
  const std::uint64_t h = draw();
  const double u =
      static_cast<double>(h >> 11) / static_cast<double>(std::uint64_t{1} << 53);
  return u < profile_.tamper_rate;
}

void TamperingBackend::tamper_read(std::size_t nblocks, std::span<Word> out) {
  if (!reads_armed()) return;
  const std::size_t bw = block_words();
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < nblocks; ++i) {
    if (!fire()) continue;
    // Pick a mode among the enabled read attacks; swap needs a second block
    // in the batch to trade places with, so it degrades to corrupt alone.
    enum Mode { kCorrupt, kBitFlip, kSwap };
    Mode modes[3];
    std::size_t n = 0;
    if (profile_.corrupt) modes[n++] = kCorrupt;
    if (profile_.bit_flip) modes[n++] = kBitFlip;
    if (profile_.swap && nblocks > 1) modes[n++] = kSwap;
    if (n == 0) modes[n++] = kCorrupt;  // swap-only profile, one-block batch
    const Mode m = modes[draw() % n];
    std::span<Word> blk = out.subspan(i * bw, bw);
    switch (m) {
      case kCorrupt: {
        // Garble every word with a keyed stream: the block decrypts to noise
        // and its MAC check cannot pass.
        const std::uint64_t g = draw();
        for (std::size_t w = 0; w < bw; ++w) blk[w] ^= rng::mix64(g ^ w);
        break;
      }
      case kBitFlip: {
        // The subtlest mutation: one bit, anywhere -- header or payload.
        const std::uint64_t h = draw();
        blk[static_cast<std::size_t>(h % bw)] ^= Word{1} << ((h >> 32) % 64);
        break;
      }
      case kSwap: {
        // Serve another block's (valid!) bytes in this slot and vice versa:
        // only a MAC bound to the block INDEX can tell them apart.
        std::size_t other = static_cast<std::size_t>(draw() % nblocks);
        if (other == i) other = (i + 1) % nblocks;
        std::swap_ranges(blk.begin(), blk.end(), out.begin() + other * bw);
        break;
      }
    }
    tampered_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool TamperingBackend::drop_write() {
  if (profile_.tamper_rate <= 0.0 || !profile_.rollback) return false;
  std::lock_guard<std::mutex> lk(mu_);
  if (!fire()) return false;
  tampered_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status TamperingBackend::do_read(std::uint64_t block, std::span<Word> out) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  OEM_RETURN_IF_ERROR(inner_->read(block, out));
  tamper_read(1, out);
  return Status::Ok();
}

Status TamperingBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  if (drop_write()) return Status::Ok();  // the rollback lie: ACK, apply nothing
  return inner_->write(block, in);
}

Status TamperingBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                      std::span<Word> out) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  OEM_RETURN_IF_ERROR(inner_->read_many(blocks, out));
  tamper_read(blocks.size(), out);
  return Status::Ok();
}

Status TamperingBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                       std::span<const Word> in) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  if (drop_write()) return Status::Ok();
  return inner_->write_many(blocks, in);
}

Status TamperingBackend::do_begin_read_many(std::span<const std::uint64_t> blocks,
                                            std::span<Word> out) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  OEM_RETURN_IF_ERROR(inner_->begin_read_many(blocks, out));
  Pending p;
  p.is_read = true;
  p.nblocks = blocks.size();
  p.out = out;
  pending_.push_back(p);
  return Status::Ok();
}

Status TamperingBackend::do_begin_write_many(std::span<const std::uint64_t> blocks,
                                             std::span<const Word> in) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  Pending p;
  // Rollback is decided at BEGIN (call-sequence determinism); a dropped
  // frame is never sent, and its completion below is a local no-op.
  p.dropped = drop_write();
  if (!p.dropped) OEM_RETURN_IF_ERROR(inner_->begin_write_many(blocks, in));
  pending_.push_back(p);
  return Status::Ok();
}

Status TamperingBackend::do_complete_oldest() {
  if (pending_.empty()) return inner_->complete_oldest();
  Pending p = pending_.front();
  pending_.pop_front();
  if (p.dropped) return Status::Ok();
  Status st = inner_->complete_oldest();
  if (st.ok() && p.is_read) tamper_read(p.nblocks, p.out);
  return st;
}

// ---------------------------------------------------------------------------
// CacheCore / CachingBackend.

CacheCore::CacheCore(std::size_t capacity_blocks, CachePolicy policy)
    : cap_(capacity_blocks),
      prot_cap_(std::max<std::size_t>(1, capacity_blocks * 3 / 4)),
      policy_(policy) {}

SharedCacheHandle make_shared_cache(std::size_t capacity_blocks,
                                    CachePolicy policy) {
  return std::make_shared<CacheCore>(capacity_blocks, policy);
}

CachingBackend::CachingBackend(std::unique_ptr<StorageBackend> inner,
                               std::size_t capacity_blocks, CachePolicy policy)
    : CachingBackend(std::move(inner),
                     std::make_shared<CacheCore>(capacity_blocks, policy)) {}

CachingBackend::CachingBackend(std::unique_ptr<StorageBackend> inner,
                               SharedCacheHandle core)
    : StorageBackend(inner->block_words()),
      inner_(std::move(inner)),
      core_(std::move(core)) {
  if (core_ == nullptr) {
    init_status_ = Status::InvalidArgument("null shared cache handle");
    core_ = std::make_shared<CacheCore>(1, CachePolicy::kScanResistant);
    return;
  }
  std::lock_guard<std::mutex> lk(core_->mu_);
  view_id_ = core_->next_view_id_++;
  if (core_->cap_ < 1) {
    init_status_ = Status::InvalidArgument(
        "cache capacity must be >= 1 block; drop the decorator instead of "
        "configuring cache(0)");
    return;
  }
  if (core_->block_words_ == 0) {
    // The first attached view fixes the core's geometry.
    core_->block_words_ = block_words();
    core_->slab_.resize(core_->cap_ * block_words());
    core_->free_slots_.reserve(core_->cap_);
    for (std::size_t s = core_->cap_; s > 0; --s)
      core_->free_slots_.push_back(s - 1);
  } else if (core_->block_words_ != block_words()) {
    init_status_ = Status::InvalidArgument(
        "shared cache geometry mismatch: every attached session must use the "
        "same block size");
  }
}

CachingBackend::~CachingBackend() {
  if (!init_status_.ok()) return;
  flush();  // best effort: this view's dirty blocks reach its store
  std::lock_guard<std::mutex> lk(core_->mu_);
  drop_view();
}

CachingBackend::Entry* CachingBackend::find(std::uint64_t block) {
  auto it = core_->entries_.find(key_of(block));
  return it == core_->entries_.end() ? nullptr : &it->second;
}

void CachingBackend::touch(Entry& e, std::uint64_t key) {
  CacheCore& c = *core_;
  if (c.policy_ == CachePolicy::kLru) {
    // v1 single-list LRU: probation_ doubles as the one list.
    c.probation_.erase(e.lru);
    c.probation_.push_front(key);
    e.lru = c.probation_.begin();
    return;
  }
  if (e.prot) {
    c.protected_.erase(e.lru);
    c.protected_.push_front(key);
    e.lru = c.protected_.begin();
    return;
  }
  // Re-reference of a probation resident: promote.  This is the admission
  // gate -- a one-pass scan touches each block once and never gets here, so
  // scan traffic can only churn probation while the re-referenced working
  // set sits protected.
  c.probation_.erase(e.lru);
  c.protected_.push_front(key);
  e.lru = c.protected_.begin();
  e.prot = true;
  if (c.protected_.size() > c.prot_cap_) {
    // Demote the protected LRU to probation-front: it outlived its
    // re-reference credit but still outranks a never-retouched scan block.
    const std::uint64_t demoted = c.protected_.back();
    c.protected_.pop_back();
    Entry& d = c.entries_.at(demoted);
    c.probation_.push_front(demoted);
    d.lru = c.probation_.begin();
    d.prot = false;
  }
}

Status CachingBackend::write_back_run(std::uint64_t key) {
  CacheCore& c = *core_;
  auto fnd = [&c](std::uint64_t k) -> Entry* {
    auto it = c.entries_.find(k);
    return it == c.entries_.end() ? nullptr : &it->second;
  };
  // Maximal run of consecutive cached dirty blocks around `key`: one
  // coalesced write_many frame instead of a narrow write per eviction.
  // Keys namespace the id space per view, so every neighbor in the run
  // belongs to the same view -- and is written back through ITS inner.
  std::uint64_t lo = key, hi = key;
  while (block_of(lo) > 0) {
    Entry* e = fnd(lo - 1);
    if (e == nullptr || !e->dirty) break;
    --lo;
  }
  for (;;) {
    Entry* e = fnd(hi + 1);
    if (e == nullptr || !e->dirty) break;
    ++hi;
  }
  CachingBackend* owner = c.entries_.at(key).owner;
  const std::size_t bw = block_words();
  const std::size_t n = static_cast<std::size_t>(hi - lo + 1);
  std::vector<std::uint64_t> ids(n);
  owner->wb_stage_.resize(n * bw);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = block_of(lo + i);
    std::memcpy(owner->wb_stage_.data() + i * bw,
                slot_data(c.entries_.at(lo + i).slot), bw * sizeof(Word));
  }
  OEM_RETURN_IF_ERROR(owner->inner_->write_many(ids, owner->wb_stage_));
  // Only mark clean once the write landed: a transient failure above leaves
  // the dirty state (and the data) untouched for the device's retry.
  for (std::uint64_t k = lo; k <= hi; ++k) c.entries_.at(k).dirty = false;
  owner->writebacks_.fetch_add(n, std::memory_order_relaxed);
  owner->writeback_ops_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status CachingBackend::evict_one(std::size_t* slot) {
  CacheCore& c = *core_;
  // Probation drains first (under kLru everything lives there); protected
  // blocks go only when probation has no eligible victim.  Ineligible:
  // batch-pinned entries (see do_write_many) and dirty entries whose owner
  // view has begun-but-incomplete split-phase ops -- a synchronous
  // write-back through that inner would land mid-flight inside its FIFO.
  for (std::list<std::uint64_t>* seg : {&c.probation_, &c.protected_}) {
    for (auto it = seg->rbegin(); it != seg->rend(); ++it) {
      const std::uint64_t victim = *it;
      Entry& e = c.entries_.at(victim);
      if (e.pinned) continue;
      if (e.dirty && !e.owner->pending_.empty()) continue;
      if (e.dirty) OEM_RETURN_IF_ERROR(write_back_run(victim));
      if (seg == &c.probation_ && c.policy_ == CachePolicy::kScanResistant)
        e.owner->admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      e.owner->evictions_.fetch_add(1, std::memory_order_relaxed);
      *slot = e.slot;
      seg->erase(e.lru);
      c.entries_.erase(victim);
      return Status::Ok();
    }
  }
  return Status::Io(
      "cache eviction blocked: every resident block is pinned or owned by a "
      "view with in-flight frames");
}

Result<CachingBackend::Entry*> CachingBackend::insert(std::uint64_t block) {
  CacheCore& c = *core_;
  std::size_t slot;
  if (!c.free_slots_.empty()) {
    slot = c.free_slots_.back();
    c.free_slots_.pop_back();
  } else {
    OEM_RETURN_IF_ERROR(evict_one(&slot));
  }
  const std::uint64_t key = key_of(block);
  c.probation_.push_front(key);
  Entry e;
  e.owner = this;
  e.slot = slot;
  e.dirty = false;
  e.prot = false;
  e.lru = c.probation_.begin();
  return &c.entries_.emplace(key, e).first->second;
}

void CachingBackend::erase_entry(std::uint64_t key) {
  CacheCore& c = *core_;
  auto it = c.entries_.find(key);
  if (it == c.entries_.end()) return;
  Entry& e = it->second;
  (e.prot ? c.protected_ : c.probation_).erase(e.lru);
  c.free_slots_.push_back(e.slot);
  c.entries_.erase(it);
}

void CachingBackend::drop_view() {
  CacheCore& c = *core_;
  std::vector<std::uint64_t> own;
  own.reserve(c.entries_.size());
  for (const auto& [key, e] : c.entries_)
    if (e.owner == this) own.push_back(key);
  for (std::uint64_t k : own) erase_entry(k);
}

Status CachingBackend::flush() {
  Status st;
  {
    std::lock_guard<std::mutex> lk(core_->mu_);
    st = flush_impl();
  }
  if (!st.ok()) {
    // Latch the failure so it cannot vanish with the destructor's
    // best-effort flush: the count and first error stay observable through
    // stats()/health() for the lifetime of the cache.
    flush_failures_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(flush_mu_);
    if (flush_error_.ok()) flush_error_ = st;
  }
  return st;
}

Status CachingBackend::flush_impl() {
  // Complete any begun ops first (callers normally already have).  Only THIS
  // view's dirty blocks are written back: a shared core's other sessions
  // flush their own data on their own schedule.
  while (!pending_.empty()) OEM_RETURN_IF_ERROR(do_complete_oldest_locked());
  CacheCore& c = *core_;
  std::vector<std::uint64_t> dirty_keys;
  for (const auto& [key, e] : c.entries_)
    if (e.owner == this && e.dirty) dirty_keys.push_back(key);
  if (dirty_keys.empty()) return inner_->flush();
  std::sort(dirty_keys.begin(), dirty_keys.end());
  const std::size_t bw = block_words();
  std::vector<std::uint64_t> ids(dirty_keys.size());
  wb_stage_.resize(dirty_keys.size() * bw);
  for (std::size_t i = 0; i < dirty_keys.size(); ++i) {
    ids[i] = block_of(dirty_keys[i]);
    std::memcpy(wb_stage_.data() + i * bw,
                slot_data(c.entries_.at(dirty_keys[i]).slot), bw * sizeof(Word));
  }
  OEM_RETURN_IF_ERROR(inner_->write_many(ids, wb_stage_));
  for (std::uint64_t k : dirty_keys) c.entries_.at(k).dirty = false;
  writebacks_.fetch_add(dirty_keys.size(), std::memory_order_relaxed);
  writeback_ops_.fetch_add(1, std::memory_order_relaxed);
  return inner_->flush();
}

Status CachingBackend::do_resize(std::uint64_t nblocks) {
  std::lock_guard<std::mutex> lk(core_->mu_);
  while (!pending_.empty()) OEM_RETURN_IF_ERROR(do_complete_oldest_locked());
  // Shrunk-away blocks are gone by contract -- dirty included -- so a later
  // re-grow reads them as zero, exactly like the store below.  Only this
  // view's namespace is affected.
  CacheCore& c = *core_;
  std::vector<std::uint64_t> doomed;
  for (const auto& [key, e] : c.entries_)
    if (e.owner == this && block_of(key) >= nblocks) doomed.push_back(key);
  for (std::uint64_t k : doomed) erase_entry(k);
  return inner_->resize(nblocks);
}

Status CachingBackend::do_read(std::uint64_t block, std::span<Word> out) {
  const std::uint64_t ids[1] = {block};
  return do_read_many(std::span<const std::uint64_t>(ids, 1), out);
}

Status CachingBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  const std::uint64_t ids[1] = {block};
  return do_write_many(std::span<const std::uint64_t>(ids, 1), in);
}

Status CachingBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                    std::span<Word> out) {
  std::lock_guard<std::mutex> core_lk(core_->mu_);
  while (!pending_.empty()) OEM_RETURN_IF_ERROR(do_complete_oldest_locked());
  const std::size_t bw = block_words();
  // Stats are credited only on success: the device's retry loop re-invokes
  // the whole op on kIo, and re-served hits must not count twice.
  std::uint64_t op_hits = 0;
  std::vector<std::uint64_t> miss_ids;
  std::vector<std::size_t> miss_pos;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    Entry* e = find(blocks[i]);
    if (e != nullptr) {
      std::memcpy(out.data() + i * bw, slot_data(e->slot), bw * sizeof(Word));
      touch(*e, key_of(blocks[i]));
      ++op_hits;
    } else {
      miss_ids.push_back(blocks[i]);
      miss_pos.push_back(i);
    }
  }
  if (miss_ids.empty()) {
    hits_.fetch_add(op_hits, std::memory_order_relaxed);
    return Status::Ok();
  }
  // Zero-copy when the misses are one contiguous run of the caller's buffer
  // (the common cold-stream case: everything missed); strided misses land in
  // a staging buffer and scatter.
  if (contiguous_run(miss_pos)) {
    std::span<Word> dest = out.subspan(miss_pos[0] * bw, miss_ids.size() * bw);
    OEM_RETURN_IF_ERROR(inner_->read_many(miss_ids, dest));
    for (std::size_t j = 0; j < miss_ids.size(); ++j) {
      if (find(miss_ids[j]) != nullptr) continue;  // duplicate id in this batch
      auto e = insert(miss_ids[j]);
      OEM_RETURN_IF_ERROR(e.status());
      std::memcpy(slot_data((*e)->slot), dest.data() + j * bw, bw * sizeof(Word));
    }
    hits_.fetch_add(op_hits, std::memory_order_relaxed);
    misses_.fetch_add(miss_ids.size(), std::memory_order_relaxed);
    return Status::Ok();
  }
  ArenaBuffer staging;
  staging.resize(miss_ids.size() * bw);
  OEM_RETURN_IF_ERROR(
      inner_->read_many(miss_ids, std::span<Word>(staging.data(), staging.size())));
  for (std::size_t j = 0; j < miss_ids.size(); ++j) {
    std::memcpy(out.data() + miss_pos[j] * bw, staging.data() + j * bw,
                bw * sizeof(Word));
    if (find(miss_ids[j]) != nullptr) continue;
    auto e = insert(miss_ids[j]);
    OEM_RETURN_IF_ERROR(e.status());
    std::memcpy(slot_data((*e)->slot), staging.data() + j * bw, bw * sizeof(Word));
  }
  hits_.fetch_add(op_hits, std::memory_order_relaxed);
  misses_.fetch_add(miss_ids.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Status CachingBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                     std::span<const Word> in) {
  std::lock_guard<std::mutex> core_lk(core_->mu_);
  while (!pending_.empty()) OEM_RETURN_IF_ERROR(do_complete_oldest_locked());
  CacheCore& c = *core_;
  const std::size_t bw = block_words();
  // Atomic-by-rejection, like every other backend: everything that can fail
  // (eviction write-backs, a write-through) happens BEFORE any of this
  // batch's data enters the cache, so a kIo'd write leaves no partial
  // absorption behind -- nothing of a rejected batch can ever be flushed.
  std::size_t unique = 0, fresh = 0;  // distinct ids / distinct uncached ids
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i && !seen; ++j) seen = blocks[j] == blocks[i];
    if (seen) continue;
    ++unique;
    if (find(blocks[i]) == nullptr) ++fresh;
  }
  const bool fits = unique <= c.cap_;
  Status phase1;
  if (fits) {
    // Phase 1a: pin this batch's cached entries (and front them) so the
    // slot-freeing evictions below can only pick non-batch victims (the
    // capacity argument: unique <= cap_ guarantees enough of them).
    for (std::size_t i = 0; i < blocks.size(); ++i)
      if (Entry* e = find(blocks[i])) {
        touch(*e, key_of(blocks[i]));
        e->pinned = true;
      }
    // Phase 1b: secure a slot per fresh id -- the only failure point.
    while (phase1.ok() && c.free_slots_.size() < fresh) {
      std::size_t slot;
      phase1 = evict_one(&slot);
      if (phase1.ok()) c.free_slots_.push_back(slot);
    }
    // Unpin before any return: pins only shield this batch's phase 1b.
    for (std::size_t i = 0; i < blocks.size(); ++i)
      if (Entry* e = find(blocks[i])) e->pinned = false;
    OEM_RETURN_IF_ERROR(phase1);
  } else {
    // Degenerate batch wider than the whole cache: write the uncached
    // subset through (one failable op, first), then absorb the cached
    // overwrites (infallible).
    std::vector<std::uint64_t> through_ids;
    std::vector<std::size_t> through_pos;
    for (std::size_t i = 0; i < blocks.size(); ++i)
      if (find(blocks[i]) == nullptr) {
        through_ids.push_back(blocks[i]);
        through_pos.push_back(i);
      }
    wb_stage_.resize(through_ids.size() * bw);
    for (std::size_t j = 0; j < through_ids.size(); ++j)
      std::memcpy(wb_stage_.data() + j * bw, in.data() + through_pos[j] * bw,
                  bw * sizeof(Word));
    OEM_RETURN_IF_ERROR(inner_->write_many(through_ids, wb_stage_));
  }
  // Phase 2: absorb -- infallible by construction.
  std::uint64_t op_absorbed = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    Entry* e = find(blocks[i]);
    if (e == nullptr) {
      if (!fits) continue;  // written through above
      auto inserted = insert(blocks[i]);
      assert(inserted.ok());
      e = *inserted;
    } else {
      touch(*e, key_of(blocks[i]));
    }
    std::memcpy(slot_data(e->slot), in.data() + i * bw, bw * sizeof(Word));
    e->dirty = true;
    ++op_absorbed;
  }
  absorbed_.fetch_add(op_absorbed, std::memory_order_relaxed);
  return Status::Ok();
}

// Split-phase face: cached blocks are served/absorbed at begin time and the
// remainder forwards as at most one inner frame per begun batch.  The BEGIN
// half never changes residency, so a frame begun against an uncached block
// stays consistent; residency is granted at a read's successful COMPLETION
// (the bytes are in hand -- caching them costs no inner op), with two guards
// that keep the in-flight frames coherent:
//   * a block targeted by a still-pending write-AROUND frame is skipped (the
//     cached copy would go stale the moment that frame lands below), and
//   * slot acquisition never does inner I/O (free slot or clean LRU victim
//     only; a dirty victim would need a synchronous write-back in the middle
//     of the inner store's in-flight FIFO).
// Serving hits at begin stays sound: a block cached at completion time was a
// MISS in every frame begun before, and those frames complete from the inner
// store in FIFO order -- exactly the pre-insertion data they should observe.

Status CachingBackend::do_begin_read_many(std::span<const std::uint64_t> blocks,
                                          std::span<Word> out) {
  std::lock_guard<std::mutex> core_lk(core_->mu_);
  const std::size_t bw = block_words();
  PendingOp op;
  op.is_read = true;
  op.out = out.data();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    Entry* e = find(blocks[i]);
    if (e != nullptr) {
      std::memcpy(out.data() + i * bw, slot_data(e->slot), bw * sizeof(Word));
      touch(*e, key_of(blocks[i]));
      ++op.hits;
    } else {
      op.miss_ids.push_back(blocks[i]);
      op.miss_pos.push_back(i);
    }
  }
  op.misses = op.miss_ids.size();
  if (!op.miss_ids.empty()) {
    Status st;
    if (contiguous_run(op.miss_pos)) {
      // Borrowed span: the inner store completes straight into the caller's
      // buffer; op.staging stays empty as the marker.
      st = inner_->begin_read_many(
          op.miss_ids, out.subspan(op.miss_pos[0] * bw, op.miss_ids.size() * bw));
    } else {
      op.staging.resize(op.miss_ids.size() * bw);
      st = inner_->begin_read_many(
          op.miss_ids, std::span<Word>(op.staging.data(), op.staging.size()));
    }
    if (!st.ok()) return st;  // nothing begun, nothing to unwind
    op.has_frame = true;
  }
  pending_.push_back(std::move(op));
  return Status::Ok();
}

Status CachingBackend::do_begin_write_many(std::span<const std::uint64_t> blocks,
                                           std::span<const Word> in) {
  std::lock_guard<std::mutex> core_lk(core_->mu_);
  const std::size_t bw = block_words();
  PendingOp op;
  std::vector<std::uint64_t> around_ids;
  std::vector<std::size_t> around_pos;
  for (std::size_t i = 0; i < blocks.size(); ++i)
    if (find(blocks[i]) == nullptr) {
      // Write-around: uncached blocks go to the store below as one begun
      // frame (no allocation in the split-phase path -- see above).
      around_ids.push_back(blocks[i]);
      around_pos.push_back(i);
    }
  // The failable part first (atomic-by-rejection, like the sync path): only
  // once the write-around frame is on the wire does any of this batch's
  // data enter the cache, so a refused begin absorbs nothing.
  if (!around_ids.empty()) {
    Status st;
    if (contiguous_run(around_pos)) {
      st = inner_->begin_write_many(
          around_ids, in.subspan(around_pos[0] * bw, around_ids.size() * bw));
    } else {
      // begin_write_many consumes its input before returning, so the reused
      // gather scratch is safe.
      wb_stage_.resize(around_ids.size() * bw);
      for (std::size_t j = 0; j < around_ids.size(); ++j)
        std::memcpy(wb_stage_.data() + j * bw, in.data() + around_pos[j] * bw,
                    bw * sizeof(Word));
      st = inner_->begin_write_many(around_ids, wb_stage_);
    }
    if (!st.ok()) return st;
    op.has_frame = true;
    // Remembered so read completions won't grant residency to a block whose
    // write-around frame is still in flight below.
    op.miss_ids = std::move(around_ids);
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    Entry* e = find(blocks[i]);
    if (e == nullptr) continue;  // written around above
    std::memcpy(slot_data(e->slot), in.data() + i * bw, bw * sizeof(Word));
    e->dirty = true;
    touch(*e, key_of(blocks[i]));
    ++op.absorbed;
  }
  pending_.push_back(std::move(op));
  return Status::Ok();
}

bool CachingBackend::write_around_in_flight(std::uint64_t block) const {
  for (const PendingOp& p : pending_) {
    if (p.is_read) continue;
    for (std::uint64_t b : p.miss_ids)
      if (b == block) return true;
  }
  return false;
}

Status CachingBackend::do_complete_oldest() {
  std::lock_guard<std::mutex> core_lk(core_->mu_);
  return do_complete_oldest_locked();
}

Status CachingBackend::do_complete_oldest_locked() {
  if (pending_.empty()) return Status::Ok();
  CacheCore& c = *core_;
  PendingOp op = std::move(pending_.front());
  pending_.pop_front();
  Status st;
  if (op.has_frame) st = inner_->complete_oldest();
  const std::size_t bw = block_words();
  if (st.ok() && op.is_read && !op.staging.empty()) {
    for (std::size_t j = 0; j < op.miss_ids.size(); ++j)
      std::memcpy(op.out + op.miss_pos[j] * bw, op.staging.data() + j * bw,
                  bw * sizeof(Word));
  }
  if (st.ok() && op.is_read) {
    // Grant the fetched misses residency -- the split-phase equivalent of
    // the synchronous read path's insert, deferred to the moment the bytes
    // exist.  See the guards in the section comment above: no inner I/O
    // (free slot or clean victim only) and no block with a write-around
    // frame still in flight.  Victims come from the probation tail first --
    // a fetched miss is itself probationary, so it never displaces the
    // protected set.
    for (std::size_t j = 0; j < op.miss_ids.size(); ++j) {
      const std::uint64_t b = op.miss_ids[j];
      if (find(b) != nullptr) continue;  // duplicate id or already granted
      if (write_around_in_flight(b)) continue;
      std::size_t slot = 0;
      bool have_slot = false;
      if (!c.free_slots_.empty()) {
        slot = c.free_slots_.back();
        c.free_slots_.pop_back();
        have_slot = true;
      } else {
        for (std::list<std::uint64_t>* seg : {&c.probation_, &c.protected_}) {
          for (auto it = seg->rbegin(); it != seg->rend(); ++it) {
            Entry& v = c.entries_.at(*it);
            if (v.dirty || v.pinned) continue;
            slot = v.slot;
            v.owner->evictions_.fetch_add(1, std::memory_order_relaxed);
            c.entries_.erase(*it);
            seg->erase(std::next(it).base());
            have_slot = true;
            break;
          }
          if (have_slot) break;
        }
      }
      if (!have_slot) {
        // Every resident block is dirty or pinned: granting residency would
        // need inner I/O mid-FIFO.  Decline -- the bytes are already in the
        // caller's hands, only the cache copy is skipped.
        admission_rejects_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::uint64_t key = key_of(b);
      c.probation_.push_front(key);
      Entry e;
      e.owner = this;
      e.slot = slot;
      e.dirty = false;
      e.prot = false;
      e.pinned = false;
      e.lru = c.probation_.begin();
      c.entries_.emplace(key, e);
      const Word* src = op.staging.empty() ? op.out + op.miss_pos[j] * bw
                                           : op.staging.data() + j * bw;
      std::memcpy(slot_data(slot), src, bw * sizeof(Word));
    }
  }
  if (st.ok()) {
    // Credit the op's stats only now that it completed: a failed op is
    // replayed through the synchronous path, which does its own counting.
    hits_.fetch_add(op.hits, std::memory_order_relaxed);
    misses_.fetch_add(op.misses, std::memory_order_relaxed);
    absorbed_.fetch_add(op.absorbed, std::memory_order_relaxed);
  }
  return st;
}

// ---------------------------------------------------------------------------
// Factories.

BackendFactory sharded_backend(BackendFactory inner, std::size_t shards,
                               int parallel_dispatch) {
  ShardFactory per_shard = [inner = std::move(inner)](std::size_t block_words,
                                                      std::size_t) {
    return inner ? inner(block_words) : std::make_unique<MemBackend>(block_words);
  };
  return sharded_backend(std::move(per_shard), shards, parallel_dispatch);
}

BackendFactory sharded_backend(ShardFactory inner, std::size_t shards,
                               int parallel_dispatch) {
  assert(shards >= 1);
  return [inner = std::move(inner), shards,
          parallel_dispatch](std::size_t block_words) -> std::unique_ptr<StorageBackend> {
    if (shards == 1)
      return inner ? inner(block_words, 0) : std::make_unique<MemBackend>(block_words);
    std::vector<std::unique_ptr<StorageBackend>> v;
    v.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
      v.push_back(inner ? inner(block_words, s)
                        : std::make_unique<MemBackend>(block_words));
    const bool parallel = parallel_dispatch < 0
                              ? ShardedBackend::default_parallel_dispatch()
                              : parallel_dispatch != 0;
    return std::make_unique<ShardedBackend>(block_words, std::move(v), parallel);
  };
}

BackendFactory async_backend(BackendFactory inner) {
  return [inner = std::move(inner)](std::size_t block_words)
             -> std::unique_ptr<StorageBackend> {
    auto base = inner ? inner(block_words) : std::make_unique<MemBackend>(block_words);
    return std::make_unique<AsyncBackend>(std::move(base));
  };
}

BackendFactory faulty_backend(BackendFactory inner, FaultProfile profile) {
  return [inner = std::move(inner),
          profile](std::size_t block_words) -> std::unique_ptr<StorageBackend> {
    auto base = inner ? inner(block_words) : std::make_unique<MemBackend>(block_words);
    return std::make_unique<FaultyBackend>(std::move(base), profile);
  };
}

BackendFactory tampering_backend(BackendFactory inner, TamperProfile profile) {
  return [inner = std::move(inner),
          profile](std::size_t block_words) -> std::unique_ptr<StorageBackend> {
    auto base = inner ? inner(block_words) : std::make_unique<MemBackend>(block_words);
    return std::make_unique<TamperingBackend>(std::move(base), profile);
  };
}

BackendFactory caching_backend(BackendFactory inner, std::size_t capacity_blocks,
                               CachePolicy policy) {
  return [inner = std::move(inner), capacity_blocks,
          policy](std::size_t block_words) -> std::unique_ptr<StorageBackend> {
    auto base = inner ? inner(block_words) : std::make_unique<MemBackend>(block_words);
    return std::make_unique<CachingBackend>(std::move(base), capacity_blocks, policy);
  };
}

BackendFactory caching_backend(BackendFactory inner, SharedCacheHandle core) {
  return [inner = std::move(inner),
          core = std::move(core)](std::size_t block_words) -> std::unique_ptr<StorageBackend> {
    auto base = inner ? inner(block_words) : std::make_unique<MemBackend>(block_words);
    return std::make_unique<CachingBackend>(std::move(base), core);
  };
}

}  // namespace oem
