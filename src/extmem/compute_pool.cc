#include "extmem/compute_pool.h"

#include <algorithm>
#include <utility>

#if defined(__linux__)
#include <sys/prctl.h>
#ifndef PR_SET_TIMERSLACK
#define PR_SET_TIMERSLACK 29
#endif
#endif

namespace oem {

ComputePool::ComputePool(std::size_t threads)
    : threads_(std::max<std::size_t>(1, threads)) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ComputePool::~ComputePool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ComputePool::run_one(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  try {
    task();
  } catch (...) {
    lock.lock();
    if (!error_) error_ = std::current_exception();
    if (--pending_ == 0) done_cv_.notify_all();
    return true;
  }
  lock.lock();
  if (--pending_ == 0) done_cv_.notify_all();
  return true;
}

void ComputePool::worker_loop() {
#if defined(__linux__)
  // Default timer slack (50us) would blur the sub-millisecond sleeps the
  // compute model (ClientParams::compute_model_ns_per_block) relies on.
  ::prctl(PR_SET_TIMERSLACK, 1000, 0, 0, 0);
#endif
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty() && stop_) return;
    run_one(lock);
  }
}

void ComputePool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline fallback: same exception semantics as the pooled path (surface
    // at wait()), so call sites need exactly one error-handling shape.
    try {
      task();
    } catch (...) {
      if (!error_) error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ComputePool::wait() {
  if (workers_.empty()) {
    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      std::rethrow_exception(e);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  // The master is a lane too: drain the queue alongside the workers instead
  // of blocking -- mandatory for liveness when threads_-1 == 0 elsewhere,
  // and a real lane of throughput on loaded hosts.
  while (pending_ > 0) {
    if (!run_one(lock)) done_cv_.wait(lock, [this] { return pending_ == 0 || !queue_.empty(); });
  }
  if (error_) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ComputePool::parallel_for(std::size_t count, std::size_t grain,
                               const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  std::size_t g = grain != 0 ? grain : (count + threads_ - 1) / threads_;
  g = std::max<std::size_t>(1, g);
  if (workers_.empty() || g >= count) {
    // One chunk, or nobody to share with: plain loop on the master, no queue
    // round trip (exceptions propagate directly -- there is no barrier to
    // defer them past).
    for (std::size_t first = 0; first < count; first += g)
      fn(first, std::min(count, first + g));
    return;
  }
  for (std::size_t first = 0; first < count; first += g) {
    const std::size_t last = std::min(count, first + g);
    submit([&fn, first, last] { fn(first, last); });
  }
  wait();
}

}  // namespace oem
