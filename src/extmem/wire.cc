#include "extmem/wire.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "rng/random.h"

namespace oem::wire {

std::uint64_t control_mac(std::uint64_t key, std::uint64_t domain,
                          std::initializer_list<std::uint64_t> fields) {
  std::uint64_t h = rng::mix64(key ^ domain);
  for (std::uint64_t f : fields) h = rng::mix64(h ^ f);
  return h;
}

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  const std::size_t at = buf.size();
  buf.resize(at + sizeof(v));
  std::memcpy(buf.data() + at, &v, sizeof(v));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

bool read_full(int fd, void* dst, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(dst);
  while (len > 0) {
    const ssize_t got = ::recv(fd, p, len, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    p += got;
    len -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_full(int fd, const void* src, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(src);
  while (len > 0) {
    const ssize_t put = ::send(fd, p, len, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    len -= static_cast<std::size_t>(put);
  }
  return true;
}

bool read_frame(int fd, std::vector<std::uint8_t>* body) {
  std::uint64_t len = 0;
  if (!read_full(fd, &len, sizeof(len))) return false;
  if (len < sizeof(std::uint64_t) || len > kMaxFrameBytes) return false;
  body->resize(static_cast<std::size_t>(len));
  return read_full(fd, body->data(), body->size());
}

bool write_frame(int fd, const std::vector<std::uint8_t>& body) {
  const std::uint64_t len = body.size();
  return write_full(fd, &len, sizeof(len)) && write_full(fd, body.data(), body.size());
}

namespace {

using Clock = std::chrono::steady_clock;

/// Full-buffer transfer against an absolute deadline: poll for readiness
/// with the REMAINING time, then move what the socket will take without
/// blocking.  Progress does not extend the deadline -- it bounds the whole
/// transfer, which is what defeats a byte-at-a-time slow-loris peer.
template <bool kWrite>
IoVerdict transfer_deadline(int fd, void* buf, std::size_t len,
                            Clock::time_point deadline) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    const auto now = Clock::now();
    if (now >= deadline) return IoVerdict::kTimeout;
    pollfd pfd{fd, static_cast<short>(kWrite ? POLLOUT : POLLIN), 0};
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
    const int pr = ::poll(&pfd, 1, static_cast<int>(left) < 1 ? 1 : static_cast<int>(left));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return IoVerdict::kClosed;
    }
    if (pr == 0) continue;  // re-check the clock at the top
    const ssize_t moved = kWrite
                              ? ::send(fd, p, len, MSG_NOSIGNAL | MSG_DONTWAIT)
                              : ::recv(fd, p, len, MSG_DONTWAIT);
    if (moved < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoVerdict::kClosed;
    }
    if (!kWrite && moved == 0) return IoVerdict::kClosed;  // peer closed
    p += moved;
    len -= static_cast<std::size_t>(moved);
  }
  return IoVerdict::kOk;
}

}  // namespace

IoVerdict read_frame_deadline(int fd, std::vector<std::uint8_t>* body,
                              std::uint64_t deadline_ms) {
  if (deadline_ms == 0)
    return read_frame(fd, body) ? IoVerdict::kOk : IoVerdict::kClosed;
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  std::uint64_t len = 0;
  IoVerdict v = transfer_deadline<false>(fd, &len, sizeof(len), deadline);
  if (v != IoVerdict::kOk) return v;
  if (len < sizeof(std::uint64_t) || len > kMaxFrameBytes) return IoVerdict::kClosed;
  body->resize(static_cast<std::size_t>(len));
  return transfer_deadline<false>(fd, body->data(), body->size(), deadline);
}

IoVerdict write_frame_deadline(int fd, const std::vector<std::uint8_t>& body,
                               std::uint64_t deadline_ms) {
  if (deadline_ms == 0)
    return write_frame(fd, body) ? IoVerdict::kOk : IoVerdict::kClosed;
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  std::uint64_t len = body.size();
  IoVerdict v = transfer_deadline<true>(fd, &len, sizeof(len), deadline);
  if (v != IoVerdict::kOk) return v;
  // write_full takes const; the template writes through a non-const pointer
  // only for symmetry with the read path -- the bytes are never mutated.
  return transfer_deadline<true>(fd, const_cast<std::uint8_t*>(body.data()),
                                 body.size(), deadline);
}

std::vector<std::uint8_t> make_response(const Status& st) {
  std::vector<std::uint8_t> r;
  put_u64(r, static_cast<std::uint64_t>(st.code()));
  if (!st.ok()) {
    const std::string& m = st.message();
    r.insert(r.end(), m.begin(), m.end());
  }
  return r;
}

Status parse_status(const std::vector<std::uint8_t>& body) {
  if (body.size() < sizeof(std::uint64_t))
    return Status::Io("remote: malformed response frame");
  const auto code = static_cast<StatusCode>(get_u64(body.data()));
  if (code == StatusCode::kOk) return Status::Ok();
  std::string msg(reinterpret_cast<const char*>(body.data()) + sizeof(std::uint64_t),
                  body.size() - sizeof(std::uint64_t));
  return Status(code, "remote: " + msg);
}

}  // namespace oem::wire
