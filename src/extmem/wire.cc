#include "extmem/wire.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace oem::wire {

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  const std::size_t at = buf.size();
  buf.resize(at + sizeof(v));
  std::memcpy(buf.data() + at, &v, sizeof(v));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

bool read_full(int fd, void* dst, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(dst);
  while (len > 0) {
    const ssize_t got = ::recv(fd, p, len, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    p += got;
    len -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_full(int fd, const void* src, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(src);
  while (len > 0) {
    const ssize_t put = ::send(fd, p, len, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    len -= static_cast<std::size_t>(put);
  }
  return true;
}

bool read_frame(int fd, std::vector<std::uint8_t>* body) {
  std::uint64_t len = 0;
  if (!read_full(fd, &len, sizeof(len))) return false;
  if (len < sizeof(std::uint64_t) || len > kMaxFrameBytes) return false;
  body->resize(static_cast<std::size_t>(len));
  return read_full(fd, body->data(), body->size());
}

bool write_frame(int fd, const std::vector<std::uint8_t>& body) {
  const std::uint64_t len = body.size();
  return write_full(fd, &len, sizeof(len)) && write_full(fd, body.data(), body.size());
}

std::vector<std::uint8_t> make_response(const Status& st) {
  std::vector<std::uint8_t> r;
  put_u64(r, static_cast<std::uint64_t>(st.code()));
  if (!st.ok()) {
    const std::string& m = st.message();
    r.insert(r.end(), m.begin(), m.end());
  }
  return r;
}

Status parse_status(const std::vector<std::uint8_t>& body) {
  if (body.size() < sizeof(std::uint64_t))
    return Status::Io("remote: malformed response frame");
  const auto code = static_cast<StatusCode>(get_u64(body.data()));
  if (code == StatusCode::kOk) return Status::Ok();
  std::string msg(reinterpret_cast<const char*>(body.data()) + sizeof(std::uint64_t),
                  body.size() - sizeof(std::uint64_t));
  return Status(code, "remote: " + msg);
}

}  // namespace oem::wire
