// IoEngine: the parallel storage layer behind the BlockDevice.
//
// The paper's client/outsourced-storage model makes block *placement*
// orthogonal to obliviousness: Bob sees the same access sequence whether the
// blocks live on one store or are striped across many, so parallel storage is
// free leverage on wall-clock.  Two composable decorators exploit that:
//
//   * ShardedBackend -- stripes blocks round-robin over K inner backends
//     (block b lives on shard b mod K at inner index b div K) and dispatches
//     the per-shard slices of a read_many/write_many batch to persistent
//     worker threads, so K stores transfer -- and K LatencyBackends sleep --
//     in parallel.  When the shards themselves support split-phase I/O
//     (max_inflight() > 1 -- K RemoteBackends, one connection each), the
//     split-phase face is forwarded: a begun batch is split into per-shard
//     sub-frames begun on ALL shards back to back, and completed FIFO per
//     shard, so striping and pipeline depth MULTIPLY -- a sharded(K) stack
//     over remote stores keeps K x depth frames on the wire instead of
//     collapsing the pipeline to one batch round trip at a time.  Per-shard
//     sub-frames whose slice of the caller's buffer is one contiguous run
//     borrow that span end-to-end (no staging memcpy); only strided slices
//     pay a gather/scatter copy.
//
//   * CachingBackend -- an LRU write-back block cache decorator.  Writes are
//     absorbed in the cache (dirty blocks reach the store below only on
//     eviction or flush, with dirty neighbors coalesced into one batched
//     write-back frame), re-touched reads are served without an inner op,
//     and misses forward the split-phase face so a cache over a remote
//     store keeps its wire pipelining.  Sits ABOVE encryption (it must hold
//     each plaintext block exactly once) and ABOVE latency/sharding (a hit
//     must cost no simulated round trip); Session::Builder::cache composes
//     it there.  The BlockDevice records the trace at submit time ABOVE
//     this decorator, so Bob's recorded view is unchanged -- the cache only
//     changes which of those accesses still reach the wire, a function of
//     the (data-independent) block-id sequence alone.
//
//   * AsyncBackend -- a decorator exposing submit_read_many/submit_write_many
//     tickets executed by a single background I/O thread in FIFO submission
//     order.  Callers overlap compute with storage I/O; FIFO execution keeps
//     read-after-write and write-after-write hazards impossible by
//     construction.  Synchronous StorageBackend calls drain the queue first,
//     so non-pipelined code paths stay correct unchanged.  AsyncBackend must
//     be the OUTERMOST decorator: the BlockDevice detects it at the top of
//     the stack only, and an AsyncBackend buried under another decorator is
//     driven through the (correct but blocking) synchronous path, losing all
//     overlap.  Session::Builder and bench_common always compose it last.
//
//     When the inner backend supports split-phase I/O (max_inflight() > 1 --
//     a RemoteBackend, possibly under an EncryptedBackend), the I/O thread
//     keeps up to that many ops begun-but-incomplete at once instead of
//     waiting out each round trip: requests stream onto the wire and
//     responses are completed strictly in submission order, so the FIFO
//     semantics (and every hazard argument built on them) are untouched
//     while the round trips overlap.  This is what turns pipeline depth
//     (PipelineOptions::depth) into wall-clock on a high-RTT store: a
//     serial round trip per window costs 2*RTT/window no matter how many
//     windows are queued, a pipelined wire amortizes the RTT across all
//     in-flight windows.  A kIo completion (a dropped connection loses every
//     later in-flight response with it) drains the whole window and replays
//     each op synchronously in order under the retry budget -- replay is
//     idempotent because the server's applied state is always a prefix of
//     the sent frames.
//
// Neither decorator is visible in the adversary's view: the BlockDevice above
// records the per-block trace at submission time, in program order, and that
// order is a deterministic function of the algorithm's public parameters --
// never of where or when the bytes physically move (see the cross-backend
// trace-equivalence suite in tests/io_engine_test.cc).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "extmem/arena.h"
#include "extmem/backend.h"

namespace oem {

// ---------------------------------------------------------------------------
// ShardedBackend.

class ShardedBackend : public StorageBackend {
 public:
  /// Takes ownership of `shards` (all with the same block_words).
  /// `parallel_dispatch`: use per-shard worker threads for multi-shard
  /// batches.  Defaults to hardware_concurrency() > 1 -- on a single
  /// hardware thread the wake cascade costs more than shard-serial
  /// execution saves, so sub-batches run inline instead (identical
  /// semantics, identical trace).
  ShardedBackend(std::size_t block_words,
                 std::vector<std::unique_ptr<StorageBackend>> shards,
                 bool parallel_dispatch = default_parallel_dispatch());
  static bool default_parallel_dispatch() {
    return std::thread::hardware_concurrency() > 1;
  }
  ~ShardedBackend() override;
  const char* name() const override { return "sharded"; }
  Status health() const override;

  std::size_t num_shards() const { return shards_.size(); }
  StorageBackend& shard(std::size_t s) { return *shards_[s]; }
  const StorageBackend& shard(std::size_t s) const { return *shards_[s]; }
  /// Flush every shard; first error wins.
  Status flush() override;
  /// Batches dispatched to the worker pool (vs. run inline because only one
  /// shard was involved); shows the parallel path is actually exercised.
  std::uint64_t parallel_dispatches() const {
    return dispatches_.load(std::memory_order_relaxed);
  }

 protected:
  Status do_resize(std::uint64_t nblocks) override;
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;
  /// Split-phase forwarding: a begun batch becomes one sub-frame per
  /// involved shard, begun back to back (requests from ALL shards go on
  /// their wires before any response is awaited) and completed FIFO per
  /// shard, so K shards each carrying max_inflight frames hold K x depth
  /// batches in flight.  A batch consumes at most one frame per shard, so
  /// the whole stripe can keep min_s max_inflight(shard s) batches open.
  std::size_t do_max_inflight() const override;
  Status do_begin_read_many(std::span<const std::uint64_t> blocks,
                            std::span<Word> out) override;
  Status do_begin_write_many(std::span<const std::uint64_t> blocks,
                             std::span<const Word> in) override;
  Status do_complete_oldest() override;

 private:
  /// One shard's slice of the current batch (reused across calls).
  struct SubBatch {
    std::vector<std::uint64_t> inner_ids;  // block ids on the shard
    std::vector<std::size_t> flat;         // position in the caller's batch
    ArenaBuffer staging;                   // contiguous per-shard transfer buffer
    Status status;
  };

  /// One outstanding split-phase batch: its per-shard sub-frames, in the
  /// order their begin_* frames were issued (= completion order per shard).
  /// Parts are pooled (part_pool_): a retired frame's parts keep their id
  /// and staging capacity for the next begun batch, so the steady-state
  /// split-phase path performs zero heap allocations per frame.
  struct ShardFrame {
    struct Part {
      std::size_t shard = 0;
      std::vector<std::uint64_t> inner_ids;
      std::vector<std::size_t> flat;  // caller positions; empty for a
                                      // contiguous run starting at flat0
      std::size_t flat0 = 0;
      ArenaBuffer staging;            // read landing zone for strided parts
    };
    bool is_write = false;
    std::span<Word> rout;  // caller read dest; valid until complete_oldest
    std::vector<Part> parts;
  };

  void partition(std::span<const std::uint64_t> blocks);
  Status run_batch(bool is_write, std::span<Word> rout, std::span<const Word> win);
  void run_shard(std::size_t s);
  void worker_loop(std::size_t s);

  std::vector<std::unique_ptr<StorageBackend>> shards_;
  std::vector<SubBatch> sub_;
  /// Completes the oldest outstanding batch: one complete per involved
  /// shard, scattering strided read parts into the caller's buffer, then
  /// recycles the frame's parts into part_pool_.
  Status complete_frame(ShardFrame f);
  /// Pops a pooled Part (or a fresh one), reset for reuse.
  ShardFrame::Part acquire_part();
  /// Fails a partially-begun batch without breaking any shard's FIFO: every
  /// OLDER batch is completed first (in order, statuses stashed for the
  /// caller's later complete_oldest calls -- their destinations are still
  /// valid, they are just retired early), which makes the partial batch's
  /// frames the head of each shard's queue, so they can be popped and
  /// discarded.
  void abort_partial_begin(ShardFrame& f);

  std::deque<ShardFrame> frames_;  // outstanding split-phase batches (FIFO)
  std::deque<Status> completed_early_;  // statuses of batches retired by an abort
  std::vector<ShardFrame::Part> part_pool_;  // retired parts, capacity retained
  ArenaBuffer wstage_;             // strided write gather scratch (consumed at begin)

  // Dispatch state: the main thread publishes a batch under mu_ and bumps
  // gen_; workers with a non-empty slice run it and decrement pending_.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<std::size_t> pending_{0};
  bool stop_ = false;             // guarded by mu_
  bool job_is_write_ = false;     // published before gen_ bump
  std::span<Word> job_rout_;
  std::span<const Word> job_win_;
  std::size_t inline_shard_ = 0;  // slice the main thread runs itself
  bool parallel_ = true;
  std::atomic<std::uint64_t> dispatches_{0};
  std::vector<std::thread> workers_;
};

// ---------------------------------------------------------------------------
// AsyncBackend.

class AsyncBackend : public StorageBackend {
 public:
  explicit AsyncBackend(std::unique_ptr<StorageBackend> inner);
  ~AsyncBackend() override;
  const char* name() const override { return "async"; }
  Status health() const override { return inner_->health(); }

  StorageBackend& inner() { return *inner_; }
  const StorageBackend& inner() const { return *inner_; }
  const StorageBackend* inner_backend() const override { return inner_.get(); }

  /// Tickets are 1-based submission sequence numbers; ops execute on the I/O
  /// thread strictly in ticket order.
  using Ticket = std::uint64_t;

  /// `out` must stay valid until wait(ticket) returns.
  Ticket submit_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out);
  /// Takes ownership of the id list and ciphertext, so the caller's staging
  /// buffers are immediately reusable.
  Ticket submit_write_many(std::vector<std::uint64_t> blocks, std::vector<Word> in);
  /// Zero-copy write: the ciphertext is BORROWED -- `in` must stay valid
  /// (and unmodified) until a wait() covering the ticket returns.  The block
  /// pipeline uses this with per-window staging it only reuses after the
  /// FIFO guarantees the write executed, saving a heap allocation and a
  /// full buffer copy per window.
  Ticket submit_write_many_borrowed(std::span<const std::uint64_t> blocks,
                                    std::span<const Word> in);

  /// Blocks until every op with ticket <= t has executed.  Returns the first
  /// error any completed op hit since the last report; reporting clears it,
  /// so one failed op does not poison the backend forever -- the caller that
  /// observes the error aborts its computation, and unrelated later work
  /// (arena compaction, a fresh algorithm call) proceeds normally.
  Status wait(Ticket t);
  /// wait() for everything submitted so far.
  Status drain();

  /// Drain the queue (so every submitted write reached the inner backend),
  /// then flush the inner store; first error wins.
  Status flush() override {
    Status st = drain();
    st.Update(inner_->flush());
    return st;
  }

  std::uint64_t submitted() const { return submitted_.load(std::memory_order_relaxed); }

  /// Bounded retry of kIo failures on the I/O thread, so submitted ops get
  /// the same recovery as synchronous ones.  The BlockDevice installs its
  /// retry policy here at construction; 1 means no retry.
  void set_retry_attempts(unsigned attempts) {
    retry_attempts_.store(attempts < 1 ? 1 : attempts, std::memory_order_relaxed);
  }
  /// Retries performed by the I/O thread (for tests and introspection).
  std::uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }

 protected:
  // Synchronous calls drain the queue first so they observe (and are ordered
  // against) every submitted op, then forward to the inner backend.
  Status do_resize(std::uint64_t nblocks) override;
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;

 private:
  struct Op {
    bool is_write = false;
    std::vector<std::uint64_t> blocks;
    std::vector<Word> wdata;        // writes: owned ciphertext
    const Word* wsrc = nullptr;     // writes: borrowed ciphertext (zero-copy)
    std::size_t wlen = 0;
    Word* rdest = nullptr;          // reads: caller-owned destination
    std::size_t rlen = 0;
    // Wire-pipelined execution state (inner max_inflight() > 1).
    bool noop = false;  // empty batch: completes without touching the inner
    Status begun;       // begin_* result; non-ok ops skip complete_oldest
  };

  void io_loop();
  /// Pops a pooled Op (blocks/wdata capacity retained from a retired op,
  /// other fields reset) -- caller holds mu_.  Retired ops return via
  /// recycle_op() on the I/O thread, so a steady-state submit stream
  /// performs zero heap allocations per op.
  Op acquire_op_locked();
  void recycle_op(Op&& op);

  std::unique_ptr<StorageBackend> inner_;
  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable done_cv_;
  std::deque<Op> queue_;    // guarded by mu_
  std::vector<Op> op_pool_;  // retired ops for reuse (guarded by mu_)
  // Modified under mu_ (so the cv waits are race-free) but also read
  // lock-free by brief spin loops that avoid a futex round trip per op.
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::size_t> queued_{0};
  /// First unreported error (guarded by mu_); cleared when wait()/drain()
  /// hands it to a caller.
  Status sticky_;
  bool error_ = false; // guarded by mu_
  bool stop_ = false;  // guarded by mu_
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<unsigned> retry_attempts_{1};
  std::atomic<std::uint64_t> retries_{0};
  std::thread io_thread_;
};

// ---------------------------------------------------------------------------
// FaultyBackend.

/// Deterministic, seed-reproducible fault injection.  Every data-path op
/// (read/write, single or batched) rolls one pseudo-random decision from
/// (seed, decision index); the sequence of decisions -- hence which ops fail
/// -- is a pure function of the seed and the call sequence, so a faulty run
/// is exactly replayable.
struct FaultProfile {
  std::uint64_t seed = 1;
  /// Probability that an op fires a fault (evaluated once per *fresh* op;
  /// the consecutive failures of a fired fault don't roll new decisions).
  double fail_rate = 0.0;
  /// Consecutive failures per fired fault; the attempt after the N-th
  /// failure is guaranteed to succeed.  1 = fail-once (the immediate retry
  /// recovers), N = fail-N (recovers with >= N+1 attempts, exhausts
  /// smaller retry budgets).
  unsigned fail_times = 1;
  /// "Slow shard": added real delay per op, modeling a degraded store.
  /// Never affects results or the recorded trace -- only wall-clock.
  std::uint64_t slow_ns = 0;
  bool fail_reads = true;
  bool fail_writes = true;
};

/// Decorator injecting per-shard storage failures behind the StorageBackend
/// seam.  Wrap each shard's base store (Session::Builder::fault_injection and
/// bench --faults=seed:rate derive a distinct sub-seed per shard) so failures
/// hit individual shards, exactly like a real striped deployment.  A fired
/// fault rejects the op with StatusCode::kIo BEFORE forwarding, so a failed
/// batch leaves the inner store untouched -- no partial writes.  resize() is
/// never faulted: arena management is Alice-side bookkeeping, not a transfer.
class FaultyBackend : public StorageBackend {
 public:
  FaultyBackend(std::unique_ptr<StorageBackend> inner, FaultProfile profile);
  const char* name() const override { return "faulty"; }
  Status health() const override { return inner_->health(); }

  StorageBackend& inner() { return *inner_; }
  const StorageBackend& inner() const { return *inner_; }
  const StorageBackend* inner_backend() const override { return inner_.get(); }
  const FaultProfile& profile() const { return profile_; }
  /// Never faulted, like resize: a flush is shutdown bookkeeping, not a
  /// data-path transfer.
  Status flush() override { return inner_->flush(); }

  /// Data-path ops observed and faults injected (counting every failed
  /// attempt).  Atomic: a FaultyBackend under an AsyncBackend or a shard
  /// worker is driven off-thread while the main thread reads the counters.
  std::uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }
  std::uint64_t injected_faults() const {
    return faults_.load(std::memory_order_relaxed);
  }

 protected:
  Status do_resize(std::uint64_t nblocks) override { return inner_->resize(nblocks); }
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;
  /// Split-phase forwarding: the fault decision is rolled at BEGIN time (a
  /// fired fault rejects the op before any frame is sent, so the inner store
  /// stays untouched -- same atomic-by-rejection contract as the sync path);
  /// a begun-ok op forwards its completion unchanged.  This keeps the wire
  /// pipelining of a remote store under per-shard fault injection.
  std::size_t do_max_inflight() const override { return inner_->max_inflight(); }
  Status do_begin_read_many(std::span<const std::uint64_t> blocks,
                            std::span<Word> out) override;
  Status do_begin_write_many(std::span<const std::uint64_t> blocks,
                             std::span<const Word> in) override;
  Status do_complete_oldest() override { return inner_->complete_oldest(); }

 private:
  /// Rolls the fault decision for one op; non-ok means the op must fail now.
  Status gate(bool is_write);

  std::unique_ptr<StorageBackend> inner_;
  FaultProfile profile_;
  std::mutex mu_;                 // serializes the decision stream
  std::uint64_t decisions_ = 0;   // fresh-op decisions rolled (guarded by mu_)
  unsigned pending_fails_ = 0;    // consecutive failures left (guarded by mu_)
  bool recovering_ = false;       // next attempt passes for free (guarded by mu_)
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> faults_{0};
};

// ---------------------------------------------------------------------------
// TamperingBackend.

/// Deterministic, seed-reproducible *malicious server* simulation -- the
/// adversary upgrade from FaultyBackend's fail-stop model.  Where FaultyBackend
/// rejects ops loudly with kIo (honest-but-unreliable storage), a
/// TamperingBackend lies: reads return mutated bytes with Status::Ok, and a
/// rolled-back write is acknowledged but silently dropped so later reads serve
/// the stale ciphertext (and its stale, once-valid MAC).  Every decision comes
/// from (seed, decision index), so a tampered run is exactly replayable.
struct TamperProfile {
  std::uint64_t seed = 1;
  /// Probability a block read is mutated (rolled per block of a batch) and
  /// that a write op is rolled back (rolled once per write op).
  double tamper_rate = 0.0;
  // Which attacks the simulated server mounts (mode picked per fired
  // decision among the enabled read modes; rollback applies to writes):
  bool corrupt = true;   // garble every word of the served block
  bool bit_flip = true;  // flip one random bit of the served block
  bool swap = true;      // serve another block of the same batch (both move);
                         // degrades to corrupt on single-block reads
  bool rollback = true;  // ACK a write but drop it: later reads serve the old
                         // ciphertext with its old (once-valid) MAC -- only a
                         // client-side version/freshness check can catch it
};

/// Decorator mounting the TamperProfile's attacks behind the StorageBackend
/// seam.  Compose it INNERMOST (directly over the base store, UNDER
/// EncryptedBackend/Client crypto), where the paper's malicious Bob lives:
/// it mutates ciphertext at rest / in flight, and the authenticated
/// encryption layer above must convert every mutation into a clean
/// StatusCode::kIntegrity failure -- never silent corruption, and never a
/// retry (RetryPolicy only retries kIo).  Session::Builder::tampering wraps
/// each shard's base store with a distinct sub-seed, like fault_injection.
///
/// The split-phase face is forwarded; read mutations are applied at
/// completion time (when the bytes exist), write rollbacks are decided at
/// begin time (the dropped frame is never sent, and its completion is a
/// local no-op), so the decision stream stays a pure function of the call
/// sequence.  resize()/flush() are never tampered: arena bookkeeping, not
/// data the adversary serves.
class TamperingBackend : public StorageBackend {
 public:
  TamperingBackend(std::unique_ptr<StorageBackend> inner, TamperProfile profile);
  const char* name() const override { return "tamper"; }
  Status health() const override { return inner_->health(); }

  StorageBackend& inner() { return *inner_; }
  const StorageBackend& inner() const { return *inner_; }
  const StorageBackend* inner_backend() const override { return inner_.get(); }
  const TamperProfile& profile() const { return profile_; }
  Status flush() override { return inner_->flush(); }

  /// Data-path ops observed / blocks mutated + writes dropped.  Atomic: a
  /// TamperingBackend under an AsyncBackend or a shard worker is driven
  /// off-thread while the main thread reads the counters.
  std::uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }
  std::uint64_t tampered() const { return tampered_.load(std::memory_order_relaxed); }

 protected:
  Status do_resize(std::uint64_t nblocks) override { return inner_->resize(nblocks); }
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;
  std::size_t do_max_inflight() const override { return inner_->max_inflight(); }
  Status do_begin_read_many(std::span<const std::uint64_t> blocks,
                            std::span<Word> out) override;
  Status do_begin_write_many(std::span<const std::uint64_t> blocks,
                             std::span<const Word> in) override;
  Status do_complete_oldest() override;

 private:
  /// Next decision word; a pure function of (seed, ++decisions_).
  std::uint64_t draw();
  /// Rolls one tamper decision (caller holds mu_).
  bool fire();
  /// True when the profile can mutate reads at all.
  bool reads_armed() const {
    return profile_.tamper_rate > 0.0 &&
           (profile_.corrupt || profile_.bit_flip || profile_.swap);
  }
  /// Mutates the served batch in place per the decision stream.
  void tamper_read(std::size_t nblocks, std::span<Word> out);
  /// Rolls the per-op rollback decision for a write.
  bool drop_write();

  /// One begun split-phase op: reads remember where the bytes will land so
  /// the mutation can be applied at completion; dropped writes remember that
  /// no inner frame exists to complete.
  struct Pending {
    bool is_read = false;
    bool dropped = false;   // rolled-back write: no inner frame
    std::size_t nblocks = 0;
    std::span<Word> out;    // read destination; valid until complete_oldest
  };

  std::unique_ptr<StorageBackend> inner_;
  TamperProfile profile_;
  std::mutex mu_;                // serializes the decision stream
  std::uint64_t decisions_ = 0;  // guarded by mu_
  std::deque<Pending> pending_;  // begun split-phase ops (FIFO)
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> tampered_{0};
};

// ---------------------------------------------------------------------------
// CachingBackend.

/// Read-hit / write-absorption counters.  Snapshot of atomics: a cache under
/// an AsyncBackend is driven from the I/O thread while the main thread reads.
/// On a shared cache (make_shared_cache) every attached view keeps its OWN
/// counters, so a multi-session server can report per-session numbers while
/// the residency itself is shared.
struct CacheStats {
  std::uint64_t hits = 0;             // read blocks served from the cache
  std::uint64_t misses = 0;           // read blocks fetched from the inner store
  std::uint64_t absorbed_writes = 0;  // write blocks absorbed (no inner op)
  std::uint64_t writebacks = 0;       // dirty blocks written back to the inner
  std::uint64_t writeback_ops = 0;    // coalesced write-back frames issued
  std::uint64_t evictions = 0;        // cached blocks dropped to make room
  std::uint64_t flush_failures = 0;   // flush() calls that could not land dirty data
  /// Scan-resistance at work: blocks dropped from the probation segment
  /// without ever being re-referenced (a one-pass scan's blocks end here
  /// instead of evicting the protected working set), plus split-phase
  /// residency grants that had to be declined.
  std::uint64_t admission_rejects = 0;
  double hit_rate() const {
    const std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// Admission/eviction policy of a CacheCore.
enum class CachePolicy {
  /// Segmented LRU (the default): a block enters the PROBATION segment on
  /// first touch and is promoted to the PROTECTED segment (~3/4 of
  /// capacity) only on re-reference; eviction drains probation first.  A
  /// one-pass reshuffle or sort sweep therefore churns through probation
  /// while the re-referenced hot set (ORAM position maps, the working
  /// window) stays protected.
  kScanResistant,
  /// The v1 single-list LRU, kept as the bench_hierarchy baseline.
  kLru,
};

class CachingBackend;

/// The shareable heart of a CachingBackend: the slab, the residency index,
/// and the segmented-LRU lists behind one mutex.  N Sessions attach N
/// CachingBackend *views* to one core (make_shared_cache +
/// Session::Builder::shared_cache); each view brings its own inner backend
/// and its own stats, while residency and eviction pressure are shared.
/// Entries are namespaced per view -- (view id << 48) | block -- so two
/// sessions' block 7 never collide, and every entry remembers its owning
/// view so a dirty victim is written back through the RIGHT inner store no
/// matter which view triggered the eviction.
///
/// Geometry is fixed lazily: make_shared_cache picks only the capacity, the
/// first attached view supplies block_words, and every later view must
/// match it (mismatch surfaces at that view's health()).
class CacheCore {
 public:
  CacheCore(std::size_t capacity_blocks, CachePolicy policy);
  std::size_t capacity_blocks() const { return cap_; }
  CachePolicy policy() const { return policy_; }
  /// Resident blocks across every attached view.
  std::size_t cached_blocks() const {
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
  }

 private:
  friend class CachingBackend;
  struct Entry {
    CachingBackend* owner = nullptr;  // view that caches (and writes back) it
    std::size_t slot = 0;
    bool dirty = false;
    bool prot = false;    // resident in the protected segment
    bool pinned = false;  // mid-batch eviction shield (see do_write_many)
    std::list<std::uint64_t>::iterator lru;  // position in its segment list
  };

  const std::size_t cap_;
  const std::size_t prot_cap_;  // protected-segment capacity (~3/4 of cap_)
  const CachePolicy policy_;
  mutable std::mutex mu_;       // guards everything below AND every view's
                                // cache operation end to end
  std::size_t block_words_ = 0;  // fixed by the first attached view
  std::vector<Word> slab_;       // cap_ * block_words_ words
  std::vector<std::size_t> free_slots_;
  std::unordered_map<std::uint64_t, Entry> entries_;  // key = view<<48 | block
  std::list<std::uint64_t> probation_;   // front = most recently admitted
  std::list<std::uint64_t> protected_;   // front = most recently re-referenced
  std::uint64_t next_view_id_ = 0;
};

/// Shared ownership of a cache core: Sessions (and the oem-server) hold one
/// handle and hand it to every Session::Builder::shared_cache call; the core
/// dies with its last view.
using SharedCacheHandle = std::shared_ptr<CacheCore>;

/// A cache core to share across Sessions.  `capacity_blocks` >= 1; the block
/// geometry is adopted from the first attached Session.
SharedCacheHandle make_shared_cache(std::size_t capacity_blocks,
                                    CachePolicy policy = CachePolicy::kScanResistant);

/// Write-back block cache view over a CacheCore (segmented-LRU by default,
/// scan-resistant; see CachePolicy).  Reads of cached blocks never reach the
/// inner store; writes are absorbed (marked dirty) and written back only on
/// eviction, flush() or destruction -- with cached dirty NEIGHBORS of the
/// victim coalesced into the same batched write-back frame, so a hot working
/// set streams back as few wide writes instead of many narrow ones.  The
/// split-phase face is forwarded (max_inflight of the inner store), keeping
/// the wire pipelining of a remote stack: begun batches serve/absorb their
/// cached blocks at begin time and forward the remainder (read misses,
/// writes to uncached blocks) as one in-flight inner frame; residency only
/// changes on the synchronous path, so recovery-by-replay stays trivial.
///
/// Placement (Session::Builder::cache enforces this order): ABOVE encryption
/// (the cache must hold each plaintext block exactly once -- an
/// EncryptedBackend over a CachingBackend is rejected at health()) and above
/// latency/sharding/remote, so a hit costs no round trip, simulated or real.
/// `capacity_blocks` must be >= 1; 0 is rejected at health().
///
/// Failure semantics: writes are atomic-by-rejection like every other
/// backend -- anything that can fail (eviction write-backs, write-throughs,
/// a write-around frame) is issued before any of the batch's data enters
/// the cache, so a kIo'd write absorbs nothing.  The one boundary is a
/// begun write whose COMPLETION fails after the retry budget is exhausted:
/// its absorbed blocks stay cached (later begun reads already observed
/// them, per FIFO), the error surfaces loudly, and the computation aborts
/// -- same contract as a lost submitted write on the plain AsyncBackend.
/// The destructor's flush is best-effort for DELIVERY only, never for
/// visibility: a failed flush (destructor's or caller's) increments
/// CacheStats::flush_failures and latches the first error, which health()
/// reports from then on -- so dirty data that never reached the store below
/// can't vanish silently even when the only flush was the destructor's.
/// Services that must act on write-back errors call flush() (or
/// Session::flush_storage()) and check the Status before teardown.
class CachingBackend : public StorageBackend {
 public:
  /// Private core: this view owns a fresh CacheCore of `capacity_blocks`.
  CachingBackend(std::unique_ptr<StorageBackend> inner, std::size_t capacity_blocks,
                 CachePolicy policy = CachePolicy::kScanResistant);
  /// Shared core: attach a view to `core` (make_shared_cache).  Residency
  /// and capacity pressure are shared with every other attached view; this
  /// view's inner store, pending split-phase FIFO, and stats stay private.
  CachingBackend(std::unique_ptr<StorageBackend> inner, SharedCacheHandle core);
  ~CachingBackend() override;  // best-effort flush + drop of this view's blocks
  const char* name() const override { return "cache"; }
  Status health() const override {
    if (!init_status_.ok()) return init_status_;
    {
      std::lock_guard<std::mutex> lk(flush_mu_);
      if (!flush_error_.ok()) return flush_error_;
    }
    return inner_->health();
  }

  StorageBackend& inner() { return *inner_; }
  const StorageBackend& inner() const { return *inner_; }
  const StorageBackend* inner_backend() const override { return inner_.get(); }
  std::size_t capacity_blocks() const { return core_->capacity_blocks(); }
  /// Blocks resident across ALL views of the core (== this view's blocks
  /// for a private core).
  std::size_t cached_blocks() const { return core_->cached_blocks(); }
  const CacheCore& core() const { return *core_; }
  /// This view's id within the core (0 for the first/private view).
  std::uint64_t view_id() const { return view_id_; }

  /// Write back every dirty block (coalesced into runs), keeping them
  /// cached-clean, then flush the inner store.  Synchronous: callers must
  /// have completed all begun ops.  A failure is returned AND latched (see
  /// class comment): flush_failures bumps and health() turns non-ok.
  Status flush() override;

  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.absorbed_writes = absorbed_.load(std::memory_order_relaxed);
    s.writebacks = writebacks_.load(std::memory_order_relaxed);
    s.writeback_ops = writeback_ops_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.flush_failures = flush_failures_.load(std::memory_order_relaxed);
    s.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
    return s;
  }

 protected:
  /// Shrink drops cached blocks past the new capacity (dirty included: a
  /// shrunk-away block is gone by contract); surviving entries stay valid.
  Status do_resize(std::uint64_t nblocks) override;
  Status do_read(std::uint64_t block, std::span<Word> out) override;
  Status do_write(std::uint64_t block, std::span<const Word> in) override;
  Status do_read_many(std::span<const std::uint64_t> blocks, std::span<Word> out) override;
  Status do_write_many(std::span<const std::uint64_t> blocks,
                       std::span<const Word> in) override;
  std::size_t do_max_inflight() const override { return inner_->max_inflight(); }
  Status do_begin_read_many(std::span<const std::uint64_t> blocks,
                            std::span<Word> out) override;
  Status do_begin_write_many(std::span<const std::uint64_t> blocks,
                             std::span<const Word> in) override;
  Status do_complete_oldest() override;

 private:
  using Entry = CacheCore::Entry;

  /// One begun split-phase batch.  The BEGIN half never mutates cache
  /// residency (no allocation, no eviction): hits are served/absorbed at
  /// begin, and the remainder forwards as AT MOST ONE inner frame, so a
  /// failed begin leaves nothing to unwind and the AsyncBackend's
  /// drain-and-replay recovery (which re-runs the op through the
  /// synchronous path) stays idempotent.  Residency IS granted at a read's
  /// successful COMPLETION (see do_complete_oldest): the fetched bytes are
  /// in hand, so caching them costs no inner op -- a split-phase re-touch
  /// stream hits exactly like the synchronous path's.
  struct PendingOp {
    bool is_read = false;
    bool has_frame = false;                  // one inner frame to complete
    /// Reads: miss block ids fetched from the inner store.  Writes: the
    /// write-AROUND block ids the in-flight inner frame targets (a later
    /// read completion must not grant those residency: the cached copy
    /// would go stale when the around-frame lands below).
    std::vector<std::uint64_t> miss_ids;
    std::vector<std::size_t> miss_pos;       // read misses' caller-batch positions
    ArenaBuffer staging;                     // miss landing zone ([] = borrowed out)
    Word* out = nullptr;                     // caller read dest base
    // Stats are credited only at a SUCCESSFUL completion: a kIo'd op is
    // replayed through the synchronous path, which counts it then --
    // counting at begin would tally the same blocks twice under retry.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t absorbed = 0;
  };

  // Every helper below assumes the caller holds core_->mu_ -- each public
  // data-path op takes it once, end to end, so views on other threads (a
  // shared core under N sessions) are fully serialized against it and a
  // cross-view write-back can never interleave with the owner's own I/O.

  /// This view's namespaced residency key for `block`.
  std::uint64_t key_of(std::uint64_t block) const {
    return (view_id_ << 48) | block;
  }
  static std::uint64_t block_of(std::uint64_t key) {
    return key & ((std::uint64_t{1} << 48) - 1);
  }
  Word* slot_data(std::size_t slot) {
    return core_->slab_.data() + slot * block_words();
  }
  Entry* find(std::uint64_t block);
  /// Policy-dependent re-reference: kLru fronts the single list; segmented
  /// LRU promotes a probation entry to the protected segment (demoting the
  /// protected LRU back to probation when that segment is full).
  void touch(Entry& e, std::uint64_t key);
  /// Frees one slot by evicting the coldest ELIGIBLE entry -- probation
  /// back-to-front first, then protected -- skipping dirty entries whose
  /// owner view has begun-but-incomplete split-phase ops (writing those
  /// back would corrupt that view's inner FIFO mid-flight).  A dirty
  /// victim is written back FIRST through its OWNER's inner store --
  /// together with the maximal run of consecutive cached dirty neighbors,
  /// coalesced into one batched inner write (the neighbors stay cached,
  /// now clean) -- and the entry is only erased once that write landed, so
  /// a transient write-back failure surfaces as the op's error with no
  /// data-loss window and the device's retry re-runs it from unchanged
  /// state.
  Status evict_one(std::size_t* slot);
  /// Slot for `block` (free or evicted); inserts this view's entry (clean,
  /// probation-front: admission to the protected segment takes a re-touch).
  Result<Entry*> insert(std::uint64_t block);
  /// Writes back the maximal consecutive run of cached dirty blocks around
  /// `key` (same view by construction: keys namespace the id space) in one
  /// coalesced write_many through the owning view's inner store, marking
  /// the run clean.
  Status write_back_run(std::uint64_t key);
  /// flush() minus the failure latching (caller holds core_->mu_).
  Status flush_impl();
  /// True when a still-pending begun write's around-frame targets `block`.
  bool write_around_in_flight(std::uint64_t block) const;
  /// Erases `key`'s entry from its segment list + the index, freeing its
  /// slot into the core's free list.
  void erase_entry(std::uint64_t key);
  /// Detaches this view: every resident entry is dropped (dirty ones were
  /// flushed by the destructor's flush first).
  void drop_view();
  Status do_complete_oldest_locked();

  std::unique_ptr<StorageBackend> inner_;
  SharedCacheHandle core_;
  std::uint64_t view_id_ = 0;
  Status init_status_;
  std::deque<PendingOp> pending_;   // this view's begun ops (guarded by core mu)
  std::vector<Word> wb_stage_;      // write-back / write-around gather scratch
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> absorbed_{0};
  std::atomic<std::uint64_t> writebacks_{0};
  std::atomic<std::uint64_t> writeback_ops_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> flush_failures_{0};
  std::atomic<std::uint64_t> admission_rejects_{0};
  /// First flush error ever observed (latched; see class comment).
  mutable std::mutex flush_mu_;
  Status flush_error_;  // guarded by flush_mu_
};

// ---------------------------------------------------------------------------
// Factory helpers.

/// Per-shard construction: receives (block_words, shard index) so shards that
/// need distinct resources (e.g. file paths) can derive them.
using ShardFactory =
    std::function<std::unique_ptr<StorageBackend>(std::size_t block_words,
                                                  std::size_t shard)>;

/// Stripe over `shards` instances produced by `inner` (null = mem).  An
/// explicit-path file backend must NOT be sharded through this overload (all
/// shards would open the same file); use the ShardFactory overload or
/// Session::Builder, which derives per-shard paths.  `parallel_dispatch` < 0
/// means the hardware-concurrency default; tests pass 1 to force the worker
/// pool on any host.
BackendFactory sharded_backend(BackendFactory inner, std::size_t shards,
                               int parallel_dispatch = -1);
BackendFactory sharded_backend(ShardFactory inner, std::size_t shards,
                               int parallel_dispatch = -1);

/// Wrap the backend produced by `inner` (null = mem) in an AsyncBackend.
BackendFactory async_backend(BackendFactory inner);

/// Wrap the backend produced by `inner` (null = mem) in a FaultyBackend.
/// Compose UNDER sharding (wrap each shard's base) for per-shard failures;
/// Session::Builder::fault_injection does that and derives per-shard seeds.
BackendFactory faulty_backend(BackendFactory inner, FaultProfile profile);

/// Wrap the backend produced by `inner` (null = mem) in a TamperingBackend.
/// Compose INNERMOST -- directly over each shard's base store, UNDER
/// encryption -- so the simulated malicious server mutates ciphertext, and
/// the authentication layer above is what must catch it.
/// Session::Builder::tampering does that and derives per-shard sub-seeds.
BackendFactory tampering_backend(BackendFactory inner, TamperProfile profile);

/// Wrap the backend produced by `inner` (null = mem) in a CachingBackend of
/// `capacity_blocks` blocks (private core; scan-resistant by default, pass
/// CachePolicy::kLru for the v1 single-list baseline).  Compose ABOVE
/// sharding/latency/encryption and UNDER async_backend;
/// Session::Builder::cache does exactly that.
BackendFactory caching_backend(BackendFactory inner, std::size_t capacity_blocks,
                               CachePolicy policy = CachePolicy::kScanResistant);

/// Wrap the backend produced by `inner` (null = mem) in a CachingBackend
/// VIEW attached to `core` (make_shared_cache) -- every factory invocation
/// (one per Session) becomes its own view of the one shared cache.
BackendFactory caching_backend(BackendFactory inner, SharedCacheHandle core);

}  // namespace oem
