// Client: Alice's side of the outsourced-storage protocol.
//
// Owns the (simulated) remote BlockDevice, the encryption state, the private
// cache meter, and the master PRG.  All algorithm I/O flows through
// read_block/write_block (or their batched read_blocks/write_blocks
// counterparts), which (de/en)crypt and are counted + traced by the device --
// exactly the adversary's view in the paper's model.  Which physical storage
// backs the device (RAM, file, latency-modeled remote) is chosen via
// ClientParams::backend and is invisible to both the algorithms and Bob's
// trace.
//
// Parameter naming follows the paper: B = records per block, M = records of
// private cache, N = records in an input, n = ceil(N/B) blocks,
// m = floor(M/B) cache blocks.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "extmem/backend.h"
#include "extmem/cache_meter.h"
#include "extmem/compute_pool.h"
#include "extmem/device.h"
#include "extmem/encryption.h"
#include "extmem/ext_array.h"
#include "extmem/freshness.h"
#include "extmem/record.h"
#include "rng/random.h"
#include "util/math.h"

namespace oem {

struct ClientParams {
  std::size_t block_records = 16;    // B
  std::uint64_t cache_records = 1024;  // M
  std::uint64_t seed = 1;
  bool strict_cache = false;  // strict: throw when a lease exceeds M
  /// Storage backend factory; null means MemBackend (in-RAM simulation).
  BackendFactory backend;
  /// Batch window for the batched I/O helpers, in blocks.  0 = auto
  /// (max(1, m/4), so the in-flight ciphertext staging stays well under M);
  /// 1 degenerates every batched helper to the per-block path (useful for
  /// baseline benchmarks).
  std::uint64_t io_batch_blocks = 0;
  /// Total attempts per backend call before a storage failure surfaces as
  /// StatusCode::kIo (1 = no retry).  See BlockDevice's RetryPolicy: retries
  /// are below the counters and the trace.
  unsigned io_retry_attempts = 1;
  /// In-flight window ring size for run_block_pipeline (extmem/pipeline.h):
  /// 1 = strictly sequential windows, 2 = the classic double buffer
  /// (default), K = up to K-1 windows' reads prefetched ahead of the one
  /// computing.  A public scheduling parameter like B: the submission order
  /// (hence the trace) is a function of (passes, depth), never of the data.
  std::size_t pipeline_depth = 2;
  /// Compute-plane lanes (master + workers) for the ComputePool driving
  /// block crypto and chunk-parallel pipeline compute.  0 and 1 both mean
  /// serial/inline.  Like depth, a public scheduling parameter: nonces are
  /// drawn and trace/stat events recorded on the master in program order, so
  /// the device trace (and every ciphertext) is byte-identical at any lane
  /// count -- only wall time changes.
  std::size_t compute_threads = 1;
  /// Modeled per-block compute cost (ns) added in the pipeline compute phase
  /// -- slept on whichever lane computes the block, so multicore scaling
  /// claims are core-count independent (the bench_server_load precedent).
  /// 0 = off (the default; real workloads pay only their real compute).
  std::uint64_t compute_model_ns_per_block = 0;
  /// Durable freshness state file (extmem/freshness.h).  Empty = the PR 8
  /// behavior: the anti-rollback table lives and dies with the process.
  /// Non-empty: persist_state() (and the destructor, best-effort) seal the
  /// version table + nonce counter + store namespace here, and a restarted
  /// client restores them via `initial_state` so rollback staged while it
  /// was down is still detected.
  std::string state_path;
  /// Loaded state to restore (normally filled by hydrate_state below).
  std::shared_ptr<const FreshnessState> initial_state;
  /// Remote store-id namespace this session addresses (0 = none/mem).  Kept
  /// here so it rides into the persisted state: a restarted remote session
  /// must reach the SAME server stores its predecessor wrote.
  std::uint64_t store_namespace = 0;
};

/// Load `p->state_path` (if set and present) into `p->initial_state` and
/// restore the persisted store namespace.  Missing file (first boot) is a
/// no-op; an existing-but-corrupt file returns kIntegrity and the caller
/// must fail closed, not bootstrap over evidence of tampering.  Shared by
/// Session::Builder::build() and bench_common.
Status hydrate_state(ClientParams* p);

class Client {
 public:
  explicit Client(const ClientParams& params);
  /// Best-effort persist of the freshness state when a state_path is
  /// configured (errors are swallowed: destructors cannot report; callers
  /// that need the error call persist_state() explicitly first).
  ~Client();

  std::size_t B() const { return B_; }
  std::uint64_t M() const { return M_; }
  /// Cache capacity in blocks, m = floor(M/B).
  std::uint64_t m() const { return M_ / B_; }
  /// Effective batch window (blocks) used by the batched I/O helpers.
  std::uint64_t io_batch_blocks() const { return io_batch_; }

  BlockDevice& device() { return *dev_; }
  const BlockDevice& device() const { return *dev_; }
  CacheMeter& cache() { return meter_; }
  rng::Xoshiro& rng() { return rng_; }
  /// The compute plane's worker pool (threads() == 1 means serial/inline).
  ComputePool& compute_pool() { return *pool_; }
  /// Modeled per-block compute cost for the pipeline (0 = off).
  std::uint64_t compute_model_ns_per_block() const { return compute_model_ns_; }

  enum class Init { kUninit, kEmpty };

  /// Allocate an array of `num_records` records (ceil(num_records/B) blocks).
  /// Init::kEmpty writes all-empty blocks through the normal counted path
  /// (the paper's algorithms must pay to create their scratch arrays);
  /// Init::kUninit is for arrays the algorithm fully overwrites before
  /// reading.
  ExtArray alloc(std::uint64_t num_records, Init init = Init::kEmpty);
  /// Allocate by block count directly.
  ExtArray alloc_blocks(std::uint64_t num_blocks, Init init = Init::kEmpty);
  /// Stack-discipline release of a scratch array.
  void release(const ExtArray& a);

  // --- counted, traced I/O (the adversary sees these) ---

  void read_block(const ExtArray& a, std::uint64_t i, BlockBuf& out);
  void write_block(const ExtArray& a, std::uint64_t i, const BlockBuf& in);

  /// Batched block-range I/O: blocks [first, first+count) of `a` to/from a
  /// contiguous record buffer of count*B records.  Trace events and block
  /// counters are identical to the per-block loop; the device coalesces the
  /// transfer into one backend call per batch window (io_batch_blocks).
  void read_blocks(const ExtArray& a, std::uint64_t first, std::uint64_t count,
                   std::span<Record> out);
  void write_blocks(const ExtArray& a, std::uint64_t first, std::uint64_t count,
                    std::span<const Record> in);

  /// Re-encrypt block i in place without changing its contents.  To Bob this
  /// is indistinguishable from a content-changing write (1 read + 1 write).
  void touch_block(const ExtArray& a, std::uint64_t i);

  // --- ciphertext staging for the I/O-engine pipeline (extmem/pipeline.h) ---

  /// Decrypt a wire buffer of `dev_ids.size()` blocks (gather order, as
  /// returned by a completed device read) into records.  Each block's
  /// keystream is independent, so the window is chunked across the compute
  /// pool's lanes; the output bytes are identical at any lane count.
  void decrypt_blocks(std::span<const std::uint64_t> dev_ids,
                      std::span<const Word> wire, std::span<Record> out);
  /// Serialize + encrypt records into a wire buffer.  Nonces are drawn in
  /// scatter order on the calling (master) thread BEFORE the pool fans the
  /// keystream work out, so every ciphertext is deterministic regardless of
  /// lane count or how the transfer is dispatched.
  void encrypt_blocks(std::span<const std::uint64_t> dev_ids,
                      std::span<const Record> in, std::span<Word> wire);

  /// Read/write a record range that may straddle block boundaries.  Writes
  /// that partially cover a block do read-modify-write (counted).  The access
  /// pattern depends only on (start, count) -- never on data.  Full blocks in
  /// the middle of the range go through the batched path.
  void read_records(const ExtArray& a, std::uint64_t start, std::span<Record> out);
  void write_records(const ExtArray& a, std::uint64_t start, std::span<const Record> in);

  // --- uncounted debug/setup access (the omniscient test harness) ---

  /// Read the whole array without touching I/O counters, the trace, or the
  /// cache meter.  For test verification and workload setup only.
  std::vector<Record> peek(const ExtArray& a) const;
  /// Write records into the array without counting (test setup only).
  void poke(const ExtArray& a, std::span<const Record> records);

  const IoStats& stats() const { return dev_->stats(); }
  void reset_stats() { dev_->reset_stats(); }

  /// Seal the current freshness state (version table, nonce counter, store
  /// namespace, bumped generation) to ClientParams::state_path, atomically.
  /// kInvalidArgument when no state_path was configured.
  Status persist_state();

 private:
  void serialize(std::span<const Record> in, std::span<Word> out_words) const;
  void deserialize(std::span<const Word> in_words, std::span<Record> out) const;

  /// Serialize + encrypt + authenticate one block into `w` (block_words()
  /// wide, layout [nonce][mac][ciphertext]).  Pure given (nonce, version), so
  /// compute-pool lanes can seal in parallel after the master drew nonces and
  /// bumped versions in scatter order.
  void seal_words(std::uint64_t dev_blk, Word nonce, std::uint64_t version,
                  std::span<const Record> in, std::span<Word> w) const;
  /// Verify + decrypt one stored block.  Returns false when authentication
  /// fails (tampered ciphertext/header, swapped block, or rollback to a
  /// stale version); `out` is zeroed in that case so tampered plaintext can
  /// never leak to a caller that ignores the verdict.
  bool open_words(std::uint64_t dev_blk, std::span<const Word> w,
                  std::span<Record> out) const;
  /// Throw IntegrityError for device block `dev_blk` (fail closed: the
  /// Session facade maps it to StatusCode::kIntegrity, and RetryPolicy never
  /// sees it).
  [[noreturn]] void integrity_fail(std::uint64_t dev_blk) const;

  std::size_t B_;
  std::uint64_t M_;
  std::uint64_t io_batch_;
  std::uint64_t compute_model_ns_;
  std::string state_path_;
  std::uint64_t seed_;             // keys the state-file MAC (domain-separated)
  std::uint64_t store_namespace_;  // persisted so a restart reuses it
  std::uint64_t state_generation_ = 0;  // last loaded/saved generation
  std::unique_ptr<BlockDevice> dev_;
  std::unique_ptr<ComputePool> pool_;
  Encryptor enc_;
  CacheMeter meter_;
  rng::Xoshiro rng_;
  // Reused scratch to avoid per-I/O allocation; sized block_words().
  mutable std::vector<Word> wire_;
  // Staging for batched I/O: ciphertext words and block ids for one window.
  std::vector<Word> wire_many_;
  std::vector<std::uint64_t> ids_;
  // Per-block versions drawn on the master for one encrypt_blocks window
  // (scatter order, before the lanes fan out -- like nonces).
  std::vector<std::uint64_t> versions_scratch_;
  // Per-block verification verdicts for one decrypt_blocks window: lanes
  // write their slot, the master reduces after the fan-in and fails closed.
  std::vector<std::uint8_t> verdicts_;
};

}  // namespace oem
