// Simulation of authenticated block encryption.
//
// The paper assumes Alice encrypts every block "using a semantically secure
// encryption scheme such that re-encryption of the same value is
// indistinguishable from an encryption of a different value".  We simulate
// this with a keyed keystream (SplitMix64 over key ⊕ block ⊕ nonce ⊕ counter)
// and a fresh nonce on every write, so that:
//   * the device only ever holds ciphertext,
//   * rewriting an unchanged block produces a fresh, unrelated ciphertext.
//
// Since PR 8 the scheme is *authenticated* too: mac() produces a per-block
// tag bound to (ciphertext, device block index, nonce, version counter), the
// AEAD shape — the version binding is what detects rollback/replay, because
// the expected version lives client-side, never on the server.  Nonces are
// derived from a monotonic per-Encryptor counter (mixed, so they still look
// random on the wire) rather than drawn at random: a bijective counter makes
// nonce reuse impossible within a store's lifetime, where a bare random draw
// silently repeats a keystream at the birthday bound.
//
// This is NOT a real cipher or a real MAC; it exists so the simulation has
// genuine "Bob cannot read contents" and "Bob cannot forge contents" code
// paths (DESIGN.md substitution #2).  All obliviousness guarantees in this
// library are about access patterns only.
#pragma once

#include <cstdint>
#include <span>

#include "extmem/record.h"

namespace oem {

class Encryptor {
 public:
  Encryptor(Word key, std::uint64_t nonce_seed);

  /// Draw a fresh nonce for a write.  Counter-derived: never repeats within
  /// this Encryptor's lifetime, and never returns 0 (the never-written
  /// sentinel in stored-block headers).
  Word fresh_nonce();

  /// XOR `payload` with the keystream for (block_index, nonce); involutive,
  /// so the same call decrypts.
  void apply_keystream(std::uint64_t block_index, Word nonce,
                       std::span<Word> payload) const;

  /// Authentication tag over the *ciphertext* payload, bound to the device
  /// block index (detects block swaps), the nonce (binds tag to this exact
  /// sealing), and the client-side version counter (detects rollback to a
  /// stale-but-once-valid block).
  Word mac(std::uint64_t block_index, Word nonce, std::uint64_t version,
           std::span<const Word> ciphertext) const;

  /// Nonce-counter persistence hooks for the durable freshness state: a
  /// restarted client restores the counter so counter-derived nonces keep
  /// their never-repeat guarantee across process lifetimes.
  std::uint64_t nonce_counter() const { return nonce_counter_; }
  void set_nonce_counter(std::uint64_t c) { nonce_counter_ = c; }

 private:
  Word key_;
  Word mac_key_;  // domain-separated from the keystream key
  std::uint64_t nonce_base_;
  std::uint64_t nonce_counter_ = 0;
};

}  // namespace oem
