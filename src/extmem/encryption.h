// Simulation of semantically secure block encryption.
//
// The paper assumes Alice encrypts every block "using a semantically secure
// encryption scheme such that re-encryption of the same value is
// indistinguishable from an encryption of a different value".  We simulate
// this with a keyed keystream (SplitMix64 over key ⊕ block ⊕ nonce ⊕ counter)
// and a fresh random nonce on every write, so that:
//   * the device only ever holds ciphertext,
//   * rewriting an unchanged block produces a fresh, unrelated ciphertext.
//
// This is NOT a real cipher; it exists so the simulation has a genuine
// "Bob cannot read contents" code path (DESIGN.md substitution #2).  All
// obliviousness guarantees in this library are about access patterns only.
#pragma once

#include <cstdint>
#include <span>

#include "extmem/record.h"

namespace oem {

class Encryptor {
 public:
  Encryptor(Word key, std::uint64_t nonce_seed)
      : key_(key), nonce_state_(nonce_seed ^ 0x41c64e6d12345ULL) {}

  /// Draw a fresh nonce for a write.
  Word fresh_nonce();

  /// XOR `payload` with the keystream for (block_index, nonce); involutive,
  /// so the same call decrypts.
  void apply_keystream(std::uint64_t block_index, Word nonce,
                       std::span<Word> payload) const;

 private:
  Word key_;
  std::uint64_t nonce_state_;
};

}  // namespace oem
