#include "extmem/arena.h"

#include <sys/mman.h>

#include <algorithm>
#include <cstdlib>
#include <new>

namespace oem {
namespace {

constexpr std::size_t kHugeThreshold = 2u << 20;  // 2 MiB

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

}  // namespace

BufferArena::BufferArena(std::size_t alignment) : alignment_(alignment) {}

BufferArena::~BufferArena() { trim(); }

ArenaStats BufferArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferArena::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Buf& b : free_) destroy(b);
  free_.clear();
  stats_.pooled = 0;
}

void BufferArena::destroy(Buf& b) {
  if (b.p == nullptr) return;
  if (b.huge) {
    ::munmap(b.p, b.cap);
  } else {
    std::free(b.p);
  }
  b = Buf{};
}

BufferArena::Buf BufferArena::acquire(std::size_t bytes) {
  bytes = std::max<std::size_t>(round_up(bytes, alignment_), alignment_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Smallest pooled buffer that fits, so one oversized window does not
    // pin a giant buffer under every small request forever.
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].cap < bytes) continue;
      if (best == free_.size() || free_[i].cap < free_[best].cap) best = i;
    }
    if (best != free_.size()) {
      Buf b = free_[best];
      free_[best] = free_.back();
      free_.pop_back();
      ++stats_.reuses;
      ++stats_.outstanding;
      --stats_.pooled;
      return b;
    }
  }
  Buf b;
  b.cap = bytes;
  if (bytes >= kHugeThreshold) {
    // Huge-page attempt: round to the 2 MiB granule; fall through to the
    // aligned heap path when the kernel has no pages reserved.
    const std::size_t huge_cap = round_up(bytes, kHugeThreshold);
    void* p = ::mmap(nullptr, huge_cap, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (p != MAP_FAILED) {
      b.p = p;
      b.cap = huge_cap;
      b.huge = true;
    }
  }
  if (b.p == nullptr) {
    if (::posix_memalign(&b.p, alignment_, bytes) != 0) b.p = nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (b.p != nullptr) {
    ++stats_.allocations;
    stats_.bytes_allocated += b.cap;
    if (b.huge) ++stats_.hugepage_buffers;
    ++stats_.outstanding;
  }
  return b;
}

void BufferArena::release(Buf b) {
  if (b.p == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(b);
  --stats_.outstanding;
  ++stats_.pooled;
}

BufferArena& global_staging_arena() {
  static BufferArena* arena = new BufferArena();  // leaked: outlives statics
  return *arena;
}

void ArenaBuffer::resize(std::size_t words) {
  const std::size_t bytes = words * sizeof(Word);
  if (bytes > buf_.cap) {
    BufferArena& a = arena();
    a.release(buf_);
    buf_ = a.acquire(bytes);
    if (buf_.p == nullptr) {
      size_ = 0;
      throw std::bad_alloc();
    }
  }
  size_ = words;
}

void ArenaBuffer::reset() {
  if (buf_.p != nullptr) arena().release(buf_);
  buf_ = BufferArena::Buf{};
  size_ = 0;
}

}  // namespace oem
