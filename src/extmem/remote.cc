#include "extmem/remote.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "rng/random.h"

namespace oem {

using wire::get_u64;
using wire::put_u64;

RemoteBackend::RemoteBackend(std::size_t block_words, RemoteBackendOptions opts)
    : StorageBackend(block_words), opts_(std::move(opts)) {
  if (opts_.max_inflight < 1) opts_.max_inflight = 1;
  if (opts_.backoff_max_us < opts_.backoff_initial_us)
    opts_.backoff_max_us = opts_.backoff_initial_us;
}

RemoteBackend::~RemoteBackend() {
  if (fd_ >= 0) ::close(fd_);
}

Status RemoteBackend::health() const { return ensure_connected(); }

void RemoteBackend::kill_connection(const char* why) const {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  last_error_ = std::string("remote: connection to ") + opts_.host + ":" +
                std::to_string(opts_.port) + " lost (" + why + ")";
  for (Pending& p : pending_) p.dead = true;
}

void RemoteBackend::note_connect_failure() const {
  if (opts_.backoff_initial_us == 0) return;
  // Exponential ramp, capped: 2^(k-1) * initial up to max.  The shift count
  // is bounded so a long outage cannot overflow into a zero delay.
  const unsigned k = connect_failures_ < 63 ? connect_failures_ : 63;
  std::uint64_t delay_us = opts_.backoff_max_us >> k < opts_.backoff_initial_us
                               ? opts_.backoff_max_us
                               : opts_.backoff_initial_us << k;
  // Deterministic jitter in [delay/2, delay]: derived from the store id and
  // the failure streak, so K shard connections to one dead server spread out
  // instead of re-stampeding it in lockstep -- and a test can replay it.
  const std::uint64_t half = delay_us / 2;
  if (half > 0)
    delay_us = half + rng::mix64(opts_.store_id * 0x9e3779b97f4a7c15ULL +
                                 connect_failures_) %
                          (half + 1);
  ++connect_failures_;
  next_connect_at_ =
      std::chrono::steady_clock::now() + std::chrono::microseconds(delay_us);
}

Status RemoteBackend::try_connect() const {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(opts_.port);
  if (::getaddrinfo(opts_.host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr)
    return Status::Io("remote: cannot resolve " + opts_.host);
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd >= 0 && ::connect(fd, res->ai_addr, res->ai_addrlen) != 0) {
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0)
    return Status::Io("remote: cannot connect to " + opts_.host + ":" + port_str +
                      ": " + std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // HELLO handshake: declare the protocol version, namespace and geometry;
  // the ok response carries the server's protocol version and the store's
  // current num_blocks.  Version policing is bidirectional -- the server
  // rejects a version it does not speak, and we reject a server whose
  // declared version differs from ours (kInvalidArgument: a deployment bug,
  // not a transient transport failure, so retries don't mask it).  Since v3
  // the handshake is authenticated: both directions carry a control_mac tag
  // bound to a fresh token, so an active attacker can neither spoof version
  // negotiation nor replay a stale handshake (kIntegrity, fail closed).
  const std::uint64_t token =
      rng::mix64(opts_.store_id ^ rng::mix64(++hello_token_));
  std::vector<std::uint8_t> frame;
  put_u64(frame, static_cast<std::uint64_t>(wire::Op::kHello));
  put_u64(frame, wire::kProtocolVersion);
  put_u64(frame, opts_.store_id);
  put_u64(frame, block_words());
  put_u64(frame, token);
  put_u64(frame, wire::control_mac(opts_.auth_key, wire::kMacHelloReq,
                                   {wire::kProtocolVersion, opts_.store_id,
                                    block_words(), token}));
  std::vector<std::uint8_t> body;
  const wire::IoVerdict sent = wire::write_frame_deadline(fd, frame, opts_.io_deadline_ms);
  const wire::IoVerdict got =
      sent == wire::IoVerdict::kOk
          ? wire::read_frame_deadline(fd, &body, opts_.io_deadline_ms)
          : sent;
  if (got != wire::IoVerdict::kOk) {
    ::close(fd);
    const std::string what =
        "remote: HELLO round trip to " + opts_.host + ":" + port_str +
        (got == wire::IoVerdict::kTimeout ? " timed out" : " failed");
    return got == wire::IoVerdict::kTimeout ? Status::Timeout(what) : Status::Io(what);
  }
  Status st = wire::parse_status(body);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  // Version is policed before the v3 frame shape: an older server's
  // ok-response is legitimately shorter, and the actionable diagnosis is
  // the version mismatch, not a generic short frame.
  if (body.size() < 2 * sizeof(std::uint64_t)) {
    ::close(fd);
    return Status::Io("remote: short HELLO response from " + opts_.host + ":" +
                      port_str);
  }
  const std::uint64_t server_version = get_u64(body.data() + 8);
  if (server_version != wire::kProtocolVersion) {
    ::close(fd);
    return Status::InvalidArgument(
        "remote: server " + opts_.host + ":" + port_str + " speaks protocol version " +
        std::to_string(server_version) + ", this client speaks " +
        std::to_string(wire::kProtocolVersion));
  }
  if (body.size() < 4 * sizeof(std::uint64_t)) {
    ::close(fd);
    return Status::Io("remote: short HELLO response from " + opts_.host + ":" +
                      port_str);
  }
  const std::uint64_t server_blocks = get_u64(body.data() + 16);
  const std::uint64_t server_tag = get_u64(body.data() + 24);
  if (server_tag != wire::control_mac(opts_.auth_key, wire::kMacHelloResp,
                                      {token, server_version, server_blocks})) {
    ::close(fd);
    return Status::Integrity("remote: HELLO response from " + opts_.host + ":" +
                             port_str +
                             " failed authentication (wrong wire auth key, or an "
                             "active attacker on the connection)");
  }
  if (was_connected_) reconnects_.fetch_add(1, std::memory_order_relaxed);
  was_connected_ = true;
  fd_ = fd;
  return Status::Ok();
}

Status RemoteBackend::ensure_connected() const {
  if (fd_ >= 0) return Status::Ok();
  if (!pending_.empty())
    return Status::Io(last_error_ + "; responses still owed on the dead connection");
  // Wait out the backoff owed by earlier failed attempts.  The sleep happens
  // here -- inside the attempt -- so a RetryPolicy loop above us spends its
  // bounded attempts at the backoff cadence instead of spinning them away
  // against a down server in microseconds.
  if (connect_failures_ > 0) {
    const auto now = std::chrono::steady_clock::now();
    if (now < next_connect_at_) {
      backoff_waits_.fetch_add(1, std::memory_order_relaxed);
      backoff_waited_us_.fetch_add(
          std::chrono::duration_cast<std::chrono::microseconds>(next_connect_at_ - now)
              .count(),
          std::memory_order_relaxed);
      std::this_thread::sleep_until(next_connect_at_);
    }
  }
  Status st = try_connect();
  if (st.ok()) {
    connect_failures_ = 0;
  } else {
    note_connect_failure();
  }
  return st;
}

Status RemoteBackend::send_frame(wire::Op op, std::span<const std::uint64_t> head,
                                 std::span<const Word> payload) const {
  // An oversized batch is a caller error, not a transport failure: refuse it
  // here (connection intact) instead of letting the server drop the
  // connection on an over-cap length prefix and burning the retry budget.
  const std::uint64_t bytes =
      (1 + head.size()) * sizeof(std::uint64_t) + payload.size() * sizeof(Word);
  if (bytes > wire::kMaxFrameBytes)
    return Status::InvalidArgument(
        "remote: batch of " + std::to_string(bytes) +
        " bytes exceeds the frame cap; lower io_batch_blocks");
  std::vector<std::uint8_t> frame;
  frame.reserve((2 + head.size()) * sizeof(std::uint64_t) + payload.size() * sizeof(Word));
  put_u64(frame, static_cast<std::uint64_t>(op));
  for (std::uint64_t h : head) put_u64(frame, h);
  if (!payload.empty()) {
    const std::size_t at = frame.size();
    frame.resize(at + payload.size() * sizeof(Word));
    std::memcpy(frame.data() + at, payload.data(), payload.size() * sizeof(Word));
  }
  switch (wire::write_frame_deadline(fd_, frame, opts_.io_deadline_ms)) {
    case wire::IoVerdict::kOk:
      return Status::Ok();
    case wire::IoVerdict::kTimeout:
      kill_connection("send deadline expired");
      return Status::Timeout(last_error_);
    case wire::IoVerdict::kClosed:
    default:
      kill_connection("send failed");
      return Status::Io(last_error_);
  }
}

Status RemoteBackend::recv_response(std::span<Word> payload_dest) const {
  std::vector<std::uint8_t> body;
  switch (wire::read_frame_deadline(fd_, &body, opts_.io_deadline_ms)) {
    case wire::IoVerdict::kOk:
      break;
    case wire::IoVerdict::kTimeout:
      kill_connection("response deadline expired");
      return Status::Timeout(last_error_);
    case wire::IoVerdict::kClosed:
    default:
      kill_connection("response lost");
      return Status::Io(last_error_);
  }
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  Status st = wire::parse_status(body);
  if (!st.ok()) return st;
  const std::size_t have = body.size() - sizeof(std::uint64_t);
  if (have != payload_dest.size() * sizeof(Word)) {
    kill_connection("payload size mismatch");
    return Status::Io(last_error_);
  }
  if (!payload_dest.empty())
    std::memcpy(payload_dest.data(), body.data() + sizeof(std::uint64_t), have);
  return Status::Ok();
}

void RemoteBackend::drain_dead() {
  // Pipelined users fail dead ops out one by one via complete_oldest; a
  // synchronous op arriving with leftovers (only possible when a caller
  // abandoned the split API mid-flight) forfeits them here so the
  // connection can be rebuilt.
  if (fd_ < 0) pending_.clear();
}

Status RemoteBackend::rpc(wire::Op op, std::span<const std::uint64_t> head,
                          std::span<const Word> payload, std::span<Word> response) {
  drain_dead();
  OEM_RETURN_IF_ERROR(ensure_connected());
  OEM_RETURN_IF_ERROR(send_frame(op, head, payload));
  return recv_response(response);
}

Status RemoteBackend::do_resize(std::uint64_t nblocks) {
  const std::uint64_t head[1] = {nblocks};
  return rpc(wire::Op::kResize, head, {}, {});
}

Status RemoteBackend::stat(std::uint64_t* num_blocks, std::uint64_t* block_words_out) {
  Word out[2] = {0, 0};
  OEM_RETURN_IF_ERROR(rpc(wire::Op::kStat, {}, {}, out));
  if (num_blocks) *num_blocks = out[0];
  if (block_words_out) *block_words_out = out[1];
  return Status::Ok();
}

Status RemoteBackend::ping() {
  const std::uint64_t token = ++ping_token_;
  const std::uint64_t head[2] = {
      token, wire::control_mac(opts_.auth_key, wire::kMacPingReq, {token})};
  Word echo[2] = {0, 0};
  OEM_RETURN_IF_ERROR(rpc(wire::Op::kPing, head, {}, echo));
  if (echo[0] != token) {
    kill_connection("PING echo mismatch");
    return Status::Io(last_error_);
  }
  if (echo[1] != wire::control_mac(opts_.auth_key, wire::kMacPingResp, {token})) {
    kill_connection("PING response failed authentication");
    return Status::Integrity(last_error_);
  }
  return Status::Ok();
}

Status RemoteBackend::do_read(std::uint64_t block, std::span<Word> out) {
  const std::uint64_t ids[1] = {block};
  return do_read_many(std::span<const std::uint64_t>(ids, 1), out);
}

Status RemoteBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  const std::uint64_t ids[1] = {block};
  return do_write_many(std::span<const std::uint64_t>(ids, 1), in);
}

Status RemoteBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                   std::span<Word> out) {
  drain_dead();
  OEM_RETURN_IF_ERROR(do_begin_read_many(blocks, out));
  return do_complete_oldest();
}

Status RemoteBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                    std::span<const Word> in) {
  drain_dead();
  OEM_RETURN_IF_ERROR(do_begin_write_many(blocks, in));
  return do_complete_oldest();
}

Status RemoteBackend::do_begin_read_many(std::span<const std::uint64_t> blocks,
                                         std::span<Word> out) {
  OEM_RETURN_IF_ERROR(ensure_connected());
  std::vector<std::uint64_t> head;
  head.reserve(1 + blocks.size());
  head.push_back(blocks.size());
  head.insert(head.end(), blocks.begin(), blocks.end());
  OEM_RETURN_IF_ERROR(send_frame(wire::Op::kReadMany, head, {}));
  pending_.push_back({/*is_write=*/false, /*dead=*/false, out.data(), out.size()});
  return Status::Ok();
}

Status RemoteBackend::do_begin_write_many(std::span<const std::uint64_t> blocks,
                                          std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(ensure_connected());
  std::vector<std::uint64_t> head;
  head.reserve(1 + blocks.size());
  head.push_back(blocks.size());
  head.insert(head.end(), blocks.begin(), blocks.end());
  OEM_RETURN_IF_ERROR(send_frame(wire::Op::kWriteMany, head, in));
  pending_.push_back({/*is_write=*/true, /*dead=*/false, nullptr, 0});
  return Status::Ok();
}

Status RemoteBackend::do_complete_oldest() {
  if (pending_.empty()) return Status::Ok();
  Pending p = pending_.front();
  pending_.pop_front();
  if (p.dead) return Status::Io(last_error_);
  return recv_response(std::span<Word>(p.dest, p.dest_words));
}

// ---------------------------------------------------------------------------
// Factory.

BackendFactory remote_backend(RemoteBackendOptions opts) {
  return [opts](std::size_t block_words) {
    return std::make_unique<RemoteBackend>(block_words, opts);
  };
}

}  // namespace oem
