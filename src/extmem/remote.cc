#include "extmem/remote.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <thread>
#include <utility>

namespace oem {

namespace {

// Frames carry u64 fields and Word payloads in host byte order: both ends of
// the loopback socket live on one host (the paper's Bob is an abstraction, not
// a portability boundary).  A cross-machine deployment would pin
// little-endian here.

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  const std::size_t at = buf.size();
  buf.resize(at + sizeof(v));
  std::memcpy(buf.data() + at, &v, sizeof(v));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Full-buffer I/O with EINTR handling; false on EOF/error.  Sends use
/// MSG_NOSIGNAL so a peer that vanished yields an error, not SIGPIPE.
bool read_full(int fd, void* dst, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(dst);
  while (len > 0) {
    const ssize_t got = ::recv(fd, p, len, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    p += got;
    len -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_full(int fd, const void* src, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(src);
  while (len > 0) {
    const ssize_t put = ::send(fd, p, len, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    len -= static_cast<std::size_t>(put);
  }
  return true;
}

/// Frame length prefix: the number of bytes that follow it.
bool read_frame(int fd, std::vector<std::uint8_t>* body) {
  std::uint64_t len = 0;
  if (!read_full(fd, &len, sizeof(len))) return false;
  if (len < sizeof(std::uint64_t) || len > wire::kMaxFrameBytes) return false;
  body->resize(static_cast<std::size_t>(len));
  return read_full(fd, body->data(), body->size());
}

bool write_frame(int fd, const std::vector<std::uint8_t>& body) {
  const std::uint64_t len = body.size();
  return write_full(fd, &len, sizeof(len)) && write_full(fd, body.data(), body.size());
}

/// Response body: status code word, then the error message (non-ok) or the
/// op-specific payload (ok).
std::vector<std::uint8_t> make_response(const Status& st) {
  std::vector<std::uint8_t> r;
  put_u64(r, static_cast<std::uint64_t>(st.code()));
  if (!st.ok()) {
    const std::string& m = st.message();
    r.insert(r.end(), m.begin(), m.end());
  }
  return r;
}

Status parse_status(const std::vector<std::uint8_t>& body) {
  if (body.size() < sizeof(std::uint64_t))
    return Status::Io("remote: malformed response frame");
  const auto code = static_cast<StatusCode>(get_u64(body.data()));
  if (code == StatusCode::kOk) return Status::Ok();
  std::string msg(reinterpret_cast<const char*>(body.data()) + sizeof(std::uint64_t),
                  body.size() - sizeof(std::uint64_t));
  return Status(code, "remote: " + msg);
}

}  // namespace

// ---------------------------------------------------------------------------
// RemoteServer.

RemoteServer::RemoteServer(RemoteServerOptions opts) : opts_(std::move(opts)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    init_status_ = Status::Io(std::string("remote server socket: ") + std::strerror(errno));
    return;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    init_status_ = Status::InvalidArgument("remote server host '" + opts_.host +
                                           "' is not an IPv4 address");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    init_status_ = Status::Io("remote server bind/listen on " + opts_.host + ":" +
                              std::to_string(opts_.port) + ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

RemoteServer::~RemoteServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    ::close(listen_fd_);
  }
  drop_connections();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns)
    if (c->th.joinable()) c->th.join();
}

void RemoteServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_relaxed)) return;  // shut down
      // Transient accept failures (an aborted handshake, a brief fd or
      // buffer shortage during a reconnect storm) must not retire the
      // listener for good -- back off briefly and keep serving.
      const bool transient = errno == EINTR || errno == ECONNABORTED ||
                             errno == EMFILE || errno == ENFILE ||
                             errno == ENOBUFS || errno == ENOMEM ||
                             errno == EAGAIN || errno == EWOULDBLOCK;
      if (transient) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      return;  // listening socket is genuinely gone
    }
    if (stop_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    std::lock_guard<std::mutex> lk(mu_);
    // Reap finished connections here, so a long-lived server under
    // reconnect churn holds O(live connections) threads, not O(ever
    // accepted); the joins are instantaneous (done was already raised).
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        (*it)->th.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    conns_.push_back(std::move(conn));
    raw->th = std::thread([this, raw] { serve(raw); });
  }
}

void RemoteServer::drop_connections() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& c : conns_)
    if (!c->done.load(std::memory_order_acquire)) ::shutdown(c->fd, SHUT_RDWR);
}

Status RemoteServer::peek_store(std::uint64_t store_id, std::uint64_t block,
                                std::vector<Word>* out) {
  Store* store = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = stores_.find(store_id);
    if (it == stores_.end())
      return Status::InvalidArgument("peek_store: unknown store " +
                                     std::to_string(store_id));
    store = it->second.get();
  }
  std::lock_guard<std::mutex> lk(store->mu);
  out->assign(store->backend->block_words(), 0);
  return store->backend->read(block, *out);
}

Result<RemoteServer::Store*> RemoteServer::bind_store(std::uint64_t store_id,
                                                      std::uint64_t block_words) {
  // A block must fit many times over into one frame, or no batched op could
  // ever be served; the bound also keeps a hostile HELLO from sizing
  // staging/stores by 2^60-word blocks.
  if (block_words < 1 || block_words > wire::kMaxFrameBytes / sizeof(Word) / 64)
    return Status::InvalidArgument("HELLO: block_words " +
                                   std::to_string(block_words) + " out of range");
  std::lock_guard<std::mutex> lk(mu_);
  auto it = stores_.find(store_id);
  if (it != stores_.end()) {
    if (it->second->backend->block_words() != block_words)
      return Status::InvalidArgument(
          "HELLO: store " + std::to_string(store_id) + " already serves block_words=" +
          std::to_string(it->second->backend->block_words()) + ", client asked for " +
          std::to_string(block_words));
    return it->second.get();
  }
  auto store = std::make_unique<Store>();
  store->backend = opts_.store_factory
                       ? opts_.store_factory(static_cast<std::size_t>(block_words))
                       : std::make_unique<MemBackend>(static_cast<std::size_t>(block_words));
  Status health = store->backend->health();
  if (!health.ok()) return health;
  Store* raw = store.get();
  stores_.emplace(store_id, std::move(store));
  return raw;
}

void RemoteServer::serve(Conn* conn) {
  const int fd = conn->fd;
  Store* store = nullptr;  // bound by HELLO
  std::vector<std::uint8_t> body;
  std::vector<std::uint64_t> ids;
  std::vector<Word> words;

  // Delayed-response plumbing (see RemoteServerOptions::response_delay_ns):
  // the reader thread keeps consuming request frames while finished
  // responses wait out their propagation delay in FIFO order here.
  const std::uint64_t delay_ns = opts_.response_delay_ns;
  std::unique_ptr<DelayQueue> dq;
  std::thread sender;
  if (delay_ns > 0) {
    dq = std::make_unique<DelayQueue>();
    sender = std::thread([fd, q = dq.get()] {
      for (;;) {
        std::unique_lock<std::mutex> lk(q->mu);
        q->cv.wait(lk, [&] { return !q->q.empty() || q->closed; });
        if (q->q.empty()) return;
        auto due = q->q.front().first;
        auto frame = std::move(q->q.front().second);
        q->q.pop_front();
        lk.unlock();
        std::this_thread::sleep_until(due);
        if (!write_frame(fd, frame)) return;  // peer gone; reader will notice
      }
    });
  }
  auto respond = [&](std::vector<std::uint8_t> frame) {
    if (dq) {
      const auto due = std::chrono::steady_clock::now() + std::chrono::nanoseconds(delay_ns);
      {
        std::lock_guard<std::mutex> lk(dq->mu);
        dq->q.emplace_back(due, std::move(frame));
      }
      dq->cv.notify_one();
      return true;
    }
    return write_frame(fd, frame);
  };

  while (read_frame(fd, &body)) {
    frames_.fetch_add(1, std::memory_order_relaxed);
    const std::uint8_t* p = body.data();
    const std::size_t n = body.size();
    const auto op = static_cast<wire::Op>(get_u64(p));
    std::vector<std::uint8_t> resp;
    auto fields = [&](std::size_t k) { return n >= (k + 1) * sizeof(std::uint64_t); };

    if (op == wire::Op::kHello) {
      if (!fields(3)) break;  // malformed: drop the connection
      const std::uint64_t version = get_u64(p + 8);
      const std::uint64_t store_id = get_u64(p + 16);
      const std::uint64_t block_words = get_u64(p + 24);
      if (version != wire::kProtocolVersion) {
        resp = make_response(Status::InvalidArgument(
            "HELLO: protocol version " + std::to_string(version) + " unsupported"));
      } else {
        auto bound = bind_store(store_id, block_words);
        if (bound.ok()) {
          store = *bound;
          resp = make_response(Status::Ok());
          std::lock_guard<std::mutex> lk(store->mu);
          put_u64(resp, store->backend->num_blocks());
        } else {
          resp = make_response(bound.status());
        }
      }
    } else if (store == nullptr) {
      resp = make_response(Status::InvalidArgument("data op before HELLO"));
    } else if (op == wire::Op::kReadMany || op == wire::Op::kWriteMany) {
      if (!fields(1)) break;
      const std::uint64_t count = get_u64(p + 8);
      const std::size_t bw = store->backend->block_words();
      // Both the write REQUEST (op, count, ids, payload) and the read
      // RESPONSE (status, payload) must fit under the frame cap, so the
      // batch bound covers ids + payload per block: a wire-supplied count
      // can never size an allocation past kMaxFrameBytes, and a batch that
      // passes this check always yields a sendable response.
      if (count > (wire::kMaxFrameBytes - 2 * sizeof(std::uint64_t)) /
                      (sizeof(std::uint64_t) + bw * sizeof(Word)))
        break;
      const std::size_t head = 2 * sizeof(std::uint64_t) + count * sizeof(std::uint64_t);
      const std::size_t data_words = op == wire::Op::kWriteMany ? count * bw : 0;
      if (n != head + data_words * sizeof(Word)) break;
      ids.resize(count);
      std::memcpy(ids.data(), p + 16, count * sizeof(std::uint64_t));
      std::lock_guard<std::mutex> lk(store->mu);
      if (op == wire::Op::kReadMany) {
        words.resize(count * bw);
        Status st = store->backend->read_many(ids, words);
        resp = make_response(st);
        if (st.ok()) {
          const std::size_t at = resp.size();
          resp.resize(at + words.size() * sizeof(Word));
          std::memcpy(resp.data() + at, words.data(), words.size() * sizeof(Word));
        }
      } else {
        words.resize(data_words);
        std::memcpy(words.data(), p + head, data_words * sizeof(Word));
        resp = make_response(store->backend->write_many(ids, words));
      }
    } else if (op == wire::Op::kResize) {
      if (!fields(1)) break;
      std::lock_guard<std::mutex> lk(store->mu);
      // A hostile nblocks must come back as an error frame, not a
      // bad_alloc/length_error escaping the connection thread (terminate).
      try {
        resp = make_response(store->backend->resize(get_u64(p + 8)));
      } catch (const std::exception& e) {
        resp = make_response(
            Status::Io(std::string("RESIZE failed: ") + e.what()));
      }
    } else if (op == wire::Op::kStat) {
      resp = make_response(Status::Ok());
      std::lock_guard<std::mutex> lk(store->mu);
      put_u64(resp, store->backend->num_blocks());
      put_u64(resp, store->backend->block_words());
    } else {
      resp = make_response(
          Status::InvalidArgument("unknown op " + std::to_string(get_u64(p))));
    }
    if (!respond(std::move(resp))) break;
  }

  if (dq) {
    {
      std::lock_guard<std::mutex> lk(dq->mu);
      dq->closed = true;
    }
    dq->cv.notify_one();
    sender.join();
  }
  // Raise done and close in one mu_-critical section: once close() returns
  // the kernel may recycle the fd number, and drop_connections() (which
  // walks conns_ under the same lock) must never shutdown() a descriptor
  // this server no longer owns.  The entry itself is reaped by the accept
  // loop or the destructor.
  {
    std::lock_guard<std::mutex> lk(mu_);
    conn->done.store(true, std::memory_order_release);
    ::close(fd);
  }
}

// ---------------------------------------------------------------------------
// RemoteBackend.

RemoteBackend::RemoteBackend(std::size_t block_words, RemoteBackendOptions opts)
    : StorageBackend(block_words), opts_(std::move(opts)) {
  if (opts_.max_inflight < 1) opts_.max_inflight = 1;
}

RemoteBackend::~RemoteBackend() {
  if (fd_ >= 0) ::close(fd_);
}

Status RemoteBackend::health() const { return ensure_connected(); }

void RemoteBackend::kill_connection(const char* why) const {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  last_error_ = std::string("remote: connection to ") + opts_.host + ":" +
                std::to_string(opts_.port) + " lost (" + why + ")";
  for (Pending& p : pending_) p.dead = true;
}

Status RemoteBackend::ensure_connected() const {
  if (fd_ >= 0) return Status::Ok();
  if (!pending_.empty())
    return Status::Io(last_error_ + "; responses still owed on the dead connection");

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(opts_.port);
  if (::getaddrinfo(opts_.host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr)
    return Status::Io("remote: cannot resolve " + opts_.host);
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd >= 0 && ::connect(fd, res->ai_addr, res->ai_addrlen) != 0) {
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0)
    return Status::Io("remote: cannot connect to " + opts_.host + ":" + port_str +
                      ": " + std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // HELLO handshake: declare the protocol version, namespace and geometry.
  std::vector<std::uint8_t> frame;
  put_u64(frame, static_cast<std::uint64_t>(wire::Op::kHello));
  put_u64(frame, wire::kProtocolVersion);
  put_u64(frame, opts_.store_id);
  put_u64(frame, block_words());
  std::vector<std::uint8_t> body;
  if (!write_frame(fd, frame) || !read_frame(fd, &body)) {
    ::close(fd);
    return Status::Io("remote: HELLO round trip to " + opts_.host + ":" + port_str +
                      " failed");
  }
  Status st = parse_status(body);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  if (was_connected_) reconnects_.fetch_add(1, std::memory_order_relaxed);
  was_connected_ = true;
  fd_ = fd;
  return Status::Ok();
}

Status RemoteBackend::send_frame(wire::Op op, std::span<const std::uint64_t> head,
                                 std::span<const Word> payload) const {
  // An oversized batch is a caller error, not a transport failure: refuse it
  // here (connection intact) instead of letting the server drop the
  // connection on an over-cap length prefix and burning the retry budget.
  const std::uint64_t bytes =
      (1 + head.size()) * sizeof(std::uint64_t) + payload.size() * sizeof(Word);
  if (bytes > wire::kMaxFrameBytes)
    return Status::InvalidArgument(
        "remote: batch of " + std::to_string(bytes) +
        " bytes exceeds the frame cap; lower io_batch_blocks");
  std::vector<std::uint8_t> frame;
  frame.reserve((2 + head.size()) * sizeof(std::uint64_t) + payload.size() * sizeof(Word));
  put_u64(frame, static_cast<std::uint64_t>(op));
  for (std::uint64_t h : head) put_u64(frame, h);
  if (!payload.empty()) {
    const std::size_t at = frame.size();
    frame.resize(at + payload.size() * sizeof(Word));
    std::memcpy(frame.data() + at, payload.data(), payload.size() * sizeof(Word));
  }
  if (!write_frame(fd_, frame)) {
    kill_connection("send failed");
    return Status::Io(last_error_);
  }
  return Status::Ok();
}

Status RemoteBackend::recv_response(std::span<Word> payload_dest) const {
  std::vector<std::uint8_t> body;
  if (!read_frame(fd_, &body)) {
    kill_connection("response lost");
    return Status::Io(last_error_);
  }
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  Status st = parse_status(body);
  if (!st.ok()) return st;
  const std::size_t have = body.size() - sizeof(std::uint64_t);
  if (have != payload_dest.size() * sizeof(Word)) {
    kill_connection("payload size mismatch");
    return Status::Io(last_error_);
  }
  if (!payload_dest.empty())
    std::memcpy(payload_dest.data(), body.data() + sizeof(std::uint64_t), have);
  return Status::Ok();
}

void RemoteBackend::drain_dead() {
  // Pipelined users fail dead ops out one by one via complete_oldest; a
  // synchronous op arriving with leftovers (only possible when a caller
  // abandoned the split API mid-flight) forfeits them here so the
  // connection can be rebuilt.
  if (fd_ < 0) pending_.clear();
}

Status RemoteBackend::rpc(wire::Op op, std::span<const std::uint64_t> head,
                          std::span<const Word> payload, std::span<Word> response) {
  drain_dead();
  OEM_RETURN_IF_ERROR(ensure_connected());
  OEM_RETURN_IF_ERROR(send_frame(op, head, payload));
  return recv_response(response);
}

Status RemoteBackend::do_resize(std::uint64_t nblocks) {
  const std::uint64_t head[1] = {nblocks};
  return rpc(wire::Op::kResize, head, {}, {});
}

Status RemoteBackend::stat(std::uint64_t* num_blocks, std::uint64_t* block_words_out) {
  Word out[2] = {0, 0};
  OEM_RETURN_IF_ERROR(rpc(wire::Op::kStat, {}, {}, out));
  if (num_blocks) *num_blocks = out[0];
  if (block_words_out) *block_words_out = out[1];
  return Status::Ok();
}

Status RemoteBackend::do_read(std::uint64_t block, std::span<Word> out) {
  const std::uint64_t ids[1] = {block};
  return do_read_many(std::span<const std::uint64_t>(ids, 1), out);
}

Status RemoteBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  const std::uint64_t ids[1] = {block};
  return do_write_many(std::span<const std::uint64_t>(ids, 1), in);
}

Status RemoteBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                   std::span<Word> out) {
  drain_dead();
  OEM_RETURN_IF_ERROR(do_begin_read_many(blocks, out));
  return do_complete_oldest();
}

Status RemoteBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                    std::span<const Word> in) {
  drain_dead();
  OEM_RETURN_IF_ERROR(do_begin_write_many(blocks, in));
  return do_complete_oldest();
}

Status RemoteBackend::do_begin_read_many(std::span<const std::uint64_t> blocks,
                                         std::span<Word> out) {
  OEM_RETURN_IF_ERROR(ensure_connected());
  std::vector<std::uint64_t> head;
  head.reserve(1 + blocks.size());
  head.push_back(blocks.size());
  head.insert(head.end(), blocks.begin(), blocks.end());
  OEM_RETURN_IF_ERROR(send_frame(wire::Op::kReadMany, head, {}));
  pending_.push_back({/*is_write=*/false, /*dead=*/false, out.data(), out.size()});
  return Status::Ok();
}

Status RemoteBackend::do_begin_write_many(std::span<const std::uint64_t> blocks,
                                          std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(ensure_connected());
  std::vector<std::uint64_t> head;
  head.reserve(1 + blocks.size());
  head.push_back(blocks.size());
  head.insert(head.end(), blocks.begin(), blocks.end());
  OEM_RETURN_IF_ERROR(send_frame(wire::Op::kWriteMany, head, in));
  pending_.push_back({/*is_write=*/true, /*dead=*/false, nullptr, 0});
  return Status::Ok();
}

Status RemoteBackend::do_complete_oldest() {
  if (pending_.empty()) return Status::Ok();
  Pending p = pending_.front();
  pending_.pop_front();
  if (p.dead) return Status::Io(last_error_);
  return recv_response(std::span<Word>(p.dest, p.dest_words));
}

// ---------------------------------------------------------------------------
// Factory.

BackendFactory remote_backend(RemoteBackendOptions opts) {
  return [opts](std::size_t block_words) {
    return std::make_unique<RemoteBackend>(block_words, opts);
  };
}

}  // namespace oem
