// DirectFileBackend: O_DIRECT block storage on a raw io_uring.
//
// No liburing: the ring is set up with the two io_uring syscalls and driven
// through the mmapped submission/completion queues directly, with the
// acquire/release fences the kernel ABI requires.  This keeps the container
// dependency-free and the moving parts visible:
//
//   io_uring_setup(256, CQSIZE=4096)      one ring per backend instance
//   mmap SQ ring / CQ ring / SQE array    (single mmap when the kernel
//                                          advertises IORING_FEAT_SINGLE_MMAP)
//   submit:  fill SQE, sq_array[tail&mask]=idx, release-store sq_tail,
//            io_uring_enter(to_submit)
//   reap:    acquire-load cq_tail, read cqes[head&mask], release-store cq_head
//
// Layout: block b occupies the byte range [b*slot_bytes, (b+1)*slot_bytes)
// where slot_bytes rounds the payload up to the direct-I/O alignment, so
// every transfer's offset/length/address alignment holds by construction
// (bounce buffers come from the 4096-aligned staging arena).  user_data
// packs (frame serial << 32) | expected_byte_len so completions can be
// credited to their frame and short transfers detected without a per-SQE
// side table.
#include "extmem/backend.h"

#include <fcntl.h>
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "extmem/arena.h"
#include "extmem/io_engine.h"

namespace oem {

namespace {

std::string errno_string(const char* what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

int sys_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr, 0));
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

// Cap one SQE's transfer so the byte length always fits the 32 bits we give
// it in user_data (and stays well under the kernel's per-op limits).
constexpr std::size_t kMaxSqeBytes = 1u << 30;

}  // namespace

// ---------------------------------------------------------------------------
// Ring: the mmapped io_uring views.

struct DirectFileBackend::Ring {
  int fd = -1;
  unsigned sq_entries = 0;
  std::size_t depth = 8;  // advertised max_inflight
  void* sq_mmap = nullptr;
  std::size_t sq_sz = 0;
  void* cq_mmap = nullptr;  // == sq_mmap under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_sz = 0;
  void* sqe_mmap = nullptr;
  std::size_t sqe_sz = 0;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  io_uring_sqe* sqes = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;
  unsigned to_submit = 0;                          // queued since last enter
  std::atomic<std::uint64_t>* sqe_counter = nullptr;

  ~Ring() {
    if (sqe_mmap != nullptr) ::munmap(sqe_mmap, sqe_sz);
    if (cq_mmap != nullptr && cq_mmap != sq_mmap) ::munmap(cq_mmap, cq_sz);
    if (sq_mmap != nullptr) ::munmap(sq_mmap, sq_sz);
    if (fd >= 0) ::close(fd);
  }

  /// Pushes queued SQEs to the kernel (non-SQPOLL: enter consumes them all).
  Status flush() {
    while (to_submit > 0) {
      const int n = sys_uring_enter(fd, to_submit, 0, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Io(std::string("io_uring_enter(submit): ") +
                          std::strerror(errno));
      }
      to_submit -= static_cast<unsigned>(n);
      if (sqe_counter != nullptr)
        sqe_counter->fetch_add(static_cast<std::uint64_t>(n),
                               std::memory_order_relaxed);
    }
    return Status::Ok();
  }

  /// Queues one SQE, flushing first when the submission queue is full.
  Status push(std::uint8_t opcode, void* buf, std::uint32_t len, std::uint64_t off,
              std::uint64_t user_data, int file_fd) {
    unsigned tail = *sq_tail;  // single submitter: only we advance it
    if (tail - __atomic_load_n(sq_head, __ATOMIC_ACQUIRE) >= sq_entries)
      OEM_RETURN_IF_ERROR(flush());  // enter() consumed the queue
    const unsigned idx = tail & sq_mask;
    io_uring_sqe& sqe = sqes[idx];
    std::memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = opcode;
    sqe.fd = file_fd;
    sqe.addr = reinterpret_cast<std::uint64_t>(buf);
    sqe.len = len;
    sqe.off = off;
    sqe.user_data = user_data;
    sq_array[idx] = idx;
    __atomic_store_n(sq_tail, tail + 1, __ATOMIC_RELEASE);
    ++to_submit;
    return Status::Ok();
  }

  bool pop_cqe(io_uring_cqe* out) {
    const unsigned head = *cq_head;  // single reaper
    if (head == __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE)) return false;
    *out = cqes[head & cq_mask];
    __atomic_store_n(cq_head, head + 1, __ATOMIC_RELEASE);
    return true;
  }

  Status wait_cqe() {
    while (true) {
      const int n = sys_uring_enter(fd, 0, 1, IORING_ENTER_GETEVENTS);
      if (n >= 0) return Status::Ok();
      if (errno == EINTR) continue;
      return Status::Io(std::string("io_uring_enter(wait): ") +
                        std::strerror(errno));
    }
  }
};

// ---------------------------------------------------------------------------
// Frame: one begun batch.

struct DirectFileBackend::Frame {
  std::uint64_t serial = 0;
  bool is_read = false;
  Word* dest = nullptr;                  // reads: caller's scatter destination
  std::size_t nblocks = 0;
  ArenaBuffer bounce;                    // slot-strided payload staging
  unsigned outstanding = 0;              // CQEs not yet reaped
  Status result;                         // first per-CQE failure
};

// ---------------------------------------------------------------------------
// Setup / teardown.

bool DirectFileBackend::kernel_supports_uring() {
  io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  const int fd = sys_uring_setup(4, &p);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

DirectFileBackend::DirectFileBackend(std::size_t block_words, DirectFileOptions opts)
    : StorageBackend(block_words) {
  bool temp_path = opts.path.empty();
  if (temp_path) {
    const char* tmpdir = std::getenv("TMPDIR");
    std::string templ =
        std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") + "/oem_direct_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const int tfd = ::mkstemp(buf.data());
    if (tfd < 0) {
      init_status_ = Status::Io(errno_string("mkstemp", templ));
      return;
    }
    ::close(tfd);  // reopened below with O_DIRECT
    path_ = buf.data();
  } else {
    path_ = opts.path;
  }
  Status direct = setup_direct_path(std::max<std::size_t>(1, opts.queue_depth),
                                    /*preserve=*/!temp_path && opts.keep_file);
  if (direct.ok()) {
    ring_live_ = true;
    unlink_on_close_ = temp_path || !opts.keep_file;
    return;
  }
  // Graceful fallback: the threaded engine on the same path.  FileBackend
  // owns the file lifecycle from here (including unlinking), so this object
  // must not unlink it again.
  teardown_ring();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  FileBackendOptions fopts;
  fopts.path = path_;
  fopts.keep_file = temp_path ? false : opts.keep_file;
  fallback_ = std::make_unique<AsyncBackend>(
      std::make_unique<FileBackend>(block_words, fopts));
  init_status_ = fallback_->health();
}

DirectFileBackend::~DirectFileBackend() {
  if (ring_live_) {
    // Begun frames left behind are abandoned, but their CQEs must not land
    // after the bounce buffers die: wait them out.
    while (!inflight_.empty()) {
      auto f = std::move(inflight_.front());
      inflight_.pop_front();
      (void)await_frame(*f);
    }
  }
  teardown_ring();
  if (fd_ >= 0) ::close(fd_);
  if (unlink_on_close_ && !path_.empty()) ::unlink(path_.c_str());
}

void DirectFileBackend::teardown_ring() { ring_.reset(); }

Status DirectFileBackend::setup_direct_path(std::size_t queue_depth,
                                            bool preserve) {
  // keep_file stores are durable across processes: reuse what is on disk.
  const int trunc = preserve ? 0 : O_TRUNC;
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | trunc | O_DIRECT, 0600);
  if (fd_ < 0) return Status::Io(errno_string("open(O_DIRECT)", path_));

  // Alignment discovery: the kernel reports per-file direct-I/O constraints
  // via statx(STATX_DIOALIGN) on 6.1+; older kernels (or filesystems that
  // leave the fields zero) get the conservative 4096.
  std::size_t mem_align = 4096, off_align = 4096;
#ifdef STATX_DIOALIGN
  {
    struct statx stx;
    std::memset(&stx, 0, sizeof(stx));
    if (::statx(fd_, "", AT_EMPTY_PATH, STATX_DIOALIGN, &stx) == 0 &&
        (stx.stx_mask & STATX_DIOALIGN) != 0 && stx.stx_dio_offset_align > 0 &&
        stx.stx_dio_mem_align > 0) {
      off_align = stx.stx_dio_offset_align;
      mem_align = stx.stx_dio_mem_align;
    }
  }
#endif
  if (mem_align > 4096)
    return Status::Io("direct I/O wants " + std::to_string(mem_align) +
                      "-byte buffers, beyond the staging arena's 4096");
  // Slots must align offsets AND keep every slot start mem-aligned inside
  // the bounce buffer, so round to the larger of the two constraints.
  slot_bytes_ = round_up(block_words() * sizeof(Word),
                         std::max({off_align, mem_align, std::size_t{512}}));

  ring_ = std::make_unique<Ring>();
  Ring& r = *ring_;
  r.depth = queue_depth;
  r.sqe_counter = &sqes_;
  io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  p.flags = IORING_SETUP_CQSIZE;
  // Deep CQ: one frame can fan out into many SQEs (one per id run), and
  // several frames ride in flight; modern kernels also buffer overflow
  // internally (IORING_FEAT_NODROP), so this is slack, not a correctness
  // ceiling.
  p.cq_entries = 4096;
  r.fd = sys_uring_setup(256, &p);
  if (r.fd < 0)
    return Status::Io(std::string("io_uring_setup: ") + std::strerror(errno));
  r.sq_entries = p.sq_entries;
  r.sq_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  r.cq_sz = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single) r.sq_sz = r.cq_sz = std::max(r.sq_sz, r.cq_sz);
  r.sq_mmap = ::mmap(nullptr, r.sq_sz, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, r.fd, IORING_OFF_SQ_RING);
  if (r.sq_mmap == MAP_FAILED) {
    r.sq_mmap = nullptr;
    return Status::Io("io_uring: mmap SQ ring failed");
  }
  if (single) {
    r.cq_mmap = r.sq_mmap;
  } else {
    r.cq_mmap = ::mmap(nullptr, r.cq_sz, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, r.fd, IORING_OFF_CQ_RING);
    if (r.cq_mmap == MAP_FAILED) {
      r.cq_mmap = nullptr;
      return Status::Io("io_uring: mmap CQ ring failed");
    }
  }
  r.sqe_sz = p.sq_entries * sizeof(io_uring_sqe);
  r.sqe_mmap = ::mmap(nullptr, r.sqe_sz, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, r.fd, IORING_OFF_SQES);
  if (r.sqe_mmap == MAP_FAILED) {
    r.sqe_mmap = nullptr;
    return Status::Io("io_uring: mmap SQE array failed");
  }
  auto* sqp = static_cast<char*>(r.sq_mmap);
  r.sq_head = reinterpret_cast<unsigned*>(sqp + p.sq_off.head);
  r.sq_tail = reinterpret_cast<unsigned*>(sqp + p.sq_off.tail);
  r.sq_mask = *reinterpret_cast<unsigned*>(sqp + p.sq_off.ring_mask);
  r.sq_array = reinterpret_cast<unsigned*>(sqp + p.sq_off.array);
  r.sqes = static_cast<io_uring_sqe*>(r.sqe_mmap);
  auto* cqp = static_cast<char*>(r.cq_mmap);
  r.cq_head = reinterpret_cast<unsigned*>(cqp + p.cq_off.head);
  r.cq_tail = reinterpret_cast<unsigned*>(cqp + p.cq_off.tail);
  r.cq_mask = *reinterpret_cast<unsigned*>(cqp + p.cq_off.ring_mask);
  r.cqes = reinterpret_cast<io_uring_cqe*>(cqp + p.cq_off.cqes);

  // End-to-end probe: one slot written and read back through the ring, so a
  // filesystem that accepted O_DIRECT at open but rejects it per-op (or a
  // ring the kernel rejects per-op, e.g. seccomp) falls back here and never
  // mid-workload.
  const std::size_t slot_words = slot_bytes_ / sizeof(Word);
  if (::ftruncate(fd_, static_cast<off_t>(slot_bytes_)) != 0)
    return Status::Io(errno_string("ftruncate", path_));
  const std::uint64_t ids[1] = {0};
  Frame wf;
  wf.serial = next_frame_serial_++;
  wf.is_read = false;
  wf.bounce.resize(slot_words);
  for (std::size_t w = 0; w < slot_words; ++w)
    wf.bounce[w] = 0x9e3779b97f4a7c15ULL ^ w;
  OEM_RETURN_IF_ERROR(submit_frame(wf, std::span<const std::uint64_t>(ids, 1)));
  OEM_RETURN_IF_ERROR(await_frame(wf));
  OEM_RETURN_IF_ERROR(wf.result);
  Frame rf;
  rf.serial = next_frame_serial_++;
  rf.is_read = true;
  rf.bounce.resize(slot_words);
  std::memset(rf.bounce.data(), 0, slot_bytes_);
  OEM_RETURN_IF_ERROR(submit_frame(rf, std::span<const std::uint64_t>(ids, 1)));
  OEM_RETURN_IF_ERROR(await_frame(rf));
  OEM_RETURN_IF_ERROR(rf.result);
  for (std::size_t w = 0; w < slot_words; ++w)
    if (rf.bounce[w] != (0x9e3779b97f4a7c15ULL ^ w))
      return Status::Io("io_uring O_DIRECT probe read back wrong bytes");
  if (::ftruncate(fd_, 0) != 0) return Status::Io(errno_string("ftruncate", path_));
  return Status::Ok();
}

Status DirectFileBackend::health() const {
  if (!init_status_.ok()) return init_status_;
  return fallback_ != nullptr ? fallback_->health() : Status::Ok();
}

std::size_t DirectFileBackend::do_max_inflight() const {
  return ring_live_ ? ring_->depth : fallback_->max_inflight();
}

// ---------------------------------------------------------------------------
// Submission / completion plumbing.

Status DirectFileBackend::submit_frame(Frame& f,
                                       std::span<const std::uint64_t> blocks) {
  Ring& r = *ring_;
  const std::size_t slot_words = slot_bytes_ / sizeof(Word);
  const std::uint8_t opcode = f.is_read ? IORING_OP_READ : IORING_OP_WRITE;
  for (std::size_t i = 0; i < blocks.size();) {
    std::size_t run = 1;
    while (i + run < blocks.size() && blocks[i + run] == blocks[i] + run &&
           (run + 1) * slot_bytes_ <= kMaxSqeBytes)
      ++run;
    const std::uint32_t len = static_cast<std::uint32_t>(run * slot_bytes_);
    const std::uint64_t user_data = (f.serial << 32) | len;
    OEM_RETURN_IF_ERROR(r.push(opcode, f.bounce.data() + i * slot_words, len,
                               blocks[i] * slot_bytes_, user_data, fd_));
    ++f.outstanding;
    // Reap anything already done so a huge frame cannot sit on a full CQ.
    io_uring_cqe cqe;
    while (r.pop_cqe(&cqe))
      OEM_RETURN_IF_ERROR(credit_cqe(cqe.user_data, cqe.res, &f));
    i += run;
  }
  return r.flush();
}

/// Credits one already-popped CQE to its frame (matched by the serial in
/// user_data; `extra` covers frames not in the inflight_ deque -- sync ops
/// and the construction probe).  A CQE for an abandoned frame is dropped.
Status DirectFileBackend::credit_cqe(std::uint64_t user_data, std::int32_t res,
                                     Frame* extra) {
  const std::uint64_t serial = user_data >> 32;
  const std::uint32_t want = static_cast<std::uint32_t>(user_data);
  Frame* f = extra != nullptr && extra->serial == serial ? extra : nullptr;
  if (f == nullptr)
    for (auto& p : inflight_)
      if (p->serial == serial) {
        f = p.get();
        break;
      }
  if (f == nullptr) return Status::Ok();  // abandoned frame's CQE
  if (f->outstanding > 0) --f->outstanding;
  if (res < 0)
    f->result.Update(Status::Io(std::string("direct ") +
                                (f->is_read ? "read" : "write") + " '" + path_ +
                                "': " + std::strerror(-res)));
  else if (static_cast<std::uint32_t>(res) != want)
    f->result.Update(Status::Io("short direct transfer on '" + path_ +
                                "' (file truncated externally?)"));
  return Status::Ok();
}

Status DirectFileBackend::reap_one(bool wait, Frame* extra) {
  Ring& r = *ring_;
  io_uring_cqe cqe;
  while (!r.pop_cqe(&cqe)) {
    if (!wait) return Status::Ok();
    OEM_RETURN_IF_ERROR(r.wait_cqe());
  }
  return credit_cqe(cqe.user_data, cqe.res, extra);
}

Status DirectFileBackend::await_frame(Frame& f) {
  OEM_RETURN_IF_ERROR(ring_->flush());
  while (f.outstanding > 0) OEM_RETURN_IF_ERROR(reap_one(true, &f));
  return Status::Ok();
}

void DirectFileBackend::scatter_read(Frame& f) {
  const std::size_t bw = block_words();
  const std::size_t slot_words = slot_bytes_ / sizeof(Word);
  for (std::size_t i = 0; i < f.nblocks; ++i)
    std::memcpy(f.dest + i * bw, f.bounce.data() + i * slot_words,
                bw * sizeof(Word));
}

Status DirectFileBackend::drain_inflight() {
  while (!inflight_.empty()) {
    auto f = std::move(inflight_.front());
    inflight_.pop_front();
    Status st = await_frame(*f);
    if (st.ok()) st = f->result;
    // A drained read's destination is still valid by contract (it must
    // outlive the matching complete_oldest), so deliver the bytes now and
    // hand the status over when that complete_oldest arrives.
    if (st.ok() && f->is_read) scatter_read(*f);
    completed_early_.push_back(st);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// StorageBackend face.

Status DirectFileBackend::flush() {
  if (!init_status_.ok()) return init_status_;
  if (!ring_live_) return fallback_->flush();
  OEM_RETURN_IF_ERROR(drain_inflight());
  if (::fsync(fd_) != 0) return Status::Io(errno_string("fsync", path_));
  return Status::Ok();
}

Status DirectFileBackend::do_resize(std::uint64_t nblocks) {
  if (!ring_live_) return fallback_->resize(nblocks);
  OEM_RETURN_IF_ERROR(drain_inflight());
  // Holes read back as zeros, so grown (or shrunk-then-regrown) blocks keep
  // the fresh-blocks-are-zero contract for free.
  if (::ftruncate(fd_, static_cast<off_t>(nblocks * slot_bytes_)) != 0)
    return Status::Io(errno_string("ftruncate", path_));
  return Status::Ok();
}

Status DirectFileBackend::do_read(std::uint64_t block, std::span<Word> out) {
  const std::uint64_t ids[1] = {block};
  return do_read_many(std::span<const std::uint64_t>(ids, 1), out);
}

Status DirectFileBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  const std::uint64_t ids[1] = {block};
  return do_write_many(std::span<const std::uint64_t>(ids, 1), in);
}

Status DirectFileBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                       std::span<Word> out) {
  if (!ring_live_) return fallback_->read_many(blocks, out);
  OEM_RETURN_IF_ERROR(drain_inflight());
  Frame f;
  f.serial = next_frame_serial_++;
  f.is_read = true;
  f.dest = out.data();
  f.nblocks = blocks.size();
  f.bounce.resize(blocks.size() * (slot_bytes_ / sizeof(Word)));
  OEM_RETURN_IF_ERROR(submit_frame(f, blocks));
  OEM_RETURN_IF_ERROR(await_frame(f));
  OEM_RETURN_IF_ERROR(f.result);
  scatter_read(f);
  return Status::Ok();
}

Status DirectFileBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                        std::span<const Word> in) {
  if (!ring_live_) return fallback_->write_many(blocks, in);
  OEM_RETURN_IF_ERROR(drain_inflight());
  Frame f;
  f.serial = next_frame_serial_++;
  f.is_read = false;
  f.nblocks = blocks.size();
  const std::size_t bw = block_words();
  const std::size_t slot_words = slot_bytes_ / sizeof(Word);
  f.bounce.resize(blocks.size() * slot_words);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    Word* slot = f.bounce.data() + i * slot_words;
    std::memcpy(slot, in.data() + i * bw, bw * sizeof(Word));
    // Zero the slot padding: a recycled arena buffer may hold another
    // layer's stale plaintext, which must never reach the (untrusted) store.
    if (slot_words > bw) std::memset(slot + bw, 0, (slot_words - bw) * sizeof(Word));
  }
  OEM_RETURN_IF_ERROR(submit_frame(f, blocks));
  OEM_RETURN_IF_ERROR(await_frame(f));
  return f.result;
}

Status DirectFileBackend::do_begin_read_many(std::span<const std::uint64_t> blocks,
                                             std::span<Word> out) {
  if (!ring_live_) return fallback_->begin_read_many(blocks, out);
  auto f = std::make_unique<Frame>();
  f->serial = next_frame_serial_++;
  f->is_read = true;
  f->dest = out.data();
  f->nblocks = blocks.size();
  f->bounce.resize(blocks.size() * (slot_bytes_ / sizeof(Word)));
  Status st = submit_frame(*f, blocks);
  if (!st.ok()) {
    (void)await_frame(*f);  // partially submitted SQEs must not outlive bounce
    return st;
  }
  inflight_.push_back(std::move(f));
  return Status::Ok();
}

Status DirectFileBackend::do_begin_write_many(std::span<const std::uint64_t> blocks,
                                              std::span<const Word> in) {
  if (!ring_live_) return fallback_->begin_write_many(blocks, in);
  auto f = std::make_unique<Frame>();
  f->serial = next_frame_serial_++;
  f->is_read = false;
  f->nblocks = blocks.size();
  const std::size_t bw = block_words();
  const std::size_t slot_words = slot_bytes_ / sizeof(Word);
  f->bounce.resize(blocks.size() * slot_words);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    Word* slot = f->bounce.data() + i * slot_words;
    std::memcpy(slot, in.data() + i * bw, bw * sizeof(Word));
    if (slot_words > bw) std::memset(slot + bw, 0, (slot_words - bw) * sizeof(Word));
  }
  Status st = submit_frame(*f, blocks);
  if (!st.ok()) {
    (void)await_frame(*f);
    return st;
  }
  inflight_.push_back(std::move(f));
  return Status::Ok();
}

Status DirectFileBackend::do_complete_oldest() {
  if (!ring_live_) return fallback_->complete_oldest();
  if (!completed_early_.empty()) {
    Status st = std::move(completed_early_.front());
    completed_early_.pop_front();
    return st;
  }
  if (inflight_.empty()) return Status::Ok();
  auto f = std::move(inflight_.front());
  inflight_.pop_front();
  Status st = await_frame(*f);
  if (st.ok()) st = f->result;
  if (st.ok() && f->is_read) scatter_read(*f);
  return st;
}

// ---------------------------------------------------------------------------
// Factory.

BackendFactory direct_file_backend(DirectFileOptions opts) {
  return [opts](std::size_t block_words) {
    return std::make_unique<DirectFileBackend>(block_words, opts);
  };
}

}  // namespace oem
