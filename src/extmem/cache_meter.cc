#include "extmem/cache_meter.h"

#include "extmem/io_engine.h"

namespace oem {

std::string describe_cache_stats(const CacheStats& s) {
  const std::uint64_t reads = s.hits + s.misses;
  const double hit_pct = reads == 0 ? 0.0 : 100.0 * double(s.hits) / double(reads);
  std::string out = "cache: hits=" + std::to_string(s.hits) + "/" +
                    std::to_string(reads) + " (" +
                    std::to_string(static_cast<int>(hit_pct + 0.5)) +
                    "%) absorbed=" + std::to_string(s.absorbed_writes) +
                    " writebacks=" + std::to_string(s.writebacks) + " (" +
                    std::to_string(s.writeback_ops) +
                    " ops) evictions=" + std::to_string(s.evictions) +
                    " admission_rejects=" + std::to_string(s.admission_rejects);
  if (s.flush_failures > 0)
    out += " FLUSH_FAILURES=" + std::to_string(s.flush_failures);
  return out;
}

}  // namespace oem
