#include "extmem/cache_meter.h"

// Header-only; kept as a translation unit for symmetry and future growth.
namespace oem {}
