#include "extmem/backend.h"

#include <fcntl.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <random>
#include <thread>

#include "extmem/encryption.h"
#include "extmem/io_engine.h"
#include "rng/random.h"

namespace oem {

namespace {

std::string errno_string(const char* what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

/// True when a CachingBackend lives anywhere in the decorator chain under
/// `b`, for EncryptedBackend's stack-order guard.  Walks the generic
/// inner_backend() chain (every decorator overrides it) and fans out over
/// the shards of a stripe.
bool contains_cache(const StorageBackend* b) {
  while (b != nullptr) {
    if (dynamic_cast<const CachingBackend*>(b) != nullptr) return true;
    if (const auto* s = dynamic_cast<const ShardedBackend*>(b)) {
      for (std::size_t i = 0; i < s->num_shards(); ++i)
        if (contains_cache(&s->shard(i))) return true;
      return false;
    }
    b = b->inner_backend();
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// StorageBackend: bounds-checked public entry points.

Status StorageBackend::check_blocks(std::span<const std::uint64_t> blocks,
                                    std::size_t words, const char* what) const {
  if (words != blocks.size() * block_words_)
    return Status::InvalidArgument(std::string(what) +
                                   ": buffer size does not match block count");
  for (std::uint64_t b : blocks)
    if (b >= num_blocks_)
      return Status::InvalidArgument(std::string(what) + ": block " +
                                     std::to_string(b) + " out of range (capacity " +
                                     std::to_string(num_blocks_) + ")");
  return Status::Ok();
}

Status StorageBackend::resize(std::uint64_t nblocks) {
  OEM_RETURN_IF_ERROR(health());
  OEM_RETURN_IF_ERROR(do_resize(nblocks));
  num_blocks_ = nblocks;
  return Status::Ok();
}

Status StorageBackend::read(std::uint64_t block, std::span<Word> out) {
  OEM_RETURN_IF_ERROR(health());
  const std::uint64_t ids[1] = {block};
  OEM_RETURN_IF_ERROR(check_blocks(std::span<const std::uint64_t>(ids, 1), out.size(), "read"));
  return do_read(block, out);
}

Status StorageBackend::write(std::uint64_t block, std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(health());
  const std::uint64_t ids[1] = {block};
  OEM_RETURN_IF_ERROR(check_blocks(std::span<const std::uint64_t>(ids, 1), in.size(), "write"));
  return do_write(block, in);
}

Status StorageBackend::read_many(std::span<const std::uint64_t> blocks,
                                 std::span<Word> out) {
  OEM_RETURN_IF_ERROR(health());
  OEM_RETURN_IF_ERROR(check_blocks(blocks, out.size(), "read_many"));
  if (blocks.empty()) return Status::Ok();
  return do_read_many(blocks, out);
}

Status StorageBackend::write_many(std::span<const std::uint64_t> blocks,
                                  std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(health());
  OEM_RETURN_IF_ERROR(check_blocks(blocks, in.size(), "write_many"));
  if (blocks.empty()) return Status::Ok();
  return do_write_many(blocks, in);
}

Status StorageBackend::begin_read_many(std::span<const std::uint64_t> blocks,
                                       std::span<Word> out) {
  OEM_RETURN_IF_ERROR(health());
  OEM_RETURN_IF_ERROR(check_blocks(blocks, out.size(), "begin_read_many"));
  if (blocks.empty()) return Status::Ok();
  return do_begin_read_many(blocks, out);
}

Status StorageBackend::begin_write_many(std::span<const std::uint64_t> blocks,
                                        std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(health());
  OEM_RETURN_IF_ERROR(check_blocks(blocks, in.size(), "begin_write_many"));
  if (blocks.empty()) return Status::Ok();
  return do_begin_write_many(blocks, in);
}

Status StorageBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                    std::span<Word> out) {
  for (std::size_t i = 0; i < blocks.size(); ++i)
    OEM_RETURN_IF_ERROR(do_read(blocks[i], out.subspan(i * block_words(), block_words())));
  return Status::Ok();
}

Status StorageBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                     std::span<const Word> in) {
  for (std::size_t i = 0; i < blocks.size(); ++i)
    OEM_RETURN_IF_ERROR(do_write(blocks[i], in.subspan(i * block_words(), block_words())));
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// MemBackend.

Status MemBackend::do_resize(std::uint64_t nblocks) {
  storage_.resize(static_cast<std::size_t>(nblocks) * block_words());
  return Status::Ok();
}

Status MemBackend::do_read(std::uint64_t block, std::span<Word> out) {
  std::memcpy(out.data(), storage_.data() + block * block_words(),
              block_words() * sizeof(Word));
  return Status::Ok();
}

Status MemBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  std::memcpy(storage_.data() + block * block_words(), in.data(),
              block_words() * sizeof(Word));
  return Status::Ok();
}

Status MemBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                std::span<Word> out) {
  // Coalesce runs of consecutive ids into single memcpys.
  const std::size_t bw = block_words();
  for (std::size_t i = 0; i < blocks.size();) {
    std::size_t run = 1;
    while (i + run < blocks.size() && blocks[i + run] == blocks[i] + run) ++run;
    std::memcpy(out.data() + i * bw, storage_.data() + blocks[i] * bw,
                run * bw * sizeof(Word));
    i += run;
  }
  return Status::Ok();
}

Status MemBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                 std::span<const Word> in) {
  const std::size_t bw = block_words();
  for (std::size_t i = 0; i < blocks.size();) {
    std::size_t run = 1;
    while (i + run < blocks.size() && blocks[i + run] == blocks[i] + run) ++run;
    std::memcpy(storage_.data() + blocks[i] * bw, in.data() + i * bw,
                run * bw * sizeof(Word));
    i += run;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// FileBackend.

FileBackend::FileBackend(std::size_t block_words, FileBackendOptions opts)
    : StorageBackend(block_words) {
  if (opts.path.empty()) {
    const char* tmpdir = std::getenv("TMPDIR");
    std::string templ =
        std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") + "/oem_blocks_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    fd_ = ::mkstemp(buf.data());
    if (fd_ < 0) {
      init_status_ = Status::Io(errno_string("mkstemp", templ));
      return;
    }
    path_ = buf.data();
    unlink_on_close_ = true;
  } else {
    path_ = opts.path;
    // keep_file stores are durable across processes: reuse what is on disk.
    const int trunc = opts.keep_file ? 0 : O_TRUNC;
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | trunc, 0600);
    if (fd_ < 0) {
      init_status_ = Status::Io(errno_string("open", path_));
      return;
    }
    unlink_on_close_ = !opts.keep_file;
  }
}

FileBackend::~FileBackend() {
  if (fd_ >= 0) ::close(fd_);
  if (unlink_on_close_ && !path_.empty()) ::unlink(path_.c_str());
}

Status FileBackend::flush() {
  if (!init_status_.ok()) return init_status_;
  if (fd_ >= 0 && ::fsync(fd_) != 0) return Status::Io(errno_string("fsync", path_));
  return Status::Ok();
}

Status FileBackend::do_resize(std::uint64_t nblocks) {
  const off_t bytes = static_cast<off_t>(nblocks * block_words() * sizeof(Word));
  if (::ftruncate(fd_, bytes) != 0) return Status::Io(errno_string("ftruncate", path_));
  return Status::Ok();
}

Status FileBackend::pread_words(std::span<Word> out, std::uint64_t first_block) {
  std::size_t done = 0;
  const std::size_t bytes = out.size() * sizeof(Word);
  off_t off = static_cast<off_t>(first_block * block_words() * sizeof(Word));
  char* dst = reinterpret_cast<char*>(out.data());
  ++syscalls_;
  while (done < bytes) {
    const ssize_t got = ::pread(fd_, dst + done, bytes - done, off + static_cast<off_t>(done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Io(errno_string("pread", path_));
    }
    if (got == 0)
      return Status::Io("short read from '" + path_ + "' (file truncated externally?)");
    done += static_cast<std::size_t>(got);
    if (done < bytes) ++syscalls_;
  }
  return Status::Ok();
}

Status FileBackend::pwrite_words(std::span<const Word> in, std::uint64_t first_block) {
  std::size_t done = 0;
  const std::size_t bytes = in.size() * sizeof(Word);
  off_t off = static_cast<off_t>(first_block * block_words() * sizeof(Word));
  const char* src = reinterpret_cast<const char*>(in.data());
  ++syscalls_;
  while (done < bytes) {
    const ssize_t put = ::pwrite(fd_, src + done, bytes - done, off + static_cast<off_t>(done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::Io(errno_string("pwrite", path_));
    }
    done += static_cast<std::size_t>(put);
    if (done < bytes) ++syscalls_;
  }
  return Status::Ok();
}

Status FileBackend::do_read(std::uint64_t block, std::span<Word> out) {
  return pread_words(out, block);
}

Status FileBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  return pwrite_words(in, block);
}

Status FileBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                 std::span<Word> out) {
  const std::size_t bw = block_words();
  for (std::size_t i = 0; i < blocks.size();) {
    std::size_t run = 1;
    while (i + run < blocks.size() && blocks[i + run] == blocks[i] + run) ++run;
    OEM_RETURN_IF_ERROR(pread_words(out.subspan(i * bw, run * bw), blocks[i]));
    i += run;
  }
  return Status::Ok();
}

Status FileBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                  std::span<const Word> in) {
  const std::size_t bw = block_words();
  for (std::size_t i = 0; i < blocks.size();) {
    std::size_t run = 1;
    while (i + run < blocks.size() && blocks[i + run] == blocks[i] + run) ++run;
    OEM_RETURN_IF_ERROR(pwrite_words(in.subspan(i * bw, run * bw), blocks[i]));
    i += run;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// LatencyBackend.

LatencyBackend::LatencyBackend(std::unique_ptr<StorageBackend> inner,
                               LatencyProfile profile)
    : StorageBackend(inner->block_words()),
      inner_(std::move(inner)),
      profile_(profile) {}

void LatencyBackend::pay(std::uint64_t words, std::uint64_t nblocks) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  // A round-robin-striped op can use at most one lane per block it touches:
  // a single-block read streams over exactly one link no matter how many
  // lanes the store has.
  const std::uint64_t lanes = std::min<std::uint64_t>(
      std::max<std::size_t>(1, profile_.lanes), std::max<std::uint64_t>(1, nblocks));
  const std::uint64_t ns =
      profile_.per_op_ns + profile_.per_word_ns * ((words + lanes - 1) / lanes);
  simulated_ns_.fetch_add(ns, std::memory_order_relaxed);
  // The sleep happens on the calling thread; per-shard LatencyBackends driven
  // by ShardedBackend workers therefore sleep concurrently, modeling K
  // independent stores instead of one serial queue.  Linux pads sleeps with
  // ~50us of timer slack by default, which would drown microsecond-scale
  // round trips; request 1us slack once per sleeping thread.
  if (profile_.real_sleep && ns > 0) {
#ifdef __linux__
    static thread_local bool slack_tightened = false;
    if (!slack_tightened) {
      ::prctl(PR_SET_TIMERSLACK, 1000, 0, 0, 0);
      slack_tightened = true;
    }
#endif
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  }
}

Status LatencyBackend::do_resize(std::uint64_t nblocks) {
  return inner_->resize(nblocks);
}

Status LatencyBackend::do_read(std::uint64_t block, std::span<Word> out) {
  pay(out.size(), 1);
  return inner_->read(block, out);
}

Status LatencyBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  pay(in.size(), 1);
  return inner_->write(block, in);
}

Status LatencyBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                    std::span<Word> out) {
  pay(out.size(), blocks.size());  // one round trip for the whole batch
  return inner_->read_many(blocks, out);
}

Status LatencyBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                     std::span<const Word> in) {
  pay(in.size(), blocks.size());
  return inner_->write_many(blocks, in);
}

// ---------------------------------------------------------------------------
// EncryptedBackend.

EncryptedBackend::EncryptedBackend(std::size_t block_words,
                                   std::unique_ptr<StorageBackend> inner, Word key,
                                   bool authenticated)
    : StorageBackend(block_words),
      inner_(std::move(inner)),
      authenticated_(authenticated) {
  assert(inner_ && inner_->block_words() == block_words + header_words());
  // Stack-order validation (see health()): a cache ANYWHERE below the
  // encryption seam would hold ciphertext, not plaintext -- walk the whole
  // decorator chain, intervening decorators included.
  if (contains_cache(inner_.get()))
    init_status_ = Status::InvalidArgument(
        "decorator stack mis-ordered: the block cache must sit ABOVE "
        "encryption (cache(encrypted(store))), so it holds each plaintext "
        "block exactly once");
  // Distinct per-instance nonce streams: two shards wrapping the same key
  // must never reuse a (block, nonce) pair for different plaintexts.  The
  // per-process entropy matters too -- a deterministic stream would repeat
  // the same nonces after a client restart against a PERSISTENT remote
  // store, handing Bob an XOR of old and new plaintext for rewritten
  // blocks.  Nonces are not part of any reproducibility contract (the
  // Client's own Encryptor draws per-session), so real randomness is free.
  static std::atomic<std::uint64_t> instance{0};
  static const std::uint64_t process_entropy = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  enc_ = std::make_unique<Encryptor>(
      key, rng::mix64(key ^ process_entropy ^
                      (0xd1b54a32d192ed03ULL *
                       (instance.fetch_add(1, std::memory_order_relaxed) + 1))));
  staging_.resize(block_words + header_words());
}

EncryptedBackend::~EncryptedBackend() = default;

Status EncryptedBackend::do_resize(std::uint64_t nblocks) {
  OEM_RETURN_IF_ERROR(inner_->resize(nblocks));
  // The version table follows the inner capacity: shrinking drops history
  // (the inner store re-zeroes a regrown block, so the expectation must
  // reset to "never written" with it).
  if (authenticated_) versions_.resize(nblocks, 0);
  return Status::Ok();
}

Word EncryptedBackend::fresh_nonce() {
  Word nonce = enc_->fresh_nonce();
  while (nonce == 0) nonce = enc_->fresh_nonce();  // 0 marks "never written"
  return nonce;
}

void EncryptedBackend::seal(std::uint64_t block, std::span<const Word> plain,
                            std::span<Word> sealed) {
  const std::size_t hdr = header_words();
  sealed[0] = fresh_nonce();
  std::copy(plain.begin(), plain.end(), sealed.begin() + hdr);
  enc_->apply_keystream(block, sealed[0], sealed.subspan(hdr));
  if (authenticated_) {
    if (block >= versions_.size()) versions_.resize(block + 1, 0);
    sealed[1] = enc_->mac(block, sealed[0], ++versions_[block], sealed.subspan(hdr));
  }
}

Status EncryptedBackend::open(std::uint64_t block,
                              std::span<Word> sealed_to_plain) const {
  // A zero nonce is an inner block no write ever touched (fresh/shrunk-away
  // storage reads as zero); its plaintext is all-zero words by contract.
  const std::size_t hdr = header_words();
  const Word nonce = sealed_to_plain[0];
  if (authenticated_) {
    const std::span<const Word> cipher = sealed_to_plain.subspan(hdr);
    const std::uint64_t version = block < versions_.size() ? versions_[block] : 0;
    bool ok;
    if (version == 0) {
      // Never sealed by this client: only the all-zero fresh block is
      // acceptable; any other bytes were fabricated by the server.
      ok = nonce == 0 && sealed_to_plain[1] == 0 &&
           std::all_of(cipher.begin(), cipher.end(), [](Word x) { return x == 0; });
    } else {
      ok = sealed_to_plain[1] == enc_->mac(block, nonce, version, cipher);
    }
    if (!ok) {
      // Zero the output so tampered bytes cannot leak past an ignored error.
      std::fill(sealed_to_plain.begin(), sealed_to_plain.end(), Word{0});
      return Status::Integrity(
          "block " + std::to_string(block) +
          " failed authentication (tampered, swapped, or rolled back); "
          "version " + std::to_string(version));
    }
  }
  if (nonce != 0) enc_->apply_keystream(block, nonce, sealed_to_plain.subspan(hdr));
  std::copy(sealed_to_plain.begin() + static_cast<std::ptrdiff_t>(hdr),
            sealed_to_plain.end(), sealed_to_plain.begin());
  return Status::Ok();
}

Status EncryptedBackend::do_read(std::uint64_t block, std::span<Word> out) {
  const std::uint64_t ids[1] = {block};
  return do_read_many(std::span<const std::uint64_t>(ids, 1), out);
}

Status EncryptedBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  const std::uint64_t ids[1] = {block};
  return do_write_many(std::span<const std::uint64_t>(ids, 1), in);
}

Status EncryptedBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                      std::span<Word> out) {
  const std::size_t bw = block_words(), ibw = bw + header_words();
  staging_.resize(blocks.size() * ibw);
  OEM_RETURN_IF_ERROR(inner_->read_many(blocks, staging_));
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    std::span<Word> sealed(staging_.data() + i * ibw, ibw);
    OEM_RETURN_IF_ERROR(open(blocks[i], sealed));
    std::copy_n(sealed.begin(), bw, out.begin() + i * bw);
  }
  return Status::Ok();
}

Status EncryptedBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                       std::span<const Word> in) {
  const std::size_t bw = block_words(), ibw = bw + header_words();
  staging_.resize(blocks.size() * ibw);
  for (std::size_t i = 0; i < blocks.size(); ++i)
    seal(blocks[i], in.subspan(i * bw, bw),
         std::span<Word>(staging_.data() + i * ibw, ibw));
  return inner_->write_many(blocks, staging_);
}

Status EncryptedBackend::do_begin_read_many(std::span<const std::uint64_t> blocks,
                                            std::span<Word> out) {
  Pending p;
  p.is_write = false;
  p.blocks.assign(blocks.begin(), blocks.end());
  p.staging.resize(blocks.size() * (block_words() + header_words()));
  p.dest = out.data();
  Status st = inner_->begin_read_many(p.blocks, p.staging);
  if (st.ok()) pending_.push_back(std::move(p));
  return st;
}

Status EncryptedBackend::do_begin_write_many(std::span<const std::uint64_t> blocks,
                                             std::span<const Word> in) {
  const std::size_t bw = block_words(), ibw = bw + header_words();
  Pending p;
  p.is_write = true;
  p.blocks.assign(blocks.begin(), blocks.end());
  p.staging.resize(blocks.size() * ibw);
  for (std::size_t i = 0; i < blocks.size(); ++i)
    seal(blocks[i], in.subspan(i * bw, bw),
         std::span<Word>(p.staging.data() + i * ibw, ibw));
  // The sealed staging must outlive the wire transfer (an inner
  // RemoteBackend only borrows the buffer until its frame is sent, but a
  // default-synchronous inner consumes it right here either way).
  Status st = inner_->begin_write_many(p.blocks, p.staging);
  if (st.ok()) pending_.push_back(std::move(p));
  return st;
}

Status EncryptedBackend::do_complete_oldest() {
  if (pending_.empty()) return inner_->complete_oldest();
  Pending p = std::move(pending_.front());
  pending_.pop_front();
  Status st = inner_->complete_oldest();
  if (st.ok() && !p.is_write) {
    const std::size_t bw = block_words(), ibw = bw + header_words();
    for (std::size_t i = 0; i < p.blocks.size(); ++i) {
      std::span<Word> sealed(p.staging.data() + i * ibw, ibw);
      st.Update(open(p.blocks[i], sealed));
      if (!st.ok()) break;
      std::copy_n(sealed.begin(), bw, p.dest + i * bw);
    }
  }
  return st;
}

// ---------------------------------------------------------------------------
// Factories.

BackendFactory mem_backend() {
  return [](std::size_t block_words) { return std::make_unique<MemBackend>(block_words); };
}

BackendFactory file_backend(FileBackendOptions opts) {
  return [opts](std::size_t block_words) {
    return std::make_unique<FileBackend>(block_words, opts);
  };
}

BackendFactory latency_backend(BackendFactory inner, LatencyProfile profile) {
  return [inner = std::move(inner), profile](std::size_t block_words)
             -> std::unique_ptr<StorageBackend> {
    auto base = inner ? inner(block_words) : std::make_unique<MemBackend>(block_words);
    return std::make_unique<LatencyBackend>(std::move(base), profile);
  };
}

BackendFactory encrypted_backend(BackendFactory inner, Word key, bool authenticated) {
  return [inner = std::move(inner), key, authenticated](std::size_t block_words)
             -> std::unique_ptr<StorageBackend> {
    const std::size_t hdr = authenticated ? 2 : 1;
    auto base = inner ? inner(block_words + hdr)
                      : std::make_unique<MemBackend>(block_words + hdr);
    return std::make_unique<EncryptedBackend>(block_words, std::move(base), key,
                                              authenticated);
  };
}

}  // namespace oem
