#include "extmem/backend.h"

#include <fcntl.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace oem {

namespace {

std::string errno_string(const char* what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

// ---------------------------------------------------------------------------
// StorageBackend: bounds-checked public entry points.

Status StorageBackend::check_blocks(std::span<const std::uint64_t> blocks,
                                    std::size_t words, const char* what) const {
  if (words != blocks.size() * block_words_)
    return Status::InvalidArgument(std::string(what) +
                                   ": buffer size does not match block count");
  for (std::uint64_t b : blocks)
    if (b >= num_blocks_)
      return Status::InvalidArgument(std::string(what) + ": block " +
                                     std::to_string(b) + " out of range (capacity " +
                                     std::to_string(num_blocks_) + ")");
  return Status::Ok();
}

Status StorageBackend::resize(std::uint64_t nblocks) {
  OEM_RETURN_IF_ERROR(health());
  OEM_RETURN_IF_ERROR(do_resize(nblocks));
  num_blocks_ = nblocks;
  return Status::Ok();
}

Status StorageBackend::read(std::uint64_t block, std::span<Word> out) {
  OEM_RETURN_IF_ERROR(health());
  const std::uint64_t ids[1] = {block};
  OEM_RETURN_IF_ERROR(check_blocks(std::span<const std::uint64_t>(ids, 1), out.size(), "read"));
  return do_read(block, out);
}

Status StorageBackend::write(std::uint64_t block, std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(health());
  const std::uint64_t ids[1] = {block};
  OEM_RETURN_IF_ERROR(check_blocks(std::span<const std::uint64_t>(ids, 1), in.size(), "write"));
  return do_write(block, in);
}

Status StorageBackend::read_many(std::span<const std::uint64_t> blocks,
                                 std::span<Word> out) {
  OEM_RETURN_IF_ERROR(health());
  OEM_RETURN_IF_ERROR(check_blocks(blocks, out.size(), "read_many"));
  if (blocks.empty()) return Status::Ok();
  return do_read_many(blocks, out);
}

Status StorageBackend::write_many(std::span<const std::uint64_t> blocks,
                                  std::span<const Word> in) {
  OEM_RETURN_IF_ERROR(health());
  OEM_RETURN_IF_ERROR(check_blocks(blocks, in.size(), "write_many"));
  if (blocks.empty()) return Status::Ok();
  return do_write_many(blocks, in);
}

Status StorageBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                    std::span<Word> out) {
  for (std::size_t i = 0; i < blocks.size(); ++i)
    OEM_RETURN_IF_ERROR(do_read(blocks[i], out.subspan(i * block_words(), block_words())));
  return Status::Ok();
}

Status StorageBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                     std::span<const Word> in) {
  for (std::size_t i = 0; i < blocks.size(); ++i)
    OEM_RETURN_IF_ERROR(do_write(blocks[i], in.subspan(i * block_words(), block_words())));
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// MemBackend.

Status MemBackend::do_resize(std::uint64_t nblocks) {
  storage_.resize(static_cast<std::size_t>(nblocks) * block_words());
  return Status::Ok();
}

Status MemBackend::do_read(std::uint64_t block, std::span<Word> out) {
  std::memcpy(out.data(), storage_.data() + block * block_words(),
              block_words() * sizeof(Word));
  return Status::Ok();
}

Status MemBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  std::memcpy(storage_.data() + block * block_words(), in.data(),
              block_words() * sizeof(Word));
  return Status::Ok();
}

Status MemBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                std::span<Word> out) {
  // Coalesce runs of consecutive ids into single memcpys.
  const std::size_t bw = block_words();
  for (std::size_t i = 0; i < blocks.size();) {
    std::size_t run = 1;
    while (i + run < blocks.size() && blocks[i + run] == blocks[i] + run) ++run;
    std::memcpy(out.data() + i * bw, storage_.data() + blocks[i] * bw,
                run * bw * sizeof(Word));
    i += run;
  }
  return Status::Ok();
}

Status MemBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                 std::span<const Word> in) {
  const std::size_t bw = block_words();
  for (std::size_t i = 0; i < blocks.size();) {
    std::size_t run = 1;
    while (i + run < blocks.size() && blocks[i + run] == blocks[i] + run) ++run;
    std::memcpy(storage_.data() + blocks[i] * bw, in.data() + i * bw,
                run * bw * sizeof(Word));
    i += run;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// FileBackend.

FileBackend::FileBackend(std::size_t block_words, FileBackendOptions opts)
    : StorageBackend(block_words) {
  if (opts.path.empty()) {
    const char* tmpdir = std::getenv("TMPDIR");
    std::string templ =
        std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") + "/oem_blocks_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    fd_ = ::mkstemp(buf.data());
    if (fd_ < 0) {
      init_status_ = Status::Io(errno_string("mkstemp", templ));
      return;
    }
    path_ = buf.data();
    unlink_on_close_ = true;
  } else {
    path_ = opts.path;
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
    if (fd_ < 0) {
      init_status_ = Status::Io(errno_string("open", path_));
      return;
    }
    unlink_on_close_ = !opts.keep_file;
  }
}

FileBackend::~FileBackend() {
  if (fd_ >= 0) ::close(fd_);
  if (unlink_on_close_ && !path_.empty()) ::unlink(path_.c_str());
}

Status FileBackend::do_resize(std::uint64_t nblocks) {
  const off_t bytes = static_cast<off_t>(nblocks * block_words() * sizeof(Word));
  if (::ftruncate(fd_, bytes) != 0) return Status::Io(errno_string("ftruncate", path_));
  return Status::Ok();
}

Status FileBackend::pread_words(std::span<Word> out, std::uint64_t first_block) {
  std::size_t done = 0;
  const std::size_t bytes = out.size() * sizeof(Word);
  off_t off = static_cast<off_t>(first_block * block_words() * sizeof(Word));
  char* dst = reinterpret_cast<char*>(out.data());
  ++syscalls_;
  while (done < bytes) {
    const ssize_t got = ::pread(fd_, dst + done, bytes - done, off + static_cast<off_t>(done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Io(errno_string("pread", path_));
    }
    if (got == 0)
      return Status::Io("short read from '" + path_ + "' (file truncated externally?)");
    done += static_cast<std::size_t>(got);
    if (done < bytes) ++syscalls_;
  }
  return Status::Ok();
}

Status FileBackend::pwrite_words(std::span<const Word> in, std::uint64_t first_block) {
  std::size_t done = 0;
  const std::size_t bytes = in.size() * sizeof(Word);
  off_t off = static_cast<off_t>(first_block * block_words() * sizeof(Word));
  const char* src = reinterpret_cast<const char*>(in.data());
  ++syscalls_;
  while (done < bytes) {
    const ssize_t put = ::pwrite(fd_, src + done, bytes - done, off + static_cast<off_t>(done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::Io(errno_string("pwrite", path_));
    }
    done += static_cast<std::size_t>(put);
    if (done < bytes) ++syscalls_;
  }
  return Status::Ok();
}

Status FileBackend::do_read(std::uint64_t block, std::span<Word> out) {
  return pread_words(out, block);
}

Status FileBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  return pwrite_words(in, block);
}

Status FileBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                 std::span<Word> out) {
  const std::size_t bw = block_words();
  for (std::size_t i = 0; i < blocks.size();) {
    std::size_t run = 1;
    while (i + run < blocks.size() && blocks[i + run] == blocks[i] + run) ++run;
    OEM_RETURN_IF_ERROR(pread_words(out.subspan(i * bw, run * bw), blocks[i]));
    i += run;
  }
  return Status::Ok();
}

Status FileBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                  std::span<const Word> in) {
  const std::size_t bw = block_words();
  for (std::size_t i = 0; i < blocks.size();) {
    std::size_t run = 1;
    while (i + run < blocks.size() && blocks[i + run] == blocks[i] + run) ++run;
    OEM_RETURN_IF_ERROR(pwrite_words(in.subspan(i * bw, run * bw), blocks[i]));
    i += run;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// LatencyBackend.

LatencyBackend::LatencyBackend(std::unique_ptr<StorageBackend> inner,
                               LatencyProfile profile)
    : StorageBackend(inner->block_words()),
      inner_(std::move(inner)),
      profile_(profile) {}

void LatencyBackend::pay(std::uint64_t words, std::uint64_t nblocks) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  // A round-robin-striped op can use at most one lane per block it touches:
  // a single-block read streams over exactly one link no matter how many
  // lanes the store has.
  const std::uint64_t lanes = std::min<std::uint64_t>(
      std::max<std::size_t>(1, profile_.lanes), std::max<std::uint64_t>(1, nblocks));
  const std::uint64_t ns =
      profile_.per_op_ns + profile_.per_word_ns * ((words + lanes - 1) / lanes);
  simulated_ns_.fetch_add(ns, std::memory_order_relaxed);
  // The sleep happens on the calling thread; per-shard LatencyBackends driven
  // by ShardedBackend workers therefore sleep concurrently, modeling K
  // independent stores instead of one serial queue.  Linux pads sleeps with
  // ~50us of timer slack by default, which would drown microsecond-scale
  // round trips; request 1us slack once per sleeping thread.
  if (profile_.real_sleep && ns > 0) {
#ifdef __linux__
    static thread_local bool slack_tightened = false;
    if (!slack_tightened) {
      ::prctl(PR_SET_TIMERSLACK, 1000, 0, 0, 0);
      slack_tightened = true;
    }
#endif
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  }
}

Status LatencyBackend::do_resize(std::uint64_t nblocks) {
  return inner_->resize(nblocks);
}

Status LatencyBackend::do_read(std::uint64_t block, std::span<Word> out) {
  pay(out.size(), 1);
  return inner_->read(block, out);
}

Status LatencyBackend::do_write(std::uint64_t block, std::span<const Word> in) {
  pay(in.size(), 1);
  return inner_->write(block, in);
}

Status LatencyBackend::do_read_many(std::span<const std::uint64_t> blocks,
                                    std::span<Word> out) {
  pay(out.size(), blocks.size());  // one round trip for the whole batch
  return inner_->read_many(blocks, out);
}

Status LatencyBackend::do_write_many(std::span<const std::uint64_t> blocks,
                                     std::span<const Word> in) {
  pay(in.size(), blocks.size());
  return inner_->write_many(blocks, in);
}

// ---------------------------------------------------------------------------
// Factories.

BackendFactory mem_backend() {
  return [](std::size_t block_words) { return std::make_unique<MemBackend>(block_words); };
}

BackendFactory file_backend(FileBackendOptions opts) {
  return [opts](std::size_t block_words) {
    return std::make_unique<FileBackend>(block_words, opts);
  };
}

BackendFactory latency_backend(BackendFactory inner, LatencyProfile profile) {
  return [inner = std::move(inner), profile](std::size_t block_words)
             -> std::unique_ptr<StorageBackend> {
    auto base = inner ? inner(block_words) : std::make_unique<MemBackend>(block_words);
    return std::make_unique<LatencyBackend>(std::move(base), profile);
  };
}

}  // namespace oem
