// Access-trace recording: the adversary's view.
//
// Bob observes the *sequence* of block reads and writes (op + block index)
// but not plaintext contents (paper §1).  TraceRecorder captures exactly that
// view.  For large runs it can run in hash-only mode (streaming FNV-1a over
// events) so obliviousness can still be asserted via trace-hash equality
// without storing millions of events.
#pragma once

#include <cstdint>
#include <vector>

namespace oem {

enum class IoOp : std::uint8_t { kRead = 0, kWrite = 1 };

struct TraceEvent {
  IoOp op;
  std::uint64_t block;

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.op == b.op && a.block == b.block;
  }
};

struct IoStats {
  std::uint64_t reads = 0;       // blocks read (what the paper's bounds count)
  std::uint64_t writes = 0;      // blocks written
  std::uint64_t read_ops = 0;    // backend calls: a batched read_many is one op
  std::uint64_t write_ops = 0;   // backend calls: a batched write_many is one op
  // Drained-at counters: the subset of the ops above whose physical
  // completion the device has observed (synchronous ops immediately;
  // submitted split-phase frames at the wait/drain that covered them).
  // After a drain they equal the submit-time counters, so `--prefetch` /
  // sharded bench rows report op counts comparable with synchronous rows
  // even when read mid-run.
  std::uint64_t drained_reads = 0;
  std::uint64_t drained_writes = 0;
  std::uint64_t drained_read_ops = 0;
  std::uint64_t drained_write_ops = 0;
  // Compute-plane wall time, recorded on the master thread: the pipeline's
  // compute phase (including the worker-pool barrier) and the encrypt/decrypt
  // sections of Client.  Diagnostics only -- NOT part of Bob's view (wall
  // time is not in the trace), but printed by the bench notes so
  // compute-vs-I/O bottleneck shifts are visible in every row.
  std::uint64_t compute_ns = 0;
  std::uint64_t crypto_ns = 0;
  std::uint64_t total() const { return reads + writes; }
  std::uint64_t total_ops() const { return read_ops + write_ops; }
  std::uint64_t drained_total() const { return drained_reads + drained_writes; }
  std::uint64_t drained_total_ops() const {
    return drained_read_ops + drained_write_ops;
  }
};

class TraceRecorder {
 public:
  void set_record_events(bool on) { record_events_ = on; }
  bool recording_events() const { return record_events_; }

  void on_access(IoOp op, std::uint64_t block);

  /// Streaming FNV-1a hash over all events since the last reset.
  std::uint64_t hash() const { return hash_; }
  std::uint64_t size() const { return count_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  void reset();

 private:
  bool record_events_ = false;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
  std::uint64_t count_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace oem
