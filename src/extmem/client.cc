#include "extmem/client.h"

#include <cassert>
#include <cstring>

namespace oem {

Client::Client(const ClientParams& params)
    : B_(params.block_records),
      M_(params.cache_records),
      dev_(std::make_unique<BlockDevice>(1 + params.block_records * kWordsPerRecord)),
      enc_(rng::mix64(params.seed ^ 0x5bf0363546294ce7ULL), params.seed),
      meter_(params.cache_records, params.strict_cache),
      rng_(params.seed) {
  assert(B_ >= 1);
  assert(M_ >= 2 * B_ && "the paper assumes at least M >= 2B everywhere");
  wire_.resize(dev_->block_words());
}

ExtArray Client::alloc(std::uint64_t num_records, Init init) {
  const std::uint64_t nblocks = num_records == 0 ? 0 : ceil_div(num_records, B_);
  ExtArray a(dev_->allocate(nblocks), num_records, B_);
  if (init == Init::kEmpty) {
    const BlockBuf empty = make_empty_block(B_);
    for (std::uint64_t i = 0; i < nblocks; ++i) write_block(a, i, empty);
  }
  return a;
}

ExtArray Client::alloc_blocks(std::uint64_t num_blocks, Init init) {
  return alloc(num_blocks * B_, init);
}

void Client::release(const ExtArray& a) { dev_->release(a.extent()); }

void Client::serialize(const BlockBuf& in, std::span<Word> out_words) const {
  assert(in.size() == B_);
  assert(out_words.size() == 1 + B_ * kWordsPerRecord);
  // out_words[0] is the nonce slot, filled by the caller.
  for (std::size_t r = 0; r < B_; ++r) {
    out_words[1 + 2 * r] = in[r].key;
    out_words[2 + 2 * r] = in[r].value;
  }
}

void Client::deserialize(std::span<const Word> in_words, BlockBuf& out) const {
  assert(in_words.size() == 1 + B_ * kWordsPerRecord);
  out.resize(B_);
  for (std::size_t r = 0; r < B_; ++r) {
    out[r].key = in_words[1 + 2 * r];
    out[r].value = in_words[2 + 2 * r];
  }
}

void Client::read_block(const ExtArray& a, std::uint64_t i, BlockBuf& out) {
  assert(i < a.num_blocks());
  const std::uint64_t dev_blk = a.device_block(i);
  dev_->read(dev_blk, wire_);
  const Word nonce = wire_[0];
  enc_.apply_keystream(dev_blk, nonce, std::span<Word>(wire_).subspan(1));
  deserialize(wire_, out);
}

void Client::write_block(const ExtArray& a, std::uint64_t i, const BlockBuf& in) {
  assert(i < a.num_blocks());
  const std::uint64_t dev_blk = a.device_block(i);
  const Word nonce = enc_.fresh_nonce();
  wire_[0] = nonce;
  serialize(in, wire_);
  enc_.apply_keystream(dev_blk, nonce, std::span<Word>(wire_).subspan(1));
  dev_->write(dev_blk, wire_);
}

void Client::touch_block(const ExtArray& a, std::uint64_t i) {
  BlockBuf buf;
  CacheLease lease(meter_, B_);
  read_block(a, i, buf);
  write_block(a, i, buf);  // fresh nonce => fresh ciphertext
}

void Client::read_records(const ExtArray& a, std::uint64_t start, std::span<Record> out) {
  assert(start + out.size() <= a.num_blocks() * B_);
  BlockBuf buf;
  std::uint64_t pos = start;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t blk = pos / B_;
    const std::size_t off = static_cast<std::size_t>(pos % B_);
    const std::size_t take = std::min(out.size() - done, B_ - off);
    read_block(a, blk, buf);
    for (std::size_t i = 0; i < take; ++i) out[done + i] = buf[off + i];
    pos += take;
    done += take;
  }
}

void Client::write_records(const ExtArray& a, std::uint64_t start,
                           std::span<const Record> in) {
  assert(start + in.size() <= a.num_blocks() * B_);
  BlockBuf buf;
  std::uint64_t pos = start;
  std::size_t done = 0;
  while (done < in.size()) {
    const std::uint64_t blk = pos / B_;
    const std::size_t off = static_cast<std::size_t>(pos % B_);
    const std::size_t take = std::min(in.size() - done, B_ - off);
    if (off != 0 || take != B_) {
      read_block(a, blk, buf);  // read-modify-write for partial coverage
    } else {
      buf.assign(B_, Record{});
    }
    for (std::size_t i = 0; i < take; ++i) buf[off + i] = in[done + i];
    write_block(a, blk, buf);
    pos += take;
    done += take;
  }
}

std::vector<Record> Client::peek(const ExtArray& a) const {
  std::vector<Record> out;
  out.reserve(a.num_records());
  std::vector<Word> wire(dev_->block_words());
  BlockBuf buf;
  for (std::uint64_t i = 0; i < a.num_blocks(); ++i) {
    const std::uint64_t dev_blk = a.device_block(i);
    std::memcpy(wire.data(), dev_->raw(dev_blk).data(), wire.size() * sizeof(Word));
    enc_.apply_keystream(dev_blk, wire[0], std::span<Word>(wire).subspan(1));
    deserialize(wire, buf);
    for (std::size_t r = 0; r < B_ && out.size() < a.num_records(); ++r)
      out.push_back(buf[r]);
  }
  return out;
}

void Client::poke(const ExtArray& a, std::span<const Record> records) {
  assert(records.size() <= a.num_blocks() * B_);
  std::vector<Word> wire(dev_->block_words());
  BlockBuf buf(B_);
  std::size_t idx = 0;
  for (std::uint64_t i = 0; i < a.num_blocks(); ++i) {
    for (std::size_t r = 0; r < B_; ++r) {
      buf[r] = idx < records.size() ? records[idx] : Record{};
      ++idx;
    }
    const std::uint64_t dev_blk = a.device_block(i);
    const Word nonce = enc_.fresh_nonce();
    wire[0] = nonce;
    serialize(buf, wire);
    enc_.apply_keystream(dev_blk, nonce, std::span<Word>(wire).subspan(1));
    // Bypass counters/trace: direct poke into Bob's storage (setup only).
    std::memcpy(const_cast<Word*>(dev_->raw(dev_blk).data()), wire.data(),
                wire.size() * sizeof(Word));
  }
}

}  // namespace oem
