#include "extmem/client.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <string>

#include "util/status.h"

namespace oem {

Status hydrate_state(ClientParams* p) {
  if (p->state_path.empty()) return Status::Ok();
  Result<FreshnessState> loaded =
      load_freshness(p->state_path, freshness_state_key(p->seed));
  if (!loaded.ok()) {
    // Absent = first boot with this path: bootstrap fresh.  Any OTHER
    // failure is an existing file that does not verify -- fail closed.
    if (loaded.status().code() == StatusCode::kIo) return Status::Ok();
    return loaded.status();
  }
  p->store_namespace = loaded->store_namespace;
  p->initial_state =
      std::make_shared<const FreshnessState>(std::move(loaded).value());
  return Status::Ok();
}

Client::Client(const ClientParams& params)
    : B_(params.block_records),
      M_(params.cache_records),
      io_batch_(params.io_batch_blocks),
      compute_model_ns_(params.compute_model_ns_per_block),
      state_path_(params.state_path),
      seed_(params.seed),
      store_namespace_(params.store_namespace),
      dev_(std::make_unique<BlockDevice>(
          kBlockHeaderWords + params.block_records * kWordsPerRecord,
          params.backend, RetryPolicy{params.io_retry_attempts},
          params.pipeline_depth)),
      pool_(std::make_unique<ComputePool>(params.compute_threads)),
      enc_(rng::mix64(params.seed ^ 0x5bf0363546294ce7ULL), params.seed),
      meter_(params.cache_records, params.strict_cache),
      rng_(params.seed) {
  assert(B_ >= 1);
  assert(M_ >= 2 * B_ && "the paper assumes at least M >= 2B everywhere");
  if (io_batch_ == 0) io_batch_ = std::max<std::uint64_t>(1, m() / 4);
  wire_.resize(dev_->block_words());
  if (params.initial_state) {
    // Restart: restore the freshness state a predecessor sealed.  Versions
    // resume rollback detection, the nonce counter keeps counter-derived
    // nonces unique across process lifetimes, and the generation continues
    // monotonically so the next save supersedes the loaded file.
    dev_->set_versions(params.initial_state->versions);
    enc_.set_nonce_counter(params.initial_state->nonce_counter);
    state_generation_ = params.initial_state->generation;
  }
}

Client::~Client() {
  if (!state_path_.empty()) (void)persist_state();
}

Status Client::persist_state() {
  if (state_path_.empty())
    return Status::InvalidArgument("persist_state: no state_path configured");
  FreshnessState st;
  st.generation = ++state_generation_;
  st.nonce_counter = enc_.nonce_counter();
  st.store_namespace = store_namespace_;
  st.versions = dev_->versions();
  return save_freshness(state_path_, st, freshness_state_key(seed_));
}

ExtArray Client::alloc(std::uint64_t num_records, Init init) {
  const std::uint64_t nblocks = num_records == 0 ? 0 : ceil_div(num_records, B_);
  ExtArray a(dev_->allocate(nblocks), num_records, B_);
  if (init == Init::kEmpty && nblocks > 0) {
    // Batched counted initialization: same writes, same trace order.
    const std::uint64_t chunk = std::min<std::uint64_t>(io_batch_, nblocks);
    const std::vector<Record> empty(static_cast<std::size_t>(chunk) * B_);
    for (std::uint64_t i = 0; i < nblocks; i += chunk) {
      const std::uint64_t k = std::min(chunk, nblocks - i);
      write_blocks(a, i, k, std::span<const Record>(empty).subspan(0, k * B_));
    }
  }
  return a;
}

ExtArray Client::alloc_blocks(std::uint64_t num_blocks, Init init) {
  return alloc(num_blocks * B_, init);
}

void Client::release(const ExtArray& a) { dev_->release(a.extent()); }

void Client::serialize(std::span<const Record> in, std::span<Word> out_words) const {
  assert(in.size() == B_);
  assert(out_words.size() == kBlockHeaderWords + B_ * kWordsPerRecord);
  // out_words[0]/[1] are the nonce/mac header slots, filled by the sealer.
  for (std::size_t r = 0; r < B_; ++r) {
    out_words[kBlockHeaderWords + 2 * r] = in[r].key;
    out_words[kBlockHeaderWords + 1 + 2 * r] = in[r].value;
  }
}

void Client::deserialize(std::span<const Word> in_words, std::span<Record> out) const {
  assert(in_words.size() == kBlockHeaderWords + B_ * kWordsPerRecord);
  assert(out.size() == B_);
  for (std::size_t r = 0; r < B_; ++r) {
    out[r].key = in_words[kBlockHeaderWords + 2 * r];
    out[r].value = in_words[kBlockHeaderWords + 1 + 2 * r];
  }
}

void Client::seal_words(std::uint64_t dev_blk, Word nonce, std::uint64_t version,
                        std::span<const Record> in, std::span<Word> w) const {
  assert(w.size() == dev_->block_words());
  w[0] = nonce;
  serialize(in, w);
  enc_.apply_keystream(dev_blk, nonce, w.subspan(kBlockHeaderWords));
  w[1] = enc_.mac(dev_blk, nonce, version, w.subspan(kBlockHeaderWords));
}

bool Client::open_words(std::uint64_t dev_blk, std::span<const Word> w,
                        std::span<Record> out) const {
  assert(w.size() == dev_->block_words());
  assert(out.size() == B_);
  const Word nonce = w[0], tag = w[1];
  const std::span<const Word> cipher = w.subspan(kBlockHeaderWords);
  const std::uint64_t version = dev_->version(dev_blk);
  bool ok;
  if (version == 0) {
    // Never written by this client: the backend contract says a fresh (or
    // shrunk-then-regrown) block reads as all-zero, header included.  Any
    // other bytes at version 0 were fabricated by the server.
    ok = nonce == 0 && tag == 0 &&
         std::all_of(cipher.begin(), cipher.end(), [](Word x) { return x == 0; });
  } else {
    ok = tag == enc_.mac(dev_blk, nonce, version, cipher);
  }
  if (!ok) {
    // Zero the plaintext so a caller that drops the verdict on the floor can
    // still never observe attacker-controlled bytes.
    for (Record& r : out) r = Record{0, 0};
    return false;
  }
  thread_local std::vector<Word> scratch;
  scratch.assign(w.begin(), w.end());
  if (nonce != 0)
    enc_.apply_keystream(dev_blk, nonce,
                         std::span<Word>(scratch).subspan(kBlockHeaderWords));
  deserialize(scratch, out);
  return true;
}

void Client::integrity_fail(std::uint64_t dev_blk) const {
  throw IntegrityError("block authentication failed: device block " +
                       std::to_string(dev_blk) +
                       " (tampered, swapped, or rolled back); version " +
                       std::to_string(dev_->version(dev_blk)));
}

void Client::read_block(const ExtArray& a, std::uint64_t i, BlockBuf& out) {
  assert(i < a.num_blocks());
  const std::uint64_t dev_blk = a.device_block(i);
  dev_->read(dev_blk, wire_);
  out.resize(B_);
  if (!open_words(dev_blk, wire_, out)) integrity_fail(dev_blk);
}

void Client::write_block(const ExtArray& a, std::uint64_t i, const BlockBuf& in) {
  assert(i < a.num_blocks());
  assert(in.size() == B_);
  const std::uint64_t dev_blk = a.device_block(i);
  seal_words(dev_blk, enc_.fresh_nonce(), dev_->bump_version(dev_blk), in, wire_);
  dev_->write(dev_blk, wire_);
}

void Client::read_blocks(const ExtArray& a, std::uint64_t first, std::uint64_t count,
                         std::span<Record> out) {
  assert(first + count <= a.num_blocks());
  assert(out.size() == count * B_);
  const std::size_t bw = dev_->block_words();
  for (std::uint64_t done = 0; done < count;) {
    const std::uint64_t k = std::min<std::uint64_t>(io_batch_, count - done);
    ids_.resize(k);
    for (std::uint64_t j = 0; j < k; ++j) ids_[j] = a.device_block(first + done + j);
    wire_many_.resize(static_cast<std::size_t>(k) * bw);
    dev_->read_many(ids_, wire_many_);
    for (std::uint64_t j = 0; j < k; ++j) {
      std::span<const Word> w(wire_many_.data() + j * bw, bw);
      if (!open_words(ids_[j], w, out.subspan((done + j) * B_, B_)))
        integrity_fail(ids_[j]);
    }
    done += k;
  }
}

void Client::write_blocks(const ExtArray& a, std::uint64_t first, std::uint64_t count,
                          std::span<const Record> in) {
  assert(first + count <= a.num_blocks());
  assert(in.size() == count * B_);
  const std::size_t bw = dev_->block_words();
  for (std::uint64_t done = 0; done < count;) {
    const std::uint64_t k = std::min<std::uint64_t>(io_batch_, count - done);
    ids_.resize(k);
    wire_many_.resize(static_cast<std::size_t>(k) * bw);
    for (std::uint64_t j = 0; j < k; ++j) {
      const std::uint64_t dev_blk = a.device_block(first + done + j);
      ids_[j] = dev_blk;
      std::span<Word> w(wire_many_.data() + j * bw, bw);
      seal_words(dev_blk, enc_.fresh_nonce(), dev_->bump_version(dev_blk),
                 in.subspan((done + j) * B_, B_), w);
    }
    dev_->write_many(ids_, wire_many_);
    done += k;
  }
}

void Client::decrypt_blocks(std::span<const std::uint64_t> dev_ids,
                            std::span<const Word> wire, std::span<Record> out) {
  const std::size_t bw = dev_->block_words();
  assert(wire.size() == dev_ids.size() * bw);
  assert(out.size() == dev_ids.size() * B_);
  if (dev_ids.empty()) return;
  const auto t0 = std::chrono::steady_clock::now();
  // Each block's verify + keystream is independent: chunk the window across
  // the pool.  Lanes verify into their verdict slots (open_words copies into
  // a per-lane scratch, so `wire` -- the pipeline's reusable staging -- is
  // left untouched); the master reduces the verdicts after the fan-in and
  // fails closed on the first bad block.
  verdicts_.assign(dev_ids.size(), 1);
  pool_->parallel_for(dev_ids.size(), 0, [&](std::size_t first, std::size_t last) {
    for (std::size_t j = first; j < last; ++j) {
      if (!open_words(dev_ids[j], wire.subspan(j * bw, bw),
                      out.subspan(j * B_, B_)))
        verdicts_[j] = 0;
    }
  });
  dev_->add_crypto_ns(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  for (std::size_t j = 0; j < dev_ids.size(); ++j)
    if (!verdicts_[j]) integrity_fail(dev_ids[j]);
}

void Client::encrypt_blocks(std::span<const std::uint64_t> dev_ids,
                            std::span<const Record> in, std::span<Word> wire) {
  const std::size_t bw = dev_->block_words();
  assert(wire.size() == dev_ids.size() * bw);
  assert(in.size() == dev_ids.size() * B_);
  if (dev_ids.empty()) return;
  const auto t0 = std::chrono::steady_clock::now();
  // Nonces mutate the Encryptor's state and version bumps mutate the device's
  // anti-rollback table: draw both sequentially on the master, in scatter
  // order, BEFORE fanning out -- ciphertexts and MACs are then a function of
  // the write sequence alone, never of the lane count.
  versions_scratch_.resize(dev_ids.size());
  for (std::size_t j = 0; j < dev_ids.size(); ++j) {
    wire[j * bw] = enc_.fresh_nonce();
    versions_scratch_[j] = dev_->bump_version(dev_ids[j]);
  }
  pool_->parallel_for(dev_ids.size(), 0, [&](std::size_t first, std::size_t last) {
    for (std::size_t j = first; j < last; ++j) {
      seal_words(dev_ids[j], wire[j * bw], versions_scratch_[j],
                 in.subspan(j * B_, B_), wire.subspan(j * bw, bw));
    }
  });
  dev_->add_crypto_ns(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
}

void Client::touch_block(const ExtArray& a, std::uint64_t i) {
  BlockBuf buf;
  CacheLease lease(meter_, B_);
  read_block(a, i, buf);
  write_block(a, i, buf);  // fresh nonce => fresh ciphertext
}

void Client::read_records(const ExtArray& a, std::uint64_t start, std::span<Record> out) {
  assert(start + out.size() <= a.num_blocks() * B_);
  BlockBuf buf;
  std::uint64_t pos = start;
  std::size_t done = 0;
  // Leading partial block.
  if (pos % B_ != 0 && done < out.size()) {
    const std::size_t off = static_cast<std::size_t>(pos % B_);
    const std::size_t take = std::min(out.size() - done, B_ - off);
    read_block(a, pos / B_, buf);
    for (std::size_t i = 0; i < take; ++i) out[done + i] = buf[off + i];
    pos += take;
    done += take;
  }
  // Aligned full blocks, batched.
  const std::uint64_t mid = (out.size() - done) / B_;
  if (mid > 0) {
    read_blocks(a, pos / B_, mid, out.subspan(done, mid * B_));
    pos += mid * B_;
    done += static_cast<std::size_t>(mid) * B_;
  }
  // Trailing partial block.
  if (done < out.size()) {
    const std::size_t take = out.size() - done;
    read_block(a, pos / B_, buf);
    for (std::size_t i = 0; i < take; ++i) out[done + i] = buf[i];
  }
}

void Client::write_records(const ExtArray& a, std::uint64_t start,
                           std::span<const Record> in) {
  assert(start + in.size() <= a.num_blocks() * B_);
  BlockBuf buf;
  std::uint64_t pos = start;
  std::size_t done = 0;
  // Leading partial block: read-modify-write.
  if (pos % B_ != 0 && done < in.size()) {
    const std::size_t off = static_cast<std::size_t>(pos % B_);
    const std::size_t take = std::min(in.size() - done, B_ - off);
    read_block(a, pos / B_, buf);
    for (std::size_t i = 0; i < take; ++i) buf[off + i] = in[done + i];
    write_block(a, pos / B_, buf);
    pos += take;
    done += take;
  }
  // Aligned full blocks, batched (write-only, like the per-block path).
  const std::uint64_t mid = (in.size() - done) / B_;
  if (mid > 0) {
    write_blocks(a, pos / B_, mid, in.subspan(done, mid * B_));
    pos += mid * B_;
    done += static_cast<std::size_t>(mid) * B_;
  }
  // Trailing partial block: read-modify-write.
  if (done < in.size()) {
    const std::size_t take = in.size() - done;
    read_block(a, pos / B_, buf);
    for (std::size_t i = 0; i < take; ++i) buf[i] = in[done + i];
    write_block(a, pos / B_, buf);
  }
}

std::vector<Record> Client::peek(const ExtArray& a) const {
  std::vector<Record> out;
  out.reserve(a.num_records());
  const std::size_t bw = dev_->block_words();
  BlockBuf buf(B_);
  std::vector<Word> wire;
  // Bulk download in batch windows (uncounted; the backend coalesces).
  for (std::uint64_t i = 0; i < a.num_blocks(); i += io_batch_) {
    const std::uint64_t k = std::min<std::uint64_t>(io_batch_, a.num_blocks() - i);
    wire.resize(static_cast<std::size_t>(k) * bw);
    dev_->read_raw_range(a.device_block(i), k, wire);
    for (std::uint64_t j = 0; j < k; ++j) {
      const std::uint64_t dev_blk = a.device_block(i + j);
      std::span<const Word> w(wire.data() + j * bw, bw);
      if (!open_words(dev_blk, w, buf)) integrity_fail(dev_blk);
      for (std::size_t r = 0; r < B_ && out.size() < a.num_records(); ++r)
        out.push_back(buf[r]);
    }
  }
  return out;
}

void Client::poke(const ExtArray& a, std::span<const Record> records) {
  assert(records.size() <= a.num_blocks() * B_);
  const std::size_t bw = dev_->block_words();
  BlockBuf buf(B_);
  std::vector<Word> wire;
  std::size_t idx = 0;
  // Bulk upload in batch windows; bypasses counters/trace (setup only).
  for (std::uint64_t i = 0; i < a.num_blocks(); i += io_batch_) {
    const std::uint64_t k = std::min<std::uint64_t>(io_batch_, a.num_blocks() - i);
    wire.resize(static_cast<std::size_t>(k) * bw);
    for (std::uint64_t j = 0; j < k; ++j) {
      for (std::size_t r = 0; r < B_; ++r) {
        buf[r] = idx < records.size() ? records[idx] : Record{};
        ++idx;
      }
      const std::uint64_t dev_blk = a.device_block(i + j);
      std::span<Word> w(wire.data() + j * bw, bw);
      seal_words(dev_blk, enc_.fresh_nonce(), dev_->bump_version(dev_blk), buf, w);
    }
    dev_->write_raw_range(a.device_block(i), k, wire);
  }
}

}  // namespace oem
