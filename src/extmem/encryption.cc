#include "extmem/encryption.h"

#include "rng/random.h"

namespace oem {

Word Encryptor::fresh_nonce() { return rng::splitmix64(nonce_state_); }

void Encryptor::apply_keystream(std::uint64_t block_index, Word nonce,
                                std::span<Word> payload) const {
  std::uint64_t stream = key_ ^ (block_index * 0x9e3779b97f4a7c15ULL) ^ nonce;
  for (Word& w : payload) w ^= rng::splitmix64(stream);
}

}  // namespace oem
