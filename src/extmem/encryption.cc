#include "extmem/encryption.h"

#include "rng/random.h"

namespace oem {

Encryptor::Encryptor(Word key, std::uint64_t nonce_seed)
    : key_(key),
      mac_key_(rng::mix64(key ^ 0x6d61632d6b657921ULL)),  // "mac-key!"
      nonce_base_(nonce_seed ^ 0x41c64e6d12345ULL) {}

Word Encryptor::fresh_nonce() {
  // mix64 is a bijection, so distinct counter values give distinct nonces:
  // reuse is impossible within this store's lifetime (a bare random draw
  // would repeat a keystream at the 2^32 birthday bound).  Zero is reserved
  // as the never-written header sentinel; skip it on the (one in 2^64)
  // collision.
  Word n = rng::mix64(nonce_base_ ^ (0x9e3779b97f4a7c15ULL * ++nonce_counter_));
  if (n == 0)
    n = rng::mix64(nonce_base_ ^ (0x9e3779b97f4a7c15ULL * ++nonce_counter_));
  return n;
}

void Encryptor::apply_keystream(std::uint64_t block_index, Word nonce,
                                std::span<Word> payload) const {
  std::uint64_t stream = key_ ^ (block_index * 0x9e3779b97f4a7c15ULL) ^ nonce;
  for (Word& w : payload) w ^= rng::splitmix64(stream);
}

Word Encryptor::mac(std::uint64_t block_index, Word nonce, std::uint64_t version,
                    std::span<const Word> ciphertext) const {
  // Keyed mix64 absorption chain -- simulation-grade, like the keystream:
  // the point is the *binding* (ciphertext + index + nonce + version under a
  // key Bob never sees), not cryptographic strength.
  std::uint64_t h = mac_key_;
  h = rng::mix64(h ^ (block_index * 0x9e3779b97f4a7c15ULL));
  h = rng::mix64(h ^ nonce);
  h = rng::mix64(h ^ version);
  for (Word w : ciphertext) h = rng::mix64(h ^ w);
  return h;
}

}  // namespace oem
