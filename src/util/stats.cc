#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace oem {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  double sum = 0.0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1 ? std::sqrt(var / static_cast<double>(xs.size() - 1)) : 0.0;
  return s;
}

LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys) {
  LinearFit f;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return f;
  f.slope = (dn * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / dn;
  const double sse_denom = (dn * syy - sy * sy);
  if (sse_denom != 0.0) {
    const double r = (dn * sxy - sx * sy) / std::sqrt(denom * sse_denom);
    f.r2 = r * r;
  }
  return f;
}

double chi_square_uniform(const std::vector<std::uint64_t>& observed) {
  if (observed.empty()) return 0.0;
  std::uint64_t total = 0;
  for (auto c : observed) total += c;
  const double expected =
      static_cast<double>(total) / static_cast<double>(observed.size());
  if (expected <= 0.0) return 0.0;
  double chi2 = 0.0;
  for (auto c : observed) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

double chernoff_upper_tail(double mu, double gamma) {
  if (mu <= 0.0 || gamma <= 2.0 * M_E) return 1.0;
  const double exponent = gamma * mu * std::log2(gamma / M_E);
  return std::exp2(-exponent);
}

double geometric_sum_tail(double n, double p, double t) {
  if (n <= 0.0 || p <= 0.0 || p > 1.0 || t <= 0.0) return 1.0;
  const double alpha = 1.0 / p;
  // The five cases of Lemma 23, from tightest precondition to loosest.
  if (t >= 3.0 * alpha) return std::exp(-t * p * n / 2.0);
  if (t >= 2.0 * alpha) return std::exp(-t * p * n / 3.0);
  if (t >= alpha) return std::exp(-t * p * n / 5.0);
  if (t >= alpha / 2.0) return std::exp(-t * p * n / 9.0);
  return std::exp(-(t * p) * (t * p) * n / 3.0);
}

}  // namespace oem
