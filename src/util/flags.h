// Minimal command-line flag parsing for bench and example binaries:
// --name=value pairs with typed getters and defaults.  Unknown flags are
// ignored so that binaries also accept google-benchmark's own flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace oem {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace oem
