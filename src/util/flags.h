// Minimal command-line flag parsing for bench and example binaries:
// --name=value pairs with typed getters and defaults.
//
// Unknown or malformed arguments are hard errors: every binary calls
// validate_or_die() after reading its flags (getters mark a key as
// consumed), so a typo like --record=4096 fails fast instead of silently
// running with defaults.  Malformed numeric values are also reported.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace oem {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Non-ok iff any argument was malformed (not --key or --key=value, or a
  /// numeric getter hit a non-numeric value) or a parsed key was neither
  /// consumed by a getter nor listed in `also_allowed`.
  Status validate(std::initializer_list<const char*> also_allowed = {}) const;
  /// Prints the validation error + the known flags to stderr and exits(2).
  void validate_or_die(std::initializer_list<const char*> also_allowed = {}) const;

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> parse_errors_;
  // Getters are const by design; consumption tracking is bookkeeping.
  mutable std::set<std::string> consumed_;
  mutable std::vector<std::string> value_errors_;
};

}  // namespace oem
