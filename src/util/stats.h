// Small statistics toolkit used by tests and benchmarks: summary statistics,
// linear regression (for fitting I/O-vs-n growth shapes), chi-square
// uniformity test (for shuffle quality), and the paper's Chernoff-bound
// helpers (Appendix A) used to pick constants.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oem {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& xs);

/// Least-squares fit y = a + b*x; returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys);

/// Pearson chi-square statistic for observed counts vs a uniform expectation.
double chi_square_uniform(const std::vector<std::uint64_t>& observed);

/// Chernoff upper-tail bound of Lemma 22: Pr(X > gamma*mu) < 2^{-gamma*mu*log2(gamma/e)}
/// for a sum of independent 0-1 variables with mean <= mu and gamma > 2e.
double chernoff_upper_tail(double mu, double gamma);

/// Negative-binomial (sum of n geometrics with parameter p) upper-tail bound
/// of Lemma 23 at threshold (alpha + t) * n with alpha = 1/p.  Returns a
/// (piecewise) bound matching the five cases in the paper's appendix.
double geometric_sum_tail(double n, double p, double t);

}  // namespace oem
