// Integer math helpers shared across the library.
//
// All algorithms in the paper are parameterized by N (items), B (block size)
// and M (cache size); the derived quantities n = ceil(N/B), m = floor(M/B)
// and various integer logarithms appear everywhere, so we centralize them.
#pragma once

#include <cassert>
#include <cstdint>
#include <cmath>
#include <cstddef>

namespace oem {

/// Ceiling division for non-negative integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  assert(b != 0);
  return (a + b - 1) / b;
}

/// floor(log2(x)) for x >= 1; returns 0 for x <= 1.
constexpr unsigned floor_log2(std::uint64_t x) {
  unsigned r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1; returns 0 for x <= 1.
constexpr unsigned ceil_log2(std::uint64_t x) {
  if (x <= 1) return 0;
  return floor_log2(x - 1) + 1;
}

/// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  if (x <= 1) return 1;
  return std::uint64_t{1} << ceil_log2(x);
}

constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// log base m of n, as used in the paper's O((N/B) log_{M/B}(N/B)) bounds.
/// Clamped below at 1 so it is safe to divide by.
inline double log_base(double n, double m) {
  if (n <= 1.0) return 1.0;
  if (m <= 2.0) m = 2.0;
  double v = std::log(n) / std::log(m);
  return v < 1.0 ? 1.0 : v;
}

/// Iterated logarithm log*(x): number of times log2 must be applied before
/// the value drops to <= 1.  Used by the Theorem 9 bound.
constexpr unsigned log_star(double x) {
  unsigned r = 0;
  while (x > 1.0) {
    // constexpr-friendly log2 via loop on the exponent is overkill; this
    // function is only called with small arguments at runtime.
    x = std::log2(x);
    ++r;
    if (r > 16) break;  // tower of twos exceeds any conceivable input
  }
  return r;
}

/// Integer k-th root (floor), for small k (2..8).  Used for the paper's
/// n^{1/2}, (M/B)^{1/4}, N^{3/4}-style parameter derivations.
inline std::uint64_t iroot(std::uint64_t x, unsigned k) {
  assert(k >= 1);
  if (k == 1 || x <= 1) return x;
  auto r = static_cast<std::uint64_t>(std::floor(std::pow(static_cast<double>(x), 1.0 / k)));
  // Fix up floating point error.
  auto pw = [&](std::uint64_t v) {
    long double p = 1;
    for (unsigned i = 0; i < k; ++i) p *= static_cast<long double>(v);
    return p;
  };
  while (r > 0 && pw(r) > static_cast<long double>(x)) --r;
  while (pw(r + 1) <= static_cast<long double>(x)) ++r;
  return r;
}

/// floor(x^{p/q}) for non-negative x; used for N^{3/4}, m^{3/4} etc.
inline std::uint64_t ipow_frac(std::uint64_t x, unsigned p, unsigned q) {
  long double v = std::pow(static_cast<long double>(x),
                           static_cast<long double>(p) / static_cast<long double>(q));
  return static_cast<std::uint64_t>(std::floor(v + 1e-9L));
}

}  // namespace oem
