#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

namespace oem {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      parse_errors_.push_back("unexpected argument '" + arg +
                              "' (flags are --name or --name=value)");
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    const std::string key = eq == std::string::npos ? body : body.substr(0, eq);
    if (key.empty()) {
      parse_errors_.push_back("malformed argument '" + arg + "'");
      continue;
    }
    kv_[key] = eq == std::string::npos ? "true" : body.substr(eq + 1);
  }
}

bool Flags::has(const std::string& name) const {
  consumed_.insert(name);
  return kv_.count(name) > 0;
}

std::string Flags::get(const std::string& name, const std::string& def) const {
  consumed_.insert(name);
  auto it = kv_.find(name);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  consumed_.insert(name);
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
  if (end == it->second.c_str() || *end != '\0')
    value_errors_.push_back("--" + name + "=" + it->second + " is not an integer");
  return v;
}

std::uint64_t Flags::get_u64(const std::string& name, std::uint64_t def) const {
  consumed_.insert(name);
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
  if (end == it->second.c_str() || *end != '\0')
    value_errors_.push_back("--" + name + "=" + it->second + " is not an integer");
  return v;
}

double Flags::get_double(const std::string& name, double def) const {
  consumed_.insert(name);
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0')
    value_errors_.push_back("--" + name + "=" + it->second + " is not a number");
  return v;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  consumed_.insert(name);
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  if (it->second == "true" || it->second == "1" || it->second == "yes") return true;
  if (it->second == "false" || it->second == "0" || it->second == "no") return false;
  value_errors_.push_back("--" + name + "=" + it->second + " is not a boolean");
  return def;
}

Status Flags::validate(std::initializer_list<const char*> also_allowed) const {
  std::string err;
  for (const std::string& e : parse_errors_) err += (err.empty() ? "" : "; ") + e;
  for (const std::string& e : value_errors_) err += (err.empty() ? "" : "; ") + e;
  std::set<std::string> allowed = consumed_;
  for (const char* name : also_allowed) allowed.insert(name);
  for (const auto& [key, value] : kv_) {
    if (!allowed.count(key))
      err += (err.empty() ? "" : "; ") + ("unknown flag --" + key);
  }
  if (err.empty()) return Status::Ok();
  return Status::InvalidArgument(err);
}

void Flags::validate_or_die(std::initializer_list<const char*> also_allowed) const {
  const Status st = validate(also_allowed);
  if (st.ok()) return;
  std::fprintf(stderr, "flag error: %s\n", st.message().c_str());
  std::set<std::string> allowed = consumed_;
  for (const char* name : also_allowed) allowed.insert(name);
  if (!allowed.empty()) {
    std::string known;
    for (const std::string& name : allowed)
      known += (known.empty() ? "--" : ", --") + name;
    std::fprintf(stderr, "known flags: %s\n", known.c_str());
  }
  std::exit(2);
}

}  // namespace oem
