#include "util/flags.h"

#include <cstdlib>

namespace oem {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg] = "true";
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::has(const std::string& name) const { return kv_.count(name) > 0; }

std::string Flags::get(const std::string& name, const std::string& def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 0);
}

std::uint64_t Flags::get_u64(const std::string& name, std::uint64_t def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 0);
}

double Flags::get_double(const std::string& name, double def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace oem
