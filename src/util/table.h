// Markdown-ish table printer for the benchmark harness.  Every bench binary
// prints its experiment as aligned rows so EXPERIMENTS.md can quote them
// directly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace oem {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision, integers as-is.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(std::uint64_t v);
  static std::string fmt(std::int64_t v);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace oem
