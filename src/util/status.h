// Status type for the randomized algorithms.
//
// Every algorithm in the paper succeeds "with (very) high probability"; the
// residual failure events (an IBLT decode that does not fully peel, a
// thinning pass that leaves a region overcrowded, a sample that overflows its
// capacity bound) are surfaced to callers as a non-ok Status instead of being
// hidden.  Benchmarks report measured failure rates against the paper's
// 1 - (N/B)^{-d} claims.
#pragma once

#include <string>
#include <utility>

namespace oem {

enum class StatusCode {
  kOk = 0,
  kWhpFailure,        // a low-probability randomized step failed; retry with a new seed
  kInvalidArgument,   // caller violated a precondition (a bug, not bad luck)
  kCapacityExceeded,  // private-cache budget M would be exceeded
};

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status(); }
  static Status WhpFailure(std::string msg) {
    return Status(StatusCode::kWhpFailure, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Keep the first error when combining step statuses.
  Status& Update(const Status& other) {
    if (ok() && !other.ok()) *this = other;
    return *this;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

#define OEM_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::oem::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace oem
