// Status / Result types for the randomized algorithms and the storage layer.
//
// Every algorithm in the paper succeeds "with (very) high probability"; the
// residual failure events (an IBLT decode that does not fully peel, a
// thinning pass that leaves a region overcrowded, a sample that overflows its
// capacity bound) are surfaced to callers as a non-ok Status instead of being
// hidden.  Benchmarks report measured failure rates against the paper's
// 1 - (N/B)^{-d} claims.
//
// Result<T> is the status-or-value companion used by the oem::Session facade:
// a call either yields a T or a non-ok Status, never both.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

namespace oem {

enum class StatusCode {
  kOk = 0,
  kWhpFailure,        // a low-probability randomized step failed; retry with a new seed
  kInvalidArgument,   // caller violated a precondition (a bug, not bad luck)
  kCapacityExceeded,  // private-cache budget M would be exceeded
  kIo,                // the storage backend failed (file error, short read, ...)
  kIntegrity,         // authentication/freshness check failed: the server is
                      // tampering (or rolled back state).  NEVER retried --
                      // retrying through a malicious server only hands it
                      // more chances; callers must fail closed.
  kTimeout,           // a wire deadline expired (dead or byzantine-slow peer).
                      // Retryable like kIo: the connection is torn down and
                      // the next attempt reconnects, so a slow-loris server
                      // degrades to bounded retries instead of a hang.
};

/// The codes RetryPolicy (and the AsyncBackend's I/O-thread twin) may re-issue
/// an op for: transient transport/storage faults.  kIntegrity is deliberately
/// NOT here -- a failed MAC is proof of tampering, not bad luck.
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kIo || code == StatusCode::kTimeout;
}

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kWhpFailure: return "WHP_FAILURE";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kCapacityExceeded: return "CAPACITY_EXCEEDED";
    case StatusCode::kIo: return "IO";
    case StatusCode::kIntegrity: return "INTEGRITY";
    case StatusCode::kTimeout: return "TIMEOUT";
  }
  return "UNKNOWN";
}

/// Thrown by the storage plumbing (BlockDevice::backend_fail) when a block
/// fails authentication, so integrity violations keep their identity through
/// the exception seam instead of degenerating into a retryable kIo.  The
/// Session facade catches this ahead of std::runtime_error and maps it back
/// to StatusCode::kIntegrity.
class IntegrityError : public std::runtime_error {
 public:
  explicit IntegrityError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by BlockDevice::backend_fail when a wire deadline expired and the
/// bounded retries could not recover.  Like IntegrityError it keeps its
/// identity through the exception seam: the Session facade maps it back to
/// StatusCode::kTimeout so callers can tell a dead peer from a failed disk.
class TimeoutError : public std::runtime_error {
 public:
  explicit TimeoutError(const std::string& what) : std::runtime_error(what) {}
};

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status(); }
  static Status WhpFailure(std::string msg) {
    return Status(StatusCode::kWhpFailure, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Io(std::string msg) { return Status(StatusCode::kIo, std::move(msg)); }
  static Status Integrity(std::string msg) {
    return Status(StatusCode::kIntegrity, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!msg_.empty()) {
      s += ": ";
      s += msg_;
    }
    return s;
  }

  /// Keep the first error when combining step statuses.
  Status& Update(const Status& other) {
    if (ok() && !other.ok()) *this = other;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, const Status& st) {
    return os << st.ToString();
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Status-or-value.  Exactly one of the two is present: a Result constructed
/// from a T is ok(); a Result constructed from a non-ok Status carries the
/// error (constructing one from an ok Status is a caller bug and asserts).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    assert(!status_.ok() && "Result<T> from an ok Status carries no value");
    if (status_.ok())
      status_ = Status::InvalidArgument("Result constructed from ok Status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  template <typename U>
  T value_or(U&& def) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(def));
  }

 private:
  Status status_;  // ok() when a value is present
  std::optional<T> value_;
};

#define OEM_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::oem::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace oem
