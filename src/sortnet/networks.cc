#include "sortnet/networks.h"

namespace oem::sortnet {

std::uint64_t bitonic_comparator_count(std::uint64_t n) {
  std::uint64_t count = 0;
  bitonic_schedule(n, [&](std::uint64_t, std::uint64_t, bool) { ++count; });
  return count;
}

std::uint64_t odd_even_comparator_count(std::uint64_t n) {
  std::uint64_t count = 0;
  odd_even_schedule(n, [&](std::uint64_t, std::uint64_t, bool) { ++count; });
  return count;
}

}  // namespace oem::sortnet
