// In-memory data-oblivious sorting networks.
//
// The paper's toolbox repeatedly invokes deterministic oblivious sorting
// (Lemma 2) on small (cache-sized or polylog-sized) subproblems.  We provide
// the two classic practical networks -- bitonic sort and Batcher's odd-even
// merge sort -- as comparator *schedules* (a visitor over (i, j) pairs), so
// the same schedule can drive in-RAM compare-exchanges or external-memory
// merge-split operations on whole runs of blocks (see external_sort.h).
//
// Both networks require a power-of-two size; the `*_any` wrappers pad with a
// caller-supplied maximum element.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "util/math.h"

namespace oem::sortnet {

/// Visits every compare-exchange of the iterative bitonic sorting network on
/// `n` wires (n a power of two) in execution order.
/// fn(i, j, ascending): compare wires i < j; if ascending, route the smaller
/// value to i, else to j.
template <typename Fn>
void bitonic_schedule(std::uint64_t n, Fn&& fn) {
  assert(is_pow2(n));
  for (std::uint64_t k = 2; k <= n; k <<= 1) {
    for (std::uint64_t j = k >> 1; j > 0; j >>= 1) {
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t l = i ^ j;
        if (l > i) fn(i, l, (i & k) == 0);
      }
    }
  }
}

/// Batcher odd-even merge sort schedule on n wires (power of two).  All
/// compare-exchanges are ascending.
template <typename Fn>
void odd_even_schedule(std::uint64_t n, Fn&& fn) {
  assert(is_pow2(n));
  for (std::uint64_t p = 1; p < n; p <<= 1) {
    for (std::uint64_t k = p; k >= 1; k >>= 1) {
      for (std::uint64_t j = k % p; j + k < n; j += 2 * k) {
        for (std::uint64_t i = 0; i < k; ++i) {
          const std::uint64_t a = i + j;
          const std::uint64_t b = i + j + k;
          if (a / (2 * p) == b / (2 * p)) fn(a, b, true);
        }
      }
    }
  }
}

/// Number of comparators in each network (for the complexity tests).
std::uint64_t bitonic_comparator_count(std::uint64_t n);
std::uint64_t odd_even_comparator_count(std::uint64_t n);

/// Sort a power-of-two span in place with the bitonic network.
template <typename T, typename Less>
void bitonic_sort_pow2(std::span<T> v, Less less) {
  bitonic_schedule(v.size(), [&](std::uint64_t i, std::uint64_t j, bool asc) {
    const bool swap = asc ? less(v[j], v[i]) : less(v[i], v[j]);
    if (swap) std::swap(v[i], v[j]);
  });
}

/// Sort an arbitrary-size vector by padding with `pad_max` (an element >=
/// every real element) up to the next power of two, then truncating.
template <typename T, typename Less>
void bitonic_sort_any(std::vector<T>& v, Less less, const T& pad_max) {
  const std::size_t n = v.size();
  if (n <= 1) return;
  const std::size_t np = static_cast<std::size_t>(next_pow2(n));
  v.resize(np, pad_max);
  bitonic_sort_pow2(std::span<T>(v), less);
  v.resize(n);
}

template <typename T, typename Less>
void odd_even_sort_pow2(std::span<T> v, Less less) {
  odd_even_schedule(v.size(), [&](std::uint64_t i, std::uint64_t j, bool) {
    if (less(v[j], v[i])) std::swap(v[i], v[j]);
  });
}

template <typename T, typename Less>
void odd_even_sort_any(std::vector<T>& v, Less less, const T& pad_max) {
  const std::size_t n = v.size();
  if (n <= 1) return;
  const std::size_t np = static_cast<std::size_t>(next_pow2(n));
  v.resize(np, pad_max);
  odd_even_sort_pow2(std::span<T>(v), less);
  v.resize(n);
}

}  // namespace oem::sortnet
