#include "sortnet/external_sort.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <vector>

#include "sortnet/networks.h"
#include "util/math.h"

namespace oem::sortnet {

namespace {

/// Read `count` blocks of `a` starting at `first` into `out` (appended).
void read_run(Client& c, const ExtArray& a, std::uint64_t first, std::uint64_t count,
              std::vector<Record>& out) {
  const std::size_t old = out.size();
  out.resize(old + static_cast<std::size_t>(count) * c.B());
  c.read_blocks(a, first, count, std::span<Record>(out).subspan(old));
}

void write_run(Client& c, const ExtArray& a, std::uint64_t first, std::uint64_t count,
               const std::vector<Record>& data, std::size_t offset) {
  c.write_blocks(a, first, count,
                 std::span<const Record>(data).subspan(
                     offset, static_cast<std::size_t>(count) * c.B()));
}

/// Merge-split comparator on two runs of `run_blocks` blocks each: read both,
/// merge privately, write lower half to run `lo` and upper half to run `hi`
/// (swapped when descending).
void merge_split(Client& c, const ExtArray& a, std::uint64_t run_blocks,
                 std::uint64_t run_i, std::uint64_t run_j, bool ascending) {
  const std::size_t B = c.B();
  const std::size_t run_records = static_cast<std::size_t>(run_blocks) * B;
  CacheLease lease(c.cache(), 2 * run_records);
  std::vector<Record> buf;
  buf.reserve(2 * run_records);
  read_run(c, a, run_i * run_blocks, run_blocks, buf);
  read_run(c, a, run_j * run_blocks, run_blocks, buf);
  // Both runs are individually sorted; a single in-place merge suffices.
  std::inplace_merge(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(run_records),
                     buf.end(), RecordLess{});
  if (ascending) {
    write_run(c, a, run_i * run_blocks, run_blocks, buf, 0);
    write_run(c, a, run_j * run_blocks, run_blocks, buf, run_records);
  } else {
    write_run(c, a, run_j * run_blocks, run_blocks, buf, 0);
    write_run(c, a, run_i * run_blocks, run_blocks, buf, run_records);
  }
}

}  // namespace

void ext_oblivious_sort(Client& client, const ExtArray& a, const ExtSortOptions& opts) {
  const std::uint64_t n = a.num_blocks();
  if (n <= 1) {
    if (n == 1) sort_region_in_cache(client, a, 0, 1);
    return;
  }
  const std::uint64_t m = client.m();
  std::uint64_t run_blocks = opts.run_blocks != 0 ? opts.run_blocks : std::max<std::uint64_t>(1, m / 2);
  run_blocks = std::min(run_blocks, n);

  const std::uint64_t runs = ceil_div(n, run_blocks);
  const std::uint64_t runs_p2 = next_pow2(runs);

  // Operate on the array itself when it is exactly runs_p2 * run_blocks
  // blocks; otherwise sort in a padded scratch array and copy back.
  const std::uint64_t padded_blocks = runs_p2 * run_blocks;
  ExtArray work = a;
  bool scratch = false;
  if (padded_blocks != n) {
    scratch = true;
    work = client.alloc_blocks(padded_blocks, Client::Init::kUninit);
    BlockBuf buf;
    CacheLease lease(client.cache(), client.B());
    const BlockBuf empty = make_empty_block(client.B());
    for (std::uint64_t i = 0; i < padded_blocks; ++i) {
      if (i < n) {
        client.read_block(a, i, buf);
        client.write_block(work, i, buf);
      } else {
        client.write_block(work, i, empty);
      }
    }
  }

  // Phase 1: sort each run privately.
  for (std::uint64_t r = 0; r < runs_p2; ++r)
    sort_region_in_cache(client, work, r * run_blocks, run_blocks);

  // Phase 2: sorting network over runs with merge-split comparators.
  auto comparator = [&](std::uint64_t i, std::uint64_t j, bool asc) {
    merge_split(client, work, run_blocks, i, j, asc);
  };
  if (opts.odd_even) {
    odd_even_schedule(runs_p2, comparator);
  } else {
    bitonic_schedule(runs_p2, comparator);
  }

  if (scratch) {
    BlockBuf buf;
    CacheLease lease(client.cache(), client.B());
    for (std::uint64_t i = 0; i < n; ++i) {
      client.read_block(work, i, buf);
      client.write_block(a, i, buf);
    }
    client.release(work);
  }
}

void sort_region_in_cache(Client& client, const ExtArray& a, std::uint64_t first_block,
                          std::uint64_t count_blocks) {
  sort_region_in_cache(client, a, first_block, count_blocks,
                       [](const Record& x, const Record& y) { return RecordLess{}(x, y); });
}

void sort_region_in_cache(Client& client, const ExtArray& a, std::uint64_t first_block,
                          std::uint64_t count_blocks,
                          const std::function<bool(const Record&, const Record&)>& less) {
  if (count_blocks == 0) return;
  assert(first_block + count_blocks <= a.num_blocks());
  const std::size_t B = client.B();
  CacheLease lease(client.cache(), count_blocks * B);
  std::vector<Record> buf;
  buf.reserve(static_cast<std::size_t>(count_blocks) * B);
  read_run(client, a, first_block, count_blocks, buf);
  std::stable_sort(buf.begin(), buf.end(), less);
  write_run(client, a, first_block, count_blocks, buf, 0);
}

namespace {

/// Sort the units inside an in-cache buffer of whole units by their first
/// record (RecordLess).  Stable so that differential tests are deterministic.
void sort_units_in_buffer(std::vector<Record>& buf, std::size_t unit_records) {
  const std::size_t units = buf.size() / unit_records;
  std::vector<std::size_t> order(units);
  for (std::size_t u = 0; u < units; ++u) order[u] = u;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return RecordLess{}(buf[x * unit_records], buf[y * unit_records]);
  });
  std::vector<Record> out(buf.size());
  for (std::size_t u = 0; u < units; ++u) {
    std::copy(buf.begin() + static_cast<std::ptrdiff_t>(order[u] * unit_records),
              buf.begin() + static_cast<std::ptrdiff_t>((order[u] + 1) * unit_records),
              out.begin() + static_cast<std::ptrdiff_t>(u * unit_records));
  }
  buf = std::move(out);
}

/// Merge two sorted runs of units into lower/upper halves.
void unit_merge_split(Client& c, const ExtArray& a, std::uint64_t run_blocks,
                      std::size_t unit_records, std::uint64_t run_i,
                      std::uint64_t run_j, bool ascending) {
  const std::size_t B = c.B();
  const std::size_t run_records = static_cast<std::size_t>(run_blocks) * B;
  CacheLease lease(c.cache(), 2 * run_records);
  std::vector<Record> lo, hi;
  lo.reserve(run_records);
  hi.reserve(run_records);
  read_run(c, a, run_i * run_blocks, run_blocks, lo);
  read_run(c, a, run_j * run_blocks, run_blocks, hi);
  // Merge at unit granularity (both runs unit-sorted).
  std::vector<Record> merged(2 * run_records);
  const std::size_t units = run_records / unit_records;
  std::size_t x = 0, y = 0, o = 0;
  auto take = [&](std::vector<Record>& src, std::size_t& idx) {
    std::copy(src.begin() + static_cast<std::ptrdiff_t>(idx * unit_records),
              src.begin() + static_cast<std::ptrdiff_t>((idx + 1) * unit_records),
              merged.begin() + static_cast<std::ptrdiff_t>(o * unit_records));
    ++idx;
    ++o;
  };
  while (x < units && y < units) {
    if (RecordLess{}(hi[y * unit_records], lo[x * unit_records])) take(hi, y);
    else take(lo, x);
  }
  while (x < units) take(lo, x);
  while (y < units) take(hi, y);
  if (ascending) {
    write_run(c, a, run_i * run_blocks, run_blocks, merged, 0);
    write_run(c, a, run_j * run_blocks, run_blocks, merged, run_records);
  } else {
    write_run(c, a, run_j * run_blocks, run_blocks, merged, 0);
    write_run(c, a, run_i * run_blocks, run_blocks, merged, run_records);
  }
}

}  // namespace

void ext_oblivious_unit_sort(Client& client, const ExtArray& a,
                             std::uint64_t unit_blocks, const ExtSortOptions& opts) {
  assert(unit_blocks >= 1);
  const std::uint64_t n = a.num_blocks();
  assert(n % unit_blocks == 0);
  const std::uint64_t units = n / unit_blocks;
  if (units <= 1) return;
  const std::size_t B = client.B();
  const std::size_t unit_records = static_cast<std::size_t>(unit_blocks) * B;
  const std::uint64_t m = client.m();

  // Runs are whole numbers of units; two runs must fit in cache.
  std::uint64_t run_units =
      std::max<std::uint64_t>(1, (opts.run_blocks != 0 ? opts.run_blocks : m / 2) / unit_blocks);
  run_units = std::min(run_units, units);
  const std::uint64_t run_blocks = run_units * unit_blocks;
  const std::uint64_t runs = ceil_div(units, run_units);
  const std::uint64_t runs_p2 = next_pow2(runs);
  const std::uint64_t padded_blocks = runs_p2 * run_blocks;

  ExtArray work = a;
  bool scratch = false;
  if (padded_blocks != n) {
    scratch = true;
    work = client.alloc_blocks(padded_blocks, Client::Init::kUninit);
    BlockBuf buf;
    CacheLease lease(client.cache(), B);
    const BlockBuf empty = make_empty_block(B);  // empty key: pads sort last
    for (std::uint64_t i = 0; i < padded_blocks; ++i) {
      if (i < n) {
        client.read_block(a, i, buf);
        client.write_block(work, i, buf);
      } else {
        client.write_block(work, i, empty);
      }
    }
  }

  // Phase 1: unit-sort each run privately.
  for (std::uint64_t r = 0; r < runs_p2; ++r) {
    CacheLease lease(client.cache(), run_blocks * B);
    std::vector<Record> buf;
    buf.reserve(static_cast<std::size_t>(run_blocks) * B);
    read_run(client, work, r * run_blocks, run_blocks, buf);
    sort_units_in_buffer(buf, unit_records);
    write_run(client, work, r * run_blocks, run_blocks, buf, 0);
  }

  // Phase 2: network over runs with unit-granularity merge-split.
  auto comparator = [&](std::uint64_t i, std::uint64_t j, bool asc) {
    unit_merge_split(client, work, run_blocks, unit_records, i, j, asc);
  };
  if (opts.odd_even) {
    odd_even_schedule(runs_p2, comparator);
  } else {
    bitonic_schedule(runs_p2, comparator);
  }

  if (scratch) {
    BlockBuf buf;
    CacheLease lease(client.cache(), B);
    for (std::uint64_t i = 0; i < n; ++i) {
      client.read_block(work, i, buf);
      client.write_block(a, i, buf);
    }
    client.release(work);
  }
}

std::uint64_t ext_sort_predicted_ios(std::uint64_t n_blocks, std::uint64_t m_blocks,
                                     const ExtSortOptions& opts) {
  if (n_blocks <= 1) return 2 * n_blocks;
  std::uint64_t run_blocks =
      opts.run_blocks != 0 ? opts.run_blocks : std::max<std::uint64_t>(1, m_blocks / 2);
  run_blocks = std::min(run_blocks, n_blocks);
  const std::uint64_t runs = ceil_div(n_blocks, run_blocks);
  const std::uint64_t runs_p2 = next_pow2(runs);
  const std::uint64_t padded = runs_p2 * run_blocks;
  std::uint64_t io = 0;
  if (padded != n_blocks) io += n_blocks + padded + n_blocks + n_blocks;  // copy in/out
  io += 2 * padded;  // run formation
  const std::uint64_t comparators = opts.odd_even ? odd_even_comparator_count(runs_p2)
                                                  : bitonic_comparator_count(runs_p2);
  io += comparators * 4 * run_blocks;  // each merge-split: 2 reads + 2 writes per run
  return io;
}

}  // namespace oem::sortnet
