#include "sortnet/external_sort.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <vector>

#include "extmem/pipeline.h"
#include "sortnet/networks.h"
#include "util/math.h"

namespace oem::sortnet {

namespace {

/// Read `count` blocks of `a` starting at `first` into `out` (appended).
void read_run(Client& c, const ExtArray& a, std::uint64_t first, std::uint64_t count,
              std::vector<Record>& out) {
  const std::size_t old = out.size();
  out.resize(old + static_cast<std::size_t>(count) * c.B());
  c.read_blocks(a, first, count, std::span<Record>(out).subspan(old));
}

void write_run(Client& c, const ExtArray& a, std::uint64_t first, std::uint64_t count,
               const std::vector<Record>& data, std::size_t offset) {
  c.write_blocks(a, first, count,
                 std::span<const Record>(data).subspan(
                     offset, static_cast<std::size_t>(count) * c.B()));
}

/// One comparator of the run-level sorting network.
struct RunComparator {
  std::uint64_t i = 0, j = 0;
  bool asc = true;
};

/// Materialize the network as an explicit schedule so the pipeline can look
/// one comparator ahead (the schedule is a public function of the run count).
std::vector<RunComparator> run_schedule(std::uint64_t runs_p2, bool odd_even) {
  std::vector<RunComparator> s;
  auto push = [&](std::uint64_t i, std::uint64_t j, bool asc) {
    s.push_back({i, j, asc});
  };
  if (odd_even) odd_even_schedule(runs_p2, push);
  else bitonic_schedule(runs_p2, push);
  return s;
}

/// Pure per-chunk copy: output block j is gathered input block j when
/// covered, an explicit empty block otherwise (both copy scans below share
/// it; the pad case simply gathers fewer blocks than it scatters).
ParallelCompute chunked_copy_or_empty(std::size_t B) {
  return {[B](std::uint64_t, std::span<const Record> in, std::uint64_t first_block,
              std::span<Record> out) {
            const std::size_t k = out.size() / B;
            for (std::size_t b = 0; b < k; ++b) {
              const std::size_t src_off = (first_block + b) * B;
              if (src_off + B <= in.size())
                std::copy_n(in.begin() + static_cast<std::ptrdiff_t>(src_off), B,
                            out.begin() + static_cast<std::ptrdiff_t>(b * B));
              else  // padding blocks sort last (empty sentinel)
                std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(b * B), B,
                            Record{});
            }
          },
          0};
}

/// Copy blocks [0, n) of `src` into `dst` and pad dst[n, padded) with empty
/// blocks -- the scratch copy-in of the padded sort, as a chunked pipeline.
void copy_pad_blocks(Client& c, const ExtArray& src, std::uint64_t n,
                     const ExtArray& dst, std::uint64_t padded) {
  const std::uint64_t W = std::max<std::uint64_t>(1, c.io_batch_blocks());
  const std::uint64_t chunks = padded == 0 ? 0 : ceil_div(padded, W);
  run_block_pipeline(
      c, chunks,
      [&](std::uint64_t t, PipelinePass& io) {
        io.read_from = &src;
        io.write_to = &dst;
        const std::uint64_t first = t * W;
        const std::uint64_t k = std::min(W, padded - first);
        for (std::uint64_t j = 0; j < k; ++j) {
          if (first + j < n) io.reads.push_back(first + j);
          io.writes.push_back(first + j);
        }
      },
      chunked_copy_or_empty(c.B()));
}

/// Copy blocks [0, n) of `src` into `dst` (same-size chunked pipeline scan).
void copy_back_blocks(Client& c, const ExtArray& src, const ExtArray& dst,
                      std::uint64_t n) {
  const std::uint64_t W = std::max<std::uint64_t>(1, c.io_batch_blocks());
  const std::uint64_t chunks = n == 0 ? 0 : ceil_div(n, W);
  run_block_pipeline(
      c, chunks,
      [&](std::uint64_t t, PipelinePass& io) {
        io.read_from = &src;
        io.write_to = &dst;
        const std::uint64_t first = t * W;
        const std::uint64_t k = std::min(W, n - first);
        for (std::uint64_t j = 0; j < k; ++j) {
          io.reads.push_back(first + j);
          io.writes.push_back(first + j);
        }
      },
      chunked_copy_or_empty(c.B()));
}

/// Phase 1 of both sorts: privately sort every run of `run_blocks` blocks of
/// `work`, pipelined so run r+1 streams in while run r sorts.
void sort_runs(Client& c, const ExtArray& work, std::uint64_t runs,
               std::uint64_t run_blocks,
               const std::function<void(std::span<Record>)>& sort_buf) {
  run_block_pipeline(
      c, runs,
      [&](std::uint64_t r, PipelinePass& io) {
        io.read_from = &work;
        io.write_to = &work;
        for (std::uint64_t j = 0; j < run_blocks; ++j) {
          io.reads.push_back(r * run_blocks + j);
          io.writes.push_back(r * run_blocks + j);
        }
      },
      [&](std::uint64_t, std::span<Record> buf) { sort_buf(buf); });
}

/// Phase 2: drive the comparator schedule through the pipeline.  Each pass
/// gathers both runs, merges privately (chunk-parallel on the compute pool),
/// and scatters the lower half to the ascending target run -- encoding the
/// comparator direction purely in the scatter list.
void run_network(Client& c, const ExtArray& work, std::uint64_t run_blocks,
                 const std::vector<RunComparator>& schedule,
                 const ParallelCompute& merge) {
  run_block_pipeline(
      c, schedule.size(),
      [&](std::uint64_t t, PipelinePass& io) {
        const RunComparator& cmp = schedule[t];
        io.read_from = &work;
        io.write_to = &work;
        for (std::uint64_t b = 0; b < run_blocks; ++b)
          io.reads.push_back(cmp.i * run_blocks + b);
        for (std::uint64_t b = 0; b < run_blocks; ++b)
          io.reads.push_back(cmp.j * run_blocks + b);
        const std::uint64_t lo = cmp.asc ? cmp.i : cmp.j;
        const std::uint64_t hi = cmp.asc ? cmp.j : cmp.i;
        for (std::uint64_t b = 0; b < run_blocks; ++b)
          io.writes.push_back(lo * run_blocks + b);
        for (std::uint64_t b = 0; b < run_blocks; ++b)
          io.writes.push_back(hi * run_blocks + b);
      },
      merge);
}

/// Chunked merge of the two sorted runs gathered back to back in `in`: the
/// merge-path split (binary search over the cross diagonal) finds where
/// output offset k = first_block * B begins, then each chunk merges its own
/// slice serially.  The split is the unique one a stable merge (run-0 wins
/// ties) produces, so the concatenated chunks are byte-identical to one
/// serial std::inplace_merge at any chunking.
ParallelCompute chunked_run_merge(std::size_t B, std::size_t run_records) {
  return {[B, run_records](std::uint64_t, std::span<const Record> in,
                           std::uint64_t first_block, std::span<Record> out) {
            const std::span<const Record> a = in.first(run_records);
            const std::span<const Record> b = in.subspan(run_records);
            const std::size_t k = static_cast<std::size_t>(first_block) * B;
            std::size_t lo = k > b.size() ? k - b.size() : 0;
            std::size_t hi = std::min(k, a.size());
            while (lo < hi) {
              const std::size_t i = lo + (hi - lo) / 2;
              const std::size_t j = k - i;
              if (j > 0 && !RecordLess{}(b[j - 1], a[i])) lo = i + 1;
              else hi = i;
            }
            std::size_t i = lo, j = k - lo;
            for (Record& r : out) {
              const bool take_b =
                  i >= a.size() || (j < b.size() && RecordLess{}(b[j], a[i]));
              r = take_b ? b[j++] : a[i++];
            }
          },
          0};
}

/// Unit-granularity counterpart: runs are sequences of whole units ordered by
/// their first record, so the merge path walks unit indices and each chunk
/// copies whole units.  Chunks must be unit-aligned -- the call site passes a
/// grain that is a multiple of unit_blocks.
ParallelCompute chunked_unit_merge(Client& c, std::uint64_t run_blocks,
                                   std::uint64_t unit_blocks,
                                   std::size_t unit_records) {
  const std::size_t B = c.B();
  const std::size_t run_records = static_cast<std::size_t>(run_blocks) * B;
  const std::size_t lanes = std::max<std::size_t>(1, c.compute_pool().threads());
  const std::uint64_t out_blocks = 2 * run_blocks;
  const std::size_t grain =
      static_cast<std::size_t>(ceil_div(ceil_div(out_blocks, lanes), unit_blocks) *
                               unit_blocks);
  return {[run_records, unit_records, unit_blocks](
              std::uint64_t, std::span<const Record> in, std::uint64_t first_block,
              std::span<Record> out) {
            const std::size_t units = run_records / unit_records;
            auto af = [&](std::size_t i) -> const Record& {
              return in[i * unit_records];
            };
            auto bf = [&](std::size_t j) -> const Record& {
              return in[run_records + j * unit_records];
            };
            const std::size_t k = static_cast<std::size_t>(first_block / unit_blocks);
            std::size_t lo = k > units ? k - units : 0;
            std::size_t hi = std::min(k, units);
            while (lo < hi) {
              const std::size_t i = lo + (hi - lo) / 2;
              const std::size_t j = k - i;
              if (j > 0 && !RecordLess{}(bf(j - 1), af(i))) lo = i + 1;
              else hi = i;
            }
            std::size_t i = lo, j = k - lo;
            const std::size_t out_units = out.size() / unit_records;
            for (std::size_t o = 0; o < out_units; ++o) {
              const bool take_b = i >= units || (j < units && RecordLess{}(bf(j), af(i)));
              const std::size_t src =
                  take_b ? run_records + (j++) * unit_records : (i++) * unit_records;
              std::copy_n(in.begin() + static_cast<std::ptrdiff_t>(src), unit_records,
                          out.begin() + static_cast<std::ptrdiff_t>(o * unit_records));
            }
          },
          grain};
}

}  // namespace

void ext_oblivious_sort(Client& client, const ExtArray& a, const ExtSortOptions& opts) {
  const std::uint64_t n = a.num_blocks();
  if (n <= 1) {
    if (n == 1) sort_region_in_cache(client, a, 0, 1);
    return;
  }
  const std::uint64_t m = client.m();
  std::uint64_t run_blocks = opts.run_blocks != 0 ? opts.run_blocks : std::max<std::uint64_t>(1, m / 2);
  run_blocks = std::min(run_blocks, n);

  const std::uint64_t runs = ceil_div(n, run_blocks);
  const std::uint64_t runs_p2 = next_pow2(runs);

  // Operate on the array itself when it is exactly runs_p2 * run_blocks
  // blocks; otherwise sort in a padded scratch array and copy back.
  const std::uint64_t padded_blocks = runs_p2 * run_blocks;
  ExtArray work = a;
  bool scratch = false;
  if (padded_blocks != n) {
    scratch = true;
    work = client.alloc_blocks(padded_blocks, Client::Init::kUninit);
    copy_pad_blocks(client, a, n, work, padded_blocks);
  }

  // Phase 1: sort each run privately.
  const std::size_t run_records = static_cast<std::size_t>(run_blocks) * client.B();
  sort_runs(client, work, runs_p2, run_blocks, [](std::span<Record> buf) {
    std::stable_sort(buf.begin(), buf.end(), RecordLess{});
  });

  // Phase 2: sorting network over runs with merge-split comparators.  Both
  // runs are individually sorted; a single (chunk-parallel) merge suffices.
  run_network(client, work, run_blocks, run_schedule(runs_p2, opts.odd_even),
              chunked_run_merge(client.B(), run_records));

  if (scratch) {
    copy_back_blocks(client, work, a, n);
    client.release(work);
  }
}

void sort_region_in_cache(Client& client, const ExtArray& a, std::uint64_t first_block,
                          std::uint64_t count_blocks) {
  sort_region_in_cache(client, a, first_block, count_blocks,
                       [](const Record& x, const Record& y) { return RecordLess{}(x, y); });
}

void sort_region_in_cache(Client& client, const ExtArray& a, std::uint64_t first_block,
                          std::uint64_t count_blocks,
                          const std::function<bool(const Record&, const Record&)>& less) {
  if (count_blocks == 0) return;
  assert(first_block + count_blocks <= a.num_blocks());
  const std::size_t B = client.B();
  CacheLease lease(client.cache(), count_blocks * B);
  std::vector<Record> buf;
  buf.reserve(static_cast<std::size_t>(count_blocks) * B);
  read_run(client, a, first_block, count_blocks, buf);
  std::stable_sort(buf.begin(), buf.end(), less);
  write_run(client, a, first_block, count_blocks, buf, 0);
}

namespace {

/// Sort the units inside an in-cache buffer of whole units by their first
/// record (RecordLess).  Stable so that differential tests are deterministic.
void sort_units_in_buffer(std::span<Record> buf, std::size_t unit_records) {
  const std::size_t units = buf.size() / unit_records;
  std::vector<std::size_t> order(units);
  for (std::size_t u = 0; u < units; ++u) order[u] = u;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return RecordLess{}(buf[x * unit_records], buf[y * unit_records]);
  });
  std::vector<Record> out(buf.size());
  for (std::size_t u = 0; u < units; ++u) {
    std::copy(buf.begin() + static_cast<std::ptrdiff_t>(order[u] * unit_records),
              buf.begin() + static_cast<std::ptrdiff_t>((order[u] + 1) * unit_records),
              out.begin() + static_cast<std::ptrdiff_t>(u * unit_records));
  }
  std::copy(out.begin(), out.end(), buf.begin());
}

}  // namespace

void ext_oblivious_unit_sort(Client& client, const ExtArray& a,
                             std::uint64_t unit_blocks, const ExtSortOptions& opts) {
  assert(unit_blocks >= 1);
  const std::uint64_t n = a.num_blocks();
  assert(n % unit_blocks == 0);
  const std::uint64_t units = n / unit_blocks;
  if (units <= 1) return;
  const std::size_t B = client.B();
  const std::size_t unit_records = static_cast<std::size_t>(unit_blocks) * B;
  const std::uint64_t m = client.m();

  // Runs are whole numbers of units; two runs must fit in cache.
  std::uint64_t run_units =
      std::max<std::uint64_t>(1, (opts.run_blocks != 0 ? opts.run_blocks : m / 2) / unit_blocks);
  run_units = std::min(run_units, units);
  const std::uint64_t run_blocks = run_units * unit_blocks;
  const std::uint64_t runs = ceil_div(units, run_units);
  const std::uint64_t runs_p2 = next_pow2(runs);
  const std::uint64_t padded_blocks = runs_p2 * run_blocks;

  ExtArray work = a;
  bool scratch = false;
  if (padded_blocks != n) {
    scratch = true;
    work = client.alloc_blocks(padded_blocks, Client::Init::kUninit);
    copy_pad_blocks(client, a, n, work, padded_blocks);  // empty key: pads sort last
  }

  // Phase 1: unit-sort each run privately.
  sort_runs(client, work, runs_p2, run_blocks, [&](std::span<Record> buf) {
    sort_units_in_buffer(buf, unit_records);
  });

  // Phase 2: network over runs with unit-granularity merge-split.
  run_network(client, work, run_blocks, run_schedule(runs_p2, opts.odd_even),
              chunked_unit_merge(client, run_blocks, unit_blocks, unit_records));

  if (scratch) {
    copy_back_blocks(client, work, a, n);
    client.release(work);
  }
}

std::uint64_t ext_sort_predicted_ios(std::uint64_t n_blocks, std::uint64_t m_blocks,
                                     const ExtSortOptions& opts) {
  if (n_blocks <= 1) return 2 * n_blocks;
  std::uint64_t run_blocks =
      opts.run_blocks != 0 ? opts.run_blocks : std::max<std::uint64_t>(1, m_blocks / 2);
  run_blocks = std::min(run_blocks, n_blocks);
  const std::uint64_t runs = ceil_div(n_blocks, run_blocks);
  const std::uint64_t runs_p2 = next_pow2(runs);
  const std::uint64_t padded = runs_p2 * run_blocks;
  std::uint64_t io = 0;
  if (padded != n_blocks) io += n_blocks + padded + n_blocks + n_blocks;  // copy in/out
  io += 2 * padded;  // run formation
  const std::uint64_t comparators = opts.odd_even ? odd_even_comparator_count(runs_p2)
                                                  : bitonic_comparator_count(runs_p2);
  io += comparators * 4 * run_blocks;  // each merge-split: 2 reads + 2 writes per run
  return io;
}

}  // namespace oem::sortnet
