// Deterministic data-oblivious external-memory sort -- the library's
// realization of the paper's Lemma 2 black box (Goodrich-Mitzenmacher).
//
// Structure: split the array into cache-sized runs of `m/2` blocks; sort each
// run privately (one linear pass); then run a bitonic sorting network over
// the runs where each comparator is a *merge-split*: read both runs (exactly
// m blocks, the cache budget), merge privately, write the lower half back to
// the first run and the upper half to the second (order depending on the
// comparator direction).  By the standard 0-1-principle argument, replacing
// compare-exchange with merge-split in any sorting network sorts runs.
//
// I/O cost: O((N/B) log^2 (N/(M/2))) -- the deterministic polylog-over-linear
// shape that Theorem 21's randomized sort beats by a log factor (benchmark
// E8).  The access sequence depends only on (n, m): fully data-oblivious.
#pragma once

#include <cstdint>
#include <functional>

#include "extmem/client.h"
#include "extmem/record.h"

namespace oem::sortnet {

struct ExtSortOptions {
  /// Run length in blocks; 0 means "use m/2" (half the cache, so a
  /// merge-split of two runs exactly fills the private memory).
  std::uint64_t run_blocks = 0;
  /// Use the odd-even network instead of bitonic over runs.
  bool odd_even = false;
};

/// Sorts all records of `a` (all `num_blocks * B` cells; empty cells compare
/// greater than every real key and collect at the end).  Deterministic and
/// data-oblivious; never fails.
void ext_oblivious_sort(Client& client, const ExtArray& a,
                        const ExtSortOptions& opts = {});

/// Sort a contiguous region of blocks [first, first+count) of `a` entirely
/// inside the private cache (count <= m required): one read pass, a private
/// sort, one write pass.  The trace is a scan -- oblivious.  Used for the
/// paper's polylog-sized region sorts (Theorem 8) where the wide-block /
/// tall-cache assumptions guarantee the region fits in memory.
void sort_region_in_cache(Client& client, const ExtArray& a,
                          std::uint64_t first_block, std::uint64_t count_blocks);

/// As above but with an arbitrary comparator over records.
void sort_region_in_cache(Client& client, const ExtArray& a,
                          std::uint64_t first_block, std::uint64_t count_blocks,
                          const std::function<bool(const Record&, const Record&)>& less);

/// Predicted I/O count of ext_oblivious_sort for given (n, m) in blocks;
/// used by tests to pin the cost model and by EXPERIMENTS.md.
std::uint64_t ext_sort_predicted_ios(std::uint64_t n_blocks, std::uint64_t m_blocks,
                                     const ExtSortOptions& opts = {});

/// Oblivious sort of fixed-size *units* of `unit_blocks` blocks each.  The
/// sort key of a unit is record 0 of its first block, ordered by RecordLess
/// (so units whose key is the empty sentinel act as padding and collect at
/// the end).  The array must be a whole number of units.  Used by the
/// oblivious IBLT decoder, whose items (cell snapshots, update records,
/// staged outputs) are multi-block values with a routing key in front.
void ext_oblivious_unit_sort(Client& client, const ExtArray& a,
                             std::uint64_t unit_blocks,
                             const ExtSortOptions& opts = {});

}  // namespace oem::sortnet
