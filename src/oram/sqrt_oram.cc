#include "oram/sqrt_oram.h"

#include <cassert>

#include "hash/hashing.h"
#include "sortnet/external_sort.h"
#include "util/math.h"

namespace oem::oram {

SqrtOram::SqrtOram(Client& client, std::uint64_t n_items, ShuffleKind kind,
                   std::uint64_t seed)
    : client_(client),
      n_(std::max<std::uint64_t>(n_items, 4)),
      sqrt_n_(std::max<std::uint64_t>(2, iroot(n_, 2))),
      kind_(kind),
      seed_(seed),
      prp_(n_ + sqrt_n_, hash::mix(seed, 0)) {
  main_ = client_.alloc(n_ + sqrt_n_, Client::Init::kUninit);
  stash_ = client_.alloc(sqrt_n_, Client::Init::kEmpty);
  reshuffle();  // initial layout (epoch 0 contents)
  stats_ = SqrtOramStats{};
  client_.reset_stats();
}

std::uint64_t SqrtOram::expected_value(std::uint64_t index) const {
  return hash::mix(index, seed_ ^ 0xfeedULL);
}

std::uint64_t SqrtOram::access(std::uint64_t index) {
  assert(index < n_);
  const std::uint64_t before = client_.stats().total();

  // 1. Full stash scan (external, sqrt(N) records).
  bool found = false;
  std::uint64_t value = 0;
  {
    CacheLease lease(client_.cache(), client_.B());
    BlockBuf blk;
    for (std::uint64_t b = 0; b < stash_.num_blocks(); ++b) {
      client_.read_block(stash_, b, blk);
      for (const Record& r : blk) {
        if (!r.is_empty() && r.key == index) {
          found = true;
          value = r.value;
        }
      }
    }
  }

  // 2. One main-array probe: the real position if unseen, a dummy otherwise.
  const std::uint64_t virt = found ? n_ + used_ : index;
  const std::uint64_t pos = prp_.apply(virt);
  {
    CacheLease lease(client_.cache(), client_.B());
    std::vector<Record> one(1);
    client_.read_records(main_, pos, one);
    if (!found) {
      assert((!status_.ok() || one[0].key == index) && "PRP layout out of sync");
      value = one[0].value;
    }
  }

  // 3. Append (index, value) to the stash slot for this access.
  {
    CacheLease lease(client_.cache(), client_.B());
    std::vector<Record> one(1);
    one[0] = {index, value};
    client_.write_records(stash_, used_, one);
  }

  ++used_;
  ++stats_.accesses;
  stats_.access_ios += client_.stats().total() - before;

  if (used_ == sqrt_n_) reshuffle();
  return value;
}

void SqrtOram::reshuffle() {
  const std::uint64_t before = client_.stats().total();
  ++epoch_;
  prp_ = rng::FeistelPermutation(n_ + sqrt_n_, hash::mix(seed_, epoch_));

  // Retag pass: cell for virtual index v gets sort key pi_{e}(v).  Real
  // cells carry the stored value, dummies carry junk.  (Read-oriented demo:
  // contents are regenerated; a full RW ORAM would merge the stash here,
  // with identical I/O shape.)
  {
    CacheLease lease(client_.cache(), client_.B());
    const std::size_t B = client_.B();
    BlockBuf blk(B);
    const std::uint64_t total = n_ + sqrt_n_;
    for (std::uint64_t b = 0; b < main_.num_blocks(); ++b) {
      for (std::size_t r = 0; r < B; ++r) {
        const std::uint64_t v = b * B + r;
        if (v < total) {
          blk[r] = {prp_.apply(v), v < n_ ? expected_value(v) : 0};
        } else {
          blk[r] = Record{};
        }
      }
      client_.write_block(main_, b, blk);
    }
  }

  // The pluggable inner loop: oblivious sort by tag.
  if (kind_ == ShuffleKind::kDeterministic) {
    sortnet::ext_oblivious_sort(client_, main_);
  } else {
    core::ObliviousSortResult sr =
        core::oblivious_sort(client_, main_, hash::mix(seed_ ^ 0x0badULL, epoch_));
    status_.Update(sr.status);
  }

  // Rewrite tags back to virtual indices: after sorting by tag, position p
  // holds the cell with tag p, i.e. virtual index pi^{-1}(p).
  {
    CacheLease lease(client_.cache(), client_.B());
    const std::size_t B = client_.B();
    BlockBuf blk;
    const std::uint64_t total = n_ + sqrt_n_;
    for (std::uint64_t b = 0; b < main_.num_blocks(); ++b) {
      client_.read_block(main_, b, blk);
      for (std::size_t r = 0; r < B; ++r) {
        const std::uint64_t p = b * B + r;
        if (p < total) {
          blk[r].key = prp_.inverse(p);  // restore the virtual index as key
        }
      }
      client_.write_block(main_, b, blk);
    }
  }

  // Clear the stash.
  {
    CacheLease lease(client_.cache(), client_.B());
    const BlockBuf empty = make_empty_block(client_.B());
    for (std::uint64_t b = 0; b < stash_.num_blocks(); ++b)
      client_.write_block(stash_, b, empty);
  }

  used_ = 0;
  ++stats_.reshuffles;
  stats_.reshuffle_ios += client_.stats().total() - before;
}

}  // namespace oem::oram
