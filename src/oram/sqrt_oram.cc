#include "oram/sqrt_oram.h"

#include <algorithm>
#include <cassert>

#include "extmem/pipeline.h"
#include "hash/hashing.h"
#include "sortnet/external_sort.h"
#include "util/math.h"

namespace oem::oram {

SqrtOram::SqrtOram(Client& client, std::uint64_t n_items, ShuffleKind kind,
                   std::uint64_t seed)
    : client_(client),
      n_(std::max<std::uint64_t>(n_items, 4)),
      sqrt_n_(std::max<std::uint64_t>(2, iroot(n_, 2))),
      kind_(kind),
      seed_(seed),
      prp_(n_ + sqrt_n_, hash::mix(seed, 0)) {
  main_ = client_.alloc(n_ + sqrt_n_, Client::Init::kUninit);
  stash_ = client_.alloc(sqrt_n_, Client::Init::kEmpty);
  reshuffle();  // initial layout (epoch 0 contents)
  stats_ = SqrtOramStats{};
  client_.reset_stats();
}

std::uint64_t SqrtOram::expected_value(std::uint64_t index) const {
  return hash::mix(index, seed_ ^ 0xfeedULL);
}

std::uint64_t SqrtOram::access(std::uint64_t index) {
  assert(index < n_);
  const std::uint64_t before = client_.stats().total();

  // 1. Full stash scan (external, sqrt(N) records).
  bool found = false;
  std::uint64_t value = 0;
  {
    CacheLease lease(client_.cache(), client_.B());
    BlockBuf blk;
    for (std::uint64_t b = 0; b < stash_.num_blocks(); ++b) {
      client_.read_block(stash_, b, blk);
      for (const Record& r : blk) {
        if (!r.is_empty() && r.key == index) {
          found = true;
          value = r.value;
        }
      }
    }
  }

  // 2. One main-array probe: the real position if unseen, a dummy otherwise.
  const std::uint64_t virt = found ? n_ + used_ : index;
  const std::uint64_t pos = prp_.apply(virt);
  {
    CacheLease lease(client_.cache(), client_.B());
    std::vector<Record> one(1);
    client_.read_records(main_, pos, one);
    if (!found) {
      assert((!status_.ok() || one[0].key == index) && "PRP layout out of sync");
      value = one[0].value;
    }
  }

  // 3. Append (index, value) to the stash slot for this access.
  {
    CacheLease lease(client_.cache(), client_.B());
    std::vector<Record> one(1);
    one[0] = {index, value};
    client_.write_records(stash_, used_, one);
  }

  ++used_;
  ++stats_.accesses;
  stats_.access_ios += client_.stats().total() - before;

  if (used_ == sqrt_n_) reshuffle();
  return value;
}

void SqrtOram::reshuffle() {
  const std::uint64_t before = client_.stats().total();
  ++epoch_;
  prp_ = rng::FeistelPermutation(n_ + sqrt_n_, hash::mix(seed_, epoch_));

  // Retag pass: cell for virtual index v gets sort key pi_{e}(v).  Real
  // cells carry the stored value, dummies carry junk.  (Read-oriented demo:
  // contents are regenerated; a full RW ORAM would merge the stash here,
  // with identical I/O shape.)  Write-only pipelined scan: window t+1's
  // ciphertext is staged while window t transfers.
  const std::size_t B = client_.B();
  const std::uint64_t W = std::max<std::uint64_t>(1, client_.io_batch_blocks());
  const std::uint64_t nb = main_.num_blocks();
  const std::uint64_t total = n_ + sqrt_n_;
  run_block_pipeline(
      client_, nb == 0 ? 0 : ceil_div(nb, W),
      [&](std::uint64_t t, PipelinePass& io) {
        io.write_to = &main_;
        const std::uint64_t first = t * W;
        const std::uint64_t k = std::min(W, nb - first);
        for (std::uint64_t j = 0; j < k; ++j) io.writes.push_back(first + j);
      },
      // Each output record is a pure function of its global index (the PRP
      // apply is const), so the window chunks across the compute pool.
      ParallelCompute{[&, W, B, total](std::uint64_t t, std::span<const Record>,
                                       std::uint64_t first_block,
                                       std::span<Record> out) {
                        const std::uint64_t first = t * W + first_block;
                        for (std::size_t idx = 0; idx < out.size(); ++idx) {
                          const std::uint64_t v = first * B + idx;
                          out[idx] =
                              v < total
                                  ? Record{prp_.apply(v), v < n_ ? expected_value(v) : 0}
                                  : Record{};
                        }
                      },
                      0});

  // The pluggable inner loop: oblivious sort by tag.
  if (kind_ == ShuffleKind::kDeterministic) {
    sortnet::ext_oblivious_sort(client_, main_);
  } else {
    core::ObliviousSortResult sr =
        core::oblivious_sort(client_, main_, hash::mix(seed_ ^ 0x0badULL, epoch_));
    status_.Update(sr.status);
  }

  // Rewrite tags back to virtual indices: after sorting by tag, position p
  // holds the cell with tag p, i.e. virtual index pi^{-1}(p).  In-place
  // pipelined scan; window t+1 is disjoint from window t's write set, so it
  // prefetches during the PRP inversion.
  run_block_pipeline(
      client_, nb == 0 ? 0 : ceil_div(nb, W),
      [&](std::uint64_t t, PipelinePass& io) {
        io.read_from = &main_;
        io.write_to = &main_;
        const std::uint64_t first = t * W;
        const std::uint64_t k = std::min(W, nb - first);
        for (std::uint64_t j = 0; j < k; ++j) {
          io.reads.push_back(first + j);
          io.writes.push_back(first + j);
        }
      },
      // Output record p = input record p with its key replaced by the const
      // PRP inverse of p -- pure per chunk, so it fans out like the retag.
      ParallelCompute{[&, W, B, total](std::uint64_t t, std::span<const Record> in,
                                       std::uint64_t first_block,
                                       std::span<Record> out) {
                        const std::size_t off = first_block * B;
                        const std::uint64_t first = t * W + first_block;
                        for (std::size_t idx = 0; idx < out.size(); ++idx) {
                          const std::uint64_t p = first * B + idx;
                          out[idx] = in[off + idx];
                          if (p < total) out[idx].key = prp_.inverse(p);
                        }
                      },
                      0});

  // Clear the stash (write-only pipelined scan).
  run_block_pipeline(
      client_, stash_.num_blocks() == 0 ? 0 : ceil_div(stash_.num_blocks(), W),
      [&](std::uint64_t t, PipelinePass& io) {
        io.write_to = &stash_;
        const std::uint64_t first = t * W;
        const std::uint64_t k = std::min(W, stash_.num_blocks() - first);
        for (std::uint64_t j = 0; j < k; ++j) io.writes.push_back(first + j);
      },
      ParallelCompute{[](std::uint64_t, std::span<const Record>, std::uint64_t,
                         std::span<Record> out) {
                        std::fill(out.begin(), out.end(), Record{});
                      },
                      0});

  used_ = 0;
  ++stats_.reshuffles;
  stats_.reshuffle_ios += client_.stats().total() - before;
}

}  // namespace oem::oram
