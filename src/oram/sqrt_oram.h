// Square-root ORAM demonstrator (Goldreich-Ostrovsky style) with a pluggable
// oblivious-shuffle "inner loop".
//
// The paper's §1 claim: because oblivious sorting is the bottleneck of the
// periodic reshuffle in ORAM simulations, replacing the deterministic
// O((N/B) log^2_{M/B}(N/B)) sort (Lemma 2) with the randomized
// O((N/B) log_{M/B}(N/B)) sort (Theorem 21) improves the amortized I/O
// overhead of oblivious RAM simulation by a logarithmic factor.  This module
// makes that claim measurable: a concrete sqrt-ORAM whose epoch reshuffle is
// either sort, with per-access amortized I/O reported by bench E9.
//
// Protocol (read-oriented demo; values are a keyed function of the index so
// correctness is checkable):
//   * epoch layout: N + sqrt(N) cells, cell for virtual index v stored at
//     position pi_e(v) for a fresh pseudo-random permutation pi_e (Feistel);
//   * access(i): scan the stash (sqrt(N) records, external); if i was
//     already fetched this epoch, probe the next *dummy* position
//     pi_e(N + ctr), else probe pi_e(i); append to the stash;
//   * after sqrt(N) accesses: reshuffle -- retag every cell with pi_{e+1}
//     and obliviously sort by tag (this is the pluggable inner loop).
//
// Obliviousness: every probed position is fresh-uniform to Bob, the stash
// scan is a scan, and the reshuffle is an oblivious sort.
#pragma once

#include <cstdint>

#include "core/oblivious_sort.h"
#include "extmem/client.h"
#include "rng/permutation.h"
#include "util/status.h"

namespace oem::oram {

enum class ShuffleKind {
  kDeterministic,  // Lemma 2: external bitonic over runs
  kRandomized,     // Theorem 21: the paper's randomized oblivious sort
};

struct SqrtOramStats {
  std::uint64_t accesses = 0;
  std::uint64_t reshuffles = 0;
  std::uint64_t reshuffle_ios = 0;  // I/Os spent inside reshuffles
  std::uint64_t access_ios = 0;     // I/Os spent in the access protocol
};

class SqrtOram {
 public:
  SqrtOram(Client& client, std::uint64_t n_items, ShuffleKind kind,
           std::uint64_t seed);

  /// Oblivious read of virtual index i (0-based).  Returns the stored value.
  std::uint64_t access(std::uint64_t index);

  /// The value the ORAM stores for index i (for correctness checks).
  std::uint64_t expected_value(std::uint64_t index) const;

  const SqrtOramStats& stats() const { return stats_; }
  Status status() const { return status_; }
  std::uint64_t epoch_length() const { return sqrt_n_; }

 private:
  void reshuffle();

  Client& client_;
  std::uint64_t n_;
  std::uint64_t sqrt_n_;
  ShuffleKind kind_;
  std::uint64_t seed_;
  std::uint64_t epoch_ = 0;
  std::uint64_t used_ = 0;  // accesses in the current epoch
  ExtArray main_;           // n + sqrt_n records, position = PRP tag
  ExtArray stash_;          // sqrt_n records
  rng::FeistelPermutation prp_;
  SqrtOramStats stats_;
  Status status_;
};

}  // namespace oem::oram
