// Invertible Bloom lookup table (Goodrich & Mitzenmacher 2011), §2 of the
// paper.  RAM-model reference implementation.
//
// Each of the m cells holds {count, keySum, valueSum} plus a checkSum of a
// key-derived checksum (guards peeling against false "pure" cells; the paper
// assumes random-oracle hashes, we make the failure mode explicit).  The k
// hash functions are partitioned so the k cells of any key are distinct.
//
// insert/delete always succeed and touch exactly the k cells determined by
// the key alone -- the "semi-oblivious" property Theorem 4 exploits.  get and
// listEntries succeed w.h.p. when at most n < m/(δk) pairs are present
// (Lemma 1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hash/khash.h"

namespace oem::iblt {

struct Entry {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
  friend bool operator==(const Entry&, const Entry&) = default;
};

struct Cell {
  std::uint64_t count = 0;      // # entries mapped here (mod 2^64; deletes subtract)
  std::uint64_t key_sum = 0;    // sum of keys mapped here
  std::uint64_t value_sum = 0;  // sum of values mapped here
  std::uint64_t check_sum = 0;  // sum of checksum(key) -- pure-cell validation

  bool is_zero() const {
    return count == 0 && key_sum == 0 && value_sum == 0 && check_sum == 0;
  }
};

struct IbltParams {
  unsigned k = 4;        // hash functions
  double cells_per_item = 3.0;  // δ·k in the paper's m = δkn sizing
};

class Iblt {
 public:
  /// Table sized for up to `capacity` entries.
  Iblt(std::uint64_t capacity, const IbltParams& params, std::uint64_t seed);

  std::uint64_t num_cells() const { return cells_.size(); }
  unsigned k() const { return hashes_.k(); }

  void insert(std::uint64_t key, std::uint64_t value);
  void erase(std::uint64_t key, std::uint64_t value);

  /// Lookup; may fail (nullopt) even for present keys, with small probability
  /// (when all k cells are overloaded).
  std::optional<std::uint64_t> get(std::uint64_t key) const;

  /// Peels all entries.  Returns true iff the table fully decoded (the paper's
  /// success condition: every cell empty afterwards).  Destructive, per the
  /// paper's footnote 3; copy the Iblt first for a non-destructive listing.
  bool list_entries(std::vector<Entry>& out);

  /// Direct cell access for the tests and the oblivious external variant.
  const Cell& cell(std::uint64_t i) const { return cells_[i]; }
  const hash::KHashFamily& hashes() const { return hashes_; }

 private:
  void update(std::uint64_t key, std::uint64_t value, bool add);
  bool cell_pure(const Cell& c) const;

  hash::KHashFamily hashes_;
  std::vector<Cell> cells_;
};

}  // namespace oem::iblt
