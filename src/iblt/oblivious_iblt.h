// Data-oblivious external-memory invertible Bloom lookup table over *blocks*
// (the paper's Theorem 4, applied "to blocks that are viewed as memory words
// for the external-memory model").
//
// Items are (block-index, block-content) pairs.  The table is two parallel
// external arrays:
//   meta:    2 records per cell -- {count, indexSum}, {checkSum, 0}
//   payload: 1 block per cell   -- word-wise sum of inserted block contents
//
// * build(): one pass over the input array.  For EVERY block i (distinguished
//   or not) the k cells h_1(i)..h_k(i) are read and rewritten (re-encrypted),
//   so the access sequence depends only on the indices -- the paper's §2
//   observation that IBLT insertion is oblivious to everything but the key.
//
// * extract(): decodes all entries into an output array of exactly
//   `capacity` blocks, sorted by original index (order-preserving).  Two
//   decode paths, chosen by public parameters only:
//     - in-cache peeling when the table fits in private memory (one scan in,
//       one scan out);
//     - external oblivious peeling otherwise: a fixed number of rounds, each
//       made of scans and deterministic oblivious unit-sorts (candidate
//       extraction -> dedupe -> update generation -> sorted apply with
//       last-of-group selection).  This replaces the paper's "simulate
//       listEntries under ORAM" step with a decoder whose accesses are
//       themselves input-independent (DESIGN.md substitution #3).
#pragma once

#include <cstdint>
#include <functional>

#include "extmem/client.h"
#include "hash/khash.h"
#include "iblt/iblt.h"
#include "util/status.h"

namespace oem::iblt {

/// Predicate deciding whether block i (with the given plaintext content) is
/// distinguished.  Evaluated privately in Alice's cache; may be stateful
/// (e.g., Bernoulli sampling) but must not touch external memory.
using BlockPred = std::function<bool(std::uint64_t block_index, const BlockBuf& content)>;

struct ObliviousIbltOptions {
  IbltParams iblt;                 // k and cells-per-item sizing
  std::uint64_t decode_rounds = 0; // 0 = auto: 2*ceil(log2(capacity)) + 2
  bool force_external_decode = false;  // for tests: exercise path B even when small
};

class ObliviousBlockIblt {
 public:
  /// Table sized for up to `capacity` distinguished blocks.
  ObliviousBlockIblt(Client& client, std::uint64_t capacity,
                     const ObliviousIbltOptions& opts, std::uint64_t seed);
  ~ObliviousBlockIblt();

  ObliviousBlockIblt(const ObliviousBlockIblt&) = delete;
  ObliviousBlockIblt& operator=(const ObliviousBlockIblt&) = delete;

  std::uint64_t num_cells() const { return hashes_.cells(); }
  std::uint64_t capacity() const { return capacity_; }

  /// One oblivious pass over `a`: inserts (i, a[i]) for every distinguished
  /// block, touches (read + rewrite) the same cells for the others.
  void build(const ExtArray& a, const BlockPred& distinguished);

  /// Decode all entries into `out` (exactly `capacity` blocks, pre-allocated
  /// by the caller), in increasing original-index order, empty blocks after.
  /// Fails (WhpFailure) if peeling does not complete or more than `capacity`
  /// items were inserted.  On failure the contents of `out` are unspecified
  /// but the access trace is the same as on success.
  Status extract(const ExtArray& out);

 private:
  Status extract_in_cache(const ExtArray& out);
  Status extract_external(const ExtArray& out);
  bool decode_fits_in_cache() const;

  Client& client_;
  std::uint64_t capacity_;
  ObliviousIbltOptions opts_;
  hash::KHashFamily hashes_;
  ExtArray meta_;     // 2 records per cell
  ExtArray payload_;  // 1 block per cell
};

}  // namespace oem::iblt
