#include "iblt/oblivious_iblt.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <vector>

#include "sortnet/external_sort.h"
#include "util/math.h"

namespace oem::iblt {

namespace {

/// In-cache view of a cell during build/peel.
struct CellState {
  std::uint64_t count = 0;
  std::uint64_t index_sum = 0;
  std::uint64_t check_sum = 0;
  std::vector<Record> payload;  // B records, word-wise sums

  void add_block(std::uint64_t index, std::uint64_t check, const BlockBuf& blk, bool add) {
    count += add ? 1 : static_cast<std::uint64_t>(-1);
    index_sum += add ? index : static_cast<std::uint64_t>(-index);
    check_sum += add ? check : static_cast<std::uint64_t>(-check);
    for (std::size_t w = 0; w < payload.size(); ++w) {
      if (add) {
        payload[w].key += blk[w].key;
        payload[w].value += blk[w].value;
      } else {
        payload[w].key -= blk[w].key;
        payload[w].value -= blk[w].value;
      }
    }
  }
};

}  // namespace

ObliviousBlockIblt::ObliviousBlockIblt(Client& client, std::uint64_t capacity,
                                       const ObliviousIbltOptions& opts,
                                       std::uint64_t seed)
    : client_(client),
      capacity_(std::max<std::uint64_t>(1, capacity)),
      opts_(opts),
      hashes_(opts.iblt.k,
              std::max<std::uint64_t>(
                  opts.iblt.k,
                  static_cast<std::uint64_t>(opts.iblt.cells_per_item *
                                             static_cast<double>(capacity_)) +
                      opts.iblt.k),
              seed) {
  const std::uint64_t cells = hashes_.cells();
  meta_ = client_.alloc(2 * cells, Client::Init::kUninit);
  payload_ = client_.alloc_blocks(cells, Client::Init::kUninit);
  // Zero-initialize: sums must start at all-zero words (an "empty" Record is
  // the sentinel key, not zero, so Init::kEmpty would be wrong here).
  const BlockBuf zero(client_.B(), Record{0, 0});
  CacheLease lease(client_.cache(), client_.B());
  for (std::uint64_t b = 0; b < meta_.num_blocks(); ++b) client_.write_block(meta_, b, zero);
  for (std::uint64_t b = 0; b < payload_.num_blocks(); ++b)
    client_.write_block(payload_, b, zero);
}

ObliviousBlockIblt::~ObliviousBlockIblt() {
  client_.release(payload_);
  client_.release(meta_);
}

void ObliviousBlockIblt::build(const ExtArray& a, const BlockPred& distinguished) {
  const std::size_t B = client_.B();
  BlockBuf blk, cell_payload;
  std::vector<Record> meta_recs(2);
  CacheLease lease(client_.cache(), 3 * B + 2);

  for (std::uint64_t i = 0; i < a.num_blocks(); ++i) {
    client_.read_block(a, i, blk);
    const bool is_dist = distinguished(i, blk);
    const std::uint64_t chk = hashes_.checksum(i);
    for (unsigned j = 0; j < hashes_.k(); ++j) {
      const std::uint64_t c = hashes_.cell(i, j);
      client_.read_records(meta_, 2 * c, meta_recs);
      client_.read_block(payload_, c, cell_payload);
      if (is_dist) {
        meta_recs[0].key += 1;        // count
        meta_recs[0].value += i;      // indexSum
        meta_recs[1].key += chk;      // checkSum
        for (std::size_t w = 0; w < B; ++w) {
          cell_payload[w].key += blk[w].key;
          cell_payload[w].value += blk[w].value;
        }
      }
      // Written back unconditionally: to Bob, an untouched cell and an
      // updated cell are both just fresh ciphertext.
      client_.write_records(meta_, 2 * c, meta_recs);
      client_.write_block(payload_, c, cell_payload);
    }
  }
}

bool ObliviousBlockIblt::decode_fits_in_cache() const {
  const std::uint64_t cells = hashes_.cells();
  const std::uint64_t table_records = cells * (2 + client_.B());
  // Leave two blocks of headroom for streaming the output.
  return !opts_.force_external_decode &&
         table_records + 2 * client_.B() <= client_.M();
}

Status ObliviousBlockIblt::extract(const ExtArray& out) {
  assert(out.num_blocks() >= capacity_);
  if (decode_fits_in_cache()) return extract_in_cache(out);
  return extract_external(out);
}

Status ObliviousBlockIblt::extract_in_cache(const ExtArray& out) {
  const std::size_t B = client_.B();
  const std::uint64_t cells = hashes_.cells();
  CacheLease lease(client_.cache(), cells * (2 + B) + 2 * B);

  // Scan the table into private memory.
  std::vector<CellState> table(cells);
  {
    std::vector<Record> meta_recs(2);
    BlockBuf pay;
    for (std::uint64_t c = 0; c < cells; ++c) {
      client_.read_records(meta_, 2 * c, meta_recs);
      client_.read_block(payload_, c, pay);
      table[c].count = meta_recs[0].key;
      table[c].index_sum = meta_recs[0].value;
      table[c].check_sum = meta_recs[1].key;
      table[c].payload = pay;
    }
  }

  // Private peeling (invisible to Bob).
  auto pure = [&](const CellState& cs) {
    return cs.count == 1 && cs.check_sum == hashes_.checksum(cs.index_sum);
  };
  std::vector<std::uint64_t> work;
  for (std::uint64_t c = 0; c < cells; ++c)
    if (pure(table[c])) work.push_back(c);

  std::map<std::uint64_t, BlockBuf> entries;  // index -> content (sorted)
  while (!work.empty()) {
    const std::uint64_t c = work.back();
    work.pop_back();
    if (!pure(table[c])) continue;
    const std::uint64_t idx = table[c].index_sum;
    const std::uint64_t chk = hashes_.checksum(idx);
    const BlockBuf content = table[c].payload;
    entries.emplace(idx, content);
    for (unsigned j = 0; j < hashes_.k(); ++j) {
      const std::uint64_t tc = hashes_.cell(idx, j);
      table[tc].add_block(idx, chk, content, /*add=*/false);
      if (pure(table[tc])) work.push_back(tc);
    }
  }

  bool clean = true;
  for (const auto& cs : table)
    if (cs.count != 0 || cs.index_sum != 0 || cs.check_sum != 0) clean = false;

  // Output pass: always writes exactly `capacity` blocks, decoded entries in
  // index order first, empty blocks after.  Runs even on failure so the trace
  // is outcome-independent.
  auto it = entries.begin();
  const BlockBuf empty = make_empty_block(B);
  for (std::uint64_t t = 0; t < capacity_; ++t) {
    if (clean && it != entries.end()) {
      client_.write_block(out, t, it->second);
      ++it;
    } else {
      client_.write_block(out, t, empty);
    }
  }

  if (!clean) return Status::WhpFailure("IBLT peeling incomplete (in-cache path)");
  if (entries.size() > capacity_)
    return Status::WhpFailure("IBLT decoded more entries than capacity");
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// External oblivious peeling.
//
// Unit layout (ub = ceil((B+2)/B) blocks, ub*B records):
//   rec0 = {sort_key, f0}, rec1 = {f1, f2}, rec2.. = B payload records.
// The meaning of f0..f2 varies per stage and is documented inline.
// A unit whose sort_key is the empty sentinel is a dummy and sorts last.
// ---------------------------------------------------------------------------

namespace {

struct Unit {
  std::vector<Record> recs;  // ub*B records

  Record& r0() { return recs[0]; }
  Record& r1() { return recs[1]; }
  const Record& r0() const { return recs[0]; }
  const Record& r1() const { return recs[1]; }
  Record* payload() { return recs.data() + 2; }
  const Record* payload() const { return recs.data() + 2; }
};

class UnitIo {
 public:
  UnitIo(Client& c, const ExtArray& a, std::uint64_t unit_blocks)
      : c_(c), a_(a), ub_(unit_blocks), unit_records_(unit_blocks * c.B()) {}

  void read(std::uint64_t u, Unit& unit) {
    unit.recs.resize(unit_records_);
    c_.read_records(a_, u * unit_records_, unit.recs);
  }
  void write(std::uint64_t u, const Unit& unit) {
    assert(unit.recs.size() == unit_records_);
    c_.write_records(a_, u * unit_records_, unit.recs);
  }
  std::size_t unit_records() const { return unit_records_; }

 private:
  Client& c_;
  const ExtArray& a_;
  std::uint64_t ub_;
  std::size_t unit_records_;
};

}  // namespace

Status ObliviousBlockIblt::extract_external(const ExtArray& out) {
  const std::size_t B = client_.B();
  const std::uint64_t cells = hashes_.cells();
  const unsigned k = hashes_.k();
  const std::uint64_t ub = ceil_div(B + 2, B);  // blocks per unit
  const std::size_t unit_records = static_cast<std::size_t>(ub) * B;
  // Parallel peeling at our load factor (cells_per_item >= 3) removes a
  // large constant fraction of items per round; log2(r) rounds with a
  // constant floor is a comfortable bound (failures are detected anyway).
  const std::uint64_t rounds =
      opts_.decode_rounds != 0
          ? opts_.decode_rounds
          : static_cast<std::uint64_t>(ceil_log2(capacity_ + 2)) + 4;

  ExtArray cand = client_.alloc_blocks(cells * ub, Client::Init::kUninit);
  ExtArray updates = client_.alloc_blocks(cells * k * ub, Client::Init::kUninit);
  ExtArray comb = client_.alloc_blocks((cells + cells * k) * ub, Client::Init::kUninit);
  ExtArray stage = client_.alloc_blocks(rounds * cells * ub, Client::Init::kUninit);
  UnitIo cand_io(client_, cand, ub), upd_io(client_, updates, ub),
      comb_io(client_, comb, ub), stage_io(client_, stage, ub);

  Unit unit, next_unit;
  unit.recs.resize(unit_records);
  std::vector<Record> meta_recs(2);
  BlockBuf pay;
  CacheLease lease(client_.cache(), 4 * unit_records + 2 * B + 4);

  const std::uint64_t kDummy = kEmptyKey;

  for (std::uint64_t rd = 0; rd < rounds; ++rd) {
    // --- Stage 1: scan cells, emit one candidate unit per cell.
    // Candidate unit: r0 = {index or dummy, 0}, r1 = {check, 0}, payload.
    for (std::uint64_t c = 0; c < cells; ++c) {
      client_.read_records(meta_, 2 * c, meta_recs);
      client_.read_block(payload_, c, pay);
      const bool pure = meta_recs[0].key == 1 &&
                        meta_recs[1].key == hashes_.checksum(meta_recs[0].value);
      std::fill(unit.recs.begin(), unit.recs.end(), Record{0, 0});
      unit.r0() = {pure ? meta_recs[0].value : kDummy, 0};
      unit.r1() = {pure ? meta_recs[1].key : 0, 0};
      for (std::size_t w = 0; w < B; ++w) unit.recs[2 + w] = pay[w];
      cand_io.write(c, unit);
    }

    // --- Stage 2: sort candidates by index; duplicates become adjacent.
    sortnet::ext_oblivious_unit_sort(client_, cand, ub);

    // --- Stage 3: dedupe scan -- two pure cells may hold the same item in
    // the same round (the final item always does); only the first survives.
    std::uint64_t prev_key = kDummy;
    for (std::uint64_t u = 0; u < cells; ++u) {
      cand_io.read(u, unit);
      const bool dup = unit.r0().key != kDummy && unit.r0().key == prev_key;
      prev_key = unit.r0().key;
      if (dup) unit.r0().key = kDummy;
      cand_io.write(u, unit);
      // Stage the (possibly dummy) candidate for final output extraction.
      stage_io.write(rd * cells + u, unit);
    }

    // --- Stage 4: generate k update units per candidate.
    // Update unit: r0 = {2*target_cell+1 or dummy, 1}, r1 = {index, check}, payload.
    for (std::uint64_t u = 0; u < cells; ++u) {
      cand_io.read(u, unit);
      const bool real = unit.r0().key != kDummy;
      const std::uint64_t idx = unit.r0().key;
      for (unsigned j = 0; j < k; ++j) {
        Unit upd;
        upd.recs.assign(unit_records, Record{0, 0});
        if (real) {
          const std::uint64_t target = hashes_.cell(idx, j);
          upd.r0() = {2 * target + 1, 1};
          upd.r1() = {idx, unit.r1().key};
          for (std::size_t w = 0; w < B; ++w) upd.recs[2 + w] = unit.recs[2 + w];
        } else {
          upd.r0().key = kDummy;
        }
        upd_io.write(u * k + j, upd);
      }
    }

    // --- Stage 5: build the combined stream: one base unit per cell
    // (sort key 2*c, carrying the cell state) + all update units (sort key
    // 2*target+1), then sort so each cell's base is followed by its updates.
    for (std::uint64_t c = 0; c < cells; ++c) {
      client_.read_records(meta_, 2 * c, meta_recs);
      client_.read_block(payload_, c, pay);
      std::fill(unit.recs.begin(), unit.recs.end(), Record{0, 0});
      unit.r0() = {2 * c, 0};                            // base tag: even key
      unit.r1() = {meta_recs[0].key, meta_recs[0].value};  // {count, indexSum}
      unit.recs[2 + 0].value = 0;
      for (std::size_t w = 0; w < B; ++w) unit.recs[2 + w] = pay[w];
      // checkSum rides in r0().value (unused for ordering).
      unit.r0().value = meta_recs[1].key;
      comb_io.write(c, unit);
    }
    for (std::uint64_t u = 0; u < cells * k; ++u) {
      upd_io.read(u, unit);
      comb_io.write(cells + u, unit);
    }
    sortnet::ext_oblivious_unit_sort(client_, comb, ub);

    // --- Stage 6: forward scan with running accumulator; the last unit of
    // each cell group is rewritten as the new cell state (sort key = 2*c),
    // every other unit becomes a dummy.
    const std::uint64_t total_units = cells + cells * k;
    struct Acc {
      std::uint64_t cell = kEmptyKey;
      std::uint64_t count = 0, index_sum = 0, check_sum = 0;
      std::vector<Record> payload;
    } acc;
    acc.payload.assign(B, Record{0, 0});
    comb_io.read(0, unit);
    for (std::uint64_t u = 0; u < total_units; ++u) {
      const bool has_next = u + 1 < total_units;
      if (has_next) comb_io.read(u + 1, next_unit);
      const std::uint64_t key = unit.r0().key;
      const bool is_dummy = key == kDummy;
      const std::uint64_t cell_id = is_dummy ? kDummy : key / 2;
      const bool is_base = !is_dummy && (key % 2 == 0);
      if (!is_dummy) {
        if (is_base) {
          acc.cell = cell_id;
          acc.count = unit.r1().key;
          acc.index_sum = unit.r1().value;
          acc.check_sum = unit.r0().value;
          for (std::size_t w = 0; w < B; ++w) acc.payload[w] = unit.recs[2 + w];
        } else {
          // Update: subtract the peeled item (delete from the cell).  Every
          // real update unit represents exactly one deletion.
          acc.count -= 1;
          acc.index_sum -= unit.r1().key;
          acc.check_sum -= unit.r1().value;
          for (std::size_t w = 0; w < B; ++w) {
            acc.payload[w].key -= unit.recs[2 + w].key;
            acc.payload[w].value -= unit.recs[2 + w].value;
          }
        }
      }
      const std::uint64_t next_cell =
          has_next && next_unit.r0().key != kDummy ? next_unit.r0().key / 2 : kDummy;
      const bool last_of_group = !is_dummy && (!has_next || next_cell != cell_id);
      // Rewrite the unit in place.
      Unit outu;
      outu.recs.assign(unit_records, Record{0, 0});
      if (last_of_group) {
        outu.r0() = {2 * acc.cell, acc.check_sum};
        outu.r1() = {acc.count, acc.index_sum};
        for (std::size_t w = 0; w < B; ++w) outu.recs[2 + w] = acc.payload[w];
      } else {
        outu.r0().key = kDummy;
      }
      comb_io.write(u, outu);
      if (has_next) unit = next_unit;
    }

    // --- Stage 7: sort so the `cells` last-of-group units lead, in cell
    // order, then scan them back into the table.
    sortnet::ext_oblivious_unit_sort(client_, comb, ub);
    for (std::uint64_t c = 0; c < cells; ++c) {
      comb_io.read(c, unit);
      assert(unit.r0().key == 2 * c && "apply pass must produce one state per cell");
      meta_recs[0] = {unit.r1().key, unit.r1().value};  // {count, indexSum}
      meta_recs[1] = {unit.r0().value, 0};              // {checkSum, 0}
      for (std::size_t w = 0; w < B; ++w) pay[w] = unit.recs[2 + w];
      client_.write_records(meta_, 2 * c, meta_recs);
      client_.write_block(payload_, c, pay);
    }
  }

  // --- Verify the table fully peeled (scan; unconditional).
  bool clean = true;
  for (std::uint64_t c = 0; c < cells; ++c) {
    client_.read_records(meta_, 2 * c, meta_recs);
    if (meta_recs[0].key != 0 || meta_recs[0].value != 0 || meta_recs[1].key != 0)
      clean = false;
  }

  // --- Final extraction: sort the staged candidates by index (dummies
  // last), dedupe across rounds, re-sort, then emit the first `capacity`.
  sortnet::ext_oblivious_unit_sort(client_, stage, ub);
  const std::uint64_t stage_units = rounds * cells;
  std::uint64_t prev_key = kDummy;
  for (std::uint64_t u = 0; u < stage_units; ++u) {
    stage_io.read(u, unit);
    const bool dup = unit.r0().key != kDummy && unit.r0().key == prev_key;
    prev_key = unit.r0().key;
    if (dup) unit.r0().key = kDummy;
    stage_io.write(u, unit);
  }
  sortnet::ext_oblivious_unit_sort(client_, stage, ub);

  std::uint64_t real_count = 0;
  const BlockBuf empty = make_empty_block(B);
  for (std::uint64_t u = 0; u < stage_units; ++u) {
    stage_io.read(u, unit);
    const bool real = unit.r0().key != kDummy;
    if (real) ++real_count;
    if (u < capacity_) {
      if (real && clean) {
        for (std::size_t w = 0; w < B; ++w) pay[w] = unit.recs[2 + w];
        client_.write_block(out, u, pay);
      } else {
        client_.write_block(out, u, empty);
      }
    }
  }

  client_.release(stage);
  client_.release(comb);
  client_.release(updates);
  client_.release(cand);

  if (!clean) return Status::WhpFailure("IBLT peeling incomplete (external path)");
  if (real_count > capacity_)
    return Status::WhpFailure("IBLT decoded more entries than capacity");
  return Status::Ok();
}

}  // namespace oem::iblt
