#include "iblt/iblt.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"

namespace oem::iblt {

Iblt::Iblt(std::uint64_t capacity, const IbltParams& params, std::uint64_t seed)
    : hashes_(params.k,
              std::max<std::uint64_t>(
                  params.k,
                  static_cast<std::uint64_t>(
                      std::ceil(params.cells_per_item *
                                static_cast<double>(std::max<std::uint64_t>(1, capacity))))),
              seed),
      cells_(hashes_.cells()) {}

void Iblt::update(std::uint64_t key, std::uint64_t value, bool add) {
  const std::uint64_t chk = hashes_.checksum(key);
  for (unsigned i = 0; i < hashes_.k(); ++i) {
    Cell& c = cells_[hashes_.cell(key, i)];
    if (add) {
      c.count += 1;
      c.key_sum += key;
      c.value_sum += value;
      c.check_sum += chk;
    } else {
      c.count -= 1;
      c.key_sum -= key;
      c.value_sum -= value;
      c.check_sum -= chk;
    }
  }
}

void Iblt::insert(std::uint64_t key, std::uint64_t value) { update(key, value, true); }
void Iblt::erase(std::uint64_t key, std::uint64_t value) { update(key, value, false); }

bool Iblt::cell_pure(const Cell& c) const {
  return c.count == 1 && c.check_sum == hashes_.checksum(c.key_sum);
}

std::optional<std::uint64_t> Iblt::get(std::uint64_t key) const {
  for (unsigned i = 0; i < hashes_.k(); ++i) {
    const Cell& c = cells_[hashes_.cell(key, i)];
    if (c.count == 0 && c.is_zero()) return std::nullopt;  // definitely absent
    if (cell_pure(c)) {
      if (c.key_sum == key) return c.value_sum;
      return std::nullopt;  // pure with another key => key not here
    }
  }
  return std::nullopt;  // all cells overloaded: lookup failure
}

bool Iblt::list_entries(std::vector<Entry>& out) {
  // Classic peeling with a worklist of candidate pure cells; O(m) overall
  // since each delete touches k cells and each cell joins the list O(1)
  // amortized times.
  std::vector<std::uint64_t> work;
  work.reserve(cells_.size());
  for (std::uint64_t i = 0; i < cells_.size(); ++i)
    if (cell_pure(cells_[i])) work.push_back(i);

  while (!work.empty()) {
    const std::uint64_t i = work.back();
    work.pop_back();
    if (!cell_pure(cells_[i])) continue;  // may have changed since enqueued
    const std::uint64_t key = cells_[i].key_sum;
    const std::uint64_t value = cells_[i].value_sum;
    out.push_back({key, value});
    erase(key, value);
    for (unsigned h = 0; h < hashes_.k(); ++h) {
      const std::uint64_t c = hashes_.cell(key, h);
      if (cell_pure(cells_[c])) work.push_back(c);
    }
  }

  return std::all_of(cells_.begin(), cells_.end(),
                     [](const Cell& c) { return c.is_zero(); });
}

}  // namespace oem::iblt
