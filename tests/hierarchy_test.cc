// Memory-hierarchy v2 suite: scan-resistant admission (a one-pass sweep must
// not evict the re-referenced hot set), the shared CacheCore (N sessions, one
// slab, per-view stats and write-back routing), the pooled staging arena's
// zero-allocation steady state, and DirectFileBackend's io_uring/O_DIRECT
// specifics (slot layout, SQE coalescing, graceful fallback).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/session.h"
#include "extmem/arena.h"
#include "extmem/backend.h"
#include "extmem/cache_meter.h"
#include "extmem/io_engine.h"
#include "test_util.h"

namespace oem {
namespace {

constexpr std::size_t kBw = 4;

LatencyProfile counting_profile() {
  LatencyProfile p;
  p.per_op_ns = 1;
  p.per_word_ns = 0;
  p.real_sleep = false;  // pure op counter, no delay
  return p;
}

/// cache(capacity, policy) over a counting latency decorator over mem: the
/// latency layer's ops() counter is exactly "inner ops the cache did not
/// absorb".
struct PolicyRig {
  PolicyRig(std::size_t capacity, CachePolicy policy) {
    auto counted = latency_backend(mem_backend(), counting_profile());
    backend = caching_backend(std::move(counted), capacity, policy)(kBw);
    cache = dynamic_cast<CachingBackend*>(backend.get());
    counter = dynamic_cast<LatencyBackend*>(&cache->inner());
  }

  std::unique_ptr<StorageBackend> backend;
  CachingBackend* cache = nullptr;
  LatencyBackend* counter = nullptr;
};

/// The workload of the scan-resistance claim: a hot set touched twice (an
/// ORAM position map being re-referenced), then a long one-pass sweep (a
/// reshuffle/sort stream), then the hot set again.  Returns the inner ops
/// the FINAL hot-set pass cost -- 0 iff the sweep failed to evict it.
std::uint64_t hot_set_reread_cost(PolicyRig& rig) {
  const std::uint64_t kHot = 4, kSweep = 64;
  EXPECT_TRUE(rig.backend->resize(kHot + kSweep).ok());
  std::vector<Word> out(kBw);
  for (int pass = 0; pass < 2; ++pass)  // second touch promotes to protected
    for (std::uint64_t b = 0; b < kHot; ++b)
      EXPECT_TRUE(rig.backend->read(b, out).ok());
  for (std::uint64_t b = kHot; b < kHot + kSweep; ++b)  // one-pass scan
    EXPECT_TRUE(rig.backend->read(b, out).ok());
  const std::uint64_t before = rig.counter->ops();
  for (std::uint64_t b = 0; b < kHot; ++b)
    EXPECT_TRUE(rig.backend->read(b, out).ok());
  return rig.counter->ops() - before;
}

TEST(ScanResistance, SequentialSweepDoesNotEvictReReferencedHotSet) {
  PolicyRig slru(8, CachePolicy::kScanResistant);
  EXPECT_EQ(hot_set_reread_cost(slru), 0u)
      << "the sweep evicted the protected hot set";
  // The sweep's one-touch blocks died in probation, never protected.
  EXPECT_GT(slru.cache->stats().admission_rejects, 0u);

  // The v1 single-list baseline DOES thrash: 64 one-touch blocks through an
  // 8-block LRU push the hot set out, so the re-read pays inner ops again.
  PolicyRig lru(8, CachePolicy::kLru);
  EXPECT_GT(hot_set_reread_cost(lru), 0u)
      << "plain LRU unexpectedly survived the sweep (test workload too weak)";
}

TEST(ScanResistance, ProtectedOverflowDemotesInsteadOfPinningForever) {
  // Promote more blocks than the protected segment holds (prot_cap = 6 of
  // 8): the overflow demotes back to probation, and capacity still works --
  // every block remains readable with correct data.
  PolicyRig rig(8, CachePolicy::kScanResistant);
  ASSERT_TRUE(rig.backend->resize(32).ok());
  std::vector<Word> out(kBw);
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t b = 0; b < 12; ++b)
      ASSERT_TRUE(rig.backend->read(b, out).ok());
  for (std::uint64_t b = 0; b < 12; ++b) {
    ASSERT_TRUE(rig.backend->write(b, std::vector<Word>(kBw, 100 + b)).ok());
    ASSERT_TRUE(rig.backend->read(b, out).ok());
    EXPECT_EQ(out, std::vector<Word>(kBw, 100 + b));
  }
}

// ---------------------------------------------------------------------------
// Shared CacheCore.

TEST(SharedCache, TwoViewsShareResidencyButKeepNamespacesAndStats) {
  SharedCacheHandle core = make_shared_cache(8);
  auto a = std::make_unique<CachingBackend>(
      latency_backend(mem_backend(), counting_profile())(kBw), core);
  auto b = std::make_unique<CachingBackend>(
      latency_backend(mem_backend(), counting_profile())(kBw), core);
  ASSERT_TRUE(a->health().ok()) << a->health();
  ASSERT_TRUE(b->health().ok()) << b->health();
  EXPECT_NE(a->view_id(), b->view_id());
  ASSERT_TRUE(a->resize(16).ok());
  ASSERT_TRUE(b->resize(16).ok());

  // Same block id, different sessions: the namespaced keys keep them apart.
  ASSERT_TRUE(a->write(3, std::vector<Word>(kBw, 0xA)).ok());
  ASSERT_TRUE(b->write(3, std::vector<Word>(kBw, 0xB)).ok());
  std::vector<Word> out(kBw);
  ASSERT_TRUE(a->read(3, out).ok());
  EXPECT_EQ(out, std::vector<Word>(kBw, 0xA));
  ASSERT_TRUE(b->read(3, out).ok());
  EXPECT_EQ(out, std::vector<Word>(kBw, 0xB));
  EXPECT_EQ(core->cached_blocks(), 2u) << "both views resident in one slab";

  // Stats are per view: only A saw A's traffic.
  EXPECT_EQ(a->stats().absorbed_writes, 1u);
  EXPECT_EQ(a->stats().hits, 1u);
  EXPECT_EQ(b->stats().absorbed_writes, 1u);
  EXPECT_EQ(b->stats().hits, 1u);

  // B floods the shared slab with RE-REFERENCED blocks (a one-touch sweep
  // would die in probation -- scan resistance): the promotions overflow the
  // protected segment, demote and finally evict A's dirty block, which must
  // be written back through A's OWN inner store.
  for (std::uint64_t blk = 4; blk < 16 && a->stats().writebacks == 0; ++blk)
    for (int touch = 0; touch < 2; ++touch)  // second touch promotes
      ASSERT_TRUE(b->read(blk, out).ok());
  ASSERT_GT(a->stats().writebacks, 0u)
      << "B's protected-segment pressure never evicted A's dirty block";
  auto* a_counter = dynamic_cast<LatencyBackend*>(&a->inner());
  ASSERT_TRUE(a_counter->inner().read(3, out).ok());  // probe below the counter
  EXPECT_EQ(out, std::vector<Word>(kBw, 0xA))
      << "cross-view eviction must write back through the owning view";
  ASSERT_TRUE(a->read(3, out).ok());  // ...and A still reads its own data
  EXPECT_EQ(out, std::vector<Word>(kBw, 0xA));
}

TEST(SharedCache, GeometryIsAdoptedByFirstViewAndEnforcedAfter) {
  SharedCacheHandle core = make_shared_cache(4);
  CachingBackend first(mem_backend()(8), core);
  ASSERT_TRUE(first.health().ok());
  CachingBackend mismatched(mem_backend()(16), core);
  EXPECT_FALSE(mismatched.health().ok())
      << "a view with different block geometry must fail health";
  CachingBackend matched(mem_backend()(8), core);
  EXPECT_TRUE(matched.health().ok());
}

TEST(SharedCache, SessionsExposePerSessionStatsAndDescribe) {
  SharedCacheHandle core = make_shared_cache(32);
  auto mk = [&core](std::uint64_t seed) {
    return Session::Builder()
        .block_records(4)
        .cache_records(64)
        .seed(seed)
        .shared_cache(core)
        .build();
  };
  auto sa = mk(5);
  auto sb = mk(6);
  ASSERT_TRUE(sa.ok()) << sa.status();
  ASSERT_TRUE(sb.ok()) << sb.status();
  Session a = std::move(sa).value();
  Session b = std::move(sb).value();
  auto da = a.outsource(test::random_records(64, 3));
  ASSERT_TRUE(da.ok());
  auto sorted = a.sort(*da);
  ASSERT_TRUE(sorted.ok());
  const CacheStats astats = a.cache_stats();
  const CacheStats bstats = b.cache_stats();
  EXPECT_GT(astats.hits + astats.misses + astats.absorbed_writes, 0u);
  EXPECT_EQ(bstats.hits + bstats.misses + bstats.absorbed_writes, 0u)
      << "an idle session must not inherit its neighbor's counters";
  // The human-readable form used by engine_stats_note and service logs.
  const std::string line = describe_cache_stats(astats);
  EXPECT_NE(line.find("cache: hits="), std::string::npos) << line;
  EXPECT_NE(line.find("admission_rejects="), std::string::npos) << line;
  EXPECT_TRUE(a.storage_health().ok()) << a.storage_health();
}

TEST(SharedCache, BuilderRejectsMixingPrivateAndSharedCache) {
  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .cache(8)
                   .shared_cache(make_shared_cache(8))
                   .build();
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Staging arena.

TEST(BufferArena, RecyclesBuffersAndCountsReuse) {
  BufferArena arena;
  const ArenaStats s0 = arena.stats();
  {
    ArenaBuffer b(&arena);
    b.resize(1024);
    for (std::size_t i = 0; i < 1024; ++i) b[i] = i;
    EXPECT_EQ(arena.stats().outstanding, s0.outstanding + 1);
  }
  EXPECT_EQ(arena.stats().pooled, s0.pooled + 1);
  {
    ArenaBuffer b(&arena);
    b.resize(512);  // smaller fits the pooled buffer: reuse, not allocation
    ArenaBuffer c(&arena);
    c.resize(1024);
  }
  const ArenaStats s1 = arena.stats();
  EXPECT_EQ(s1.allocations, s0.allocations + 2) << "1st buffer + c's fresh one";
  EXPECT_GE(s1.reuses, 1u);
  arena.trim();
  EXPECT_EQ(arena.stats().pooled, 0u);
}

TEST(BufferArena, ResizeKeepsBufferWithinCapacity) {
  BufferArena arena;
  ArenaBuffer b(&arena);
  b.resize(256);
  Word* p = b.data();
  b.resize(64);   // shrink: same backing memory
  EXPECT_EQ(b.data(), p);
  b.resize(256);  // regrow within capacity: same backing memory
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(arena.stats().allocations, 1u);
}

// The tentpole's zero-allocation pin: once a pipelined workload has warmed
// the pool, running the SAME workload again must not allocate -- every
// window wire, async staging buffer, and sharded sub-frame comes from the
// recycled pool.
TEST(BufferArena, SteadyStatePipelineWindowsAllocateNothing) {
  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .seed(5)
                   .sharded(4)
                   .async_prefetch(true)
                   .pipeline_depth(4)
                   .build();
  ASSERT_TRUE(built.ok()) << built.status();
  Session session = std::move(built).value();
  const auto input = test::random_records(96 * 4, 17);
  auto data = session.outsource(std::vector<Record>(input.begin(), input.end()));
  ASSERT_TRUE(data.ok());
  auto warm = session.sort(*data);  // warms the pool
  ASSERT_TRUE(warm.ok());
  const std::uint64_t allocs = global_staging_arena().stats().allocations;
  const std::uint64_t reuses = global_staging_arena().stats().reuses;
  for (int i = 0; i < 3; ++i) {
    auto again = session.sort(*data);
    ASSERT_TRUE(again.ok());
  }
  const ArenaStats after = global_staging_arena().stats();
  EXPECT_EQ(after.allocations, allocs)
      << "steady-state pipeline windows must perform zero heap allocations";
  EXPECT_GT(after.reuses, reuses) << "the steady state must run on the pool";
}

// ---------------------------------------------------------------------------
// DirectFileBackend.

TEST(DirectFileBackend, SlotLayoutRespectsDirectIoAlignment) {
  DirectFileBackend dfb(66);  // 528 payload bytes: forces slot padding
  ASSERT_TRUE(dfb.health().ok()) << dfb.health();
  if (std::string(dfb.engine()) != "uring")
    GTEST_SKIP() << "no io_uring here; slot layout is a ring-path property";
  EXPECT_GE(dfb.slot_bytes(), 66 * sizeof(Word));
  EXPECT_EQ(dfb.slot_bytes() % 512, 0u) << "slots must hold offset alignment";
  ASSERT_TRUE(dfb.resize(8).ok());
  std::vector<Word> in(66, 7), out(66);
  ASSERT_TRUE(dfb.write(5, in).ok());
  ASSERT_TRUE(dfb.read(5, out).ok());
  EXPECT_EQ(out, in);
  struct stat st{};
  ASSERT_EQ(::stat(dfb.path().c_str(), &st), 0);
  EXPECT_EQ(static_cast<std::uint64_t>(st.st_size), 8 * dfb.slot_bytes());
}

TEST(DirectFileBackend, CoalescesContiguousRunsIntoSingleSqes) {
  DirectFileBackend dfb(kBw);
  ASSERT_TRUE(dfb.health().ok()) << dfb.health();
  if (std::string(dfb.engine()) != "uring")
    GTEST_SKIP() << "no io_uring here; SQE accounting needs the ring";
  ASSERT_TRUE(dfb.resize(64).ok());
  const std::uint64_t before = dfb.sqes_submitted();
  std::vector<std::uint64_t> run(32);
  for (std::size_t i = 0; i < run.size(); ++i) run[i] = i + 8;
  std::vector<Word> buf(run.size() * kBw, 42);
  ASSERT_TRUE(dfb.write_many(run, buf).ok());
  EXPECT_EQ(dfb.sqes_submitted() - before, 1u) << "one run, one SQE";
  const std::vector<std::uint64_t> scattered = {0, 1, 2, 40, 41, 50};
  std::vector<Word> buf2(scattered.size() * kBw);
  ASSERT_TRUE(dfb.read_many(scattered, buf2).ok());
  EXPECT_EQ(dfb.sqes_submitted() - before, 4u) << "3 runs -> 3 more SQEs";
}

TEST(DirectFileBackend, TempFileIsRemovedOnDestruction) {
  std::string path;
  {
    DirectFileBackend dfb(kBw);
    ASSERT_TRUE(dfb.health().ok()) << dfb.health();
    path = dfb.path();
    struct stat st{};
    EXPECT_EQ(::stat(path.c_str(), &st), 0) << "backing file must exist";
  }
  struct stat st{};
  EXPECT_NE(::stat(path.c_str(), &st), 0) << "temp file must be cleaned up";
}

TEST(DirectFileBackend, UnopenablePathReportsIoStatus) {
  DirectFileOptions opts;
  opts.path = "/nonexistent-dir-oem/blocks.bin";
  DirectFileBackend dfb(kBw, opts);
  EXPECT_EQ(dfb.health().code(), StatusCode::kIo);
}

TEST(DirectFileBackend, SplitPhaseFifoWithSyncOpsInterleaved) {
  DirectFileBackend dfb(kBw);
  ASSERT_TRUE(dfb.health().ok()) << dfb.health();
  ASSERT_TRUE(dfb.resize(32).ok());
  ASSERT_GE(dfb.max_inflight(), 2u);
  std::vector<Word> w(2 * kBw);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = 1000 + i;
  const std::vector<std::uint64_t> ids = {3, 9};
  ASSERT_TRUE(dfb.begin_write_many(ids, w).ok());
  std::vector<Word> r(2 * kBw, 0);
  // A sync op with a frame in flight retires it early (FIFO preserved).
  std::vector<Word> other(kBw, 5);
  ASSERT_TRUE(dfb.write(20, other).ok());
  ASSERT_TRUE(dfb.begin_read_many(ids, r).ok());
  ASSERT_TRUE(dfb.complete_oldest().ok());  // the write frame
  ASSERT_TRUE(dfb.complete_oldest().ok());  // the read frame
  EXPECT_EQ(r, w);
}

TEST(SessionBuilder, DirectIoRequiresFileBackedStorage) {
  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .direct_io()
                   .build();
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionBuilder, DirectIoSessionSortsCorrectly) {
  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .seed(5)
                   .file_backed()
                   .direct_io()
                   .sharded(2)
                   .build();
  ASSERT_TRUE(built.ok()) << built.status();
  Session session = std::move(built).value();
  const auto input = test::random_records(48 * 4, 23);
  auto data = session.outsource(std::vector<Record>(input.begin(), input.end()));
  ASSERT_TRUE(data.ok());
  auto sorted = session.sort(*data);
  ASSERT_TRUE(sorted.ok()) << sorted.status();
  auto out = session.retrieve(*data);
  ASSERT_TRUE(out.ok());
  for (std::size_t i = 1; i < out->size(); ++i)
    EXPECT_LE((*out)[i - 1].key, (*out)[i].key);
}

}  // namespace
}  // namespace oem
