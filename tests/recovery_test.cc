// Crash-safety and freshness-durability suite (the chaos harness).
//
// Three contracts under test:
//
//   1. Durable freshness (extmem/freshness.h + Session::Builder::state_path):
//      the anti-rollback version table survives a process restart atomically
//      and tamper-evidently.  A missing state file bootstraps; an existing-
//      but-corrupt one fails closed as kIntegrity; a validly-sealed-but-stale
//      state file (the rollback OF the rollback defense) is caught at read
//      time by the block MACs it mis-keys.
//
//   2. Wire deadlines (RemoteBackendOptions::io_deadline_ms): a dead, hung,
//      or byzantine-slow server surfaces as retryable kTimeout in bounded
//      time -- never a hang.
//
//   3. SIGKILL recovery matrix: against a server that dies abruptly at a
//      seeded frame (oem-server --crash-at=frames:N), every algorithm on
//      every decorator stack either completes with output identical to the
//      in-memory reference or fails cleanly with a retryable/integrity code
//      -- and a rerun against a fresh server always completes identically.
//      Never silent corruption, never a hang.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "extmem/freshness.h"
#include "extmem/remote.h"
#include "server/server.h"
#include "server/subprocess.h"
#include "test_util.h"
#include "util/status.h"

namespace oem {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "oem_recovery_" + name + "." +
         std::to_string(::getpid());
}

// ---------------------------------------------------------------------------
// Freshness state file: round trip, Merkle root, fail-closed on any damage.

TEST(Freshness, MerkleRootSummarizesTheTable) {
  EXPECT_EQ(freshness_merkle_root({}), 0u) << "empty table is the zero root";
  std::vector<std::uint64_t> v = {1, 2, 3, 4, 5};
  const std::uint64_t root = freshness_merkle_root(v);
  EXPECT_EQ(freshness_merkle_root(v), root) << "pure function of the table";
  for (std::size_t i = 0; i < v.size(); ++i) {
    auto w = v;
    ++w[i];
    EXPECT_NE(freshness_merkle_root(w), root)
        << "bumping version " << i << " must change the root";
  }
  v.push_back(0);
  EXPECT_NE(freshness_merkle_root(v), root) << "the root binds the length";
}

TEST(Freshness, SaveLoadRoundTripsEveryField) {
  const std::string path = temp_path("roundtrip");
  const std::uint64_t key = freshness_state_key(0x5eed);
  FreshnessState s;
  s.generation = 3;
  s.nonce_counter = 7777;
  s.store_namespace = 0x1234u << 10;
  s.versions = {1, 4, 0, 9, 2, 2, 8};
  ASSERT_TRUE(save_freshness(path, s, key).ok());
  auto loaded = load_freshness(path, key);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->generation, s.generation);
  EXPECT_EQ(loaded->nonce_counter, s.nonce_counter);
  EXPECT_EQ(loaded->store_namespace, s.store_namespace);
  EXPECT_EQ(loaded->versions, s.versions);
  // A save replaces atomically: no stale temp sibling left behind.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove(path);
}

TEST(Freshness, MissingFileIsIoNotIntegrity) {
  // First boot must be distinguishable from tampering: bootstrap, not panic.
  auto r = load_freshness(temp_path("never_written"), 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIo);
}

TEST(Freshness, AnyDamageFailsClosedAsIntegrity) {
  const std::string path = temp_path("damage");
  const std::uint64_t key = freshness_state_key(42);
  FreshnessState s;
  s.generation = 9;
  s.nonce_counter = 11;
  s.versions = {5, 6, 7, 8};
  ASSERT_TRUE(save_freshness(path, s, key).ok());
  const auto size = fs::file_size(path);
  const auto flip_byte_at = [&](std::uintmax_t off) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(off));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x10);
    f.seekp(static_cast<std::streamoff>(off));
    f.write(&b, 1);
  };
  // One flipped byte anywhere -- magic, generation, a version, the Merkle
  // root, the MAC itself -- must be caught.
  for (const std::uintmax_t off : {std::uintmax_t{0}, std::uintmax_t{8},
                                   size / 2, size - 9, size - 1}) {
    flip_byte_at(off);
    auto r = load_freshness(path, key);
    ASSERT_FALSE(r.ok()) << "flip at byte " << off << " went unnoticed";
    EXPECT_EQ(r.status().code(), StatusCode::kIntegrity) << "byte " << off;
    flip_byte_at(off);  // restore for the next round
  }
  ASSERT_TRUE(load_freshness(path, key).ok()) << "restored file must verify";

  // Wrong key: a state file sealed by someone else is not evidence.
  EXPECT_EQ(load_freshness(path, key ^ 1).status().code(),
            StatusCode::kIntegrity);
  // Truncation (torn tail) and trailing garbage.
  fs::resize_file(path, size - 8);
  EXPECT_EQ(load_freshness(path, key).status().code(), StatusCode::kIntegrity);
  ASSERT_TRUE(save_freshness(path, s, key).ok());
  {
    std::ofstream f(path, std::ios::app | std::ios::binary);
    const std::uint64_t junk = 0xdeadbeef;
    f.write(reinterpret_cast<const char*>(&junk), sizeof junk);
  }
  EXPECT_EQ(load_freshness(path, key).status().code(), StatusCode::kIntegrity);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Session restart with a state file: versions and nonces survive, a staged
// rollback of the state file itself is caught at read time.

TEST(DurableFreshness, RestartedFileSessionStillReadsAndDetectsStateRollback) {
  const std::string store = temp_path("store");
  const std::string state = temp_path("state");
  const std::string state_v1 = state + ".gen1";
  FileBackendOptions fo;
  fo.path = store;
  fo.keep_file = true;
  const auto builder = [&] {
    Session::Builder b;
    b.block_records(4).cache_records(64).seed(0x5eed).file_backed(fo)
        .state_path(state);
    return b;
  };
  const auto v1 = test::random_records(40, 3);
  const auto v2 = test::random_records(40, 4);
  {
    auto built = builder().build();
    ASSERT_TRUE(built.ok()) << built.status() << " (missing state file must "
                            << "bootstrap, not fail)";
    Session s1 = std::move(built).value();
    auto a = s1.outsource(v1);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(s1.persist_freshness().ok());
    fs::copy_file(state, state_v1);  // the adversary snapshots generation 1
    s1.client().poke(*a, v2);        // every block re-sealed at version 2
    ASSERT_TRUE(s1.persist_freshness().ok());
  }  // destructor persists again, best-effort

  {  // honest restart: restored versions verify the version-2 blocks
    auto built = builder().build();
    ASSERT_TRUE(built.ok()) << built.status();
    Session s2 = std::move(built).value();
    ExtArray a = s2.client().alloc(40, Client::Init::kUninit);
    auto got = s2.retrieve(a);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, v2);
  }

  // Roll the STATE FILE back to its validly-sealed generation-1 snapshot.
  // load_freshness cannot catch this (the seal is genuine); the stale
  // versions it carries must make every version-2 block fail its MAC.
  fs::copy_file(state_v1, state, fs::copy_options::overwrite_existing);
  {
    auto built = builder().build();
    ASSERT_TRUE(built.ok()) << "a validly-sealed old state file loads; "
                            << "detection happens at read time";
    Session s3 = std::move(built).value();
    ExtArray a = s3.client().alloc(40, Client::Init::kUninit);
    auto got = s3.retrieve(a);
    ASSERT_FALSE(got.ok()) << "stale version table accepted version-2 blocks";
    EXPECT_EQ(got.status().code(), StatusCode::kIntegrity);
  }

  // An existing-but-corrupt state file fails the BUILD closed: bootstrapping
  // over evidence of tampering would erase the evidence.
  {
    std::fstream f(state, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);
    char b = 0x7f;
    f.write(&b, 1);
  }
  auto built = builder().build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kIntegrity);
  fs::remove(store);
  fs::remove(state);
  fs::remove(state_v1);
}

TEST(DurableFreshness, RestartedRemoteSessionDetectsRollbackStagedWhileDown) {
  // The marquee attack: the malicious server waits for the client process to
  // DIE, swaps a stale ciphertext into the store, and serves it to the
  // reborn client.  Without durable state the reborn client has no memory to
  // contradict the replay; with state_path it does.
  RemoteServer server;
  ASSERT_TRUE(server.health().ok()) << server.health();
  const std::string state = temp_path("remote_state");
  const std::uint64_t seed = 0xfee1;
  const auto builder = [&] {
    Session::Builder b;
    b.block_records(4).cache_records(64).seed(seed)
        .remote(server.host(), server.port()).state_path(state);
    return b;
  };
  const auto v1 = test::random_records(32, 5);
  const auto v2 = test::random_records(32, 6);
  std::vector<Word> stale;  // Bob's snapshot of block 0 at version 1
  {
    auto built = builder().build();
    ASSERT_TRUE(built.ok()) << built.status();
    Session s1 = std::move(built).value();
    auto a = s1.outsource(v1);
    ASSERT_TRUE(a.ok()) << a.status();
    // The persisted namespace is how both the restarted client and this test
    // find the same server store (shard 0 => store id = namespace | 0).
    ASSERT_TRUE(s1.persist_freshness().ok());
    auto st = load_freshness(state, freshness_state_key(seed));
    ASSERT_TRUE(st.ok()) << st.status();
    ASSERT_NE(st->store_namespace, 0u);
    ASSERT_TRUE(server.peek_store(st->store_namespace, 0, &stale).ok());
    s1.client().poke(*a, v2);
    ASSERT_TRUE(s1.persist_freshness().ok());
  }  // client process "dies"

  auto st = load_freshness(state, freshness_state_key(seed));
  ASSERT_TRUE(st.ok()) << st.status();

  {  // control arm: no attack, the reborn client reads its own writes
    auto built = builder().build();
    ASSERT_TRUE(built.ok()) << built.status();
    Session s2 = std::move(built).value();
    ExtArray a = s2.client().alloc(32, Client::Init::kUninit);
    auto got = s2.retrieve(a);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, v2) << "restart must reach the SAME server store";
  }

  // Attack arm: stage the rollback while no client is alive.
  ASSERT_TRUE(server.poke_store(st->store_namespace, 0, stale).ok());
  {
    auto built = builder().build();
    ASSERT_TRUE(built.ok()) << built.status();
    Session s3 = std::move(built).value();
    ExtArray a = s3.client().alloc(32, Client::Init::kUninit);
    auto got = s3.retrieve(a);
    ASSERT_FALSE(got.ok())
        << "SILENT ROLLBACK: reborn client accepted a stale block";
    EXPECT_EQ(got.status().code(), StatusCode::kIntegrity);
  }
  fs::remove(state);
}

// ---------------------------------------------------------------------------
// Authenticated control frames: a key mismatch on HELLO fails closed at
// build time; matching (nonzero) keys handshake and ping normally.

TEST(WireAuth, HelloKeyMismatchFailsClosedAsIntegrity) {
  RemoteServerOptions so;
  so.auth_key = 7;
  RemoteServer server(so);
  ASSERT_TRUE(server.health().ok()) << server.health();

  auto wrong = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .remote(server.host(), server.port())
                   .wire_auth(8)
                   .build();
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kIntegrity);

  auto unkeyed = Session::Builder()
                     .block_records(4)
                     .cache_records(64)
                     .remote(server.host(), server.port())
                     .build();
  ASSERT_FALSE(unkeyed.ok()) << "default key 0 vs keyed server must not pass";
  EXPECT_EQ(unkeyed.status().code(), StatusCode::kIntegrity);

  auto right = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .remote(server.host(), server.port())
                   .wire_auth(7)
                   .build();
  ASSERT_TRUE(right.ok()) << right.status();
}

TEST(WireAuth, MatchingKeysPingAndServe) {
  RemoteServerOptions so;
  so.auth_key = 9;
  RemoteServer server(so);
  ASSERT_TRUE(server.health().ok()) << server.health();
  RemoteBackendOptions o;
  o.host = server.host();
  o.port = server.port();
  o.store_id = 1 << 10;
  o.auth_key = 9;
  RemoteBackend backend(10, o);
  ASSERT_TRUE(backend.health().ok()) << backend.health();
  ASSERT_TRUE(backend.ping().ok());
  ASSERT_TRUE(backend.resize(2).ok());
  std::vector<Word> in(10, 3), out(10);
  ASSERT_TRUE(backend.write(1, in).ok());
  ASSERT_TRUE(backend.read(1, out).ok());
  EXPECT_EQ(out, in);
}

// ---------------------------------------------------------------------------
// Wire deadlines: a slow or frozen server surfaces as kTimeout in bounded
// time instead of hanging the session.

TEST(WireDeadline, SlowServerTimesOutTheHandshakeBounded) {
  RemoteServerOptions so;
  so.response_delay_ns = 3'000'000'000;  // 3 s propagation on EVERY response
  RemoteServer server(so);
  ASSERT_TRUE(server.health().ok()) << server.health();
  const auto t0 = Clock::now();
  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .remote(server.host(), server.port())
                   .io_deadline_ms(100)
                   .build();
  const double elapsed = ms_since(t0);
  ASSERT_FALSE(built.ok()) << "a 3 s HELLO beat a 100 ms deadline";
  EXPECT_EQ(built.status().code(), StatusCode::kTimeout) << built.status();
  EXPECT_LT(elapsed, 2000.0) << "deadline must bound the wait, not the delay";
}

TEST(WireDeadline, FrozenServerTimesOutAnEstablishedConnection) {
  server::SpawnedServer srv(server::default_server_binary(), {"--threads=1"});
  ASSERT_TRUE(srv.health().ok()) << srv.health();
  RemoteBackendOptions o;
  o.host = srv.host();
  o.port = srv.port();
  o.store_id = 2 << 10;
  o.io_deadline_ms = 200;
  RemoteBackend backend(10, o);
  ASSERT_TRUE(backend.resize(4).ok());
  ASSERT_TRUE(backend.write(0, std::vector<Word>(10, 5)).ok());

  // SIGSTOP models a wedged (not dead) server: the TCP connection stays
  // perfectly healthy, only nobody is home.  Without a deadline this read
  // blocks forever.  kill() only queues the stop -- a loaded scheduler can
  // let the server answer one more frame before it freezes -- so wait for
  // /proc to report state 'T' before issuing the read that must time out.
  ASSERT_EQ(::kill(srv.pid(), SIGSTOP), 0);
  const std::string stat_path = "/proc/" + std::to_string(srv.pid()) + "/stat";
  for (int spin = 0; spin < 2000; ++spin) {
    std::ifstream in(stat_path);
    std::string stat((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const auto paren = stat.rfind(')');
    if (paren != std::string::npos && stat.size() > paren + 2 &&
        stat[paren + 2] == 'T')
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto t0 = Clock::now();
  std::vector<Word> out(10);
  const Status st = backend.read(0, out);
  const double elapsed = ms_since(t0);
  EXPECT_EQ(st.code(), StatusCode::kTimeout) << st;
  EXPECT_GE(elapsed, 150.0) << "timed out before the deadline";
  EXPECT_LT(elapsed, 5000.0);
  ASSERT_EQ(::kill(srv.pid(), SIGCONT), 0);
  EXPECT_EQ(srv.terminate(), 0) << "a thawed server must still exit cleanly";
}

// ---------------------------------------------------------------------------
// SpawnedServer exit taxonomy: the harness must tell a clean exit from
// SIGKILL from an injected crash, or the matrix below proves nothing.

TEST(CrashInjection, ExitKindsAreDistinguishable) {
  {
    server::SpawnedServer srv(server::default_server_binary(), {});
    ASSERT_TRUE(srv.health().ok()) << srv.health();
    EXPECT_EQ(srv.terminate(), 0);
  }
  {
    server::SpawnedServer srv(server::default_server_binary(), {});
    ASSERT_TRUE(srv.health().ok()) << srv.health();
    const server::ExitResult r = srv.kill_now();
    EXPECT_TRUE(r.signaled);
    EXPECT_EQ(r.signal, SIGKILL);
  }
  {
    server::SpawnedServer srv(server::default_server_binary(),
                              {"--crash-at=frames:1"});
    ASSERT_TRUE(srv.health().ok()) << srv.health();
    RemoteBackendOptions o;
    o.host = srv.host();
    o.port = srv.port();
    o.io_deadline_ms = 2000;
    RemoteBackend backend(10, o);
    // The very first frame (HELLO) trips the armed crash: the client sees a
    // clean retryable error, and the child reports the crash exit code.
    const Status st = backend.health();
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(IsRetryable(st.code())) << st;
    const server::ExitResult r = srv.wait_exit();
    EXPECT_FALSE(r.signaled);
    EXPECT_EQ(r.code, kCrashExitCode);
  }
}

// ---------------------------------------------------------------------------
// The SIGKILL recovery matrix: every algorithm x every stack, server crashed
// at a seeded frame.  Allowed outcomes per trial: identical output, or a
// clean retryable/integrity error -- and the rerun against a fresh server
// must complete identically.  Silent corruption and hangs are the bugs.

struct RecoveryStack {
  const char* name;
  std::size_t shards;
  std::size_t cache_blocks;
  bool auth_seam;
};

constexpr RecoveryStack kRecoveryStacks[] = {
    {"plain", 1, 0, false},
    {"sharded4", 4, 0, false},
    {"cached", 1, 16, false},
    {"encrypted_auth", 1, 0, true},
};

Result<Session> build_remote(const RecoveryStack& cfg, const std::string& host,
                             std::uint16_t port) {
  Session::Builder b;
  b.block_records(4)
      .cache_records(64)
      .seed(11)
      .remote(host, port)
      .io_deadline_ms(5000)  // a crashed server must never become a hang
      .io_retries(2);
  if (cfg.shards > 1) b.sharded(cfg.shards);
  if (cfg.cache_blocks > 0) b.cache(cfg.cache_blocks);
  if (cfg.auth_seam) b.encrypted(0x5eedULL, /*authenticated=*/true);
  return b.build();
}

using Algo = std::function<Status(Session&, std::vector<Record>*)>;

Status run_sort(Session& s, std::vector<Record>* out) {
  auto data = s.outsource(test::random_records(32 * 4, 7));
  if (!data.ok()) return data.status();
  auto rep = s.sort(*data, /*seed=*/5);
  if (!rep.ok()) return rep.status();
  auto result = s.retrieve(*data);
  if (!result.ok()) return result.status();
  *out = std::move(*result);
  return Status::Ok();
}

Status run_compact(Session& s, std::vector<Record>* out) {
  std::vector<Record> v(24 * 4);
  for (std::uint64_t i = 0; i < v.size(); i += 3) v[i] = {i, i};
  auto data = s.outsource(v);
  if (!data.ok()) return data.status();
  auto rep = s.compact(*data);
  if (!rep.ok()) return rep.status();
  auto result = s.retrieve(rep->out);
  if (!result.ok()) return result.status();
  *out = std::move(*result);
  return Status::Ok();
}

Status run_oram(Session& s, std::vector<Record>* out) {
  auto oram = s.open_oram(64, oram::ShuffleKind::kDeterministic, /*seed=*/17);
  if (!oram.ok()) return oram.status();
  for (std::uint64_t i = 0; i <= oram->epoch_length(); ++i) {
    auto v = oram->access((i * 5) % 64);
    if (!v.ok()) return v.status();
    EXPECT_EQ(*v, oram->expected_value((i * 5) % 64))
        << "SILENT CORRUPTION in ORAM access " << i;
    out->push_back({i, *v});
  }
  return Status::Ok();
}

const struct { const char* name; Algo run; } kAlgos[] = {
    {"sort", run_sort},
    {"compact", run_compact},
    {"oram", run_oram},
};

TEST(CrashRecoveryMatrix, EveryAlgorithmOnEveryStackFailsCleanOrCompletes) {
  // In-memory references: the paper's algorithms are deterministic in their
  // OUTPUT given the input and the per-call seed, independent of storage.
  std::vector<std::vector<Record>> expected;
  for (const auto& algo : kAlgos) {
    auto ref = Session::Builder().block_records(4).cache_records(64).seed(11)
                   .build();
    ASSERT_TRUE(ref.ok()) << ref.status();
    std::vector<Record> out;
    ASSERT_TRUE(algo.run(*ref, &out).ok()) << algo.name;
    expected.push_back(std::move(out));
  }

  int trial = 0, crashed_trials = 0, completed_trials = 0;
  for (std::size_t ai = 0; ai < std::size(kAlgos); ++ai) {
    for (const RecoveryStack& cfg : kRecoveryStacks) {
      for (int round = 0; round < 2; ++round, ++trial) {
        // Seeded crash point: round 0 lands early (handshake/upload), round
        // 1 lands late enough that the smaller workloads can outrun it and
        // exercise the completed-identical arm.  Deterministic per trial,
        // so a failure replays exactly.
        const std::uint64_t crash_frame =
            round == 0 ? 2 + (trial * 17) % 48
                       : 500 + (trial * 1237) % 4000;
        server::SpawnedServer srv(
            server::default_server_binary(),
            {"--threads=2",
             "--crash-at=frames:" + std::to_string(crash_frame)});
        ASSERT_TRUE(srv.health().ok()) << srv.health();
        const std::string label = std::string(kAlgos[ai].name) + "/" +
                                  cfg.name + " crash@" +
                                  std::to_string(crash_frame);

        bool need_rerun = true;
        auto built = build_remote(cfg, srv.host(), srv.port());
        if (built.ok()) {
          std::vector<Record> got;
          const Status st = kAlgos[ai].run(*built, &got);
          if (st.ok()) {
            ++completed_trials;
            need_rerun = false;
            EXPECT_EQ(got, expected[ai])
                << label << ": SILENT CORRUPTION -- crashed-server run "
                << "completed with wrong output";
          } else {
            EXPECT_TRUE(st.code() == StatusCode::kIo ||
                        st.code() == StatusCode::kTimeout ||
                        st.code() == StatusCode::kIntegrity)
                << label << ": crash must surface clean, got " << st;
          }
        } else {
          EXPECT_TRUE(IsRetryable(built.status().code()))
              << label << ": crash during build must be retryable, got "
              << built.status();
        }
        // How did the server actually die?  Either the armed crash tripped
        // (exit 42) or the run finished under the frame budget and the
        // still-alive server is reaped here (SIGKILL fallback in reap).
        const server::ExitResult ex = srv.wait_exit(/*timeout_ms=*/1);
        if (ex.code == kCrashExitCode) ++crashed_trials;

        if (need_rerun) {
          // The recovery story: a FRESH server + fresh session must complete
          // identically -- the failure left no poisoned durable state.
          server::SpawnedServer fresh(server::default_server_binary(),
                                      {"--threads=2"});
          ASSERT_TRUE(fresh.health().ok()) << fresh.health();
          auto again = build_remote(cfg, fresh.host(), fresh.port());
          ASSERT_TRUE(again.ok()) << label << " rerun: " << again.status();
          std::vector<Record> got;
          const Status st = kAlgos[ai].run(*again, &got);
          ASSERT_TRUE(st.ok()) << label << " rerun failed: " << st;
          EXPECT_EQ(got, expected[ai]) << label << " rerun diverged";
          EXPECT_EQ(fresh.terminate(), 0);
        }
      }
    }
  }
  // The schedule must exercise BOTH arms, or the matrix is vacuous.
  EXPECT_GT(crashed_trials, 0) << "no trial ever tripped its armed crash";
  EXPECT_GT(trial, completed_trials) << "every trial outran its crash frame";
}

}  // namespace
}  // namespace oem
